package energysched

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Client resilience: per-request timeouts and the opt-in RetryPolicy
// (full-jitter exponential backoff, Retry-After override, retryable
// status set). The policy exists so a caller rides out a warm-standby
// promotion — a follower answers writes with 503 + Retry-After until
// it is promoted — without hand-rolled loops.

// flakyHandler fails the first n requests with status (carrying a
// Retry-After hint when ra != ""), then serves a report body.
func flakyHandler(n int32, status int, ra string) (http.Handler, *int32) {
	var calls int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := atomic.AddInt32(&calls, 1)
		if c <= n {
			if ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			http.Error(w, `{"error":"not yet"}`, status)
			return
		}
		w.Write([]byte(`{"role":"leader","ready":true}`))
	})
	return h, &calls
}

func TestClientNoRetryByDefault(t *testing.T) {
	h, calls := flakyHandler(1, http.StatusServiceUnavailable, "0")
	hs := httptest.NewServer(h)
	defer hs.Close()

	_, err := NewClient(hs.URL).Health(context.Background())
	if !isStatusErr(err, http.StatusServiceUnavailable) {
		t.Fatalf("default client: %v, want the 503 surfaced", err)
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("default client made %d attempts, want exactly 1", got)
	}
}

func TestClientRetriesTransientStatuses(t *testing.T) {
	h, calls := flakyHandler(2, http.StatusServiceUnavailable, "0")
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	hst, err := c.Health(context.Background())
	if err != nil || hst.Role != "leader" {
		t.Fatalf("retrying client: %+v, %v", hst, err)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("retrying client made %d attempts, want 3 (two 503s then success)", got)
	}
}

func TestClientRetryGivesUpAtMaxAttempts(t *testing.T) {
	h, calls := flakyHandler(1<<30, http.StatusTooManyRequests, "0")
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := c.Health(context.Background())
	if !isStatusErr(err, http.StatusTooManyRequests) {
		t.Fatalf("exhausted retries: %v, want the final 429", err)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("made %d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestClientDoesNotRetryNonTransientErrors(t *testing.T) {
	h, calls := flakyHandler(1<<30, http.StatusNotFound, "")
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	_, err := c.Health(context.Background())
	if !isStatusErr(err, http.StatusNotFound) {
		t.Fatalf("non-transient error: %v, want the 404 surfaced immediately", err)
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("made %d attempts on a 404, want 1", got)
	}
}

func TestClientPerRequestTimeout(t *testing.T) {
	var calls int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Timeout = 30 * time.Millisecond
	c.Retry = &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	start := time.Now()
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("timed-out call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("per-attempt timeout did not bound the call: took %v", elapsed)
	}
	// The attempt timeout is itself a transport failure, so the retry
	// policy gets its second try.
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("made %d attempts, want 2 (both timing out)", got)
	}
}

func TestClientRetryCanceledContext(t *testing.T) {
	h, _ := flakyHandler(1<<30, http.StatusServiceUnavailable, "30")
	hs := httptest.NewServer(h)
	defer hs.Close()

	// Retry-After 30s would stall the backoff loop; a canceled caller
	// context must cut it short instead.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 10}
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("canceled call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation did not cut the Retry-After sleep short: took %v", elapsed)
	}
}

func TestFleetClientInheritsResilience(t *testing.T) {
	c := NewClient("http://example.invalid")
	c.Timeout = time.Second
	c.Retry = &RetryPolicy{MaxAttempts: 7}
	fc := c.Fleet("batch")
	if fc.Timeout != time.Second || fc.Retry != c.Retry {
		t.Fatalf("Fleet() dropped resilience settings: %+v", fc)
	}
	if !strings.Contains(fc.prefix, "batch") {
		t.Fatalf("Fleet() prefix = %q", fc.prefix)
	}
}

func TestRetryDelayBackoffAndOverride(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	// Retry-After overrides the computed backoff verbatim.
	if d := p.retryDelay(1, 7*time.Second); d != 7*time.Second {
		t.Fatalf("Retry-After override = %v", d)
	}
	// Full jitter: uniform in (0, base<<(attempt-1)], capped at MaxDelay.
	for attempt, cap := range map[int]time.Duration{1: 100 * time.Millisecond, 3: 400 * time.Millisecond, 10: time.Second} {
		for i := 0; i < 50; i++ {
			if d := p.retryDelay(attempt, 0); d <= 0 || d > cap {
				t.Fatalf("retryDelay(%d) = %v, want in (0, %v]", attempt, d, cap)
			}
		}
	}
	// Zero-valued policy falls back to the documented defaults.
	zp := &RetryPolicy{}
	for i := 0; i < 50; i++ {
		if d := zp.retryDelay(1, 0); d <= 0 || d > 100*time.Millisecond {
			t.Fatalf("zero-policy retryDelay = %v", d)
		}
	}
}

func TestRetryableStatusSet(t *testing.T) {
	for status, want := range map[int]bool{
		http.StatusTooManyRequests:     true,
		http.StatusBadGateway:          true,
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
		http.StatusOK:                  false,
		http.StatusBadRequest:          false,
		http.StatusNotFound:            false,
		http.StatusConflict:            false,
		http.StatusInternalServerError: false,
	} {
		if got := retryableStatus(status); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", status, got, want)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"":        0,
		"0":       0,
		"2":       2 * time.Second,
		" 5 ":     5 * time.Second,
		"-3":      0, // negative delta clamps to 0, not ignored
		"garbage": 0,
		"1.5":     0, // HTTP delta-seconds are integral
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestParseRetryAfterHTTPDate: RFC 9110 §10.2.3 allows Retry-After to
// be an HTTP-date; the client must honor it and clamp past dates to 0.
func TestParseRetryAfterHTTPDate(t *testing.T) {
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got <= 0 || got > 3*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want in (0, 3s]", got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Errorf("parseRetryAfter(past date) = %v, want 0 (clamped)", got)
	}
	// RFC 850 dates are also valid HTTP-dates; http.ParseTime covers
	// every allowed format.
	rfc850 := time.Now().Add(2 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT")
	if got := parseRetryAfter(rfc850); got <= 0 || got > 2*time.Second {
		t.Errorf("parseRetryAfter(rfc850 date) = %v, want in (0, 2s]", got)
	}
}

// TestRetryAfterHTTPDateRoundTrip: a 503 whose Retry-After is an
// HTTP-date must actually pace the retry loop, end to end.
func TestRetryAfterHTTPDateRoundTrip(t *testing.T) {
	var calls int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"promoting"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"role":"leader","ready":true}`))
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	start := time.Now()
	hst, err := c.Health(context.Background())
	if err != nil || hst.Role != "leader" {
		t.Fatalf("retrying client: %+v, %v", hst, err)
	}
	// HTTP-dates have second granularity, so "now + 1s" renders between
	// ~0 and 1s away; the backoff must have honored it rather than the
	// millisecond policy delay alone. A generous floor avoids clock
	// flakiness while still proving the date was parsed.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("retry ignored the HTTP-date Retry-After: total %v", elapsed)
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("made %d attempts, want 2", got)
	}
}

// TestRetryReusesConnection is the leak-detecting satellite test: the
// client must drain and close every response body — retried 429/503s
// with error payloads larger than the APIError's 64KB read cap, and
// successful responses whose JSON decoder stops before the trailing
// newline — so the transport returns connections to the keep-alive
// pool. A leak shows up as one new dial per request.
func TestRetryReusesConnection(t *testing.T) {
	// Error bodies larger than the APIError path's 64KB cap: without
	// the deferred drain, the remainder goes unread and the transport
	// tears the connection down instead of reusing it.
	pad := strings.Repeat("x", 100*1024)
	var calls int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"` + pad + `"}`))
			return
		}
		w.Write([]byte(`{"role":"leader","ready":true}` + "\n"))
	}))
	defer hs.Close()

	var dials int32
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			atomic.AddInt32(&dials, 1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
	}
	defer tr.CloseIdleConnections()

	c := NewClient(hs.URL)
	c.HTTPClient = &http.Client{Transport: tr}
	c.Retry = &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	hst, err := c.Health(context.Background())
	if err != nil || hst.Role != "leader" {
		t.Fatalf("retrying client: %+v, %v", hst, err)
	}
	// A second successful call exercises the decoder path: its body
	// ends in a newline json.Decoder never consumes.
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&calls); got != 4 {
		t.Fatalf("made %d requests, want 4", got)
	}
	if got := atomic.LoadInt32(&dials); got != 1 {
		t.Fatalf("%d connections dialed across 4 requests, want 1 (leaked bodies defeat keep-alive)", got)
	}
}

// isStatusErr reports whether err is an APIError with the status.
func isStatusErr(err error, status int) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.Status == status
}
