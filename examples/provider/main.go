// Command provider looks at the paper's trade-off the way a hosting
// provider would (§VI future work: "economical decision making"):
// every job pays for its reserved CPU-hours scaled by the SLA
// satisfaction actually delivered, every kWh costs money, and the
// provider maximizes profit rather than either metric alone.
//
// Three operating modes of the score-based policy are compared on the
// same two-day workload:
//
//   - conservative static thresholds (λ 20–90): best QoS, most watts;
//   - aggressive static thresholds (λ 50–90): fewest watts, QoS risk;
//   - adaptive thresholds (the paper's future-work dynamic λ): hold
//     satisfaction at 98 % and harvest whatever energy that allows.
//
// A second section quantifies the DVFS context of §II: the same run
// costed under the measured ondemand frequency governor versus
// machines pinned to the performance governor — consolidation is
// worth more on fleets that cannot scale frequency down.
package main

import (
	"fmt"
	"log"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/dvfs"
	"energysched/internal/economics"
	"energysched/internal/power"
	"energysched/internal/workload"
)

func trace() *workload.Trace {
	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = 2 * 24 * 3600
	return workload.MustGenerate(gen)
}

func run(label string, tr *workload.Trace, lmin float64, adaptive float64, classes []cluster.Class) (datacenterOutcome, error) {
	sim, err := datacenter.New(datacenter.Config{
		Classes:        classes,
		Trace:          tr,
		Policy:         core.MustScheduler(core.SBConfig()),
		LambdaMin:      lmin,
		LambdaMax:      90,
		Seed:           1,
		AdaptiveTarget: adaptive,
	})
	if err != nil {
		return datacenterOutcome{}, err
	}
	rep, err := sim.Run()
	if err != nil {
		return datacenterOutcome{}, err
	}
	out, err := economics.DefaultTariff().Evaluate(sim.VMs(), rep)
	if err != nil {
		return datacenterOutcome{}, err
	}
	return datacenterOutcome{label: label, kwh: rep.EnergyKWh, s: rep.Satisfaction, eco: out}, nil
}

type datacenterOutcome struct {
	label string
	kwh   float64
	s     float64
	eco   economics.Outcome
}

func governedFleet(gov dvfs.Governor) []cluster.Class {
	classes := cluster.PaperClasses()
	for i := range classes {
		classes[i].Power = dvfs.Wrap(power.PaperTableI(), gov)
	}
	return classes
}

func main() {
	log.SetFlags(0)
	tr := trace()
	fmt.Printf("workload: %d jobs, %.0f CPU-hours over two days\n\n", tr.Len(), tr.TotalCPUHours())

	fmt.Println("— profit under three threshold strategies (tariff: 0.10/CPUh, 0.12/kWh) —")
	for _, mode := range []struct {
		label    string
		lmin     float64
		adaptive float64
	}{
		{"conservative λ20-90", 20, 0},
		{"aggressive  λ50-90", 50, 0},
		{"adaptive    S→98%", 30, 98},
	} {
		out, err := run(mode.label, tr, mode.lmin, mode.adaptive, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s  %7.1f kWh  S %5.1f%%  %s\n", out.label, out.kwh, out.s, out.eco)
	}

	fmt.Println("\n— the same workload on differently-governed fleets (λ 30-90) —")
	for _, g := range []dvfs.Governor{dvfs.OnDemand{}, dvfs.Performance{}} {
		out, err := run(g.Name(), tr, 30, 0, governedFleet(g))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s governor  %7.1f kWh  S %5.1f%%  profit %8.2f\n",
			out.label, out.kwh, out.s, out.eco.Profit)
	}
	fmt.Println("\nPinned-performance machines make every online hour pricier, so")
	fmt.Println("consolidation (and turning nodes off) buys even more there — the")
	fmt.Println("synergy §II alludes to between DVFS and power-aware scheduling.")
}
