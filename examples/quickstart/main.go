// Command quickstart is the minimal walkthrough of the energysched
// public API: generate a one-day synthetic Grid workload, run it
// through the paper's score-based policy and the Backfilling
// baseline, and compare energy and QoS.
package main

import (
	"fmt"
	"log"

	"energysched"
)

func main() {
	trace := energysched.GenerateTrace(energysched.TraceOptions{Days: 1, Seed: 7})
	fmt.Printf("workload: %d jobs, %.1f CPU-hours\n\n", trace.Len(), trace.TotalCPUHours())

	for _, pol := range []string{"BF", "SB"} {
		res, err := energysched.Run(energysched.Options{
			Policy: pol,
			Trace:  trace,
			// The paper's balanced thresholds: start booting nodes
			// when 90 % of online machines are working, start
			// shutting down below 30 %.
			LambdaMin: 30,
			LambdaMax: 90,
		})
		if err != nil {
			log.Fatalf("run %s: %v", pol, err)
		}
		fmt.Println(res)
	}
}
