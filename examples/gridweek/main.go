// Command gridweek reproduces the paper's headline experiment: one
// week of Grid5000-like HPC workload on the 100-node datacenter,
// scheduled by every policy the paper compares — Random, Round-Robin,
// Backfilling, Dynamic Backfilling, and the score-based policy in its
// basic (SB0) and full (SB) configurations — and reports the paper's
// metrics side by side, including the energy saving of each policy
// relative to Backfilling.
package main

import (
	"fmt"
	"log"

	"energysched"
	"energysched/internal/metrics"
)

func main() {
	log.SetFlags(0)

	trace := energysched.GenerateTrace(energysched.TraceOptions{Days: 7, Seed: 1})
	fmt.Printf("Grid week: %d jobs, %.0f CPU-hours (paper's week executed ≈6055 CPU-h)\n\n",
		trace.Len(), trace.TotalCPUHours())

	type run struct {
		policy     string
		lmin, lmax float64
	}
	runs := []run{
		{"RD", 30, 90},
		{"RR", 30, 90},
		{"BF", 30, 90},
		{"SB0", 30, 90},
		{"DBF", 30, 90},
		{"SB", 30, 90},
		{"SB", 40, 90}, // the paper's headline configuration
	}

	fmt.Println(metrics.TableHeader())
	var bfEnergy float64
	results := make([]energysched.Result, 0, len(runs))
	for _, r := range runs {
		res, err := energysched.Run(energysched.Options{
			Policy:    r.policy,
			Trace:     trace,
			LambdaMin: r.lmin,
			LambdaMax: r.lmax,
		})
		if err != nil {
			log.Fatalf("%s: %v", r.policy, err)
		}
		if r.policy == "BF" {
			bfEnergy = res.EnergyKWh
		}
		results = append(results, res)
		fmt.Println(res)
	}

	fmt.Println("\nenergy relative to Backfilling:")
	for _, res := range results {
		if bfEnergy <= 0 {
			break
		}
		saving := (1 - res.EnergyKWh/bfEnergy) * 100
		fmt.Printf("  %-4s λ=%2.0f-%2.0f  %+6.1f %%\n", res.Policy, res.LambdaMin, res.LambdaMax, saving)
	}
	fmt.Println("\n(the paper reports a 15 % reduction for SB at aggressive thresholds)")
}
