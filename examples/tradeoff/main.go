// Command tradeoff explores the power-vs-QoS trade-off of §V-A: it
// sweeps the λmin/λmax turn-on/off thresholds (Figures 2 and 3 of the
// paper) on a one-day workload and prints an ASCII rendering of both
// surfaces, showing how aggressive thresholds cut energy at the cost
// of client satisfaction — and how λmin = 30 / λmax = 90 lands on the
// balanced spot the paper selects.
package main

import (
	"fmt"
	"log"

	"energysched/internal/experiments"
	"energysched/internal/workload"
)

func main() {
	log.SetFlags(0)

	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = 24 * 3600
	trace, err := workload.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs, %.0f CPU-hours (one day)\n\n", trace.Len(), trace.TotalCPUHours())

	cfg := experiments.SweepConfig{
		LambdaMins: []float64{10, 30, 50, 70},
		LambdaMaxs: []float64{40, 60, 80, 100},
		Policy:     "SB",
	}
	points, err := experiments.LambdaSweep(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	byCell := map[[2]float64]experiments.SweepPoint{}
	for _, p := range points {
		byCell[[2]float64{p.LambdaMin, p.LambdaMax}] = p
	}

	render := func(title string, value func(experiments.SweepPoint) float64, format string) {
		fmt.Println(title)
		fmt.Printf("          ")
		for _, lmax := range cfg.LambdaMaxs {
			fmt.Printf("λmax=%3.0f  ", lmax)
		}
		fmt.Println()
		for _, lmin := range cfg.LambdaMins {
			fmt.Printf("λmin=%3.0f  ", lmin)
			for _, lmax := range cfg.LambdaMaxs {
				p, ok := byCell[[2]float64{lmin, lmax}]
				if !ok {
					fmt.Printf("%8s  ", "—")
					continue
				}
				fmt.Printf(format, value(p))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	render("Figure 2 — total power (kWh): falls as thresholds get aggressive",
		func(p experiments.SweepPoint) float64 { return p.PowerKWh }, "%8.1f  ")
	render("Figure 3 — client satisfaction S (%): falls with them too",
		func(p experiments.SweepPoint) float64 { return p.Satisfaction }, "%8.2f  ")

	balanced := byCell[[2]float64{30, 100}]
	fmt.Printf("The paper picks λmin=30, λmax=90 as the balanced operating point\n")
	fmt.Printf("(compare row λmin=30 above; e.g. λmax=100 cell: %.1f kWh at S=%.1f%%).\n",
		balanced.PowerKWh, balanced.Satisfaction)
}
