// Command faulttolerance exercises the parts of the scheduling policy
// the paper describes but leaves to future work (§III-A5/6 and §VI):
// node failures driven by per-class reliability factors, checkpoint
// recovery, and the reliability penalty P_fault that steers VMs away
// from flaky machines.
//
// It runs the same failure-prone fleet three ways:
//
//  1. score-based policy, reliability-blind (P_fault disabled);
//  2. score-based policy with P_fault enabled;
//  3. the same plus periodic checkpointing.
//
// With P_fault the scheduler concentrates work on the reliable class
// (fewer restarts); with checkpointing the restarts that still happen
// lose less work (better satisfaction).
package main

import (
	"fmt"
	"log"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/workload"
)

func flakyFleet() []cluster.Class {
	classes := cluster.PaperClasses()
	// Shrink the fleet and make the *fast* class decidedly
	// unreliable: up only 90 % of the time (MTBF ≈ 4.5 h at a
	// 30-minute repair time). Fast nodes are otherwise the most
	// attractive machines — cheap creations, cheap migrations — so a
	// reliability-blind scheduler happily packs VMs onto them.
	classes[0].Count = 8
	classes[0].Reliability = 0.90
	classes[1].Count = 10
	classes[2].Count = 6
	return classes
}

func run(label string, pol *core.Scheduler, checkpoint float64, trace *workload.Trace) metrics.Report {
	sim, err := datacenter.New(datacenter.Config{
		Classes:            flakyFleet(),
		Trace:              trace,
		Policy:             pol,
		LambdaMin:          30,
		LambdaMax:          90,
		Seed:               1,
		FailuresEnabled:    true,
		MTTR:               1800,
		CheckpointInterval: checkpoint,
	})
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	rep, err := sim.Run()
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	rep.Policy = label
	restarts := 0
	for _, v := range sim.VMs() {
		restarts += v.Restarts
	}
	fmt.Printf("%v   restarts %d\n", rep, restarts)
	return rep
}

func main() {
	log.SetFlags(0)

	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = 2 * 24 * 3600
	gen.JobsPerDay = 120 // a 30-node fleet, so scale the load down
	trace, err := workload.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs, %.0f CPU-hours on a 30-node fleet with a flaky slow class\n\n",
		trace.Len(), trace.TotalCPUHours())
	fmt.Println(metrics.TableHeader())

	blind := core.SBConfig()
	blind.EnableFault = false
	aware := core.SBConfig()
	aware.EnableFault = true

	run("blind", core.MustScheduler(blind), 0, trace)
	run("Pfault", core.MustScheduler(aware), 0, trace)
	run("P+ckpt", core.MustScheduler(aware), 900, trace)

	fmt.Println("\nP_fault steers VMs off the unreliable class; checkpoints shrink the")
	fmt.Println("work lost per failure. Both are §VI future-work features, implemented.")
}
