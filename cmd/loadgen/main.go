// Command loadgen drives a running energyschedd daemon with
// concurrent job submitters and report pollers, then prints client-
// side latency quantiles (p50/p90/p99/max) measured with the same
// log-linear histogram the daemon exports on /metrics. It is the
// closed-loop half of the observability story: generate load here,
// watch the serving-path histograms and decision traces there.
//
//	loadgen -addr http://localhost:7781 -submitters 8 -pollers 2 -duration 30s
//	loadgen -addr http://localhost:7781 -fleet batch -duration 10s
//	loadgen -addr http://localhost:7781 -tailers 2 -json -duration 10s
//
// -tailers adds journey-firehose SSE consumers (the daemon's
// streaming path under load); -json prints the summary as one JSON
// object for harnesses that threshold the numbers.
//
// Submitters allocate strictly increasing virtual submit times from a
// shared counter, so most jobs admit cleanly; losing the watermark
// race yields a 409, and a rate-limited or queue-saturated fleet sheds
// with 429 — both counted separately, not as errors (backpressure is
// the daemon working, not failing). The target fleet is never sealed —
// drain it yourself when done.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"energysched"
	"energysched/internal/cli"
	"energysched/internal/metrics"
)

type config struct {
	submitters, pollers, tailers int
	duration                     time.Duration
}

// stats aggregates one run: request counters plus client-side latency
// histograms for the submit and report paths, plus the journey
// firehose consumption of the tailer workers.
type stats struct {
	accepted, conflicts, submitErrs atomic.Int64
	throttled                       atomic.Int64
	polls, pollErrs                 atomic.Int64
	steps, tailErrs                 atomic.Int64
	submit, poll                    metrics.Histogram
}

// run hammers the daemon until ctx expires: cfg.submitters goroutines
// submit jobs with increasing virtual times, cfg.pollers poll the
// report endpoint, every request timed into the matching histogram.
func run(ctx context.Context, client *energysched.Client, cfg config) *stats {
	st := &stats{}
	var vclock atomic.Int64 // virtual submit-time allocator, shared
	var wg sync.WaitGroup
	for g := 0; g < cfg.submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				submit := float64(vclock.Add(15))
				spec := energysched.JobSpec{
					CPU: 100 + float64((g+i)%3)*100, Mem: 5,
					Duration: 600 + float64(i%5)*120,
					Submit:   &submit, DeadlineFactor: 1.5,
				}
				start := time.Now()
				_, err := client.SubmitJob(ctx, spec)
				if ctx.Err() != nil {
					return // deadline mid-request; not a daemon failure
				}
				st.submit.ObserveSince(start)
				var apiErr *energysched.APIError
				switch {
				case err == nil:
					st.accepted.Add(1)
				case errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict:
					st.conflicts.Add(1)
				case errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests:
					// Backpressure working as designed (rate limit or full
					// admission queue), not a daemon failure.
					st.throttled.Add(1)
				default:
					st.submitErrs.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < cfg.pollers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				start := time.Now()
				_, err := client.Report(ctx)
				if ctx.Err() != nil {
					return
				}
				st.poll.ObserveSince(start)
				st.polls.Add(1)
				if err != nil {
					st.pollErrs.Add(1)
				}
			}
		}()
	}
	// Tailers consume the journey firehose over SSE while the
	// submitters generate it — the streaming half of the closed loop.
	// A broken stream (daemon restart, proxy cut) reconnects from
	// sequence 0; the counter tracks steps received, not unique steps.
	for g := 0; g < cfg.tailers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				err := client.JourneyTail(ctx, 0, func(energysched.JourneyEvent) error {
					st.steps.Add(1)
					return nil
				})
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					st.tailErrs.Add(1)
					select {
					case <-time.After(200 * time.Millisecond):
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return st
}

// render prints the run summary: counters plus the latency quantiles
// of both request paths.
func (st *stats) render(w io.Writer) {
	fmt.Fprintf(w, "submit: %d accepted, %d conflicts (watermark races), %d throttled (429), %d errors\n",
		st.accepted.Load(), st.conflicts.Load(), st.throttled.Load(), st.submitErrs.Load())
	fmt.Fprintf(w, "        %s\n", latencyLine(&st.submit))
	fmt.Fprintf(w, "report: %d polls, %d errors\n", st.polls.Load(), st.pollErrs.Load())
	fmt.Fprintf(w, "        %s\n", latencyLine(&st.poll))
	if st.steps.Load() > 0 || st.tailErrs.Load() > 0 {
		fmt.Fprintf(w, "tail:   %d journey steps, %d stream errors\n",
			st.steps.Load(), st.tailErrs.Load())
	}
}

// pathJSON is one request path's slice of the -json report.
type pathJSON struct {
	Count  int64    `json:"count"`
	Errors int64    `json:"errors"`
	P50    *float64 `json:"p50_s,omitempty"`
	P90    *float64 `json:"p90_s,omitempty"`
	P99    *float64 `json:"p99_s,omitempty"`
	Max    *float64 `json:"max_s,omitempty"`
}

// runJSON is the machine-readable run summary (-json).
type runJSON struct {
	Submit    pathJSON `json:"submit"`
	Conflicts int64    `json:"conflicts"`
	Throttled int64    `json:"throttled"`
	Report    pathJSON `json:"report"`
	Steps     int64    `json:"journey_steps"`
	TailErrs  int64    `json:"tail_errors"`
}

// renderJSON prints the run summary as one JSON object, for harnesses
// that diff or threshold the numbers instead of reading them.
func (st *stats) renderJSON(w io.Writer) error {
	quantiles := func(h *metrics.Histogram, p *pathJSON) {
		if h.Count() == 0 {
			return
		}
		for _, q := range []struct {
			dst **float64
			q   float64
		}{{&p.P50, 0.5}, {&p.P90, 0.9}, {&p.P99, 0.99}} {
			v := h.Quantile(q.q)
			*q.dst = &v
		}
		m := h.Max()
		p.Max = &m
	}
	out := runJSON{
		Submit:    pathJSON{Count: st.accepted.Load(), Errors: st.submitErrs.Load()},
		Conflicts: st.conflicts.Load(),
		Throttled: st.throttled.Load(),
		Report:    pathJSON{Count: st.polls.Load(), Errors: st.pollErrs.Load()},
		Steps:     st.steps.Load(),
		TailErrs:  st.tailErrs.Load(),
	}
	quantiles(&st.submit, &out.Submit)
	quantiles(&st.poll, &out.Report)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// latencyLine renders one histogram's quantiles for humans.
func latencyLine(h *metrics.Histogram) string {
	n := h.Count()
	if n == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50 %s  p90 %s  p99 %s  max %s  (n=%d)",
		fmtLat(h.Quantile(0.5)), fmtLat(h.Quantile(0.9)),
		fmtLat(h.Quantile(0.99)), fmtLat(h.Max()), n)
}

// fmtLat renders seconds as a rounded duration.
func fmtLat(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Microsecond).String()
}

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:7781", "daemon base URL")
		fleetID    = flag.String("fleet", "", "target fleet (empty = the default fleet)")
		submitters = flag.Int("submitters", 4, "concurrent job submitters")
		pollers    = flag.Int("pollers", 2, "concurrent report pollers")
		tailers    = flag.Int("tailers", 0, "concurrent journey-firehose SSE consumers")
		jsonOut    = flag.Bool("json", false, "print the run summary as JSON instead of text")
		duration   = flag.Duration("duration", 10*time.Second, "how long to generate load")
	)
	cli.Parse("loadgen")
	if *submitters < 1 || *pollers < 0 || *tailers < 0 || *duration <= 0 {
		cli.Usagef("loadgen", "need -submitters >= 1, -pollers >= 0, -tailers >= 0 and a positive -duration")
	}

	client := energysched.NewClient(*addr)
	if *fleetID != "" {
		client = client.Fleet(*fleetID)
	}
	// Fail fast on a bad address instead of hammering the void.
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	if _, err := client.Report(ctx); err != nil {
		cli.Fatalf("loadgen", "daemon unreachable at %s: %v", *addr, err)
	}

	cli.Logger().With("component", "loadgen").Info("generating load",
		"addr", *addr, "submitters", *submitters, "pollers", *pollers, "duration", *duration)
	st := run(ctx, client, config{
		submitters: *submitters, pollers: *pollers, tailers: *tailers, duration: *duration,
	})
	if *jsonOut {
		if err := st.renderJSON(os.Stdout); err != nil {
			cli.Fatalf("loadgen", "encoding summary: %v", err)
		}
	} else {
		st.render(os.Stdout)
	}
	if st.submitErrs.Load() > 0 || st.pollErrs.Load() > 0 {
		os.Exit(1)
	}
}
