package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"energysched"
	"energysched/internal/metrics"
	"energysched/internal/server"
)

// The generator loop against a real in-process daemon: submissions
// land, pollers read reports, no request errors, and the rendered
// summary carries quantiles from both paths.
func TestRunAgainstInProcessDaemon(t *testing.T) {
	srv, err := server.New(server.Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() { hs.Close(); srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	st := run(ctx, energysched.NewClient(hs.URL), config{submitters: 3, pollers: 2})

	if st.accepted.Load() == 0 {
		t.Fatal("no jobs accepted")
	}
	if st.submitErrs.Load() != 0 || st.pollErrs.Load() != 0 {
		t.Fatalf("request errors: submit %d, poll %d", st.submitErrs.Load(), st.pollErrs.Load())
	}
	if st.polls.Load() == 0 {
		t.Fatal("pollers made no requests")
	}
	if st.submit.Count() == 0 || st.poll.Count() == 0 {
		t.Fatal("histograms recorded nothing")
	}

	var sb strings.Builder
	st.render(&sb)
	out := sb.String()
	for _, want := range []string{"accepted", "p50", "p99", "max", "report:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// latencyLine quantiles come from the shared histogram math; pin the
// empty case and the unit scaling.
func TestLatencyLine(t *testing.T) {
	var h metrics.Histogram
	if got := latencyLine(&h); got != "no samples" {
		t.Fatalf("empty histogram line = %q", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}
	line := latencyLine(&h)
	// Quantiles interpolate within the log-linear bucket, so pin the
	// exact max and the millisecond scaling rather than p50's midpoint.
	if !strings.Contains(line, "max 2ms") || !strings.Contains(line, "p50 1") ||
		!strings.Contains(line, "ms") || !strings.Contains(line, "n=100") {
		t.Fatalf("latency line = %q", line)
	}
}
