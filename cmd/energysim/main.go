// Command energysim runs one datacenter simulation: a workload trace
// (from a file or the built-in Grid5000-like generator) scheduled by a
// chosen policy on the paper's 100-node fleet, reporting the same
// metrics as the paper's result tables.
//
// Examples:
//
//	energysim -policy SB -days 7
//	energysim -policy BF -trace week.csv -lmin 40 -lmax 90
//	energysim -policy SB -failures -checkpoint 600
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"energysched"
	"energysched/internal/cli"
	"energysched/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("energysim: ")

	var (
		policyName = flag.String("policy", "SB", "scheduling policy: RD, RR, BF, DBF, SB0, SB1, SB2, SB")
		traceFile  = flag.String("trace", "", "workload trace CSV (empty = generate synthetically)")
		gwfFile    = flag.String("gwf", "", "workload trace in Grid Workloads Format")
		days       = flag.Float64("days", 7, "days of synthetic workload when no trace file is given")
		seed       = flag.Int64("seed", 1, "random seed")
		lmin       = flag.Float64("lmin", 30, "λmin: working ratio below which idle nodes are shut down (%)")
		lmax       = flag.Float64("lmax", 90, "λmax: working ratio above which nodes are booted (%)")
		cempty     = flag.Float64("cempty", 20, "Ce: empty-host penalty of the score-based policy")
		cfill      = flag.Float64("cfill", 40, "Cf: occupied-host reward of the score-based policy")
		failures   = flag.Bool("failures", false, "enable reliability-driven node failures")
		checkpoint = flag.Float64("checkpoint", 0, "checkpoint interval in seconds (0 = off)")
		adaptive   = flag.Float64("adaptive", 0, "dynamic-λ satisfaction target in percent (0 = static thresholds)")
		shards     = flag.Int("shards", 0, "solver shards per scheduling round: 0 = serial, -1 = GOMAXPROCS, K = exactly K (results are byte-identical at any setting)")
		stream     = flag.Bool("stream", false, "stream the workload incrementally (O(1) memory in trace length; results are byte-identical to the materialized run)")
		nodes      = flag.Int("nodes", 0, "heterogeneous scale fleet of this many nodes (0 = the paper's 100-node fleet)")
		eventsOut  = flag.String("events", "", "write the JSONL event log to this file")
		jobsOut    = flag.String("jobs", "", "write per-job outcomes CSV to this file")
		powerOut   = flag.String("power", "", "write the datacenter power trace CSV to this file")
	)
	cli.Parse("energysim")

	var trace *energysched.Trace
	if *stream {
		fmt.Println("workload: streaming (not materialized)")
	} else {
		var err error
		if trace, err = loadTrace(*traceFile, *gwfFile, *days, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: %d jobs, %.1f CPU-hours over %.1f days\n",
			trace.Len(), trace.TotalCPUHours(), trace.Makespan()/86400)
	}

	opts := energysched.Options{
		Policy:            *policyName,
		Trace:             trace,
		LambdaMin:         *lmin,
		LambdaMax:         *lmax,
		Seed:              *seed,
		Score:             &energysched.ScoreParams{Cempty: *cempty, Cfill: *cfill},
		Failures:          *failures,
		CheckpointSeconds: *checkpoint,
		AdaptiveTarget:    *adaptive,
		Shards:            *shards,
	}
	if *nodes > 0 {
		opts.Classes = energysched.ScaleClasses(*nodes)
	}
	var closers []func() error
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			log.Fatal(err)
		}
		closers = append(closers, f.Close)
		enc := json.NewEncoder(f)
		opts.EventLog = func(e energysched.Event) {
			if err := enc.Encode(e); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *jobsOut != "" {
		f, err := os.Create(*jobsOut)
		if err != nil {
			log.Fatal(err)
		}
		closers = append(closers, f.Close)
		opts.JobsCSV = f
	}
	if *powerOut != "" {
		f, err := os.Create(*powerOut)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		closers = append(closers, w.Flush, f.Close) // flush, then close
		if _, err := fmt.Fprintln(w, "time_s,watts"); err != nil {
			log.Fatal(err)
		}
		opts.PowerTrace = func(t, watts float64) {
			fmt.Fprintf(w, "%.3f,%.1f\n", t, watts)
		}
	}
	var res energysched.Result
	var err error
	if *stream {
		src, serr := loadSource(*traceFile, *gwfFile, *days, *seed)
		if serr != nil {
			log.Fatal(serr)
		}
		res, err = energysched.RunStream(opts, src)
	} else {
		res, err = energysched.Run(opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range closers {
		if err := c(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(metrics.TableHeader())
	fmt.Println(res)
	if res.Failures > 0 {
		fmt.Printf("failures injected: %d\n", res.Failures)
	}
}

// loadSource is loadTrace's streaming twin: the same inputs as
// incremental sources, so week-long files feed the run in O(1) memory.
// File sources are read lazily; the file closes with the process.
func loadSource(csvPath, gwfPath string, days float64, seed int64) (energysched.JobSource, error) {
	switch {
	case csvPath != "" && gwfPath != "":
		return nil, fmt.Errorf("give either -trace or -gwf, not both")
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		return energysched.StreamTraceCSV(f)
	case gwfPath != "":
		f, err := os.Open(gwfPath)
		if err != nil {
			return nil, err
		}
		return energysched.StreamTraceGWF(f)
	default:
		return energysched.GenerateTraceSource(energysched.TraceOptions{Days: days, Seed: seed})
	}
}

func loadTrace(csvPath, gwfPath string, days float64, seed int64) (*energysched.Trace, error) {
	switch {
	case csvPath != "" && gwfPath != "":
		return nil, fmt.Errorf("give either -trace or -gwf, not both")
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return energysched.ReadTraceCSV(f)
	case gwfPath != "":
		f, err := os.Open(gwfPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return energysched.ReadTraceGWF(f)
	default:
		return energysched.GenerateTrace(energysched.TraceOptions{Days: days, Seed: seed}), nil
	}
}
