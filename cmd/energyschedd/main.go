// Command energyschedd hosts the energy-aware scheduler as a
// long-running service: jobs are admitted over an HTTP/JSON API
// instead of replayed from a trace file, the fleet and the paper
// metrics are observable while the simulation runs, events stream
// over SSE, and the daemon state can be checkpointed to disk and
// restored after a restart.
//
// The daemon hosts many independent fleets per process, each an
// isolated scheduler instance with its own event loop and clock pace;
// with -wal-dir every fleet also gets a durable admission log
// (write-ahead log + interval-compacted snapshots), so a killed
// daemon restarts into exactly the state it acknowledged.
//
// Since PR 6 a second daemon can run as a warm standby: -follow
// streams every leader fleet's admission log into local mirrors and
// POST /v1/promote (or -promote-grace leader-loss detection) flips it
// to serving with fleet state byte-identical to the leader's.
//
//	energyschedd -listen :7781 -pace max
//	energyschedd -listen :7781 -fleets default,batch=BF -wal-dir /var/lib/energyschedd -snapshot-interval 256
//	energyschedd -restore /var/lib/energyschedd/energyschedd-120.snapshot.json
//	energyschedd -listen :7782 -follow http://localhost:7781 -promote-grace 5s -wal-dir /var/lib/energyschedd-standby
//
// API quickstart (see docs/ARCHITECTURE.md, "Service mode" and
// "Multi-fleet & durability"):
//
//	curl -s -X POST localhost:7781/v1/jobs -d '{"cpu_pct":200,"mem_units":10,"duration_s":3600}'
//	curl -s -X POST localhost:7781/v1/jobs -d '[{"cpu_pct":100,"mem_units":5,"duration_s":600},{"cpu_pct":100,"mem_units":5,"duration_s":600}]'
//	curl -s -X POST localhost:7781/v1/fleets -d '{"id":"batch","policy":"BF"}'
//	curl -s localhost:7781/v1/fleets/batch/report | jq -r .table
//	curl -s localhost:7781/v1/cluster | jq .nodes_on
//	curl -s -N localhost:7781/v1/events
//	curl -s 'localhost:7781/v1/series?metric=watts&step=3600'
//	curl -s localhost:7781/v1/jobs/0/journey | jq .steps
//	curl -s localhost:7781/v1/alerts | jq .firing
//	curl -s -X POST localhost:7781/v1/snapshot
package main

import (
	"context"
	"errors"
	_ "expvar" // GET /debug/vars on -debug-addr
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // GET /debug/pprof/* on -debug-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"energysched"
	"energysched/internal/cli"
	"energysched/internal/fleet"
	"energysched/internal/obs"
	"energysched/internal/obs/slo"
	"energysched/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("energyschedd: ")

	var (
		listen     = flag.String("listen", ":7781", "HTTP listen address")
		policyName = flag.String("policy", "SB", "scheduling policy: RD, RR, BF, DBF, SB0, SB1, SB2, SB")
		seed       = flag.Int64("seed", 1, "random seed")
		lmin       = flag.Float64("lmin", 30, "λmin: working ratio below which idle nodes are shut down (%)")
		lmax       = flag.Float64("lmax", 90, "λmax: working ratio above which nodes are booted (%)")
		cempty     = flag.Float64("cempty", 20, "Ce: empty-host penalty of the score-based policy")
		cfill      = flag.Float64("cfill", 40, "Cf: occupied-host reward of the score-based policy")
		failures   = flag.Bool("failures", false, "enable reliability-driven node failures")
		checkpoint = flag.Float64("checkpoint", 0, "VM checkpoint interval in virtual seconds (0 = off)")
		adaptive   = flag.Float64("adaptive", 0, "dynamic-λ satisfaction target in percent (0 = static)")
		shards     = flag.Int("shards", 0, "solver shards per scheduling round: 0 = serial, -1 = GOMAXPROCS, K = exactly K (decisions are byte-identical at any setting)")
		pace       = flag.String("pace", "max", "virtual pacing: 'max' (admission-gated, deterministic) or virtual seconds per wall second (e.g. 1, 60)")
		snapDir    = flag.String("snapshot-dir", ".", "directory for unnamed snapshots")
		restore    = flag.String("restore", "", "restore this snapshot into the default fleet before serving")
		fleets     = flag.String("fleets", "default", "comma-separated fleets to host: name or name=policy (the 'default' fleet is always created)")
		maxFleets  = flag.Int("max-fleets", 64, "cap on hosted fleets; POST /v1/fleets returns 429 at the cap (0 = unlimited; startup fleets are exempt)")
		walDir     = flag.String("wal-dir", "", "durable root for per-fleet admission WALs + compaction snapshots (empty = in-memory only)")
		snapEvery  = flag.Int("snapshot-interval", 256, "WAL records per compaction snapshot (0 = never compact)")
		walSync    = flag.String("wal-sync", "always", "WAL append sync policy: 'always' (fsync per admission) or 'os' (page cache)")
		follow     = flag.String("follow", "", "warm-standby mode: continuously mirror the leader daemon at this base URL (e.g. http://leader:7781); writes are rejected until promotion")
		graceFlag  = flag.Duration("promote-grace", 0, "in -follow mode, auto-promote after this long without leader contact (0 = manual POST /v1/promote only)")
		followPoll = flag.Duration("follow-poll", 0, "in -follow mode, leader fleet-discovery period (0 = default 1s)")
		traceVerb  = flag.String("trace", "off", "decision-trace recording level per fleet: off, rounds, actions, scores (pure observability; scheduling is byte-identical at any level)")
		traceDepth = flag.Int("trace-depth", 0, "round traces each fleet retains for GET /trace (0 = default 256)")
		seriesDep  = flag.Int("series-depth", 0, "accounting samples each fleet retains for GET /series (0 = default 4096)")
		journeyDep = flag.Int("journey-depth", 0, "job journeys each fleet retains for GET /jobs/{id}/journey (0 = default 2048)")
		sloFile    = flag.String("slo-file", "", "JSON file of SLO objectives applied to every fleet (burn-rate alerts on GET /v1/alerts)")
		ssePing    = flag.Duration("sse-ping", 0, "SSE keepalive ping interval for /events, /trace and /journeys streams (0 = default 15s)")
		admShards  = flag.Int("admit-shards", 0, "admission intake shards per fleet (0 = default 1; byte-identical at any K)")
		admQueue   = flag.Int("admit-queue", 0, "bounded depth of each admission shard queue (0 = default 256; full queues shed with 429)")
		rateLimit  = flag.Float64("rate-limit", 0, "per-fleet admission rate limit in jobs/sec (0 = unlimited; over-limit submits get 429 + Retry-After)")
		rateBurst  = flag.Int("rate-burst", 0, "admission token-bucket burst in jobs (0 = one second's worth of -rate-limit)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060); empty = disabled")
	)
	cli.Parse("energyschedd")

	paceVal := 0.0 // <= 0 selects max pacing
	if *pace != "max" {
		v, err := strconv.ParseFloat(*pace, 64)
		if err != nil || v <= 0 {
			cli.Usagef("energyschedd", "-pace must be 'max' or a positive number, got %q", *pace)
		}
		paceVal = v
	}
	if *walSync != fleet.SyncAlways && *walSync != fleet.SyncOS {
		cli.Usagef("energyschedd", "-wal-sync must be 'always' or 'os', got %q", *walSync)
	}
	if *shards < -1 {
		cli.Usagef("energyschedd", "-shards must be >= -1, got %d", *shards)
	}
	if _, err := obs.ParseVerbosity(*traceVerb); err != nil {
		cli.Usagef("energyschedd", "-trace: %v", err)
	}
	if *seriesDep < 0 || *journeyDep < 0 {
		cli.Usagef("energyschedd", "-series-depth and -journey-depth must be >= 0")
	}
	if *ssePing < 0 {
		cli.Usagef("energyschedd", "-sse-ping must be >= 0")
	}
	if *admShards < 0 || *admQueue < 0 || *rateLimit < 0 || *rateBurst < 0 {
		cli.Usagef("energyschedd", "-admit-shards, -admit-queue, -rate-limit and -rate-burst must be >= 0")
	}
	var objectives []slo.Objective
	if *sloFile != "" {
		data, err := os.ReadFile(*sloFile)
		if err != nil {
			cli.Fatalf("energyschedd", "-slo-file: %v", err)
		}
		objectives, err = slo.Parse(data)
		if err != nil {
			cli.Fatalf("energyschedd", "-slo-file %s: %v", *sloFile, err)
		}
	}
	if *follow != "" {
		if *restore != "" {
			cli.Usagef("energyschedd", "-restore cannot be combined with -follow (a follower's state comes from the leader)")
		}
		if !strings.HasPrefix(*follow, "http://") && !strings.HasPrefix(*follow, "https://") {
			cli.Usagef("energyschedd", "-follow must be a base URL (http:// or https://), got %q", *follow)
		}
	}
	var seeds []server.FleetSeed
	for _, tok := range strings.Split(*fleets, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		seed := server.FleetSeed{ID: tok}
		if name, pol, ok := strings.Cut(tok, "="); ok {
			seed.ID, seed.Policy = name, pol
		}
		if err := fleet.ValidateID(seed.ID); err != nil {
			cli.Usagef("energyschedd", "-fleets: %v", err)
		}
		seeds = append(seeds, seed)
	}

	srv, err := server.New(server.Config{
		Policy:            *policyName,
		Seed:              *seed,
		LambdaMin:         *lmin,
		LambdaMax:         *lmax,
		Score:             &energysched.ScoreParams{Cempty: *cempty, Cfill: *cfill},
		Failures:          *failures,
		CheckpointSeconds: *checkpoint,
		AdaptiveTarget:    *adaptive,
		Shards:            *shards,
		Pace:              paceVal,
		SnapshotDir:       *snapDir,
		WALDir:            *walDir,
		SnapshotInterval:  *snapEvery,
		WALSync:           *walSync,
		MaxFleets:         *maxFleets,
		Fleets:            seeds,
		Follow:            *follow,
		PromoteGrace:      *graceFlag,
		FollowPoll:        *followPoll,
		TraceVerbosity:    *traceVerb,
		TraceDepth:        *traceDepth,
		SeriesDepth:       *seriesDep,
		JourneyDepth:      *journeyDep,
		SLOs:              objectives,
		SSEHeartbeat:      *ssePing,
		AdmitShards:       *admShards,
		AdmitQueue:        *admQueue,
		RateLimit:         *rateLimit,
		RateBurst:         *rateBurst,
		Logf:              obs.LogfAdapter(cli.Logger().With("component", "server")),
	})
	if err != nil {
		cli.Fatalf("energyschedd", "%v", err)
	}
	defer srv.Close()

	if *restore != "" {
		// The server's Logf reports the restore details.
		if _, err := srv.RestoreFile(*restore); err != nil {
			cli.Fatalf("energyschedd", "restore: %v", err)
		}
	}

	if *debugAddr != "" {
		// http.DefaultServeMux carries the pprof and expvar
		// registrations from the blank imports; a separate listener
		// keeps the profiling surface off the public API port.
		dbg := cli.Logger().With("component", "debug")
		go func() {
			dbg.Info("profiling endpoint up", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				dbg.Error("debug listener failed", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	role := "leader"
	if *follow != "" {
		role = "follower of " + *follow
	}
	cli.Logger().Info("serving", "listen", *listen, "policy", *policyName,
		"pace", *pace, "role", role, "trace", *traceVerb, "version", cli.Version())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("caught %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Fatalf("energyschedd", "%v", err)
		}
	}
	fmt.Println("bye")
}
