// Command energyschedd hosts the energy-aware scheduler as a
// long-running service: jobs are admitted over an HTTP/JSON API
// instead of replayed from a trace file, the fleet and the paper
// metrics are observable while the simulation runs, events stream
// over SSE, and the daemon state can be checkpointed to disk and
// restored after a restart.
//
//	energyschedd -listen :7781 -pace max
//	energyschedd -listen :7781 -pace 60 -policy SB -snapshot-dir /var/lib/energyschedd
//	energyschedd -restore /var/lib/energyschedd/energyschedd-120.snapshot.json
//
// API quickstart (see docs/ARCHITECTURE.md, "Service mode"):
//
//	curl -s -X POST localhost:7781/v1/jobs -d '{"cpu_pct":200,"mem_units":10,"duration_s":3600}'
//	curl -s localhost:7781/v1/cluster | jq .nodes_on
//	curl -s localhost:7781/v1/report | jq -r .table
//	curl -s -N localhost:7781/v1/events
//	curl -s -X POST localhost:7781/v1/snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"energysched"
	"energysched/internal/cli"
	"energysched/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("energyschedd: ")

	var (
		listen     = flag.String("listen", ":7781", "HTTP listen address")
		policyName = flag.String("policy", "SB", "scheduling policy: RD, RR, BF, DBF, SB0, SB1, SB2, SB")
		seed       = flag.Int64("seed", 1, "random seed")
		lmin       = flag.Float64("lmin", 30, "λmin: working ratio below which idle nodes are shut down (%)")
		lmax       = flag.Float64("lmax", 90, "λmax: working ratio above which nodes are booted (%)")
		cempty     = flag.Float64("cempty", 20, "Ce: empty-host penalty of the score-based policy")
		cfill      = flag.Float64("cfill", 40, "Cf: occupied-host reward of the score-based policy")
		failures   = flag.Bool("failures", false, "enable reliability-driven node failures")
		checkpoint = flag.Float64("checkpoint", 0, "VM checkpoint interval in virtual seconds (0 = off)")
		adaptive   = flag.Float64("adaptive", 0, "dynamic-λ satisfaction target in percent (0 = static)")
		pace       = flag.String("pace", "max", "virtual pacing: 'max' (admission-gated, deterministic) or virtual seconds per wall second (e.g. 1, 60)")
		snapDir    = flag.String("snapshot-dir", ".", "directory for unnamed snapshots")
		restore    = flag.String("restore", "", "restore this snapshot before serving")
	)
	cli.Parse("energyschedd")

	paceVal := 0.0 // <= 0 selects max pacing
	if *pace != "max" {
		v, err := strconv.ParseFloat(*pace, 64)
		if err != nil || v <= 0 {
			cli.Usagef("energyschedd", "-pace must be 'max' or a positive number, got %q", *pace)
		}
		paceVal = v
	}

	srv, err := server.New(server.Config{
		Policy:            *policyName,
		Seed:              *seed,
		LambdaMin:         *lmin,
		LambdaMax:         *lmax,
		Score:             &energysched.ScoreParams{Cempty: *cempty, Cfill: *cfill},
		Failures:          *failures,
		CheckpointSeconds: *checkpoint,
		AdaptiveTarget:    *adaptive,
		Pace:              paceVal,
		SnapshotDir:       *snapDir,
		Logf:              log.Printf,
	})
	if err != nil {
		cli.Fatalf("energyschedd", "%v", err)
	}
	defer srv.Close()

	if *restore != "" {
		// The server's Logf reports the restore details.
		if _, err := srv.RestoreFile(*restore); err != nil {
			cli.Fatalf("energyschedd", "restore: %v", err)
		}
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (policy %s, pace %s, version %s)", *listen, *policyName, *pace, cli.Version())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("caught %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Fatalf("energyschedd", "%v", err)
		}
	}
	fmt.Println("bye")
}
