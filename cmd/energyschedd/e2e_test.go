package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"energysched"
	"energysched/internal/server"
)

// The acceptance e2e for the durable admission log: a real
// energyschedd process hosting two fleets is SIGKILLed mid-trace —
// no drain, no snapshot request, no graceful anything — restarted on
// the same -wal-dir, and must serve the exact state it acknowledged:
// recovery replays only the WAL tail after the last compaction
// snapshot, and the drained report is byte-identical to an
// uninterrupted run of the same admission sequence.
func TestE2EKillRestartDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "energyschedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}

	walDir := t.TempDir()
	addr := freeAddr(t)
	args := []string{
		"-listen", addr,
		"-fleets", "default,second=BF",
		"-wal-dir", walDir,
		"-snapshot-interval", "4",
		"-wal-sync", "os", // kill -9 semantics need the page cache, not fsync
	}
	ctx := context.Background()
	base := "http://" + addr
	client := energysched.NewClient(base)

	daemon1 := startDaemon(t, bin, args, base)

	// A batch of 10 (compacts at interval 4) plus 3 sequential
	// admissions that stay in the WAL tail, and 2 jobs on the second
	// fleet.
	batch := make([]energysched.JobSpec, 0, 10)
	for i := 0; i < 10; i++ {
		at := float64(i) * 60
		batch = append(batch, energysched.JobSpec{
			CPU: 100 + float64(i%3)*100, Mem: 5, Duration: 1200, Submit: &at,
		})
	}
	if _, err := client.SubmitJobs(ctx, batch); err != nil {
		t.Fatal(err)
	}
	tail := make([]energysched.JobSpec, 0, 3)
	for i := 0; i < 3; i++ {
		at := 600 + float64(i)*60
		tail = append(tail, energysched.JobSpec{CPU: 200, Mem: 10, Duration: 900, Submit: &at})
	}
	for _, spec := range tail {
		if _, err := client.SubmitJob(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	secondAt := 0.0
	secondJobs := []energysched.JobSpec{
		{CPU: 200, Mem: 10, Duration: 1800, Submit: &secondAt},
		{CPU: 100, Mem: 5, Duration: 3600, Submit: &secondAt},
	}
	if _, err := client.Fleet("second").SubmitJobs(ctx, secondJobs); err != nil {
		t.Fatal(err)
	}

	// The kill: SIGKILL, mid-trace. Nothing gets to flush or say
	// goodbye.
	if err := daemon1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon1.Wait()

	startDaemon(t, bin, args, base)

	d, err := client.GetFleet(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if d.Jobs != 13 {
		t.Fatalf("default fleet recovered %d jobs, want 13", d.Jobs)
	}
	if d.WAL == nil || d.WAL.Replayed != 3 {
		t.Fatalf("default fleet wal stats = %+v, want 3 tail records replayed (batch was compacted)", d.WAL)
	}
	sec, err := client.GetFleet(ctx, "second")
	if err != nil {
		t.Fatal(err)
	}
	if sec.Jobs != 2 || sec.Policy != "BF" {
		t.Fatalf("second fleet recovered as %+v", sec)
	}

	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Fleet("second").Drain(ctx); err != nil {
		t.Fatal(err)
	}
	killedDefault := getBody(t, base+"/v1/report")
	killedSecond := getBody(t, base+"/v1/fleets/second/report")

	// The uninterrupted reference: the same admission sequence against
	// an in-process daemon that never died.
	refSrv, err := server.New(server.Config{
		Policy: "SB", Seed: 1,
		Fleets: []server.FleetSeed{{ID: "second", Policy: "BF"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	refHS := httptest.NewServer(refSrv.Handler())
	defer func() { refHS.Close(); refSrv.Close() }()
	refClient := energysched.NewClient(refHS.URL)
	if _, err := refClient.SubmitJobs(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for _, spec := range tail {
		if _, err := refClient.SubmitJob(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := refClient.Fleet("second").SubmitJobs(ctx, secondJobs); err != nil {
		t.Fatal(err)
	}
	if _, err := refClient.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := refClient.Fleet("second").Drain(ctx); err != nil {
		t.Fatal(err)
	}
	refDefault := getBody(t, refHS.URL+"/v1/report")
	refSecond := getBody(t, refHS.URL+"/v1/fleets/second/report")

	if !bytes.Equal(killedDefault, refDefault) {
		t.Errorf("default fleet diverged after kill+restart:\n got %s\nwant %s", killedDefault, refDefault)
	}
	if !bytes.Equal(killedSecond, refSecond) {
		t.Errorf("second fleet diverged after kill+restart:\n got %s\nwant %s", killedSecond, refSecond)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startDaemon(t *testing.T, bin string, args []string, base string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			defer resp.Body.Close()
			var health struct {
				OK bool `json:"ok"`
			}
			if json.NewDecoder(resp.Body).Decode(&health) == nil && health.OK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon did not become healthy at %s; logs:\n%s", base, logs.String())
	return nil
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}
