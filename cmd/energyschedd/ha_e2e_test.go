package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"energysched"
	"energysched/internal/server"
)

// The acceptance e2e for warm-standby HA: a real leader daemon and a
// real follower daemon, with a fault-injecting TCP proxy between them
// that tears replication frames mid-byte and corrupts one in flight.
// The leader is SIGKILLed mid-batch — some admissions acknowledged,
// some not, the replication stream severed without ceremony. The
// follower is then promoted, and everything it serves — the drained
// report, the job listing, a fresh snapshot file — must be
// byte-identical to an uninterrupted single-process run of exactly
// the admission prefix the follower had applied.

// proxyFault injures one proxied connection: the leader->follower
// byte stream is cut after `cut` bytes (a torn frame at the
// transport), and when flip >= 0 the byte at that stream offset is
// corrupted first (a frame the CRC check must reject).
type proxyFault struct {
	cut  int64
	flip int64
}

// runProxy forwards TCP to target, applying faults[i] to the i-th
// accepted connection; connections beyond the list pass through
// untouched. Returns the proxy's listen address.
func runProxy(t *testing.T, target string, faults []proxyFault) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var mu sync.Mutex
	next := 0
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			var f *proxyFault
			if next < len(faults) {
				f = &faults[next]
				next++
			}
			mu.Unlock()
			go proxyConn(c, target, f)
		}
	}()
	return l.Addr().String()
}

func proxyConn(c net.Conn, target string, f *proxyFault) {
	defer c.Close()
	up, err := net.Dial("tcp", target)
	if err != nil {
		return
	}
	defer up.Close()
	go io.Copy(up, c) // requests flow upstream untouched
	if f == nil {
		io.Copy(c, up)
		return
	}
	buf := make([]byte, 4096)
	var seen int64
	for seen < f.cut {
		n, rerr := up.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if rest := f.cut - seen; int64(len(chunk)) > rest {
				chunk = chunk[:rest]
			}
			if f.flip >= seen && f.flip < seen+int64(len(chunk)) {
				chunk[f.flip-seen] ^= 0x40
			}
			if _, werr := c.Write(chunk); werr != nil {
				return
			}
			seen += int64(len(chunk))
		}
		if rerr != nil {
			return
		}
	}
	// Torn tail: sever both directions mid-frame, no goodbye.
}

func TestE2EKillLeaderPromoteFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon binary")
	}
	bin := buildDaemon(t)
	ctx := context.Background()

	leaderAddr := freeAddr(t)
	followerAddr := freeAddr(t)
	leaderBase := "http://" + leaderAddr
	followerBase := "http://" + followerAddr

	// Leader: durable, compacting, page-cache sync (kill -9 semantics).
	leaderArgs := []string{
		"-listen", leaderAddr,
		"-wal-dir", t.TempDir(),
		"-snapshot-dir", t.TempDir(),
		"-snapshot-interval", "4",
		"-wal-sync", "os",
	}
	leader := startDaemon(t, bin, leaderArgs, leaderBase)

	// The follower reaches the leader only through the fault proxy:
	// its bootstrap and streams get torn mid-frame and one gets a
	// corrupted byte the CRC must catch. Resume-by-offset has to ride
	// all of it out.
	proxyAddr := runProxy(t, leaderAddr, []proxyFault{
		{cut: 700, flip: -1},
		{cut: 2000, flip: 1500},
		{cut: 5000, flip: -1},
		{cut: 9000, flip: 8191},
	})
	startDaemon(t, bin, []string{
		"-listen", followerAddr,
		"-follow", "http://" + proxyAddr,
		"-follow-poll", "50ms",
		"-wal-dir", t.TempDir(),
		"-snapshot-dir", t.TempDir(),
		"-wal-sync", "os",
	}, followerBase)

	lc := energysched.NewClient(leaderBase)
	fc := energysched.NewClient(followerBase)

	// Phase 1: sequential churn through the fault gauntlet.
	specs := make([]energysched.JobSpec, 0, 42)
	for i := 0; i < 12; i++ {
		at := float64(i) * 45
		spec := energysched.JobSpec{
			CPU: 100 + float64(i%3)*100, Mem: 5 + float64(i%2)*5,
			Duration: 900 + float64(i%4)*300, Submit: &at,
		}
		specs = append(specs, spec)
		if _, err := lc.SubmitJob(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	waitSync := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			st, err := fc.FleetStatus(ctx, "default")
			if err == nil && st.Replication.Offset >= want {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		st, err := fc.FleetStatus(ctx, "default")
		t.Fatalf("follower never reached offset %d (status %+v, %v)", want, st, err)
	}
	waitSync(12)

	// Phase 2: a 30-job batch is in flight when the leader dies. The
	// SIGKILL lands mid-batch: the follower ends up with whatever
	// prefix of the batch the stream delivered.
	batch := make([]energysched.JobSpec, 0, 30)
	for i := 0; i < 30; i++ {
		at := 540 + float64(i)*30
		batch = append(batch, energysched.JobSpec{
			CPU: 150 + float64(i%4)*50, Mem: 5, Duration: 1200, Submit: &at,
		})
	}
	specs = append(specs, batch...)
	go lc.SubmitJobs(ctx, batch) // the ack may never arrive; that is the point
	waitSync(13)                 // at least one batch record replicated
	if err := leader.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	leader.Wait()

	// The follower's applied offset settles at whatever the dying
	// stream delivered.
	stable, last := 0, int64(-1)
	for stable < 10 {
		st, err := fc.FleetStatus(ctx, "default")
		if err != nil {
			t.Fatal(err)
		}
		if st.Replication.Offset == last {
			stable++
		} else {
			stable, last = 0, st.Replication.Offset
		}
		time.Sleep(50 * time.Millisecond)
	}
	n := int(last)
	if n < 13 || n > len(specs) {
		t.Fatalf("follower settled at offset %d, want within [13, %d]", n, len(specs))
	}
	t.Logf("leader killed mid-batch; follower holds %d of %d acknowledged-or-in-flight admissions", n, len(specs))

	// Promote. The follower seals catch-up and serves.
	info, err := fc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "leader" || info.Fleets["default"] != int64(n) {
		t.Fatalf("promote info = %+v, want leader at offset %d", info, n)
	}
	promotedJobs := getBody(t, followerBase+"/v1/jobs")
	if _, err := fc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	promotedReport := getBody(t, followerBase+"/v1/report")
	// Snapshot paths are confined to the daemon's -snapshot-dir, so a
	// bare name lands in the temp dir passed above.
	promotedSnap, err := fc.Snapshot(ctx, "promoted.json")
	if err != nil {
		t.Fatal(err)
	}

	// The uninterrupted reference: one in-process daemon admits exactly
	// the prefix the follower applied — 12 singles then the delivered
	// slice of the batch — and must land on the same bytes.
	// The reference config mirrors the daemon's flag defaults exactly —
	// the snapshot file embeds the scheduling config, so a byte-equal
	// snapshot requires byte-equal config.
	refSrv, err := server.New(server.Config{
		Policy: "SB", Seed: 1,
		Score:       &energysched.ScoreParams{Cempty: 20, Cfill: 40},
		SnapshotDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	refHS := httptest.NewServer(refSrv.Handler())
	defer func() { refHS.Close(); refSrv.Close() }()
	refClient := energysched.NewClient(refHS.URL)
	for _, spec := range specs[:12] {
		if _, err := refClient.SubmitJob(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	if n > 12 {
		if _, err := refClient.SubmitJobs(ctx, specs[12:n]); err != nil {
			t.Fatal(err)
		}
	}
	refJobs := getBody(t, refHS.URL+"/v1/jobs")
	if _, err := refClient.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	refReport := getBody(t, refHS.URL+"/v1/report")
	refSnap, err := refClient.Snapshot(ctx, "ref.json")
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(promotedJobs, refJobs) {
		t.Errorf("promoted job listing diverged:\n got %s\nwant %s", promotedJobs, refJobs)
	}
	if !bytes.Equal(promotedReport, refReport) {
		t.Errorf("promoted report diverged:\n got %s\nwant %s", promotedReport, refReport)
	}
	pb, err1 := os.ReadFile(promotedSnap.Path)
	rb, err2 := os.ReadFile(refSnap.Path)
	if err1 != nil || err2 != nil {
		t.Fatalf("reading snapshots: %v, %v", err1, err2)
	}
	if !bytes.Equal(pb, rb) {
		t.Errorf("promoted snapshot file diverged:\n got %s\nwant %s", pb, rb)
	}

	// And the promoted daemon is a real leader: draining sealed it, but
	// health reports the role flip.
	h, err := fc.Health(ctx)
	if err != nil || h.Role != "leader" || !h.Ready {
		t.Fatalf("promoted health = %+v, %v", h, err)
	}
}

// buildDaemon builds the daemon binary into a per-test temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := t.TempDir() + "/energyschedd"
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}
	return bin
}
