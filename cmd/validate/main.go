// Command validate regenerates the simulator-validation artifacts of
// §IV: Table I (virtualized server power usage) and Figure 1 (real vs
// simulated power over the 7-task 1300 s workload, with the total and
// instantaneous error statistics the paper reports).
//
//	validate             # both Table I and Fig. 1 summary
//	validate -fig1 trace.csv  # also dump the 1 Hz traces for plotting
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"energysched/internal/cli"
	"energysched/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	var (
		fig1Out = flag.String("fig1", "", "write the 1 Hz real/simulated power traces to this CSV")
		skipT1  = flag.Bool("no-table1", false, "skip Table I")
	)
	cli.Parse("validate")

	if !*skipT1 {
		fmt.Println("Table I — virtualized server power usage")
		fmt.Printf("%-22s %10s %12s\n", "configuration", "paper (W)", "measured (W)")
		for _, r := range experiments.TableI() {
			fmt.Printf("%-22s %10.0f %12.1f\n", r.Config, r.PaperWatts, r.MeasuredWatts)
		}
		fmt.Println()
	}

	v, err := experiments.Validation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1 — simulator validation (7 tasks, 1300 s)")
	fmt.Printf("  real total       %7.1f Wh   (paper: 99.9 ± 1.8 Wh)\n", v.RealWh)
	fmt.Printf("  simulated total  %7.1f Wh   (paper: 97.5 Wh)\n", v.SimWh)
	fmt.Printf("  total error      %7.1f %%    (paper: −2.4 %%)\n", v.ErrorPct)
	fmt.Printf("  instantaneous    %7.2f W mean, %.2f W stddev (paper: 8.62, 8.06)\n",
		v.InstMeanErr, v.InstStddev)

	if *fig1Out != "" {
		f, err := os.Create(*fig1Out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		cw := csv.NewWriter(f)
		if err := cw.Write([]string{"time_s", "real_w", "sim_w"}); err != nil {
			log.Fatal(err)
		}
		for i := range v.Real {
			rec := []string{
				strconv.FormatFloat(v.Real[i].Time, 'f', 0, 64),
				strconv.FormatFloat(v.Real[i].Watts, 'f', 2, 64),
				strconv.FormatFloat(v.Sim[i].Watts, 'f', 2, 64),
			}
			if err := cw.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  traces written to %s\n", *fig1Out)
	}
}
