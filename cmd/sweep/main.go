// Command sweep regenerates Figures 2 and 3: total power consumption
// and client satisfaction of the score-based policy over the
// λmin × λmax threshold grid. Output is CSV (one row per feasible
// cell), ready for any surface-plotting tool.
//
//	sweep                         # the paper's full grid on a week
//	sweep -days 1 -step 20        # coarse quick look
//	sweep -policy BF -o grid.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"energysched/internal/chaos"
	"energysched/internal/cli"
	"energysched/internal/experiments"
	"energysched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		days   = flag.Float64("days", 7, "days of synthetic workload")
		seed   = flag.Int64("seed", 1, "random seed")
		step   = flag.Float64("step", 10, "λ grid step in percent")
		policy = flag.String("policy", "SB", "policy to sweep: SB, SB2, BF, DBF")
		shards = flag.Int("shards", 0, "solver shards per scheduling round: 0 = serial, -1 = GOMAXPROCS, K = exactly K (grid values are byte-identical at any setting)")
		nodes  = flag.Int("nodes", 0, "heterogeneous scale fleet of this many nodes (0 = the paper's 100-node fleet)")
		stream = flag.Bool("stream", false, "stream a fresh copy of the trace into each grid cell (O(1) memory; cells are byte-identical to the materialized sweep)")
		out    = flag.String("o", "", "output CSV file (empty = stdout)")
	)
	cli.Parse("sweep")

	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = *days * 24 * 3600
	gen.Seed = *seed

	cfg := experiments.SweepConfig{Policy: *policy, Shards: *shards}
	if *nodes > 0 {
		cfg.Classes = chaos.HeterogeneousClasses(*nodes)
	}
	var trace *workload.Trace
	if *stream {
		cfg.Source = func() (workload.JobSource, error) { return workload.NewGeneratorSource(gen) }
	} else {
		var err error
		if trace, err = workload.Generate(gen); err != nil {
			log.Fatal(err)
		}
	}
	for v := 10.0; v <= 90; v += *step {
		cfg.LambdaMins = append(cfg.LambdaMins, v)
	}
	for v := 20.0; v <= 100; v += *step {
		cfg.LambdaMaxs = append(cfg.LambdaMaxs, v)
	}

	points, err := experiments.LambdaSweep(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lambda_min", "lambda_max", "power_kwh", "satisfaction_pct", "avg_working", "avg_online"}); err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		rec := []string{
			strconv.FormatFloat(p.LambdaMin, 'f', 0, 64),
			strconv.FormatFloat(p.LambdaMax, 'f', 0, 64),
			strconv.FormatFloat(p.PowerKWh, 'f', 1, 64),
			strconv.FormatFloat(p.Satisfaction, 'f', 2, 64),
			strconv.FormatFloat(p.AvgWorking, 'f', 2, 64),
			strconv.FormatFloat(p.AvgOnline, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d feasible cells (Fig. 2 = power column, Fig. 3 = satisfaction column)\n", len(points))
}
