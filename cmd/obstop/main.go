// Command obstop is a terminal dashboard over a running energyschedd
// daemon's accounting API: it polls the energy/SLA time-series, the
// journey index and the SLO burn-rate alerts, and redraws a compact
// top-style frame — power draw, cumulative energy, SLA fulfillment,
// utilization, node counts, churn, and every objective's verdict with
// a watts sparkline.
//
//	obstop -addr http://localhost:7781
//	obstop -addr http://localhost:7781 -fleet batch -interval 1s
//	obstop -once
//
// -once prints a single frame without clearing the screen and exits —
// for CI smoke tests and piping into logs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"energysched"
	"energysched/internal/cli"
)

// sparkMax bounds the watts history kept for the sparkline.
const sparkMax = 60

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// frame is one polled snapshot of the daemon's accounting surface.
type frame struct {
	series   energysched.SeriesSnapshot
	journeys energysched.JourneysSnapshot
	alerts   energysched.AlertsSnapshot
}

// poll gathers one frame; partial failures degrade to empty sections
// rather than killing the dashboard (a follower mid-promotion answers
// some endpoints before others).
func poll(ctx context.Context, c *energysched.Client, since float64) (frame, error) {
	var f frame
	var err error
	f.series, err = c.Series(ctx, energysched.SeriesQuery{Since: since})
	if err != nil {
		return f, err
	}
	f.journeys, _ = c.Journeys(ctx)
	f.alerts, _ = c.Alerts(ctx)
	return f, nil
}

// spark renders values as a unicode sparkline, scaled to their own
// range.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// render writes one dashboard frame. last is the most recent sample
// ever seen (polls return only samples newer than the previous poll).
func render(w *strings.Builder, addr, fleetLabel string, f frame, last energysched.SeriesSample, watts []float64) {
	fmt.Fprintf(w, "energysched obstop — %s fleet %s   vt %.0fs   samples %d\n",
		addr, fleetLabel, last.T, f.series.Count)
	fmt.Fprintf(w, "power   %8.1f W     energy %10.3f kWh   %s\n", last.Watts, last.KWh, spark(watts))
	fmt.Fprintf(w, "sla     %7.2f %%     utilization %6.2f %%\n", last.SLA, last.Utilization)
	fmt.Fprintf(w, "nodes   on %d (working %d)  off %d    queue %d  running %d\n",
		last.On, last.Working, last.Off, last.Queue, last.Running)
	fmt.Fprintf(w, "churn   migrations %d   completed %d   journeys %d\n",
		last.Migrations, last.Completed, len(f.journeys.Journeys))
	if len(f.alerts.Alerts) == 0 {
		fmt.Fprintf(w, "slo     no objectives configured\n")
		return
	}
	fmt.Fprintf(w, "slo     %d firing of %d objectives\n", f.alerts.Firing, len(f.alerts.Alerts))
	for _, a := range f.alerts.Alerts {
		fmt.Fprintf(w, "  [%-7s] %s/%s %s  value %.2f  burn short %.2f long %.2f  fired %d cleared %d\n",
			a.State, a.Fleet, a.Name, a.Metric, a.Value, a.ShortBurn, a.LongBurn,
			a.FiredTotal, a.ClearedTotal)
	}
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:7781", "daemon base URL")
		fleetID  = flag.String("fleet", "", "target fleet (empty = the default fleet)")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw period")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
	)
	cli.Parse("obstop")
	if *interval <= 0 {
		cli.Usagef("obstop", "need a positive -interval")
	}

	client := energysched.NewClient(*addr)
	fleetLabel := "default"
	if *fleetID != "" {
		client = client.Fleet(*fleetID)
		fleetLabel = *fleetID
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var watts []float64
	var since float64
	var last energysched.SeriesSample
	draw := func() error {
		f, err := poll(ctx, client, since)
		if err != nil {
			return err
		}
		for _, smp := range f.series.Samples {
			watts = append(watts, smp.Watts)
			last = smp
			since = smp.T + 1e-9 // next poll fetches strictly newer samples
		}
		if len(watts) > sparkMax {
			watts = watts[len(watts)-sparkMax:]
		}
		var b strings.Builder
		if !*once {
			b.WriteString("\x1b[2J\x1b[H") // clear, home
		}
		render(&b, *addr, fleetLabel, f, last, watts)
		_, err = os.Stdout.WriteString(b.String())
		return err
	}

	if err := draw(); err != nil {
		cli.Fatalf("obstop", "daemon unreachable at %s: %v", *addr, err)
	}
	if *once {
		return
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := draw(); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "obstop: %v\n", err)
			}
		case <-ctx.Done():
			fmt.Println()
			return
		}
	}
}
