package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTable3SB-8   \t       1\t123456789 ns/op\t  2048 B/op\t      17 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if b.Name != "BenchmarkTable3SB" || b.Procs != 8 || b.Iterations != 1 {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 123456789 || b.Metrics["B/op"] != 2048 || b.Metrics["allocs/op"] != 17 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkFig5-4 2 5000 ns/op 93.5 satisfaction_pct")
	if !ok || b.Metrics["satisfaction_pct"] != 93.5 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	art, err := parse(strings.NewReader(`goos: linux
goarch: amd64
pkg: energysched
BenchmarkTable3SB-8 1 123 ns/op
| policy | joules |   <- a paper table the benchmark prints
PASS
ok  	energysched	1.234s
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 1 || art.Benchmarks[0].Name != "BenchmarkTable3SB" {
		t.Fatalf("parsed %+v", art.Benchmarks)
	}
}

func TestParseLineUnsuffixedName(t *testing.T) {
	b, ok := parseLine("BenchmarkSolo 10 42.5 ns/op")
	if !ok || b.Name != "BenchmarkSolo" || b.Procs != 0 || b.NsPerOp != 42.5 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
}

// The CI gate: slower-than-tolerance benchmarks regress, faster or
// within-tolerance ones pass, and benchmarks missing a side (renamed,
// new, or without ns/op) are skipped rather than failed.
func TestGate(t *testing.T) {
	mk := func(name string, procs int, ns float64) Benchmark {
		return Benchmark{Name: name, Procs: procs, Iterations: 1, NsPerOp: ns}
	}
	base := &Artifact{Benchmarks: []Benchmark{
		mk("BenchmarkA", 8, 1000),
		mk("BenchmarkB", 8, 1000),
		mk("BenchmarkGone", 8, 500),
		mk("BenchmarkZeroed", 8, 0),
	}}
	cand := &Artifact{Benchmarks: []Benchmark{
		mk("BenchmarkA", 8, 1149), // +14.9%: inside a 15% tolerance
		mk("BenchmarkB", 8, 1200), // +20%: regression
		mk("BenchmarkNew", 8, 9999),
		mk("BenchmarkZeroed", 8, 800),
	}}
	regressions, checked := gate(cand, base, 0.15)
	if checked != 2 {
		t.Fatalf("checked %d benchmarks, want 2 (A and B)", checked)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkB") {
		t.Fatalf("regressions = %v, want only BenchmarkB", regressions)
	}
	// Same GOMAXPROCS key: a procs mismatch is a skip, not a compare.
	cand.Benchmarks[1].Procs = 4
	if _, checked := gate(cand, base, 0.15); checked != 1 {
		t.Fatalf("procs-mismatched benchmark still compared (checked=%d)", checked)
	}
}
