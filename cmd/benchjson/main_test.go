package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTable3SB-8   \t       1\t123456789 ns/op\t  2048 B/op\t      17 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if b.Name != "BenchmarkTable3SB" || b.Procs != 8 || b.Iterations != 1 {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 123456789 || b.Metrics["B/op"] != 2048 || b.Metrics["allocs/op"] != 17 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkFig5-4 2 5000 ns/op 93.5 satisfaction_pct")
	if !ok || b.Metrics["satisfaction_pct"] != 93.5 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	art, err := parse(strings.NewReader(`goos: linux
goarch: amd64
pkg: energysched
BenchmarkTable3SB-8 1 123 ns/op
| policy | joules |   <- a paper table the benchmark prints
PASS
ok  	energysched	1.234s
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 1 || art.Benchmarks[0].Name != "BenchmarkTable3SB" {
		t.Fatalf("parsed %+v", art.Benchmarks)
	}
}

func TestParseLineUnsuffixedName(t *testing.T) {
	b, ok := parseLine("BenchmarkSolo 10 42.5 ns/op")
	if !ok || b.Name != "BenchmarkSolo" || b.Procs != 0 || b.NsPerOp != 42.5 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
}
