// Command benchjson converts `go test -bench` output into a
// machine-readable JSON artifact, so CI can persist per-PR benchmark
// history (BENCH_<pr>.json) and later runs can diff against it
// instead of eyeballing logs.
//
//	go test -run '^$' -bench . -benchtime=1x . | benchjson -o BENCH_6.json
//
// Gate mode compares two artifacts and exits non-zero when any
// benchmark present in both regressed beyond tolerance:
//
//	benchjson -compare BENCH_ci.json -against BENCH_6.json -tolerance 0.15
//
// Lines that are not benchmark results (the paper tables the
// benchmarks print, pass/fail trailers, etc.) are ignored, so the
// tool can consume the raw test output verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix
	// stripped (it lands in Procs).
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Metrics holds every other `value unit` pair on the line
	// (B/op, allocs/op, and custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the emitted document.
type Artifact struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Label      string      `json:"label,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the artifact (e.g. the PR number)")
	compare := flag.String("compare", "", "gate mode: candidate artifact to check for regressions (needs -against)")
	against := flag.String("against", "", "gate mode: baseline artifact to compare -compare with")
	tolerance := flag.Float64("tolerance", 0.15, "gate mode: allowed fractional ns/op slowdown before failing")
	flag.Parse()

	if *compare != "" || *against != "" {
		if *compare == "" || *against == "" {
			fmt.Fprintln(os.Stderr, "benchjson: gate mode needs both -compare and -against")
			os.Exit(2)
		}
		cand, err := load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		base, err := load(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		regressions, checked := gate(cand, base, *tolerance)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks compared against %s (tolerance %.0f%%), %d regressed\n",
			checked, *against, *tolerance*100, len(regressions))
		if len(regressions) > 0 {
			os.Exit(1)
		}
		return
	}

	art, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	art.Label = *label

	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// gate compares candidate ns/op against the baseline for every
// benchmark present in both (keyed by name and GOMAXPROCS), returning
// a description of each regression beyond tolerance and the number of
// benchmarks actually compared. Benchmarks with no ns/op figure on
// either side, or only present on one, are skipped — new benchmarks
// must not fail the gate, and -benchtime=1x smoke runs report real
// ns/op for everything that matters.
func gate(cand, base *Artifact, tolerance float64) (regressions []string, checked int) {
	key := func(b Benchmark) string { return fmt.Sprintf("%s-%d", b.Name, b.Procs) }
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if b.NsPerOp > 0 {
			baseline[key(b)] = b.NsPerOp
		}
	}
	for _, b := range cand.Benchmarks {
		want, ok := baseline[key(b)]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		checked++
		if b.NsPerOp > want*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				b.Name, b.NsPerOp, want, (b.NsPerOp/want-1)*100, tolerance*100))
		}
	}
	return regressions, checked
}

func parse(r io.Reader) (*Artifact, error) {
	art := &Artifact{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

// parseLine decodes one `BenchmarkName-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	return b, true
}
