// Command tables regenerates the paper's result tables (II–V) on the
// calibrated synthetic Grid week:
//
//	Table II  — static policies without migration (RD, RR, BF, SB0)
//	Table III — score-variant ablation (SB0, SB1, SB2, SB2 @ λ 40-90)
//	Table IV  — migration policies (DBF, SB, SB @ λ 40-90)
//	Table V   — consolidation-cost sweep (Ce/Cf = 0/40, 20/40, 60/100)
//
//	tables            # all four tables
//	tables -table 4   # just Table IV
//	tables -days 1    # quick run on a one-day trace
package main

import (
	"flag"
	"fmt"
	"log"

	"energysched/internal/cli"
	"energysched/internal/experiments"
	"energysched/internal/metrics"
	"energysched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")

	var (
		table    = flag.Int("table", 0, "table number to run (0 = all of II–V)")
		days     = flag.Float64("days", 7, "days of synthetic workload")
		seed     = flag.Int64("seed", 1, "random seed (single-run mode)")
		replicas = flag.Int("replicas", 1, "replicate each row over this many seeds and report mean ± 95% CI")
	)
	cli.Parse("tables")

	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = *days * 24 * 3600
	cfg.Seed = *seed

	runs := []struct {
		num    int
		title  string
		makers []experiments.SpecMaker
	}{
		{2, "Table II — scheduling results of policies without migration", experiments.TableIIMakers()},
		{3, "Table III — score-based policies without migration", experiments.TableIIIMakers()},
		{4, "Table IV — scheduling results of policies with migration", experiments.TableIVMakers()},
		{5, "Table V — score-based scheduling with different costs", experiments.TableVMakers()},
	}

	if *replicas > 1 {
		fmt.Printf("replicating each row over %d seeded weeks\n", *replicas)
		for _, r := range runs {
			if *table != 0 && *table != r.num {
				continue
			}
			fmt.Printf("\n%s\n", r.title)
			rows, err := experiments.ReplicateTable(r.makers, cfg, experiments.Seeds(*replicas))
			if err != nil {
				log.Fatal(err)
			}
			for _, row := range rows {
				fmt.Println(row)
			}
		}
		return
	}

	trace, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs, %.1f CPU-hours\n", trace.Len(), trace.TotalCPUHours())
	for _, r := range runs {
		if *table != 0 && *table != r.num {
			continue
		}
		fmt.Printf("\n%s\n", r.title)
		fmt.Println(metrics.TableHeader())
		for _, m := range r.makers {
			row, err := experiments.RunSpec(m.Make(), trace)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(row)
		}
	}
}
