// Command tables regenerates the paper's result tables (II–V) on the
// calibrated synthetic Grid week:
//
//	Table II  — static policies without migration (RD, RR, BF, SB0)
//	Table III — score-variant ablation (SB0, SB1, SB2, SB2 @ λ 40-90)
//	Table IV  — migration policies (DBF, SB, SB @ λ 40-90)
//	Table V   — consolidation-cost sweep (Ce/Cf = 0/40, 20/40, 60/100)
//
//	tables            # all four tables
//	tables -table 4   # just Table IV
//	tables -days 1    # quick run on a one-day trace
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"energysched/internal/chaos"
	"energysched/internal/cli"
	"energysched/internal/experiments"
	"energysched/internal/metrics"
	"energysched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")

	var (
		table    = flag.Int("table", 0, "table number to run (0 = all of II–V)")
		days     = flag.Float64("days", 7, "days of synthetic workload")
		seed     = flag.Int64("seed", 1, "random seed (single-run mode)")
		replicas = flag.Int("replicas", 1, "replicate each row over this many seeds and report mean ± 95% CI")
		scenario = flag.Bool("scenario", false, "run the chaos scale scenario (streaming trace, injected crashes) instead of the paper tables")
		nodes    = flag.Int("nodes", 10_000, "scenario fleet size (with -scenario)")
	)
	cli.Parse("tables")

	if *scenario {
		runScenario(*nodes, *days, *seed)
		return
	}

	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = *days * 24 * 3600
	cfg.Seed = *seed

	runs := []struct {
		num    int
		title  string
		makers []experiments.SpecMaker
	}{
		{2, "Table II — scheduling results of policies without migration", experiments.TableIIMakers()},
		{3, "Table III — score-based policies without migration", experiments.TableIIIMakers()},
		{4, "Table IV — scheduling results of policies with migration", experiments.TableIVMakers()},
		{5, "Table V — score-based scheduling with different costs", experiments.TableVMakers()},
	}

	if *replicas > 1 {
		fmt.Printf("replicating each row over %d seeded weeks\n", *replicas)
		for _, r := range runs {
			if *table != 0 && *table != r.num {
				continue
			}
			fmt.Printf("\n%s\n", r.title)
			rows, err := experiments.ReplicateTable(r.makers, cfg, experiments.Seeds(*replicas))
			if err != nil {
				log.Fatal(err)
			}
			for _, row := range rows {
				fmt.Println(row)
			}
		}
		return
	}

	trace, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d jobs, %.1f CPU-hours\n", trace.Len(), trace.TotalCPUHours())
	for _, r := range runs {
		if *table != 0 && *table != r.num {
			continue
		}
		fmt.Printf("\n%s\n", r.title)
		fmt.Println(metrics.TableHeader())
		for _, m := range r.makers {
			row, err := experiments.RunSpec(m.Make(), trace)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(row)
		}
	}
}

// runScenario reports the chaos scale scenario the same way the paper
// tables report theirs: one row per solver mode, plus the injected
// fault count — and re-proves the serial/sharded byte-identity oracle
// on the way out.
func runScenario(nodes int, days float64, seed int64) {
	s := chaos.Scenario10k()
	s.Name = fmt.Sprintf("%dn-%.0fd", nodes, days)
	s.Nodes = nodes
	s.Days = days
	s.Seed = seed

	fmt.Printf("scale scenario %s — %d heterogeneous nodes, %.1f-day streaming trace, %d crashes + %d flapping\n",
		s.Name, s.Nodes, s.Days, s.Crashes, s.Flaps)
	fmt.Println(metrics.TableHeader())
	t0 := time.Now()
	serial, err := s.Run(0, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  (serial, %.2fs)\n", serial, time.Since(t0).Seconds())
	t0 = time.Now()
	sharded, err := s.Run(-1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  (sharded, %.2fs)\n", sharded, time.Since(t0).Seconds())
	if sharded != serial {
		log.Fatal("serial and sharded scenario reports diverged — byte-identity oracle violated")
	}
	fmt.Printf("failures injected: %d; serial and sharded reports byte-identical\n", serial.Failures)
}
