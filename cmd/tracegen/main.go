// Command tracegen generates a synthetic Grid5000-like workload trace
// (the calibrated stand-in for the week the paper evaluates on) and
// writes it as CSV, suitable for energysim -trace.
//
//	tracegen -days 7 -seed 1 -o week.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"energysched/internal/cli"
	"energysched/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		days    = flag.Float64("days", 7, "trace length in days")
		seed    = flag.Int64("seed", 1, "random seed")
		jobs    = flag.Float64("jobs-per-day", 0, "override baseline arrivals per day (0 = calibrated default)")
		bursts  = flag.Float64("burst-prob", -1, "override burst probability (negative = default)")
		out     = flag.String("o", "", "output file (empty = stdout)")
		summary = flag.Bool("summary", false, "print trace statistics to stderr")
	)
	cli.Parse("tracegen")

	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = *days * 24 * 3600
	cfg.Seed = *seed
	if *jobs > 0 {
		cfg.JobsPerDay = *jobs
	}
	if *bursts >= 0 {
		cfg.BurstProb = *bursts
	}
	trace, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := workload.WriteCSV(w, trace); err != nil {
		log.Fatal(err)
	}
	if *summary {
		s := trace.Summarize()
		fmt.Fprintf(os.Stderr,
			"jobs %d | %.1f CPU-h | mean %.0f%% CPU, %.1f mem | mean runtime %.0f s (max %.0f) | span %.2f d\n",
			s.Jobs, s.CPUHours, s.MeanCPU, s.MeanMem, s.MeanRuntime, s.MaxRuntime, s.Span/86400)
	}
}
