// Command replay renders a simulation event log (JSONL, produced by
// energysim -events) as an ASCII timeline: one lane per node, showing
// boot/idle/occupancy/failure over the run — the quickest way to *see*
// consolidation happen.
//
//	energysim -days 1 -events run.jsonl
//	replay -events run.jsonl -width 120
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"energysched/internal/cli"
	"energysched/internal/datacenter"
	"energysched/internal/timeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")

	var (
		eventsIn = flag.String("events", "", "JSONL event log (required; - = stdin)")
		width    = flag.Int("width", 100, "chart width in time buckets")
	)
	cli.Parse("replay")
	if *eventsIn == "" {
		cli.Usagef("replay", "missing required -events")
	}

	in := os.Stdin
	if *eventsIn != "-" {
		f, err := os.Open(*eventsIn)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var events []datacenter.Event
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e datacenter.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			log.Fatalf("line %d: %v", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	tl, err := timeline.FromEvents(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tl.Render(*width))
	fmt.Printf("fleet on-time utilization: %.1f %%\n", tl.Utilization(*width)*100)
	fmt.Println("legend: '.' off  '%' booting  '_' idle  1-9/'+' hosted VMs  'X' failed")
}
