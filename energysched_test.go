package energysched

import (
	"bytes"
	"strings"
	"testing"
)

func dayTrace(t *testing.T) *Trace {
	t.Helper()
	return GenerateTrace(TraceOptions{Days: 1, Seed: 7})
}

func TestGenerateTraceOptions(t *testing.T) {
	tr := dayTrace(t)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	for _, j := range tr.Jobs {
		if j.Submit > 24*3600 {
			t.Fatalf("job beyond the 1-day horizon: %v", j.Submit)
		}
	}
	// JobsPerDay override scales volume.
	small := GenerateTrace(TraceOptions{Days: 1, Seed: 7, JobsPerDay: 20})
	if small.Len() >= tr.Len() {
		t.Errorf("JobsPerDay=20 produced %d jobs vs default %d", small.Len(), tr.Len())
	}
}

func TestRunAllPolicies(t *testing.T) {
	tr := dayTrace(t)
	for _, pol := range []string{"RD", "RR", "BF", "DBF", "SB0", "SB1", "SB2", "SB", ""} {
		res, err := Run(Options{Policy: pol, Trace: tr})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.JobsCompleted != res.JobsTotal {
			t.Errorf("%s completed %d/%d", pol, res.JobsCompleted, res.JobsTotal)
		}
		if res.EnergyKWh <= 0 || res.CPUHours <= 0 {
			t.Errorf("%s produced empty metrics: %+v", pol, res)
		}
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	if _, err := Run(Options{Policy: "FIFO", Trace: dayTrace(t)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunRequiresTrace(t *testing.T) {
	if _, err := Run(Options{Policy: "BF"}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestRunCustomLambdas(t *testing.T) {
	tr := dayTrace(t)
	relaxed, err := Run(Options{Policy: "SB", Trace: tr, LambdaMin: 10, LambdaMax: 60})
	if err != nil {
		t.Fatal(err)
	}
	aggressive, err := Run(Options{Policy: "SB", Trace: tr, LambdaMin: 50, LambdaMax: 90})
	if err != nil {
		t.Fatal(err)
	}
	if aggressive.EnergyKWh >= relaxed.EnergyKWh {
		t.Errorf("aggressive λ (%v kWh) should save energy vs relaxed (%v kWh)",
			aggressive.EnergyKWh, relaxed.EnergyKWh)
	}
	if relaxed.LambdaMin != 10 || aggressive.LambdaMax != 90 {
		t.Errorf("lambda echo wrong: %+v / %+v", relaxed, aggressive)
	}
}

func TestRunScoreParams(t *testing.T) {
	tr := dayTrace(t)
	noCe, err := Run(Options{Policy: "SB", Trace: tr, Score: &ScoreParams{Cempty: 0, Cfill: 40}})
	if err != nil {
		t.Fatal(err)
	}
	std, err := Run(Options{Policy: "SB", Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if noCe.Migrations > std.Migrations/4 {
		t.Errorf("Ce=0 migrations (%d) should be far below default (%d)", noCe.Migrations, std.Migrations)
	}
}

func TestRunCustomClasses(t *testing.T) {
	tr := GenerateTrace(TraceOptions{Days: 1, Seed: 7, JobsPerDay: 40})
	res, err := Run(Options{
		Policy: "BF",
		Trace:  tr,
		Classes: []NodeClass{
			{Name: "big", Count: 10, CPU: 800, Mem: 200, CreateCost: 30, MigrateCost: 40, BootTime: 60, Reliability: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != res.JobsTotal {
		t.Errorf("completed %d/%d on custom fleet", res.JobsCompleted, res.JobsTotal)
	}
	if _, err := Run(Options{Policy: "BF", Trace: tr, Classes: []NodeClass{}}); err == nil {
		t.Error("empty class list accepted")
	}
}

func TestRunWithFailures(t *testing.T) {
	tr := GenerateTrace(TraceOptions{Days: 1, Seed: 7, JobsPerDay: 40})
	res, err := Run(Options{
		Policy: "SB",
		Trace:  tr,
		Classes: []NodeClass{
			{Name: "flaky", Count: 20, CPU: 400, Mem: 100, CreateCost: 40, MigrateCost: 60, BootTime: 100, Reliability: 0.95},
		},
		Failures:          true,
		CheckpointSeconds: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Error("no failures with reliability 0.95 over a day")
	}
	if res.JobsCompleted != res.JobsTotal {
		t.Errorf("completed %d/%d with failures", res.JobsCompleted, res.JobsTotal)
	}
}

func TestTraceCSVRoundTripThroughFacade(t *testing.T) {
	tr := dayTrace(t)
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip: %d vs %d jobs", back.Len(), tr.Len())
	}
}

func TestReadTraceGWFThroughFacade(t *testing.T) {
	input := "1 100 5 3600 2 0 0 2 3600 0 1\n"
	tr, err := ReadTraceGWF(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Jobs[0].CPU != 200 {
		t.Fatalf("GWF parse = %+v", tr.Jobs)
	}
}

func TestResultString(t *testing.T) {
	res := Result{Policy: "SB", LambdaMin: 30, LambdaMax: 90, EnergyKWh: 956.4, Satisfaction: 99.1}
	s := res.String()
	if !strings.Contains(s, "SB") || !strings.Contains(s, "956.4") {
		t.Errorf("Result.String() = %q", s)
	}
}

func TestSBbeatsBFOnEnergy(t *testing.T) {
	// The paper's headline on a one-day workload: the score-based
	// policy consumes less than Backfilling at equal satisfaction
	// class.
	tr := dayTrace(t)
	bf, err := Run(Options{Policy: "BF", Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Run(Options{Policy: "SB", Trace: tr, LambdaMin: 40, LambdaMax: 90})
	if err != nil {
		t.Fatal(err)
	}
	if sb.EnergyKWh >= bf.EnergyKWh {
		t.Errorf("SB (%v kWh) should beat BF (%v kWh)", sb.EnergyKWh, bf.EnergyKWh)
	}
	if sb.Satisfaction < bf.Satisfaction-3 {
		t.Errorf("SB satisfaction (%v) collapsed vs BF (%v)", sb.Satisfaction, bf.Satisfaction)
	}
}
