package energysched

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (go test -bench=.). Table/figure benchmarks run
// a complete datacenter simulation per iteration on a one-day
// calibrated trace (the full-week numbers live in EXPERIMENTS.md and
// are produced by the cmd/ tools); ablation benchmarks isolate the
// design decisions called out in DESIGN.md; micro benchmarks cover
// the hot paths (event engine, credit allocator, score solver).

import (
	"testing"

	"energysched/internal/chaos"
	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/dvfs"
	"energysched/internal/economics"
	"energysched/internal/experiments"
	"energysched/internal/metrics"
	"energysched/internal/obs/series"
	"energysched/internal/policy"
	"energysched/internal/power"
	"energysched/internal/simkit"
	"energysched/internal/vm"
	"energysched/internal/workload"
	"energysched/internal/xen"
)

var benchTrace = func() *workload.Trace {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = 24 * 3600
	return workload.MustGenerate(cfg)
}()

// runBench executes one full simulation and reports the paper metrics
// alongside the timing.
func runBench(b *testing.B, mk func() datacenter.Config) {
	b.Helper()
	var rep metrics.Report
	for i := 0; i < b.N; i++ {
		sim, err := datacenter.New(mk())
		if err != nil {
			b.Fatal(err)
		}
		rep, err = sim.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.EnergyKWh, "kWh")
	b.ReportMetric(rep.Satisfaction, "S%")
	b.ReportMetric(float64(rep.Migrations), "migrations")
	b.ReportMetric(rep.AvgOnline, "nodesON")
}

// cfgFor builds a per-iteration config factory. mk runs once per
// iteration: policies are stateful (round-robin cursors, drain
// cooldowns, solver statistics) and must never be shared across runs.
func cfgFor(mk func() policy.Policy, lmin, lmax float64) func() datacenter.Config {
	return func() datacenter.Config {
		return datacenter.Config{
			Trace:     benchTrace,
			Policy:    mk(),
			LambdaMin: lmin,
			LambdaMax: lmax,
			Seed:      1,
		}
	}
}

// --- Table II: static policies without migration ---

func BenchmarkTableII_RD(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return policy.NewRandom(1) }, 30, 90))
}

func BenchmarkTableII_RR(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return policy.NewRoundRobin() }, 30, 90))
}

func BenchmarkTableII_BF(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return policy.NewBackfilling() }, 30, 90))
}

func BenchmarkTableII_SB0(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(core.SB0Config()) }, 30, 90))
}

// --- Table III: virtualization-overhead ablation ---

func BenchmarkTableIII_SB1(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(core.SB1Config()) }, 30, 90))
}

func BenchmarkTableIII_SB2(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(core.SB2Config()) }, 30, 90))
}

func BenchmarkTableIII_SB2_Lambda4090(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(core.SB2Config()) }, 40, 90))
}

// --- Table IV: migration policies ---

func BenchmarkTableIV_DBF(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return policy.NewDynamicBackfilling() }, 30, 90))
}

func BenchmarkTableIV_SB(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(core.SBConfig()) }, 30, 90))
}

func BenchmarkTableIV_SB_Lambda4090(b *testing.B) {
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(core.SBConfig()) }, 40, 90))
}

// --- Table V: consolidation-cost sweep ---

func benchTableV(b *testing.B, ce, cf float64) {
	cfg := core.SBConfig()
	cfg.Cempty = ce
	cfg.Cfill = cf
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(cfg) }, 30, 90))
}

func BenchmarkTableV_Ce0_Cf40(b *testing.B)   { benchTableV(b, 0, 40) }
func BenchmarkTableV_Ce20_Cf40(b *testing.B)  { benchTableV(b, 20, 40) }
func BenchmarkTableV_Ce60_Cf100(b *testing.B) { benchTableV(b, 60, 100) }

// --- Table I and Figure 1: the measurement substrate ---

func BenchmarkTableI_PowerMeasurement(b *testing.B) {
	var rows []experiments.PowerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TableI()
	}
	b.ReportMetric(rows[0].MeasuredWatts, "W@100%CPU")
	b.ReportMetric(rows[len(rows)-1].MeasuredWatts, "W@idle")
}

func BenchmarkFig1_Validation(b *testing.B) {
	var v experiments.ValidationResult
	var err error
	for i := 0; i < b.N; i++ {
		v, err = experiments.Validation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(v.ErrorPct, "totalErr%")
	b.ReportMetric(v.InstMeanErr, "instErrW")
}

// --- Figures 2 and 3: λ sweep (one representative column per bench
// iteration keeps the full-grid cost out of -bench=. runs; the cmd/
// sweep tool produces the complete surface) ---

func BenchmarkFig2Fig3_LambdaColumn(b *testing.B) {
	cfg := experiments.SweepConfig{
		LambdaMins: []float64{10, 30, 50, 70},
		LambdaMaxs: []float64{90},
		Policy:     "SB",
	}
	var points []experiments.SweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.LambdaSweep(cfg, benchTrace)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].PowerKWh, "kWh@λmin10")
	b.ReportMetric(points[len(points)-1].PowerKWh, "kWh@λmin70")
	b.ReportMetric(points[len(points)-1].Satisfaction, "S%@λmin70")
}

// --- Ablations of DESIGN.md's design decisions ---

// Thrash model off: overcommit becomes free and the random baseline
// stops collapsing — quantifies how much of RD's penalty is thrash.
func BenchmarkAblationThrashOff_RD(b *testing.B) {
	runBench(b, func() datacenter.Config {
		c := cfgFor(func() policy.Policy { return policy.NewRandom(1) }, 30, 90)()
		c.ThrashFactor = -1
		return c
	})
}

// Migration hysteresis sweep: gain 0 lets float-level score noise
// move VMs; the default 35 keeps only structural drains.
func benchAblationGain(b *testing.B, gain float64) {
	cfg := core.SBConfig()
	cfg.MigrationGainMin = gain
	runBench(b, cfgFor(func() policy.Policy { return core.MustScheduler(cfg) }, 30, 90))
}

func BenchmarkAblationMigrationGain1(b *testing.B)  { benchAblationGain(b, 1) }
func BenchmarkAblationMigrationGain35(b *testing.B) { benchAblationGain(b, 35) }
func BenchmarkAblationMigrationGain80(b *testing.B) { benchAblationGain(b, 80) }

// Housekeeping cadence: a 5-minute tick vs the default 1-minute tick
// (fewer scheduling rounds, slower turn-off reaction).
func BenchmarkAblationTick300(b *testing.B) {
	runBench(b, func() datacenter.Config {
		c := cfgFor(func() policy.Policy { return core.MustScheduler(core.SBConfig()) }, 30, 90)()
		c.TickInterval = 300
		return c
	})
}

// --- micro benchmarks on the hot paths ---

func BenchmarkXenAllocate(b *testing.B) {
	demands := make([]xen.Demand, 16)
	for i := range demands {
		demands[i] = xen.Demand{Weight: float64(128 + i*32), Want: float64(50 + i*25), Cap: 400}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		xen.Allocate(400, demands)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := simkit.NewEngine()
		for j := 0; j < 1000; j++ {
			at := float64(j % 97)
			e.Schedule(at, func() {})
		}
		e.RunAll()
	}
}

// solverRoundCtx is one scheduling round over 100 hosts × 64
// candidate VMs, the workload of the solver micro benchmarks.
func solverRoundCtx() *policy.Context {
	cls := cluster.MustNew(cluster.PaperClasses())
	for _, n := range cls.Nodes {
		n.State = cluster.On
	}
	var queue []*vm.VM
	for i := 0; i < 64; i++ {
		queue = append(queue, vm.New(i, vm.Requirements{CPU: float64(100 * (1 + i%4)), Mem: 5}, 0, 3600, 7200))
	}
	return &policy.Context{Now: 0, Cluster: cls, Queue: queue, LambdaMin: 0.3, LambdaMax: 0.9}
}

func benchSolverRound(b *testing.B, cfg core.Config) {
	ctx := solverRoundCtx()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch := core.MustScheduler(cfg)
		sch.Schedule(ctx)
	}
}

// The incremental solver: matrix cached once per round, dirty columns
// recomputed after each move, O(V) best-move selection.
func BenchmarkScoreSolverRound(b *testing.B) {
	benchSolverRound(b, core.SBConfig())
}

// The naive reference evaluator (Algorithm 1 as written): the full
// V×H matrix is rescored on every hill-climbing iteration. The ratio
// against BenchmarkScoreSolverRound is the headline solver speedup.
func BenchmarkScoreSolverRoundNaive(b *testing.B) {
	cfg := core.SBConfig()
	cfg.NaiveSolver = true
	benchSolverRound(b, cfg)
}

// Steady state: one scheduler reused across rounds, exercising the
// scratch-buffer reuse (shadow, candidate slice, cached matrix) and —
// since the context never changes — the cross-round matrix carry at
// its best case (every row and column clean).
func BenchmarkScoreSolverRoundSteady(b *testing.B) {
	ctx := solverRoundCtx()
	sch := core.MustScheduler(core.SBConfig())
	sch.Schedule(ctx) // warm the scratch buffers
	sch.Schedule(ctx) // and the double-buffered cross-round snapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch.Schedule(ctx)
	}
}

// The same steady-state loop with the cross-round carry disabled:
// every round rebuilds the full time-independent half of the matrix.
// The delta against BenchmarkScoreSolverRoundSteady is the carry win.
func BenchmarkScoreSolverRoundSteadyFresh(b *testing.B) {
	cfg := core.SBConfig()
	cfg.FreshMatrix = true
	ctx := solverRoundCtx()
	sch := core.MustScheduler(cfg)
	sch.Schedule(ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch.Schedule(ctx)
	}
}

// solverChurnSetup builds the realistic steady-fleet shape of a
// full-day simulation round: 100 hosts, 64 running VMs, migration
// hysteresis high enough that rounds apply no moves — each round's
// cost is pure matrix maintenance.
func solverChurnSetup(cfg core.Config) (*core.Scheduler, *policy.Context) {
	cls := cluster.MustNew(cluster.PaperClasses())
	for _, n := range cls.Nodes {
		n.State = cluster.On
	}
	cfg.MigrationGainMin = 1e6
	var active []*vm.VM
	for i := 0; i < 64; i++ {
		v := vm.New(i, vm.Requirements{CPU: float64(100 * (1 + i%4)), Mem: 5}, 0, 1e6, 2e6)
		v.State = vm.Running
		n := cls.Nodes[i%len(cls.Nodes)]
		v.Host = n.ID
		n.AddVM(v)
		active = append(active, v)
	}
	ctx := &policy.Context{Now: 0, Cluster: cls, Active: active, LambdaMin: 0.3, LambdaMax: 0.9}
	sch := core.MustScheduler(cfg)
	sch.Schedule(ctx) // warm scratch buffers
	sch.Schedule(ctx) // and the double-buffered cross-round snapshot
	return sch, ctx
}

// Cross-round carry under churn: each round one node and one VM are
// touched (their epochs bump), so the solver re-scores one column and
// one row and carries the rest — a full-day simulation round changes
// a handful of entities out of a hundred.
func BenchmarkScoreSolverRoundChurn(b *testing.B) {
	sch, ctx := solverChurnSetup(core.SBConfig())
	nodes := ctx.Cluster.Nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%len(nodes)].Touch()
		ctx.Active[i%len(ctx.Active)].Touch()
		sch.Schedule(ctx)
	}
}

// The same churn loop with the carry disabled — the full per-round
// matrix rebuild the carry replaces.
func BenchmarkScoreSolverRoundChurnFresh(b *testing.B) {
	cfg := core.SBConfig()
	cfg.FreshMatrix = true
	sch, ctx := solverChurnSetup(cfg)
	nodes := ctx.Cluster.Nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%len(nodes)].Touch()
		ctx.Active[i%len(ctx.Active)].Touch()
		sch.Schedule(ctx)
	}
}

// --- sharded parallel rounds: one fleet at 10× the paper's scale ---

// bigRoundCtx is one scheduling round far past the paper's 100 nodes:
// 1000 hosts (150 fast / 500 medium / 350 slow) × 4000 queued VMs.
// At this scale the V×H score matrix is 32 MB of float64 — the memory
// and CPU bound flagged since PR 2 — and one serial round costs
// seconds; the sharded engine splits the matrix into per-shard slabs
// of V×⌈H/K⌉ cells (the slabMB metric) and fans the build and the
// per-move refreshes out over K workers. Every variant below applies
// the exact same moves (enforced by the differential tests); only
// wall-clock and slab shape change.
func bigRoundCtx() *policy.Context {
	classes := cluster.PaperClasses()
	for i := range classes {
		classes[i].Count *= 10
	}
	cls := cluster.MustNew(classes)
	for _, n := range cls.Nodes {
		n.State = cluster.On
	}
	var queue []*vm.VM
	for i := 0; i < 4000; i++ {
		queue = append(queue, vm.New(i, vm.Requirements{CPU: float64(50 * (1 + i%4)), Mem: 5}, 0, 3600, 7200))
	}
	return &policy.Context{Now: 0, Cluster: cls, Queue: queue, LambdaMin: 0.3, LambdaMax: 0.9}
}

func benchShardedRound(b *testing.B, shards int) {
	ctx := bigRoundCtx()
	cfg := core.SBConfig()
	cfg.Shards = shards
	var sch *core.Scheduler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch = core.MustScheduler(cfg)
		sch.Schedule(ctx)
	}
	b.ReportMetric(float64(sch.Stats.Moves), "moves")
	b.ReportMetric(float64(sch.Stats.MaxSlabCells)*8/float64(1<<20), "slabMB")
}

func BenchmarkShardedRound1000N4000V_Serial(b *testing.B) { benchShardedRound(b, 0) }
func BenchmarkShardedRound1000N4000V_K1(b *testing.B)     { benchShardedRound(b, 1) }
func BenchmarkShardedRound1000N4000V_K2(b *testing.B)     { benchShardedRound(b, 2) }
func BenchmarkShardedRound1000N4000V_K4(b *testing.B)     { benchShardedRound(b, 4) }
func BenchmarkShardedRound1000N4000V_K8(b *testing.B)     { benchShardedRound(b, 8) }
func BenchmarkShardedRound1000N4000V_KMax(b *testing.B)   { benchShardedRound(b, -1) }

// --- extensions: adaptive thresholds, DVFS governors, economics ---

// Dynamic λ (the paper's future-work threshold adjustment) vs the
// static balanced setting.
func BenchmarkExtensionAdaptiveLambda(b *testing.B) {
	runBench(b, func() datacenter.Config {
		c := cfgFor(func() policy.Policy { return core.MustScheduler(core.SBConfig()) }, 30, 90)()
		c.AdaptiveTarget = 98
		return c
	})
}

// The same workload on a fleet pinned to the performance governor —
// quantifies the §II DVFS context.
func BenchmarkExtensionGovernorPerformance(b *testing.B) {
	classes := cluster.PaperClasses()
	for i := range classes {
		classes[i].Power = dvfs.Wrap(power.PaperTableI(), dvfs.Performance{})
	}
	runBench(b, func() datacenter.Config {
		c := cfgFor(func() policy.Policy { return core.MustScheduler(core.SBConfig()) }, 30, 90)()
		c.Classes = classes
		return c
	})
}

// Provider profit of one full run (revenue − energy cost).
func BenchmarkExtensionEconomics(b *testing.B) {
	var profit float64
	for i := 0; i < b.N; i++ {
		sim, err := datacenter.New(cfgFor(func() policy.Policy { return core.MustScheduler(core.SBConfig()) }, 30, 90)())
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		out, err := economics.DefaultTariff().Evaluate(sim.VMs(), rep)
		if err != nil {
			b.Fatal(err)
		}
		profit = out.Profit
	}
	b.ReportMetric(profit, "profit")
}

// One chaos scale scenario per iteration: a 2k-node heterogeneous
// fleet on a one-day streaming trace with injected crashes and a
// flapping node — the CI-sized cousin of the 10k-node acceptance
// scenario in internal/chaos, tracking the cost of running the
// simulator at fleet scale.
func BenchmarkScenarioChaos2k(b *testing.B) {
	s := chaos.Scenario10k()
	s.Name = "2k-1day"
	s.Nodes = 2000
	s.Days = 1
	var failures int
	for i := 0; i < b.N; i++ {
		rep, err := s.Run(0, false)
		if err != nil {
			b.Fatal(err)
		}
		failures = rep.Failures
	}
	b.ReportMetric(float64(failures), "failures")
}

// The same chaos scenario with the PR 9 accounting collectors armed:
// per-interval series sampling plus per-VM energy attribution. The
// delta against BenchmarkScenarioChaos2k is the sampling overhead the
// observability docs promise stays under 2%.
func BenchmarkScenarioChaos2kAccounting(b *testing.B) {
	s := chaos.Scenario10k()
	s.Name = "2k-1day"
	s.Nodes = 2000
	s.Days = 1
	var samples uint64
	for i := 0; i < b.N; i++ {
		store := series.NewStore(0)
		_, err := s.RunWithObservers(0, false, nil, store.Add)
		if err != nil {
			b.Fatal(err)
		}
		samples = store.Count()
	}
	b.ReportMetric(float64(samples), "samples")
}
