// Package energysched is an energy-aware VM scheduling framework for
// virtualized datacenters, reproducing Goiri et al., "Energy-aware
// Scheduling in Virtualized Datacenters" (IEEE CLUSTER 2010).
//
// It bundles a power-aware discrete-event datacenter simulator, the
// paper's score-based consolidation scheduler, the baseline policies
// it is evaluated against (Random, Round-Robin, Backfilling, Dynamic
// Backfilling), a Grid5000-like workload generator plus GWF/SWF trace
// readers, and the λmin/λmax node power manager.
//
// Minimal use:
//
//	trace := energysched.GenerateTrace(energysched.TraceOptions{Days: 1, Seed: 7})
//	res, err := energysched.Run(energysched.Options{
//		Policy: "SB",
//		Trace:  trace,
//	})
//	fmt.Println(res)
package energysched

import (
	"fmt"
	"io"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

// Trace is a workload trace: a sequence of HPC jobs with submission
// times, resource requirements and SLA deadlines.
type Trace = workload.Trace

// Event is one structured simulation event (see Options.EventLog).
type Event = datacenter.Event

// Job is one HPC job of a trace.
type Job = workload.Job

// TraceOptions parameterizes GenerateTrace.
type TraceOptions struct {
	// Days is the trace length (default 7, the paper's Grid week).
	Days float64
	// Seed makes generation deterministic (default 1).
	Seed int64
	// JobsPerDay overrides the calibrated arrival volume (0 = default).
	JobsPerDay float64
}

// GenerateTrace produces a synthetic Grid5000-like trace calibrated
// to the aggregate statistics of the week the paper evaluates on.
func GenerateTrace(opts TraceOptions) *Trace {
	cfg := workload.DefaultGeneratorConfig()
	if opts.Days > 0 {
		cfg.Horizon = opts.Days * 24 * 3600
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.JobsPerDay > 0 {
		cfg.JobsPerDay = opts.JobsPerDay
	}
	return workload.MustGenerate(cfg)
}

// JobSource is a streaming workload: jobs yielded one at a time in
// submit order, so week-long traces feed a simulation in O(1) memory.
type JobSource = workload.JobSource

// GenerateTraceSource streams the synthetic Grid5000-like trace
// without materializing it: the yielded jobs are identical, job for
// job, to GenerateTrace with the same options.
func GenerateTraceSource(opts TraceOptions) (JobSource, error) {
	cfg := workload.DefaultGeneratorConfig()
	if opts.Days > 0 {
		cfg.Horizon = opts.Days * 24 * 3600
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.JobsPerDay > 0 {
		cfg.JobsPerDay = opts.JobsPerDay
	}
	return workload.NewGeneratorSource(cfg)
}

// StreamTraceCSV streams a native CSV trace incrementally (the
// streaming counterpart of ReadTraceCSV; rows must be submit-sorted).
func StreamTraceCSV(r io.Reader) (JobSource, error) { return workload.NewCSVSource(r) }

// StreamTraceGWF streams a Grid Workloads Format trace incrementally
// with default conversion (the streaming counterpart of ReadTraceGWF;
// rows must be submit-sorted).
func StreamTraceGWF(r io.Reader) (JobSource, error) {
	return workload.NewGWFSource(r, workload.ConvertOptions{})
}

// ReadTraceCSV parses the native CSV trace format (see WriteTraceCSV).
func ReadTraceCSV(r io.Reader) (*Trace, error) { return workload.ReadCSV(r) }

// WriteTraceCSV serializes a trace as CSV.
func WriteTraceCSV(w io.Writer, t *Trace) error { return workload.WriteCSV(w, t) }

// ReadTraceGWF parses a Grid Workloads Format trace (the archive
// format of the paper's Grid5000 input) with default conversion.
func ReadTraceGWF(r io.Reader) (*Trace, error) {
	return workload.ReadGWF(r, workload.ConvertOptions{})
}

// ScoreParams exposes the tunable costs of the score-based policy.
type ScoreParams struct {
	// Cempty (Ce) penalizes emptiable hosts; Cfill (Cf) rewards
	// occupied ones. The paper's defaults are 20 and 40.
	Cempty, Cfill float64
	// THempty is the "emptiable" VM-count threshold (default 1).
	THempty int
}

// Options configures one simulation run.
type Options struct {
	// Policy selects the scheduler: "RD", "RR", "BF", "DBF", "SB0",
	// "SB1", "SB2" or "SB" (default "SB").
	Policy string
	// Trace is the workload (required).
	Trace *Trace
	// LambdaMin, LambdaMax are the power-manager thresholds in
	// percent (defaults 30 and 90, the paper's balanced setting).
	LambdaMin, LambdaMax float64
	// Seed drives all stochastic components (default 1).
	Seed int64
	// Score overrides the consolidation costs (nil = paper values).
	Score *ScoreParams
	// Failures enables reliability-driven node crashes; nodes get
	// the reliability factors configured in the cluster classes.
	Failures bool
	// CheckpointSeconds > 0 checkpoints running VMs periodically so
	// failed VMs recover instead of restarting.
	CheckpointSeconds float64
	// AdaptiveTarget > 0 enables dynamic λmin adjustment holding mean
	// client satisfaction at this percentage (the paper's future-work
	// dynamic thresholds).
	AdaptiveTarget float64
	// Shards selects the score-based solver's sharded parallel round
	// engine: 0 runs the serial solver (default), -1 uses one shard
	// per GOMAXPROCS, K >= 1 uses exactly K shards. The emitted
	// actions — and therefore every metric — are byte-identical at any
	// setting; sharding only changes the round's wall-clock time and
	// peak matrix memory shape. Ignored by the baseline policies.
	Shards int
	// EventLog, when non-nil, receives every simulation event as it
	// happens (arrivals, placements, migrations, boots, failures).
	EventLog func(Event)
	// RoundTimer, when non-nil, receives the wall-clock duration (in
	// seconds) of every policy scheduling round — the latency-histogram
	// hook. Pure observability: it sees wall time only and cannot
	// perturb the deterministic simulation.
	RoundTimer func(seconds float64)
	// JobsCSV, when non-nil, receives a per-job outcome table after
	// the run (one row per VM).
	JobsCSV io.Writer
	// PowerTrace, when non-nil, receives (virtual time, total watts)
	// samples at every change of the datacenter's draw.
	PowerTrace func(t, watts float64)
	// Classes overrides the fleet (nil = the paper's 100 nodes:
	// 15 fast, 50 medium, 35 slow).
	Classes []NodeClass
}

// NodeClass mirrors the cluster class description for the public API.
type NodeClass struct {
	Name        string
	Count       int
	CPU         float64 // percent; 400 = 4 cores
	Mem         float64 // units; node standard is 100
	CreateCost  float64 // seconds (Cc)
	MigrateCost float64 // seconds (Cm)
	BootTime    float64 // seconds
	Reliability float64 // availability in (0, 1]
}

// ScaleClasses builds the heterogeneous scale fleet the chaos harness
// uses for 10k-node scenarios (the public form of the mix in
// internal/chaos.HeterogeneousClasses): 10% big (8 cores), ~60%
// standard, 20% small, 10% flaky (Frel 0.95). The paper evaluates 100
// homogeneous-capacity machines; scale runs deliberately mix
// capacities, operation costs and reliability instead.
func ScaleClasses(total int) []NodeClass {
	if total < 10 {
		total = 10
	}
	big, small, flaky := total/10, total/5, total/10
	std := total - big - small - flaky
	mk := func(name string, count int, cpu, mem, cc, cm, rel float64) NodeClass {
		return NodeClass{
			Name: name, Count: count, CPU: cpu, Mem: mem,
			CreateCost: cc, MigrateCost: cm, BootTime: 100, Reliability: rel,
		}
	}
	return []NodeClass{
		mk("big", big, 800, 200, 30, 40, 1.0),
		mk("std", std, 400, 100, 40, 60, 1.0),
		mk("small", small, 200, 50, 60, 80, 1.0),
		mk("flaky", flaky, 400, 100, 40, 60, 0.95),
	}
}

// Result is the outcome of one run — one row of the paper's tables.
type Result struct {
	Policy               string
	LambdaMin, LambdaMax float64
	AvgWorking           float64 // time-averaged working nodes
	AvgOnline            float64 // time-averaged powered-on nodes
	CPUHours             float64 // CPU work executed
	EnergyKWh            float64 // total energy
	Satisfaction         float64 // mean client satisfaction S (%)
	Delay                float64 // mean execution delay (%)
	Migrations           int
	JobsCompleted        int
	JobsTotal            int
	Failures             int
	SimEnd               float64 // virtual seconds simulated
}

// String renders the result like a row of the paper's tables.
func (r Result) String() string { return r.report().String() }

func (r Result) report() metrics.Report {
	return metrics.Report{
		Policy: r.Policy, LambdaMin: r.LambdaMin, LambdaMax: r.LambdaMax,
		AvgWorking: r.AvgWorking, AvgOnline: r.AvgOnline, CPUHours: r.CPUHours,
		EnergyKWh: r.EnergyKWh, Satisfaction: r.Satisfaction, Delay: r.Delay,
		Migrations: r.Migrations, JobsCompleted: r.JobsCompleted,
		JobsTotal: r.JobsTotal, Failures: r.Failures, SimEnd: r.SimEnd,
	}
}

// NewPolicy constructs a policy by name. Exposed so callers can embed
// policies in custom harnesses; Run calls it internally (with
// Options.Shards applied — this constructor keeps the serial solver).
func NewPolicy(name string, seed int64, score *ScoreParams) (policy.Policy, error) {
	return newPolicy(name, seed, score, 0)
}

func newPolicy(name string, seed int64, score *ScoreParams, shards int) (policy.Policy, error) {
	applyScore := func(c core.Config) core.Config {
		if score != nil {
			c.Cempty = score.Cempty
			c.Cfill = score.Cfill
			if score.THempty > 0 {
				c.THempty = score.THempty
			}
		}
		c.Shards = shards
		return c
	}
	switch name {
	case "", "SB":
		return core.NewScheduler(applyScore(core.SBConfig()))
	case "SB0":
		return core.NewScheduler(applyScore(core.SB0Config()))
	case "SB1":
		return core.NewScheduler(applyScore(core.SB1Config()))
	case "SB2":
		return core.NewScheduler(applyScore(core.SB2Config()))
	case "RD":
		return policy.NewRandom(seed), nil
	case "RR":
		return policy.NewRoundRobin(), nil
	case "BF":
		return policy.NewBackfilling(), nil
	case "DBF":
		return policy.NewDynamicBackfilling(), nil
	default:
		return nil, fmt.Errorf("energysched: unknown policy %q", name)
	}
}

// NewSimulation builds the configured simulation without executing
// it, for harnesses that drive the engine step-wise — primarily the
// energyschedd server, which injects jobs online (Inject/StepBefore/
// Drain) instead of replaying a pre-built trace. Options.Trace may be
// nil here; Run still requires one.
func NewSimulation(opts Options) (*datacenter.Simulation, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	pol, err := newPolicy(opts.Policy, seed, opts.Score, opts.Shards)
	if err != nil {
		return nil, err
	}
	cfg := datacenter.Config{
		Trace:              opts.Trace,
		Policy:             pol,
		LambdaMin:          opts.LambdaMin,
		LambdaMax:          opts.LambdaMax,
		Seed:               seed,
		FailuresEnabled:    opts.Failures,
		CheckpointInterval: opts.CheckpointSeconds,
		AdaptiveTarget:     opts.AdaptiveTarget,
		EventLog:           opts.EventLog,
		RoundTimer:         opts.RoundTimer,
	}
	if opts.Classes != nil {
		cfg.Classes, err = convertClasses(opts.Classes)
		if err != nil {
			return nil, err
		}
	}
	sim, err := datacenter.New(cfg)
	if err != nil {
		return nil, err
	}
	sim.PowerTrace = opts.PowerTrace
	return sim, nil
}

// Run executes one simulation and returns its result.
func Run(opts Options) (Result, error) {
	if opts.Trace == nil {
		return Result{}, fmt.Errorf("energysched: Options.Trace is required")
	}
	sim, err := NewSimulation(opts)
	if err != nil {
		return Result{}, err
	}
	rep, err := sim.Run()
	if err != nil {
		return Result{}, err
	}
	if opts.JobsCSV != nil {
		if err := datacenter.WriteJobsCSV(opts.JobsCSV, sim.VMs()); err != nil {
			return Result{}, err
		}
	}
	return fromReport(rep), nil
}

// RunStream executes one simulation fed from a streaming source
// instead of a materialized Options.Trace. The result is
// byte-identical to Run on the equivalent trace; only peak memory
// differs (O(1) in trace length instead of O(jobs)).
func RunStream(opts Options, src JobSource) (Result, error) {
	if src == nil {
		return Result{}, fmt.Errorf("energysched: RunStream needs a source")
	}
	if opts.Trace != nil {
		return Result{}, fmt.Errorf("energysched: give RunStream a source or Options.Trace, not both")
	}
	sim, err := NewSimulation(opts)
	if err != nil {
		return Result{}, err
	}
	rep, err := sim.RunSource(src)
	if err != nil {
		return Result{}, err
	}
	if opts.JobsCSV != nil {
		if err := datacenter.WriteJobsCSV(opts.JobsCSV, sim.VMs()); err != nil {
			return Result{}, err
		}
	}
	return fromReport(rep), nil
}

func fromReport(rep metrics.Report) Result {
	return Result{
		Policy: rep.Policy, LambdaMin: rep.LambdaMin, LambdaMax: rep.LambdaMax,
		AvgWorking: rep.AvgWorking, AvgOnline: rep.AvgOnline, CPUHours: rep.CPUHours,
		EnergyKWh: rep.EnergyKWh, Satisfaction: rep.Satisfaction, Delay: rep.Delay,
		Migrations: rep.Migrations, JobsCompleted: rep.JobsCompleted,
		JobsTotal: rep.JobsTotal, Failures: rep.Failures, SimEnd: rep.SimEnd,
	}
}

func convertClasses(in []NodeClass) ([]cluster.Class, error) {
	paper := cluster.PaperClasses()
	var out []cluster.Class
	for _, c := range in {
		cl := paper[0] // inherit power model, arch, hypervisor
		cl.Name = c.Name
		cl.Count = c.Count
		if c.CPU > 0 {
			cl.CPU = c.CPU
		}
		if c.Mem > 0 {
			cl.Mem = c.Mem
		}
		if c.CreateCost > 0 {
			cl.CreateCost = c.CreateCost
		}
		if c.MigrateCost > 0 {
			cl.MigrateCost = c.MigrateCost
		}
		if c.BootTime > 0 {
			cl.BootTime = c.BootTime
		}
		if c.Reliability > 0 {
			cl.Reliability = c.Reliability
		}
		out = append(out, cl)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("energysched: empty class list")
	}
	return out, nil
}
