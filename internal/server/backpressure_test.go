package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"energysched"
)

// The serving-path contracts of the admission sharding PR at the HTTP
// layer: over-limit submits shed with honest 429 + Retry-After,
// evicted SSE resume points announce themselves with an explicit gap
// event instead of silently skipping, and identical concurrent reads
// coalesce into one fleet event-loop turn.

// TestHTTPRateLimit429WithRetryAfter: a fleet created with a rate
// limit sheds over-limit submits with 429, a Retry-After header, and
// shed counters on /metrics — and recovers once the bucket refills.
func TestHTTPRateLimit429WithRetryAfter(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	ctx := context.Background()
	if _, err := client.CreateFleet(ctx, energysched.FleetSpec{
		ID: "rl", Policy: "SB", Seed: 1, RateLimit: 2, RateBurst: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Raw HTTP so the Retry-After header is observable and no retry
	// policy can paper over the 429.
	submit := func(at float64) *http.Response {
		t.Helper()
		body := `{"cpu_pct":100,"mem_units":5,"duration_s":600,"submit_s":` +
			strconv.FormatFloat(at, 'f', -1, 64) + `}`
		resp, err := http.Post(hs.URL+"/v1/fleets/rl/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	// The burst admits one job; hammering past it must produce a 429.
	if resp := submit(0); resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("first submit = %d: %s", resp.StatusCode, b)
	}
	var shed *http.Response
	for i := 0; i < 10; i++ {
		resp := submit(float64(i+1) * 30)
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, b)
		}
	}
	if shed == nil {
		t.Fatal("10 immediate submits against a 2/s limit never shed a 429")
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response carried no Retry-After header")
	}

	// The shed surfaces on the metrics endpoint.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	metricsText := string(mb)
	for _, want := range []string{
		`energysched_admit_shed_total{fleet="rl",reason="rate"}`,
		`energysched_admit_queue_depth{fleet="rl",shard="0"}`,
		`energysched_admit_shards{fleet="rl"}`,
	} {
		if !strings.Contains(metricsText, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsText)
		}
	}
}

// TestEventStreamGapSignal: a /v1/events resume from an evicted
// sequence gets an explicit gap event — surfaced to the Go client as a
// terminal *GapError naming the evicted range.
func TestEventStreamGapSignal(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1, EventRing: 4})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		at := float64(i) * 30
		if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// since=1 points far behind the depth-4 ring: the raw SSE stream
	// must open with the gap event.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/events?since=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	head := string(buf[:n])
	if !strings.Contains(head, "event: gap") || !strings.Contains(head, `"requested":1`) {
		t.Fatalf("evicted resume did not open with a gap event:\n%s", head)
	}

	// The Go client turns the gap into a terminal *GapError.
	err = client.Events(ctx, 1, func(seq uint64, e energysched.Event) error { return nil })
	var gerr *energysched.GapError
	if !errors.As(err, &gerr) {
		t.Fatalf("client tail from evicted seq returned %v, want *GapError", err)
	}
	if gerr.Gap.Requested != 1 || gerr.Gap.Oldest <= 2 {
		t.Fatalf("gap = %+v, want requested 1 and oldest past the evicted range", gerr.Gap)
	}

	// A live resume point still streams normally — no spurious gaps.
	errStop := errors.New("saw one")
	err = client.Events(ctx, gerr.Gap.Oldest-1, func(seq uint64, e energysched.Event) error { return errStop })
	if !errors.Is(err, errStop) {
		t.Fatalf("in-ring resume = %v, want a normal event", err)
	}
}

// TestTraceAndJourneyGapSignals: the trace and journey SSE tails share
// the gap contract — forced eviction via tiny retention depths, then a
// too-early resume must fail loudly with *GapError.
func TestTraceAndJourneyGapSignals(t *testing.T) {
	_, _, client := newTestServer(t, Config{
		Policy: "SB", Seed: 1,
		TraceVerbosity: "rounds", TraceDepth: 2, JourneyDepth: 2,
	})
	// A missing gap leaves the follow stream open forever; bound the
	// tails so that bug fails instead of hanging the suite.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 8; i++ {
		at := float64(i) * 600
		if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 300, Submit: &at}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	var gerr *energysched.GapError
	err := client.TraceTail(ctx, 1, func(rt energysched.TraceRound) error { return nil })
	if !errors.As(err, &gerr) {
		t.Fatalf("trace tail from evicted seq returned %v, want *GapError", err)
	}
	if gerr.Gap.Requested != 1 || gerr.Gap.Oldest <= 2 {
		t.Fatalf("trace gap = %+v", gerr.Gap)
	}

	err = client.JourneyTail(ctx, 1, func(ev energysched.JourneyEvent) error { return nil })
	if !errors.As(err, &gerr) {
		t.Fatalf("journey tail from evicted seq returned %v, want *GapError", err)
	}
	if gerr.Gap.Requested != 1 || gerr.Gap.Oldest <= 2 {
		t.Fatalf("journey gap = %+v", gerr.Gap)
	}
}

// TestReadGroupCoalesces: the singleflight group runs one fetch per
// (endpoint, key) at a time — followers that arrive while the leader
// is in flight share its result, and the hit/miss counters surface on
// the metrics samples.
func TestReadGroupCoalesces(t *testing.T) {
	var g readGroup
	gate := make(chan struct{})
	entered := make(chan struct{})
	var fetches int
	const followers = 5

	var wg sync.WaitGroup
	results := make([]interface{}, followers+1)
	leaderFn := func() (interface{}, error) {
		fetches++
		close(entered)
		<-gate
		return "report-v1", nil
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = g.do("report", "default", leaderFn)
	}()
	<-entered
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Never runs: the leader is in flight for the same key.
			results[i+1], _ = g.do("report", "default", func() (interface{}, error) {
				t.Error("follower executed its own fetch")
				return nil, nil
			})
		}(i)
	}
	// Followers must be parked on the leader's call before release;
	// poll the group's internal state instead of sleeping blind.
	waitFor(t, "followers parked on the leader's flight", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		st := g.stats["report"]
		return st != nil && st.hits == followers
	})
	close(gate)
	wg.Wait()

	if fetches != 1 {
		t.Fatalf("%d fetches for %d concurrent identical reads, want 1", fetches, followers+1)
	}
	for i, r := range results {
		if r != "report-v1" {
			t.Fatalf("caller %d got %v, want the leader's result", i, r)
		}
	}

	// A different key is a different flight.
	if v, _ := g.do("report", "other", func() (interface{}, error) { return "other-v1", nil }); v != "other-v1" {
		t.Fatalf("distinct key returned %v", v)
	}
	// And a later identical call re-fetches: coalescing is per-flight,
	// never a stale cache.
	if v, _ := g.do("report", "default", func() (interface{}, error) { return "report-v2", nil }); v != "report-v2" {
		t.Fatalf("post-flight call returned %v, want a fresh fetch", v)
	}

	samples := g.samples()
	var hits, misses float64
	for _, s := range samples {
		if s.Name != "energysched_coalesce_total" || s.Labels["endpoint"] != "report" {
			continue
		}
		switch s.Labels["result"] {
		case "hit":
			hits = s.Value
		case "miss":
			misses = s.Value
		}
	}
	if hits != followers || misses != 3 {
		t.Fatalf("coalesce samples: hits=%v misses=%v, want %d and 3\n%+v", hits, misses, followers, samples)
	}
}

// TestCoalesceMetricsOnServedReads: end to end, served /v1/report and
// /v1/cluster reads show up under energysched_coalesce_total.
func TestCoalesceMetricsOnServedReads(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	ctx := context.Background()
	if _, err := client.Report(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Cluster(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`energysched_coalesce_total{endpoint="report",result="miss"}`,
		`energysched_coalesce_total{endpoint="cluster",result="miss"}`,
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
