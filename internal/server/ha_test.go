package server

import (
	"context"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"energysched"
)

// Warm-standby integration: a leader and a follower daemon wired
// through real HTTP, exercising discovery, snapshot bootstrap, live
// record streaming, write gating, promotion, and generation-bump
// re-bootstrap.

// haPair starts a leader and a follower mirroring it, both durable.
func haPair(t *testing.T, grace time.Duration) (leader, follower *Server, lc, fc *energysched.Client) {
	t.Helper()
	leader, lhs, lc := newTestServer(t, Config{
		WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
		ReplPing: 20 * time.Millisecond,
	})
	follower, _, fc = newTestServer(t, Config{
		WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
		Follow: lhs.URL, FollowPoll: 20 * time.Millisecond,
		PromoteGrace: grace,
	})
	return leader, follower, lc, fc
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// submitN batch-submits n jobs with distinct shapes to a client.
func submitN(t *testing.T, c *energysched.Client, n, idBase int) {
	t.Helper()
	specs := make([]energysched.JobSpec, 0, n)
	for i := 0; i < n; i++ {
		submit := float64((idBase + i) * 15)
		specs = append(specs, energysched.JobSpec{
			CPU: 100 + float64(i%3)*50, Mem: 5, Duration: 600 + float64(i%5)*120,
			Submit: &submit, DeadlineFactor: 1.5,
		})
	}
	if _, err := c.SubmitJobs(context.Background(), specs); err != nil {
		t.Fatalf("submitting batch: %v", err)
	}
}

func TestFollowerMirrorsAndPromotes(t *testing.T) {
	_, follower, lc, fc := haPair(t, 0)
	ctx := context.Background()

	// Churn on two fleets: the default one and an API-created one.
	submitN(t, lc, 40, 0)
	if _, err := lc.CreateFleet(ctx, energysched.FleetSpec{ID: "batch", Policy: "BF"}); err != nil {
		t.Fatal(err)
	}
	submitN(t, lc.Fleet("batch"), 10, 0)

	// The follower discovers both fleets and catches up.
	waitFor(t, "follower sync", func() bool {
		h, err := fc.Health(ctx)
		return err == nil && h.Role == "follower" && h.Ready && h.Fleets == 2
	})

	// Reports and job listings must be byte-identical (same records,
	// same deterministic engine, same watermark).
	for _, id := range []string{DefaultFleet, "batch"} {
		id := id
		waitFor(t, "identical state of "+id, func() bool {
			lrep, err1 := lc.Fleet(id).Report(ctx)
			frep, err2 := fc.Fleet(id).Report(ctx)
			ljobs, err3 := lc.Fleet(id).Jobs(ctx)
			fjobs, err4 := fc.Fleet(id).Jobs(ctx)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return false
			}
			return reflect.DeepEqual(lrep, frep) && reflect.DeepEqual(ljobs, fjobs)
		})
	}

	// Status endpoint: follower role, synced, with WAL stats.
	st, err := fc.FleetStatus(ctx, DefaultFleet)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || st.Replication.Offset != 40 || st.Replication.Lag != 0 {
		t.Fatalf("follower status = %+v", st)
	}
	if st.WAL == nil {
		t.Fatal("follower status missing WAL stats despite -wal-dir")
	}

	// Writes are gated on the follower with a retry hint.
	resp, err := http.Post(fc.BaseURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"cpu_pct":100,"mem_units":5,"duration_s":60}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("follower write: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if _, err := fc.CreateFleet(ctx, energysched.FleetSpec{ID: "x"}); !isStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("follower fleet create: %v", err)
	}

	// A drained leader fleet replicates its seal: the follower's final
	// report is the leader's, byte for byte.
	lrep, err := lc.Fleet("batch").Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replicated seal", func() bool {
		frep, err := fc.Fleet("batch").Report(ctx)
		return err == nil && frep.Final && reflect.DeepEqual(lrep, frep)
	})

	// Promote: the follower flips to leader and accepts writes.
	if _, err := lc.Promote(ctx); !isStatus(err, http.StatusConflict) {
		t.Fatalf("promote on the leader: %v", err)
	}
	info, err := fc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "leader" || info.Fleets[DefaultFleet] != 40 || info.Fleets["batch"] != 11 {
		t.Fatalf("promote info = %+v", info)
	}
	if follower.Role() != "leader" {
		t.Fatalf("role after promote = %s", follower.Role())
	}
	if _, err := fc.Promote(ctx); !isStatus(err, http.StatusConflict) {
		t.Fatalf("second promote: %v", err)
	}
	h, err := fc.Health(ctx)
	if err != nil || h.Role != "leader" || !h.Ready {
		t.Fatalf("health after promote: %+v, %v", h, err)
	}
	submitN(t, fc, 3, 100) // unsealed default fleet accepts writes now
}

func TestFollowerReBootstrapsOnGenerationBump(t *testing.T) {
	_, _, lc, fc := haPair(t, 0)
	ctx := context.Background()

	submitN(t, lc, 5, 0)
	snap, err := lc.Snapshot(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, lc, 3, 5)
	waitFor(t, "initial sync", func() bool {
		st, err := fc.FleetStatus(ctx, DefaultFleet)
		return err == nil && st.Replication.Offset == 8
	})

	// An API restore replaces the leader's timeline (generation bump);
	// the follower must re-bootstrap instead of splicing histories.
	if _, err := lc.Restore(ctx, snap.Path); err != nil {
		t.Fatal(err)
	}
	lst, err := lc.FleetStatus(ctx, DefaultFleet)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Replication.Gen < 2 || lst.Replication.Offset != 5 {
		t.Fatalf("leader after restore: %+v", lst.Replication)
	}
	waitFor(t, "re-bootstrap onto the new timeline", func() bool {
		fst, err := fc.FleetStatus(ctx, DefaultFleet)
		if err != nil {
			return false
		}
		ljobs, err1 := lc.Jobs(ctx)
		fjobs, err2 := fc.Jobs(ctx)
		return fst.Replication.Gen == lst.Replication.Gen && fst.Replication.Offset == 5 &&
			err1 == nil && err2 == nil && reflect.DeepEqual(ljobs, fjobs)
	})
}

func TestFollowerAutoPromotesOnLeaderLoss(t *testing.T) {
	leader, lhs, lc := newTestServer(t, Config{
		WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
		ReplPing: 20 * time.Millisecond,
	})
	_, _, fc := newTestServer(t, Config{
		WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
		Follow: lhs.URL, FollowPoll: 20 * time.Millisecond,
		PromoteGrace: 400 * time.Millisecond,
	})
	ctx := context.Background()

	submitN(t, lc, 10, 0)
	waitFor(t, "follower sync", func() bool {
		h, err := fc.Health(ctx)
		st, serr := fc.FleetStatus(ctx, DefaultFleet)
		return err == nil && h.Ready && h.Fleets == 1 &&
			serr == nil && st.Replication.Offset == 10
	})

	// Kill the leader abruptly — sever live connections first so the
	// follower's open replicate stream dies mid-flight (Close alone
	// would wait for it); the grace window expires and the follower
	// promotes itself.
	lhs.CloseClientConnections()
	lhs.Close()
	leader.Close()
	waitFor(t, "auto-promotion", func() bool {
		h, err := fc.Health(ctx)
		return err == nil && h.Role == "leader"
	})
	jobs, err := fc.Jobs(ctx)
	if err != nil || len(jobs) != 10 {
		t.Fatalf("promoted state: %d jobs, %v", len(jobs), err)
	}
	submitN(t, fc, 2, 50) // serving
}

// TestPromotionRacesInFlightRestore bumps the leader's generation (an
// API restore rewinds its timeline) at the same instant the follower
// is told to promote. Whichever the follower's replication loop sees
// first, the outcome must be coherent: promotion succeeds, the new
// leader serves either the pre-restore timeline it had fully mirrored
// (12 jobs) or the restored one it re-bootstrapped onto (6 jobs) —
// never a splice of the two — and it accepts writes.
func TestPromotionRacesInFlightRestore(t *testing.T) {
	_, follower, lc, fc := haPair(t, 0)
	ctx := context.Background()

	submitN(t, lc, 6, 0)
	snap, err := lc.Snapshot(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, lc, 6, 6)
	waitFor(t, "follower caught up to 12", func() bool {
		st, err := fc.FleetStatus(ctx, DefaultFleet)
		return err == nil && st.Replication.Offset == 12
	})

	var wg sync.WaitGroup
	var rerr, perr error
	var info energysched.PromoteInfo
	wg.Add(2)
	go func() { defer wg.Done(); _, rerr = lc.Restore(ctx, snap.Path) }()
	go func() { defer wg.Done(); info, perr = fc.Promote(ctx) }()
	wg.Wait()
	if rerr != nil {
		t.Fatalf("leader restore: %v", rerr)
	}
	if perr != nil {
		t.Fatalf("promote during in-flight restore: %v", perr)
	}
	if info.Role != "leader" || follower.Role() != "leader" {
		t.Fatalf("promote info %+v, server role %s", info, follower.Role())
	}

	// The promoted timeline is one of the two coherent histories.
	jobs, err := fc.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 && len(jobs) != 12 {
		t.Fatalf("promoted leader has %d jobs, want the restored 6 or the mirrored 12", len(jobs))
	}
	if got := info.Fleets[DefaultFleet]; got != int64(len(jobs)) {
		t.Fatalf("promote reported %d records, Jobs lists %d", got, len(jobs))
	}
	st, err := fc.FleetStatus(ctx, DefaultFleet)
	if err != nil || st.Role != "leader" {
		t.Fatalf("status after promote: %+v, %v", st, err)
	}

	// And it serves writes on its own authority.
	submitN(t, fc, 2, 200)
	after, err := fc.Jobs(ctx)
	if err != nil || len(after) != len(jobs)+2 {
		t.Fatalf("promoted leader writes: %d jobs, %v", len(after), err)
	}
}

// TestFailoverByteIdenticalAcrossAdmitShards: the HA twin oracle with
// the admission router in the picture — a leader running K∈{1,2,4}
// intake shards replicates the identical WAL stream, and the promoted
// follower's drained report is byte-identical at every K. Sharded
// admission must be invisible to replication: the WAL records what the
// arbiter admitted, in admission order, regardless of shard count.
func TestFailoverByteIdenticalAcrossAdmitShards(t *testing.T) {
	run := func(k int) energysched.ServiceReport {
		t.Helper()
		_, lhs, lc := newTestServer(t, Config{
			WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
			ReplPing: 20 * time.Millisecond, AdmitShards: k,
		})
		_, _, fc := newTestServer(t, Config{
			WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
			Follow: lhs.URL, FollowPoll: 20 * time.Millisecond,
		})
		ctx := context.Background()

		// Three batches through the leader's K-sharded admission path.
		for b := 0; b < 3; b++ {
			submitN(t, lc, 20, b*20)
		}
		waitFor(t, "follower caught up", func() bool {
			h, err := fc.Health(ctx)
			if err != nil || h.Role != "follower" || !h.Ready {
				return false
			}
			st, err := fc.FleetStatus(ctx, DefaultFleet)
			return err == nil && st.Replication.Offset == 60 && st.Replication.Lag == 0
		})

		// Fail over and drain on the new leader's authority.
		if _, err := fc.Promote(ctx); err != nil {
			t.Fatalf("K=%d promote: %v", k, err)
		}
		rep, err := fc.Drain(ctx)
		if err != nil {
			t.Fatalf("K=%d drain on promoted leader: %v", k, err)
		}
		return rep
	}
	want := run(1)
	if want.JobsTotal != 60 || !want.Final {
		t.Fatalf("K=1 promoted report looks wrong: %+v", want)
	}
	for _, k := range []int{2, 4} {
		if got := run(k); got != want {
			t.Fatalf("K=%d promoted report diverged from K=1:\n got %+v\nwant %+v", k, got, want)
		}
	}
}
