package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"energysched"
)

// Observability surface: the decision-trace API, the per-route HTTP
// latency histograms, and the build identity in /v1/health — plus the
// end-to-end determinism contract (max-verbosity tracing changes no
// report byte) across plain serving and an HA failover.

// The trace endpoint serves decodable round traces on both the alias
// and the namespaced route, supports ?since cursors and the SSE tail,
// and recording at "scores" leaves the drained report byte-identical
// to an untraced daemon's.
func TestTraceEndpointSnapshotAndTail(t *testing.T) {
	_, hs, client := newTestServer(t, Config{TraceVerbosity: "scores"})
	ctx := context.Background()

	submitN(t, client, 15, 0)
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Untraced twin over the same workload: byte-identical report.
	_, hsOff, clOff := newTestServer(t, Config{})
	submitN(t, clOff, 15, 0)
	if _, err := clOff.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	traced := getBody(t, hs.URL+"/v1/report")
	untraced := getBody(t, hsOff.URL+"/v1/report")
	if !bytes.Equal(traced, untraced) {
		t.Fatalf("scores-verbosity tracing changed the report:\n got %s\nwant %s", traced, untraced)
	}

	snap, err := client.Trace(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq == 0 || len(snap.Traces) == 0 {
		t.Fatalf("drained workload left no traces: %+v", snap)
	}
	if snap.Verbosity != "scores" {
		t.Fatalf("verbosity = %q, want scores", snap.Verbosity)
	}
	if last := snap.Traces[len(snap.Traces)-1].Seq; last != snap.Seq {
		t.Fatalf("head seq %d != last trace seq %d", snap.Seq, last)
	}
	sawTerms := false
	for _, rt := range snap.Traces {
		if rt.Solver == "" || rt.Hosts <= 0 {
			t.Fatalf("malformed trace: %+v", rt)
		}
		if len(rt.Actions) != rt.Moves {
			t.Fatalf("trace %d has %d actions for %d moves", rt.Seq, len(rt.Actions), rt.Moves)
		}
		for _, at := range rt.Actions {
			sawTerms = sawTerms || at.Terms != nil
		}
	}
	if !sawTerms {
		t.Fatal("scores verbosity recorded no score terms")
	}

	// The since cursor resumes exactly past the head.
	tail, err := client.Trace(ctx, snap.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Traces) != 0 || tail.Seq != snap.Seq {
		t.Fatalf("since=head returned %d traces (seq %d)", len(tail.Traces), tail.Seq)
	}

	// Alias and namespaced routes serve byte-identical bodies.
	alias := getBody(t, hs.URL+"/v1/trace")
	scoped := getBody(t, hs.URL+"/v1/fleets/default/trace")
	if !bytes.Equal(alias, scoped) {
		t.Fatalf("trace bodies diverged:\nalias: %s\nscoped: %s", alias, scoped)
	}

	// The SSE tail replays the same backlog.
	errDone := errors.New("done")
	var streamed []uint64
	err = client.TraceTail(ctx, 0, func(rt energysched.TraceRound) error {
		streamed = append(streamed, rt.Seq)
		if rt.Seq >= snap.Seq {
			return errDone
		}
		return nil
	})
	if !errors.Is(err, errDone) {
		t.Fatalf("trace tail ended early: %v (saw %v)", err, streamed)
	}
	if len(streamed) != len(snap.Traces) {
		t.Fatalf("tail replayed %d traces, snapshot has %d", len(streamed), len(snap.Traces))
	}
}

// The runtime verbosity knob takes effect immediately, rejects unknown
// spellings, and a FleetSpec override beats the daemon default; a bad
// spelling in a spec is a 400 before the fleet exists.
func TestTraceVerbosityRuntimeAndOverrides(t *testing.T) {
	_, hs, client := newTestServer(t, Config{}) // daemon default: off
	ctx := context.Background()

	submitN(t, client, 5, 0)
	snap, err := client.Trace(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 0 || snap.Verbosity != "off" {
		t.Fatalf("default-off fleet recorded traces: %+v", snap)
	}
	if err := client.SetTraceVerbosity(ctx, "rounds"); err != nil {
		t.Fatal(err)
	}
	submitN(t, client, 5, 5)
	snap, err = client.Trace(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq == 0 || snap.Verbosity != "rounds" {
		t.Fatalf("runtime verbosity flip did not take: %+v", snap)
	}
	for _, rt := range snap.Traces {
		if len(rt.Actions) != 0 {
			t.Fatalf("rounds verbosity recorded actions: %+v", rt)
		}
	}
	if err := client.SetTraceVerbosity(ctx, "loud"); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("bad verbosity spelling: %v", err)
	}

	// Spec override: an "actions" fleet on an off daemon.
	if _, err := client.CreateFleet(ctx, energysched.FleetSpec{ID: "traced", TraceVerbosity: "actions", TraceDepth: 16}); err != nil {
		t.Fatal(err)
	}
	tc := client.Fleet("traced")
	submitN(t, tc, 20, 0)
	tsnap, err := tc.Trace(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tsnap.Verbosity != "actions" || tsnap.Seq == 0 {
		t.Fatalf("spec override did not take: %+v", tsnap)
	}
	if len(tsnap.Traces) > 16 {
		t.Fatalf("trace_depth 16 retained %d traces", len(tsnap.Traces))
	}

	// A bad spelling in the spec is rejected up front.
	if code, body := postBody(t, hs.URL, "/v1/fleets", `{"id":"bad","trace_verbosity":"loud"}`); code != http.StatusBadRequest {
		t.Fatalf("bad-verbosity create: %d %s", code, body)
	}
}

// Every request feeds the per-route latency histogram under its mux
// pattern (not its raw URL), and /v1/health carries the build
// identity.
func TestRouteLatencyMetricsAndBuildInfo(t *testing.T) {
	_, hs, client := newTestServer(t, Config{})
	ctx := context.Background()

	submitN(t, client, 3, 0)
	if _, err := client.Report(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Fleet("default").Report(ctx); err != nil {
		t.Fatal(err)
	}
	text := string(getBody(t, hs.URL+"/metrics"))
	for _, want := range []string{
		"# TYPE energysched_http_request_seconds histogram",
		`energysched_http_request_seconds_bucket{le="+Inf",route="GET /v1/report"}`,
		`energysched_http_request_seconds_count{route="GET /v1/fleets/{fleet}/report"}`,
		`energysched_http_request_seconds_count{route="POST /v1/jobs"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, `route="GET /v1/fleets/default/report"`) {
		t.Error("route label leaked a raw URL instead of the mux pattern")
	}

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version == "" {
		t.Fatalf("health carries no build version: %+v", h)
	}
}

// HA failover at maximum trace verbosity: the follower mirrors a
// traced leader byte-for-byte, records its own traces from the live
// replicated rounds, and the promoted report equals the leader's.
func TestHAFailoverByteIdenticalAtMaxTraceVerbosity(t *testing.T) {
	_, lhs, lc := newTestServer(t, Config{
		WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
		ReplPing: 20 * time.Millisecond, TraceVerbosity: "scores",
	})
	_, fhs, fc := newTestServer(t, Config{
		WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
		Follow: lhs.URL, FollowPoll: 20 * time.Millisecond,
		TraceVerbosity: "scores",
	})
	ctx := context.Background()

	// Let the follower attach before the workload so records stream
	// live (a snapshot bootstrap replays, and replayed rounds are
	// deliberately not traced).
	waitFor(t, "follower attach", func() bool {
		h, err := fc.Health(ctx)
		return err == nil && h.Role == "follower" && h.Fleets == 1
	})
	submitN(t, lc, 25, 0)
	lrep, err := lc.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replicated seal", func() bool {
		frep, err := fc.Report(ctx)
		return err == nil && frep.Final && reflect.DeepEqual(lrep, frep)
	})

	lt, err := lc.Trace(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Seq == 0 {
		t.Fatal("traced leader recorded nothing")
	}
	waitFor(t, "follower traces from live replication", func() bool {
		ft, err := fc.Trace(ctx, 0)
		return err == nil && ft.Seq > 0
	})

	if _, err := fc.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	got := getBody(t, fhs.URL+"/v1/report")
	want := getBody(t, lhs.URL+"/v1/report")
	if !bytes.Equal(got, want) {
		t.Fatalf("promoted report diverged from the leader's:\n got %s\nwant %s", got, want)
	}
}
