package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"energysched"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/obs/slo"
)

// accountingSLOs is the canonical fire-and-clear objective set: the
// watts ceiling sits between the idle floor (~725 W) and the
// two-big-jobs burst (~1297 W), so the burst fires it and the long
// idle stretch before the straggler clears it.
func accountingSLOs() []slo.Objective {
	return []slo.Objective{
		{Name: "power-budget", Metric: "watts", Max: 1000,
			ShortWindow: 300, LongWindow: 1200, Budget: 0.1},
		{Name: "admit-latency", Metric: "admit_p99_seconds", Max: 100},
	}
}

// submitAccountingBurst drives the probed workload: two 300-CPU jobs
// that push the fleet over the 1000 W ceiling, then a late straggler
// that stretches the timeline through the recovery window. Returns
// the number of jobs submitted.
func submitAccountingBurst(t *testing.T, client *energysched.Client) int {
	t.Helper()
	ctx := context.Background()
	t0, t1, t2 := 0.0, 60.0, 4*3600.0
	specs := []energysched.JobSpec{
		{CPU: 300, Mem: 10, Duration: 1800, Submit: &t0},
		{CPU: 300, Mem: 10, Duration: 1800, Submit: &t1},
		{CPU: 100, Mem: 5, Duration: 60, Submit: &t2},
	}
	if _, err := client.SubmitJobs(ctx, specs); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	return len(specs)
}

func TestSeriesEndpointJSONAndCSV(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	submitAccountingBurst(t, client)
	ctx := context.Background()

	snap, err := client.Series(ctx, energysched.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count == 0 || len(snap.Samples) == 0 {
		t.Fatalf("drained fleet has empty series: %+v", snap)
	}
	for i := 1; i < len(snap.Samples); i++ {
		prev, cur := snap.Samples[i-1], snap.Samples[i]
		if cur.T <= prev.T || cur.KWh < prev.KWh || cur.Completed < prev.Completed {
			t.Fatalf("series not monotone at %d: %+v after %+v", i, cur, prev)
		}
	}
	last := snap.Samples[len(snap.Samples)-1]
	if last.KWh <= 0 || last.Completed == 0 {
		t.Fatalf("final sample recorded no work: %+v", last)
	}

	// Single-metric downsampled query returns (t, v) points only.
	pts, err := client.Series(ctx, energysched.SeriesQuery{Metric: "watts", Step: 3600})
	if err != nil {
		t.Fatal(err)
	}
	if pts.Metric != "watts" || len(pts.Points) == 0 || len(pts.Samples) != 0 {
		t.Fatalf("metric query = %+v", pts)
	}
	if len(pts.Points) > len(snap.Samples) {
		t.Fatalf("downsampling grew the series: %d > %d", len(pts.Points), len(snap.Samples))
	}

	// CSV: full-width header by default, a two-column one per metric.
	resp, err := http.Get(hs.URL + "/v1/series?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv content-type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	wantHeader := "t,watts,kwh,sla_pct,utilization_pct,queue,running,nodes_on,nodes_working,nodes_off,migrations_total,completed_total"
	if lines[0] != wantHeader {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+len(snap.Samples) {
		t.Fatalf("csv has %d rows for %d samples", len(lines)-1, len(snap.Samples))
	}
	_, metricCSV := fetchBody(t, hs.URL, "/v1/series?metric=kwh&format=csv")
	if !strings.HasPrefix(metricCSV, "t,kwh\n") {
		t.Fatalf("metric csv header: %q", metricCSV[:min(len(metricCSV), 40)])
	}
}

// TestSeriesQueryRejections pins the structured-400 half of the query
// contract at the HTTP layer: malformed parameters produce an
// APIError body naming the offense, never a silently defaulted 200.
func TestSeriesQueryRejections(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Policy: "SB", Seed: 1})
	cases := []struct {
		name, query, wantMsg string
	}{
		{"bad metric", "metric=wattz", "unknown metric"},
		{"negative since", "since=-60", "non-negative"},
		{"garbage since", "since=yesterday", "not a number"},
		{"zero step", "step=0", "positive"},
		{"negative step", "step=-300", "positive"},
		{"bad format", "format=xml", "unknown format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := fetchBody(t, hs.URL, "/v1/series?"+tc.query)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, body %s", code, body)
			}
			var apiErr energysched.APIError
			if err := json.Unmarshal([]byte(body), &apiErr); err != nil {
				t.Fatalf("unstructured 400 body %q: %v", body, err)
			}
			if apiErr.Status != http.StatusBadRequest || !strings.Contains(apiErr.Message, tc.wantMsg) {
				t.Fatalf("error body %+v does not mention %q", apiErr, tc.wantMsg)
			}
		})
	}
}

func TestJourneyEndpoints(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	n := submitAccountingBurst(t, client)
	ctx := context.Background()

	// The index lists every drained job with a terminal outcome.
	idx, err := client.Journeys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Journeys) != n || idx.Seq == 0 {
		t.Fatalf("journeys index = %+v, want %d journeys", idx, n)
	}
	for _, js := range idx.Journeys {
		// The late straggler boots a cold fleet and may miss its
		// deadline — "violated" is a terminal outcome too.
		if (js.Outcome != "completed" && js.Outcome != "violated") || js.EnergyKWh <= 0 {
			t.Fatalf("journey summary %+v not terminal", js)
		}
	}

	// One job's full audit span: submitted → placed (with why-scores,
	// the sink forces score recording) → completed.
	j, err := client.Journey(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Job != 0 || len(j.Steps) < 3 {
		t.Fatalf("journey = %+v", j)
	}
	if j.Steps[0].Kind != "submitted" || j.Outcome != "completed" || j.Satisfaction != 100 {
		t.Fatalf("lifecycle = %+v", j)
	}
	foundPlaced := false
	for _, st := range j.Steps {
		if st.Kind == "placed" {
			foundPlaced = true
			if st.Why == nil || st.Why.To != st.Node {
				t.Fatalf("placed step lacks a coherent why-score: %+v", st)
			}
		}
	}
	if !foundPlaced {
		t.Fatalf("no placed step in %+v", j.Steps)
	}

	// Unknown job → 404; unparsable job ID → 400.
	if _, err := client.Journey(ctx, 9999); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown journey error = %v", err)
	}
	if code, _ := fetchBody(t, hs.URL, "/v1/jobs/abc/journey"); code != http.StatusBadRequest {
		t.Fatalf("bad job id status = %d", code)
	}
}

// TestJourneyFirehoseSSE replays the full firehose over SSE and
// through the client tail, checking sequence-gapless delivery and the
// flattened wire shape.
func TestJourneyFirehoseSSE(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	submitAccountingBurst(t, client)
	ctx := context.Background()

	idx, err := client.Journeys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	transcript := readSSETranscript(t, hs.URL, "/v1/journeys?follow=1", idx.Seq)
	if !strings.Contains(transcript, "event: step") || !strings.Contains(transcript, "id: 1\n") {
		t.Fatalf("transcript missing SSE framing:\n%s", transcript)
	}
	if !strings.Contains(transcript, `"kind":"submitted"`) || !strings.Contains(transcript, `"kind":"completed"`) {
		t.Fatalf("transcript missing lifecycle steps:\n%s", transcript)
	}

	// The client tail sees the same backlog, in order, with gapless
	// sequence numbers.
	errStop := errors.New("caught up")
	var evs []energysched.JourneyEvent
	tailErr := client.JourneyTail(ctx, 0, func(ev energysched.JourneyEvent) error {
		evs = append(evs, ev)
		if ev.Seq >= idx.Seq {
			return errStop
		}
		return nil
	})
	if !errors.Is(tailErr, errStop) {
		t.Fatalf("tail ended with %v", tailErr)
	}
	if uint64(len(evs)) != idx.Seq {
		t.Fatalf("tailed %d events, want %d", len(evs), idx.Seq)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Kind != "submitted" {
		t.Fatalf("first event = %+v", evs[0])
	}

	// Resume mid-stream: since=N skips the first N events.
	var resumed []energysched.JourneyEvent
	tailErr = client.JourneyTail(ctx, idx.Seq-1, func(ev energysched.JourneyEvent) error {
		resumed = append(resumed, ev)
		return errStop
	})
	if !errors.Is(tailErr, errStop) || len(resumed) != 1 || resumed[0].Seq != idx.Seq {
		t.Fatalf("resume from %d got %+v (%v)", idx.Seq-1, resumed, tailErr)
	}
}

func TestAlertsEndpoints(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1, SLOs: accountingSLOs()})
	submitAccountingBurst(t, client)
	ctx := context.Background()

	snap, err := client.Alerts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Alerts) != 2 {
		t.Fatalf("alerts = %+v, want both objectives", snap)
	}
	byName := map[string]energysched.FleetAlert{}
	for _, a := range snap.Alerts {
		if a.Fleet != "default" {
			t.Fatalf("alert tagged with fleet %q", a.Fleet)
		}
		byName[a.Name] = a
	}
	// The burst fired the power budget; the idle gap before the
	// straggler cleared it again.
	pb := byName["power-budget"]
	if pb.FiredTotal < 1 || pb.ClearedTotal < 1 || pb.State != "ok" {
		t.Fatalf("power-budget episode = %+v, want fired and cleared", pb)
	}
	al := byName["admit-latency"]
	if al.State != "ok" || al.FiredTotal != 0 {
		t.Fatalf("admit-latency = %+v", al)
	}
	if snap.Firing != 0 {
		t.Fatalf("Firing = %d after drain", snap.Firing)
	}

	// Fleet-scoped route and client agree byte-for-byte with the
	// daemon-wide one (single fleet), and unknown fleets 404.
	_, daemonWide := fetchBody(t, hs.URL, "/v1/alerts")
	_, fleetScoped := fetchBody(t, hs.URL, "/v1/fleets/default/alerts")
	if daemonWide != fleetScoped {
		t.Fatalf("alert bodies diverge:\n%s\n%s", daemonWide, fleetScoped)
	}
	if _, err := client.Fleet("default").Alerts(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := fetchBody(t, hs.URL, "/v1/fleets/nope/alerts"); code != http.StatusNotFound {
		t.Fatalf("unknown fleet alerts status = %d", code)
	}
}

// TestSSEHeartbeatKeepsIdleStreamsAlive is the idle-fleet keepalive
// harness: with a short -sse-ping, streams with nothing to say still
// emit ": ping" comments so proxies and slow readers keep the
// connection open.
func TestSSEHeartbeatKeepsIdleStreamsAlive(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{
		Policy: "SB", Seed: 1, SSEHeartbeat: 40 * time.Millisecond,
	})
	for _, path := range []string{"/v1/journeys?follow=1", "/v1/trace?follow=1"} {
		t.Run(path, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL+path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			pings := 0
			buf := make([]byte, 256)
			var acc strings.Builder
			for pings < 2 {
				n, err := resp.Body.Read(buf)
				acc.Write(buf[:n])
				pings = strings.Count(acc.String(), ": ping")
				if err != nil {
					t.Fatalf("stream ended after %d pings: %v (%q)", pings, err, acc.String())
				}
			}
		})
	}
}

// TestAccountingWireTypesRoundTrip pins the client wire structs to the
// internal ones the server marshals: a JSON document produced by the
// daemon side must decode losslessly into the client type.
func TestAccountingWireTypesRoundTrip(t *testing.T) {
	// series.Sample → energysched.SeriesSample, every field.
	smp := series.Sample{
		T: 3600, Watts: 1297.5, KWh: 1.25, SLA: 99.5, Utilization: 62.5,
		Queue: 2, Running: 3, On: 4, Working: 3, Off: 6, Migrations: 7, Completed: 8,
		Classes: []series.ClassSample{{Class: "c0", Watts: 500, KWh: 0.5, On: 2, Working: 1, Off: 3}},
	}
	raw, err := json.Marshal(SeriesBody{Metric: "", Count: 41, Samples: []series.Sample{smp}})
	if err != nil {
		t.Fatal(err)
	}
	var snap energysched.SeriesSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count != 41 || len(snap.Samples) != 1 {
		t.Fatalf("series snapshot = %+v", snap)
	}
	got := snap.Samples[0]
	want := energysched.SeriesSample{
		T: 3600, Watts: 1297.5, KWh: 1.25, SLA: 99.5, Utilization: 62.5,
		Queue: 2, Running: 3, On: 4, Working: 3, Off: 6, Migrations: 7, Completed: 8,
		Classes: []energysched.SeriesClassSample{{Class: "c0", Watts: 500, KWh: 0.5, On: 2, Working: 1, Off: 3}},
	}
	if len(got.Classes) != 1 || got.Classes[0] != want.Classes[0] {
		t.Fatalf("class sample = %+v, want %+v", got.Classes, want.Classes)
	}
	got.Classes, want.Classes = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sample = %+v, want %+v", got, want)
	}

	// obs.Journey (with a why-score) → energysched.JobJourney.
	journey := obs.Journey{
		Job: 5, Truncated: true, Outcome: obs.StepCompleted, EnergyKWh: 0.75, Satisfaction: 98,
		Steps: []obs.JourneyStep{
			{T: 0, Kind: obs.StepSubmitted, Node: -1, Dest: -1},
			{T: 30, Kind: obs.StepPlaced, Node: 4, Dest: -1,
				Why: &obs.ActionTrace{Kind: "place", VM: 5, From: -1, To: 4, Gain: -2.5}},
			{T: 600, Kind: obs.StepCompleted, Node: 4, Dest: -1, Satisfaction: 98, EnergyKWh: 0.75},
		},
	}
	raw, err = json.Marshal(journey)
	if err != nil {
		t.Fatal(err)
	}
	var jj energysched.JobJourney
	if err := json.Unmarshal(raw, &jj); err != nil {
		t.Fatal(err)
	}
	if jj.Job != 5 || !jj.Truncated || jj.Outcome != "completed" ||
		jj.EnergyKWh != 0.75 || jj.Satisfaction != 98 || len(jj.Steps) != 3 {
		t.Fatalf("journey = %+v", jj)
	}
	if w := jj.Steps[1].Why; w == nil || w.Kind != "place" || w.VM != 5 || w.To != 4 || w.Gain != -2.5 {
		t.Fatalf("why-score = %+v", jj.Steps[1].Why)
	}
	if jj.Steps[2].Satisfaction != 98 || jj.Steps[2].EnergyKWh != 0.75 {
		t.Fatalf("terminal step = %+v", jj.Steps[2])
	}

	// slo.Alert → energysched.AlertStatus, struct-equal.
	alert := slo.Alert{
		Name: "power-budget", Metric: "watts", State: "firing", Since: 1200,
		Value: 1297, ShortBurn: 3.2, LongBurn: 1.4, Budget: 0.1,
		FiredTotal: 2, ClearedTotal: 1,
	}
	raw, err = json.Marshal(AlertsBody{Firing: 1, Alerts: []FleetAlert{{Fleet: "default", Alert: alert}}})
	if err != nil {
		t.Fatal(err)
	}
	var alerts energysched.AlertsSnapshot
	if err := json.Unmarshal(raw, &alerts); err != nil {
		t.Fatal(err)
	}
	if alerts.Firing != 1 || len(alerts.Alerts) != 1 || alerts.Alerts[0].Fleet != "default" {
		t.Fatalf("alerts snapshot = %+v", alerts)
	}
	wantAlert := energysched.AlertStatus{
		Name: "power-budget", Metric: "watts", State: "firing", Since: 1200,
		Value: 1297, ShortBurn: 3.2, LongBurn: 1.4, Budget: 0.1,
		FiredTotal: 2, ClearedTotal: 1,
	}
	if alerts.Alerts[0].AlertStatus != wantAlert {
		t.Fatalf("alert = %+v, want %+v", alerts.Alerts[0].AlertStatus, wantAlert)
	}

	// Journey firehose wire → energysched.JourneyEvent, via a real
	// store so the flattening is the production one.
	store := obs.NewJourneyStore(4, 8)
	defer store.Close()
	store.Record(9, obs.JourneyStep{T: 42, Kind: obs.StepPlaced, Node: 3, Dest: -1})
	evs := store.Snapshot(0)
	if len(evs) != 1 {
		t.Fatalf("snapshot = %d events", len(evs))
	}
	var ev energysched.JourneyEvent
	if err := json.Unmarshal(evs[0].Data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.Job != 9 || ev.Kind != "placed" || ev.T != 42 || ev.Node != 3 {
		t.Fatalf("firehose event = %+v", ev)
	}
}

// TestFailoverByteIdenticalWithCollectors is the HA half of the
// side-channel proof: a leader/follower pair running every collector
// at max verbosity (score traces, series sampling, journeys, SLOs)
// fails over and drains to a report byte-identical to a bare single
// daemon with all collectors off — and the promoted follower's
// accounting stores are populated exactly once, never doubled by the
// replication replay.
func TestFailoverByteIdenticalWithCollectors(t *testing.T) {
	ctx := context.Background()
	const jobs = 30

	// Reference: no HA, no collectors.
	_, _, rc := newTestServer(t, Config{Policy: "SB", Seed: 1})
	submitN(t, rc, jobs, 0)
	refRep, err := rc.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// HA pair with every collector armed on both sides.
	loud := func(follow string) Config {
		cfg := Config{
			Policy: "SB", Seed: 1,
			WALDir: t.TempDir(), SnapshotDir: t.TempDir(),
			TraceVerbosity: "scores", SLOs: accountingSLOs(),
			ReplPing: 20 * time.Millisecond,
		}
		if follow != "" {
			cfg.Follow = follow
			cfg.FollowPoll = 20 * time.Millisecond
		}
		return cfg
	}
	leader, lhs, lc := newTestServer(t, loud(""))
	_, _, fc := newTestServer(t, loud(lhs.URL))

	submitN(t, lc, jobs, 0)
	waitFor(t, "follower sync", func() bool {
		h, err := fc.Health(ctx)
		st, serr := fc.FleetStatus(ctx, DefaultFleet)
		return err == nil && h.Ready && serr == nil && st.Replication.Offset == jobs
	})

	// The WAL replay that built the follower must not have sampled or
	// journaled anything: those belong to the original timeline.
	fSnap, err := fc.Series(ctx, energysched.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if fSnap.Count != 0 {
		t.Fatalf("follower sampled %d times during replay", fSnap.Count)
	}
	fIdx, err := fc.Journeys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fIdx.Seq != 0 || len(fIdx.Journeys) != 0 {
		t.Fatalf("follower journaled during replay: %+v", fIdx)
	}

	// Fail over and drain on the promoted follower.
	lhs.CloseClientConnections()
	lhs.Close()
	leader.Close()
	if _, err := fc.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	frep, err := fc.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frep, refRep) {
		t.Fatalf("failover report diverged from bare reference:\n got %+v\nwant %+v", frep, refRep)
	}

	// Post-drain the promoted follower's collectors hold exactly one
	// timeline's worth of accounting: every job journaled once with
	// why-scores, the series sampled, the SLO verdicts evaluated.
	fIdx, err = fc.Journeys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fIdx.Journeys) != jobs {
		t.Fatalf("promoted follower has %d journeys, want %d", len(fIdx.Journeys), jobs)
	}
	seen := map[int]bool{}
	for _, js := range fIdx.Journeys {
		if seen[js.Job] {
			t.Fatalf("job %d journaled twice", js.Job)
		}
		seen[js.Job] = true
	}
	j0, err := fc.Journey(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j0.Outcome == "" || j0.EnergyKWh <= 0 {
		t.Fatalf("journey 0 on promoted follower = %+v", j0)
	}
	fSnap, err = fc.Series(ctx, energysched.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if fSnap.Count == 0 {
		t.Fatal("promoted follower recorded no series samples")
	}
	alerts, err := fc.Alerts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts.Alerts) != 2 {
		t.Fatalf("promoted follower alerts = %+v", alerts)
	}
}
