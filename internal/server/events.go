package server

import (
	"encoding/json"
	"sync"

	"energysched/internal/datacenter"
)

// broker fans simulation events out to SSE subscribers. The event
// loop (the only publisher) marshals each event once; subscribers get
// a bounded buffered channel and a ring-buffer backlog for reconnects
// (Last-Event-ID / ?since=seq). A subscriber that falls further behind
// than its buffer is disconnected rather than allowed to stall the
// daemon — the standard slow-consumer contract of event streams.
type broker struct {
	mu      sync.Mutex
	nextSeq uint64
	ring    []streamEvent // circular; oldest entry at head once full
	head    int
	ringCap int
	subs    map[*subscriber]struct{}
}

// streamEvent is one published event: its sequence number and the
// pre-marshaled JSON payload.
type streamEvent struct {
	seq  uint64
	kind datacenter.EventKind
	data []byte
}

type subscriber struct {
	ch chan streamEvent
}

// subBuffer is each subscriber's channel depth: how far it may lag the
// publisher before being disconnected.
const subBuffer = 256

func newBroker(ringCap int) *broker {
	if ringCap <= 0 {
		ringCap = 4096
	}
	return &broker{ringCap: ringCap, subs: make(map[*subscriber]struct{})}
}

// publish assigns the next sequence number, stores the event in the
// replay ring and forwards it to every live subscriber.
func (b *broker) publish(e datacenter.Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return // Event is a plain struct; cannot happen
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSeq++
	ev := streamEvent{seq: b.nextSeq, kind: e.Kind, data: data}
	if len(b.ring) < b.ringCap {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[b.head] = ev
		b.head = (b.head + 1) % b.ringCap
	}
	for sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			// Slow consumer: cut it loose so the stream never
			// backpressures the event loop.
			delete(b.subs, sub)
			close(sub.ch)
		}
	}
}

// subscribe registers a new subscriber and returns it along with the
// backlog of ring events with sequence number > since, oldest first.
func (b *broker) subscribe(since uint64) (*subscriber, []streamEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var backlog []streamEvent
	for i := 0; i < len(b.ring); i++ {
		ev := b.ring[(b.head+i)%len(b.ring)] // oldest first
		if ev.seq > since {
			backlog = append(backlog, ev)
		}
	}
	sub := &subscriber{ch: make(chan streamEvent, subBuffer)}
	b.subs[sub] = struct{}{}
	return sub, backlog
}

// unsubscribe removes the subscriber; safe to call after a
// slow-consumer disconnect.
func (b *broker) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub]; ok {
		delete(b.subs, sub)
		close(sub.ch)
	}
}

// seq returns the sequence number of the most recently published
// event.
func (b *broker) seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextSeq
}

// reset clears the replay ring while keeping the sequence counter
// monotonic. Called on restore: the pre-restore timeline no longer
// describes the daemon's state, so reconnecting clients must not be
// served a splice of old and new history.
func (b *broker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring = b.ring[:0]
	b.head = 0
}
