// Package server hosts the datacenter engine as a long-running
// service: the energyschedd daemon. It wraps datacenter.Simulation in
// a single-threaded event loop (the engine is deterministic and
// single-threaded by design; concurrency stops at the loop's command
// channel, the actor pattern of consul-style agents) and exposes an
// HTTP/JSON API for online job admission, fleet observation, event
// streaming, paper-metric reports, Prometheus metrics, and
// snapshot/restore.
//
// Two pacing modes drive virtual time:
//
//   - max (Config.Pace <= 0): virtual time is gated by the admission
//     watermark — the largest submit time admitted so far. The engine
//     only fires events strictly before the watermark, which makes
//     online admission byte-identical to an offline energysched.Run
//     over the same jobs (see docs/ARCHITECTURE.md, "Service mode").
//   - real time (Config.Pace > 0): virtual time tracks wall time at
//     the given acceleration; jobs submitted without an explicit
//     submit time arrive "now".
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"energysched"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/workload"
)

// Config parameterizes the daemon.
type Config struct {
	// Policy selects the scheduler (same names as energysched.Run;
	// default "SB").
	Policy string
	// Seed drives all stochastic components (default 1).
	Seed int64
	// LambdaMin, LambdaMax are the power-manager thresholds in percent
	// (defaults 30, 90).
	LambdaMin, LambdaMax float64
	// Score overrides the consolidation costs (nil = paper values).
	Score *energysched.ScoreParams
	// Failures enables reliability-driven node crashes.
	Failures bool
	// CheckpointSeconds > 0 checkpoints running VMs periodically.
	CheckpointSeconds float64
	// AdaptiveTarget > 0 enables dynamic λmin adjustment.
	AdaptiveTarget float64
	// Classes overrides the fleet (nil = the paper's 100 nodes).
	Classes []energysched.NodeClass
	// Pace is the virtual-seconds-per-wall-second acceleration; <= 0
	// selects max pacing (watermark-gated, fully deterministic).
	Pace float64
	// SnapshotDir receives unnamed snapshots (default ".").
	SnapshotDir string
	// EventRing is the replay-ring depth for /v1/events reconnects
	// (default 4096).
	EventRing int
	// Logf, when non-nil, receives daemon log lines.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "SB"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LambdaMin == 0 && c.LambdaMax == 0 {
		c.LambdaMin, c.LambdaMax = 30, 90
	}
	if c.SnapshotDir == "" {
		c.SnapshotDir = "."
	}
	return c
}

// Server is one running daemon instance.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	broker *broker

	cmds     chan func()
	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// --- event-loop state: touch only from inside do()/loop() ---
	sim       *datacenter.Simulation
	jobs      []workload.Job // admission log, in VM-ID order
	watermark float64        // largest admitted submit time (max pacing)
	final     *energysched.ServiceReport
	replaying bool
	wallStart time.Time
	virtStart float64
}

var errClosed = errors.New("server: daemon is shut down")

// New builds a daemon, starts its event loop, and returns it. Callers
// mount Handler on an http.Server and Close the daemon on shutdown.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:    cfg.withDefaults(),
		mux:    http.NewServeMux(),
		cmds:   make(chan func()),
		stopc:  make(chan struct{}),
		broker: newBroker(cfg.EventRing),
	}
	if err := s.rebuild(nil, 0, false); err != nil {
		return nil, err
	}
	s.routes()
	s.wallStart = time.Now()
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the event loop. In-flight requests receive errClosed.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

// RestoreFile loads a snapshot at startup (the -restore flag).
func (s *Server) RestoreFile(path string) (energysched.SnapshotInfo, error) {
	var info energysched.SnapshotInfo
	var rerr error
	err := s.do(func() { info, rerr = s.restore(path) })
	if err != nil {
		return info, err
	}
	return info, rerr
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// --- event loop ---

// do runs fn on the event loop and waits for it; every access to the
// simulation goes through here, which is what makes the HTTP surface
// safe under -race with concurrent submitters.
func (s *Server) do(fn func()) error {
	done := make(chan struct{})
	select {
	case s.cmds <- func() { defer close(done); fn() }:
	case <-s.stopc:
		return errClosed
	}
	select {
	case <-done:
		return nil
	case <-s.stopc:
		return errClosed
	}
}

// paceTick is the wall-clock granularity of real-time pacing.
const paceTick = 100 * time.Millisecond

func (s *Server) loop() {
	defer s.wg.Done()
	var ticker *time.Ticker
	var tick <-chan time.Time
	if s.cfg.Pace > 0 {
		ticker = time.NewTicker(paceTick)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case fn := <-s.cmds:
			fn()
		case <-tick:
			s.advanceRealtime()
		case <-s.stopc:
			return
		}
	}
}

// advanceRealtime moves virtual time to the wall-derived target.
func (s *Server) advanceRealtime() {
	if s.sim.Done() {
		return
	}
	target := s.virtStart + time.Since(s.wallStart).Seconds()*s.cfg.Pace
	if target > s.watermark {
		s.watermark = target
	}
	s.sim.StepBefore(s.watermark)
}

// rebuild replaces the simulation with a fresh one replaying the
// given admission log up to virtual time now. With sealed, the replay
// is drained to completion. On error the previous state is kept.
func (s *Server) rebuild(jobs []workload.Job, now float64, sealed bool) error {
	opts := energysched.Options{
		Policy:            s.cfg.Policy,
		LambdaMin:         s.cfg.LambdaMin,
		LambdaMax:         s.cfg.LambdaMax,
		Seed:              s.cfg.Seed,
		Score:             s.cfg.Score,
		Failures:          s.cfg.Failures,
		CheckpointSeconds: s.cfg.CheckpointSeconds,
		AdaptiveTarget:    s.cfg.AdaptiveTarget,
		Classes:           s.cfg.Classes,
		EventLog: func(e energysched.Event) {
			if !s.replaying {
				s.broker.publish(e)
			}
		},
	}
	sim, err := energysched.NewSimulation(opts)
	if err != nil {
		return err
	}
	s.replaying = true
	defer func() { s.replaying = false }()
	sim.Start()
	for _, j := range jobs {
		if _, err := sim.Inject(j); err != nil {
			return fmt.Errorf("server: replaying job %d: %w", j.ID, err)
		}
	}
	sim.StepBefore(now)
	s.sim = sim
	s.jobs = append([]workload.Job(nil), jobs...)
	s.watermark = now
	s.final = nil
	s.wallStart = time.Now()
	s.virtStart = now
	if sealed {
		rep := serviceReport(sim.Drain(), true)
		s.final = &rep
	}
	return nil
}

// --- actor-side operations ---

func (s *Server) submit(spec energysched.JobSpec) (energysched.JobStatus, error) {
	if s.sim.Sealed() {
		return energysched.JobStatus{}, &httpError{http.StatusConflict, "workload is sealed (drained); submit rejected"}
	}
	j := workload.Job{
		ID:             len(s.jobs),
		Name:           spec.Name,
		Duration:       spec.Duration,
		CPU:            spec.CPU,
		Mem:            spec.Mem,
		DeadlineFactor: spec.DeadlineFactor,
		FaultTolerance: spec.FaultTolerance,
		Arch:           spec.Arch,
		Hypervisor:     spec.Hypervisor,
	}
	if j.DeadlineFactor == 0 {
		j.DeadlineFactor = 1.5
	}
	if spec.Submit != nil {
		j.Submit = *spec.Submit
	} else {
		j.Submit = s.sim.Now()
	}
	if j.Submit < s.sim.Now() {
		return energysched.JobStatus{}, &httpError{http.StatusConflict,
			fmt.Sprintf("submit_s %.3f is in the virtual past (now %.3f)", j.Submit, s.sim.Now())}
	}
	if err := j.Validate(); err != nil {
		return energysched.JobStatus{}, &httpError{http.StatusBadRequest, err.Error()}
	}
	v, err := s.sim.Inject(j)
	if err != nil {
		return energysched.JobStatus{}, &httpError{http.StatusBadRequest, err.Error()}
	}
	s.jobs = append(s.jobs, j)
	if s.cfg.Pace <= 0 {
		// Max pacing: virtual time chases the admission watermark.
		if j.Submit > s.watermark {
			s.watermark = j.Submit
		}
		s.sim.StepBefore(s.watermark)
	}
	return jobStatus(v), nil
}

func (s *Server) clusterStatus() energysched.ClusterStatus {
	cl := s.sim.Cluster()
	working, online := cl.Counts()
	st := energysched.ClusterStatus{
		Now:          s.sim.Now(),
		Sealed:       s.sim.Sealed(),
		Done:         s.sim.Done(),
		NodesOn:      online,
		NodesWorking: working,
		TotalWatts:   s.sim.WattsNow(),
		Nodes:        make([]energysched.NodeStatus, 0, len(cl.Nodes)),
	}
	for _, v := range s.sim.AppendQueue(nil) {
		st.Queue = append(st.Queue, v.ID)
	}
	for _, n := range cl.Nodes {
		st.Nodes = append(st.Nodes, nodeStatus(n, s.sim.NodeWatts(n.ID)))
	}
	return st
}

func (s *Server) report() energysched.ServiceReport {
	if s.final != nil {
		return *s.final
	}
	return serviceReport(s.sim.ReportAt(s.sim.Now()), false)
}

func (s *Server) drain() energysched.ServiceReport {
	if s.final == nil {
		rep := serviceReport(s.sim.Drain(), true)
		s.final = &rep
		s.watermark = s.sim.Now()
		s.logf("drained: %s", rep.Table)
	}
	return *s.final
}

// resolveSnapshotPath confines API-supplied snapshot paths to the
// configured snapshot directory: the request names a file, never a
// location. The HTTP surface is unauthenticated, so honoring client
// paths verbatim would let any network peer overwrite or probe
// arbitrary files as the daemon user. (The operator's -restore flag
// goes through RestoreFile and is not confined.)
func (s *Server) resolveSnapshotPath(path string) (string, error) {
	if path == "" {
		return filepath.Join(s.cfg.SnapshotDir, fmt.Sprintf("energyschedd-%d.snapshot.json", len(s.jobs))), nil
	}
	name := filepath.Base(filepath.Clean(path))
	if name == "." || name == ".." || name == string(filepath.Separator) {
		return "", &httpError{http.StatusBadRequest, fmt.Sprintf("bad snapshot name %q", path)}
	}
	return filepath.Join(s.cfg.SnapshotDir, name), nil
}

func (s *Server) snapshot(path string) (energysched.SnapshotInfo, error) {
	path, err := s.resolveSnapshotPath(path)
	if err != nil {
		return energysched.SnapshotInfo{}, err
	}
	snap := s.snapshotState()
	if err := writeSnapshot(path, snap); err != nil {
		return energysched.SnapshotInfo{}, &httpError{http.StatusInternalServerError, err.Error()}
	}
	s.logf("snapshot: %d jobs at t=%.1fs -> %s", len(snap.Jobs), snap.SavedVirtual, path)
	return energysched.SnapshotInfo{
		Path: path, Jobs: len(snap.Jobs), Now: snap.SavedVirtual, Sealed: snap.Sealed,
	}, nil
}

func (s *Server) restore(path string) (energysched.SnapshotInfo, error) {
	snap, err := readSnapshot(path)
	if err != nil {
		return energysched.SnapshotInfo{}, &httpError{http.StatusUnprocessableEntity, err.Error()}
	}
	// The snapshot's scheduling configuration wins: determinism of the
	// replay depends on it. Keep the old config at hand so a failed
	// replay leaves config and simulation consistent.
	oldCfg := s.cfg
	s.cfg.Policy = snap.Config.Policy
	s.cfg.Seed = snap.Config.Seed
	s.cfg.LambdaMin = snap.Config.LambdaMin
	s.cfg.LambdaMax = snap.Config.LambdaMax
	s.cfg.Failures = snap.Config.Failures
	s.cfg.CheckpointSeconds = snap.Config.CheckpointSeconds
	s.cfg.AdaptiveTarget = snap.Config.AdaptiveTarget
	s.cfg.Classes = snap.Config.Classes
	s.cfg.Score = nil
	if snap.Config.HasScore {
		s.cfg.Score = &energysched.ScoreParams{
			Cempty: snap.Config.Cempty, Cfill: snap.Config.Cfill, THempty: snap.Config.THempty,
		}
	}
	jobs := make([]workload.Job, 0, len(snap.Jobs))
	for _, sj := range snap.Jobs {
		jobs = append(jobs, sj.job())
	}
	if err := s.rebuild(jobs, snap.SavedVirtual, snap.Sealed); err != nil {
		s.cfg = oldCfg
		return energysched.SnapshotInfo{}, &httpError{http.StatusUnprocessableEntity, err.Error()}
	}
	// The pre-restore timeline no longer describes this daemon: clear
	// the replay ring (sequence numbers stay monotonic) and mark the
	// discontinuity for connected stream consumers.
	s.broker.reset()
	s.broker.publish(energysched.Event{
		Time: snap.SavedVirtual, Kind: "restore", VM: -1, Node: -1, Aux: -1,
	})
	s.logf("restored %d jobs at t=%.1fs from %s", len(jobs), snap.SavedVirtual, path)
	return energysched.SnapshotInfo{
		Path: path, Jobs: len(jobs), Now: snap.SavedVirtual, Sealed: snap.Sealed,
	}, nil
}

func (s *Server) gatherMetrics() []metrics.PromSample {
	rep := s.sim.ReportAt(s.sim.Now())
	cl := s.sim.Cluster()
	working, online := cl.Counts()
	stateCount := map[string]int{"off": 0, "booting": 0, "on": 0, "down": 0}
	for _, n := range cl.Nodes {
		stateCount[n.State.String()]++
	}
	jobCount := map[string]int{}
	for _, v := range s.sim.VMs() {
		jobCount[v.State.String()]++
	}
	samples := []metrics.PromSample{
		{Name: "energysched_virtual_time_seconds", Help: "Current virtual time of the simulation.", Kind: metrics.PromGauge, Value: s.sim.Now()},
		{Name: "energysched_queue_length", Help: "VMs waiting in the scheduler's virtual host.", Kind: metrics.PromGauge, Value: float64(s.sim.QueueLen())},
		{Name: "energysched_power_watts", Help: "Instantaneous datacenter power draw.", Kind: metrics.PromGauge, Value: s.sim.WattsNow()},
		{Name: "energysched_energy_kwh_total", Help: "Energy consumed since start of the run.", Kind: metrics.PromCounter, Value: rep.EnergyKWh},
		{Name: "energysched_cpu_hours_total", Help: "CPU work executed.", Kind: metrics.PromCounter, Value: rep.CPUHours},
		{Name: "energysched_nodes_working", Help: "Nodes that are on and hosting work.", Kind: metrics.PromGauge, Value: float64(working)},
		{Name: "energysched_nodes_online", Help: "Nodes powered on.", Kind: metrics.PromGauge, Value: float64(online)},
	}
	for _, state := range []string{"off", "booting", "on", "down"} {
		samples = append(samples, metrics.PromSample{
			Name: "energysched_nodes", Help: "Nodes by power state.", Kind: metrics.PromGauge,
			Labels: map[string]string{"state": state}, Value: float64(stateCount[state]),
		})
	}
	for _, state := range []string{"queued", "creating", "running", "migrating", "completed", "failed"} {
		samples = append(samples, metrics.PromSample{
			Name: "energysched_jobs", Help: "Admitted jobs by lifecycle state.", Kind: metrics.PromGauge,
			Labels: map[string]string{"state": state}, Value: float64(jobCount[state]),
		})
	}
	samples = append(samples,
		metrics.PromSample{Name: "energysched_jobs_admitted_total", Help: "Jobs admitted since start.", Kind: metrics.PromCounter, Value: float64(len(s.jobs))},
		metrics.PromSample{Name: "energysched_migrations_total", Help: "Completed live migrations.", Kind: metrics.PromCounter, Value: float64(rep.Migrations)},
		metrics.PromSample{Name: "energysched_failures_total", Help: "Node failures injected.", Kind: metrics.PromCounter, Value: float64(rep.Failures)},
		metrics.PromSample{Name: "energysched_satisfaction_pct", Help: "Mean client satisfaction of completed jobs.", Kind: metrics.PromGauge, Value: rep.Satisfaction},
		metrics.PromSample{Name: "energysched_delay_pct", Help: "Mean execution delay of completed jobs.", Kind: metrics.PromGauge, Value: rep.Delay},
		metrics.PromSample{Name: "energysched_events_published_total", Help: "Simulation events published to the stream.", Kind: metrics.PromCounter, Value: float64(s.broker.seq())},
	)
	if sch, ok := s.sim.Policy().(*core.Scheduler); ok {
		st := sch.Stats
		solver := []struct {
			name, help string
			v          int
		}{
			{"energysched_solver_rounds_total", "Scheduling rounds executed.", st.Rounds},
			{"energysched_solver_moves_total", "Improving moves applied.", st.Moves},
			{"energysched_solver_score_evals_total", "Score(h,vm) evaluations.", st.ScoreEvals},
			{"energysched_solver_limit_hits_total", "Rounds stopped by the iteration limit.", st.LimitHits},
			{"energysched_solver_col_refreshes_total", "Dirty-column recomputations.", st.ColRefreshes},
			{"energysched_solver_row_rescans_total", "Per-VM best-move rescans.", st.RowRescans},
			{"energysched_solver_carry_rounds_total", "Rounds starting from a carried matrix.", st.CarryRounds},
			{"energysched_solver_stale_rows_total", "Candidate rows re-scored on carry.", st.StaleRows},
			{"energysched_solver_stale_cols_total", "Host columns re-scored on carry.", st.StaleCols},
			{"energysched_solver_reused_cells_total", "Base-matrix cells carried across rounds.", st.ReusedCells},
		}
		for _, m := range solver {
			samples = append(samples, metrics.PromSample{Name: m.name, Help: m.help, Kind: metrics.PromCounter, Value: float64(m.v)})
		}
	}
	return samples
}

// --- HTTP surface ---

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	} else if errors.Is(err, errClosed) {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, energysched.APIError{Status: status, Message: err.Error()})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("POST /v1/drain", s.handleDrain)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/restore", s.handleRestore)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec energysched.JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, "decoding job spec: " + err.Error()})
		return
	}
	var st energysched.JobStatus
	var serr error
	if err := s.do(func() { st, serr = s.submit(spec) }); err != nil {
		writeErr(w, err)
		return
	}
	if serr != nil {
		writeErr(w, serr)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var out []energysched.JobStatus
	if err := s.do(func() {
		vms := s.sim.VMs()
		out = make([]energysched.JobStatus, 0, len(vms))
		for _, v := range vms {
			out = append(out, jobStatus(v))
		}
	}); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, "bad job id"})
		return
	}
	var st energysched.JobStatus
	found := false
	if err := s.do(func() {
		vms := s.sim.VMs()
		if id >= 0 && id < len(vms) {
			st = jobStatus(vms[id])
			found = true
		}
	}); err != nil {
		writeErr(w, err)
		return
	}
	if !found {
		writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("job %d not found", id)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var st energysched.ClusterStatus
	if err := s.do(func() { st = s.clusterStatus() }); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep energysched.ServiceReport
	if err := s.do(func() { rep = s.report() }); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	var rep energysched.ServiceReport
	if err := s.do(func() { rep = s.drain() }); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	path, err := decodePath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var info energysched.SnapshotInfo
	var serr error
	if err := s.do(func() { info, serr = s.snapshot(path) }); err != nil {
		writeErr(w, err)
		return
	}
	if serr != nil {
		writeErr(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	path, err := decodePath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if path == "" {
		writeErr(w, &httpError{http.StatusBadRequest, "restore needs a snapshot path"})
		return
	}
	var info energysched.SnapshotInfo
	var serr error
	if err := s.do(func() {
		var p string
		if p, serr = s.resolveSnapshotPath(path); serr == nil {
			info, serr = s.restore(p)
		}
	}); err != nil {
		writeErr(w, err)
		return
	}
	if serr != nil {
		writeErr(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func decodePath(r *http.Request) (string, error) {
	if r.ContentLength == 0 {
		return "", nil
	}
	var body struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16)).Decode(&body); err != nil {
		return "", &httpError{http.StatusBadRequest, "decoding body: " + err.Error()}
	}
	return body.Path, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var samples []metrics.PromSample
	if err := s.do(func() { samples = s.gatherMetrics() }); err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, samples)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var now float64
	var done bool
	if err := s.do(func() { now, done = s.sim.Now(), s.sim.Done() }); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "now_s": now, "done": done})
}

// heartbeatInterval keeps idle SSE connections alive through proxies.
const heartbeatInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &httpError{http.StatusInternalServerError, "streaming unsupported"})
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	}
	sub, backlog := s.broker.subscribe(since)
	defer s.broker.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	fl.Flush()

	heartbeat := time.NewTicker(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return // disconnected as a slow consumer
			}
			writeSSE(w, ev)
			// Drain whatever is already buffered before flushing.
			for len(sub.ch) > 0 {
				if ev, ok = <-sub.ch; !ok {
					return
				}
				writeSSE(w, ev)
			}
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.stopc:
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev streamEvent) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.seq, ev.kind, ev.data)
}
