// Package server is the HTTP layer of the energyschedd daemon. Since
// PR 4 it hosts N independent fleets — isolated datacenter.Simulation
// instances, each with its own actor event loop, clock pace, event
// ring and WAL-backed durability (internal/fleet) — behind a shared
// registry and a versioned multi-fleet API:
//
//	POST   /v1/fleets             create a fleet from a named config
//	GET    /v1/fleets             list fleets
//	GET    /v1/fleets/{id}        one fleet's summary (incl. WAL stats)
//	DELETE /v1/fleets/{id}        stop and remove a fleet
//	...    /v1/fleets/{id}/jobs   all PR 3 routes, remounted per fleet
//
// The PR 3 single-fleet routes (/v1/jobs, /v1/report, ...) keep
// working as aliases for the "default" fleet. GET /metrics aggregates
// every fleet's samples under a fleet label.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"energysched"
	"energysched/internal/fleet"
	"energysched/internal/metrics"
	"energysched/internal/obs"
	"energysched/internal/obs/slo"
	"energysched/internal/replication"
)

// DefaultFleet is the fleet the PR 3 alias routes address.
const DefaultFleet = "default"

// FleetSeed names a fleet to create at startup (the -fleets flag).
type FleetSeed struct {
	ID     string
	Policy string // "" = the daemon's default policy
}

// Config parameterizes the daemon. The scheduling fields double as
// the base configuration every fleet inherits unless its FleetSpec
// overrides them.
type Config struct {
	// Policy selects the scheduler (same names as energysched.Run;
	// default "SB").
	Policy string
	// Seed drives all stochastic components (default 1).
	Seed int64
	// LambdaMin, LambdaMax are the power-manager thresholds in percent
	// (defaults 30, 90).
	LambdaMin, LambdaMax float64
	// Score overrides the consolidation costs (nil = paper values).
	Score *energysched.ScoreParams
	// Failures enables reliability-driven node crashes.
	Failures bool
	// CheckpointSeconds > 0 checkpoints running VMs periodically.
	CheckpointSeconds float64
	// AdaptiveTarget > 0 enables dynamic λmin adjustment.
	AdaptiveTarget float64
	// Shards selects the solver's sharded parallel round engine
	// (0 = serial, -1 = GOMAXPROCS, K >= 1 = K shards); fleets inherit
	// it unless their FleetSpec overrides.
	Shards int
	// Classes overrides the fleet hardware (nil = the paper's 100
	// nodes).
	Classes []energysched.NodeClass
	// Pace is the virtual-seconds-per-wall-second acceleration; <= 0
	// selects max pacing (watermark-gated, fully deterministic).
	Pace float64
	// SnapshotDir receives API-named snapshots; non-default fleets use
	// a per-fleet subdirectory (default ".").
	SnapshotDir string
	// EventRing is the replay-ring depth for /v1/events reconnects
	// (default 4096).
	EventRing int
	// WALDir is the durable root: per-fleet admission WALs, compaction
	// snapshots and the fleet manifest live under it. Empty disables
	// durability.
	WALDir string
	// SnapshotInterval compacts each fleet's WAL into a fresh snapshot
	// every this many records (0 = never compact automatically).
	SnapshotInterval int
	// WALSync is the WAL append sync policy: fleet.SyncAlways
	// (default) or fleet.SyncOS.
	WALSync string
	// MaxFleets caps the fleet registry (0 = unlimited): POST
	// /v1/fleets returns 429 once the daemon hosts this many fleets.
	// Startup seeds and manifest-recovered fleets are exempt.
	MaxFleets int
	// Fleets are additional fleets to ensure at startup, next to
	// DefaultFleet (fleets recovered from the WAL manifest win).
	Fleets []FleetSeed
	// Follow, when set, starts the daemon as a warm-standby follower
	// of the leader at this base URL: it mirrors every leader fleet by
	// streaming the admission log, rejects writes with 503, and flips
	// to serving on POST /v1/promote (or leader-loss detection). No
	// fleets are seeded in follower mode — they come from the leader.
	Follow string
	// PromoteGrace, when > 0 in follower mode, arms leader-loss
	// detection: the follower promotes itself once no exchange with
	// the leader has succeeded for this long. 0 = manual promote only.
	PromoteGrace time.Duration
	// FollowPoll overrides the follower's fleet-discovery period
	// (default 1s).
	FollowPoll time.Duration
	// ReplPing overrides the leader's replication keepalive period
	// (default 500ms): pings carry the leader's clock and log head so
	// idle followers still track lag and virtual time.
	ReplPing time.Duration
	// TraceVerbosity is each fleet's decision-trace recording level:
	// "off" (default), "rounds", "actions" or "scores". Pure
	// observability — any level leaves scheduling byte-identical.
	// Fleets inherit it unless their FleetSpec overrides.
	TraceVerbosity string
	// TraceDepth is how many round traces each fleet retains for
	// GET /trace (0 = default 256).
	TraceDepth int
	// SeriesDepth is how many accounting samples each fleet retains
	// for GET /series (0 = default 4096). Pure observability — any
	// depth leaves scheduling byte-identical.
	SeriesDepth int
	// JourneyDepth is how many job lifecycle journeys each fleet
	// retains for GET /jobs/{id}/journey (0 = default 2048).
	JourneyDepth int
	// SLOs are the declarative service-level objectives every fleet
	// evaluates (the -slo-file flag); nil disables SLO alerting.
	SLOs []slo.Objective
	// SSEHeartbeat overrides the keepalive ping period of idle SSE
	// streams (events, trace, journey firehose); 0 = default 15s.
	SSEHeartbeat time.Duration
	// AdmitShards is each fleet's admission intake shard count
	// (0 = default 1). Byte-identical at any K; a pure ingest-throughput
	// knob. Fleets inherit it unless their FleetSpec overrides.
	AdmitShards int
	// AdmitQueue bounds each admission shard's queue (0 = default 256);
	// a full queue sheds with 429 + Retry-After.
	AdmitQueue int
	// RateLimit throttles each fleet's admissions to this many jobs per
	// second (0 = unlimited); over-limit submits get 429 + Retry-After.
	RateLimit float64
	// RateBurst is the admission token bucket's capacity in jobs
	// (0 = one second's worth of RateLimit).
	RateBurst int
	// Logf, when non-nil, receives daemon log lines.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "SB"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LambdaMin == 0 && c.LambdaMax == 0 {
		c.LambdaMin, c.LambdaMax = 30, 90
	}
	if c.SnapshotDir == "" {
		c.SnapshotDir = "."
	}
	return c
}

// Server is one running daemon instance: the fleet registry plus the
// HTTP surface.
type Server struct {
	cfg Config
	mux *http.ServeMux
	mgr *fleet.Manager

	// roleMu guards the role state. A daemon starts as a leader, or —
	// with Config.Follow — as a follower that may later be promoted;
	// it never demotes.
	roleMu    sync.Mutex
	follower  *replication.Follower // nil once (or when) leading
	promoting bool

	// httpHists is the per-route request latency aggregation behind
	// energysched_http_request_seconds.
	httpHists routeHists

	// reads coalesces concurrent identical GETs on the hot read
	// endpoints (/report, /cluster, /series) into one fleet turn.
	reads readGroup
}

// New builds a daemon: it opens the fleet registry (recovering every
// fleet recorded under WALDir), ensures the default and seeded fleets
// exist, and mounts the HTTP routes. Callers mount Handler on an
// http.Server and Close the daemon on shutdown.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	// The cap is installed after the startup seeds: operator-named
	// fleets (and manifest-recovered ones) must come up even when they
	// meet or exceed -max-fleets; the cap gates API-driven creation.
	mgr, err := fleet.NewManager(fleet.Options{Dir: cfg.WALDir, Logf: cfg.Logf})
	if err != nil {
		return nil, err
	}
	s.mgr = mgr
	if s.cfg.Follow != "" {
		// Follower: no seeds and no registry cap — every fleet is a
		// mirror of the leader's and must always come up.
		s.follower = replication.NewFollower(replication.Config{
			Leader:  s.cfg.Follow,
			Manager: mgr,
			MirrorConfig: func(id string) fleet.Config {
				fc := s.fleetConfig(id, energysched.FleetSpec{ID: id})
				// Max pacing: the mirror's clock advances only through
				// replicated records and pings, never on its own.
				fc.Pace = 0
				return fc
			},
			PollInterval: s.cfg.FollowPoll,
			Grace:        s.cfg.PromoteGrace,
			OnLeaderLoss: func() {
				if _, err := s.promote(); err != nil {
					s.logf("server: auto-promote failed: %v", err)
				} else {
					s.logf("server: leader lost; promoted to leader")
				}
			},
			Logf: s.cfg.Logf,
		})
		s.routes()
		s.follower.Run()
		return s, nil
	}
	seeds := append([]FleetSeed{{ID: DefaultFleet}}, s.cfg.Fleets...)
	for _, seed := range seeds {
		if seed.ID == "" || mgr.Has(seed.ID) {
			continue // recovered from the manifest: its config wins
		}
		spec := energysched.FleetSpec{ID: seed.ID, Policy: seed.Policy}
		if _, err := mgr.Create(seed.ID, s.fleetConfig(seed.ID, spec)); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("server: creating fleet %s: %w", seed.ID, err)
		}
	}
	mgr.SetMaxFleets(s.cfg.MaxFleets)
	s.routes()
	return s, nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Role returns "leader" or "follower".
func (s *Server) Role() string {
	if s.isFollower() {
		return "follower"
	}
	return "leader"
}

func (s *Server) isFollower() bool {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	return s.follower != nil
}

// promote flips a follower to serving leader: replication stops, every
// mirrored fleet seals catch-up, and writes are accepted from then on.
func (s *Server) promote() (map[string]int64, error) {
	s.roleMu.Lock()
	fw := s.follower
	if fw == nil {
		s.roleMu.Unlock()
		return nil, &fleet.Error{Status: http.StatusConflict, Msg: "already the leader"}
	}
	if s.promoting {
		s.roleMu.Unlock()
		return nil, &fleet.Error{Status: http.StatusConflict, Msg: "promotion already in progress"}
	}
	s.promoting = true
	s.roleMu.Unlock()

	offs, err := fw.Promote()
	s.roleMu.Lock()
	if err == nil {
		s.follower = nil
		// The ex-follower now gates API fleet creation like any leader.
		s.mgr.SetMaxFleets(s.cfg.MaxFleets)
	}
	s.promoting = false
	s.roleMu.Unlock()
	return offs, err
}

// fleetConfig derives one fleet's configuration: the daemon's base
// config with the spec's overrides applied.
func (s *Server) fleetConfig(id string, spec energysched.FleetSpec) fleet.Config {
	fc := fleet.Config{
		Policy:            s.cfg.Policy,
		Seed:              s.cfg.Seed,
		LambdaMin:         s.cfg.LambdaMin,
		LambdaMax:         s.cfg.LambdaMax,
		Score:             s.cfg.Score,
		Failures:          s.cfg.Failures,
		CheckpointSeconds: s.cfg.CheckpointSeconds,
		AdaptiveTarget:    s.cfg.AdaptiveTarget,
		Shards:            s.cfg.Shards,
		Classes:           s.cfg.Classes,
		Pace:              s.cfg.Pace,
		SnapshotDir:       s.cfg.SnapshotDir,
		EventRing:         s.cfg.EventRing,
		SnapshotInterval:  s.cfg.SnapshotInterval,
		WALSync:           s.cfg.WALSync,
		TraceVerbosity:    s.cfg.TraceVerbosity,
		TraceDepth:        s.cfg.TraceDepth,
		SeriesDepth:       s.cfg.SeriesDepth,
		JourneyDepth:      s.cfg.JourneyDepth,
		SLOs:              s.cfg.SLOs,
		AdmitShards:       s.cfg.AdmitShards,
		AdmitQueue:        s.cfg.AdmitQueue,
		RateLimit:         s.cfg.RateLimit,
		RateBurst:         s.cfg.RateBurst,
		Logf:              s.cfg.Logf,
	}
	if id != DefaultFleet {
		// Per-fleet snapshot namespaces: API-named snapshots of
		// different fleets must not overwrite each other.
		fc.SnapshotDir = filepath.Join(s.cfg.SnapshotDir, id)
	}
	if spec.Policy != "" {
		fc.Policy = spec.Policy
	}
	if spec.Seed != 0 {
		fc.Seed = spec.Seed
	}
	if spec.LambdaMin != 0 {
		fc.LambdaMin = spec.LambdaMin
	}
	if spec.LambdaMax != 0 {
		fc.LambdaMax = spec.LambdaMax
	}
	if spec.Pace != nil {
		fc.Pace = *spec.Pace
	}
	if spec.Failures {
		fc.Failures = true
	}
	if spec.CheckpointSeconds > 0 {
		fc.CheckpointSeconds = spec.CheckpointSeconds
	}
	if spec.AdaptiveTarget > 0 {
		fc.AdaptiveTarget = spec.AdaptiveTarget
	}
	if spec.Shards != 0 {
		fc.Shards = spec.Shards
	}
	if spec.SnapshotInterval > 0 {
		fc.SnapshotInterval = spec.SnapshotInterval
	}
	if spec.TraceVerbosity != "" {
		fc.TraceVerbosity = spec.TraceVerbosity
	}
	if spec.TraceDepth > 0 {
		fc.TraceDepth = spec.TraceDepth
	}
	if spec.SeriesDepth > 0 {
		fc.SeriesDepth = spec.SeriesDepth
	}
	if spec.JourneyDepth > 0 {
		fc.JourneyDepth = spec.JourneyDepth
	}
	if spec.AdmitShards > 0 {
		fc.AdmitShards = spec.AdmitShards
	}
	if spec.AdmitQueue > 0 {
		fc.AdmitQueue = spec.AdmitQueue
	}
	if spec.RateLimit > 0 {
		fc.RateLimit = spec.RateLimit
	}
	if spec.RateBurst > 0 {
		fc.RateBurst = spec.RateBurst
	}
	return fc
}

// Handler returns the daemon's HTTP handler: the route table wrapped
// in the per-route latency middleware feeding /metrics.
func (s *Server) Handler() http.Handler { return s.withRouteMetrics(s.mux) }

// Close stops replication (if following) and every fleet. In-flight
// requests receive 503.
func (s *Server) Close() {
	s.roleMu.Lock()
	fw := s.follower
	s.roleMu.Unlock()
	if fw != nil {
		fw.Close()
	}
	s.mgr.Close()
}

// Manager exposes the fleet registry (tests and embedders).
func (s *Server) Manager() *fleet.Manager { return s.mgr }

// RestoreFile loads a snapshot into the default fleet at startup (the
// -restore flag).
func (s *Server) RestoreFile(path string) (energysched.SnapshotInfo, error) {
	f, err := s.mgr.Get(DefaultFleet)
	if err != nil {
		return energysched.SnapshotInfo{}, err
	}
	return f.RestoreFile(path)
}

// --- HTTP surface ---

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	retryAfter := 0
	var fe *fleet.Error
	if errors.As(err, &fe) {
		status = fe.Status
		retryAfter = fe.RetryAfter
	} else if errors.Is(err, fleet.ErrClosed) {
		status = http.StatusServiceUnavailable
	}
	if retryAfter == 0 && status == http.StatusTooManyRequests {
		// Every 429 is transient from the client's view (fleets get
		// deleted, windows pass); default a backoff hint when the error
		// didn't carry its own.
		retryAfter = 1
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, energysched.APIError{Status: status, Message: err.Error()})
}

// gateWrites rejects state-changing requests on a follower: its
// timelines belong to the leader. Returns false when the request was
// rejected. 503 (not 409) so the client RetryPolicy rides out a
// promotion transparently.
func (s *Server) gateWrites(w http.ResponseWriter) bool {
	if !s.isFollower() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, energysched.APIError{
		Status:  http.StatusServiceUnavailable,
		Message: "this daemon is a follower; send writes to the leader or POST /v1/promote",
	})
	return false
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/fleets", s.handleFleetCreate)
	s.mux.HandleFunc("GET /v1/fleets", s.handleFleetList)
	s.mux.HandleFunc("GET /v1/fleets/{fleet}", s.handleFleetInfo)
	s.mux.HandleFunc("DELETE /v1/fleets/{fleet}", s.handleFleetDelete)
	// The per-fleet API, mounted twice: under /v1/fleets/{fleet} and —
	// for PR 3 compatibility — at the old paths, which alias the
	// default fleet.
	for _, p := range []string{"/v1", "/v1/fleets/{fleet}"} {
		s.mux.HandleFunc("POST "+p+"/jobs", s.handleSubmit)
		s.mux.HandleFunc("GET "+p+"/jobs", s.handleJobs)
		s.mux.HandleFunc("GET "+p+"/jobs/{id}", s.handleJob)
		s.mux.HandleFunc("GET "+p+"/cluster", s.handleCluster)
		s.mux.HandleFunc("GET "+p+"/report", s.handleReport)
		s.mux.HandleFunc("POST "+p+"/drain", s.handleDrain)
		s.mux.HandleFunc("POST "+p+"/snapshot", s.handleSnapshot)
		s.mux.HandleFunc("POST "+p+"/restore", s.handleRestore)
		s.mux.HandleFunc("GET "+p+"/events", s.handleEvents)
		// Decision tracing (PR 8): snapshot/SSE tail plus the runtime
		// verbosity knob.
		s.mux.HandleFunc("GET "+p+"/trace", s.handleTrace)
		s.mux.HandleFunc("POST "+p+"/trace/verbosity", s.handleTraceVerbosity)
		// Accounting (PR 9): the energy/SLA time-series and the job
		// lifecycle journeys.
		s.mux.HandleFunc("GET "+p+"/series", s.handleSeries)
		s.mux.HandleFunc("GET "+p+"/journeys", s.handleJourneys)
		s.mux.HandleFunc("GET "+p+"/jobs/{id}/journey", s.handleJourney)
	}
	// SLO burn-rate alerts: daemon-wide at /v1/alerts (every fleet's
	// objectives), fleet-scoped under the fleet prefix.
	s.mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("GET /v1/fleets/{fleet}/alerts", s.handleAlerts)
	// Replication & failover (PR 6).
	s.mux.HandleFunc("GET /v1/fleets/{fleet}/replicate", s.handleReplicate)
	s.mux.HandleFunc("GET /v1/fleets/{fleet}/status", s.handleFleetStatus)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// fleetFor resolves the addressed fleet: the {fleet} path segment, or
// the default fleet on the alias routes.
func (s *Server) fleetFor(r *http.Request) (*fleet.Fleet, error) {
	id := r.PathValue("fleet")
	if id == "" {
		id = DefaultFleet
	}
	return s.mgr.Get(id)
}

// --- fleet registry handlers ---

func (s *Server) handleFleetCreate(w http.ResponseWriter, r *http.Request) {
	if !s.gateWrites(w) {
		return
	}
	var spec energysched.FleetSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding fleet spec: " + err.Error()})
		return
	}
	if err := fleet.ValidateID(spec.ID); err != nil {
		writeErr(w, err)
		return
	}
	if spec.Shards < -1 {
		// Reject here: letting it reach core.Config.Validate would
		// surface as a 500 after the fleet's durable dir was created.
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest,
			Msg: fmt.Sprintf("shards must be >= -1, got %d", spec.Shards)})
		return
	}
	if spec.TraceVerbosity != "" {
		if _, err := obs.ParseVerbosity(spec.TraceVerbosity); err != nil {
			writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: err.Error()})
			return
		}
	}
	if spec.AdmitShards < 0 || spec.AdmitQueue < 0 || spec.RateLimit < 0 || spec.RateBurst < 0 {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest,
			Msg: "admit_shards, admit_queue, rate_limit and rate_burst must be >= 0"})
		return
	}
	f, err := s.mgr.Create(spec.ID, s.fleetConfig(spec.ID, spec))
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Info()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleFleetList(w http.ResponseWriter, r *http.Request) {
	fleets := s.mgr.List()
	out := make([]energysched.FleetInfo, 0, len(fleets))
	for _, f := range fleets {
		info, err := f.Info()
		if err != nil {
			continue // closing concurrently; omit from the listing
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Info()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	if !s.gateWrites(w) {
		return
	}
	id := r.PathValue("fleet")
	if err := s.mgr.Delete(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "deleted": true})
}

// --- per-fleet handlers ---

// handleSubmit admits one job (body = JobSpec object) or a batch
// (body = JSON array of JobSpec), the batch atomically in one
// event-loop turn.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.gateWrites(w) {
		return
	}
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "reading body: " + err.Error()})
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var specs []energysched.JobSpec
		if err := json.Unmarshal(trimmed, &specs); err != nil {
			writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding job batch: " + err.Error()})
			return
		}
		out, err := f.SubmitBatch(specs)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, out)
		return
	}
	var spec energysched.JobSpec
	if err := json.Unmarshal(trimmed, &spec); err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding job spec: " + err.Error()})
		return
	}
	st, err := f.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	out, err := f.Jobs()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "bad job id"})
		return
	}
	st, err := f.Job(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := s.reads.do("cluster", f.ID(), func() (interface{}, error) {
		return f.Cluster()
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rep, err := s.reads.do("report", f.ID(), func() (interface{}, error) {
		return f.Report()
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !s.gateWrites(w) {
		return
	}
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rep, err := f.Drain()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	path, err := decodePath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Snapshot(path)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if !s.gateWrites(w) {
		return
	}
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	path, err := decodePath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Restore(path)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func decodePath(r *http.Request) (string, error) {
	if r.ContentLength == 0 {
		return "", nil
	}
	var body struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16)).Decode(&body); err != nil {
		return "", &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding body: " + err.Error()}
	}
	return body.Path, nil
}

// --- replication & failover ---

// defaultReplPing is the leader's keepalive period on replication
// streams.
const defaultReplPing = 500 * time.Millisecond

// handleReplicate streams one fleet's admission log: a hello frame,
// then the snapshot or record backlog that brings the caller level,
// then live records as they commit, with periodic pings carrying the
// leader's clock and head. Frames are CRC-wrapped exactly like WAL
// records on disk (GET /v1/fleets/{id}/replicate?gen=G&offset=O).
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &fleet.Error{Status: http.StatusInternalServerError, Msg: "streaming unsupported"})
		return
	}
	gen, _ := strconv.ParseInt(r.URL.Query().Get("gen"), 10, 64)
	offset, _ := strconv.ParseInt(r.URL.Query().Get("offset"), 10, 64)
	sess, err := f.ReplSubscribe(gen, offset)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer f.ReplUnsubscribe(sess)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	send := func(fr replication.Frame) bool {
		return replication.WriteFrame(w, fr) == nil
	}
	if !send(replication.Frame{Kind: replication.KindHello, Gen: sess.Gen, Head: sess.Head, Now: sess.Now}) {
		return
	}
	if sess.Snapshot != nil {
		if !send(replication.Frame{
			Kind: replication.KindSnapshot, Gen: sess.Gen,
			Offset: sess.Start, Now: sess.Now, Snapshot: sess.Snapshot,
		}) {
			return
		}
	} else {
		for _, rec := range sess.Backlog {
			if !send(replication.Frame{
				Kind: replication.KindRecord, Offset: rec.Offset, Now: rec.Now, Record: rec.Data,
			}) {
				return
			}
		}
	}
	// Backlog records carry no clock; this ping catches the follower
	// up to the leader's virtual time.
	if !send(replication.Frame{Kind: replication.KindPing, Head: sess.Head, Now: sess.Now}) {
		return
	}
	fl.Flush()

	pingEvery := s.cfg.ReplPing
	if pingEvery <= 0 {
		pingEvery = defaultReplPing
	}
	ping := time.NewTicker(pingEvery)
	defer ping.Stop()
	for {
		select {
		case rec, ok := <-sess.Ch:
			if !ok {
				return // cut loose as a slow consumer, or fleet closed
			}
			if !send(replication.Frame{
				Kind: replication.KindRecord, Offset: rec.Offset, Now: rec.Now, Record: rec.Data,
			}) {
				return
			}
			for len(sess.Ch) > 0 {
				if rec, ok = <-sess.Ch; !ok {
					return
				}
				if !send(replication.Frame{
					Kind: replication.KindRecord, Offset: rec.Offset, Now: rec.Now, Record: rec.Data,
				}) {
					return
				}
			}
			fl.Flush()
		case <-ping.C:
			// Read the clock BEFORE draining: a ping's Now must never
			// overtake a record still queued in the session. Records
			// published before this read carry an older Now and are
			// flushed first; records published after it carry a newer
			// one, so following the ping cannot rewind the mirror's
			// clock past their submit times. (A ping that did overtake
			// would advance the mirror beyond a queued record's admit
			// clock, the inject would fail, and the mirror would wedge
			// read-only.)
			_, head, now, err := f.ReplState()
			if err != nil {
				return
			}
			for len(sess.Ch) > 0 {
				rec, ok := <-sess.Ch
				if !ok {
					return
				}
				if !send(replication.Frame{
					Kind: replication.KindRecord, Offset: rec.Offset, Now: rec.Now, Record: rec.Data,
				}) {
					return
				}
			}
			if !send(replication.Frame{Kind: replication.KindPing, Head: head, Now: now}) {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleFleetStatus reports one fleet's role and replication position
// (GET /v1/fleets/{id}/status).
func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Info()
	if err != nil {
		writeErr(w, err)
		return
	}
	gen, offset, now, err := f.ReplState()
	if err != nil {
		writeErr(w, err)
		return
	}
	st := energysched.FleetStatus{
		ID: info.ID, Role: s.Role(), Now: now,
		Sealed: info.Sealed, Done: info.Done, Jobs: info.Jobs,
		Replication:            energysched.ReplicationStatus{Gen: gen, Offset: offset},
		WAL:                    info.WAL,
		LastSnapshotAgeSeconds: -1,
	}
	if info.WAL != nil && info.WAL.LastSnapshotUnix > 0 {
		st.LastSnapshotAgeSeconds = time.Since(time.Unix(info.WAL.LastSnapshotUnix, 0)).Seconds()
	}
	s.roleMu.Lock()
	fw := s.follower
	s.roleMu.Unlock()
	if fw != nil {
		if pos, ok := fw.Status()[info.ID]; ok {
			st.Replication.LeaderOffset = pos.LeaderHead
			st.Replication.Lag = pos.Lag()
			st.Replication.LastContactUnix = pos.LastContact.Unix()
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealth reports the daemon's role and readiness
// (GET /v1/health). A follower is ready once it has reached the
// leader and every mirrored fleet is fully caught up.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := energysched.HealthStatus{
		Role: s.Role(), Fleets: s.mgr.Len(),
		Version: obs.BuildVersion(), Revision: obs.BuildRevision(),
	}
	for _, f := range s.mgr.List() {
		h.AlertsFiring += f.AlertsFiring()
	}
	s.roleMu.Lock()
	fw := s.follower
	s.roleMu.Unlock()
	if fw == nil {
		h.Ready = true
		writeJSON(w, http.StatusOK, h)
		return
	}
	h.Leader = s.cfg.Follow
	h.MaxLag = fw.MaxLag()
	h.Ready = fw.Ready()
	h.Replication = make(map[string]energysched.ReplicationStatus)
	for id, pos := range fw.Status() {
		h.Replication[id] = energysched.ReplicationStatus{
			Gen: pos.Gen, Offset: pos.Applied,
			LeaderOffset: pos.LeaderHead, Lag: pos.Lag(),
			LastContactUnix: pos.LastContact.Unix(),
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// handlePromote flips a follower to serving leader (POST /v1/promote).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	offs, err := s.promote()
	if err != nil {
		writeErr(w, err)
		return
	}
	s.logf("server: promoted to leader (%d fleets)", len(offs))
	writeJSON(w, http.StatusOK, energysched.PromoteInfo{Role: "leader", Fleets: offs})
}

// --- aggregated endpoints ---

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fleets := s.mgr.List()
	sets := make([][]metrics.PromSample, 0, len(fleets)+2)
	sets = append(sets, []metrics.PromSample{{
		Name: "energysched_fleets", Help: "Fleets hosted by this daemon.",
		Kind: metrics.PromGauge, Value: float64(len(fleets)),
	}, {
		Name: "energysched_role", Help: "Daemon role (1 = active role).",
		Kind: metrics.PromGauge, Value: 1,
		Labels: map[string]string{"role": s.Role()},
	}})
	s.roleMu.Lock()
	fw := s.follower
	s.roleMu.Unlock()
	if fw != nil {
		lags := make([]metrics.PromSample, 0, 2)
		for id, pos := range fw.Status() {
			lags = append(lags, metrics.PromSample{
				Name: "energysched_replication_lag_records",
				Help: "Records this follower is behind the leader.",
				Kind: metrics.PromGauge, Value: float64(pos.Lag()),
				Labels: map[string]string{"fleet": id},
			})
		}
		sets = append(sets, lags, fw.MetricsSamples())
	}
	sets = append(sets, s.httpHists.samples(), s.reads.samples())
	for _, f := range fleets {
		samples, err := f.Metrics()
		if err != nil {
			continue // closing concurrently; omit
		}
		for i := range samples {
			if samples[i].Labels == nil {
				samples[i].Labels = map[string]string{}
			}
			samples[i].Labels["fleet"] = f.ID()
		}
		sets = append(sets, samples)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, metrics.MergeByName(sets...))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fleets := s.mgr.List()
	per := make(map[string]interface{}, len(fleets))
	for _, f := range fleets {
		now, done, err := f.Health()
		if err != nil {
			continue
		}
		per[f.ID()] = map[string]interface{}{"now_s": now, "done": done}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"ok": true, "fleet_count": len(fleets), "fleets": per,
	})
}

// heartbeatInterval keeps idle SSE connections alive through proxies.
const heartbeatInterval = 15 * time.Second

// heartbeat returns the configured SSE keepalive period (the -sse-ping
// flag), shared by the event, trace and journey streams. Short values
// let tests exercise idle-stream pings without 15s waits.
func (s *Server) heartbeat() time.Duration {
	if s.cfg.SSEHeartbeat > 0 {
		return s.cfg.SSEHeartbeat
	}
	return heartbeatInterval
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &fleet.Error{Status: http.StatusInternalServerError, Msg: "streaming unsupported"})
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	}
	broker := f.Broker()
	sub, backlog, gap := broker.Subscribe(since)
	defer broker.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if gap {
		writeSSEGap(w, since, oldestSeq(len(backlog), func(i int) uint64 { return backlog[i].Seq }))
	}
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.heartbeat())
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.Ch:
			if !ok {
				return // slow consumer cut loose, or the fleet closed
			}
			writeSSE(w, ev)
			// Drain whatever is already buffered before flushing.
			for len(sub.Ch) > 0 {
				if ev, ok = <-sub.Ch; !ok {
					return
				}
				writeSSE(w, ev)
			}
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev fleet.StreamEvent) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, ev.Data)
}

// oldestSeq extracts the first retained sequence number from a backlog
// (0 when nothing is retained) for the gap event's "oldest" field.
func oldestSeq(n int, seqAt func(int) uint64) uint64 {
	if n == 0 {
		return 0
	}
	return seqAt(0)
}

// writeSSEGap emits the explicit gap event every SSE endpoint sends
// when a Last-Event-ID/?since resume point has been evicted from the
// ring: consumers must not assume the stream is contiguous with what
// they saw before — re-sync from a snapshot (or since=0) instead. The
// event intentionally carries no id: line, so it never disturbs the
// consumer's Last-Event-ID bookkeeping; the stream continues with the
// retained tail after it.
func writeSSEGap(w http.ResponseWriter, requested, oldest uint64) {
	fmt.Fprintf(w, "event: gap\ndata: {\"requested\":%d,\"oldest\":%d}\n\n", requested, oldest)
}
