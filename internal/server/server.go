// Package server is the HTTP layer of the energyschedd daemon. Since
// PR 4 it hosts N independent fleets — isolated datacenter.Simulation
// instances, each with its own actor event loop, clock pace, event
// ring and WAL-backed durability (internal/fleet) — behind a shared
// registry and a versioned multi-fleet API:
//
//	POST   /v1/fleets             create a fleet from a named config
//	GET    /v1/fleets             list fleets
//	GET    /v1/fleets/{id}        one fleet's summary (incl. WAL stats)
//	DELETE /v1/fleets/{id}        stop and remove a fleet
//	...    /v1/fleets/{id}/jobs   all PR 3 routes, remounted per fleet
//
// The PR 3 single-fleet routes (/v1/jobs, /v1/report, ...) keep
// working as aliases for the "default" fleet. GET /metrics aggregates
// every fleet's samples under a fleet label.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"energysched"
	"energysched/internal/fleet"
	"energysched/internal/metrics"
)

// DefaultFleet is the fleet the PR 3 alias routes address.
const DefaultFleet = "default"

// FleetSeed names a fleet to create at startup (the -fleets flag).
type FleetSeed struct {
	ID     string
	Policy string // "" = the daemon's default policy
}

// Config parameterizes the daemon. The scheduling fields double as
// the base configuration every fleet inherits unless its FleetSpec
// overrides them.
type Config struct {
	// Policy selects the scheduler (same names as energysched.Run;
	// default "SB").
	Policy string
	// Seed drives all stochastic components (default 1).
	Seed int64
	// LambdaMin, LambdaMax are the power-manager thresholds in percent
	// (defaults 30, 90).
	LambdaMin, LambdaMax float64
	// Score overrides the consolidation costs (nil = paper values).
	Score *energysched.ScoreParams
	// Failures enables reliability-driven node crashes.
	Failures bool
	// CheckpointSeconds > 0 checkpoints running VMs periodically.
	CheckpointSeconds float64
	// AdaptiveTarget > 0 enables dynamic λmin adjustment.
	AdaptiveTarget float64
	// Shards selects the solver's sharded parallel round engine
	// (0 = serial, -1 = GOMAXPROCS, K >= 1 = K shards); fleets inherit
	// it unless their FleetSpec overrides.
	Shards int
	// Classes overrides the fleet hardware (nil = the paper's 100
	// nodes).
	Classes []energysched.NodeClass
	// Pace is the virtual-seconds-per-wall-second acceleration; <= 0
	// selects max pacing (watermark-gated, fully deterministic).
	Pace float64
	// SnapshotDir receives API-named snapshots; non-default fleets use
	// a per-fleet subdirectory (default ".").
	SnapshotDir string
	// EventRing is the replay-ring depth for /v1/events reconnects
	// (default 4096).
	EventRing int
	// WALDir is the durable root: per-fleet admission WALs, compaction
	// snapshots and the fleet manifest live under it. Empty disables
	// durability.
	WALDir string
	// SnapshotInterval compacts each fleet's WAL into a fresh snapshot
	// every this many records (0 = never compact automatically).
	SnapshotInterval int
	// WALSync is the WAL append sync policy: fleet.SyncAlways
	// (default) or fleet.SyncOS.
	WALSync string
	// MaxFleets caps the fleet registry (0 = unlimited): POST
	// /v1/fleets returns 429 once the daemon hosts this many fleets.
	// Startup seeds and manifest-recovered fleets are exempt.
	MaxFleets int
	// Fleets are additional fleets to ensure at startup, next to
	// DefaultFleet (fleets recovered from the WAL manifest win).
	Fleets []FleetSeed
	// Logf, when non-nil, receives daemon log lines.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "SB"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LambdaMin == 0 && c.LambdaMax == 0 {
		c.LambdaMin, c.LambdaMax = 30, 90
	}
	if c.SnapshotDir == "" {
		c.SnapshotDir = "."
	}
	return c
}

// Server is one running daemon instance: the fleet registry plus the
// HTTP surface.
type Server struct {
	cfg Config
	mux *http.ServeMux
	mgr *fleet.Manager
}

// New builds a daemon: it opens the fleet registry (recovering every
// fleet recorded under WALDir), ensures the default and seeded fleets
// exist, and mounts the HTTP routes. Callers mount Handler on an
// http.Server and Close the daemon on shutdown.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	// The cap is installed after the startup seeds: operator-named
	// fleets (and manifest-recovered ones) must come up even when they
	// meet or exceed -max-fleets; the cap gates API-driven creation.
	mgr, err := fleet.NewManager(fleet.Options{Dir: cfg.WALDir, Logf: cfg.Logf})
	if err != nil {
		return nil, err
	}
	s.mgr = mgr
	seeds := append([]FleetSeed{{ID: DefaultFleet}}, s.cfg.Fleets...)
	for _, seed := range seeds {
		if seed.ID == "" || mgr.Has(seed.ID) {
			continue // recovered from the manifest: its config wins
		}
		spec := energysched.FleetSpec{ID: seed.ID, Policy: seed.Policy}
		if _, err := mgr.Create(seed.ID, s.fleetConfig(seed.ID, spec)); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("server: creating fleet %s: %w", seed.ID, err)
		}
	}
	mgr.SetMaxFleets(s.cfg.MaxFleets)
	s.routes()
	return s, nil
}

// fleetConfig derives one fleet's configuration: the daemon's base
// config with the spec's overrides applied.
func (s *Server) fleetConfig(id string, spec energysched.FleetSpec) fleet.Config {
	fc := fleet.Config{
		Policy:            s.cfg.Policy,
		Seed:              s.cfg.Seed,
		LambdaMin:         s.cfg.LambdaMin,
		LambdaMax:         s.cfg.LambdaMax,
		Score:             s.cfg.Score,
		Failures:          s.cfg.Failures,
		CheckpointSeconds: s.cfg.CheckpointSeconds,
		AdaptiveTarget:    s.cfg.AdaptiveTarget,
		Shards:            s.cfg.Shards,
		Classes:           s.cfg.Classes,
		Pace:              s.cfg.Pace,
		SnapshotDir:       s.cfg.SnapshotDir,
		EventRing:         s.cfg.EventRing,
		SnapshotInterval:  s.cfg.SnapshotInterval,
		WALSync:           s.cfg.WALSync,
		Logf:              s.cfg.Logf,
	}
	if id != DefaultFleet {
		// Per-fleet snapshot namespaces: API-named snapshots of
		// different fleets must not overwrite each other.
		fc.SnapshotDir = filepath.Join(s.cfg.SnapshotDir, id)
	}
	if spec.Policy != "" {
		fc.Policy = spec.Policy
	}
	if spec.Seed != 0 {
		fc.Seed = spec.Seed
	}
	if spec.LambdaMin != 0 {
		fc.LambdaMin = spec.LambdaMin
	}
	if spec.LambdaMax != 0 {
		fc.LambdaMax = spec.LambdaMax
	}
	if spec.Pace != nil {
		fc.Pace = *spec.Pace
	}
	if spec.Failures {
		fc.Failures = true
	}
	if spec.CheckpointSeconds > 0 {
		fc.CheckpointSeconds = spec.CheckpointSeconds
	}
	if spec.AdaptiveTarget > 0 {
		fc.AdaptiveTarget = spec.AdaptiveTarget
	}
	if spec.Shards != 0 {
		fc.Shards = spec.Shards
	}
	if spec.SnapshotInterval > 0 {
		fc.SnapshotInterval = spec.SnapshotInterval
	}
	return fc
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops every fleet. In-flight requests receive 503.
func (s *Server) Close() { s.mgr.Close() }

// Manager exposes the fleet registry (tests and embedders).
func (s *Server) Manager() *fleet.Manager { return s.mgr }

// RestoreFile loads a snapshot into the default fleet at startup (the
// -restore flag).
func (s *Server) RestoreFile(path string) (energysched.SnapshotInfo, error) {
	f, err := s.mgr.Get(DefaultFleet)
	if err != nil {
		return energysched.SnapshotInfo{}, err
	}
	return f.RestoreFile(path)
}

// --- HTTP surface ---

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var fe *fleet.Error
	if errors.As(err, &fe) {
		status = fe.Status
	} else if errors.Is(err, fleet.ErrClosed) {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, energysched.APIError{Status: status, Message: err.Error()})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/fleets", s.handleFleetCreate)
	s.mux.HandleFunc("GET /v1/fleets", s.handleFleetList)
	s.mux.HandleFunc("GET /v1/fleets/{fleet}", s.handleFleetInfo)
	s.mux.HandleFunc("DELETE /v1/fleets/{fleet}", s.handleFleetDelete)
	// The per-fleet API, mounted twice: under /v1/fleets/{fleet} and —
	// for PR 3 compatibility — at the old paths, which alias the
	// default fleet.
	for _, p := range []string{"/v1", "/v1/fleets/{fleet}"} {
		s.mux.HandleFunc("POST "+p+"/jobs", s.handleSubmit)
		s.mux.HandleFunc("GET "+p+"/jobs", s.handleJobs)
		s.mux.HandleFunc("GET "+p+"/jobs/{id}", s.handleJob)
		s.mux.HandleFunc("GET "+p+"/cluster", s.handleCluster)
		s.mux.HandleFunc("GET "+p+"/report", s.handleReport)
		s.mux.HandleFunc("POST "+p+"/drain", s.handleDrain)
		s.mux.HandleFunc("POST "+p+"/snapshot", s.handleSnapshot)
		s.mux.HandleFunc("POST "+p+"/restore", s.handleRestore)
		s.mux.HandleFunc("GET "+p+"/events", s.handleEvents)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// fleetFor resolves the addressed fleet: the {fleet} path segment, or
// the default fleet on the alias routes.
func (s *Server) fleetFor(r *http.Request) (*fleet.Fleet, error) {
	id := r.PathValue("fleet")
	if id == "" {
		id = DefaultFleet
	}
	return s.mgr.Get(id)
}

// --- fleet registry handlers ---

func (s *Server) handleFleetCreate(w http.ResponseWriter, r *http.Request) {
	var spec energysched.FleetSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding fleet spec: " + err.Error()})
		return
	}
	if err := fleet.ValidateID(spec.ID); err != nil {
		writeErr(w, err)
		return
	}
	if spec.Shards < -1 {
		// Reject here: letting it reach core.Config.Validate would
		// surface as a 500 after the fleet's durable dir was created.
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest,
			Msg: fmt.Sprintf("shards must be >= -1, got %d", spec.Shards)})
		return
	}
	f, err := s.mgr.Create(spec.ID, s.fleetConfig(spec.ID, spec))
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Info()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleFleetList(w http.ResponseWriter, r *http.Request) {
	fleets := s.mgr.List()
	out := make([]energysched.FleetInfo, 0, len(fleets))
	for _, f := range fleets {
		info, err := f.Info()
		if err != nil {
			continue // closing concurrently; omit from the listing
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFleetInfo(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Info()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleFleetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("fleet")
	if err := s.mgr.Delete(id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "deleted": true})
}

// --- per-fleet handlers ---

// handleSubmit admits one job (body = JobSpec object) or a batch
// (body = JSON array of JobSpec), the batch atomically in one
// event-loop turn.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "reading body: " + err.Error()})
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var specs []energysched.JobSpec
		if err := json.Unmarshal(trimmed, &specs); err != nil {
			writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding job batch: " + err.Error()})
			return
		}
		out, err := f.SubmitBatch(specs)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, out)
		return
	}
	var spec energysched.JobSpec
	if err := json.Unmarshal(trimmed, &spec); err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding job spec: " + err.Error()})
		return
	}
	st, err := f.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	out, err := f.Jobs()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "bad job id"})
		return
	}
	st, err := f.Job(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := f.Cluster()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rep, err := f.Report()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rep, err := f.Drain()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	path, err := decodePath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Snapshot(path)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	path, err := decodePath(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	info, err := f.Restore(path)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func decodePath(r *http.Request) (string, error) {
	if r.ContentLength == 0 {
		return "", nil
	}
	var body struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16)).Decode(&body); err != nil {
		return "", &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding body: " + err.Error()}
	}
	return body.Path, nil
}

// --- aggregated endpoints ---

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fleets := s.mgr.List()
	sets := make([][]metrics.PromSample, 0, len(fleets)+1)
	sets = append(sets, []metrics.PromSample{{
		Name: "energysched_fleets", Help: "Fleets hosted by this daemon.",
		Kind: metrics.PromGauge, Value: float64(len(fleets)),
	}})
	for _, f := range fleets {
		samples, err := f.Metrics()
		if err != nil {
			continue // closing concurrently; omit
		}
		for i := range samples {
			if samples[i].Labels == nil {
				samples[i].Labels = map[string]string{}
			}
			samples[i].Labels["fleet"] = f.ID()
		}
		sets = append(sets, samples)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, metrics.MergeByName(sets...))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fleets := s.mgr.List()
	per := make(map[string]interface{}, len(fleets))
	for _, f := range fleets {
		now, done, err := f.Health()
		if err != nil {
			continue
		}
		per[f.ID()] = map[string]interface{}{"now_s": now, "done": done}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"ok": true, "fleet_count": len(fleets), "fleets": per,
	})
}

// heartbeatInterval keeps idle SSE connections alive through proxies.
const heartbeatInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &fleet.Error{Status: http.StatusInternalServerError, Msg: "streaming unsupported"})
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	}
	broker := f.Broker()
	sub, backlog := broker.Subscribe(since)
	defer broker.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, ev := range backlog {
		writeSSE(w, ev)
	}
	fl.Flush()

	heartbeat := time.NewTicker(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.Ch:
			if !ok {
				return // slow consumer cut loose, or the fleet closed
			}
			writeSSE(w, ev)
			// Drain whatever is already buffered before flushing.
			for len(sub.Ch) > 0 {
				if ev, ok = <-sub.Ch; !ok {
					return
				}
				writeSSE(w, ev)
			}
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev fleet.StreamEvent) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, ev.Data)
}
