package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"energysched/internal/fleet"
	"energysched/internal/metrics"
	"energysched/internal/obs"
)

// Server-side observability: per-route HTTP latency histograms and the
// decision-trace API (GET /trace snapshot + SSE tail, POST
// /trace/verbosity). Like everything under internal/obs this is a
// wall-clock side channel — no handler here can influence a fleet's
// scheduling decisions.

// routeHists aggregates request latency per matched route pattern
// ("GET /v1/fleets/{fleet}/jobs"). Patterns are a small fixed set, so
// the map grows to the route table and stops.
type routeHists struct {
	mu sync.Mutex
	m  map[string]*metrics.Histogram
}

func (rh *routeHists) observe(route string, seconds float64) {
	rh.mu.Lock()
	h, ok := rh.m[route]
	if !ok {
		if rh.m == nil {
			rh.m = make(map[string]*metrics.Histogram)
		}
		h = &metrics.Histogram{}
		rh.m[route] = h
	}
	rh.mu.Unlock()
	// Histograms lock internally; observing outside rh.mu keeps the
	// map lock uncontended.
	h.Observe(seconds)
}

// samples renders every route's family, routes sorted for a stable
// exposition.
func (rh *routeHists) samples() []metrics.PromSample {
	rh.mu.Lock()
	routes := make([]string, 0, len(rh.m))
	for route := range rh.m {
		routes = append(routes, route)
	}
	hists := make([]*metrics.Histogram, 0, len(routes))
	sort.Strings(routes)
	for _, route := range routes {
		hists = append(hists, rh.m[route])
	}
	rh.mu.Unlock()
	var out []metrics.PromSample
	for i, route := range routes {
		out = append(out, metrics.HistogramSamples(
			"energysched_http_request_seconds",
			"HTTP request latency by matched route (streaming routes measure connection lifetime).",
			map[string]string{"route": route}, hists[i])...)
	}
	return out
}

// withRouteMetrics wraps the mux so every request feeds the per-route
// latency histogram. The route label is the mux pattern, not the raw
// URL — unbounded label cardinality would make /metrics a memory leak.
func (s *Server) withRouteMetrics(next *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		_, route := next.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		s.httpHists.observe(route, time.Since(start).Seconds())
	})
}

// TraceSnapshotBody is the JSON body of GET /trace: the ring's head
// sequence, the recording level, and the retained round traces (the
// ring stores them pre-marshaled, so they pass through verbatim).
type TraceSnapshotBody struct {
	Seq       uint64            `json:"seq"`
	Verbosity string            `json:"verbosity"`
	Traces    []json.RawMessage `json:"traces"`
}

// handleTrace serves one fleet's decision-trace ring
// (GET /v1/fleets/{id}/trace): by default a JSON snapshot of the
// retained rounds with sequence > ?since, with ?follow=1 an SSE tail
// that replays the backlog and then streams each solver round as it
// commits (Last-Event-ID resumes like /events).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseUint(v, 10, 64)
	}
	if fv := r.URL.Query().Get("follow"); fv != "" && fv != "0" {
		s.tailTrace(w, r, f, since)
		return
	}
	evs := f.TraceSnapshot(since)
	body := TraceSnapshotBody{
		Seq:       f.TraceSeq(),
		Verbosity: f.TraceVerbosity().String(),
		Traces:    make([]json.RawMessage, 0, len(evs)),
	}
	for _, ev := range evs {
		body.Traces = append(body.Traces, json.RawMessage(ev.Data))
	}
	writeJSON(w, http.StatusOK, body)
}

// tailTrace streams the trace ring over SSE, mirroring handleEvents:
// gapless backlog then live rounds, heartbeats through proxies, slow
// consumers cut loose by the ring rather than backpressuring the
// solver.
func (s *Server) tailTrace(w http.ResponseWriter, r *http.Request, f *fleet.Fleet, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &fleet.Error{Status: http.StatusInternalServerError, Msg: "streaming unsupported"})
		return
	}
	sub, backlog, gap := f.TraceSubscribe(since)
	defer f.TraceUnsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if gap {
		writeSSEGap(w, since, oldestSeq(len(backlog), func(i int) uint64 { return backlog[i].Seq }))
	}
	for _, ev := range backlog {
		writeTraceSSE(w, ev)
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.heartbeat())
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.Ch:
			if !ok {
				return // slow consumer cut loose, or the fleet closed
			}
			writeTraceSSE(w, ev)
			for len(sub.Ch) > 0 {
				if ev, ok = <-sub.Ch; !ok {
					return
				}
				writeTraceSSE(w, ev)
			}
			fl.Flush()
		case <-heartbeat.C:
			w.Write([]byte(": ping\n\n"))
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeTraceSSE(w http.ResponseWriter, ev obs.TraceEvent) {
	w.Write([]byte("id: " + strconv.FormatUint(ev.Seq, 10) + "\nevent: round\ndata: "))
	w.Write(ev.Data)
	w.Write([]byte("\n\n"))
}

// handleTraceVerbosity retunes one fleet's trace recording level at
// runtime (POST /v1/fleets/{id}/trace/verbosity, body
// {"verbosity":"scores"}). Not write-gated: tracing is observability,
// valid on followers, and never touches replicated state.
func (s *Server) handleTraceVerbosity(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var body struct {
		Verbosity string `json:"verbosity"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "decoding body: " + err.Error()})
		return
	}
	v, err := obs.ParseVerbosity(body.Verbosity)
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: err.Error()})
		return
	}
	f.SetTraceVerbosity(v)
	writeJSON(w, http.StatusOK, map[string]string{"verbosity": v.String()})
}
