package server

import (
	"sort"
	"sync"

	"energysched/internal/metrics"
)

// Request coalescing for the hot read endpoints (/report, /cluster,
// /series). Each of these costs one fleet event-loop turn; under the
// concurrent polling this PR's ingest sharding invites (N dashboards,
// N loadgen pollers), identical in-flight GETs would queue N turns
// for the same answer. readGroup is a hand-rolled singleflight: the
// first caller of a key becomes the leader and executes the fetch,
// concurrent callers with the same key wait for the leader's result,
// and the key is forgotten the moment the leader returns — a
// completed fetch is never served stale to a later request.

type readCall struct {
	done chan struct{}
	val  interface{}
	err  error
}

type readStats struct{ hits, misses uint64 }

// readGroup deduplicates concurrent identical reads. The zero value is
// ready to use.
type readGroup struct {
	mu    sync.Mutex
	calls map[string]*readCall
	stats map[string]*readStats // per endpoint, guarded by mu
}

func (g *readGroup) statsFor(endpoint string) *readStats {
	if g.stats == nil {
		g.stats = make(map[string]*readStats)
	}
	st, ok := g.stats[endpoint]
	if !ok {
		st = &readStats{}
		g.stats[endpoint] = st
	}
	return st
}

// do executes fn once per concurrently-requested key: the leader runs
// it, followers block until the leader finishes and share its result
// (and its error). endpoint labels the hit/miss metrics; key must
// capture everything that distinguishes the response (fleet ID, query
// string).
func (g *readGroup) do(endpoint, key string, fn func() (interface{}, error)) (interface{}, error) {
	key = endpoint + "\x00" + key
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.statsFor(endpoint).hits++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	if g.calls == nil {
		g.calls = make(map[string]*readCall)
	}
	c := &readCall{done: make(chan struct{})}
	g.calls[key] = c
	g.statsFor(endpoint).misses++
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// samples appends the coalescer's Prometheus counters, one hit/miss
// pair per endpoint that has served traffic, in stable order.
func (g *readGroup) samples() []metrics.PromSample {
	g.mu.Lock()
	defer g.mu.Unlock()
	endpoints := make([]string, 0, len(g.stats))
	for ep := range g.stats {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	out := make([]metrics.PromSample, 0, 2*len(endpoints))
	for _, ep := range endpoints {
		st := g.stats[ep]
		out = append(out,
			metrics.PromSample{Name: "energysched_coalesce_total", Help: "Hot-path read requests by endpoint and coalescing outcome.",
				Kind: metrics.PromCounter, Labels: map[string]string{"endpoint": ep, "result": "hit"}, Value: float64(st.hits)},
			metrics.PromSample{Name: "energysched_coalesce_total", Help: "Hot-path read requests by endpoint and coalescing outcome.",
				Kind: metrics.PromCounter, Labels: map[string]string{"endpoint": ep, "result": "miss"}, Value: float64(st.misses)},
		)
	}
	return out
}
