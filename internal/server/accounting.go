package server

import (
	"encoding/csv"
	"net/http"
	"strconv"
	"time"

	"energysched/internal/fleet"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/obs/slo"
)

// Accounting API: the energy/SLA time-series (GET /series), the job
// lifecycle journeys (GET /journeys, GET /jobs/{id}/journey) and the
// SLO burn-rate alerts (GET /v1/alerts). Read-only observability — no
// handler here is write-gated, because all of it is valid on a
// follower and none of it touches replicated state.

// SeriesBody is the JSON body of GET /series: the store's lifetime
// sample count plus either full samples or, with ?metric=, the single
// metric's points.
type SeriesBody struct {
	// Metric echoes the ?metric= selection ("" = full samples).
	Metric string `json:"metric,omitempty"`
	// Count is the number of samples ever recorded (retained or
	// evicted from the bounded ring).
	Count uint64 `json:"count"`
	// Samples holds the full accounting samples (no ?metric=).
	Samples []series.Sample `json:"samples,omitempty"`
	// Points holds the (t, v) pairs of a single-metric query.
	Points []series.Point `json:"points,omitempty"`
}

// JourneysBody is the JSON body of GET /journeys: the firehose head
// sequence plus the retained journey summaries, oldest first.
type JourneysBody struct {
	Seq      uint64               `json:"seq"`
	Journeys []obs.JourneySummary `json:"journeys"`
}

// FleetAlert is one objective's verdict tagged with its fleet (part of
// GET /v1/alerts).
type FleetAlert struct {
	Fleet string `json:"fleet"`
	slo.Alert
}

// AlertsBody is the JSON body of GET /v1/alerts: the number of
// objectives currently firing and every objective's verdict.
type AlertsBody struct {
	Firing int          `json:"firing"`
	Alerts []FleetAlert `json:"alerts"`
}

// handleSeries serves the fleet's accounting time-series
// (GET /v1/fleets/{id}/series?metric=&since=&step=&format=). Malformed
// query parameters map onto structured 400s; format=csv streams CSV
// for spreadsheet and gnuplot consumers.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	qp := r.URL.Query()
	q, err := series.ParseQuery(qp.Get("metric"), qp.Get("since"), qp.Get("step"), qp.Get("format"))
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: err.Error()})
		return
	}
	// Coalesce on fleet + raw query: concurrent identical series GETs
	// share one store read and one downsample pass.
	got, _ := s.reads.do("series", f.ID()+"\x00"+r.URL.RawQuery, func() (interface{}, error) {
		return f.SeriesSamples(q), nil
	})
	samples := got.([]series.Sample)
	if q.Format == "csv" {
		writeSeriesCSV(w, q, samples)
		return
	}
	body := SeriesBody{Metric: q.Metric, Count: f.SeriesCount()}
	if q.Metric != "" {
		body.Points = series.Points(samples, q.Metric)
	} else {
		body.Samples = samples
	}
	writeJSON(w, http.StatusOK, body)
}

// writeSeriesCSV renders a series query as CSV: "t,v" rows for a
// single metric, the fleet-wide columns otherwise (the per-class
// breakdown is JSON-only).
func writeSeriesCSV(w http.ResponseWriter, q series.Query, samples []series.Sample) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	cw := csv.NewWriter(w)
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fi := func(v int) string { return strconv.Itoa(v) }
	if q.Metric != "" {
		cw.Write([]string{"t", q.Metric})
		for _, p := range series.Points(samples, q.Metric) {
			cw.Write([]string{ff(p.T), ff(p.V)})
		}
		cw.Flush()
		return
	}
	cw.Write([]string{
		"t", "watts", "kwh", "sla_pct", "utilization_pct", "queue", "running",
		"nodes_on", "nodes_working", "nodes_off", "migrations_total", "completed_total",
	})
	for _, smp := range samples {
		cw.Write([]string{
			ff(smp.T), ff(smp.Watts), ff(smp.KWh), ff(smp.SLA), ff(smp.Utilization),
			fi(smp.Queue), fi(smp.Running), fi(smp.On), fi(smp.Working), fi(smp.Off),
			fi(smp.Migrations), fi(smp.Completed),
		})
	}
	cw.Flush()
}

// handleJourney serves one job's lifecycle audit span
// (GET /v1/fleets/{id}/jobs/{jobID}/journey). 404 when no journey was
// recorded — jobs admitted before this daemon started, or evicted from
// the bounded store.
func (s *Server) handleJourney(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, &fleet.Error{Status: http.StatusBadRequest, Msg: "bad job id"})
		return
	}
	j, err := f.Journey(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleJourneys serves the journey index (GET /v1/fleets/{id}/journeys)
// or, with ?follow=1, the SSE firehose of lifecycle steps as they
// commit (Last-Event-ID resumes like /events).
func (s *Server) handleJourneys(w http.ResponseWriter, r *http.Request) {
	f, err := s.fleetFor(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	if fv := r.URL.Query().Get("follow"); fv != "" && fv != "0" {
		var since uint64
		if v := r.URL.Query().Get("since"); v != "" {
			since, _ = strconv.ParseUint(v, 10, 64)
		} else if v := r.Header.Get("Last-Event-ID"); v != "" {
			since, _ = strconv.ParseUint(v, 10, 64)
		}
		s.tailJourneys(w, r, f, since)
		return
	}
	writeJSON(w, http.StatusOK, JourneysBody{Seq: f.JourneySeq(), Journeys: f.JourneySummaries()})
}

// tailJourneys streams the journey firehose over SSE, mirroring
// tailTrace: gapless backlog then live steps, keepalive pings on idle
// fleets, slow consumers cut loose by the ring.
func (s *Server) tailJourneys(w http.ResponseWriter, r *http.Request, f *fleet.Fleet, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &fleet.Error{Status: http.StatusInternalServerError, Msg: "streaming unsupported"})
		return
	}
	sub, backlog, gap := f.JourneySubscribe(since)
	defer f.JourneyUnsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if gap {
		writeSSEGap(w, since, oldestSeq(len(backlog), func(i int) uint64 { return backlog[i].Seq }))
	}
	for _, ev := range backlog {
		writeJourneySSE(w, ev)
	}
	fl.Flush()

	heartbeat := time.NewTicker(s.heartbeat())
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.Ch:
			if !ok {
				return // slow consumer cut loose, or the fleet closed
			}
			writeJourneySSE(w, ev)
			for len(sub.Ch) > 0 {
				if ev, ok = <-sub.Ch; !ok {
					return
				}
				writeJourneySSE(w, ev)
			}
			fl.Flush()
		case <-heartbeat.C:
			w.Write([]byte(": ping\n\n"))
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJourneySSE(w http.ResponseWriter, ev obs.RingEvent) {
	w.Write([]byte("id: " + strconv.FormatUint(ev.Seq, 10) + "\nevent: step\ndata: "))
	w.Write(ev.Data)
	w.Write([]byte("\n\n"))
}

// handleAlerts serves the SLO burn-rate verdicts: every fleet's
// objectives at GET /v1/alerts, one fleet's at
// GET /v1/fleets/{id}/alerts.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	var fleets []*fleet.Fleet
	if id := r.PathValue("fleet"); id != "" {
		f, err := s.mgr.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		fleets = []*fleet.Fleet{f}
	} else {
		fleets = s.mgr.List()
	}
	body := AlertsBody{Alerts: []FleetAlert{}}
	for _, f := range fleets {
		for _, a := range f.Alerts() {
			if a.State == "firing" {
				body.Firing++
			}
			body.Alerts = append(body.Alerts, FleetAlert{Fleet: f.ID(), Alert: a})
		}
	}
	writeJSON(w, http.StatusOK, body)
}
