package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"energysched"
	"energysched/internal/fleet"
	"energysched/internal/workload"
)

// newTestServer spins up a daemon plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *energysched.Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs, energysched.NewClient(hs.URL)
}

func specFromJob(j workload.Job) energysched.JobSpec {
	submit := j.Submit
	return energysched.JobSpec{
		Name:           j.Name,
		CPU:            j.CPU,
		Mem:            j.Mem,
		Duration:       j.Duration,
		Submit:         &submit,
		DeadlineFactor: j.DeadlineFactor,
		FaultTolerance: j.FaultTolerance,
		Arch:           j.Arch,
		Hypervisor:     j.Hypervisor,
	}
}

// offlineReport runs the reference offline simulation and renders it
// through the same conversion the daemon uses.
func offlineReport(t *testing.T, trace *workload.Trace, policy string, seed int64) energysched.ServiceReport {
	t.Helper()
	tr := energysched.Trace{Jobs: trace.Jobs}
	sim, err := energysched.NewSimulation(energysched.Options{
		Policy: policy, Seed: seed, Trace: &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return fleet.ServiceReportOf(rep, true)
}

func paperDayTrace() *workload.Trace {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = 24 * 3600
	cfg.Seed = 7
	return workload.MustGenerate(cfg)
}

// The headline acceptance test: submitting the paper's one-day trace
// job-by-job through POST /v1/jobs at max pacing yields a GET
// /v1/report byte-identical to the offline energysched.Run report for
// the same seed and policy.
func TestOnlineTraceByteIdenticalToOffline(t *testing.T) {
	trace := paperDayTrace()
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})

	ctx := context.Background()
	for i, j := range trace.Jobs {
		st, err := client.SubmitJob(ctx, specFromJob(j))
		if err != nil {
			t.Fatalf("submitting job %d: %v", i, err)
		}
		if st.ID != i {
			t.Fatalf("job %d got id %d", i, st.ID)
		}
	}

	// Interim report before the drain: jobs admitted, none final.
	interim, err := client.Report(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if interim.Final || interim.JobsTotal != trace.Len() {
		t.Fatalf("interim report = %+v", interim)
	}

	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	want := offlineReport(t, trace, "SB", 1)
	wantBody, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	wantBody = append(wantBody, '\n')
	if !bytes.Equal(body, wantBody) {
		t.Fatalf("online report body diverged from offline run:\n got %s\nwant %s", body, wantBody)
	}
	if want.JobsCompleted != trace.Len() {
		t.Fatalf("offline reference incomplete: %+v", want)
	}
}

// Snapshot mid-trace, restore into a brand-new daemon (simulating a
// restart), submit the remainder: the final report must equal the
// uninterrupted offline run.
func TestSnapshotRestoreMidTraceReproducesReport(t *testing.T) {
	trace := paperDayTrace()
	half := trace.Len() / 2
	// API snapshot paths are file names confined to the daemon's
	// snapshot directory; share one between both daemons.
	snapDir := t.TempDir()
	ctx := context.Background()

	_, _, client1 := newTestServer(t, Config{Policy: "SB", Seed: 1, SnapshotDir: snapDir})
	for _, j := range trace.Jobs[:half] {
		if _, err := client1.SubmitJob(ctx, specFromJob(j)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := client1.Snapshot(ctx, "mid.snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs != half || info.Sealed {
		t.Fatalf("snapshot info = %+v", info)
	}
	if info.Path != filepath.Join(snapDir, "mid.snapshot.json") {
		t.Fatalf("snapshot escaped its directory: %q", info.Path)
	}

	// A fresh daemon with a deliberately different default config; the
	// snapshot's configuration must win on restore. A path traversal in
	// the request must be confined to the snapshot directory too.
	_, _, client2 := newTestServer(t, Config{Policy: "BF", Seed: 99, SnapshotDir: snapDir})
	if _, err := client2.Restore(ctx, "/no/such/dir/../../mid.snapshot.json"); err != nil {
		t.Fatalf("traversal path should resolve to the confined name: %v", err)
	}
	rinfo, err := client2.Restore(ctx, "mid.snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Jobs != half || rinfo.Now != info.Now {
		t.Fatalf("restore info = %+v, want %+v", rinfo, info)
	}
	for _, j := range trace.Jobs[half:] {
		if _, err := client2.SubmitJob(ctx, specFromJob(j)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := client2.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := offlineReport(t, trace, "SB", 1)
	if got != want {
		t.Fatalf("restored run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// Concurrent submitters and observers hammer the API while rounds are
// active; run under -race. Admissions race for the watermark, so a
// submitter may get 409 (its submit time fell into the virtual past);
// everything accepted must be scheduled and drained.
func TestConcurrentSubmitHammer(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Background SSE consumer.
	events := make(chan int, 1)
	go func() {
		n := 0
		client.Events(ctx, 0, func(seq uint64, e energysched.Event) error {
			n++
			return nil
		})
		events <- n
	}()

	const submitters = 8
	const perSubmitter = 40
	var clock atomic.Int64 // virtual submit-time allocator
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				submit := float64(clock.Add(30))
				spec := energysched.JobSpec{
					Name:           fmt.Sprintf("g%d-%d", g, i),
					CPU:            100 + float64((g+i)%3)*100,
					Mem:            5,
					Duration:       600,
					Submit:         &submit,
					DeadlineFactor: 1.5,
				}
				_, err := client.SubmitJob(ctx, spec)
				var apiErr *energysched.APIError
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict:
					// Lost the watermark race; acceptable.
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}

	// Concurrent observers.
	var owg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/v1/cluster", "/v1/report", "/metrics", "/v1/jobs", "/healthz"} {
		owg.Add(1)
		go func(path string) {
			defer owg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(hs.URL + path)
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	wg.Wait()
	close(stop)
	owg.Wait()

	rep, err := client.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if int64(rep.JobsTotal) != accepted.Load() {
		t.Fatalf("report counts %d jobs, accepted %d", rep.JobsTotal, accepted.Load())
	}
	if rep.JobsCompleted != rep.JobsTotal {
		t.Fatalf("drain left jobs unfinished: %+v", rep)
	}
	cancel()
	select {
	case n := <-events:
		if n == 0 {
			t.Error("SSE consumer saw no events")
		}
	case <-time.After(5 * time.Second):
		t.Error("SSE consumer did not terminate")
	}
}

func TestSubmitValidationAndSealing(t *testing.T) {
	_, _, client := newTestServer(t, Config{Policy: "BF", Seed: 1})
	ctx := context.Background()

	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 0, Duration: 60}); !isStatus(err, 400) {
		t.Errorf("zero-cpu job: %v", err)
	}
	late := 500.0
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 60, Submit: &late}); err != nil {
		t.Fatal(err)
	}
	past := 100.0
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 60, Submit: &past}); !isStatus(err, 409) {
		t.Errorf("past-submit job: %v", err)
	}
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 60}); !isStatus(err, 409) {
		t.Errorf("post-drain job: %v", err)
	}
	if _, err := client.Job(ctx, 999); !isStatus(err, 404) {
		t.Errorf("missing job: %v", err)
	}
	st, err := client.Job(ctx, 0)
	if err != nil || st.State != "completed" {
		t.Errorf("job 0 after drain = %+v, %v", st, err)
	}
}

func isStatus(err error, status int) bool {
	var apiErr *energysched.APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}

func TestClusterAndMetricsEndpoints(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	ctx := context.Background()
	at := 0.0
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 200, Mem: 10, Duration: 1800, Submit: &at}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	cl, err := client.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 100 {
		t.Fatalf("paper fleet has 100 nodes, got %d", len(cl.Nodes))
	}
	if !cl.Done || !cl.Sealed {
		t.Fatalf("cluster status after drain = %+v", cl)
	}
	if cl.TotalWatts <= 0 {
		t.Fatal("no power draw reported")
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE energysched_power_watts gauge",
		"energysched_jobs{fleet=\"default\",state=\"completed\"} 1",
		"# TYPE energysched_solver_rounds_total counter",
		"energysched_jobs_admitted_total{fleet=\"default\"} 1",
		"energysched_fleets 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// Event streaming: the ring replays history to a late subscriber, in
// order, ending with the submitted job's completion.
func TestEventStreamReplay(t *testing.T) {
	_, _, client := newTestServer(t, Config{Policy: "BF", Seed: 1})
	ctx := context.Background()
	at := 0.0
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	errStop := errors.New("saw completion")
	var kinds []string
	var lastSeq uint64
	err := client.Events(ctx, 0, func(seq uint64, e energysched.Event) error {
		if seq <= lastSeq {
			return fmt.Errorf("sequence went backwards: %d after %d", seq, lastSeq)
		}
		lastSeq = seq
		kinds = append(kinds, string(e.Kind))
		if e.Kind == "completed" {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("stream ended without completion event: %v (saw %v)", err, kinds)
	}
	if kinds[0] != "arrival" {
		t.Fatalf("replay did not start with the arrival: %v", kinds)
	}
}

// Real-time pacing: with a huge acceleration, a submitted job finishes
// without any drain call, purely because wall time passes.
func TestRealtimePacing(t *testing.T) {
	_, _, client := newTestServer(t, Config{Policy: "BF", Seed: 1, Pace: 100000})
	ctx := context.Background()
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 300}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := client.Job(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "completed" {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("job did not complete under real-time pacing")
}

// Regression: a job admitted with a submit time beyond the 400-day
// safety horizon must not rewind the virtual clock on drain (which
// used to panic the daemon's progress accounting).
func TestDrainBeyondSafetyHorizon(t *testing.T) {
	_, _, client := newTestServer(t, Config{Policy: "BF", Seed: 1})
	ctx := context.Background()
	far := 500.0 * 24 * 3600 // past the 400-day net
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &far}); err != nil {
		t.Fatal(err)
	}
	rep, err := client.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 1 || rep.SimEnd < far {
		t.Fatalf("far-future drain report = %+v", rep)
	}
}

// --- PR 4: multi-fleet + batched admission + durability ---

// Batched admission: POST /v1/jobs with a JSON array admits the batch
// atomically in one event-loop turn; at max pacing the drained report
// is byte-identical to submitting the same jobs one by one (and to
// the offline run).
func TestBatchAdmissionByteIdenticalToSequential(t *testing.T) {
	trace := paperDayTrace()
	specs := make([]energysched.JobSpec, 0, trace.Len())
	for _, j := range trace.Jobs {
		specs = append(specs, specFromJob(j))
	}
	ctx := context.Background()

	_, hsBatch, clBatch := newTestServer(t, Config{Policy: "SB", Seed: 1})
	sts, err := clBatch.SubmitJobs(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != trace.Len() || sts[len(sts)-1].ID != trace.Len()-1 {
		t.Fatalf("batch admitted %d jobs", len(sts))
	}
	if _, err := clBatch.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	_, hsSeq, clSeq := newTestServer(t, Config{Policy: "SB", Seed: 1})
	for i, spec := range specs {
		if _, err := clSeq.SubmitJob(ctx, spec); err != nil {
			t.Fatalf("sequential submit %d: %v", i, err)
		}
	}
	if _, err := clSeq.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	batchBody := getBody(t, hsBatch.URL+"/v1/report")
	seqBody := getBody(t, hsSeq.URL+"/v1/report")
	if !bytes.Equal(batchBody, seqBody) {
		t.Fatalf("batch report diverged from sequential:\n got %s\nwant %s", batchBody, seqBody)
	}
	want, _ := json.Marshal(offlineReport(t, trace, "SB", 1))
	want = append(want, '\n')
	if !bytes.Equal(batchBody, want) {
		t.Fatalf("batch report diverged from offline:\n got %s\nwant %s", batchBody, want)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// An invalid job anywhere in a batch must reject the whole batch.
func TestBatchAdmissionAtomicRejection(t *testing.T) {
	_, _, client := newTestServer(t, Config{Policy: "BF", Seed: 1})
	ctx := context.Background()
	t0, t1 := 0.0, 30.0
	_, err := client.SubmitJobs(ctx, []energysched.JobSpec{
		{CPU: 100, Mem: 5, Duration: 600, Submit: &t0},
		{CPU: 0, Mem: 5, Duration: 600, Submit: &t1}, // invalid: no CPU
	})
	if !isStatus(err, 400) {
		t.Fatalf("bad batch: %v", err)
	}
	jobs, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("rejected batch left %d jobs admitted", len(jobs))
	}
	// Out-of-order submit times within a batch are rejected up front.
	_, err = client.SubmitJobs(ctx, []energysched.JobSpec{
		{CPU: 100, Mem: 5, Duration: 600, Submit: &t1},
		{CPU: 100, Mem: 5, Duration: 600, Submit: &t0},
	})
	if !isStatus(err, 400) {
		t.Fatalf("out-of-order batch: %v", err)
	}
}

// Fleet registry CRUD, and the PR 3 routes as aliases of the default
// fleet.
func TestFleetRegistryAndAliases(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	ctx := context.Background()

	info, err := client.CreateFleet(ctx, energysched.FleetSpec{ID: "batch", Policy: "BF", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "batch" || info.Policy != "BF" || info.Seed != 3 || info.WAL != nil {
		t.Fatalf("created fleet info = %+v", info)
	}
	if _, err := client.CreateFleet(ctx, energysched.FleetSpec{ID: "batch"}); !isStatus(err, 409) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := client.CreateFleet(ctx, energysched.FleetSpec{ID: "../evil"}); !isStatus(err, 400) {
		t.Errorf("traversal id: %v", err)
	}
	fleets, err := client.Fleets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleets) != 2 || fleets[0].ID != "batch" || fleets[1].ID != "default" {
		t.Fatalf("fleet list = %+v", fleets)
	}

	// The same job admitted through the alias and through the scoped
	// route lands in the same (default) fleet; the "batch" fleet stays
	// empty.
	at := 0.0
	if _, err := client.SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at}); err != nil {
		t.Fatal(err)
	}
	at2 := 30.0
	if _, err := client.Fleet("default").SubmitJob(ctx, energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at2}); err != nil {
		t.Fatal(err)
	}
	d, err := client.GetFleet(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if d.Jobs != 2 {
		t.Fatalf("default fleet has %d jobs, want 2", d.Jobs)
	}
	b, err := client.GetFleet(ctx, "batch")
	if err != nil {
		t.Fatal(err)
	}
	if b.Jobs != 0 {
		t.Fatalf("batch fleet has %d jobs, want 0", b.Jobs)
	}
	aliasBody := getBody(t, hs.URL+"/v1/report")
	scopedBody := getBody(t, hs.URL+"/v1/fleets/default/report")
	if !bytes.Equal(aliasBody, scopedBody) {
		t.Fatalf("alias and scoped report differ:\n%s\n%s", aliasBody, scopedBody)
	}

	if err := client.DeleteFleet(ctx, "batch"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetFleet(ctx, "batch"); !isStatus(err, 404) {
		t.Errorf("deleted fleet still resolves: %v", err)
	}
	if _, err := client.Fleet("batch").Report(ctx); !isStatus(err, 404) {
		t.Errorf("deleted fleet still serves: %v", err)
	}
	if err := client.DeleteFleet(ctx, "nope"); !isStatus(err, 404) {
		t.Errorf("deleting unknown fleet: %v", err)
	}
}

// Multi-fleet isolation under -race: concurrent submitters hammer
// three fleets with different policies and seeds at once; afterwards,
// each fleet's drained report must be byte-identical to a solo
// single-fleet daemon run over the same accepted jobs — concurrency
// across fleets must not leak into any fleet's schedule.
func TestMultiFleetIsolationHammer(t *testing.T) {
	_, hs, client := newTestServer(t, Config{Policy: "SB", Seed: 1})
	ctx := context.Background()
	specs := []energysched.FleetSpec{
		{ID: "sb", Policy: "SB", Seed: 1},
		{ID: "bf", Policy: "BF", Seed: 7},
		{ID: "dbf", Policy: "DBF", Seed: 11},
	}
	for _, fs := range specs {
		if _, err := client.CreateFleet(ctx, fs); err != nil {
			t.Fatal(err)
		}
	}

	const submitters = 4
	const perSubmitter = 30
	var wg sync.WaitGroup
	for _, fs := range specs {
		fc := client.Fleet(fs.ID)
		var clock atomic.Int64 // per-fleet virtual submit-time allocator
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perSubmitter; i++ {
					submit := float64(clock.Add(30))
					spec := energysched.JobSpec{
						CPU: 100 + float64((g+i)%3)*100, Mem: 5, Duration: 900,
						Submit: &submit, DeadlineFactor: 1.5,
					}
					_, err := fc.SubmitJob(ctx, spec)
					var apiErr *energysched.APIError
					if err != nil && !(errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict) {
						t.Errorf("fleet %s submit: %v", fs.ID, err)
						return
					}
				}
			}(g)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("submitters failed")
	}

	for _, fs := range specs {
		fc := client.Fleet(fs.ID)
		// The accepted set, in admission order (= VM-ID order). The
		// watermark race means some submissions got 409; the accepted
		// submit times are non-decreasing by construction, so a solo
		// sequential replay is valid.
		jobs, err := fc.Jobs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) == 0 {
			t.Fatalf("fleet %s accepted no jobs", fs.ID)
		}
		if _, err := fc.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		hammered := getBody(t, hs.URL+"/v1/fleets/"+fs.ID+"/report")

		_, hsSolo, clSolo := newTestServer(t, Config{Policy: fs.Policy, Seed: fs.Seed})
		for _, j := range jobs {
			submit := j.Submit
			if _, err := clSolo.SubmitJob(ctx, energysched.JobSpec{
				CPU: j.CPU, Mem: j.Mem, Duration: j.Duration,
				Submit: &submit, DeadlineFactor: 1.5,
			}); err != nil {
				t.Fatalf("solo replay of fleet %s: %v", fs.ID, err)
			}
		}
		if _, err := clSolo.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		solo := getBody(t, hsSolo.URL+"/v1/report")
		if !bytes.Equal(hammered, solo) {
			t.Fatalf("fleet %s diverged from its solo run:\n got %s\nwant %s", fs.ID, hammered, solo)
		}
	}
}

// Durability through the full server: admit into two fleets (one
// API-created) with a WAL, drop the server without any explicit
// snapshot, restart on the same directory, and finish — the final
// reports must be byte-identical to uninterrupted runs, and recovery
// must replay only the WAL tail.
func TestServerWALRestartReproducesReports(t *testing.T) {
	trace := paperDayTrace()
	half := trace.Len() / 2
	walDir := t.TempDir()
	ctx := context.Background()
	cfg := Config{Policy: "SB", Seed: 1, WALDir: walDir, SnapshotInterval: 16}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	client1 := energysched.NewClient(hs1.URL)
	if _, err := client1.CreateFleet(ctx, energysched.FleetSpec{ID: "second", Policy: "BF", Seed: 5}); err != nil {
		t.Fatal(err)
	}
	for _, j := range trace.Jobs[:half] {
		if _, err := client1.SubmitJob(ctx, specFromJob(j)); err != nil {
			t.Fatal(err)
		}
	}
	secondAt := 0.0
	if _, err := client1.Fleet("second").SubmitJobs(ctx, []energysched.JobSpec{
		{CPU: 200, Mem: 10, Duration: 1800, Submit: &secondAt},
		{CPU: 100, Mem: 5, Duration: 3600, Submit: &secondAt},
	}); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	srv1.Close() // no drain, no snapshot call: only the WAL has the tail

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer func() { hs2.Close(); srv2.Close() }()
	client2 := energysched.NewClient(hs2.URL)

	fleets, err := client2.Fleets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleets) != 2 {
		t.Fatalf("recovered %d fleets, want 2 (default + second): %+v", len(fleets), fleets)
	}
	d, err := client2.GetFleet(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if d.Jobs != half || d.WAL == nil {
		t.Fatalf("default fleet after restart = %+v", d)
	}
	// With compaction every 16 admissions, recovery must have replayed
	// only the tail, not the whole history.
	if d.WAL.Replayed != half%16 {
		t.Fatalf("default fleet replayed %d records, want %d (tail after last snapshot); stats %+v",
			d.WAL.Replayed, half%16, d.WAL)
	}
	sec, err := client2.GetFleet(ctx, "second")
	if err != nil {
		t.Fatal(err)
	}
	if sec.Jobs != 2 || sec.Policy != "BF" || sec.WAL == nil || sec.WAL.Replayed != 2 {
		t.Fatalf("second fleet after restart = %+v (wal %+v)", sec, sec.WAL)
	}

	// Finish the trace on the restarted daemon: byte-identical to the
	// uninterrupted offline run.
	for _, j := range trace.Jobs[half:] {
		if _, err := client2.SubmitJob(ctx, specFromJob(j)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	got := getBody(t, hs2.URL+"/v1/report")
	want, _ := json.Marshal(offlineReport(t, trace, "SB", 1))
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("restarted run diverged from offline:\n got %s\nwant %s", got, want)
	}
}

// --- PR 5: alias-route parity ---

// fetchBody GETs a path and returns status + raw body.
func fetchBody(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// postBody POSTs a payload and returns status + raw body.
func postBody(t *testing.T, base, path, payload string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// readSSETranscript consumes an SSE stream until want events have been
// replayed, returning the raw transcript (ids, event names, data).
func readSSETranscript(t *testing.T, base, path string, want uint64) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var transcript strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var last uint64
	for sc.Scan() {
		line := sc.Text()
		transcript.WriteString(line)
		transcript.WriteByte('\n')
		if strings.HasPrefix(line, "id:") {
			n, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			last = n
		}
		if last >= want && strings.TrimSpace(line) == "" {
			break // final event of the replay fully read
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading %s: %v (after %q)", path, err, transcript.String())
	}
	return transcript.String()
}

// TestAliasRoutesByteIdenticalToNamespaced pins the PR 4 compatibility
// contract from the outside: every PR 3 route (/v1/jobs, /v1/cluster,
// /v1/report, /v1/drain, /v1/jobs/{id}) is an alias of the default
// fleet's namespaced route, returning byte-identical responses —
// including the SSE replay of /v1/events and error bodies.
func TestAliasRoutesByteIdenticalToNamespaced(t *testing.T) {
	srv, hs, _ := newTestServer(t, Config{Policy: "SB", Seed: 1})

	// Mutate through the alias route once: a small batch plus a single
	// submit, then drain through the namespaced route.
	if code, body := postBody(t, hs.URL, "/v1/jobs", `[
		{"cpu_pct":200,"mem_units":10,"duration_s":1200,"submit_s":0},
		{"cpu_pct":100,"mem_units":5,"duration_s":600,"submit_s":60}]`); code != http.StatusAccepted {
		t.Fatalf("batch submit: %d %s", code, body)
	}
	if code, body := postBody(t, hs.URL, "/v1/fleets/default/jobs",
		`{"cpu_pct":100,"mem_units":5,"duration_s":900,"submit_s":120}`); code != http.StatusAccepted {
		t.Fatalf("namespaced submit: %d %s", code, body)
	}
	nsCode, nsDrain := postBody(t, hs.URL, "/v1/fleets/default/drain", "")
	if nsCode != http.StatusOK {
		t.Fatalf("namespaced drain: %d %s", nsCode, nsDrain)
	}
	// The second drain returns the cached final report: the alias body
	// must be byte-identical to the namespaced one.
	if aCode, aDrain := postBody(t, hs.URL, "/v1/drain", ""); aCode != nsCode || aDrain != nsDrain {
		t.Errorf("drain diverged: alias (%d) %q vs namespaced (%d) %q", aCode, aDrain, nsCode, nsDrain)
	}

	// Every read route must return byte-identical bodies on both paths.
	for _, path := range []string{"/jobs", "/jobs/0", "/jobs/99", "/cluster", "/report"} {
		aCode, alias := fetchBody(t, hs.URL, "/v1"+path)
		nCode, namespaced := fetchBody(t, hs.URL, "/v1/fleets/default"+path)
		if aCode != nCode || alias != namespaced {
			t.Errorf("GET %s diverged:\nalias      (%d): %s\nnamespaced (%d): %s", path, aCode, alias, nCode, namespaced)
		}
	}

	// Post-seal submission errors must alias too.
	aCode, alias := postBody(t, hs.URL, "/v1/jobs", `{"cpu_pct":100,"mem_units":5,"duration_s":60}`)
	nCode, namespaced := postBody(t, hs.URL, "/v1/fleets/default/jobs", `{"cpu_pct":100,"mem_units":5,"duration_s":60}`)
	if aCode != http.StatusConflict || aCode != nCode || alias != namespaced {
		t.Errorf("sealed-submit error diverged: alias (%d) %q vs namespaced (%d) %q", aCode, alias, nCode, namespaced)
	}

	// SSE replay: both endpoints must serve the identical transcript of
	// the fleet's whole event history.
	f, err := srv.Manager().Get(DefaultFleet)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Broker().Seq()
	if want == 0 {
		t.Fatal("no events published; replay comparison is vacuous")
	}
	aliasSSE := readSSETranscript(t, hs.URL, "/v1/events?since=0", want)
	namespacedSSE := readSSETranscript(t, hs.URL, "/v1/fleets/default/events?since=0", want)
	if aliasSSE != namespacedSSE {
		t.Errorf("SSE replay diverged:\nalias:\n%s\nnamespaced:\n%s", aliasSSE, namespacedSSE)
	}
	if !strings.Contains(aliasSSE, "event: arrival") || !strings.Contains(aliasSSE, "event: completed") {
		t.Errorf("replay missing lifecycle events:\n%s", aliasSSE)
	}
}

// A malformed shard count in a fleet spec is client error (400), not a
// 500 from deep inside fleet recovery.
func TestFleetCreateRejectsBadShards(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Policy: "BF", Seed: 1})
	code, body := postBody(t, hs.URL, "/v1/fleets", `{"id":"x","shards":-5}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "shards") {
		t.Fatalf("bad-shards create: %d %s, want 400 mentioning shards", code, body)
	}
}

// The -max-fleets 429 must carry a Retry-After header end to end, so
// the client's retry policy backs off instead of hammering the cap.
func TestFleetCapReturnsRetryAfter(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{MaxFleets: 1}) // default fleet fills the cap
	resp, err := http.Post(hs.URL+"/v1/fleets", "application/json",
		strings.NewReader(`{"id":"overflow"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create over cap: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After = %q, want %q", ra, "1")
	}
}
