package replication

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"energysched"
	"energysched/internal/fleet"
	"energysched/internal/metrics"
)

// Follower mirrors every fleet of a leader daemon. It discovers the
// leader's fleets by polling the registry, runs one apply loop per
// fleet — each a resumable replication stream applied through the
// local fleet's event loop — and tracks per-fleet lag and leader
// contact. Promote (operator-driven, or leader-loss detection after a
// grace window) stops the loops, seals catch-up on every fleet, and
// leaves the local state ready to serve.
type Follower struct {
	cfg    Config
	client *energysched.Client
	http   *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	loss   sync.Once

	mu        sync.Mutex
	fleets    map[string]*Position
	loops     map[string]struct{}
	contact   time.Time // last successful leader exchange, any fleet
	connected bool      // ever reached the leader

	// lagHist observes the records-behind-leader lag after each applied
	// record; applyHist observes each record's apply latency in seconds.
	// Both are internally locked and exported by the server's /metrics.
	lagHist   metrics.Histogram
	applyHist metrics.Histogram
}

// Config parameterizes a follower.
type Config struct {
	// Leader is the leader daemon's base URL.
	Leader string
	// Manager is the local fleet registry mirrored fleets live in.
	Manager *fleet.Manager
	// MirrorConfig builds the local configuration for a newly
	// discovered fleet. The replication bootstrap snapshot then adopts
	// the leader's scheduling configuration, so this mostly sets
	// service-level knobs; implementations should force max pacing
	// (Pace 0) so the mirror's clock is driven only by replicated
	// records.
	MirrorConfig func(id string) fleet.Config
	// HTTPClient overrides http.DefaultClient for replication streams.
	HTTPClient *http.Client
	// PollInterval is the fleet-discovery period (default 1s).
	PollInterval time.Duration
	// RetryMin, RetryMax bound the jittered exponential reconnect
	// backoff of each apply loop (defaults 100ms, 2s).
	RetryMin, RetryMax time.Duration
	// Grace, when > 0, arms leader-loss detection: OnLeaderLoss fires
	// once no exchange with the leader has succeeded for this long.
	Grace time.Duration
	// OnLeaderLoss is called (once) from the detection goroutine; the
	// server uses it to auto-promote.
	OnLeaderLoss func()
	// Logf receives follower log lines.
	Logf func(format string, args ...interface{})
}

// Position is one mirrored fleet's replication state.
type Position struct {
	// Gen is the timeline generation the mirror is on.
	Gen int64
	// Applied is the local log offset: records applied so far.
	Applied int64
	// LeaderHead is the leader's last-reported log offset.
	LeaderHead int64
	// LastContact is the last frame received for this fleet.
	LastContact time.Time
}

// Lag is the records the mirror is behind the leader (never negative).
func (p Position) Lag() int64 {
	if l := p.LeaderHead - p.Applied; l > 0 {
		return l
	}
	return 0
}

// NewFollower builds a follower; call Run to start it.
func NewFollower(cfg Config) *Follower {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 100 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		cfg:    cfg,
		client: &energysched.Client{BaseURL: cfg.Leader, HTTPClient: hc, Timeout: 10 * time.Second},
		http:   hc,
		ctx:    ctx,
		cancel: cancel,
		fleets: make(map[string]*Position),
		loops:  make(map[string]struct{}),
	}
}

// Run starts discovery, the apply loops, and — with a grace window —
// leader-loss detection. The grace clock starts now: a follower whose
// leader is already gone still promotes one grace window after start.
func (fw *Follower) Run() {
	fw.mu.Lock()
	fw.contact = time.Now()
	fw.mu.Unlock()
	fw.wg.Add(1)
	go fw.discoverLoop()
	if fw.cfg.Grace > 0 {
		fw.wg.Add(1)
		go fw.graceLoop()
	}
}

// Close stops the follower without promoting.
func (fw *Follower) Close() {
	fw.cancel()
	fw.wg.Wait()
}

// Promote stops replication, waits for the apply loops to settle, and
// seals catch-up on every mirrored fleet — fast-forwarding each to its
// admission watermark exactly like crash recovery does. It returns the
// per-fleet log offsets at promotion.
func (fw *Follower) Promote() (map[string]int64, error) {
	fw.cancel()
	fw.wg.Wait()
	fw.mu.Lock()
	ids := make([]string, 0, len(fw.fleets))
	for id := range fw.fleets {
		ids = append(ids, id)
	}
	fw.mu.Unlock()
	offs := make(map[string]int64, len(ids))
	for _, id := range ids {
		f, err := fw.cfg.Manager.Get(id)
		if err != nil {
			continue // deleted locally; nothing to seal
		}
		off, err := f.SealCatchUp()
		if err != nil {
			return nil, fmt.Errorf("replication: sealing catch-up of %s: %w", id, err)
		}
		offs[id] = off
	}
	return offs, nil
}

// Status returns a copy of every mirrored fleet's position.
func (fw *Follower) Status() map[string]Position {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	out := make(map[string]Position, len(fw.fleets))
	for id, p := range fw.fleets {
		out[id] = *p
	}
	return out
}

// Connected reports whether the follower ever reached the leader.
func (fw *Follower) Connected() bool {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.connected
}

// Ready reports promotion readiness: the leader has been reached and
// every mirrored fleet has completed its handshake (a position with
// generation 0 has not yet seen its hello frame) and is fully caught
// up.
func (fw *Follower) Ready() bool {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if !fw.connected {
		return false
	}
	for _, p := range fw.fleets {
		if p.Gen == 0 || p.Lag() > 0 {
			return false
		}
	}
	return true
}

// MaxLag returns the worst per-fleet lag.
func (fw *Follower) MaxLag() int64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var max int64
	for _, p := range fw.fleets {
		if l := p.Lag(); l > max {
			max = l
		}
	}
	return max
}

// MetricsSamples returns the follower's replication histogram
// families: records-behind-leader lag and per-record apply latency.
func (fw *Follower) MetricsSamples() []metrics.PromSample {
	out := metrics.HistogramSamples("energysched_repl_lag_records",
		"Records behind the leader after each applied record.", nil, &fw.lagHist)
	return append(out, metrics.HistogramSamples("energysched_repl_record_apply_seconds",
		"Per-record apply latency on the follower (stream decode to event-loop apply).", nil, &fw.applyHist)...)
}

// LastContact returns the time of the last successful leader exchange.
func (fw *Follower) LastContact() time.Time {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.contact
}

// --- discovery ---

func (fw *Follower) discoverLoop() {
	defer fw.wg.Done()
	fw.discover() // first poll immediately; then on the ticker
	t := time.NewTicker(fw.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fw.discover()
		case <-fw.ctx.Done():
			return
		}
	}
}

func (fw *Follower) discover() {
	infos, err := fw.client.Fleets(fw.ctx)
	if err != nil {
		if fw.ctx.Err() == nil {
			fw.cfg.Logf("replication: discovering leader fleets: %v", err)
		}
		return
	}
	fw.touch("")
	for _, info := range infos {
		fw.ensureLoop(info.ID)
	}
}

// ensureLoop makes sure a mirrored fleet exists locally and its apply
// loop is running.
func (fw *Follower) ensureLoop(id string) {
	fw.mu.Lock()
	if _, ok := fw.loops[id]; ok {
		fw.mu.Unlock()
		return
	}
	fw.loops[id] = struct{}{}
	fw.fleets[id] = &Position{LastContact: time.Now()}
	fw.mu.Unlock()
	if !fw.cfg.Manager.Has(id) {
		if _, err := fw.cfg.Manager.Create(id, fw.cfg.MirrorConfig(id)); err != nil {
			fw.cfg.Logf("replication: creating mirror fleet %s: %v", id, err)
			fw.mu.Lock()
			delete(fw.loops, id)
			delete(fw.fleets, id)
			fw.mu.Unlock()
			return
		}
	}
	fw.cfg.Logf("replication: mirroring fleet %s", id)
	fw.wg.Add(1)
	go fw.applyLoop(id)
}

// touch records a successful leader exchange, for the named fleet
// ("" = discovery only).
func (fw *Follower) touch(id string) {
	now := time.Now()
	fw.mu.Lock()
	fw.contact = now
	fw.connected = true
	if p, ok := fw.fleets[id]; ok {
		p.LastContact = now
	}
	fw.mu.Unlock()
}

// --- apply loop ---

func (fw *Follower) applyLoop(id string) {
	defer fw.wg.Done()
	backoff := fw.cfg.RetryMin
	for fw.ctx.Err() == nil {
		progressed := fw.syncOnce(id)
		if fw.ctx.Err() != nil {
			return
		}
		if progressed {
			backoff = fw.cfg.RetryMin
		} else if backoff < fw.cfg.RetryMax {
			backoff *= 2
			if backoff > fw.cfg.RetryMax {
				backoff = fw.cfg.RetryMax
			}
		}
		// Full jitter: reconnects of many fleets decorrelate instead
		// of stampeding a restarted leader.
		d := time.Duration(rand.Int63n(int64(backoff))) + 1
		select {
		case <-time.After(d):
		case <-fw.ctx.Done():
			return
		}
	}
}

// syncOnce opens one replication stream for the fleet and applies
// frames until the stream ends. It reports whether any frame was
// processed (resets the reconnect backoff).
func (fw *Follower) syncOnce(id string) (progressed bool) {
	f, err := fw.cfg.Manager.Get(id)
	if err != nil {
		return false // fleet deleted locally; loop will back off
	}
	gen, off, _, err := f.ReplState()
	if err != nil {
		return false
	}
	if off == 0 {
		// Empty timeline: force a snapshot bootstrap so the mirror
		// also adopts the leader's scheduling configuration (a plain
		// offset resume replays records but carries no config).
		gen = -1
	}
	u := fw.cfg.Leader + "/v1/fleets/" + url.PathEscape(id) + "/replicate?gen=" +
		strconv.FormatInt(gen, 10) + "&offset=" + strconv.FormatInt(off, 10)
	req, err := http.NewRequestWithContext(fw.ctx, http.MethodGet, u, nil)
	if err != nil {
		return false
	}
	resp, err := fw.http.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return false
	}
	dec := NewDecoder(resp.Body)
	for {
		frame, err := dec.Next()
		if err != nil {
			// Clean end, torn frame or dropped connection: reconnect
			// and resume at the applied offset either way.
			if err != io.EOF && fw.ctx.Err() == nil {
				fw.cfg.Logf("replication: %s stream: %v", id, err)
			}
			return progressed
		}
		fw.touch(id)
		if !fw.apply(id, f, frame) {
			return progressed
		}
		progressed = true
	}
}

// apply dispatches one frame into the local fleet. A false return
// aborts the stream (the loop reconnects and re-syncs).
func (fw *Follower) apply(id string, f *fleet.Fleet, frame Frame) bool {
	switch frame.Kind {
	case KindHello:
		fw.position(id, func(p *Position) {
			p.Gen = frame.Gen
			p.LeaderHead = frame.Head
		})
	case KindSnapshot:
		if err := f.ApplyReplSnapshot(frame.Snapshot); err != nil {
			fw.cfg.Logf("replication: %s bootstrap: %v", id, err)
			return false
		}
		fw.position(id, func(p *Position) {
			p.Gen = frame.Gen
			p.Applied = frame.Offset
			if frame.Offset > p.LeaderHead {
				p.LeaderHead = frame.Offset
			}
		})
	case KindRecord:
		start := time.Now()
		err := f.ApplyReplRecord(fleet.ReplRecord{Offset: frame.Offset, Now: frame.Now, Data: frame.Record})
		if err != nil {
			// A gap (409) means this stream skipped records — e.g. the
			// leader restarted mid-backlog. Reconnect resumes cleanly.
			fw.cfg.Logf("replication: %s record %d: %v", id, frame.Offset, err)
			return false
		}
		fw.applyHist.ObserveSince(start)
		fw.position(id, func(p *Position) {
			p.Applied = frame.Offset
			if frame.Offset > p.LeaderHead {
				p.LeaderHead = frame.Offset
			}
			fw.lagHist.Observe(float64(p.Lag()))
		})
	case KindPing:
		if err := f.AdvanceTo(frame.Now); err != nil {
			return false
		}
		fw.position(id, func(p *Position) { p.LeaderHead = frame.Head })
	default:
		// Unknown frame kind from a newer leader: ignore, keep reading.
	}
	return true
}

func (fw *Follower) position(id string, update func(p *Position)) {
	fw.mu.Lock()
	if p, ok := fw.fleets[id]; ok {
		update(p)
	}
	fw.mu.Unlock()
}

// --- leader-loss detection ---

func (fw *Follower) graceLoop() {
	defer fw.wg.Done()
	interval := fw.cfg.Grace / 4
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if time.Since(fw.LastContact()) > fw.cfg.Grace {
				fw.cfg.Logf("replication: no leader contact for %s; leader loss", fw.cfg.Grace)
				fw.loss.Do(func() {
					if fw.cfg.OnLeaderLoss != nil {
						// The callback promotes, which cancels fw.ctx and
						// waits for this goroutine — run it detached.
						go fw.cfg.OnLeaderLoss()
					}
				})
				return
			}
		case <-fw.ctx.Done():
			return
		}
	}
}
