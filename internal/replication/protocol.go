// Package replication implements warm-standby high availability for
// energyschedd: a follower daemon continuously mirrors every fleet of
// a leader by streaming the leader's admission log and applying it
// through the same deterministic engine, so promotion lands on state
// byte-identical to the leader's (the same argument that makes crash
// recovery byte-identical — the log IS the state).
//
// The wire protocol is deliberately the WAL's own on-disk framing
// (length prefix + CRC-32C, internal/fleet.EncodeFrame): a torn or
// bit-flipped frame on the wire is detected exactly like a torn WAL
// tail on disk, and the follower reconnects and resumes at its last
// applied record offset. Inside each CRC frame is one JSON Frame:
//
//	hello     stream opening: the fleet's generation, head and clock
//	snapshot  full-state bootstrap (generation mismatch or unservable
//	          offset)
//	record    one admission-log record with the leader's clock
//	ping      keepalive carrying the leader's clock and head, so an
//	          idle follower still tracks lag and virtual time
//
// The stream is a plain chunked HTTP response from
// GET /v1/fleets/{id}/replicate?gen=G&offset=O — resumable by logical
// record offset, which unlike a WAL byte offset never rewinds when
// the leader compacts its log.
package replication

import (
	"encoding/json"
	"fmt"
	"io"

	"energysched/internal/fleet"
)

// Frame kinds.
const (
	KindHello    = "hello"
	KindSnapshot = "snapshot"
	KindRecord   = "record"
	KindPing     = "ping"
)

// Frame is one message of the replication stream.
type Frame struct {
	Kind string `json:"kind"`
	// Gen is the fleet's timeline generation (hello, snapshot).
	Gen int64 `json:"gen,omitempty"`
	// Head is the leader's log offset (hello, ping).
	Head int64 `json:"head,omitempty"`
	// Offset is the log offset after applying this frame (snapshot,
	// record).
	Offset int64 `json:"offset,omitempty"`
	// Now is the leader's virtual clock (hello, record, ping).
	Now float64 `json:"now,omitempty"`
	// Snapshot is the marshaled fleet snapshot (snapshot frames).
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// Record is the marshaled WAL record — the exact bytes the leader
	// appended to its own log (record frames).
	Record json.RawMessage `json:"record,omitempty"`
}

// WriteFrame encodes one frame inside the WAL's CRC framing.
func WriteFrame(w io.Writer, fr Frame) error {
	payload, err := json.Marshal(fr)
	if err != nil {
		return fmt.Errorf("replication: encoding frame: %w", err)
	}
	if _, err := w.Write(fleet.EncodeFrame(payload)); err != nil {
		return fmt.Errorf("replication: writing frame: %w", err)
	}
	return nil
}

// Decoder reads CRC-checked frames off a replication stream.
type Decoder struct {
	fr *fleet.FrameReader
}

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{fr: fleet.NewFrameReader(r)}
}

// Next returns the next frame. io.EOF marks a clean stream end;
// fleet.ErrTornFrame a damaged or half-delivered frame — in both
// cases the caller reconnects and resumes at its applied offset.
func (d *Decoder) Next() (Frame, error) {
	payload, err := d.fr.Next()
	if err != nil {
		return Frame{}, err
	}
	var fr Frame
	if err := json.Unmarshal(payload, &fr); err != nil {
		return Frame{}, fmt.Errorf("replication: decoding frame: %w", err)
	}
	return fr, nil
}
