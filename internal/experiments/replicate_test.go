package experiments

import (
	"math"
	"strings"
	"testing"

	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

func shortGen() workload.GeneratorConfig {
	g := workload.DefaultGeneratorConfig()
	g.Horizon = 6 * 3600
	return g
}

func TestReplicateAggregates(t *testing.T) {
	mk := func() Spec {
		return Spec{Policy: policy.NewBackfilling(), LambdaMin: 30, LambdaMax: 90}
	}
	r, err := Replicate("BF", mk, shortGen(), Seeds(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas != 4 {
		t.Fatalf("replicas = %d", r.Replicas)
	}
	if r.EnergyKWh.Mean <= 0 {
		t.Error("no energy aggregated")
	}
	if r.EnergyKWh.CI95 <= 0 {
		t.Error("no confidence interval with 4 different seeds")
	}
	if r.Satisfaction.Mean < 50 || r.Satisfaction.Mean > 100 {
		t.Errorf("satisfaction mean = %v", r.Satisfaction.Mean)
	}
	if !strings.Contains(r.String(), "BF") {
		t.Errorf("row = %q", r.String())
	}
}

func TestReplicateSingleSeedHasNoCI(t *testing.T) {
	mk := func() Spec {
		return Spec{Policy: policy.NewBackfilling(), LambdaMin: 30, LambdaMax: 90}
	}
	r, err := Replicate("BF", mk, shortGen(), Seeds(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyKWh.CI95 != 0 {
		t.Errorf("CI with one replica = %v", r.EnergyKWh.CI95)
	}
}

func TestReplicateNeedsSeeds(t *testing.T) {
	mk := func() Spec { return Spec{Policy: policy.NewBackfilling()} }
	if _, err := Replicate("x", mk, shortGen(), nil); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Errorf("Seeds(3) = %v", s)
	}
}

func TestStatMath(t *testing.T) {
	var w metrics.Welford
	for _, x := range []float64{10, 12, 14} {
		w.Add(x)
	}
	s := statOf(&w)
	if s.Mean != 12 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample stddev of {10,12,14} = 2; CI95 = 1.96×2/√3 ≈ 2.263.
	if math.Abs(s.Stddev-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", s.Stddev)
	}
	if math.Abs(s.CI95-1.96*2/math.Sqrt(3)) > 1e-9 {
		t.Errorf("CI95 = %v", s.CI95)
	}
}
