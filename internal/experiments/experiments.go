// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV-B and §V), so every published result can be
// regenerated with a single call. The drivers are used by the cmd/
// tools, the benchmark harness and the integration tests.
//
// Index:
//
//	TableI      — virtualized server power usage (§IV-A, Table I)
//	Validation  — simulator validation, real vs simulated power (Fig. 1)
//	LambdaSweep — power and satisfaction over λmin×λmax (Figs. 2 and 3)
//	TableII     — static policies RD/RR/BF/SB0 without migration
//	TableIII    — score-based variants SB0/SB1/SB2 (+ SB2 @ λ 40–90)
//	TableIV     — migration policies DBF/SB (+ SB @ λ 40–90)
//	TableV      — consolidation costs (Ce, Cf) sweep
//
// Every table also has a *Makers variant returning fresh-policy
// constructors, which Replicate uses to aggregate rows over several
// seeds with confidence intervals.
package experiments

import (
	"fmt"

	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

// Seed is the default seed for all experiments.
const Seed int64 = 1

// PaperTrace generates the calibrated synthetic stand-in for the
// paper's Grid5000 week (Monday 2007-10-01).
func PaperTrace() *workload.Trace {
	return workload.MustGenerate(workload.DefaultGeneratorConfig())
}

// ShortTrace generates a one-day variant used by benchmarks and
// integration tests that need fast turnaround.
func ShortTrace() *workload.Trace {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = 24 * 3600
	return workload.MustGenerate(cfg)
}

// Spec describes one table row to execute.
type Spec struct {
	// Label overrides the policy name in the report ("" = policy name).
	Label string
	// Policy is a fresh policy instance for the run.
	Policy policy.Policy
	// LambdaMin, LambdaMax in percent.
	LambdaMin, LambdaMax float64
}

// SpecMaker builds fresh Specs for replicated runs (policies carry
// state and must not be shared across runs).
type SpecMaker struct {
	Label string
	Make  func() Spec
}

// RunSpec executes one row against a trace.
func RunSpec(spec Spec, trace *workload.Trace) (metrics.Report, error) {
	sim, err := datacenter.New(datacenter.Config{
		Trace:     trace,
		Policy:    spec.Policy,
		LambdaMin: spec.LambdaMin,
		LambdaMax: spec.LambdaMax,
		Seed:      Seed,
	})
	if err != nil {
		return metrics.Report{}, err
	}
	rep, err := sim.Run()
	if err != nil {
		return metrics.Report{}, err
	}
	if spec.Label != "" {
		rep.Policy = spec.Label
	}
	return rep, nil
}

// runMakers executes every maker once against a trace.
func runMakers(makers []SpecMaker, trace *workload.Trace) ([]metrics.Report, error) {
	var out []metrics.Report
	for _, m := range makers {
		rep, err := RunSpec(m.Make(), trace)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m.Label, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// ReplicateTable aggregates every row of a table over the given seeds.
func ReplicateTable(makers []SpecMaker, gen workload.GeneratorConfig, seeds []int64) ([]Replication, error) {
	var out []Replication
	for _, m := range makers {
		r, err := Replicate(m.Label, m.Make, gen, seeds)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func sbSpec(label string, cfg core.Config, lmin, lmax float64) SpecMaker {
	return SpecMaker{Label: label, Make: func() Spec {
		return Spec{Label: label, Policy: core.MustScheduler(cfg), LambdaMin: lmin, LambdaMax: lmax}
	}}
}

// TableIIMakers builds the rows of Table II: Random, Round-Robin,
// Backfilling and the basic score-based configuration SB0, all at
// λ = 30–90, without migration.
func TableIIMakers() []SpecMaker {
	return []SpecMaker{
		{Label: "RD", Make: func() Spec {
			return Spec{Policy: policy.NewRandom(Seed), LambdaMin: 30, LambdaMax: 90}
		}},
		{Label: "RR", Make: func() Spec {
			return Spec{Policy: policy.NewRoundRobin(), LambdaMin: 30, LambdaMax: 90}
		}},
		{Label: "BF", Make: func() Spec {
			return Spec{Policy: policy.NewBackfilling(), LambdaMin: 30, LambdaMax: 90}
		}},
		sbSpec("SB0", core.SB0Config(), 30, 90),
	}
}

// TableII reproduces "scheduling results of policies without
// migration".
func TableII(trace *workload.Trace) ([]metrics.Report, error) {
	return runMakers(TableIIMakers(), trace)
}

// TableIIIMakers builds the virtualization-overhead ablation rows:
// SB0 (power scores only), SB1 (+ creation/migration costs), SB2
// (+ concurrency), and SB2 rerun with the more aggressive λ = 40–90
// that its better SLA headroom allows.
func TableIIIMakers() []SpecMaker {
	return []SpecMaker{
		sbSpec("SB0", core.SB0Config(), 30, 90),
		sbSpec("SB1", core.SB1Config(), 30, 90),
		sbSpec("SB2", core.SB2Config(), 30, 90),
		sbSpec("SB2", core.SB2Config(), 40, 90),
	}
}

// TableIII reproduces the score-variant ablation.
func TableIII(trace *workload.Trace) ([]metrics.Report, error) {
	return runMakers(TableIIIMakers(), trace)
}

// TableIVMakers builds the migration-policy comparison: Dynamic
// Backfilling versus the full score-based policy, plus the
// aggressive-λ variant that yields the paper's headline 15 % saving.
func TableIVMakers() []SpecMaker {
	return []SpecMaker{
		{Label: "DBF", Make: func() Spec {
			return Spec{Policy: policy.NewDynamicBackfilling(), LambdaMin: 30, LambdaMax: 90}
		}},
		sbSpec("SB", core.SBConfig(), 30, 90),
		sbSpec("SB", core.SBConfig(), 40, 90),
	}
}

// TableIV reproduces the migration comparison.
func TableIV(trace *workload.Trace) ([]metrics.Report, error) {
	return runMakers(TableIVMakers(), trace)
}

// TableVMakers builds the consolidation-cost sweep: no empty-host
// penalty (Ce = 0, which should barely migrate), the paper's typical
// values (20/40), and an aggressive configuration (60/100) that
// over-migrates with diminishing returns.
func TableVMakers() []SpecMaker {
	mk := func(ce, cf float64) core.Config {
		cfg := core.SBConfig()
		cfg.Cempty = ce
		cfg.Cfill = cf
		return cfg
	}
	return []SpecMaker{
		sbSpec("SB-0/40", mk(0, 40), 30, 90),
		sbSpec("SB-20/40", mk(20, 40), 30, 90),
		sbSpec("SB-60/100", mk(60, 100), 30, 90),
	}
}

// TableV reproduces the consolidation-cost sweep.
func TableV(trace *workload.Trace) ([]metrics.Report, error) {
	return runMakers(TableVMakers(), trace)
}
