package experiments

import (
	"fmt"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

// SweepPoint is one (λmin, λmax) cell of Figures 2 and 3.
type SweepPoint struct {
	LambdaMin, LambdaMax float64
	// PowerKWh is the total consumption (Fig. 2's z-axis).
	PowerKWh float64
	// Satisfaction is mean client satisfaction S (Fig. 3's z-axis).
	Satisfaction float64
	// AvgWorking, AvgOnline document the consolidation level.
	AvgWorking, AvgOnline float64
}

// SweepConfig parameterizes the λ grid. The paper sweeps λmax from 20
// to 100 and λmin from 10 to 90 (only combinations with
// λmin < λmax are meaningful).
type SweepConfig struct {
	LambdaMins []float64 // percent
	LambdaMaxs []float64 // percent
	// Policy names the scheduler to sweep ("SB" in the paper — "the
	// one that makes a more aggressive consolidation").
	Policy string
	// Shards selects the score-based solver's sharded parallel round
	// engine (0 = serial, -1 = GOMAXPROCS, K >= 1 = K shards). Sweep
	// results are byte-identical at any setting; large grids just
	// finish sooner. Ignored by the baseline policies.
	Shards int
	// Classes overrides the fleet (nil = the paper's 100 nodes), so
	// grids can sweep 10k-node heterogeneous scale scenarios.
	Classes []cluster.Class
	// Source, when non-nil, streams a fresh copy of the workload for
	// each grid cell instead of the materialized trace argument —
	// week-long scale traces then sweep in O(1) memory per cell.
	Source func() (workload.JobSource, error)
}

// DefaultSweepConfig returns the paper's grid.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		LambdaMins: []float64{10, 20, 30, 40, 50, 60, 70, 80, 90},
		LambdaMaxs: []float64{20, 30, 40, 50, 60, 70, 80, 90, 100},
		Policy:     "SB",
	}
}

// LambdaSweep runs the grid, skipping infeasible cells (λmin >= λmax)
// which are returned with NaN-free zero values and Skipped = true in
// the point list via omission. Points are ordered λmax-major to match
// the paper's surface plots.
func LambdaSweep(cfg SweepConfig, trace *workload.Trace) ([]SweepPoint, error) {
	if trace == nil && cfg.Source == nil {
		return nil, fmt.Errorf("experiments: sweep needs a trace or a streaming source")
	}
	var out []SweepPoint
	for _, lmax := range cfg.LambdaMaxs {
		for _, lmin := range cfg.LambdaMins {
			if lmin >= lmax {
				continue
			}
			pol, err := newSweepPolicy(cfg.Policy, cfg.Shards)
			if err != nil {
				return nil, err
			}
			dcfg := datacenter.Config{
				Policy:    pol,
				Classes:   cfg.Classes,
				LambdaMin: lmin,
				LambdaMax: lmax,
				Seed:      Seed,
			}
			if cfg.Source == nil {
				dcfg.Trace = trace
			}
			sim, err := datacenter.New(dcfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep λ=%v-%v: %w", lmin, lmax, err)
			}
			var rep metrics.Report
			if cfg.Source != nil {
				src, err := cfg.Source()
				if err != nil {
					return nil, fmt.Errorf("experiments: sweep λ=%v-%v: %w", lmin, lmax, err)
				}
				rep, err = sim.RunSource(src)
				if err != nil {
					return nil, fmt.Errorf("experiments: sweep λ=%v-%v: %w", lmin, lmax, err)
				}
			} else if rep, err = sim.Run(); err != nil {
				return nil, fmt.Errorf("experiments: sweep λ=%v-%v: %w", lmin, lmax, err)
			}
			out = append(out, SweepPoint{
				LambdaMin:    lmin,
				LambdaMax:    lmax,
				PowerKWh:     rep.EnergyKWh,
				Satisfaction: rep.Satisfaction,
				AvgWorking:   rep.AvgWorking,
				AvgOnline:    rep.AvgOnline,
			})
		}
	}
	return out, nil
}

func newSweepPolicy(name string, shards int) (policy.Policy, error) {
	mk := func(c core.Config) (policy.Policy, error) {
		c.Shards = shards
		return core.NewScheduler(c)
	}
	switch name {
	case "", "SB":
		return mk(core.SBConfig())
	case "SB2":
		return mk(core.SB2Config())
	case "BF":
		return policy.NewBackfilling(), nil
	case "DBF":
		return policy.NewDynamicBackfilling(), nil
	default:
		return nil, fmt.Errorf("experiments: unsupported sweep policy %q", name)
	}
}
