package experiments

import (
	"math"
	"testing"

	"energysched/internal/metrics"
	"energysched/internal/workload"
)

// The experiment tests run on the one-day trace to stay fast; the
// full-week paper comparisons live in EXPERIMENTS.md and the
// benchmarks. What must hold on any trace is the *shape*: who wins
// and in which direction each mechanism pushes.

func day(t *testing.T) *workload.Trace {
	t.Helper()
	return ShortTrace()
}

func find(rows []metrics.Report, label string, lambdaMin float64) metrics.Report {
	for _, r := range rows {
		if r.Policy == label && (lambdaMin == 0 || r.LambdaMin == lambdaMin) {
			return r
		}
	}
	return metrics.Report{}
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableII(day(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	rd, rr := find(rows, "RD", 0), find(rows, "RR", 0)
	bf, sb0 := find(rows, "BF", 0), find(rows, "SB0", 0)

	// Non-consolidating policies lose on power...
	if rd.EnergyKWh <= bf.EnergyKWh || rr.EnergyKWh <= bf.EnergyKWh {
		t.Errorf("RD/RR power (%v/%v) should exceed BF (%v)",
			rd.EnergyKWh, rr.EnergyKWh, bf.EnergyKWh)
	}
	// ...and on satisfaction.
	if rd.Satisfaction >= bf.Satisfaction || rr.Satisfaction >= bf.Satisfaction {
		t.Errorf("RD/RR satisfaction (%v/%v) should trail BF (%v)",
			rd.Satisfaction, rr.Satisfaction, bf.Satisfaction)
	}
	// SB0 behaves like Backfilling (within a few percent).
	if math.Abs(sb0.EnergyKWh-bf.EnergyKWh)/bf.EnergyKWh > 0.08 {
		t.Errorf("SB0 (%v) should track BF (%v)", sb0.EnergyKWh, bf.EnergyKWh)
	}
	// All complete the same work.
	for _, r := range rows {
		if r.JobsCompleted != r.JobsTotal {
			t.Errorf("%s completed %d/%d", r.Policy, r.JobsCompleted, r.JobsTotal)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	rows, err := TableIII(day(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// None of the static score variants migrates.
	for _, r := range rows {
		if r.Migrations != 0 {
			t.Errorf("%s migrated %d times without migration support", r.Policy, r.Migrations)
		}
	}
	// The aggressive λ run of SB2 saves substantial power vs λ 30-90.
	sb2 := find(rows, "SB2", 30)
	sb2a := find(rows, "SB2", 40)
	if sb2a.EnergyKWh >= sb2.EnergyKWh {
		t.Errorf("SB2 λ40-90 (%v) should beat λ30-90 (%v)", sb2a.EnergyKWh, sb2.EnergyKWh)
	}
	// While keeping satisfaction in the high-90s band.
	if sb2a.Satisfaction < 90 {
		t.Errorf("SB2 λ40-90 satisfaction collapsed: %v", sb2a.Satisfaction)
	}
}

func TestTableIVShape(t *testing.T) {
	rows, err := TableIV(day(t))
	if err != nil {
		t.Fatal(err)
	}
	dbf := find(rows, "DBF", 0)
	sb := find(rows, "SB", 30)
	sbA := find(rows, "SB", 40)

	// The score-based policy beats DBF on power.
	if sb.EnergyKWh >= dbf.EnergyKWh {
		t.Errorf("SB (%v) should consume less than DBF (%v)", sb.EnergyKWh, dbf.EnergyKWh)
	}
	// Both migrate; the aggressive-λ SB run is the paper's headline.
	if sb.Migrations == 0 || dbf.Migrations == 0 {
		t.Errorf("migration counts: SB %d, DBF %d", sb.Migrations, dbf.Migrations)
	}
	if sbA.EnergyKWh >= sb.EnergyKWh {
		t.Errorf("SB λ40-90 (%v) should beat λ30-90 (%v)", sbA.EnergyKWh, sb.EnergyKWh)
	}
}

func TestTableVShape(t *testing.T) {
	rows, err := TableV(day(t))
	if err != nil {
		t.Fatal(err)
	}
	noCe := find(rows, "SB-0/40", 0)
	mid := find(rows, "SB-20/40", 0)
	agg := find(rows, "SB-60/100", 0)

	// Without the empty-host penalty consolidation barely migrates.
	if noCe.Migrations > mid.Migrations/4 {
		t.Errorf("Ce=0 migrated %d times, mid %d — should be near zero", noCe.Migrations, mid.Migrations)
	}
	// Aggressive parameters migrate the most.
	if agg.Migrations <= mid.Migrations {
		t.Errorf("aggressive (%d) should migrate more than typical (%d)", agg.Migrations, mid.Migrations)
	}
	// And the no-penalty variant has the worst power of the three.
	if noCe.EnergyKWh <= mid.EnergyKWh {
		t.Errorf("Ce=0 (%v) should consume more than typical (%v)", noCe.EnergyKWh, mid.EnergyKWh)
	}
}

func TestLambdaSweepTrends(t *testing.T) {
	cfg := SweepConfig{
		LambdaMins: []float64{10, 30, 50},
		LambdaMaxs: []float64{60, 90},
		Policy:     "SB",
	}
	points, err := LambdaSweep(cfg, day(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	// Fig. 2's headline trend: at fixed λmax, higher λmin (earlier
	// shutdowns) means less power.
	get := func(lmin, lmax float64) SweepPoint {
		for _, p := range points {
			if p.LambdaMin == lmin && p.LambdaMax == lmax {
				return p
			}
		}
		t.Fatalf("point %v/%v missing", lmin, lmax)
		return SweepPoint{}
	}
	if get(50, 90).PowerKWh >= get(10, 90).PowerKWh {
		t.Errorf("aggressive λmin should save power: %v vs %v",
			get(50, 90).PowerKWh, get(10, 90).PowerKWh)
	}
	// Fig. 3's trend: the conservative corner has at least the
	// satisfaction of the aggressive corner.
	if get(10, 60).Satisfaction < get(50, 90).Satisfaction-0.5 {
		t.Errorf("conservative corner S (%v) below aggressive corner (%v)",
			get(10, 60).Satisfaction, get(50, 90).Satisfaction)
	}
	for _, p := range points {
		if p.Satisfaction < 0 || p.Satisfaction > 100 || p.PowerKWh <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestLambdaSweepSkipsInfeasible(t *testing.T) {
	cfg := SweepConfig{LambdaMins: []float64{50}, LambdaMaxs: []float64{30}, Policy: "BF"}
	points, err := LambdaSweep(cfg, day(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatalf("infeasible cells produced points: %+v", points)
	}
}

func TestLambdaSweepUnknownPolicy(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Policy = "nonsense"
	cfg.LambdaMins, cfg.LambdaMaxs = []float64{30}, []float64{90}
	if _, err := LambdaSweep(cfg, day(t)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.MeasuredWatts-r.PaperWatts) > 2 {
			t.Errorf("%s: measured %.1f W vs paper %.0f W", r.Config, r.MeasuredWatts, r.PaperWatts)
		}
	}
}

func TestValidationMatchesPaperShape(t *testing.T) {
	v, err := Validation()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: −2.4 % total error; we accept the same sign and order.
	if v.ErrorPct > 0.5 || v.ErrorPct < -6 {
		t.Errorf("total error = %.2f%%, want a small underestimate (paper −2.4%%)", v.ErrorPct)
	}
	// Instantaneous error of the paper's order (8.62 ± 8.06 W).
	if v.InstMeanErr < 2 || v.InstMeanErr > 20 {
		t.Errorf("instantaneous error = %.2f W, want single-digit-ish", v.InstMeanErr)
	}
	if len(v.Real) != int(1300) || len(v.Sim) != len(v.Real) {
		t.Errorf("trace lengths: real %d, sim %d", len(v.Real), len(v.Sim))
	}
	// Both totals in the paper's ~100 Wh regime.
	if v.RealWh < 80 || v.RealWh > 120 || v.SimWh < 80 || v.SimWh > 120 {
		t.Errorf("totals: real %.1f Wh, sim %.1f Wh", v.RealWh, v.SimWh)
	}
}

func TestPaperTraceCalibration(t *testing.T) {
	tr := PaperTrace()
	cpuh := tr.TotalCPUHours()
	if cpuh < 4500 || cpuh > 7500 {
		t.Errorf("paper trace = %.0f CPU-h, want ≈6055 (paper)", cpuh)
	}
}
