package experiments

import (
	"fmt"
	"math"

	"energysched/internal/cluster"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/power"
	"energysched/internal/testbed"
	"energysched/internal/workload"
)

// PowerRow is one measurement of Table I.
type PowerRow struct {
	// Config describes the VM mix, in the paper's notation ("1+2"
	// means one 1-VCPU VM plus one 2-VCPU VM).
	Config string
	// CPUs is the per-VM sustained CPU in percent.
	CPUs []float64
	// PaperWatts is the value published in Table I.
	PaperWatts float64
	// MeasuredWatts is the reference machine's reading.
	MeasuredWatts float64
}

// TableI measures the virtualized server power usage for the paper's
// eight VM configurations on the reference machine.
func TableI() []PowerRow {
	m := testbed.PaperMachine()
	m.BackgroundWatts = 0 // Table I isolates the steady CPU curve
	m.BackgroundBaseWatts = 0
	rows := []PowerRow{
		{Config: "1 x 100%", CPUs: []float64{100}, PaperWatts: 259},
		{Config: "2 x 200%", CPUs: []float64{200}, PaperWatts: 273},
		{Config: "3 x 300%", CPUs: []float64{300}, PaperWatts: 291},
		{Config: "4 x 400%", CPUs: []float64{400}, PaperWatts: 304},
		{Config: "1+1 (2x100%)", CPUs: []float64{100, 100}, PaperWatts: 273},
		{Config: "1+2 (100%+200%)", CPUs: []float64{100, 200}, PaperWatts: 291},
		{Config: "1+1+1+1 (4x100%)", CPUs: []float64{100, 100, 100, 100}, PaperWatts: 304},
		{Config: "1+1+1+1 (4x0%)", CPUs: []float64{0, 0, 0, 0}, PaperWatts: 230},
	}
	for i := range rows {
		rows[i].MeasuredWatts = m.SteadyWatts(rows[i].CPUs, 120, Seed+int64(i))
	}
	return rows
}

// ValidationResult is the outcome of the Fig. 1 experiment.
type ValidationResult struct {
	// RealWh and SimWh are total energies over the 1300 s run; the
	// paper reports 99.9 Wh real vs 97.5 Wh simulated (−2.4 %).
	RealWh, SimWh float64
	// ErrorPct is (SimWh − RealWh) / RealWh × 100.
	ErrorPct float64
	// InstMeanErr / InstStddev are the instantaneous absolute error
	// statistics (paper: 8.62 W mean, 8.06 W stddev).
	InstMeanErr, InstStddev float64
	// Real and Sim are the 1 Hz traces for plotting.
	Real, Sim []testbed.Sample
}

// Validation runs the paper's 7-task 1300 s validation workload on
// both sides: the high-resolution noisy reference machine ("real")
// and the coarse event-driven datacenter simulator ("simulated"),
// then compares the traces as §IV-B does.
func Validation() (ValidationResult, error) {
	tasks := testbed.PaperValidationTasks()
	horizon := testbed.ValidationHorizon

	// Real side: 1 Hz reference trace.
	machine := testbed.PaperMachine()
	real := machine.Run(tasks, horizon, Seed)

	// Simulated side: the same workload through the event-driven
	// simulator, on a single always-on node with the same class.
	trace := &workload.Trace{}
	for i, t := range tasks {
		trace.Jobs = append(trace.Jobs, workload.Job{
			ID:             i,
			Name:           t.Name,
			Submit:         t.Start,
			Duration:       t.Duration,
			CPU:            t.CPU,
			Mem:            10,
			DeadlineFactor: 10, // QoS is not the subject here
		})
	}
	classes := []cluster.Class{{
		Name: "testbed", Count: 1,
		CPU: machine.CPU, Mem: 100,
		CreateCost:  machine.CreationMean,
		MigrateCost: 60,
		BootTime:    100,
		Arch:        "x86_64", Hypervisor: "xen",
		Reliability: 1,
		Power:       power.PaperTableI(),
	}}

	var times, watts []float64
	sim, err := datacenter.New(datacenter.Config{
		Classes:     classes,
		Trace:       trace,
		Policy:      policy.NewBackfilling(),
		LambdaMin:   30,
		LambdaMax:   90,
		Seed:        Seed,
		StartOnline: true,
		MaxTime:     horizon,
	})
	if err != nil {
		return ValidationResult{}, err
	}
	sim.PowerTrace = func(t, w float64) {
		times = append(times, t)
		watts = append(watts, w)
	}
	if _, err := sim.Run(); err != nil {
		return ValidationResult{}, err
	}
	if len(times) == 0 {
		return ValidationResult{}, fmt.Errorf("experiments: validation produced no power samples")
	}

	// Resample the piecewise-constant simulator trace at 1 Hz and
	// compare.
	var simTrace []testbed.Sample
	var errAgg metrics.Welford
	for i, r := range real {
		w := testbed.ResampleAt(times, watts, r.Time)
		simTrace = append(simTrace, testbed.Sample{Time: r.Time, Watts: w})
		errAgg.Add(math.Abs(w - r.Watts))
		_ = i
	}
	realWh := testbed.TotalWh(real)
	simWh := testbed.TotalWh(simTrace)
	return ValidationResult{
		RealWh:      realWh,
		SimWh:       simWh,
		ErrorPct:    (simWh - realWh) / realWh * 100,
		InstMeanErr: errAgg.Mean(),
		InstStddev:  errAgg.Stddev(),
		Real:        real,
		Sim:         simTrace,
	}, nil
}
