package experiments

import (
	"fmt"
	"math"

	"energysched/internal/metrics"
	"energysched/internal/workload"
)

// Stat is a replicated metric: mean over seeds with a 95 % confidence
// half-width (normal approximation; with the recommended 5–10
// replicas this is within a few percent of the t-quantile).
type Stat struct {
	Mean, Stddev, CI95 float64
}

func statOf(w *metrics.Welford) Stat {
	n := float64(w.N())
	ci := 0.0
	if n > 1 {
		// Sample stddev from the population variance Welford keeps.
		sd := w.Stddev() * math.Sqrt(n/(n-1))
		ci = 1.96 * sd / math.Sqrt(n)
		return Stat{Mean: w.Mean(), Stddev: sd, CI95: ci}
	}
	return Stat{Mean: w.Mean()}
}

// String renders "mean ± ci".
func (s Stat) String() string { return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.CI95) }

// Replication aggregates one experiment row over several seeds: both
// the workload trace and the simulator's stochastic draws change per
// seed, so the intervals reflect full run-to-run variability.
type Replication struct {
	Label        string
	Replicas     int
	EnergyKWh    Stat
	Satisfaction Stat
	Delay        Stat
	Migrations   Stat
	AvgOnline    Stat
	AvgWorking   Stat
}

// String renders the row for reports.
func (r Replication) String() string {
	return fmt.Sprintf("%-9s n=%d  Pwr %s kWh  S %s %%  delay %s %%  mig %s  ON %s",
		r.Label, r.Replicas, r.EnergyKWh, r.Satisfaction, r.Delay, r.Migrations, r.AvgOnline)
}

// Replicate runs the spec produced by mkSpec once per seed, each time
// on a freshly generated trace with that seed, and aggregates the
// paper's metrics. mkSpec must return a fresh policy every call —
// policies carry state across rounds and must not be shared between
// runs.
func Replicate(label string, mkSpec func() Spec, gen workload.GeneratorConfig, seeds []int64) (Replication, error) {
	if len(seeds) == 0 {
		return Replication{}, fmt.Errorf("experiments: no seeds")
	}
	var energy, sat, delay, mig, online, working metrics.Welford
	for _, seed := range seeds {
		g := gen
		g.Seed = seed
		trace, err := workload.Generate(g)
		if err != nil {
			return Replication{}, err
		}
		rep, err := RunSpec(mkSpec(), trace)
		if err != nil {
			return Replication{}, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		energy.Add(rep.EnergyKWh)
		sat.Add(rep.Satisfaction)
		delay.Add(rep.Delay)
		mig.Add(float64(rep.Migrations))
		online.Add(rep.AvgOnline)
		working.Add(rep.AvgWorking)
	}
	return Replication{
		Label:        label,
		Replicas:     len(seeds),
		EnergyKWh:    statOf(&energy),
		Satisfaction: statOf(&sat),
		Delay:        statOf(&delay),
		Migrations:   statOf(&mig),
		AvgOnline:    statOf(&online),
		AvgWorking:   statOf(&working),
	}, nil
}

// Seeds returns the canonical seed list 1..n.
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}
