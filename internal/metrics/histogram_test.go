package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// TestHistBoundsLogLinear pins the bucket layout: strictly ascending,
// nine linear steps per decade, from 1µs to 900s.
func TestHistBoundsLogLinear(t *testing.T) {
	b := HistBounds()
	if len(b) != histBuckets {
		t.Fatalf("%d bounds, want %d", len(b), histBuckets)
	}
	if b[0] != 1e-6 {
		t.Errorf("first bound %g, want 1e-6", b[0])
	}
	if b[len(b)-1] != 900 {
		t.Errorf("last bound %g, want 900", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	// Within a decade the steps are linear: b[i+1]-b[i] constant.
	for d := 0; d < histDecades; d++ {
		base := d * histLinear
		step := b[base+1] - b[base]
		for i := base + 1; i < base+histLinear-1; i++ {
			if diff := b[i+1] - b[i]; math.Abs(diff-step) > 1e-9*step {
				t.Fatalf("decade %d not linear: step %g vs %g", d, diff, step)
			}
		}
	}
}

// TestBucketForBoundaries: every bound maps to its own bucket (bounds
// are inclusive upper edges), and a value just past a bound maps to
// the next bucket.
func TestBucketForBoundaries(t *testing.T) {
	b := HistBounds()
	for i, bound := range b {
		if got := bucketFor(bound); got != i {
			t.Errorf("bucketFor(%g) = %d, want %d", bound, got, i)
		}
		if got := bucketFor(bound * 1.0001); got != i+1 {
			t.Errorf("bucketFor(%g+) = %d, want %d", bound, got, i+1)
		}
	}
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d", got)
	}
	if got := bucketFor(1e9); got != histBuckets {
		t.Errorf("bucketFor(1e9) = %d, want overflow %d", got, histBuckets)
	}
}

// Property: bucketFor agrees with the naive linear scan for any value.
func TestBucketForMatchesScanProperty(t *testing.T) {
	b := HistBounds()
	naive := func(v float64) int {
		for i, bound := range b {
			if v <= bound {
				return i
			}
		}
		return histBuckets
	}
	f := func(raw uint32) bool {
		// Spread raw over ~12 orders of magnitude.
		v := math.Pow(10, float64(raw%1200)/100-8)
		return bucketFor(v) == naive(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Error("empty histogram not zero")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramOneSample(t *testing.T) {
	var h Histogram
	h.Observe(0.0042)
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 0.0042 {
		t.Errorf("max %v", h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		// A single sample must be reported from its own bucket, clamped
		// to the sample: (0.003, 0.0042].
		if got <= 0.003 || got > 0.0042 {
			t.Errorf("one-sample Quantile(%v) = %v, want in (0.003, 0.0042]", q, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples spread evenly at exact bucket bounds 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	type tc struct{ q, lo, hi float64 }
	for _, c := range []tc{
		{0.5, 0.04, 0.06}, // true p50 = 50ms
		{0.9, 0.08, 0.1},  // true p90 = 90ms
		{0.99, 0.09, 0.1}, // true p99 = 99ms
		{1, 0.1, 0.1},     // p100 clamps to max
	} {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Errorf("Quantile(1) = %v, want max %v", got, h.Max())
	}
}

// Property: quantiles are monotone in q and bounded by [0, Max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var h Histogram
		for _, r := range raw {
			h.Observe(float64(r) * 1e-5)
		}
		qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		prev := -1.0
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev || v < 0 || v > h.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := 0; i < 50; i++ {
		v := float64(i+1) * 1e-4
		a.Observe(v)
		both.Observe(v)
	}
	for i := 0; i < 50; i++ {
		v := float64(i+1) * 1e-2
		b.Observe(v)
		both.Observe(v)
	}
	a.Merge(&b)
	sa, sb := a.Snapshot(), both.Snapshot()
	if sa.Count != sb.Count || sa.Max != sb.Max || math.Abs(sa.Sum-sb.Sum) > 1e-9 {
		t.Fatalf("merge mismatch: %+v vs %+v", sa, sb)
	}
	for i := range sa.Counts {
		if sa.Counts[i] != sb.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, sa.Counts[i], sb.Counts[i])
		}
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	before := a.Snapshot()
	a.Merge(&empty)
	after := a.Snapshot()
	if before.Count != after.Count || before.Sum != after.Sum {
		t.Error("merging empty histogram changed state")
	}
}

// TestHistogramSamples: the Prometheus rendering is cumulative, ends
// at +Inf == count, and carries the extra labels on every line.
func TestHistogramSamples(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1e-5, 1e-3, 1e-3, 5, 1e4} {
		h.Observe(v)
	}
	samples := HistogramSamples("es_lat_seconds", "latency", map[string]string{"fleet": "a"}, &h)
	var infVal float64
	prevCum := -1.0
	prevLe := math.Inf(-1)
	buckets := 0
	for _, s := range samples {
		if s.Name != "es_lat_seconds" || s.Kind != PromHistogram {
			t.Fatalf("bad sample family: %+v", s)
		}
		switch s.Suffix {
		case "_bucket":
			buckets++
			if s.Labels["fleet"] != "a" {
				t.Fatalf("bucket lost label: %+v", s)
			}
			le := math.Inf(1)
			if s.Labels["le"] != "+Inf" {
				var err error
				if le, err = parseFloat(s.Labels["le"]); err != nil {
					t.Fatalf("bad le %q", s.Labels["le"])
				}
			} else {
				infVal = s.Value
			}
			if le <= prevLe {
				t.Fatalf("le not ascending: %v after %v", le, prevLe)
			}
			if s.Value < prevCum {
				t.Fatalf("bucket counts not cumulative at le=%v", le)
			}
			prevLe, prevCum = le, s.Value
		case "_count":
			if s.Value != 5 {
				t.Errorf("_count = %v", s.Value)
			}
		case "_sum":
			if math.Abs(s.Value-(1e-5+2e-3+5+1e4)) > 1e-9 {
				t.Errorf("_sum = %v", s.Value)
			}
		}
	}
	if buckets != histBuckets+1 {
		t.Errorf("%d bucket lines, want %d", buckets, histBuckets+1)
	}
	if infVal != 5 {
		t.Errorf("+Inf bucket = %v, want 5 (the 1e4 sample overflows)", infVal)
	}

	// The rendered family must survive WriteProm with one header.
	var buf strings.Builder
	if err := WriteProm(&buf, samples); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE es_lat_seconds histogram") != 1 {
		t.Errorf("histogram header count wrong:\n%s", out)
	}
	if !strings.Contains(out, `es_lat_seconds_bucket{fleet="a",le="+Inf"} 5`) {
		t.Errorf("missing +Inf bucket line:\n%s", out)
	}
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
