package metrics

import "fmt"

// Report is one row of the paper's result tables: the outcome of one
// complete simulation run under one policy configuration.
type Report struct {
	// Policy is the configuration label (RD, RR, BF, SB0, ...).
	Policy string
	// LambdaMin, LambdaMax are the turn-on/off thresholds (percent).
	LambdaMin, LambdaMax float64

	// AvgWorking is the time-averaged number of working nodes.
	AvgWorking float64
	// AvgOnline is the time-averaged number of powered-on nodes.
	AvgOnline float64
	// CPUHours is the total CPU work executed (CPU·h).
	CPUHours float64
	// EnergyKWh is total datacenter consumption over the run.
	EnergyKWh float64
	// Satisfaction is mean client satisfaction S (percent).
	Satisfaction float64
	// Delay is mean execution delay (percent).
	Delay float64
	// Migrations counts completed live migrations.
	Migrations int

	// JobsCompleted / JobsTotal give completion accounting.
	JobsCompleted, JobsTotal int
	// Failures counts node failures injected.
	Failures int
	// SimEnd is the virtual time the run finished at (seconds).
	SimEnd float64
}

// String renders the row roughly as the paper's tables do.
func (r Report) String() string {
	return fmt.Sprintf("%-6s λ=%2.0f-%2.0f  Work/ON %5.1f /%5.1f  CPU %8.1f h  Pwr %7.1f kWh  S %5.1f%%  delay %5.1f%%  mig %4d",
		r.Policy, r.LambdaMin, r.LambdaMax, r.AvgWorking, r.AvgOnline,
		r.CPUHours, r.EnergyKWh, r.Satisfaction, r.Delay, r.Migrations)
}

// TableHeader is the column header matching String's layout.
func TableHeader() string {
	return fmt.Sprintf("%-6s %-7s  %-14s  %-10s  %-11s  %-7s  %-10s  %s",
		"policy", "lambda", "Work/ON", "CPU (h)", "Pwr (kWh)", "S (%)", "delay (%)", "Mig")
}
