package metrics

import (
	"math"
	"testing"
)

// TestHistogramSamplesInfBucketExplicit pins the exposition contract
// consumers lean on: the bucket lines of every rendered histogram —
// empty or not — end with an explicit le="+Inf" bucket whose value
// equals _count, so PromQL's histogram_quantile never sees a family
// with a missing terminal bucket.
func TestHistogramSamplesInfBucketExplicit(t *testing.T) {
	cases := map[string]func(h *Histogram){
		"empty":    func(h *Histogram) {},
		"one":      func(h *Histogram) { h.Observe(0.5) },
		"overflow": func(h *Histogram) { h.Observe(1e9) }, // beyond the last finite bound
	}
	for name, fill := range cases {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			fill(&h)
			samples := HistogramSamples("es_x_seconds", "x", nil, &h)
			var lastBucket *PromSample
			var count float64
			for i := range samples {
				switch samples[i].Suffix {
				case "_bucket":
					lastBucket = &samples[i]
				case "_count":
					count = samples[i].Value
				}
			}
			if lastBucket == nil {
				t.Fatal("no bucket lines rendered")
			}
			if le := lastBucket.Labels["le"]; le != "+Inf" {
				t.Fatalf("final bucket le = %q, want +Inf", le)
			}
			if lastBucket.Value != count {
				t.Fatalf("+Inf bucket = %v, _count = %v; must be equal", lastBucket.Value, count)
			}
			if count != float64(h.Count()) {
				t.Fatalf("_count = %v, Histogram.Count() = %d", count, h.Count())
			}
		})
	}
}

// TestHistogramMergeIntoEmpty: folding observations into a zero-value
// histogram reproduces the source exactly — the merge path the metrics
// endpoint uses when a fresh scrape-side aggregate absorbs its first
// fleet.
func TestHistogramMergeIntoEmpty(t *testing.T) {
	var src Histogram
	for i := 0; i < 100; i++ {
		src.Observe(float64(i+1) * 1e-3)
	}
	var dst Histogram
	dst.Merge(&src)
	a, b := dst.Snapshot(), src.Snapshot()
	if a.Count != b.Count || a.Max != b.Max || math.Abs(a.Sum-b.Sum) > 1e-9 {
		t.Fatalf("merge into empty diverged: %+v vs %+v", a, b)
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, a.Counts[i], b.Counts[i])
		}
	}

	// Empty absorbing empty stays empty and quantiles stay defined.
	var e1, e2 Histogram
	e1.Merge(&e2)
	if e1.Count() != 0 {
		t.Fatalf("empty+empty count = %d", e1.Count())
	}
	if q := e1.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}
