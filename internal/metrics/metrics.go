// Package metrics provides the measurement instruments the evaluation
// reports are built from: exact time-weighted averages for
// piecewise-constant signals (working/online node counts), counters,
// and per-job QoS aggregation matching the paper's result tables.
package metrics

import "math"

// TimeAvg computes the exact time-weighted average of a
// piecewise-constant signal observed at change points.
type TimeAvg struct {
	start    float64
	lastTime float64
	lastVal  float64
	area     float64
	started  bool
}

// NewTimeAvg starts the signal at time t0 with value v.
func NewTimeAvg(t0, v float64) *TimeAvg {
	return &TimeAvg{start: t0, lastTime: t0, lastVal: v, started: true}
}

// Observe records that the signal became v at time t (t must not
// decrease).
func (a *TimeAvg) Observe(t, v float64) {
	if !a.started {
		a.start, a.lastTime, a.lastVal, a.started = t, t, v, true
		return
	}
	if t < a.lastTime {
		panic("metrics: time went backwards")
	}
	a.area += a.lastVal * (t - a.lastTime)
	a.lastTime = t
	a.lastVal = v
}

// Mean returns the time-weighted mean over [start, t], extending the
// last observed value to t.
func (a *TimeAvg) Mean(t float64) float64 {
	if !a.started || t <= a.start {
		return a.lastVal
	}
	area := a.area + a.lastVal*(t-a.lastTime)
	return area / (t - a.start)
}

// Current returns the last observed value.
func (a *TimeAvg) Current() float64 { return a.lastVal }

// Welford accumulates mean and variance online (Welford's algorithm);
// used for per-job satisfaction/delay statistics and the validation
// experiment's instantaneous-error statistics.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 { return w.max }
