package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeAvgConstant(t *testing.T) {
	a := NewTimeAvg(0, 5)
	if got := a.Mean(10); got != 5 {
		t.Errorf("constant mean = %v, want 5", got)
	}
}

func TestTimeAvgStep(t *testing.T) {
	a := NewTimeAvg(0, 0)
	a.Observe(10, 10) // 0 for [0,10), 10 for [10,20)
	if got := a.Mean(20); got != 5 {
		t.Errorf("step mean = %v, want 5", got)
	}
}

func TestTimeAvgMultipleSteps(t *testing.T) {
	a := NewTimeAvg(0, 2)
	a.Observe(5, 4)
	a.Observe(15, 0)
	// 2×5 + 4×10 + 0×5 = 50 over 20 s.
	if got := a.Mean(20); got != 2.5 {
		t.Errorf("mean = %v, want 2.5", got)
	}
}

func TestTimeAvgCurrentAndEarlyMean(t *testing.T) {
	a := NewTimeAvg(3, 7)
	if a.Current() != 7 {
		t.Errorf("Current = %v", a.Current())
	}
	if got := a.Mean(3); got != 7 {
		t.Errorf("Mean at start = %v, want last value", got)
	}
}

func TestTimeAvgBackwardsPanics(t *testing.T) {
	a := NewTimeAvg(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	a.Observe(5, 2)
}

// Property: time-weighted mean is always within [min, max] of the
// observed values.
func TestTimeAvgBoundsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		a := NewTimeAvg(0, float64(vals[0]%100))
		lo, hi := float64(vals[0]%100), float64(vals[0]%100)
		tm := 0.0
		for _, v := range vals[1:] {
			tm += float64(v%50) + 0.5
			val := float64(v % 100)
			a.Observe(tm, val)
			if val < lo {
				lo = val
			}
			if val > hi {
				hi = val
			}
		}
		m := a.Mean(tm + 10)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := w.Var(); got != 4 {
		t.Errorf("var = %v, want 4", got)
	}
	if got := w.Stddev(); got != 2 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("empty Welford not zero")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range raw {
			w.Add(float64(x))
			sum += float64(x)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, x := range raw {
			d := float64(x) - mean
			m2 += d * d
		}
		variance := m2 / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-variance) < 1e-3*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Policy: "SB", LambdaMin: 30, LambdaMax: 90,
		AvgWorking: 9.7, AvgOnline: 21.0, CPUHours: 6055.8,
		EnergyKWh: 956.4, Satisfaction: 99.1, Delay: 9.0, Migrations: 87,
	}
	s := r.String()
	for _, want := range []string{"SB", "30-90", "9.7", "21.0", "956.4", "99.1", "87"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	if TableHeader() == "" {
		t.Error("empty table header")
	}
}

func TestWriteProm(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProm(&buf, []PromSample{
		{Name: "es_power_watts", Help: "instantaneous draw", Kind: PromGauge, Value: 1234.5},
		{Name: "es_jobs", Help: "jobs by state", Kind: PromGauge,
			Labels: map[string]string{"state": "running"}, Value: 3},
		{Name: "es_jobs", Labels: map[string]string{"state": "queued"}, Value: 0},
		{Name: "es_migrations_total", Help: "completed migrations", Kind: PromCounter, Value: 96},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP es_power_watts instantaneous draw
# TYPE es_power_watts gauge
es_power_watts 1234.5
# HELP es_jobs jobs by state
# TYPE es_jobs gauge
es_jobs{state="running"} 3
es_jobs{state="queued"} 0
# HELP es_migrations_total completed migrations
# TYPE es_migrations_total counter
es_migrations_total 96
`
	if got := buf.String(); got != want {
		t.Errorf("prom output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePromEscaping(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProm(&buf, []PromSample{
		{Name: "es_x", Help: "line1\nline2 \\ tail",
			Labels: map[string]string{"b": `q"v`, "a": "n\nl"}, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "# HELP es_x line1\\nline2 \\\\ tail\n# TYPE es_x gauge\n" +
		`es_x{a="n\nl",b="q\"v"} 1` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("prom output:\n%q\nwant:\n%q", got, want)
	}
	if err := WriteProm(&buf, []PromSample{{}}); err == nil {
		t.Error("empty metric name accepted")
	}
}

// TestWritePromHostileFleetNames: fleet IDs are attacker-controlled
// label values (they come straight from PUT /v1/fleets/{id}), so every
// exposition-format metacharacter must escape to exactly one
// well-formed series line. The want strings are the literal bytes a
// scraper reads.
func TestWritePromHostileFleetNames(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fleet string
		want  string // full expected sample line
	}{
		{"backslash", `a\b`, `es_up{fleet="a\\b"} 1`},
		{"quote", `a"b`, `es_up{fleet="a\"b"} 1`},
		{"newline", "a\nb", `es_up{fleet="a\nb"} 1`},
		{"quote-then-backslash", `"\`, `es_up{fleet="\"\\"} 1`},
		{"all-three", "\\\"\n", `es_up{fleet="\\\"\n"} 1`},
		{"escape-lookalike", `a\nb`, `es_up{fleet="a\\nb"} 1`}, // literal backslash-n stays distinguishable
		{"trailing-backslash", `trail\`, `es_up{fleet="trail\\"} 1`},
		{"unicode", "flotte-\u00e9\u4e16", "es_up{fleet=\"flotte-\u00e9\u4e16\"} 1"},
		{"braces-and-equals", `a{b="c"}`, `es_up{fleet="a{b=\"c\"}"} 1`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := WriteProm(&buf, []PromSample{
				{Name: "es_up", Labels: map[string]string{"fleet": tc.fleet}, Value: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
			// Header line + exactly one sample line: a raw newline in a
			// label value must never produce extra lines.
			if len(lines) != 2 {
				t.Fatalf("%d lines, want 2 (TYPE + sample):\n%q", len(lines), buf.String())
			}
			if lines[1] != tc.want {
				t.Errorf("sample line:\n got %q\nwant %q", lines[1], tc.want)
			}
		})
	}
}

// TestWritePromRejectsBadLabelNames: label names cannot be escaped in
// the exposition format, so invalid ones must error out instead of
// corrupting the scrape.
func TestWritePromRejectsBadLabelNames(t *testing.T) {
	for _, bad := range []string{"", "9lives", "a-b", "a b", "a\"b", "ключ"} {
		var buf bytes.Buffer
		err := WriteProm(&buf, []PromSample{
			{Name: "es_up", Labels: map[string]string{bad: "v"}, Value: 1},
		})
		if err == nil {
			t.Errorf("label name %q accepted", bad)
		}
	}
	// Valid edge cases still pass.
	for _, ok := range []string{"_", "a", "A9", "fleet_id_2"} {
		var buf bytes.Buffer
		err := WriteProm(&buf, []PromSample{
			{Name: "es_up", Labels: map[string]string{ok: "v"}, Value: 1},
		})
		if err != nil {
			t.Errorf("label name %q rejected: %v", ok, err)
		}
	}
}

// TestWritePromSpecialValues: ±Inf and NaN render as the spelled-out
// exposition tokens, not Go's float formatting.
func TestWritePromSpecialValues(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProm(&buf, []PromSample{
		{Name: "es_a", Value: math.Inf(1)},
		{Name: "es_b", Value: math.Inf(-1)},
		{Name: "es_c", Value: math.NaN()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"es_a +Inf\n", "es_b -Inf\n", "es_c NaN\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
