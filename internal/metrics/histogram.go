package metrics

import (
	"math"
	"sync"
	"time"
)

// Histogram is a fixed-shape log-linear latency histogram: the range
// from 1µs to 900s is divided into decades, each decade into nine
// linear sub-buckets (1,2,…,9 × 10^k seconds), plus an overflow
// bucket. The layout is identical for every instance, so histograms
// merge bucket-by-bucket and their Prometheus exposition produces one
// `le` schema across all series of a family. All methods are safe for
// concurrent use; Observe is a mutex-guarded array increment, cheap
// enough for per-request instrumentation.
//
// Determinism contract: a Histogram only ever consumes wall-clock
// side-channel measurements. Nothing in the simulation or solver reads
// one back, so enabling or disabling instrumentation cannot perturb
// simulation bytes.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets + 1]uint64 // +1 = overflow
	count  uint64
	sum    float64
	max    float64
}

const (
	histMinExp  = -6 // first decade: 1e-6 s = 1 µs
	histMaxExp  = 2  // last finite bound: 9e2… see histBounds
	histDecades = histMaxExp - histMinExp + 1
	histLinear  = 9 // sub-buckets per decade
	histBuckets = histDecades * histLinear
)

// histBounds holds the finite upper bounds, ascending: 1µs, 2µs, …,
// 9µs, 10µs, 20µs, …, 900s. Values above the last bound land in the
// overflow (+Inf) bucket.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	i := 0
	for e := histMinExp; e <= histMaxExp; e++ {
		decade := math.Pow(10, float64(e))
		for m := 1; m <= histLinear; m++ {
			b[i] = float64(m) * decade
			i++
		}
	}
	return b
}()

// HistBounds returns a copy of the finite bucket upper bounds shared
// by every Histogram.
func HistBounds() []float64 {
	out := make([]float64, histBuckets)
	copy(out, histBounds[:])
	return out
}

// bucketFor returns the index of the first bound >= v, or histBuckets
// (overflow) when v exceeds every finite bound. Computed arithmetically
// from the log-linear layout instead of a binary search.
func bucketFor(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	if v > histBounds[histBuckets-1] {
		return histBuckets
	}
	e := math.Floor(math.Log10(v))
	// Guard against float log edge cases at decade boundaries.
	if e < histMinExp {
		e = histMinExp
	}
	d := int(e) - histMinExp
	if d >= histDecades {
		d = histDecades - 1
	}
	m := int(math.Ceil(v/math.Pow(10, e) - 1e-12))
	if m < 1 {
		m = 1
	}
	idx := d*histLinear + (m - 1)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	// The arithmetic bucket can be off by one at representation
	// boundaries; repair by local scan.
	for idx > 0 && v <= histBounds[idx-1] {
		idx--
	}
	for idx < histBuckets && v > histBounds[idx] {
		idx++
	}
	return idx
}

// Observe records one value (seconds for latency series). Negative
// values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := bucketFor(v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveSince records the wall-clock seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Merge folds o's observations into h. Both histograms share the fixed
// bucket layout, so the merge is exact.
func (h *Histogram) Merge(o *Histogram) {
	s := o.Snapshot()
	h.mu.Lock()
	for i, c := range s.Counts {
		h.counts[i] += c
	}
	h.count += s.Count
	h.sum += s.Sum
	if s.Max > h.max {
		h.max = s.Max
	}
	h.mu.Unlock()
}

// HistSnapshot is a consistent point-in-time copy of a Histogram.
// Counts is per-bucket (not cumulative) and has one extra trailing
// entry for the overflow bucket.
type HistSnapshot struct {
	Counts []uint64
	Count  uint64
	Sum    float64
	Max    float64
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts[:])
	return HistSnapshot{Counts: counts, Count: h.count, Sum: h.sum, Max: h.max}
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the target bucket. Returns 0 for an empty
// histogram. Estimates are clamped to the observed maximum, so
// Quantile(1) == Max and a one-sample histogram reports that sample's
// bucket (never more than the sample itself).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= histBuckets {
			return s.Max // overflow bucket: the max is the best bound
		}
		lo := 0.0
		if i > 0 {
			lo = histBounds[i-1]
		}
		hi := histBounds[i]
		est := lo + (hi-lo)*(rank-prev)/float64(c)
		if est > s.Max {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// Quantile is Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}
