package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition for the measurement instruments:
// the energyschedd daemon publishes the simulation's gauges and
// counters on GET /metrics through WriteProm. The writer is
// dependency-free (the repo bakes in no Prometheus client library)
// and emits the stable subset of the exposition format every scraper
// understands: # HELP, # TYPE, and name{labels} value lines.

// PromKind is a Prometheus metric type.
type PromKind string

// Prometheus metric types.
const (
	PromGauge     PromKind = "gauge"
	PromCounter   PromKind = "counter"
	PromHistogram PromKind = "histogram"
)

// PromSample is one exposed time series: a metric name, its metadata,
// optional labels, and the current value.
type PromSample struct {
	// Name is the metric name (e.g. "energysched_power_watts"). For
	// histogram series this is the family name; the per-line series
	// name is Name+Suffix.
	Name string
	// Suffix is appended to Name on the sample line but not in the
	// # HELP / # TYPE header — the histogram convention, where the
	// family "x" exposes lines "x_bucket", "x_sum" and "x_count" under
	// a single "# TYPE x histogram" header.
	Suffix string
	// Help is the one-line metric description.
	Help string
	// Kind is the metric type (gauge when empty).
	Kind PromKind
	// Labels attaches label pairs; keys are emitted sorted.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// WriteProm renders samples in the Prometheus text exposition format.
// Samples sharing a name must be adjacent; the # HELP / # TYPE header
// is emitted once per name, taken from the first sample of the run.
// Label names must match the exposition grammar
// ([a-zA-Z_][a-zA-Z0-9_]*); label values may contain anything — the
// writer escapes backslashes, quotes and newlines so hostile fleet IDs
// cannot break the format.
func WriteProm(w io.Writer, samples []PromSample) error {
	var prev string
	for _, s := range samples {
		if s.Name == "" {
			return fmt.Errorf("metrics: prom sample with empty name")
		}
		labels, err := promLabels(s.Labels)
		if err != nil {
			return fmt.Errorf("metrics: sample %s: %w", s.Name, err)
		}
		if s.Name != prev {
			kind := s.Kind
			if kind == "" {
				kind = PromGauge
			}
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapePromHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, kind); err != nil {
				return err
			}
			prev = s.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s%s %s\n", s.Name, s.Suffix, labels,
			formatPromValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// HistogramSamples renders one Histogram as a Prometheus histogram
// family: cumulative _bucket series (including the +Inf bucket), _sum
// and _count, all carrying the given labels. The samples share Name,
// so WriteProm emits one "# TYPE name histogram" header and
// MergeByName keeps per-fleet series of the same family adjacent.
func HistogramSamples(name, help string, labels map[string]string, h *Histogram) []PromSample {
	snap := h.Snapshot()
	bounds := HistBounds()
	out := make([]PromSample, 0, len(bounds)+3)
	var cum uint64
	addBucket := func(le string, c uint64) {
		ls := make(map[string]string, len(labels)+1)
		for k, v := range labels {
			ls[k] = v
		}
		ls["le"] = le
		out = append(out, PromSample{
			Name: name, Suffix: "_bucket", Help: help, Kind: PromHistogram,
			Labels: ls, Value: float64(c),
		})
	}
	for i, b := range bounds {
		cum += snap.Counts[i]
		addBucket(strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += snap.Counts[len(bounds)]
	addBucket("+Inf", cum)
	out = append(out,
		PromSample{Name: name, Suffix: "_sum", Kind: PromHistogram, Labels: labels, Value: snap.Sum},
		PromSample{Name: name, Suffix: "_count", Kind: PromHistogram, Labels: labels, Value: float64(snap.Count)},
	)
	return out
}

// formatPromValue renders a float the way Prometheus scrapers expect:
// shortest round-trip representation, with the spelled-out +Inf/-Inf
// and NaN specials.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MergeByName interleaves several sample sets into one
// WriteProm-compatible slice: samples sharing a name become adjacent
// (so the # HELP / # TYPE header is emitted once), names ordered by
// first appearance across the sets. The multi-fleet daemon uses this
// to merge per-fleet sample sets that carry a distinguishing label.
func MergeByName(sets ...[]PromSample) []PromSample {
	var order []string
	byName := make(map[string][]PromSample)
	total := 0
	for _, set := range sets {
		for _, s := range set {
			if _, ok := byName[s.Name]; !ok {
				order = append(order, s.Name)
			}
			byName[s.Name] = append(byName[s.Name], s)
			total++
		}
	}
	out := make([]PromSample, 0, total)
	for _, name := range order {
		out = append(out, byName[name]...)
	}
	return out
}

func promLabels(labels map[string]string) (string, error) {
	if len(labels) == 0 {
		return "", nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validLabelName(k) {
			return "", fmt.Errorf("invalid label name %q", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapePromLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), nil
}

// validLabelName reports whether k matches the exposition grammar
// [a-zA-Z_][a-zA-Z0-9_]*. Label VALUES are free-form (escaped); label
// NAMES are not escapable, so a bad one must be rejected rather than
// emitted as a corrupt scrape.
func validLabelName(k string) bool {
	if k == "" {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// The escaping replacers are built once: WriteProm runs on every
// /metrics scrape across every fleet's sample set.
var (
	promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	promHelpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

func escapePromLabel(v string) string { return promLabelEscaper.Replace(v) }

func escapePromHelp(v string) string { return promHelpEscaper.Replace(v) }
