package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition for the measurement instruments:
// the energyschedd daemon publishes the simulation's gauges and
// counters on GET /metrics through WriteProm. The writer is
// dependency-free (the repo bakes in no Prometheus client library)
// and emits the stable subset of the exposition format every scraper
// understands: # HELP, # TYPE, and name{labels} value lines.

// PromKind is a Prometheus metric type.
type PromKind string

// Prometheus metric types.
const (
	PromGauge   PromKind = "gauge"
	PromCounter PromKind = "counter"
)

// PromSample is one exposed time series: a metric name, its metadata,
// optional labels, and the current value.
type PromSample struct {
	// Name is the metric name (e.g. "energysched_power_watts").
	Name string
	// Help is the one-line metric description.
	Help string
	// Kind is the metric type (gauge when empty).
	Kind PromKind
	// Labels attaches label pairs; keys are emitted sorted.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// WriteProm renders samples in the Prometheus text exposition format.
// Samples sharing a name must be adjacent; the # HELP / # TYPE header
// is emitted once per name, taken from the first sample of the run.
func WriteProm(w io.Writer, samples []PromSample) error {
	var prev string
	for _, s := range samples {
		if s.Name == "" {
			return fmt.Errorf("metrics: prom sample with empty name")
		}
		if s.Name != prev {
			kind := s.Kind
			if kind == "" {
				kind = PromGauge
			}
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapePromHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, kind); err != nil {
				return err
			}
			prev = s.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels),
			strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// MergeByName interleaves several sample sets into one
// WriteProm-compatible slice: samples sharing a name become adjacent
// (so the # HELP / # TYPE header is emitted once), names ordered by
// first appearance across the sets. The multi-fleet daemon uses this
// to merge per-fleet sample sets that carry a distinguishing label.
func MergeByName(sets ...[]PromSample) []PromSample {
	var order []string
	byName := make(map[string][]PromSample)
	total := 0
	for _, set := range sets {
		for _, s := range set {
			if _, ok := byName[s.Name]; !ok {
				order = append(order, s.Name)
			}
			byName[s.Name] = append(byName[s.Name], s)
			total++
		}
	}
	out := make([]PromSample, 0, total)
	for _, name := range order {
		out = append(out, byName[name]...)
	}
	return out
}

func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapePromLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapePromLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapePromHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
