package cluster

import (
	"testing"

	"energysched/internal/vm"
)

func testClass() Class {
	c := PaperClasses()[1] // medium
	c.Count = 3
	return c
}

func newTestNode(t *testing.T) *Node {
	t.Helper()
	cls := testClass()
	return NewNode(0, &cls)
}

func addVM(n *Node, id int, cpu, mem float64, state vm.State) *vm.VM {
	v := vm.New(id, vm.Requirements{CPU: cpu, Mem: mem}, 0, 100, 200)
	v.State = state
	v.Host = n.ID
	n.AddVM(v)
	return v
}

func TestPaperClasses(t *testing.T) {
	classes := PaperClasses()
	if len(classes) != 3 {
		t.Fatalf("got %d classes", len(classes))
	}
	total := 0
	for _, c := range classes {
		total += c.Count
	}
	if total != 100 {
		t.Fatalf("paper fleet = %d nodes, want 100", total)
	}
	// The paper's overhead split: fast 30/40, medium 40/60, slow 60/80.
	checks := []struct {
		name   string
		count  int
		cc, cm float64
	}{
		{"fast", 15, 30, 40}, {"medium", 50, 40, 60}, {"slow", 35, 60, 80},
	}
	for i, w := range checks {
		c := classes[i]
		if c.Name != w.name || c.Count != w.count || c.CreateCost != w.cc || c.MigrateCost != w.cm {
			t.Errorf("class %d = %+v, want %+v", i, c, w)
		}
	}
}

func TestNodeStateHelpers(t *testing.T) {
	n := newTestNode(t)
	if n.State != Off || n.Operational() || n.Working() || n.Idle() {
		t.Error("fresh node should be off and inert")
	}
	n.State = On
	if !n.Operational() || !n.Idle() || n.Working() {
		t.Error("empty online node should be idle, not working")
	}
	addVM(n, 1, 100, 10, vm.Running)
	if !n.Working() || n.Idle() {
		t.Error("hosting node should be working")
	}
}

func TestNodeWorkingDuringOps(t *testing.T) {
	n := newTestNode(t)
	n.State = On
	n.CreatingOps = 1
	if !n.Working() || n.Idle() {
		t.Error("node creating a VM is working")
	}
}

func TestOccupation(t *testing.T) {
	n := newTestNode(t)
	n.State = On
	addVM(n, 1, 100, 50, vm.Running) // CPU 25 %, Mem 50 %
	if got := n.Occupation(); got != 0.5 {
		t.Errorf("occupation = %v, want 0.5 (memory binds)", got)
	}
	addVM(n, 2, 300, 10, vm.Running) // CPU 100 %, Mem 60 %
	if got := n.Occupation(); got != 1.0 {
		t.Errorf("occupation = %v, want 1.0 (CPU binds)", got)
	}
}

func TestOccupationWith(t *testing.T) {
	n := newTestNode(t)
	addVM(n, 1, 200, 20, vm.Running)
	if got := n.OccupationWith(100, 10); got != 0.75 {
		t.Errorf("occupation with extra = %v, want 0.75", got)
	}
}

func TestFits(t *testing.T) {
	n := newTestNode(t)
	addVM(n, 1, 300, 20, vm.Running)
	if !n.Fits(vm.Requirements{CPU: 100, Mem: 10}) {
		t.Error("fitting VM rejected")
	}
	if n.Fits(vm.Requirements{CPU: 200, Mem: 10}) {
		t.Error("CPU overflow accepted")
	}
	if n.Fits(vm.Requirements{CPU: 100, Mem: 90}) {
		t.Error("memory overflow accepted")
	}
}

func TestSatisfies(t *testing.T) {
	n := newTestNode(t)
	if !n.Satisfies(vm.Requirements{CPU: 100, Mem: 10}) {
		t.Error("basic requirements rejected")
	}
	if !n.Satisfies(vm.Requirements{CPU: 100, Arch: "x86_64", Hypervisor: "xen"}) {
		t.Error("matching arch/hypervisor rejected")
	}
	if n.Satisfies(vm.Requirements{CPU: 100, Arch: "arm64"}) {
		t.Error("wrong arch accepted")
	}
	if n.Satisfies(vm.Requirements{CPU: 100, Hypervisor: "kvm"}) {
		t.Error("wrong hypervisor accepted")
	}
	if n.Satisfies(vm.Requirements{CPU: 800}) {
		t.Error("VM bigger than the node accepted")
	}
}

func TestWattsByState(t *testing.T) {
	n := newTestNode(t)
	if got := n.Watts(0); got != StandbyWatts {
		t.Errorf("off watts = %v, want standby", got)
	}
	n.State = Booting
	if got := n.Watts(0); got != 230 {
		t.Errorf("booting watts = %v, want idle 230", got)
	}
	n.State = On
	if got := n.Watts(400); got != 304 {
		t.Errorf("full-load watts = %v, want 304", got)
	}
	n.State = Down
	if got := n.Watts(100); got != StandbyWatts {
		t.Errorf("down watts = %v, want standby", got)
	}
}

func TestClusterNew(t *testing.T) {
	c, err := New(PaperClasses())
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 100 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.Node(0) == nil || c.Node(99) == nil {
		t.Error("node lookup failed")
	}
	if c.Node(-1) != nil || c.Node(100) != nil {
		t.Error("out-of-range lookup should be nil")
	}
	if got := c.TotalCPU(); got != 100*400 {
		t.Errorf("total CPU = %v", got)
	}
}

func TestClusterNewValidation(t *testing.T) {
	bad := testClass()
	bad.Count = 0
	if _, err := New([]Class{bad}); err == nil {
		t.Error("zero count accepted")
	}
	bad = testClass()
	bad.CPU = 0
	if _, err := New([]Class{bad}); err == nil {
		t.Error("zero CPU accepted")
	}
	bad = testClass()
	bad.Reliability = 0
	if _, err := New([]Class{bad}); err == nil {
		t.Error("zero reliability accepted")
	}
	bad = testClass()
	bad.Reliability = 1.5
	if _, err := New([]Class{bad}); err == nil {
		t.Error("reliability > 1 accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestClusterCounts(t *testing.T) {
	c := MustNew([]Class{testClass()})
	c.Nodes[0].State = On
	c.Nodes[1].State = Booting
	addVM(c.Nodes[0], 1, 100, 10, vm.Running)

	working, online := c.Counts()
	if working != 1 || online != 2 {
		t.Fatalf("counts = (%d, %d), want (1, 2)", working, online)
	}
	if got := len(c.OnlineNodes()); got != 1 {
		t.Errorf("online nodes = %d, want 1 (booting is not operational)", got)
	}
	if got := len(c.OffNodes()); got != 1 {
		t.Errorf("off nodes = %d", got)
	}
	if got := len(c.IdleNodes()); got != 0 {
		t.Errorf("idle nodes = %d, want 0", got)
	}
}

// TestNodeEpochAndReservedSums pins the cross-round cache contract:
// every mutation method advances Epoch, the incremental reservation
// sums track AddVM/RemoveVM exactly, and an emptied node reads
// exactly zero (no float residue).
func TestNodeEpochAndReservedSums(t *testing.T) {
	c := MustNew([]Class{testClass()})
	n := c.Nodes[0]

	e := n.Epoch
	step := func(what string, f func()) {
		t.Helper()
		f()
		if n.Epoch <= e {
			t.Errorf("%s did not advance the epoch", what)
		}
		e = n.Epoch
	}

	a := addVM(n, 1, 100, 10.5, vm.Running) // addVM uses AddVM internally
	e = n.Epoch
	step("AddVM", func() { addVM(n, 2, 50, 5.25, vm.Running) })
	if n.CPUReserved() != 150 || n.MemReserved() != 15.75 {
		t.Fatalf("reserved = (%v, %v), want (150, 15.75)", n.CPUReserved(), n.MemReserved())
	}
	prev := n.Epoch
	n.AddVM(a) // duplicate add is a no-op
	if n.Epoch != prev || n.CPUReserved() != 150 {
		t.Fatalf("duplicate AddVM mutated the node")
	}
	step("SetState", func() { n.SetState(On) })
	prev = n.Epoch
	n.SetState(On)
	if n.Epoch != prev {
		t.Errorf("no-op SetState advanced the epoch")
	}
	step("BeginCreate", n.BeginCreate)
	step("EndCreate", n.EndCreate)
	step("BeginMigrate", n.BeginMigrate)
	step("EndMigrate", n.EndMigrate)
	step("ResetOps", n.ResetOps)
	step("Touch", n.Touch)
	step("RemoveVM", func() { n.RemoveVM(a) })
	prev = n.Epoch
	n.RemoveVM(a)
	if n.Epoch != prev {
		t.Errorf("removing an absent VM advanced the epoch")
	}
	n.RemoveVM(n.VMs[2])
	if n.CPUReserved() != 0 || n.MemReserved() != 0 {
		t.Fatalf("emptied node reserved = (%v, %v), want exact zeros", n.CPUReserved(), n.MemReserved())
	}
}

func TestPowerStateString(t *testing.T) {
	for s, want := range map[PowerState]string{
		Off: "off", Booting: "booting", On: "on", Down: "down",
		PowerState(9): "powerstate(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
