// Package cluster models the physical machines of the datacenter:
// heterogeneous node classes with distinct virtualization overheads
// (the paper's fast/medium/slow split), an on/boot/off power state
// machine, occupation accounting, and reliability factors for failure
// injection.
package cluster

import (
	"fmt"
	"math"

	"energysched/internal/power"
	"energysched/internal/vm"
)

// PowerState is a node's electrical state.
type PowerState int

// Node power states.
const (
	// Off: consumes standby power only; cannot host VMs.
	Off PowerState = iota
	// Booting: consuming boot power; becomes On after BootTime.
	Booting
	// On: operational.
	On
	// Down: failed; consumes standby power until repaired.
	Down
)

// String implements fmt.Stringer.
func (s PowerState) String() string {
	switch s {
	case Off:
		return "off"
	case Booting:
		return "booting"
	case On:
		return "on"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("powerstate(%d)", int(s))
	}
}

// Class describes a homogeneous group of machines. The paper's
// evaluation uses three: 15 fast (Cc=30 s, Cm=40 s), 50 medium
// (Cc=40 s, Cm=60 s) and 35 slow (Cc=60 s, Cm=80 s).
type Class struct {
	// Name labels the class ("fast", "medium", "slow").
	Name string
	// Count is how many nodes of this class the datacenter has.
	Count int
	// CPU capacity in percent (400 = 4 cores).
	CPU float64
	// Mem capacity in abstract units (100 = full machine).
	Mem float64
	// CreateCost is Cc: mean seconds to create a VM on this class.
	CreateCost float64
	// MigrateCost is Cm: mean seconds to live-migrate a VM to/from
	// this class.
	MigrateCost float64
	// BootTime is seconds from power-on to operational.
	BootTime float64
	// Arch is the architecture the class offers.
	Arch string
	// Hypervisor installed on the class.
	Hypervisor string
	// Reliability is Frel: fraction of time the node is up, in (0,1].
	Reliability float64
	// Power is the electrical model (nil = paper's Table I model).
	Power power.Model
}

// PaperClasses returns the three node classes of the paper's
// evaluation (§V): 100 nodes total, Table I power model, 4 CPUs and
// 100 memory units each, fully reliable.
func PaperClasses() []Class {
	mk := func(name string, count int, cc, cm float64) Class {
		return Class{
			Name: name, Count: count,
			CPU: 400, Mem: 100,
			CreateCost: cc, MigrateCost: cm,
			BootTime:    100,
			Arch:        "x86_64",
			Hypervisor:  "xen",
			Reliability: 1.0,
			Power:       power.PaperTableI(),
		}
	}
	return []Class{
		mk("fast", 15, 30, 40),
		mk("medium", 50, 40, 60),
		mk("slow", 35, 60, 80),
	}
}

// StandbyWatts is the consumption of a node that is switched off
// (wake-on-LAN standby). The paper reports that turning a node off
// saves "more than 200 W" against the 230 W idle floor.
const StandbyWatts = 5.0

// Node is one physical machine.
type Node struct {
	// ID indexes the node in the datacenter (0-based).
	ID int
	// Class the node belongs to.
	Class *Class

	// State is the current power state. Prefer SetState for runtime
	// transitions so the change epoch advances with it.
	State PowerState
	// VMs currently placed on the node (creating, running or
	// migrating-in VMs all occupy resources here). Mutate only through
	// AddVM/RemoveVM: they keep the cached reservation sums and the
	// change epoch consistent.
	VMs map[int]*vm.VM

	// CreatingOps counts VM creations in progress on this node.
	// Mutate through BeginCreate/EndCreate.
	CreatingOps int
	// MigratingOps counts live migrations in which this node is an
	// endpoint (source or destination). Mutate through
	// BeginMigrate/EndMigrate.
	MigratingOps int

	// Reliability is the node's current Frel (may drift at runtime).
	Reliability float64

	// Epoch counts score-relevant mutations of the node: VM set
	// changes, power transitions, operation begin/end. The scheduler's
	// cross-round score cache uses it (together with a value snapshot
	// of the fields above) to recognise nodes whose real state is
	// unchanged since the previous scheduling round.
	Epoch uint64

	// resCPU, resMem cache the reservation sums over VMs, maintained
	// by AddVM/RemoveVM. Summing incrementally (in mutation order)
	// rather than walking the map keeps the totals deterministic:
	// map-order float addition would give round-to-round ulp jitter
	// that defeats the cross-round score cache.
	resCPU, resMem float64
}

// NewNode builds an Off node of the given class.
func NewNode(id int, class *Class) *Node {
	return &Node{
		ID:          id,
		Class:       class,
		State:       Off,
		VMs:         make(map[int]*vm.VM),
		Reliability: class.Reliability,
	}
}

// AddVM places v's reservation on the node: it joins the VMs map and
// the cached reservation sums, and the change epoch advances.
func (n *Node) AddVM(v *vm.VM) {
	if _, ok := n.VMs[v.ID]; ok {
		return
	}
	n.VMs[v.ID] = v
	n.resCPU += v.Req.CPU
	n.resMem += v.Req.Mem
	n.Epoch++
}

// RemoveVM releases v's reservation. Removing a VM that is not hosted
// here is a no-op.
func (n *Node) RemoveVM(v *vm.VM) {
	if _, ok := n.VMs[v.ID]; !ok {
		return
	}
	delete(n.VMs, v.ID)
	n.resCPU -= v.Req.CPU
	n.resMem -= v.Req.Mem
	if len(n.VMs) == 0 {
		// Re-anchor the incremental sums: float subtraction can leave
		// a residue, and an empty node must read exactly zero.
		n.resCPU, n.resMem = 0, 0
	}
	n.Epoch++
}

// SetState transitions the power state, advancing the change epoch.
func (n *Node) SetState(s PowerState) {
	if n.State == s {
		return
	}
	n.State = s
	n.Epoch++
}

// BeginCreate and EndCreate bracket a VM creation in progress.
func (n *Node) BeginCreate() { n.CreatingOps++; n.Epoch++ }

// EndCreate completes one creation begun with BeginCreate.
func (n *Node) EndCreate() { n.CreatingOps--; n.Epoch++ }

// BeginMigrate and EndMigrate bracket a live migration with this node
// as an endpoint (source or destination).
func (n *Node) BeginMigrate() { n.MigratingOps++; n.Epoch++ }

// EndMigrate completes one migration begun with BeginMigrate.
func (n *Node) EndMigrate() { n.MigratingOps--; n.Epoch++ }

// ResetOps force-clears both operation counters (failure teardown).
func (n *Node) ResetOps() {
	n.CreatingOps, n.MigratingOps = 0, 0
	n.Epoch++
}

// Touch records an out-of-band mutation not covered by the methods
// above (e.g. a reliability drift), invalidating cross-round score
// caches that reference this node.
func (n *Node) Touch() { n.Epoch++ }

// Operational reports whether the node can host VMs right now.
func (n *Node) Operational() bool { return n.State == On }

// Working reports whether the node is on and hosting at least one VM
// or running an actuator operation — the paper's "working node".
func (n *Node) Working() bool {
	return n.State == On && (len(n.VMs) > 0 || n.CreatingOps > 0 || n.MigratingOps > 0)
}

// Idle reports whether the node is on, empty and quiescent — a
// candidate for turning off.
func (n *Node) Idle() bool {
	return n.State == On && len(n.VMs) == 0 && n.CreatingOps == 0 && n.MigratingOps == 0
}

// CPUReserved returns the sum of CPU requirements of hosted VMs.
// O(1): the sum is maintained incrementally by AddVM/RemoveVM.
func (n *Node) CPUReserved() float64 { return n.resCPU }

// MemReserved returns the sum of memory requirements of hosted VMs.
// O(1): the sum is maintained incrementally by AddVM/RemoveVM.
func (n *Node) MemReserved() float64 { return n.resMem }

// Occupation is O(h) in the paper: the utilization of the most
// occupied resource, from the VMs' declared requirements. 1.0 means
// the binding resource is exactly full; values above 1 indicate
// overcommit.
func (n *Node) Occupation() float64 {
	return n.OccupationWith(0, 0)
}

// OccupationWith is O(h, vm): the occupation the node would have
// after also hosting a VM with the given extra requirements.
func (n *Node) OccupationWith(extraCPU, extraMem float64) float64 {
	cpu := (n.CPUReserved() + extraCPU) / n.Class.CPU
	mem := 0.0
	if n.Class.Mem > 0 {
		mem = (n.MemReserved() + extraMem) / n.Class.Mem
	}
	return math.Max(cpu, mem)
}

// Fits reports whether a VM with requirements r can be placed without
// exceeding 100 % occupation and satisfies the node's hardware and
// software constraints (Preq + Pres feasibility).
func (n *Node) Fits(r vm.Requirements) bool {
	if !n.Satisfies(r) {
		return false
	}
	return n.OccupationWith(r.CPU, r.Mem) <= 1.0+1e-9
}

// Satisfies checks only the hardware/software requirements (Preq):
// architecture and hypervisor compatibility and that the VM's single
// largest demand is within the node's physical size.
func (n *Node) Satisfies(r vm.Requirements) bool {
	// Numeric checks first: they are branch-cheap, while the string
	// comparisons below cost real time on the scheduler's hot path.
	if r.CPU > n.Class.CPU || r.Mem > n.Class.Mem {
		return false
	}
	if r.Arch != "" && n.Class.Arch != "" && r.Arch != n.Class.Arch {
		return false
	}
	if r.Hypervisor != "" && n.Class.Hypervisor != "" && r.Hypervisor != n.Class.Hypervisor {
		return false
	}
	return true
}

// PowerModel returns the node's electrical model.
func (n *Node) PowerModel() power.Model {
	if n.Class.Power != nil {
		return n.Class.Power
	}
	return power.PaperTableI()
}

// Watts returns the node's instantaneous draw for a given total CPU
// utilization (percent). Off and Down nodes draw standby power;
// booting nodes draw idle power (disks and fans spin during POST).
func (n *Node) Watts(cpuUtil float64) float64 {
	switch n.State {
	case Off, Down:
		return StandbyWatts
	case Booting:
		return n.PowerModel().IdlePower()
	default:
		return n.PowerModel().Power(cpuUtil)
	}
}

// String implements fmt.Stringer for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("node%d[%s %s vms=%d occ=%.2f]",
		n.ID, n.Class.Name, n.State, len(n.VMs), n.Occupation())
}
