package cluster

import "fmt"

// Cluster is the full set of physical nodes in the datacenter.
type Cluster struct {
	Nodes   []*Node
	classes []Class
}

// New materializes a cluster from class descriptions: Count nodes per
// class, IDs assigned in declaration order.
func New(classes []Class) (*Cluster, error) {
	c := &Cluster{classes: append([]Class(nil), classes...)}
	id := 0
	for i := range c.classes {
		cl := &c.classes[i]
		if cl.Count <= 0 {
			return nil, fmt.Errorf("cluster: class %q has non-positive count %d", cl.Name, cl.Count)
		}
		if cl.CPU <= 0 || cl.Mem < 0 {
			return nil, fmt.Errorf("cluster: class %q has invalid capacity (cpu=%.1f mem=%.1f)", cl.Name, cl.CPU, cl.Mem)
		}
		if cl.Reliability <= 0 || cl.Reliability > 1 {
			return nil, fmt.Errorf("cluster: class %q reliability %.3f outside (0,1]", cl.Name, cl.Reliability)
		}
		for j := 0; j < cl.Count; j++ {
			c.Nodes = append(c.Nodes, NewNode(id, cl))
			id++
		}
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	return c, nil
}

// MustNew is New that panics on error, for tests and literals.
func MustNew(classes []Class) *Cluster {
	c, err := New(classes)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.Nodes) }

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.Nodes) {
		return nil
	}
	return c.Nodes[id]
}

// Counts returns (working, online) node counts: working nodes host at
// least one VM or operation; online nodes are On or Booting (a
// machine consuming boot power counts against the energy budget, so
// the power manager must see it as online).
func (c *Cluster) Counts() (working, online int) {
	for _, n := range c.Nodes {
		switch n.State {
		case On:
			online++
			if n.Working() {
				working++
			}
		case Booting:
			online++
		}
	}
	return working, online
}

// OnlineNodes returns the operational (On) nodes.
func (c *Cluster) OnlineNodes() []*Node {
	return c.AppendOnline(nil)
}

// AppendOnline appends the operational (On) nodes to buf and returns
// it — the allocation-free variant of OnlineNodes for hot paths that
// keep a scratch buffer.
func (c *Cluster) AppendOnline(buf []*Node) []*Node {
	for _, n := range c.Nodes {
		if n.State == On {
			buf = append(buf, n)
		}
	}
	return buf
}

// OffNodes returns nodes that are powered off (and not failed).
func (c *Cluster) OffNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.State == Off {
			out = append(out, n)
		}
	}
	return out
}

// IdleNodes returns online nodes hosting nothing.
func (c *Cluster) IdleNodes() []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.Idle() {
			out = append(out, n)
		}
	}
	return out
}

// TotalCPU returns aggregate CPU capacity of all nodes (percent).
func (c *Cluster) TotalCPU() float64 {
	var sum float64
	for _, n := range c.Nodes {
		sum += n.Class.CPU
	}
	return sum
}
