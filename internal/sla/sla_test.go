package sla

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSatisfactionWithinDeadline(t *testing.T) {
	if got := Satisfaction(100, 150); got != 100 {
		t.Errorf("S = %v, want 100", got)
	}
}

func TestSatisfactionAtDeadline(t *testing.T) {
	// Texec == Tdead hits the second branch with zero overshoot.
	if got := Satisfaction(150, 150); got != 100 {
		t.Errorf("S at exact deadline = %v, want 100", got)
	}
}

func TestSatisfactionLinearDecay(t *testing.T) {
	// 50 % over the deadline → S = 50.
	if got := Satisfaction(150, 100); got != 50 {
		t.Errorf("S = %v, want 50", got)
	}
	// Paper's example: deadline 150 min, execution 300 min → S = 0.
	if got := Satisfaction(300, 150); got != 0 {
		t.Errorf("S = %v, want 0", got)
	}
	// Beyond twice the deadline stays 0.
	if got := Satisfaction(1000, 150); got != 0 {
		t.Errorf("S = %v, want 0", got)
	}
}

func TestSatisfactionDegenerate(t *testing.T) {
	if got := Satisfaction(10, 0); got != 0 {
		t.Errorf("S with zero deadline = %v, want 0", got)
	}
}

func TestSatisfactionBoundsProperty(t *testing.T) {
	f := func(exec, dead float64) bool {
		exec, dead = math.Abs(exec), math.Abs(dead)
		if math.IsNaN(exec) || math.IsNaN(dead) || math.IsInf(exec, 0) || math.IsInf(dead, 0) {
			return true
		}
		s := Satisfaction(exec, dead)
		return s >= 0 && s <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSatisfactionMonotoneInExecProperty(t *testing.T) {
	f := func(a, b, dead float64) bool {
		a, b, dead = math.Abs(a), math.Abs(b), math.Abs(dead)+1
		if math.IsNaN(a+b+dead) || math.IsInf(a+b+dead, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Satisfaction(a, dead) >= Satisfaction(b, dead)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelay(t *testing.T) {
	if got := Delay(150, 100); got != 50 {
		t.Errorf("Delay = %v, want 50", got)
	}
	if got := Delay(90, 100); got != 0 {
		t.Errorf("early finish Delay = %v, want 0", got)
	}
	if got := Delay(100, 0); got != 0 {
		t.Errorf("degenerate Delay = %v, want 0", got)
	}
	// Paper's example: 100-minute job, 300 minutes total → 200 %.
	if got := Delay(300, 100); got != 200 {
		t.Errorf("Delay = %v, want 200", got)
	}
}

func TestFulfillmentOnTrack(t *testing.T) {
	// Submitted at 0, deadline 1000; at t=100 with 400 work left at
	// 100 % CPU: projected 100+400 = 500 < 1000 → fulfilled.
	if got := Fulfillment(100, 0, 1000, 400, 100*4, 0); got != 1 {
		t.Errorf("fulfillment = %v, want 1", got)
	}
}

func TestFulfillmentAtRisk(t *testing.T) {
	// Projected 100 + 1800/1 = 1900 vs budget 1000 → ratio ~0.53.
	got := Fulfillment(100, 0, 1000, 1800, 1, 0)
	want := 1000.0 / 1900.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("fulfillment = %v, want %v", got, want)
	}
}

func TestFulfillmentStarved(t *testing.T) {
	if got := Fulfillment(100, 0, 1000, 500, 0, 0); got != 0 {
		t.Errorf("starved fulfillment = %v, want 0", got)
	}
}

func TestFulfillmentOverheadCounts(t *testing.T) {
	// Within budget without overhead, beyond with it.
	without := Fulfillment(0, 0, 100, 90, 1, 0)
	with := Fulfillment(0, 0, 100, 90, 1, 60)
	if without != 1 {
		t.Errorf("no-overhead fulfillment = %v, want 1", without)
	}
	if with >= 1 {
		t.Errorf("overhead fulfillment = %v, want < 1", with)
	}
}

func TestFulfillmentFinishedJob(t *testing.T) {
	if got := Fulfillment(50, 0, 100, 0, 0, 0); got != 1 {
		t.Errorf("finished within budget = %v, want 1", got)
	}
	if got := Fulfillment(200, 0, 100, 0, 0, 0); got != 0.5 {
		t.Errorf("finished late = %v, want 0.5", got)
	}
}

func TestFulfillmentDegenerateBudget(t *testing.T) {
	if got := Fulfillment(10, 0, 0, 100, 100, 0); got != 0 {
		t.Errorf("zero budget = %v, want 0", got)
	}
}

func TestFulfillmentBoundsProperty(t *testing.T) {
	f := func(now, dead, work, alloc, overhead float64) bool {
		now, dead = math.Abs(now), math.Abs(dead)
		work, alloc, overhead = math.Abs(work), math.Abs(alloc), math.Abs(overhead)
		if math.IsNaN(now+dead+work+alloc+overhead) || math.IsInf(now+dead+work+alloc+overhead, 0) {
			return true
		}
		fv := Fulfillment(now, 0, dead, work, alloc, overhead)
		return fv >= 0 && fv <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
