// Package sla implements the paper's QoS metrics for HPC jobs with
// deadlines: the client-satisfaction metric S (§V), execution delay,
// and the SLA-fulfillment estimator used by the dynamic SLA
// enforcement penalty (§III-A5).
package sla

import "math"

// Satisfaction is the paper's client-satisfaction percentage:
//
//	S = 100                                    if Texec <  Tdead
//	S = 100 · max(1 − (Texec−Tdead)/Tdead, 0)  if Texec >= Tdead
//
// where both times are measured relative to submission. A job that
// takes twice its deadline (or more) scores 0.
func Satisfaction(execTime, deadline float64) float64 {
	if deadline <= 0 {
		return 0
	}
	if execTime < deadline {
		return 100
	}
	return 100 * math.Max(1-(execTime-deadline)/deadline, 0)
}

// Delay is the execution-time delay percentage relative to the
// dedicated-machine runtime Tu: how much longer the job took (waiting,
// virtualization overheads, contention) than it would have alone.
// Never negative.
func Delay(execTime, dedicated float64) float64 {
	if dedicated <= 0 {
		return 0
	}
	return 100 * math.Max(execTime/dedicated-1, 0)
}

// Fulfillment estimates SLA(h, vm) ∈ [0, 1] for a job in flight: the
// ratio between its deadline budget and its projected total execution
// time, capped at 1. The projection charges elapsed time so far plus
// remaining work at the given CPU allocation, plus a fixed overhead
// (e.g. a pending migration).
//
//   - 1.0  → on track, no penalty;
//   - (THsla, 1) → at risk, finite penalty Csla;
//   - <= THsla   → hopeless on this host, infinite penalty.
func Fulfillment(now, submit, deadline, remainingWork, alloc, overhead float64) float64 {
	budget := deadline - submit
	if budget <= 0 {
		return 0
	}
	if remainingWork <= 0 {
		// Finished (or no work): fulfilled iff within budget.
		if now-submit <= budget {
			return 1
		}
		return budget / (now - submit)
	}
	if alloc <= 0 {
		return 0
	}
	projected := (now - submit) + overhead + remainingWork/alloc
	if projected <= budget {
		return 1
	}
	return budget / projected
}
