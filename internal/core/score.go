package core

import (
	"math"

	"energysched/internal/cluster"
	"energysched/internal/sla"
	"energysched/internal/vm"
)

// shadow is the solver's working copy of the system: real node loads
// plus the hypothetical moves applied so far during one hill-climbing
// pass. Scores are always computed against the shadow so each
// iteration sees the consequences of earlier moves.
type shadow struct {
	nodes []*cluster.Node
	// cpu, mem, count are the shadow reservations per node index.
	cpu, mem []float64
	count    []int
	// assign maps candidate index -> node index (-1 = virtual host).
	assign []int
	// initial is the assignment before planning (-1 = queued).
	initial []int
	vms     []*vm.VM
	now     float64
	// byID maps node ID -> node index; kept on the shadow so the
	// scheduler's scratch shadow reuses it across rounds.
	byID map[int]int
}

func newShadow(now float64, nodes []*cluster.Node, vms []*vm.VM) *shadow {
	s := &shadow{}
	s.reset(now, nodes, vms)
	return s
}

// reset points the shadow at a new round's hosts and candidates,
// reusing the previous round's slices and map when capacity allows.
func (s *shadow) reset(now float64, nodes []*cluster.Node, vms []*vm.VM) {
	s.nodes, s.vms, s.now = nodes, vms, now
	s.cpu = grow(s.cpu, len(nodes))
	s.mem = grow(s.mem, len(nodes))
	s.count = grow(s.count, len(nodes))
	s.assign = grow(s.assign, len(vms))
	s.initial = grow(s.initial, len(vms))
	if s.byID == nil {
		s.byID = make(map[int]int, len(nodes))
	} else {
		clear(s.byID)
	}
	for i, n := range nodes {
		s.byID[n.ID] = i
		// The node maintains its reservation sums incrementally
		// (AddVM/RemoveVM), so seeding the shadow is O(1) per node and
		// — critically for the cross-round matrix cache — the loads of
		// an unchanged node are bit-identical between rounds (a map
		// walk would re-add floats in random order).
		s.cpu[i] = n.CPUReserved()
		s.mem[i] = n.MemReserved()
		s.count[i] = len(n.VMs)
	}
	for i, v := range vms {
		s.assign[i] = -1
		if v.Active() {
			if idx, ok := s.byID[v.Host]; ok {
				s.assign[i] = idx
			}
		}
		s.initial[i] = s.assign[i]
	}
}

// grow returns a slice of length n, reusing buf's capacity.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// move reassigns candidate vi to node index ni (must differ from the
// current assignment), updating shadow loads.
func (s *shadow) move(vi, ni int) {
	v := s.vms[vi]
	if old := s.assign[vi]; old >= 0 {
		s.cpu[old] -= v.Req.CPU
		s.mem[old] -= v.Req.Mem
		s.count[old]--
	}
	s.assign[vi] = ni
	if ni >= 0 {
		s.cpu[ni] += v.Req.CPU
		s.mem[ni] += v.Req.Mem
		s.count[ni]++
	}
}

// occupation returns the shadow occupation of node ni if the VM vi
// were (also) hosted there: the max of CPU and memory utilization.
// If vi is already assigned to ni, the shadow load already includes
// it.
func (s *shadow) occupation(ni, vi int) float64 {
	n := s.nodes[ni]
	cpu, mem := s.cpu[ni], s.mem[ni]
	if s.assign[vi] != ni {
		v := s.vms[vi]
		cpu += v.Req.CPU
		mem += v.Req.Mem
	}
	occ := cpu / n.Class.CPU
	if n.Class.Mem > 0 {
		if m := mem / n.Class.Mem; m > occ {
			occ = m
		}
	}
	return occ
}

// vmCount returns the number of VMs node ni would host with vi there.
func (s *shadow) vmCount(ni, vi int) int {
	c := s.count[ni]
	if s.assign[vi] != ni {
		c++
	}
	return c
}

// score computes Score(h, vm) — the full penalty sum of §III-A — for
// candidate vi on node ni, against the shadow state. +Inf marks an
// infeasible combination.
//
// The sum is split into two halves so the cross-round matrix cache can
// carry one of them between scheduling rounds:
//
//   - scoreBase: the penalty families whose value does not depend on
//     virtual time (Preq/Pres gates, Pconc, Ppwr, Pfault). For an
//     unchanged ⟨node, VM⟩ pair this half is bit-identical between
//     rounds and is reused from the previous round's matrix.
//   - scoreTime: the time-dependent families (Pvirt's Tr decay, PSLA's
//     fulfillment estimate). These depend on the node only through its
//     class and through whether it is the VM's current host, so each
//     round recomputes them once per ⟨VM, class⟩ instead of per cell.
//
// Both solvers and both build paths compose the two halves with the
// same float grouping (base + time), so cached and fresh evaluations
// are bit-identical and the solvers replay each other's decisions
// exactly.
func (sch *Scheduler) score(s *shadow, ni, vi int) float64 {
	b := sch.scoreBase(s, ni, vi)
	if math.IsInf(b, 1) {
		return b
	}
	t := sch.scoreTime(s, ni, vi)
	if math.IsInf(t, 1) {
		return t
	}
	return b + t
}

// scoreBase is the time-independent half of Score(h, vm): the Preq and
// Pres feasibility gates plus Pconc, Ppwr and Pfault. It depends only
// on the node's observable state (power state, loads, in-flight
// operations, reliability, class) and the VM's requirements and
// current host — the exact fields the cross-round snapshot keys on.
func (sch *Scheduler) scoreBase(s *shadow, ni, vi int) float64 {
	n := s.nodes[ni]
	v := s.vms[vi]
	cfg := &sch.cfg

	// P_req: hardware and software requirements (§III-A1).
	if !n.Satisfies(v.Req) || n.State != cluster.On {
		return math.Inf(1)
	}
	// P_res: resource requirements — occupation after allocation must
	// not exceed 100 % (§III-A2). Computed once here and shared with
	// P_pwr below: occupation is the single hottest term of the score.
	occ := s.occupation(ni, vi)
	if occ > 1.0+1e-9 {
		return math.Inf(1)
	}

	total := 0.0

	// P_conc: concurrency of in-flight operations on the host
	// (§III-A3, last part).
	if cfg.EnableConc {
		total += sch.pConc(n, v, s, ni, vi)
	}

	// P_pwr: power efficiency — reward fillable hosts, punish
	// emptiable ones (§III-A4).
	if cfg.EnablePower {
		total += sch.pPower(s, ni, vi, occ)
	}

	// P_fault: reliability (§III-A6).
	if cfg.EnableFault {
		total += ((1 - n.Reliability) - v.FaultTolerance) * cfg.Cfail
	}

	return total
}

// scoreTime is the time-dependent half of Score(h, vm): Pvirt and
// PSLA, plus the in-operation pin that replaces Pvirt when that family
// is disabled. It depends on the node only through its class and
// through whether it is the VM's current host.
func (sch *Scheduler) scoreTime(s *shadow, ni, vi int) float64 {
	if !sch.cfg.EnableVirt && s.vms[vi].InOperation() && s.assign[vi] != s.initial[vi] {
		// Even without the penalty family, a VM under an in-flight
		// operation cannot be acted on.
		return math.Inf(1)
	}
	if ni == s.initial[vi] {
		return sch.scoreTimeStay(s, vi)
	}
	return sch.scoreTimeMove(s, vi, s.nodes[ni].Class)
}

// scoreTimeStay is scoreTime at the VM's current host: Pvirt is zero
// (no operation needed) and PSLA sees no operation overhead.
func (sch *Scheduler) scoreTimeStay(s *shadow, vi int) float64 {
	total := 0.0
	if sch.cfg.EnableSLA {
		p, infinite := sch.pSLAWith(s, vi, 0)
		if infinite {
			return math.Inf(1)
		}
		total += p
	}
	return total
}

// scoreTimeMove is scoreTime for placing or migrating vi onto a node
// of class cl that is not its current host. One evaluation serves
// every such node of the class in a round.
func (sch *Scheduler) scoreTimeMove(s *shadow, vi int, cl *cluster.Class) float64 {
	cfg := &sch.cfg
	total := 0.0

	// P_virt: virtualization overheads (§III-A3).
	if cfg.EnableVirt {
		p, infinite := sch.pVirtMove(s, vi, cl)
		if infinite {
			return math.Inf(1)
		}
		total += p
	}

	// P_SLA: dynamic SLA enforcement (§III-A5).
	if cfg.EnableSLA {
		overhead := cl.MigrateCost
		if s.vms[vi].State == vm.Queued {
			overhead = cl.CreateCost
		}
		p, infinite := sch.pSLAWith(s, vi, overhead)
		if infinite {
			return math.Inf(1)
		}
		total += p
	}

	return total
}

// pVirtMove computes the virtualization-overhead penalty:
//
//	∞            if an operation is in flight on the VM
//	Cc(h)        if the VM is new (queued)
//	Pm(h, vm)    otherwise (migration penalty)
//
// with Pm = 2·Cm when the user-estimated remaining time Tr is shorter
// than the migration itself (migrating a nearly-finished VM is pure
// waste), and Cm²/(2·Tr) otherwise — decaying as more remaining time
// amortizes the move. The stay case (Pvirt = 0 at the VM's current
// host) is handled by scoreTime's dispatch; this function covers a
// node of class cl that is not the VM's current host, and depends on
// the node only through its class, so the matrix build evaluates it
// once per ⟨VM, class⟩.
func (sch *Scheduler) pVirtMove(s *shadow, vi int, cl *cluster.Class) (penalty float64, infinite bool) {
	v := s.vms[vi]
	if v.InOperation() {
		return 0, true
	}
	if v.State == vm.Queued {
		return cl.CreateCost, false
	}
	cm := cl.MigrateCost
	tr := v.UserRemainingTime(s.now)
	if tr < cm {
		return 2 * cm, false
	}
	return cm * cm / (2 * tr), false
}

// pConc charges a host's in-flight creation/migration work against
// VMs that are not already running there: landing on a node busy
// creating or migrating other VMs races for disk and CPU.
func (sch *Scheduler) pConc(n *cluster.Node, v *vm.VM, s *shadow, ni, vi int) float64 {
	if s.initial[vi] == ni {
		return 0
	}
	return float64(n.CreatingOps)*n.Class.CreateCost + float64(n.MigratingOps)*n.Class.MigrateCost
}

// pPower implements P_pwr = Tempty(h)·Ce − O(h,vm)·Cf: hosts left
// with few VMs are penalized (we want them drained and turned off),
// and fuller hosts are rewarded to attract consolidation. occ is the
// already-computed occupation O(h,vm).
func (sch *Scheduler) pPower(s *shadow, ni, vi int, occ float64) float64 {
	cfg := &sch.cfg
	p := 0.0
	if s.vmCount(ni, vi) <= cfg.THempty {
		p += cfg.Cempty
	}
	p -= occ * cfg.Cfill
	return p
}

// pSLAWith implements the dynamic SLA enforcement penalty from the
// estimated fulfillment of the VM given the operation overhead of the
// candidate host (zero when the VM would stay put).
func (sch *Scheduler) pSLAWith(s *shadow, vi int, overhead float64) (penalty float64, infinite bool) {
	cfg := &sch.cfg
	v := s.vms[vi]
	// Assume the candidate host can grant the full requested CPU
	// (P_res already guaranteed the reservation fits).
	f := sla.Fulfillment(s.now, v.Submit, v.Deadline, v.Remaining(), v.Req.CPU, overhead)
	switch {
	case f >= 1:
		return 0, false
	case f > cfg.THsla:
		return cfg.Csla, false
	default:
		return 0, true
	}
}
