package core

import (
	"math"

	"energysched/internal/cluster"
	"energysched/internal/sla"
	"energysched/internal/vm"
)

// shadow is the solver's working copy of the system: real node loads
// plus the hypothetical moves applied so far during one hill-climbing
// pass. Scores are always computed against the shadow so each
// iteration sees the consequences of earlier moves.
type shadow struct {
	nodes []*cluster.Node
	// cpu, mem, count are the shadow reservations per node index.
	cpu, mem []float64
	count    []int
	// assign maps candidate index -> node index (-1 = virtual host).
	assign []int
	// initial is the assignment before planning (-1 = queued).
	initial []int
	vms     []*vm.VM
	now     float64
	// byID maps node ID -> node index; kept on the shadow so the
	// scheduler's scratch shadow reuses it across rounds.
	byID map[int]int
}

func newShadow(now float64, nodes []*cluster.Node, vms []*vm.VM) *shadow {
	s := &shadow{}
	s.reset(now, nodes, vms)
	return s
}

// reset points the shadow at a new round's hosts and candidates,
// reusing the previous round's slices and map when capacity allows.
func (s *shadow) reset(now float64, nodes []*cluster.Node, vms []*vm.VM) {
	s.nodes, s.vms, s.now = nodes, vms, now
	s.cpu = grow(s.cpu, len(nodes))
	s.mem = grow(s.mem, len(nodes))
	s.count = grow(s.count, len(nodes))
	s.assign = grow(s.assign, len(vms))
	s.initial = grow(s.initial, len(vms))
	if s.byID == nil {
		s.byID = make(map[int]int, len(nodes))
	} else {
		clear(s.byID)
	}
	for i, n := range nodes {
		s.byID[n.ID] = i
		// Single pass over the node's VM map (CPUReserved and
		// MemReserved would each walk it separately).
		var cpu, mem float64
		for _, v := range n.VMs {
			cpu += v.Req.CPU
			mem += v.Req.Mem
		}
		s.cpu[i] = cpu
		s.mem[i] = mem
		s.count[i] = len(n.VMs)
	}
	for i, v := range vms {
		s.assign[i] = -1
		if v.Active() {
			if idx, ok := s.byID[v.Host]; ok {
				s.assign[i] = idx
			}
		}
		s.initial[i] = s.assign[i]
	}
}

// grow returns a slice of length n, reusing buf's capacity.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// move reassigns candidate vi to node index ni (must differ from the
// current assignment), updating shadow loads.
func (s *shadow) move(vi, ni int) {
	v := s.vms[vi]
	if old := s.assign[vi]; old >= 0 {
		s.cpu[old] -= v.Req.CPU
		s.mem[old] -= v.Req.Mem
		s.count[old]--
	}
	s.assign[vi] = ni
	if ni >= 0 {
		s.cpu[ni] += v.Req.CPU
		s.mem[ni] += v.Req.Mem
		s.count[ni]++
	}
}

// occupation returns the shadow occupation of node ni if the VM vi
// were (also) hosted there: the max of CPU and memory utilization.
// If vi is already assigned to ni, the shadow load already includes
// it.
func (s *shadow) occupation(ni, vi int) float64 {
	n := s.nodes[ni]
	cpu, mem := s.cpu[ni], s.mem[ni]
	if s.assign[vi] != ni {
		v := s.vms[vi]
		cpu += v.Req.CPU
		mem += v.Req.Mem
	}
	occ := cpu / n.Class.CPU
	if n.Class.Mem > 0 {
		if m := mem / n.Class.Mem; m > occ {
			occ = m
		}
	}
	return occ
}

// vmCount returns the number of VMs node ni would host with vi there.
func (s *shadow) vmCount(ni, vi int) int {
	c := s.count[ni]
	if s.assign[vi] != ni {
		c++
	}
	return c
}

// score computes Score(h, vm) — the full penalty sum of §III-A — for
// candidate vi on node ni, against the shadow state. +Inf marks an
// infeasible combination.
func (sch *Scheduler) score(s *shadow, ni, vi int) float64 {
	n := s.nodes[ni]
	v := s.vms[vi]
	cfg := &sch.cfg

	// P_req: hardware and software requirements (§III-A1).
	if !n.Satisfies(v.Req) || n.State != cluster.On {
		return math.Inf(1)
	}
	// P_res: resource requirements — occupation after allocation must
	// not exceed 100 % (§III-A2). Computed once here and shared with
	// P_pwr below: occupation is the single hottest term of the score.
	occ := s.occupation(ni, vi)
	if occ > 1.0+1e-9 {
		return math.Inf(1)
	}

	total := 0.0

	// P_virt: virtualization overheads (§III-A3).
	if cfg.EnableVirt {
		p, infinite := sch.pVirt(s, ni, vi)
		if infinite {
			return math.Inf(1)
		}
		total += p
	} else if v.InOperation() && s.assign[vi] != s.initial[vi] {
		// Even without the penalty family, a VM under an in-flight
		// operation cannot be acted on.
		return math.Inf(1)
	}

	// P_conc: concurrency of in-flight operations on the host
	// (§III-A3, last part).
	if cfg.EnableConc {
		total += sch.pConc(n, v, s, ni, vi)
	}

	// P_pwr: power efficiency — reward fillable hosts, punish
	// emptiable ones (§III-A4).
	if cfg.EnablePower {
		total += sch.pPower(s, ni, vi, occ)
	}

	// P_SLA: dynamic SLA enforcement (§III-A5).
	if cfg.EnableSLA {
		p, infinite := sch.pSLA(s, ni, vi)
		if infinite {
			return math.Inf(1)
		}
		total += p
	}

	// P_fault: reliability (§III-A6).
	if cfg.EnableFault {
		total += ((1 - n.Reliability) - v.FaultTolerance) * cfg.Cfail
	}

	return total
}

// pVirt computes the virtualization-overhead penalty:
//
//	0            if the VM stays on its current host
//	∞            if an operation is in flight on the VM
//	Cc(h)        if the VM is new (queued)
//	Pm(h, vm)    otherwise (migration penalty)
//
// with Pm = 2·Cm when the user-estimated remaining time Tr is shorter
// than the migration itself (migrating a nearly-finished VM is pure
// waste), and Cm²/(2·Tr) otherwise — decaying as more remaining time
// amortizes the move.
func (sch *Scheduler) pVirt(s *shadow, ni, vi int) (penalty float64, infinite bool) {
	v := s.vms[vi]
	n := s.nodes[ni]
	if s.assign[vi] == ni && ni == s.initial[vi] {
		return 0, false
	}
	if ni == s.initial[vi] {
		// Moving back to where it really is: no operation needed.
		return 0, false
	}
	if v.InOperation() {
		return 0, true
	}
	if v.State == vm.Queued {
		return n.Class.CreateCost, false
	}
	cm := n.Class.MigrateCost
	tr := v.UserRemainingTime(s.now)
	if tr < cm {
		return 2 * cm, false
	}
	return cm * cm / (2 * tr), false
}

// pConc charges a host's in-flight creation/migration work against
// VMs that are not already running there: landing on a node busy
// creating or migrating other VMs races for disk and CPU.
func (sch *Scheduler) pConc(n *cluster.Node, v *vm.VM, s *shadow, ni, vi int) float64 {
	if s.initial[vi] == ni {
		return 0
	}
	return float64(n.CreatingOps)*n.Class.CreateCost + float64(n.MigratingOps)*n.Class.MigrateCost
}

// pPower implements P_pwr = Tempty(h)·Ce − O(h,vm)·Cf: hosts left
// with few VMs are penalized (we want them drained and turned off),
// and fuller hosts are rewarded to attract consolidation. occ is the
// already-computed occupation O(h,vm).
func (sch *Scheduler) pPower(s *shadow, ni, vi int, occ float64) float64 {
	cfg := &sch.cfg
	p := 0.0
	if s.vmCount(ni, vi) <= cfg.THempty {
		p += cfg.Cempty
	}
	p -= occ * cfg.Cfill
	return p
}

// pSLA implements the dynamic SLA enforcement penalty from the
// estimated fulfillment of the VM on the candidate host.
func (sch *Scheduler) pSLA(s *shadow, ni, vi int) (penalty float64, infinite bool) {
	cfg := &sch.cfg
	v := s.vms[vi]
	n := s.nodes[ni]
	overhead := 0.0
	if s.initial[vi] != ni {
		if v.State == vm.Queued {
			overhead = n.Class.CreateCost
		} else {
			overhead = n.Class.MigrateCost
		}
	}
	// Assume the candidate host can grant the full requested CPU
	// (P_res already guaranteed the reservation fits).
	f := sla.Fulfillment(s.now, v.Submit, v.Deadline, v.Remaining(), v.Req.CPU, overhead)
	switch {
	case f >= 1:
		return 0, false
	case f > cfg.THsla:
		return cfg.Csla, false
	default:
		return 0, true
	}
}
