package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/policy"
	"energysched/internal/vm"
)

// The sharded parallel engine must be observationally identical to the
// serial solver: same actions in the same order, same applied moves
// and limit hits, at every shard count — the deterministic-arbiter
// contract. These tests drive the engine over the same randomized
// scenario generator as the serial differential tests, across shard
// counts and cluster sizes up to 10× the paper's fleet, with real
// churn between rounds so the per-shard cross-round carry is exercised
// too.

// shardCounts are the K values the differential tests sweep:
// degenerate (1), even splits, a count that does not divide typical
// host counts (7), and whatever the machine's GOMAXPROCS is.
func shardCounts() []int {
	return []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)}
}

// TestShardedDifferentialRandomRounds compares the sharded engine
// against the serial incremental solver over randomized single rounds
// at every shard count.
func TestShardedDifferentialRandomRounds(t *testing.T) {
	for seed := 0; seed < 120; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		ctx, cfg := randomScenario(r)
		serial := MustScheduler(cfg)
		want := renderActions(serial.Schedule(ctx))
		for _, k := range shardCounts() {
			shCfg := cfg
			shCfg.Shards = k
			sharded := MustScheduler(shCfg)
			got := renderActions(sharded.Schedule(ctx))
			if len(got) != len(want) {
				t.Fatalf("seed %d K=%d: action count diverged: sharded %v vs serial %v", seed, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d K=%d: action %d diverged: sharded %q vs serial %q", seed, k, i, got[i], want[i])
				}
			}
			if sharded.Stats.Moves != serial.Stats.Moves {
				t.Fatalf("seed %d K=%d: moves diverged: %d vs %d", seed, k, sharded.Stats.Moves, serial.Stats.Moves)
			}
			if sharded.Stats.LimitHits != serial.Stats.LimitHits {
				t.Fatalf("seed %d K=%d: limit hits diverged: %d vs %d", seed, k, sharded.Stats.LimitHits, serial.Stats.LimitHits)
			}
		}
	}
}

// churnCluster builds an all-on cluster of roughly n nodes across the
// paper's three class shapes.
func churnCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	classes := cluster.PaperClasses()
	scale := float64(n) / 100.0
	for i := range classes {
		classes[i].Count = int(float64(classes[i].Count)*scale + 0.5)
		if classes[i].Count < 1 {
			classes[i].Count = 1
		}
	}
	c := cluster.MustNew(classes)
	for _, node := range c.Nodes {
		node.SetState(cluster.On)
	}
	return c
}

// TestShardedDifferentialChurnSizes is the seeded property-based
// differential test of the issue: randomized cluster sizes from 10 to
// 1000 nodes, random churn sequences (arrivals, completions, demand
// updates, power transitions, applied actions), and every K in
// shardCounts(). Each round the sharded engine must emit exactly the
// serial solver's actions, and across the run its per-shard carry must
// actually reuse cells.
func TestShardedDifferentialChurnSizes(t *testing.T) {
	sizes := []int{10, 33, 100}
	rounds := 25
	if testing.Short() {
		sizes = []int{10, 33}
	} else {
		sizes = append(sizes, 1000)
	}
	for _, size := range sizes {
		size := size
		t.Run(fmt.Sprintf("nodes=%d", size), func(t *testing.T) {
			if size >= 1000 {
				t.Parallel()
			}
			for _, k := range shardCounts() {
				r := rand.New(rand.NewSource(int64(7700 + size + k)))
				c := churnCluster(t, size)
				cSh := churnCluster(t, size)

				cfg := DefaultConfig()
				cfg.MigrationCooldown = 600
				serial := MustScheduler(cfg)
				shCfg := cfg
				shCfg.Shards = k
				sharded := MustScheduler(shCfg)

				vms := []*vm.VM{}
				vmsSh := []*vm.VM{}
				nextID := 0
				now := 0.0
				nRounds := rounds
				if size >= 1000 {
					nRounds = 6 // a 1000-node round is ~30× a 100-node one
				}
				arrivals := 1 + size/20

				for round := 0; round < nRounds; round++ {
					// --- identical churn on both twins ---
					for a := r.Intn(arrivals) + 1; a > 0; a-- {
						req := vm.Requirements{
							CPU: float64(50 * (1 + r.Intn(8))),
							Mem: float64(5 * (1 + r.Intn(6))),
						}
						dur := 600 + 7200*r.Float64()
						v := vm.New(nextID, req, now, dur, now+3600+14400*r.Float64())
						vSh := vm.New(nextID, req, now, dur, now+3600+14400*r.Float64())
						nextID++
						vms, vmsSh = append(vms, v), append(vmsSh, vSh)
					}
					if r.Float64() < 0.3 {
						running := runningVMs(vms)
						if len(running) > 0 {
							i := r.Intn(len(running))
							v := running[i]
							vSh := vmsSh[v.ID]
							c.Nodes[v.Host].RemoveVM(v)
							cSh.Nodes[vSh.Host].RemoveVM(vSh)
							v.State, vSh.State = vm.Completed, vm.Completed
							v.Touch()
							vSh.Touch()
						}
					}
					if r.Float64() < 0.3 {
						i := r.Intn(len(c.Nodes))
						n, nSh := c.Nodes[i], cSh.Nodes[i]
						switch {
						case n.State == cluster.Off:
							n.SetState(cluster.On)
							nSh.SetState(cluster.On)
						case n.State == cluster.On && len(n.VMs) == 0 && onlineCount(c) > 1:
							n.SetState(cluster.Off)
							nSh.SetState(cluster.Off)
						}
					}
					if r.Float64() < 0.2 {
						for i, v := range vms {
							if v.State == vm.Queued {
								cpu := float64(50 * (1 + r.Intn(8)))
								v.Req.CPU = cpu
								vmsSh[i].Req.CPU = cpu
								v.Touch()
								vmsSh[i].Touch()
								break
							}
						}
					}

					// --- the round on both twins ---
					mkCtx := func(cl *cluster.Cluster, pop []*vm.VM) *policy.Context {
						var queue, active []*vm.VM
						for _, v := range pop {
							switch {
							case v.State == vm.Queued:
								queue = append(queue, v)
							case v.Active():
								active = append(active, v)
							}
						}
						return &policy.Context{
							Now: now, Cluster: cl, Queue: queue, Active: active,
							LambdaMin: 0.3, LambdaMax: 0.9,
						}
					}
					want := serial.Schedule(mkCtx(c, vms))
					got := sharded.Schedule(mkCtx(cSh, vmsSh))
					wa, ga := renderActions(want), renderActions(got)
					if len(wa) != len(ga) {
						t.Fatalf("K=%d round %d: action count diverged: sharded %d vs serial %d\nsharded: %v\nserial:  %v",
							k, round, len(ga), len(wa), ga, wa)
					}
					for i := range wa {
						if wa[i] != ga[i] {
							t.Fatalf("K=%d round %d: action %d diverged: sharded %q vs serial %q", k, round, i, ga[i], wa[i])
						}
					}

					// --- apply the actions as instant actuation, twice ---
					apply := func(cl *cluster.Cluster, acts []policy.Action) {
						for _, a := range acts {
							switch act := a.(type) {
							case policy.Place:
								v := act.VM
								v.State = vm.Running
								v.Host = act.Node
								v.Touch()
								cl.Nodes[act.Node].AddVM(v)
							case policy.Migrate:
								v := act.VM
								cl.Nodes[v.Host].RemoveVM(v)
								cl.Nodes[act.To].AddVM(v)
								v.Host = act.To
								v.LastMigrate = now
								v.Migrations++
								v.Touch()
							}
						}
					}
					apply(c, want)
					apply(cSh, got)
					now += 60
				}

				if sharded.Stats.Moves != serial.Stats.Moves {
					t.Fatalf("K=%d: total moves diverged: sharded %d vs serial %d", k, sharded.Stats.Moves, serial.Stats.Moves)
				}
				if sharded.Stats.ReusedCells == 0 {
					t.Fatalf("K=%d: sharded cross-round carry never reused a cell", k)
				}
				if sharded.Stats.ShardRounds == 0 || sharded.Stats.LastShards < 1 {
					t.Fatalf("K=%d: sharded engine did not run (%+v)", k, sharded.Stats)
				}
			}
		})
	}
}

// TestShardedShardCount pins the Config.Shards resolution: 0 never
// reaches the sharded engine, -1 resolves to GOMAXPROCS, and a K above
// the host count clamps to the host count.
func TestShardedShardCount(t *testing.T) {
	c := testCluster(t, 3)
	mkCtx := func() *policy.Context {
		return ctxFor(c, []*vm.VM{vm.New(0, vm.Requirements{CPU: 100, Mem: 5}, 0, 3600, 7200)}, nil)
	}

	cfg := SBConfig()
	cfg.Shards = 64 // > 3 hosts
	sch := MustScheduler(cfg)
	sch.Schedule(mkCtx())
	if sch.Stats.LastShards != 3 {
		t.Errorf("K=64 over 3 hosts: LastShards = %d, want 3", sch.Stats.LastShards)
	}

	cfg.Shards = -1
	sch = MustScheduler(cfg)
	sch.Schedule(mkCtx())
	want := runtime.GOMAXPROCS(0)
	if want > 3 {
		want = 3
	}
	if sch.Stats.LastShards != want {
		t.Errorf("K=-1: LastShards = %d, want %d", sch.Stats.LastShards, want)
	}

	cfg.Shards = 0
	sch = MustScheduler(cfg)
	sch.Schedule(mkCtx())
	if sch.Stats.ShardRounds != 0 {
		t.Errorf("K=0 ran the sharded engine (%d rounds)", sch.Stats.ShardRounds)
	}
}

// TestShardedPartitionBalance: round-robin dealing keeps shard sizes
// within one column of each other, and every host lands in exactly one
// shard.
func TestShardedPartitionBalance(t *testing.T) {
	c := churnCluster(t, 100)
	cfg := SBConfig()
	cfg.Shards = 7
	sch := MustScheduler(cfg)
	hosts := c.AppendOnline(nil)
	sch.collectClasses(hosts)
	sch.partitionColumns(hosts, 7)

	seen := make([]int, len(hosts))
	min, max := len(hosts), 0
	for _, sh := range sch.shd.shards[:sch.shd.k] {
		if len(sh.cols) < min {
			min = len(sh.cols)
		}
		if len(sh.cols) > max {
			max = len(sh.cols)
		}
		prev := -1
		for _, ni := range sh.cols {
			if ni <= prev {
				t.Fatalf("shard %d columns not strictly ascending: %v", sh.idx, sh.cols)
			}
			prev = ni
			seen[ni]++
		}
	}
	if max-min > 1 {
		t.Errorf("shard sizes unbalanced: min %d max %d", min, max)
	}
	for ni, n := range seen {
		if n != 1 {
			t.Errorf("host column %d owned by %d shards", ni, n)
		}
	}
}

// TestShardedFreshMatrixIdentical: the carry ablation toggle must not
// change sharded actions either.
func TestShardedFreshMatrixIdentical(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		r := rand.New(rand.NewSource(int64(3300 + seed)))
		ctx, cfg := randomScenario(r)
		cfg.Shards = 4
		carry := MustScheduler(cfg)
		freshCfg := cfg
		freshCfg.FreshMatrix = true
		fresh := MustScheduler(freshCfg)
		diffRound(t, seed, carry, fresh, ctx)
	}
}
