package core

import "fmt"

// Adaptive adjusts the power manager's λmin threshold at runtime from
// observed client satisfaction — the dynamic-threshold extension the
// paper names as future work ("A next step would be to dynamically
// adjust these thresholds", §V-A).
//
// The controller is a conservative one-knob rule: when the jobs
// completed in the last window were satisfied above the target, the
// datacenter can afford to shut nodes down earlier (raise λmin); when
// satisfaction dips below target, back off (lower λmin). λmax stays
// fixed — it is the safety response to load spikes and moving it
// interacts badly with the boot pipeline.
type Adaptive struct {
	// PM is the managed power manager (thresholds are mutated in
	// place).
	PM *PowerManager
	// TargetS is the satisfaction target in percent (default 98, the
	// level the paper equalizes policies at).
	TargetS float64
	// Margin is the dead band above the target before tightening
	// (default 1 percentage point).
	Margin float64
	// Step is the λmin adjustment per decision, as a fraction
	// (default 0.05 = five percentage points).
	Step float64
	// Floor and Ceil bound λmin (defaults 0.10 and λmax − 0.10).
	Floor, Ceil float64
	// Interval is the minimum seconds between adjustments (default
	// 7200 — give the fleet time to settle between moves).
	Interval float64

	lastAdjust float64
	started    bool
	winSum     float64
	winN       int
	// Adjustments counts threshold moves, for reports.
	Adjustments int
}

// NewAdaptive wraps a power manager with the default controller.
func NewAdaptive(pm *PowerManager) (*Adaptive, error) {
	if pm == nil {
		return nil, fmt.Errorf("core: adaptive controller needs a power manager")
	}
	return &Adaptive{
		PM:       pm,
		TargetS:  98,
		Margin:   1,
		Step:     0.05,
		Floor:    0.10,
		Ceil:     pm.LambdaMax - 0.10,
		Interval: 7200,
	}, nil
}

// Add feeds one completed job's satisfaction into the current window.
func (a *Adaptive) Add(satisfaction float64) {
	a.winSum += satisfaction
	a.winN++
}

// Tick evaluates the controller at virtual time now: if the decision
// interval elapsed and the window holds at least one completion, the
// window is consumed and λmin possibly adjusted. It reports whether a
// threshold adjustment happened.
func (a *Adaptive) Tick(now float64) bool {
	if a.started && now-a.lastAdjust < a.Interval {
		return false
	}
	if a.winN == 0 {
		return false
	}
	meanS := a.winSum / float64(a.winN)
	a.winSum, a.winN = 0, 0
	a.started = true
	a.lastAdjust = now

	lmin := a.PM.LambdaMin
	switch {
	case meanS < a.TargetS && lmin > a.Floor:
		lmin -= a.Step
		if lmin < a.Floor {
			lmin = a.Floor
		}
	case meanS > a.TargetS+a.Margin && lmin < a.Ceil:
		lmin += a.Step
		if lmin > a.Ceil {
			lmin = a.Ceil
		}
	default:
		return false
	}
	if lmin == a.PM.LambdaMin {
		return false
	}
	a.PM.LambdaMin = lmin
	a.Adjustments++
	return true
}
