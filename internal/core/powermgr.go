package core

import (
	"fmt"
	"math"
	"sort"

	"energysched/internal/cluster"
	"energysched/internal/vm"
)

// PowerManager decides when to turn nodes off to save power and on to
// absorb load (§III-C). Its inputs are the working-ratio thresholds
// λmin and λmax: when working/online exceeds λmax it boots stopped
// nodes, when the ratio falls below λmin it shuts idle ones down, in
// both cases moving the ratio back to the middle of the band
// (hysteresis, so the fleet does not thrash at a threshold). On top
// of the ratio rule it boots capacity for queued VMs that no online
// node can currently hold — without this a fully-drained datacenter
// would never wake up.
type PowerManager struct {
	// LambdaMin, LambdaMax are the thresholds as fractions in (0, 1].
	LambdaMin, LambdaMax float64
	// MinExec is the minimum number of operative machines (§III-C's
	// minexec parameter).
	MinExec int
	// BootsPerRound caps how many nodes one planning round may turn
	// on (0 = default 1). Real middleware staggers power-on (PDU
	// inrush limits, PXE storms), so capacity trails demand spikes —
	// consolidating policies barely notice, one-job-per-node and
	// random policies queue behind the boot pipeline.
	BootsPerRound int
	// BootInterval is the minimum spacing between boot initiations in
	// seconds (0 = default 90). Together with BootsPerRound it forms
	// the boot pipeline's rate limit.
	BootInterval float64

	lastBoot   float64
	bootedOnce bool
}

// NewPowerManager validates thresholds given in percent (30, 90) or
// fractions (0.30, 0.90) — values above 1 are treated as percent.
func NewPowerManager(lambdaMin, lambdaMax float64, minExec int) (*PowerManager, error) {
	if lambdaMin > 1 {
		lambdaMin /= 100
	}
	if lambdaMax > 1 {
		lambdaMax /= 100
	}
	if lambdaMin <= 0 || lambdaMax > 1 || lambdaMin >= lambdaMax {
		return nil, fmt.Errorf("core: need 0 < λmin < λmax <= 1, got %.2f, %.2f", lambdaMin, lambdaMax)
	}
	if minExec < 0 {
		return nil, fmt.Errorf("core: minexec must be non-negative, got %d", minExec)
	}
	return &PowerManager{LambdaMin: lambdaMin, LambdaMax: lambdaMax, MinExec: minExec}, nil
}

// Plan inspects the cluster and queue at virtual time now and returns
// the nodes to turn on and the idle nodes to turn off. The two slices
// are disjoint and the off slice only ever contains Idle nodes.
func (pm *PowerManager) Plan(now float64, c *cluster.Cluster, queue []*vm.VM) (on, off []*cluster.Node) {
	working, online := c.Counts()
	total := 0
	for _, n := range c.Nodes {
		if n.State != cluster.Down {
			total++
		}
	}

	mid := (pm.LambdaMin + pm.LambdaMax) / 2
	target := online
	switch {
	case online == 0:
		if working > 0 || len(queue) > 0 {
			target = maxInt(pm.MinExec, 1)
		} else {
			target = pm.MinExec
		}
	default:
		ratio := float64(working) / float64(online)
		if ratio > pm.LambdaMax {
			target = int(math.Ceil(float64(working) / mid))
		} else if ratio < pm.LambdaMin {
			target = maxInt(int(math.Ceil(float64(working)/mid)), pm.MinExec)
		}
	}

	// The working-node ratio is blind to overcommit: a drowning node
	// counts once no matter how many VMs starve on it. Watch the
	// reserved-CPU utilization of the online fleet too, and grow the
	// fleet when it passes λmax — for policies that respect the
	// occupation limit the node ratio always triggers first, so this
	// only disciplines overcommitting schedulers.
	var reserved, capacity float64
	for _, n := range c.OnlineNodes() {
		reserved += n.CPUReserved()
		capacity += n.Class.CPU
	}
	utilTarget := 0
	if capacity > 0 && reserved/capacity > pm.LambdaMax {
		avgCap := capacity / float64(online)
		utilTarget = int(math.Ceil(reserved / (pm.LambdaMax * avgCap)))
	}

	// Emergency boost: capacity for queued VMs that cannot be placed
	// on any online node right now *and* whose SLA is already at risk
	// from the wait. These boots bypass the rate limit — the paper's
	// scheduler likewise reacts to SLA violations immediately. This
	// rescue also prevents total-drain deadlock.
	emergency := pm.nodesNeededForQueue(now, c, queue)

	target = maxInt(target, working, pm.MinExec)
	if target > total {
		target = total
	}

	boots := 0
	if target > online {
		// Ratio-driven boots go through the rate-limited boot
		// pipeline: real middleware staggers power-on (PDU inrush,
		// PXE storms), so capacity trails demand spikes.
		interval := pm.BootInterval
		if interval <= 0 {
			interval = 90
		}
		if !pm.bootedOnce || now-pm.lastBoot >= interval {
			boots = target - online
			if cap := pm.BootsPerRound; cap <= 0 {
				if boots > 1 {
					boots = 1
				}
			} else if boots > cap {
				boots = cap
			}
		}
	}
	if utilTarget > online && utilTarget > target {
		// Utilization-driven boots (overcommit discipline) skip the
		// time throttle but still trickle one node per round: the
		// reserve pressure persists until the backlog drains, so the
		// fleet keeps growing as long as it is overcommitted.
		if boots < 1 {
			boots = 1
		}
	}
	if emergency > boots {
		boots = emergency
	}
	if boots > 0 {
		candidates := RankOn(c.OffNodes())
		if boots > len(candidates) {
			boots = len(candidates)
		}
		on = candidates[:boots]
		if len(on) > 0 {
			pm.lastBoot = now
			pm.bootedOnce = true
		}
	} else if target < online {
		candidates := RankOff(c.IdleNodes())
		n := online - target
		if n > len(candidates) {
			n = len(candidates)
		}
		off = candidates[:n]
	}
	return on, off
}

// nodesNeededForQueue estimates how many extra nodes must boot for
// the queued VMs that (a) no online node can currently hold and
// (b) would miss their deadline if they kept waiting: it first-fit
// packs those misfits into the best powered-off node profile.
func (pm *PowerManager) nodesNeededForQueue(now float64, c *cluster.Cluster, queue []*vm.VM) int {
	if len(queue) == 0 {
		return 0
	}
	// Find queued VMs with no online home, accounting for each
	// other's hypothetical placements on the current fleet.
	extraCPU := make(map[int]float64)
	extraMem := make(map[int]float64)
	var misfits []*vm.VM
	for _, v := range queue {
		if !pm.atRisk(now, v) {
			continue
		}
		placed := false
		for _, n := range c.OnlineNodes() {
			if !n.Satisfies(v.Req) {
				continue
			}
			cpu := (n.CPUReserved() + extraCPU[n.ID] + v.Req.CPU) / n.Class.CPU
			mem := 0.0
			if n.Class.Mem > 0 {
				mem = (n.MemReserved() + extraMem[n.ID] + v.Req.Mem) / n.Class.Mem
			}
			if math.Max(cpu, mem) <= 1.0+1e-9 {
				extraCPU[n.ID] += v.Req.CPU
				extraMem[n.ID] += v.Req.Mem
				placed = true
				break
			}
		}
		if !placed {
			misfits = append(misfits, v)
		}
	}
	if len(misfits) == 0 {
		return 0
	}
	off := c.OffNodes()
	if len(off) == 0 {
		return 0
	}
	// Pack misfits into fresh node profiles (first-fit decreasing by
	// CPU), using the class of the best boot candidate as the bin.
	ranked := RankOn(off)
	binCPU := ranked[0].Class.CPU
	binMem := ranked[0].Class.Mem
	sort.Slice(misfits, func(i, j int) bool { return misfits[i].Req.CPU > misfits[j].Req.CPU })
	type bin struct{ cpu, mem float64 }
	var bins []bin
	for _, v := range misfits {
		placed := false
		for i := range bins {
			if bins[i].cpu+v.Req.CPU <= binCPU && bins[i].mem+v.Req.Mem <= binMem {
				bins[i].cpu += v.Req.CPU
				bins[i].mem += v.Req.Mem
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, bin{v.Req.CPU, v.Req.Mem})
		}
	}
	return len(bins)
}

// BoostCreateEstimate is the creation-time estimate used when judging
// whether a queued VM's deadline is at risk (a medium-class Cc).
const BoostCreateEstimate = 40.0

// atRisk reports whether a queued VM would miss its deadline if it
// started right after one more boot cycle: projected completion
// (now + creation + remaining dedicated runtime) past the deadline.
func (pm *PowerManager) atRisk(now float64, v *vm.VM) bool {
	remaining := v.Remaining() / maxF(v.Req.CPU, 1) // seconds at full allocation
	return now+BoostCreateEstimate+remaining > v.Deadline
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
