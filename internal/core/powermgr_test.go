package core

import (
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/vm"
)

func pmCluster(t *testing.T, total, online, working int) *cluster.Cluster {
	t.Helper()
	cls := cluster.PaperClasses()[1]
	cls.Count = total
	c := cluster.MustNew([]cluster.Class{cls})
	for i := 0; i < online; i++ {
		c.Nodes[i].State = cluster.On
	}
	for i := 0; i < working; i++ {
		v := vm.New(1000+i, vm.Requirements{CPU: 100, Mem: 5}, 0, 3600, 5400)
		v.State = vm.Running
		v.Host = i
		c.Nodes[i].AddVM(v)
	}
	return c
}

func mustPM(t *testing.T, lmin, lmax float64, minExec int) *PowerManager {
	t.Helper()
	pm, err := NewPowerManager(lmin, lmax, minExec)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestNewPowerManagerValidation(t *testing.T) {
	if _, err := NewPowerManager(90, 30, 1); err == nil {
		t.Error("λmin > λmax accepted")
	}
	if _, err := NewPowerManager(0, 90, 1); err == nil {
		t.Error("zero λmin accepted")
	}
	if _, err := NewPowerManager(30, 90, -1); err == nil {
		t.Error("negative minexec accepted")
	}
	pm := mustPM(t, 30, 90, 1)
	if pm.LambdaMin != 0.3 || pm.LambdaMax != 0.9 {
		t.Errorf("percent thresholds not normalized: %v, %v", pm.LambdaMin, pm.LambdaMax)
	}
	pm2 := mustPM(t, 0.3, 0.9, 1)
	if pm2.LambdaMin != 0.3 || pm2.LambdaMax != 0.9 {
		t.Errorf("fraction thresholds mangled: %v, %v", pm2.LambdaMin, pm2.LambdaMax)
	}
}

func TestPlanBootsAboveLambdaMax(t *testing.T) {
	// 10 online, 10 working: ratio 1.0 > 0.9 → boot (throttled to 1).
	c := pmCluster(t, 20, 10, 10)
	pm := mustPM(t, 30, 90, 1)
	on, off := pm.Plan(0, c, nil)
	if len(on) != 1 || len(off) != 0 {
		t.Fatalf("plan = on %d / off %d, want 1 / 0", len(on), len(off))
	}
}

func TestPlanBootThrottle(t *testing.T) {
	c := pmCluster(t, 20, 10, 10)
	pm := mustPM(t, 30, 90, 1)
	if on, _ := pm.Plan(0, c, nil); len(on) != 1 {
		t.Fatal("first boot denied")
	}
	// Immediately after: pipeline busy.
	if on, _ := pm.Plan(1, c, nil); len(on) != 0 {
		t.Fatal("throttle ignored")
	}
	// After the interval: allowed again.
	if on, _ := pm.Plan(200, c, nil); len(on) != 1 {
		t.Fatal("boot denied after interval")
	}
}

func TestPlanShutsDownBelowLambdaMin(t *testing.T) {
	// 20 online, 2 working: ratio 0.1 < 0.3 → shut down idles toward
	// working/mid = 2/0.6 = 3.3 → target 4.
	c := pmCluster(t, 30, 20, 2)
	pm := mustPM(t, 30, 90, 1)
	on, off := pm.Plan(0, c, nil)
	if len(on) != 0 {
		t.Fatalf("booted %d nodes while under-used", len(on))
	}
	if len(off) != 16 {
		t.Fatalf("turned off %d, want 16 (down to target 4)", len(off))
	}
	for _, n := range off {
		if !n.Idle() {
			t.Fatalf("planned to turn off non-idle node %v", n)
		}
	}
}

func TestPlanRespectsMinExec(t *testing.T) {
	c := pmCluster(t, 10, 8, 0) // nothing working
	pm := mustPM(t, 30, 90, 3)
	_, off := pm.Plan(0, c, nil)
	if len(off) != 5 {
		t.Fatalf("turned off %d, want 5 (keep minexec 3)", len(off))
	}
}

func TestPlanStableInBand(t *testing.T) {
	// 10 working / 20 online = 0.5 within [0.3, 0.9]: no action.
	c := pmCluster(t, 30, 20, 10)
	pm := mustPM(t, 30, 90, 1)
	on, off := pm.Plan(0, c, nil)
	if len(on) != 0 || len(off) != 0 {
		t.Fatalf("in-band plan = on %d / off %d, want 0 / 0", len(on), len(off))
	}
}

func TestPlanWakesDrainedFleet(t *testing.T) {
	c := pmCluster(t, 10, 0, 0)
	pm := mustPM(t, 30, 90, 1)
	v := vm.New(0, vm.Requirements{CPU: 100, Mem: 5}, 0, 60, 90)
	on, _ := pm.Plan(1000, c, []*vm.VM{v})
	if len(on) == 0 {
		t.Fatal("fully drained fleet never woke up for a queued VM")
	}
}

func TestPlanEmergencyBypassesThrottle(t *testing.T) {
	// Online fleet full; a queued at-risk VM needs capacity NOW.
	c := pmCluster(t, 10, 2, 2)
	for i := 0; i < 2; i++ {
		v := vm.New(2000+i, vm.Requirements{CPU: 300, Mem: 5}, 0, 3600, 5400)
		v.State = vm.Running
		v.Host = i
		c.Nodes[i].AddVM(v)
	}
	pm := mustPM(t, 30, 90, 1)
	pm.lastBoot = 995 // pipeline busy
	pm.bootedOnce = true
	// Short job already past its slack: at risk.
	v := vm.New(1, vm.Requirements{CPU: 200, Mem: 5}, 900, 60, 900+90)
	on, _ := pm.Plan(1000, c, []*vm.VM{v})
	if len(on) == 0 {
		t.Fatal("emergency boost blocked by throttle")
	}
}

func TestPlanNoEmergencyForRelaxedVM(t *testing.T) {
	c := pmCluster(t, 10, 2, 2)
	for i := 0; i < 2; i++ {
		v := vm.New(2000+i, vm.Requirements{CPU: 300, Mem: 5}, 0, 3600, 5400)
		v.State = vm.Running
		v.Host = i
		c.Nodes[i].AddVM(v)
	}
	pm := mustPM(t, 30, 90, 1)
	pm.lastBoot = 995
	pm.bootedOnce = true
	// Plenty of deadline slack: no emergency.
	v := vm.New(1, vm.Requirements{CPU: 200, Mem: 5}, 990, 3600, 990+2*3600)
	on, _ := pm.Plan(1000, c, []*vm.VM{v})
	if len(on) != 0 {
		t.Fatalf("relaxed VM triggered %d emergency boots", len(on))
	}
}

func TestPlanUtilizationTrigger(t *testing.T) {
	// 2 online nodes drowning in reserved CPU (overcommit): the
	// utilization watchdog boots even though the node ratio is in
	// band... (2 working / 2 online = 1 > λmax anyway, so use 3
	// online with 2 heavily overcommitted).
	c := pmCluster(t, 20, 3, 2)
	for i := 0; i < 2; i++ {
		for k := 0; k < 8; k++ {
			v := vm.New(3000+8*i+k, vm.Requirements{CPU: 400, Mem: 5}, 0, 3600, 5400)
			v.State = vm.Running
			v.Host = i
			c.Nodes[i].AddVM(v)
		}
	}
	pm := mustPM(t, 30, 90, 1)
	pm.lastBoot = 0
	pm.bootedOnce = true // ratio pipeline busy at t=10
	on, _ := pm.Plan(10, c, nil)
	if len(on) == 0 {
		t.Fatal("utilization trigger did not boot")
	}
}

func TestRankOffPrefersSlowNodes(t *testing.T) {
	classes := cluster.PaperClasses()
	fast := cluster.NewNode(0, &classes[0])
	slow := cluster.NewNode(1, &classes[2])
	ranked := RankOff([]*cluster.Node{fast, slow})
	if ranked[0].ID != 1 {
		t.Errorf("RankOff[0] = node %d, want the slow node first", ranked[0].ID)
	}
}

func TestRankOnPrefersFastReliableNodes(t *testing.T) {
	classes := cluster.PaperClasses()
	slow := cluster.NewNode(0, &classes[2])
	fast := cluster.NewNode(1, &classes[0])
	flaky := cluster.NewNode(2, &classes[0])
	flaky.Reliability = 0.5
	ranked := RankOn([]*cluster.Node{slow, fast, flaky})
	if ranked[0].ID != 1 {
		t.Errorf("RankOn[0] = node %d, want the fast reliable node", ranked[0].ID)
	}
	if ranked[len(ranked)-1].ID == 1 {
		t.Error("fast reliable node ranked last")
	}
}
