package core

import (
	"fmt"
	"math/rand"
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/policy"
	"energysched/internal/vm"
)

// The incremental solver must be observationally identical to the
// naive reference evaluator: same actions in the same order, same
// number of applied moves and limit hits — only ScoreEvals may differ
// (that is the point). These tests drive both solvers over randomized
// rounds covering host heterogeneity, offline/overcommitted nodes,
// in-flight operations, queue/migration mixes, cooldowns and the
// iteration limit.

// renderActions flattens an action list into a comparable form.
func renderActions(actions []policy.Action) []string {
	out := make([]string, 0, len(actions))
	for _, a := range actions {
		switch act := a.(type) {
		case policy.Place:
			out = append(out, fmt.Sprintf("place vm%d -> n%d", act.VM.ID, act.Node))
		case policy.Migrate:
			out = append(out, fmt.Sprintf("migrate vm%d -> n%d", act.VM.ID, act.To))
		default:
			out = append(out, fmt.Sprintf("unknown %T", a))
		}
	}
	return out
}

// randomScenario builds one scheduling round: a heterogeneous cluster
// in a mixed power state and a population of queued, running,
// creating and migrating VMs, some overcommitted, some cooling down.
func randomScenario(r *rand.Rand) (*policy.Context, Config) {
	nClasses := 1 + r.Intn(3)
	classes := make([]cluster.Class, nClasses)
	for i := range classes {
		arch := "x86_64"
		if r.Float64() < 0.15 {
			arch = "arm64"
		}
		classes[i] = cluster.Class{
			Name:        fmt.Sprintf("c%d", i),
			Count:       1 + r.Intn(6),
			CPU:         float64(200 + 200*r.Intn(3)),
			Mem:         float64(50 + 50*r.Intn(2)),
			CreateCost:  float64(20 + r.Intn(41)),
			MigrateCost: float64(30 + r.Intn(61)),
			BootTime:    100,
			Arch:        arch,
			Hypervisor:  "xen",
			Reliability: 0.9 + 0.1*r.Float64(),
		}
	}
	c := cluster.MustNew(classes)
	for _, n := range c.Nodes {
		switch {
		case r.Float64() < 0.75:
			n.State = cluster.On
		case r.Float64() < 0.5:
			n.State = cluster.Off
		default:
			n.State = cluster.Booting
		}
		if n.State == cluster.On && r.Float64() < 0.2 {
			n.CreatingOps = r.Intn(3)
			n.MigratingOps = r.Intn(2)
		}
	}

	now := 5000 * r.Float64()
	var queue, active []*vm.VM
	nVMs := r.Intn(21)
	for id := 0; id < nVMs; id++ {
		req := vm.Requirements{
			CPU: float64(50 * (1 + r.Intn(8))),
			Mem: float64(5 * (1 + r.Intn(6))),
		}
		if r.Float64() < 0.1 {
			req.Arch = "sparc" // infeasible everywhere
		}
		submit := now * r.Float64()
		duration := 600 + 7200*r.Float64()
		v := vm.New(id, req, submit, duration, submit+2*duration)
		v.FaultTolerance = 0.05 * r.Float64()
		switch {
		case r.Float64() < 0.4:
			queue = append(queue, v)
		default:
			// Place on a random node regardless of capacity:
			// overcommit exercises the infeasible-current-host path.
			n := c.Nodes[r.Intn(len(c.Nodes))]
			v.Host = n.ID
			n.AddVM(v)
			v.Progress = v.Work * r.Float64()
			switch {
			case r.Float64() < 0.15:
				v.State = vm.Creating
				n.CreatingOps++
			case r.Float64() < 0.15:
				v.State = vm.Migrating
				n.MigratingOps++
			default:
				v.State = vm.Running
				if r.Float64() < 0.3 {
					// Recently migrated: inside or near the cooldown.
					v.LastMigrate = now - 4000*r.Float64()
				}
			}
			active = append(active, v)
		}
	}

	cfg := DefaultConfig()
	cfg.EnableVirt = r.Float64() < 0.8
	cfg.EnableConc = r.Float64() < 0.8
	cfg.EnablePower = r.Float64() < 0.9
	cfg.EnableSLA = r.Float64() < 0.3
	cfg.EnableFault = r.Float64() < 0.3
	cfg.Migration = r.Float64() < 0.7
	cfg.MigrationGainMin = []float64{0, 1, 35, 80}[r.Intn(4)]
	cfg.MigrationCooldown = []float64{-1, 0, 600, 3600}[r.Intn(4)]
	if r.Float64() < 0.3 {
		cfg.MaxIterations = 1 + r.Intn(6) // exercise LimitHits parity
	}

	ctx := &policy.Context{
		Now:       now,
		Cluster:   c,
		Queue:     queue,
		Active:    active,
		LambdaMin: 0.3,
		LambdaMax: 0.9,
	}
	return ctx, cfg
}

func diffRound(t *testing.T, seed int, inc, nai *Scheduler, ctx *policy.Context) {
	t.Helper()
	incActs := renderActions(inc.Schedule(ctx))
	naiActs := renderActions(nai.Schedule(ctx))
	if len(incActs) != len(naiActs) {
		t.Fatalf("seed %d: action count diverged: incremental %v vs naive %v", seed, incActs, naiActs)
	}
	for i := range incActs {
		if incActs[i] != naiActs[i] {
			t.Fatalf("seed %d: action %d diverged: incremental %q vs naive %q", seed, i, incActs[i], naiActs[i])
		}
	}
}

// TestDifferentialRandomRounds compares the two solvers over many
// randomized single rounds with fresh schedulers.
func TestDifferentialRandomRounds(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		ctx, cfg := randomScenario(r)
		inc := MustScheduler(cfg)
		naiCfg := cfg
		naiCfg.NaiveSolver = true
		nai := MustScheduler(naiCfg)
		diffRound(t, seed, inc, nai, ctx)
		if inc.Stats.Moves != nai.Stats.Moves {
			t.Fatalf("seed %d: moves diverged: %d vs %d", seed, inc.Stats.Moves, nai.Stats.Moves)
		}
		if inc.Stats.LimitHits != nai.Stats.LimitHits {
			t.Fatalf("seed %d: limit hits diverged: %d vs %d", seed, inc.Stats.LimitHits, nai.Stats.LimitHits)
		}
	}
}

// TestDifferentialScratchReuse drives one scheduler pair through many
// rounds of different shapes, so the scratch buffers (candidate slice,
// shadow, matrix) are exercised across reuse boundaries.
func TestDifferentialScratchReuse(t *testing.T) {
	cfg := SBConfig()
	inc := MustScheduler(cfg)
	naiCfg := cfg
	naiCfg.NaiveSolver = true
	nai := MustScheduler(naiCfg)
	for seed := 1000; seed < 1100; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		ctx, _ := randomScenario(r)
		diffRound(t, seed, inc, nai, ctx)
	}
}

// TestDifferentialMultiRoundChurn drives one cluster through many
// consecutive scheduling rounds with real churn applied between them
// — VM arrivals, completions, applied placements and migrations,
// demand updates, node power transitions — all through the
// epoch-bumping mutation methods the datacenter harness uses. Each
// round the carrying incremental solver and the naive oracle must
// emit identical actions, and the cross-round invalidation must stay
// within the churn: the number of rows/columns re-scored at the top
// of a round is bounded by the entities actually touched since the
// previous round (plus rows/columns that are new to the matrix).
func TestDifferentialMultiRoundChurn(t *testing.T) {
	const rounds = 60
	for seed := 0; seed < 8; seed++ {
		r := rand.New(rand.NewSource(int64(9000 + seed)))

		classes := make([]cluster.Class, 1+r.Intn(3))
		for i := range classes {
			classes[i] = cluster.Class{
				Name:        fmt.Sprintf("c%d", i),
				Count:       2 + r.Intn(4),
				CPU:         float64(200 + 200*r.Intn(3)),
				Mem:         float64(50 + 50*r.Intn(2)),
				CreateCost:  float64(20 + r.Intn(41)),
				MigrateCost: float64(30 + r.Intn(61)),
				BootTime:    100,
				Arch:        "x86_64",
				Hypervisor:  "xen",
				Reliability: 0.9 + 0.1*r.Float64(),
			}
		}
		c := cluster.MustNew(classes)
		for _, n := range c.Nodes {
			n.SetState(cluster.On)
		}

		cfg := DefaultConfig()
		cfg.EnableSLA = r.Float64() < 0.3
		cfg.EnableFault = r.Float64() < 0.3
		cfg.MigrationCooldown = 600
		inc := MustScheduler(cfg)
		naiCfg := cfg
		naiCfg.NaiveSolver = true
		nai := MustScheduler(naiCfg)

		var vms []*vm.VM
		nextID := 0
		now := 0.0
		touchedVMs := map[int]bool{}
		touchedNodes := map[int]bool{}
		prevRows := map[int]bool{}
		prevCols := map[int]bool{}

		arrive := func() {
			v := vm.New(nextID, vm.Requirements{
				CPU: float64(50 * (1 + r.Intn(8))),
				Mem: float64(5 * (1 + r.Intn(6))),
			}, now, 600+7200*r.Float64(), now+3600+14400*r.Float64())
			nextID++
			vms = append(vms, v)
			touchedVMs[v.ID] = true
		}

		for round := 0; round < rounds; round++ {
			// --- churn between rounds ---
			for k := r.Intn(3); k > 0; k-- {
				arrive()
			}
			if r.Float64() < 0.3 { // a running VM completes
				running := runningVMs(vms)
				if len(running) > 0 {
					v := running[r.Intn(len(running))]
					c.Nodes[v.Host].RemoveVM(v)
					touchedNodes[v.Host] = true
					v.State = vm.Completed
					v.Touch()
					touchedVMs[v.ID] = true
				}
			}
			if r.Float64() < 0.3 { // power transition
				n := c.Nodes[r.Intn(len(c.Nodes))]
				switch {
				case n.State == cluster.Off:
					n.SetState(cluster.On)
					touchedNodes[n.ID] = true
				case n.State == cluster.On && len(n.VMs) == 0 && onlineCount(c) > 1:
					n.SetState(cluster.Off)
					touchedNodes[n.ID] = true
				}
			}
			if r.Float64() < 0.2 { // demand update on a queued VM
				for _, v := range vms {
					if v.State == vm.Queued {
						v.Req.CPU = float64(50 * (1 + r.Intn(8)))
						v.Touch()
						touchedVMs[v.ID] = true
						break
					}
				}
			}
			queued := false
			for _, v := range vms {
				queued = queued || v.State == vm.Queued
			}
			if !queued {
				arrive() // every round must build a matrix
			}

			// --- the round itself ---
			var queue, active []*vm.VM
			for _, v := range vms {
				switch {
				case v.State == vm.Queued:
					queue = append(queue, v)
				case v.Active():
					active = append(active, v)
				}
			}
			ctx := &policy.Context{
				Now: now, Cluster: c, Queue: queue, Active: active,
				LambdaMin: 0.3, LambdaMax: 0.9,
			}
			curRows := map[int]bool{}
			for _, v := range inc.candidates(ctx, nil) {
				curRows[v.ID] = true
			}
			curCols := map[int]bool{}
			for _, n := range c.Nodes {
				if n.State == cluster.On {
					curCols[n.ID] = true
				}
			}

			before := inc.Stats
			incActs := inc.Schedule(ctx)
			naiActs := nai.Schedule(ctx)
			ia, na := renderActions(incActs), renderActions(naiActs)
			if len(ia) != len(na) {
				t.Fatalf("seed %d round %d: action count diverged: %v vs %v", seed, round, ia, na)
			}
			for i := range ia {
				if ia[i] != na[i] {
					t.Fatalf("seed %d round %d: action %d diverged: %q vs %q", seed, round, i, ia[i], na[i])
				}
			}
			after := inc.Stats

			// --- invalidation bounded by the actual churn ---
			if after.CarryRounds > before.CarryRounds {
				budget := len(touchedVMs)
				for id := range curRows {
					if !prevRows[id] {
						budget++
					}
				}
				if stale := after.StaleRows - before.StaleRows; stale > budget {
					t.Fatalf("seed %d round %d: %d stale rows, churn allows %d",
						seed, round, stale, budget)
				}
				budget = len(touchedNodes)
				for id := range curCols {
					if !prevCols[id] {
						budget++
					}
				}
				if stale := after.StaleCols - before.StaleCols; stale > budget {
					t.Fatalf("seed %d round %d: %d stale columns, churn allows %d",
						seed, round, stale, budget)
				}
			} else if round > 0 {
				t.Fatalf("seed %d round %d: no cross-round carry", seed, round)
			}

			// --- apply the actions as instant actuation ---
			clear(touchedVMs)
			clear(touchedNodes)
			for _, a := range incActs {
				switch act := a.(type) {
				case policy.Place:
					v := act.VM
					v.State = vm.Running
					v.Host = act.Node
					v.Touch()
					c.Nodes[act.Node].AddVM(v)
					touchedVMs[v.ID] = true
					touchedNodes[act.Node] = true
				case policy.Migrate:
					v := act.VM
					c.Nodes[v.Host].RemoveVM(v)
					touchedNodes[v.Host] = true
					c.Nodes[act.To].AddVM(v)
					touchedNodes[act.To] = true
					v.Host = act.To
					v.LastMigrate = now
					v.Migrations++
					v.Touch()
					touchedVMs[v.ID] = true
				}
			}
			prevRows, prevCols = curRows, curCols
			now += 60
		}

		if inc.Stats.ReusedCells == 0 {
			t.Fatalf("seed %d: cross-round carry never reused a cell", seed)
		}
		if inc.Stats.Moves != nai.Stats.Moves {
			t.Fatalf("seed %d: moves diverged: %d vs %d", seed, inc.Stats.Moves, nai.Stats.Moves)
		}
	}
}

func runningVMs(vms []*vm.VM) []*vm.VM {
	var out []*vm.VM
	for _, v := range vms {
		if v.State == vm.Running {
			out = append(out, v)
		}
	}
	return out
}

func onlineCount(c *cluster.Cluster) int {
	n := 0
	for _, node := range c.Nodes {
		if node.State == cluster.On {
			n++
		}
	}
	return n
}

// TestIncrementalFewerEvals pins the complexity win: on a round big
// enough to move many VMs, the incremental solver must spend far
// fewer score evaluations than the naive one for the same actions.
func TestIncrementalFewerEvals(t *testing.T) {
	mkCtx := func() *policy.Context {
		cls := cluster.PaperClasses()
		c := cluster.MustNew(cls)
		for _, n := range c.Nodes {
			n.State = cluster.On
		}
		var queue []*vm.VM
		for i := 0; i < 48; i++ {
			queue = append(queue, vm.New(i, vm.Requirements{CPU: float64(100 * (1 + i%4)), Mem: 5}, 0, 3600, 7200))
		}
		return &policy.Context{Now: 0, Cluster: c, Queue: queue, LambdaMin: 0.3, LambdaMax: 0.9}
	}
	inc := MustScheduler(SBConfig())
	naiCfg := SBConfig()
	naiCfg.NaiveSolver = true
	nai := MustScheduler(naiCfg)
	diffRound(t, -1, inc, nai, mkCtx())
	if inc.Stats.Moves == 0 {
		t.Fatal("scenario applied no moves; the eval comparison is vacuous")
	}
	if inc.Stats.ScoreEvals*5 > nai.Stats.ScoreEvals {
		t.Errorf("incremental solver spent %d evals vs naive %d; want ≥5× fewer",
			inc.Stats.ScoreEvals, nai.Stats.ScoreEvals)
	}
}

// TestWorkedMatrixExampleBothSolvers is the §III-B worked example as a
// regression test: two medium hosts, a queued VM and a running one.
// Both solvers must place VM0 on H0 (the host already running VM1),
// matching the matrix's BestMove.
func TestWorkedMatrixExampleBothSolvers(t *testing.T) {
	mk := func() *policy.Context {
		cls := cluster.PaperClasses()[1]
		cls.Count = 2
		c := cluster.MustNew([]cluster.Class{cls})
		for _, n := range c.Nodes {
			n.State = cluster.On
		}
		queued := vm.New(0, vm.Requirements{CPU: 100, Mem: 5}, 0, 3600, 7200)
		running := vm.New(1, vm.Requirements{CPU: 200, Mem: 10}, 0, 3600, 7200)
		running.State = vm.Running
		running.Host = 0
		c.Nodes[0].AddVM(running)
		return &policy.Context{
			Now:     0,
			Cluster: c,
			Queue:   []*vm.VM{queued},
			Active:  []*vm.VM{running},
		}
	}

	for _, naive := range []bool{false, true} {
		cfg := SBConfig()
		cfg.NaiveSolver = naive
		sch := MustScheduler(cfg)
		ctx := mk()

		m := sch.Matrix(ctx)
		host, vmIdx, _, ok := m.BestMove()
		if !ok || m.VMLabels[vmIdx] != "VM0" || m.HostLabels[host] != "H0" {
			t.Fatalf("naive=%v: BestMove = (%s, %s, ok=%v), want (H0, VM0, true)",
				naive, m.HostLabels[host], m.VMLabels[vmIdx], ok)
		}

		acts := renderActions(sch.Schedule(ctx))
		if len(acts) != 1 || acts[0] != "place vm0 -> n0" {
			t.Fatalf("naive=%v: actions = %v, want [place vm0 -> n0]", naive, acts)
		}
	}
}

// TestMatrixHonorsCooldown pins the explainability fix: a VM inside
// its migration cooldown must not appear as a matrix column, exactly
// as Schedule ignores it.
func TestMatrixHonorsCooldown(t *testing.T) {
	c := testCluster(t, 2)
	v := runningVM(1, 100, 5, c, 0)
	v.LastMigrate = 0
	sch := MustScheduler(SBConfig())
	ctx := ctxFor(c, nil, []*vm.VM{v})
	ctx.Now = 10 // inside the default 3600 s cooldown
	if m := sch.Matrix(ctx); len(m.VMLabels) != 0 {
		t.Fatalf("cooling-down VM rendered in matrix: %v", m.VMLabels)
	}
	ctx.Now = 4000 // past the cooldown
	if m := sch.Matrix(ctx); len(m.VMLabels) != 1 {
		t.Fatalf("post-cooldown VM missing from matrix")
	}
}

// TestScheduleSteadyStateAllocationFree verifies the scratch-buffer
// contract: after a warm-up round, a round that emits no actions
// performs no heap allocations.
func TestScheduleSteadyStateAllocationFree(t *testing.T) {
	c := testCluster(t, 4)
	// Two running VMs, hysteresis too high to move them: the solver
	// scores the full matrix but emits nothing.
	a := runningVM(1, 300, 15, c, 0)
	b := runningVM(2, 100, 5, c, 1)
	cfg := SBConfig()
	cfg.MigrationGainMin = 1e6
	sch := MustScheduler(cfg)
	ctx := ctxFor(c, nil, []*vm.VM{a, b})
	sch.Schedule(ctx) // warm up scratch buffers
	allocs := testing.AllocsPerRun(50, func() {
		if acts := sch.Schedule(ctx); len(acts) != 0 {
			t.Fatalf("unexpected actions: %v", acts)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state round allocates %.1f objects, want 0", allocs)
	}
}
