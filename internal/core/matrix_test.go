package core

import (
	"math"
	"strings"
	"testing"

	"energysched/internal/policy"
	"energysched/internal/vm"
)

func TestMatrixShapeAndLabels(t *testing.T) {
	c := testCluster(t, 3)
	sch := MustScheduler(SBConfig())
	q := queuedVM(0, 100, 5)
	r := runningVM(1, 200, 10, c, 1)
	m := sch.Matrix(ctxFor(c, []*vm.VM{q}, []*vm.VM{r}))
	if len(m.HostLabels) != 4 || m.HostLabels[3] != "HV" {
		t.Fatalf("host labels = %v", m.HostLabels)
	}
	if len(m.VMLabels) != 2 {
		t.Fatalf("vm labels = %v", m.VMLabels)
	}
	if len(m.Raw) != 4 || len(m.Raw[0]) != 2 {
		t.Fatalf("raw shape %dx%d", len(m.Raw), len(m.Raw[0]))
	}
}

func TestMatrixCenteringAtCurrentHost(t *testing.T) {
	c := testCluster(t, 2)
	sch := MustScheduler(SBConfig())
	r := runningVM(1, 200, 10, c, 0)
	m := sch.Matrix(ctxFor(c, nil, []*vm.VM{r}))
	// The VM's own host centers to exactly zero.
	if got := m.Centered[0][0]; got != 0 {
		t.Errorf("current-host centered score = %v, want 0", got)
	}
	if m.Current[0] != 0 {
		t.Errorf("current row = %d, want 0", m.Current[0])
	}
}

func TestMatrixQueuedVMHugeBenefit(t *testing.T) {
	c := testCluster(t, 1)
	sch := MustScheduler(SBConfig())
	q := queuedVM(0, 100, 5)
	m := sch.Matrix(ctxFor(c, []*vm.VM{q}, nil))
	// Placing a queued VM anywhere feasible is hugely negative
	// (the queue cost dominates).
	if m.Centered[0][0] > -1e6 {
		t.Errorf("queued placement diff = %v, want << 0", m.Centered[0][0])
	}
	// Its current row is the virtual host, centered to zero.
	if m.Current[0] != 1 || m.Centered[1][0] != 0 {
		t.Errorf("virtual-host row: current=%d centered=%v", m.Current[0], m.Centered[1][0])
	}
}

func TestMatrixInfeasibleCells(t *testing.T) {
	c := testCluster(t, 2)
	runningVM(9, 400, 20, c, 0) // node 0 full
	sch := MustScheduler(SBConfig())
	q := queuedVM(0, 100, 5)
	m := sch.Matrix(ctxFor(c, []*vm.VM{q}, nil))
	if !math.IsInf(m.Raw[0][0], 1) {
		t.Errorf("full node raw score = %v, want ∞", m.Raw[0][0])
	}
	if !strings.Contains(m.String(), "∞") {
		t.Errorf("rendering lacks ∞:\n%s", m.String())
	}
}

func TestMatrixBestMoveMatchesSchedule(t *testing.T) {
	c := testCluster(t, 3)
	runningVM(5, 200, 10, c, 2)
	runningVM(6, 100, 5, c, 2)
	sch := MustScheduler(SB0Config())
	q := queuedVM(0, 100, 5)
	ctx := ctxFor(c, []*vm.VM{q}, nil)
	m := sch.Matrix(ctx)
	host, vmIdx, diff, ok := m.BestMove()
	if !ok {
		t.Fatal("no improving move found")
	}
	if vmIdx != 0 || diff >= 0 {
		t.Fatalf("best move = (%d, %d, %v)", host, vmIdx, diff)
	}
	// The solver's first action places the same VM on the same node.
	actions := sch.Schedule(ctx)
	if len(actions) == 0 {
		t.Fatal("scheduler found nothing despite an improving matrix cell")
	}
	pl := actions[0].(policy.Place)
	if pl.Node != c.Nodes[host].ID {
		t.Errorf("matrix best host %d vs scheduler choice %d", c.Nodes[host].ID, pl.Node)
	}
}

func TestMatrixNoImprovingMoves(t *testing.T) {
	c := testCluster(t, 1)
	r := runningVM(1, 400, 20, c, 0) // alone, nowhere else to go
	sch := MustScheduler(SBConfig())
	m := sch.Matrix(ctxFor(c, nil, []*vm.VM{r}))
	if _, _, _, ok := m.BestMove(); ok {
		t.Error("found an improving move on a single-node system")
	}
}

func TestMatrixCurrentCellBracketsInString(t *testing.T) {
	c := testCluster(t, 2)
	r := runningVM(1, 100, 5, c, 0)
	sch := MustScheduler(SBConfig())
	m := sch.Matrix(ctxFor(c, nil, []*vm.VM{r}))
	if !strings.Contains(m.String(), "[") {
		t.Errorf("rendering lacks current-host brackets:\n%s", m.String())
	}
}
