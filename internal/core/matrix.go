package core

import (
	"fmt"
	"math"
	"strings"

	"energysched/internal/policy"
)

// Matrix is a rendered score matrix, the artifact §III-B of the paper
// walks through: one row per host (plus the scheduler's virtual host
// HV), one column per candidate VM. Raw holds Score(h, vm); Centered
// holds the same values after subtracting each VM's current-host cost,
// so negative cells are improving moves and the most negative cell is
// the move the hill-climbing solver applies first.
//
// It exists for explainability: operators can ask the scheduler *why*
// it placed or moved a VM by dumping the round's matrix.
type Matrix struct {
	// HostLabels has one entry per row, the last being "HV".
	HostLabels []string
	// VMLabels has one entry per column.
	VMLabels []string
	// Raw[i][j] is Score(host i, vm j); +Inf marks infeasibility.
	Raw [][]float64
	// Centered[i][j] = Raw[i][j] − cost of the VM's current host
	// (the queue score for queued VMs).
	Centered [][]float64
	// Current[j] is the row index of VM j's current host (the HV row
	// for queued VMs).
	Current []int
}

// Matrix computes the score matrix for the given context without
// applying any moves. Candidate selection is shared with Schedule
// (queued VMs always; running VMs only when migration is enabled and
// they are outside the migration cooldown), so operators never see
// columns for VMs the solver would not consider.
func (sch *Scheduler) Matrix(ctx *policy.Context) *Matrix {
	hosts := ctx.Cluster.OnlineNodes()
	cands := sch.candidates(ctx, nil)

	s := newShadow(ctx.Now, hosts, cands)
	m := &Matrix{}
	for _, h := range hosts {
		m.HostLabels = append(m.HostLabels, fmt.Sprintf("H%d", h.ID))
	}
	m.HostLabels = append(m.HostLabels, "HV")
	for _, v := range cands {
		m.VMLabels = append(m.VMLabels, fmt.Sprintf("VM%d", v.ID))
	}

	rows := len(hosts) + 1
	m.Raw = make([][]float64, rows)
	m.Centered = make([][]float64, rows)
	for i := range m.Raw {
		m.Raw[i] = make([]float64, len(cands))
		m.Centered[i] = make([]float64, len(cands))
	}
	m.Current = make([]int, len(cands))

	for vi := range cands {
		cur := sch.cfg.QueueScore
		m.Current[vi] = rows - 1
		if s.assign[vi] >= 0 {
			cur = sch.score(s, s.assign[vi], vi)
			m.Current[vi] = s.assign[vi]
		}
		for ni := range hosts {
			raw := sch.score(s, ni, vi)
			m.Raw[ni][vi] = raw
			switch {
			case math.IsInf(raw, 1):
				m.Centered[ni][vi] = math.Inf(1)
			case math.IsInf(cur, 1):
				m.Centered[ni][vi] = math.Inf(-1)
			default:
				m.Centered[ni][vi] = raw - cur
			}
		}
		// The virtual host row: holding a VM unallocated carries the
		// maximum penalty (the paper uses ∞; we render the queue
		// score's centered form).
		m.Raw[rows-1][vi] = math.Inf(1)
		m.Centered[rows-1][vi] = math.Inf(1)
		if s.assign[vi] < 0 {
			// Staying in the queue is the status quo: centered 0.
			m.Raw[rows-1][vi] = sch.cfg.QueueScore
			m.Centered[rows-1][vi] = 0
		}
	}
	return m
}

// BestMove returns the most negative centered cell — the move the
// solver would apply first — or ok=false if no improving move exists.
func (m *Matrix) BestMove() (host, vmIdx int, diff float64, ok bool) {
	best := math.Inf(1)
	for i, row := range m.Centered {
		for j, v := range row {
			if i == m.Current[j] {
				continue
			}
			if v < best {
				best = v
				host, vmIdx = i, j
			}
		}
	}
	if math.IsInf(best, 1) || best >= 0 {
		return 0, 0, 0, false
	}
	return host, vmIdx, best, true
}

// String renders the centered matrix in the paper's layout: hosts as
// rows, VMs as columns, ∞ for infeasible cells.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "")
	for _, l := range m.VMLabels {
		fmt.Fprintf(&b, "%9s", l)
	}
	b.WriteByte('\n')
	for i, row := range m.Centered {
		fmt.Fprintf(&b, "%-6s", m.HostLabels[i])
		for j, v := range row {
			cell := formatCell(v)
			if i == m.Current[j] {
				cell = "[" + cell + "]"
			}
			fmt.Fprintf(&b, "%9s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case math.IsInf(v, -1):
		return "-∞"
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
