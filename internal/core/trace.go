package core

import (
	"time"

	"energysched/internal/obs"
	"energysched/internal/vm"
)

// Decision tracing. The scheduler optionally carries an obs.TraceSink
// (set directly on the struct — NOT via Config, which must stay a
// comparable value type) and emits one obs.RoundTrace per scheduling
// round: wall-clock timings, matrix dimensions, carry/dirty statistics
// and, at TraceActions and above, one "why" record per applied move.
//
// Determinism contract: tracing is a pure wall-clock side channel.
// Every score recorded here is recomputed against the pre-move shadow
// through the same pure helpers the solvers use, WITHOUT incrementing
// Stats.ScoreEvals (the counters are bumped at solver call sites, not
// inside the score functions — exactly so trace recomputation stays
// invisible to the exported stats). The solvers never read a trace
// back, so any verbosity leaves the action stream, the solver stats
// and the simulation reports byte-identical to a run with tracing off.
// The chaos 10k byte-identity suite runs a TraceScores variant to
// enforce this.

// beginTrace caches the sink's verbosity for the round in flight and
// resets the per-round scratch. Returns the wall-clock start (zero
// when tracing is off).
func (sch *Scheduler) beginTrace() time.Time {
	sch.traceVerb = obs.TraceOff
	if sch.Tracer != nil {
		sch.traceVerb = sch.Tracer.Verbosity()
	}
	if sch.traceVerb == obs.TraceOff {
		return time.Time{}
	}
	sch.traceActs = sch.traceActs[:0]
	return time.Now()
}

// emitRoundTrace builds and emits the round's trace from the stats
// delta accumulated since before.
func (sch *Scheduler) emitRoundTrace(now float64, solver string, t0 time.Time, before SolverStats, hosts, cands int) {
	d := sch.Stats
	rt := obs.RoundTrace{
		Round:       d.Rounds,
		Now:         now,
		Solver:      solver,
		WallNanos:   time.Since(t0).Nanoseconds(),
		Hosts:       hosts,
		Candidates:  cands,
		Moves:       d.Moves - before.Moves,
		ScoreEvals:  d.ScoreEvals - before.ScoreEvals,
		ReusedCells: d.ReusedCells - before.ReusedCells,
		StaleRows:   d.StaleRows - before.StaleRows,
		StaleCols:   d.StaleCols - before.StaleCols,
		LimitHit:    d.LimitHits > before.LimitHits,
	}
	if solver == "sharded" {
		rt.Shards = d.LastShards
	}
	if len(sch.traceActs) > 0 {
		rt.Actions = append([]obs.ActionTrace(nil), sch.traceActs...)
	}
	sch.Tracer.Emit(rt)
}

// traceMove records one applied hill-climber move. Called strictly
// before shadow.move, so the recomputed scores see exactly the state
// the solver compared: Current is the cost of leaving the VM where it
// is (the queue score when queued), Chosen the winning target's score,
// Gain the winning margin Chosen − Current that beat the hysteresis
// threshold.
func (sch *Scheduler) traceMove(s *shadow, vi, ni int) {
	v := s.vms[vi]
	cur := sch.cfg.QueueScore
	if a := s.assign[vi]; a >= 0 {
		cur = sch.score(s, a, vi)
	}
	chosen := sch.score(s, ni, vi)
	at := obs.ActionTrace{
		Kind:    "migrate",
		VM:      v.ID,
		From:    -1,
		To:      s.nodes[ni].ID,
		Current: obs.ClampJSON(cur),
		Chosen:  obs.ClampJSON(chosen),
		Gain:    obs.ClampJSON(chosen - cur),
	}
	if v.State == vm.Queued {
		at.Kind = "place"
	}
	if a := s.assign[vi]; a >= 0 {
		at.From = s.nodes[a].ID
	}
	if sch.traceVerb >= obs.TraceScores {
		at.Terms = sch.traceTerms(s, vi, ni)
	}
	sch.traceActs = append(sch.traceActs, at)
}

// traceTerms decomposes the chosen cell's score at TraceScores: the
// base/time halves plus the power (green-energy/consolidation) and SLA
// terms in isolation, so a migration is explainable down to which
// penalty family won it.
func (sch *Scheduler) traceTerms(s *shadow, vi, ni int) *obs.ScoreTerms {
	cfg := &sch.cfg
	t := &obs.ScoreTerms{
		Base: obs.ClampJSON(sch.scoreBase(s, ni, vi)),
		Time: obs.ClampJSON(sch.scoreTime(s, ni, vi)),
	}
	if cfg.EnablePower {
		if occ := s.occupation(ni, vi); occ <= 1.0+1e-9 {
			t.Power = sch.pPower(s, ni, vi, occ)
		}
	}
	if cfg.EnableSLA {
		overhead := 0.0
		if ni != s.initial[vi] {
			cl := s.nodes[ni].Class
			overhead = cl.MigrateCost
			if s.vms[vi].State == vm.Queued {
				overhead = cl.CreateCost
			}
		}
		if p, infinite := sch.pSLAWith(s, vi, overhead); !infinite {
			t.SLA = p
		}
	}
	return t
}
