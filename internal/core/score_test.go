package core

import (
	"math"
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/policy"
	"energysched/internal/vm"
)

// testCluster builds n medium nodes, all On.
func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	cls := cluster.PaperClasses()[1]
	cls.Count = n
	c := cluster.MustNew([]cluster.Class{cls})
	for _, node := range c.Nodes {
		node.State = cluster.On
	}
	return c
}

func queuedVM(id int, cpu, mem float64) *vm.VM {
	return vm.New(id, vm.Requirements{CPU: cpu, Mem: mem}, 0, 3600, 5400)
}

func runningVM(id int, cpu, mem float64, c *cluster.Cluster, node int) *vm.VM {
	v := queuedVM(id, cpu, mem)
	v.State = vm.Running
	v.Host = node
	c.Nodes[node].AddVM(v)
	return v
}

func scoreOf(t *testing.T, sch *Scheduler, c *cluster.Cluster, vms []*vm.VM, ni, vi int) float64 {
	t.Helper()
	s := newShadow(0, c.Nodes, vms)
	return sch.score(s, ni, vi)
}

func TestScorePreqInfeasibleArch(t *testing.T) {
	c := testCluster(t, 1)
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	v.Req.Arch = "sparc"
	if got := scoreOf(t, sch, c, []*vm.VM{v}, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("incompatible arch score = %v, want +Inf", got)
	}
}

func TestScorePreqOfflineHost(t *testing.T) {
	c := testCluster(t, 1)
	c.Nodes[0].State = cluster.Off
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	if got := scoreOf(t, sch, c, []*vm.VM{v}, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("offline host score = %v, want +Inf", got)
	}
}

func TestScorePresOverflow(t *testing.T) {
	c := testCluster(t, 1)
	runningVM(1, 350, 5, c, 0)
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	if got := scoreOf(t, sch, c, []*vm.VM{v}, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("overflowing placement score = %v, want +Inf", got)
	}
}

func TestScorePvirtCreation(t *testing.T) {
	c := testCluster(t, 1)
	sch := MustScheduler(SB1Config())
	cfgOff := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	with := scoreOf(t, sch, c, []*vm.VM{v}, 0, 0)
	without := scoreOf(t, cfgOff, c, []*vm.VM{v}, 0, 0)
	// SB1 adds exactly the creation cost of the medium class (40 s).
	if diff := with - without; math.Abs(diff-40) > 1e-9 {
		t.Errorf("creation penalty = %v, want 40", diff)
	}
}

func TestScorePvirtInOperation(t *testing.T) {
	c := testCluster(t, 2)
	v := runningVM(0, 100, 5, c, 0)
	v.State = vm.Migrating
	sch := MustScheduler(SBConfig())
	if got := scoreOf(t, sch, c, []*vm.VM{v}, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("in-operation move score = %v, want +Inf", got)
	}
}

func TestScorePvirtMigrationShortRemaining(t *testing.T) {
	c := testCluster(t, 2)
	v := runningVM(0, 100, 5, c, 0)
	sch := MustScheduler(SBConfig())
	// At now = 3590, Tr = 10 s < Cm = 60 s → Pm = 2·Cm = 120.
	s := newShadow(3590, c.Nodes, []*vm.VM{v})
	p, inf := sch.pVirtMove(s, 0, c.Nodes[1].Class)
	if inf || math.Abs(p-120) > 1e-9 {
		t.Errorf("short-remaining Pm = %v (inf=%v), want 120", p, inf)
	}
}

func TestScorePvirtMigrationLongRemaining(t *testing.T) {
	c := testCluster(t, 2)
	v := runningVM(0, 100, 5, c, 0)
	sch := MustScheduler(SBConfig())
	// At now = 0, Tr = 3600 ≥ Cm = 60 → Pm = Cm²/(2·Tr) = 0.5.
	s := newShadow(0, c.Nodes, []*vm.VM{v})
	p, inf := sch.pVirtMove(s, 0, c.Nodes[1].Class)
	if inf || math.Abs(p-0.5) > 1e-9 {
		t.Errorf("long-remaining Pm = %v (inf=%v), want 0.5", p, inf)
	}
}

func TestScorePvirtStayIsFree(t *testing.T) {
	c := testCluster(t, 2)
	v := runningVM(0, 100, 5, c, 0)
	sch := MustScheduler(SBConfig())
	s := newShadow(0, c.Nodes, []*vm.VM{v})
	// scoreTime dispatches the stay case: the current host carries no
	// virtualization overhead (and SLA is off in SBConfig).
	if got := sch.scoreTime(s, 0, 0); got != 0 {
		t.Errorf("stay-in-place time-dependent score = %v, want 0", got)
	}
}

func TestScorePconc(t *testing.T) {
	c := testCluster(t, 2)
	c.Nodes[1].CreatingOps = 2
	c.Nodes[1].MigratingOps = 1
	sch := MustScheduler(SB2Config())
	v := queuedVM(0, 100, 5)
	s := newShadow(0, c.Nodes, []*vm.VM{v})
	// Medium class: 2 creations × 40 + 1 migration × 60 = 140.
	got := sch.pConc(c.Nodes[1], v, s, 1, 0)
	if math.Abs(got-140) > 1e-9 {
		t.Errorf("Pconc = %v, want 140", got)
	}
	// No concurrency penalty on the VM's own host.
	r := runningVM(1, 100, 5, c, 1)
	s2 := newShadow(0, c.Nodes, []*vm.VM{r})
	if got := sch.pConc(c.Nodes[1], r, s2, 1, 0); got != 0 {
		t.Errorf("own-host Pconc = %v, want 0", got)
	}
}

func TestScorePpwrEmptyVsOccupied(t *testing.T) {
	c := testCluster(t, 2)
	runningVM(1, 200, 10, c, 0) // node 0 has one VM
	runningVM(2, 100, 5, c, 0)  // and another: not emptiable
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	vms := []*vm.VM{v}
	occupied := scoreOf(t, sch, c, vms, 0, 0)
	empty := scoreOf(t, sch, c, vms, 1, 0)
	if occupied >= empty {
		t.Errorf("occupied host (%v) should score below empty host (%v)", occupied, empty)
	}
	// Empty host: Tempty → +Ce; occupation term small.
	wantEmpty := 20.0 - (100.0/400)*40
	if math.Abs(empty-wantEmpty) > 1e-9 {
		t.Errorf("empty host score = %v, want %v", empty, wantEmpty)
	}
}

func TestScorePSLA(t *testing.T) {
	c := testCluster(t, 1)
	cfg := SB0Config()
	cfg.EnableSLA = true
	sch := MustScheduler(cfg)
	// A queued VM whose deadline already passed scores +Inf.
	v := queuedVM(0, 100, 5)
	v.Deadline = 10
	s := newShadow(1e6, c.Nodes, []*vm.VM{v})
	if got := sch.score(s, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("hopeless SLA score = %v, want +Inf", got)
	}
	// A mildly at-risk VM pays Csla.
	v2 := queuedVM(1, 100, 5)
	v2.Deadline = 4200 // budget 4200 vs projected 40 + 3600... fulfilled
	s2 := newShadow(1000, c.Nodes, []*vm.VM{v2})
	base := sch.score(s2, 0, 0)
	if math.IsInf(base, 1) {
		t.Fatalf("at-risk score unexpectedly infinite")
	}
	// Fulfillment in (THsla, 1): projected = 1000+40+3600 = 4640 >
	// 4200 → f ≈ 0.905 → +Csla relative to a fulfilled VM.
	v3 := queuedVM(2, 100, 5)
	v3.Deadline = 10000
	s3 := newShadow(1000, c.Nodes, []*vm.VM{v3})
	ok := sch.score(s3, 0, 0)
	if math.Abs((base-ok)-sch.cfg.Csla) > 1e-9 {
		t.Errorf("SLA penalty = %v, want %v", base-ok, sch.cfg.Csla)
	}
}

func TestScorePfault(t *testing.T) {
	c := testCluster(t, 1)
	c.Nodes[0].Reliability = 0.9
	cfg := SB0Config()
	cfg.EnableFault = true
	cfg.EnablePower = false
	sch := MustScheduler(cfg)
	v := queuedVM(0, 100, 5)
	v.FaultTolerance = 0.02
	got := scoreOf(t, sch, c, []*vm.VM{v}, 0, 0)
	want := ((1 - 0.9) - 0.02) * cfg.Cfail
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Pfault = %v, want %v", got, want)
	}
}

func TestVariantNames(t *testing.T) {
	for _, c := range []struct {
		cfg  Config
		want string
	}{
		{SB0Config(), "SB0"}, {SB1Config(), "SB1"},
		{SB2Config(), "SB2"}, {SBConfig(), "SB"},
	} {
		if got := MustScheduler(c.cfg).Name(); got != c.want {
			t.Errorf("variant name = %q, want %q", got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Cempty = -1
	if _, err := NewScheduler(bad); err == nil {
		t.Error("negative Cempty accepted")
	}
	bad = DefaultConfig()
	bad.THsla = 1.5
	if _, err := NewScheduler(bad); err == nil {
		t.Error("THsla > 1 accepted")
	}
	bad = DefaultConfig()
	bad.QueueScore = 0
	if _, err := NewScheduler(bad); err == nil {
		t.Error("zero queue score accepted")
	}
	bad = DefaultConfig()
	bad.THempty = -1
	if _, err := NewScheduler(bad); err == nil {
		t.Error("negative THempty accepted")
	}
}

// --- solver behaviour ---

func ctxFor(c *cluster.Cluster, queue, active []*vm.VM) *policy.Context {
	return &policy.Context{
		Now: 0, Cluster: c, Queue: queue, Active: active,
		LambdaMin: 0.3, LambdaMax: 0.9,
	}
}

func TestSchedulePlacesQueuedVM(t *testing.T) {
	c := testCluster(t, 3)
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	actions := sch.Schedule(ctxFor(c, []*vm.VM{v}, nil))
	if len(actions) != 1 {
		t.Fatalf("actions = %d, want 1", len(actions))
	}
	pl, ok := actions[0].(policy.Place)
	if !ok || pl.VM.ID != 0 {
		t.Fatalf("unexpected action %+v", actions[0])
	}
}

func TestSchedulePrefersOccupiedHost(t *testing.T) {
	c := testCluster(t, 3)
	runningVM(1, 200, 10, c, 2)
	runningVM(2, 100, 5, c, 2) // node 2 not emptiable and occupied
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	actions := sch.Schedule(ctxFor(c, []*vm.VM{v}, nil))
	if len(actions) != 1 {
		t.Fatalf("actions = %d, want 1", len(actions))
	}
	if pl := actions[0].(policy.Place); pl.Node != 2 {
		t.Errorf("placed on node %d, want the occupied node 2", pl.Node)
	}
}

func TestScheduleRespectsCapacity(t *testing.T) {
	c := testCluster(t, 1)
	runningVM(1, 400, 5, c, 0) // full node
	sch := MustScheduler(SB0Config())
	v := queuedVM(0, 100, 5)
	actions := sch.Schedule(ctxFor(c, []*vm.VM{v}, nil))
	if len(actions) != 0 {
		t.Fatalf("placed on a full node: %+v", actions)
	}
}

func TestScheduleNoMigrationForStaticVariants(t *testing.T) {
	c := testCluster(t, 3)
	a := runningVM(1, 100, 5, c, 0)
	b := runningVM(2, 100, 5, c, 1)
	sch := MustScheduler(SB2Config())
	actions := sch.Schedule(ctxFor(c, nil, []*vm.VM{a, b}))
	if len(actions) != 0 {
		t.Fatalf("static variant migrated: %+v", actions)
	}
}

func TestScheduleConsolidationMigration(t *testing.T) {
	c := testCluster(t, 2)
	// Two lonely VMs on separate nodes: the full SB policy should
	// consolidate them (gain ≈ Ce + Cf·Δocc clears the hysteresis).
	a := runningVM(1, 300, 15, c, 0)
	b := runningVM(2, 100, 5, c, 1)
	cfg := SBConfig()
	cfg.MigrationGainMin = 1 // isolate the mechanism from the damping
	sch := MustScheduler(cfg)
	actions := sch.Schedule(ctxFor(c, nil, []*vm.VM{a, b}))
	if len(actions) != 1 {
		t.Fatalf("actions = %+v, want one migration", actions)
	}
	mig, ok := actions[0].(policy.Migrate)
	if !ok {
		t.Fatalf("action %T, want Migrate", actions[0])
	}
	if mig.VM.ID != 2 || mig.To != 0 {
		t.Errorf("migrated vm%d→%d, want vm2→0 (small VM to fuller host)", mig.VM.ID, mig.To)
	}
}

func TestScheduleMigrationHysteresis(t *testing.T) {
	c := testCluster(t, 2)
	a := runningVM(1, 300, 15, c, 0)
	b := runningVM(2, 100, 5, c, 1)
	cfg := SBConfig()
	cfg.MigrationGainMin = 1e6 // nothing clears this bar
	sch := MustScheduler(cfg)
	if actions := sch.Schedule(ctxFor(c, nil, []*vm.VM{a, b})); len(actions) != 0 {
		t.Fatalf("hysteresis ignored: %+v", actions)
	}
}

func TestScheduleMigrationCooldown(t *testing.T) {
	mk := func() (*policy.Context, *vm.VM, *vm.VM) {
		c := testCluster(t, 2)
		// Long-running VMs so the user-estimate migration penalty
		// stays small throughout the test window.
		a := vm.New(1, vm.Requirements{CPU: 300, Mem: 15}, 0, 1e5, 2e5)
		a.State, a.Host = vm.Running, 0
		c.Nodes[0].AddVM(a)
		b := vm.New(2, vm.Requirements{CPU: 100, Mem: 5}, 0, 1e5, 2e5)
		b.State, b.Host = vm.Running, 1
		c.Nodes[1].AddVM(b)
		return ctxFor(c, nil, []*vm.VM{a, b}), a, b
	}
	cfg := SBConfig()
	cfg.MigrationGainMin = 1
	sch := MustScheduler(cfg)

	ctx, a, b := mk()
	a.LastMigrate, b.LastMigrate = 0, 0 // both just migrated
	ctx.Now = 10                        // within the cooldown window
	if actions := sch.Schedule(ctx); len(actions) != 0 {
		t.Fatalf("cooldown ignored: %+v", actions)
	}
	ctx2, a2, b2 := mk()
	a2.LastMigrate, b2.LastMigrate = 0, 0
	ctx2.Now = 3700 // past the cooldown
	if actions := sch.Schedule(ctx2); len(actions) != 1 {
		t.Fatalf("move suppressed after cooldown: %+v", actions)
	}
}

func TestScheduleIterationLimit(t *testing.T) {
	c := testCluster(t, 4)
	var queue []*vm.VM
	for i := 0; i < 8; i++ {
		queue = append(queue, queuedVM(i, 100, 5))
	}
	cfg := SB0Config()
	cfg.MaxIterations = 3
	sch := MustScheduler(cfg)
	actions := sch.Schedule(ctxFor(c, queue, nil))
	if len(actions) > 3 {
		t.Fatalf("iteration limit exceeded: %d actions", len(actions))
	}
	if sch.Stats.LimitHits == 0 {
		t.Error("limit hit not recorded")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	mk := func() []policy.Action {
		c := testCluster(t, 5)
		var queue []*vm.VM
		for i := 0; i < 6; i++ {
			queue = append(queue, queuedVM(i, float64(100+(i%3)*100), 5))
		}
		sch := MustScheduler(SBConfig())
		return sch.Schedule(ctxFor(c, queue, nil))
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic action count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		pa, pb := a[i].(policy.Place), b[i].(policy.Place)
		if pa.VM.ID != pb.VM.ID || pa.Node != pb.Node {
			t.Fatalf("non-deterministic action %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Property-ish: after a full scheduling round on an arbitrary queue,
// no node's reservation exceeds its capacity (the solver never plans
// an overcommit).
func TestScheduleNeverOvercommits(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		c := testCluster(t, 4)
		var queue []*vm.VM
		for i := 0; i < 12; i++ {
			cpu := float64(100 * (1 + (i+seed)%4))
			queue = append(queue, queuedVM(i, cpu, 5))
		}
		sch := MustScheduler(SBConfig())
		actions := sch.Schedule(ctxFor(c, queue, nil))
		loads := make(map[int]float64)
		for _, a := range actions {
			pl, ok := a.(policy.Place)
			if !ok {
				continue
			}
			loads[pl.Node] += pl.VM.Req.CPU
		}
		for node, load := range loads {
			if load > c.Nodes[node].Class.CPU+1e-9 {
				t.Fatalf("seed %d: node %d planned at %v CPU", seed, node, load)
			}
		}
	}
}
