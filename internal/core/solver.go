package core

import (
	"math"

	"energysched/internal/cluster"
	"energysched/internal/vm"
)

// The incremental solver exploits the structure of Score(h, vm): a
// cell depends only on (a) round-static node and VM attributes, (b)
// the shadow load of host h, and (c) whether the VM is currently
// assigned to h. Applying move(vi, a→b) therefore invalidates exactly
// the two endpoint columns a and b (their loads changed for every VM)
// and the moved VM's own row (its assignment changed) — every other
// cell is provably unchanged, so the cached value is bit-identical to
// a fresh evaluation and the solver replays the naive hill climber's
// decisions exactly.
//
// On top of the cached matrix, incState keeps one best-move record per
// VM so each iteration picks the globally best move in O(V) instead of
// O(V·H), turning a round from O(I·V·H) into O(V·H + I·(V+H)) score
// evaluations.

// incState is the incremental solver's working state: the cached score
// matrix plus per-VM best-move records. All slices are scratch buffers
// owned by the Scheduler and reused across rounds.
type incState struct {
	// m is the V×H score matrix, row-major: m[vi*H+ni] = Score(ni, vi).
	// The cell at a VM's current assignment holds its current-host
	// cost (the centering value), and is excluded from the best-move
	// records below.
	m []float64
	// bestNi[vi] is the lowest node index achieving the minimum finite
	// score in row vi excluding the current assignment (-1 = none);
	// bestSc[vi] is that score (+Inf when bestNi is -1).
	bestNi []int
	bestSc []float64
	// firstNi[vi] is the lowest node index with a finite score in row
	// vi excluding the current assignment (-1 = none). It reproduces
	// the naive tie-break when the VM's current host is infeasible:
	// every feasible target then improves by -Inf and the naive scan
	// keeps the first one it meets, which is not necessarily the
	// minimum-score one.
	firstNi []int
}

// reset sizes the state for a V×H round.
func (st *incState) reset(v, h int) {
	st.m = grow(st.m, v*h)
	st.bestNi = grow(st.bestNi, v)
	st.bestSc = grow(st.bestSc, v)
	st.firstNi = grow(st.firstNi, v)
}

// solveIncremental runs the hill climber against the cached matrix.
// It applies exactly the same sequence of moves as solveNaive.
func (sch *Scheduler) solveIncremental(s *shadow, hosts []*cluster.Node, cands []*vm.VM) {
	V, H := len(cands), len(hosts)
	st := &sch.inc
	st.reset(V, H)

	// Build the full matrix once per round, tracking each row's
	// best-move record in the same pass.
	sch.Stats.ScoreEvals += V * H
	for vi := 0; vi < V; vi++ {
		row := vi * H
		assign := s.assign[vi]
		best, bestn, first := math.Inf(1), -1, -1
		for ni := 0; ni < H; ni++ {
			sc := sch.score(s, ni, vi)
			st.m[row+ni] = sc
			if ni == assign || math.IsInf(sc, 1) {
				continue
			}
			if first < 0 {
				first = ni
			}
			if sc < best {
				best, bestn = sc, ni
			}
		}
		st.bestSc[vi], st.bestNi[vi], st.firstNi[vi] = best, bestn, first
	}

	limit := sch.iterationLimit(V)
	const eps = 1e-9
	moves := 0
	for iter := 0; iter < limit; iter++ {
		// Pick the globally best move from the per-VM records. The
		// scan order and strict comparisons replicate the naive
		// evaluator's tie-breaks: earliest VM wins ties, and within a
		// VM the record already holds the earliest qualifying host.
		bestVI, bestNI := -1, -1
		bestDiff := -eps
		for vi := 0; vi < V; vi++ {
			cur := sch.cfg.QueueScore
			if a := s.assign[vi]; a >= 0 {
				cur = st.m[vi*H+a]
			}
			var ni int
			var diff float64
			if math.IsInf(cur, 1) {
				// Current host infeasible: any feasible target is an
				// infinite improvement; the naive scan keeps the first.
				ni = st.firstNi[vi]
				if ni < 0 {
					continue
				}
				diff = math.Inf(-1)
			} else {
				ni = st.bestNi[vi]
				if ni < 0 {
					continue
				}
				diff = st.bestSc[vi] - cur
				threshold := -eps
				if cands[vi].State != vm.Queued {
					// Migration hysteresis (queued VMs are exempt).
					threshold = -sch.cfg.MigrationGainMin
				}
				if diff > threshold {
					continue
				}
			}
			if diff < bestDiff {
				bestDiff = diff
				bestVI, bestNI = vi, ni
			}
		}
		if bestVI < 0 {
			break // no negative values left: suboptimal solution found
		}
		from := s.assign[bestVI]
		s.move(bestVI, bestNI)
		moves++
		if iter == limit-1 {
			sch.Stats.LimitHits++
		}
		sch.refreshAfterMove(s, st, bestVI, from, bestNI)
	}
	sch.Stats.Moves += moves
}

// refreshAfterMove re-scores the dirty region after move(movedVI,
// from→to): the two endpoint columns (from is -1 when the VM left the
// queue) for every VM, then the moved VM's full row.
func (sch *Scheduler) refreshAfterMove(s *shadow, st *incState, movedVI, from, to int) {
	if from >= 0 {
		sch.refreshColumn(s, st, movedVI, from)
	}
	sch.refreshColumn(s, st, movedVI, to)

	// The moved VM's assignment changed, so every cell of its row is
	// suspect; the two endpoint columns are already fresh.
	H := len(s.nodes)
	row := movedVI * H
	for ni := 0; ni < H; ni++ {
		if ni == from || ni == to {
			continue
		}
		sch.Stats.ScoreEvals++
		st.m[row+ni] = sch.score(s, ni, movedVI)
	}
	st.rescanRow(sch, movedVI, H, s.assign[movedVI])
}

// refreshColumn re-scores column c for every VM and repairs the
// per-VM best-move records it invalidates.
func (sch *Scheduler) refreshColumn(s *shadow, st *incState, movedVI, c int) {
	sch.Stats.ColRefreshes++
	V, H := len(s.vms), len(s.nodes)
	for vj := 0; vj < V; vj++ {
		idx := vj*H + c
		old := st.m[idx]
		sch.Stats.ScoreEvals++
		sc := sch.score(s, c, vj)
		st.m[idx] = sc
		if sc == old {
			continue // unchanged (including +Inf staying +Inf)
		}
		if vj == movedVI {
			continue // full row rescan follows in refreshAfterMove
		}
		if c == s.assign[vj] {
			continue // the cell is vj's current-host cost, not a target
		}
		// Repair vj's best-move record.
		if c == st.bestNi[vj] {
			if sc <= st.bestSc[vj] {
				// The cached best improved in place: still the lowest
				// index achieving the (now smaller) minimum.
				st.bestSc[vj] = sc
				continue
			}
			st.rescanRow(sch, vj, H, s.assign[vj])
			continue
		}
		if math.IsInf(sc, 1) {
			if c == st.firstNi[vj] {
				st.rescanRow(sch, vj, H, s.assign[vj])
			}
			continue
		}
		if st.firstNi[vj] < 0 || c < st.firstNi[vj] {
			st.firstNi[vj] = c
		}
		if st.bestNi[vj] < 0 || sc < st.bestSc[vj] || (sc == st.bestSc[vj] && c < st.bestNi[vj]) {
			st.bestNi[vj], st.bestSc[vj] = c, sc
		}
	}
}

// rescanRow rebuilds VM vi's best-move record from the cached matrix
// row (no score evaluations), excluding the current assignment.
func (st *incState) rescanRow(sch *Scheduler, vi, h, assign int) {
	sch.Stats.RowRescans++
	best, bestn, first := math.Inf(1), -1, -1
	row := vi * h
	for ni := 0; ni < h; ni++ {
		if ni == assign {
			continue
		}
		sc := st.m[row+ni]
		if math.IsInf(sc, 1) {
			continue
		}
		if first < 0 {
			first = ni
		}
		if sc < best {
			best, bestn = sc, ni
		}
	}
	st.bestSc[vi], st.bestNi[vi], st.firstNi[vi] = best, bestn, first
}
