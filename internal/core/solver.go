package core

import (
	"math"

	"energysched/internal/cluster"
	"energysched/internal/obs"
	"energysched/internal/vm"
)

// The incremental solver exploits the structure of Score(h, vm): a
// cell depends only on (a) round-static node and VM attributes, (b)
// the shadow load of host h, and (c) whether the VM is currently
// assigned to h. Applying move(vi, a→b) therefore invalidates exactly
// the two endpoint columns a and b (their loads changed for every VM)
// and the moved VM's own row (its assignment changed) — every other
// cell is provably unchanged, so the cached value is bit-identical to
// a fresh evaluation and the solver replays the naive hill climber's
// decisions exactly.
//
// On top of the cached matrix, incState keeps one best-move record per
// VM so each iteration picks the globally best move in O(V) instead of
// O(V·H), turning a round from O(I·V·H) into O(V·H + I·(V+H)) score
// evaluations.

// Across rounds the solver additionally carries the time-independent
// half of the matrix (scoreBase). A cell of that half depends only on
// the observable state of its node (power state, loads, in-flight
// operations, reliability, class) and its VM (requirements, fault
// tolerance, current host) — state that a scheduling round leaves
// untouched for most of the datacenter. crossState snapshots those
// inputs per row and per column; at the top of the next round the
// solver diffs the snapshot against reality and re-scores only the
// rows and columns whose real state changed (VM arrivals/exits,
// migrations, demand updates, power transitions, operation churn).
// The time-dependent half (scoreTime) is recomputed every round, but
// costs only O(V·K) evaluations for K node classes.

// rowKey identifies a matrix row (candidate VM) and snapshots every
// VM-side input of scoreBase. A row is carried over only if the same
// VM object matches the whole key — the epoch guards against mutations
// the value fields cannot see, the value fields guard against
// mutations that bypassed Touch.
type rowKey struct {
	vm    *vm.VM
	epoch uint64
	// scoreBase inputs: requirements, fault tolerance, resolved
	// current host (node ID, -1 when queued or unresolvable).
	cpu, mem  float64
	arch, hyp string
	ftol      float64
	initial   int
}

// colKey identifies a matrix column (host) and snapshots every
// node-side input of scoreBase.
type colKey struct {
	node  *cluster.Node
	class *cluster.Class
	epoch uint64
	state cluster.PowerState
	// Reservation sums as seeded into the shadow; bit-stable for an
	// unchanged node because the Node maintains them incrementally.
	cpu, mem  float64
	count     int
	creating  int
	migrating int
	rel       float64
}

// crossState is the cross-round snapshot: the previous round's base
// matrix plus the row/column keys it was computed from.
type crossState struct {
	valid bool
	h     int       // previous round's column count
	base  []float64 // previous round's V×H scoreBase matrix, row-major
	rows  []rowKey  // previous rows, ascending VM ID (candidate order)
	cols  []colKey  // previous columns, host order
	colOf []int     // node ID -> previous column index (-1 = absent)
}

// incState is the incremental solver's working state: the cached score
// matrix plus per-VM best-move records. All slices are scratch buffers
// owned by the Scheduler and reused across rounds.
type incState struct {
	// m is the V×H score matrix, row-major: m[vi*H+ni] = Score(ni, vi).
	// The cell at a VM's current assignment holds its current-host
	// cost (the centering value), and is excluded from the best-move
	// records below.
	m []float64
	// bestNi[vi] is the lowest node index achieving the minimum finite
	// score in row vi excluding the current assignment (-1 = none);
	// bestSc[vi] is that score (+Inf when bestNi is -1).
	bestNi []int
	bestSc []float64
	// firstNi[vi] is the lowest node index with a finite score in row
	// vi excluding the current assignment (-1 = none). It reproduces
	// the naive tie-break when the VM's current host is infeasible:
	// every feasible target then improves by -Inf and the naive scan
	// keeps the first one it meets, which is not necessarily the
	// minimum-score one.
	firstNi []int
}

// reset sizes the state for a V×H round.
func (st *incState) reset(v, h int) {
	st.m = grow(st.m, v*h)
	st.bestNi = grow(st.bestNi, v)
	st.bestSc = grow(st.bestSc, v)
	st.firstNi = grow(st.firstNi, v)
}

// solveIncremental runs the hill climber against the cached matrix.
// It applies exactly the same sequence of moves as solveNaive.
func (sch *Scheduler) solveIncremental(s *shadow, hosts []*cluster.Node, cands []*vm.VM) {
	V, H := len(cands), len(hosts)
	st := &sch.inc
	st.reset(V, H)

	sch.buildMatrix(s, hosts, cands, st)

	limit := sch.iterationLimit(V)
	const eps = 1e-9
	moves := 0
	for iter := 0; iter < limit; iter++ {
		// Pick the globally best move from the per-VM records. The
		// scan order and strict comparisons replicate the naive
		// evaluator's tie-breaks: earliest VM wins ties, and within a
		// VM the record already holds the earliest qualifying host.
		bestVI, bestNI := -1, -1
		bestDiff := -eps
		for vi := 0; vi < V; vi++ {
			cur := sch.cfg.QueueScore
			if a := s.assign[vi]; a >= 0 {
				cur = st.m[vi*H+a]
			}
			var ni int
			var diff float64
			if math.IsInf(cur, 1) {
				// Current host infeasible: any feasible target is an
				// infinite improvement; the naive scan keeps the first.
				ni = st.firstNi[vi]
				if ni < 0 {
					continue
				}
				diff = math.Inf(-1)
			} else {
				ni = st.bestNi[vi]
				if ni < 0 {
					continue
				}
				diff = st.bestSc[vi] - cur
				threshold := -eps
				if cands[vi].State != vm.Queued {
					// Migration hysteresis (queued VMs are exempt).
					threshold = -sch.cfg.MigrationGainMin
				}
				if diff > threshold {
					continue
				}
			}
			if diff < bestDiff {
				bestDiff = diff
				bestVI, bestNI = vi, ni
			}
		}
		if bestVI < 0 {
			break // no negative values left: suboptimal solution found
		}
		if sch.traceVerb >= obs.TraceActions {
			sch.traceMove(s, bestVI, bestNI)
		}
		from := s.assign[bestVI]
		s.move(bestVI, bestNI)
		moves++
		if iter == limit-1 {
			sch.Stats.LimitHits++
		}
		sch.refreshAfterMove(s, st, bestVI, from, bestNI)
	}
	sch.Stats.Moves += moves
}

// buildMatrix fills the round's score matrix and per-VM best-move
// records, carrying the time-independent half of unchanged cells over
// from the previous round's snapshot. Each cell is composed as
// scoreBase + scoreTime with the time half evaluated once per
// ⟨VM, class⟩, in exactly the float grouping score uses, so carried
// and fresh cells are bit-identical.
func (sch *Scheduler) buildMatrix(s *shadow, hosts []*cluster.Node, cands []*vm.VM, st *incState) {
	V, H := len(cands), len(hosts)
	cr := &sch.cross
	carry := cr.valid && !sch.cfg.FreshMatrix

	// Column keys: snapshot each host's scoreBase inputs and match it
	// against the previous round's column for the same node object.
	sch.nextCols = grow(sch.nextCols, H)
	sch.colSrc = grow(sch.colSrc, H)
	staleCols := 0
	for ni, n := range hosts {
		k := colKey{
			node: n, class: n.Class, epoch: n.Epoch, state: n.State,
			cpu: s.cpu[ni], mem: s.mem[ni], count: s.count[ni],
			creating: n.CreatingOps, migrating: n.MigratingOps, rel: n.Reliability,
		}
		sch.nextCols[ni] = k
		src := -1
		if carry && n.ID >= 0 && n.ID < len(cr.colOf) {
			if pc := cr.colOf[n.ID]; pc >= 0 && cr.cols[pc] == k {
				src = pc
			}
		}
		sch.colSrc[ni] = src
		if src < 0 {
			staleCols++
		}
	}

	// Row keys: snapshot each candidate's scoreBase inputs. Both this
	// round's candidates and the previous snapshot are sorted by VM ID,
	// so a single merge scan pairs them without a lookup structure.
	sch.nextRows = grow(sch.nextRows, V)
	sch.rowSrc = grow(sch.rowSrc, V)
	staleRows := 0
	pi := 0
	for vi, v := range cands {
		initial := -1
		if a := s.assign[vi]; a >= 0 {
			initial = hosts[a].ID
		}
		k := rowKey{
			vm: v, epoch: v.Epoch,
			cpu: v.Req.CPU, mem: v.Req.Mem, arch: v.Req.Arch, hyp: v.Req.Hypervisor,
			ftol: v.FaultTolerance, initial: initial,
		}
		sch.nextRows[vi] = k
		src := -1
		if carry {
			for pi < len(cr.rows) && cr.rows[pi].vm.ID < v.ID {
				pi++
			}
			if pi < len(cr.rows) && cr.rows[pi] == k {
				src = pi
			}
		}
		sch.rowSrc[vi] = src
		if src < 0 {
			staleRows++
		}
	}

	sch.collectClasses(hosts)

	// Fill base and full matrices, tracking each row's best-move
	// record in the same pass.
	sch.nextBase = grow(sch.nextBase, V*H)
	if V*H > sch.Stats.MaxSlabCells {
		sch.Stats.MaxSlabCells = V * H
	}
	sch.timeMove = grow(sch.timeMove, len(sch.classes))
	evals, reused := 0, 0
	for vi := range cands {
		row := vi * H
		assign := s.assign[vi]
		for k, cl := range sch.classes {
			sch.timeMove[k] = sch.scoreTimeMove(s, vi, cl)
		}
		stay := 0.0
		if assign >= 0 {
			stay = sch.scoreTimeStay(s, vi)
		}
		prow := -1
		if src := sch.rowSrc[vi]; src >= 0 {
			prow = src * cr.h
		}
		best, bestn, first := math.Inf(1), -1, -1
		for ni := 0; ni < H; ni++ {
			var b float64
			if pc := sch.colSrc[ni]; prow >= 0 && pc >= 0 {
				b = cr.base[prow+pc]
				reused++
			} else {
				b = sch.scoreBase(s, ni, vi)
				evals++
			}
			sch.nextBase[row+ni] = b
			sc := b
			if !math.IsInf(b, 1) {
				t := stay
				if ni != assign {
					t = sch.timeMove[sch.classOf[ni]]
				}
				if math.IsInf(t, 1) {
					sc = t
				} else {
					sc = b + t
				}
			}
			st.m[row+ni] = sc
			if ni == assign || math.IsInf(sc, 1) {
				continue
			}
			if first < 0 {
				first = ni
			}
			if sc < best {
				best, bestn = sc, ni
			}
		}
		st.bestSc[vi], st.bestNi[vi], st.firstNi[vi] = best, bestn, first
	}

	sch.Stats.ScoreEvals += evals
	sch.Stats.ReusedCells += reused
	if carry {
		sch.Stats.CarryRounds++
		sch.Stats.StaleRows += staleRows
		sch.Stats.StaleCols += staleCols
	}

	// Publish this round's snapshot by swapping buffers with the
	// previous one. The base matrix holds round-start values: the
	// hill climb only mutates st.m, and any real-state change the
	// round's own actuation causes will bump epochs and show up in
	// next round's diff.
	cr.base, sch.nextBase = sch.nextBase, cr.base
	cr.rows, sch.nextRows = sch.nextRows, cr.rows
	cr.cols, sch.nextCols = sch.nextCols, cr.cols
	cr.h = H
	maxID := 0
	for _, n := range hosts {
		if n.ID >= maxID {
			maxID = n.ID
		}
	}
	cr.colOf = grow(cr.colOf, maxID+1)
	for i := range cr.colOf {
		cr.colOf[i] = -1
	}
	for ni, n := range hosts {
		cr.colOf[n.ID] = ni
	}
	cr.valid = true
}

// collectClasses gathers the round's distinct node classes
// (first-appearance order) into sch.classes and fills sch.classOf with
// each host's class index, for the once-per-⟨VM, class⟩ time terms.
func (sch *Scheduler) collectClasses(hosts []*cluster.Node) {
	sch.classes = sch.classes[:0]
	sch.classOf = grow(sch.classOf, len(hosts))
	for ni, n := range hosts {
		idx := -1
		for i, cl := range sch.classes {
			if cl == n.Class {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(sch.classes)
			sch.classes = append(sch.classes, n.Class)
		}
		sch.classOf[ni] = idx
	}
}

// refreshAfterMove re-scores the dirty region after move(movedVI,
// from→to): the two endpoint columns (from is -1 when the VM left the
// queue) for every VM, then the moved VM's full row.
func (sch *Scheduler) refreshAfterMove(s *shadow, st *incState, movedVI, from, to int) {
	if from >= 0 {
		sch.refreshColumn(s, st, movedVI, from)
	}
	sch.refreshColumn(s, st, movedVI, to)

	// The moved VM's assignment changed, so every cell of its row is
	// suspect; the two endpoint columns are already fresh.
	H := len(s.nodes)
	row := movedVI * H
	for ni := 0; ni < H; ni++ {
		if ni == from || ni == to {
			continue
		}
		sch.Stats.ScoreEvals++
		st.m[row+ni] = sch.score(s, ni, movedVI)
	}
	st.rescanRow(sch, movedVI, H, s.assign[movedVI])
}

// refreshColumn re-scores column c for every VM and repairs the
// per-VM best-move records it invalidates.
func (sch *Scheduler) refreshColumn(s *shadow, st *incState, movedVI, c int) {
	sch.Stats.ColRefreshes++
	V, H := len(s.vms), len(s.nodes)
	for vj := 0; vj < V; vj++ {
		idx := vj*H + c
		old := st.m[idx]
		sch.Stats.ScoreEvals++
		sc := sch.score(s, c, vj)
		st.m[idx] = sc
		if sc == old {
			continue // unchanged (including +Inf staying +Inf)
		}
		if vj == movedVI {
			continue // full row rescan follows in refreshAfterMove
		}
		if c == s.assign[vj] {
			continue // the cell is vj's current-host cost, not a target
		}
		// Repair vj's best-move record.
		if c == st.bestNi[vj] {
			if sc <= st.bestSc[vj] {
				// The cached best improved in place: still the lowest
				// index achieving the (now smaller) minimum.
				st.bestSc[vj] = sc
				continue
			}
			st.rescanRow(sch, vj, H, s.assign[vj])
			continue
		}
		if math.IsInf(sc, 1) {
			if c == st.firstNi[vj] {
				st.rescanRow(sch, vj, H, s.assign[vj])
			}
			continue
		}
		if st.firstNi[vj] < 0 || c < st.firstNi[vj] {
			st.firstNi[vj] = c
		}
		if st.bestNi[vj] < 0 || sc < st.bestSc[vj] || (sc == st.bestSc[vj] && c < st.bestNi[vj]) {
			st.bestNi[vj], st.bestSc[vj] = c, sc
		}
	}
}

// rescanRow rebuilds VM vi's best-move record from the cached matrix
// row (no score evaluations), excluding the current assignment.
func (st *incState) rescanRow(sch *Scheduler, vi, h, assign int) {
	sch.Stats.RowRescans++
	best, bestn, first := math.Inf(1), -1, -1
	row := vi * h
	for ni := 0; ni < h; ni++ {
		if ni == assign {
			continue
		}
		sc := st.m[row+ni]
		if math.IsInf(sc, 1) {
			continue
		}
		if first < 0 {
			first = ni
		}
		if sc < best {
			best, bestn = sc, ni
		}
	}
	st.bestSc[vi], st.bestNi[vi], st.firstNi[vi] = best, bestn, first
}
