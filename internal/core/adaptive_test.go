package core

import "testing"

func newAdaptive(t *testing.T) *Adaptive {
	t.Helper()
	pm := mustPM(t, 30, 90, 1)
	a, err := NewAdaptive(pm)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(nil); err == nil {
		t.Error("nil power manager accepted")
	}
	a := newAdaptive(t)
	if a.TargetS != 98 || a.Ceil >= a.PM.LambdaMax {
		t.Errorf("defaults: %+v", a)
	}
}

func TestAdaptiveTightensWhenSatisfied(t *testing.T) {
	a := newAdaptive(t)
	for i := 0; i < 20; i++ {
		a.Add(100)
	}
	if !a.Tick(0) {
		t.Fatal("no adjustment despite perfect satisfaction")
	}
	if a.PM.LambdaMin <= 0.30 {
		t.Errorf("λmin = %v, want raised above 0.30", a.PM.LambdaMin)
	}
	if a.Adjustments != 1 {
		t.Errorf("adjustments = %d", a.Adjustments)
	}
}

func TestAdaptiveBacksOffWhenViolating(t *testing.T) {
	a := newAdaptive(t)
	for i := 0; i < 20; i++ {
		a.Add(80)
	}
	if !a.Tick(0) {
		t.Fatal("no adjustment despite violations")
	}
	if a.PM.LambdaMin >= 0.30 {
		t.Errorf("λmin = %v, want lowered below 0.30", a.PM.LambdaMin)
	}
}

func TestAdaptiveDeadBand(t *testing.T) {
	a := newAdaptive(t)
	a.Add(98.5) // within [target, target+margin]
	if a.Tick(0) {
		t.Error("adjusted inside the dead band")
	}
}

func TestAdaptiveIntervalAndEmptyWindow(t *testing.T) {
	a := newAdaptive(t)
	// Empty window: nothing to learn from.
	if a.Tick(0) {
		t.Error("adjusted with no completions")
	}
	a.Add(100)
	if !a.Tick(0) {
		t.Fatal("first adjustment denied")
	}
	a.Add(100)
	if a.Tick(100) {
		t.Error("adjusted before the interval elapsed")
	}
	if !a.Tick(a.Interval + 1) {
		t.Error("adjustment denied after the interval")
	}
}

func TestAdaptiveRespectsBounds(t *testing.T) {
	a := newAdaptive(t)
	// Push up against the ceiling.
	for i := 0; i < 50; i++ {
		a.Add(100)
		a.Tick(float64(i) * (a.Interval + 1))
	}
	if a.PM.LambdaMin > a.Ceil+1e-9 {
		t.Errorf("λmin %v exceeded ceiling %v", a.PM.LambdaMin, a.Ceil)
	}
	// And down against the floor.
	b := newAdaptive(t)
	for i := 0; i < 50; i++ {
		b.Add(0)
		b.Tick(float64(i) * (b.Interval + 1))
	}
	if b.PM.LambdaMin < b.Floor-1e-9 {
		t.Errorf("λmin %v fell below floor %v", b.PM.LambdaMin, b.Floor)
	}
}

func TestAdaptiveWindowResets(t *testing.T) {
	a := newAdaptive(t)
	a.Add(0) // terrible window
	a.Tick(0)
	down := a.PM.LambdaMin
	// Next window is all good: the controller must move up, not be
	// dragged by the consumed window.
	a.Add(100)
	a.Tick(a.Interval + 1)
	if a.PM.LambdaMin <= down {
		t.Errorf("λmin did not recover: %v -> %v", down, a.PM.LambdaMin)
	}
}
