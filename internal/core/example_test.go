package core_test

import (
	"fmt"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/policy"
	"energysched/internal/vm"
)

// ExampleScheduler_Matrix reproduces the kind of score matrix §III-B
// of the paper walks through: two hosts plus the virtual host HV, a
// queued VM and a running one. Brackets mark each VM's current
// position; the queued VM's placement cells are hugely negative (any
// feasible allocation beats staying in the queue), and the running
// VM's cells show the centered improvement of moving it.
func ExampleScheduler_Matrix() {
	cls := cluster.PaperClasses()[1] // medium nodes: 4 cores, Cc=40, Cm=60
	cls.Count = 2
	c := cluster.MustNew([]cluster.Class{cls})
	for _, n := range c.Nodes {
		n.State = cluster.On
	}

	// VM0 waits in the queue; VM1 runs alone on host 0.
	queued := vm.New(0, vm.Requirements{CPU: 100, Mem: 5}, 0, 3600, 7200)
	running := vm.New(1, vm.Requirements{CPU: 200, Mem: 10}, 0, 3600, 7200)
	running.State = vm.Running
	running.Host = 0
	c.Nodes[0].AddVM(running)

	sch := core.MustScheduler(core.SBConfig())
	m := sch.Matrix(&policy.Context{
		Now:     0,
		Cluster: c,
		Queue:   []*vm.VM{queued},
		Active:  []*vm.VM{running},
	})
	fmt.Print(m)

	if host, vmIdx, _, ok := m.BestMove(); ok {
		fmt.Printf("best move: %s -> %s\n", m.VMLabels[vmIdx], m.HostLabels[host])
	}
	// Output:
	//             VM0      VM1
	// H0    -9999990.0    [0.0]
	// H1    -9999950.0      0.5
	// HV        [0.0]        ∞
	// best move: VM0 -> H0
}
