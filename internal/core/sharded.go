package core

import (
	"math"
	"runtime"
	"slices"
	"sync"

	"energysched/internal/cluster"
	"energysched/internal/obs"
	"energysched/internal/vm"
)

// The sharded parallel round engine scales one fleet past the paper's
// 100 nodes. The V×H score matrix — the memory and CPU bound of a
// scheduling round — is partitioned by host column into K shards, each
// owning a V×⌈H/K⌉ slab of the base and full matrices plus the per-VM
// best-move records over its own columns. The expensive phases (the
// round-start matrix build with its cross-round carry, and the
// dirty-column/row refresh after every applied move) fan out over one
// worker per shard; no shard ever touches another shard's slab or
// records, and the shadow state is read-only while workers run, so the
// fan-out is race-free by construction.
//
// Determinism: every matrix cell is a pure function of the shadow
// state, so its value does not depend on which shard computes it. The
// per-shard best-move records hold "lowest global node index achieving
// the minimum finite score over my columns" — the same invariant the
// serial solver maintains for the full row — and the arbiter merges
// them with a stable ordering (lowest score first, then lowest node
// index, earliest VM on iteration ties). The merged pick is therefore
// exactly the serial solver's pick, and the chosen action sequence is
// byte-identical to the serial incremental (and naive) solver at any
// K, including K=1. The differential tests in sharded_test.go and the
// datacenter full-simulation test enforce this.

// shardRef locates a column's previous-round base values: the slab it
// lived in and its local column index there. {-1, -1} means absent.
type shardRef struct{ slab, col int }

// solverShard owns one column partition of the score matrix.
type solverShard struct {
	idx  int
	cols []int // global column (host) indices, ascending

	base []float64 // V × len(cols) scoreBase slab
	m    []float64 // V × len(cols) full-score slab

	// Per-VM best-move records over this shard's columns only, with
	// global node indices and the serial solver's invariants: bestNi is
	// the lowest column achieving the minimum finite score excluding
	// the VM's current assignment (-1 = none), bestSc that score,
	// firstNi the lowest column with any finite score.
	bestNi  []int
	bestSc  []float64
	firstNi []int

	// Build scratch: this round's column keys and carry sources.
	keys []colKey
	src  []shardRef

	// stats is the shard's private counter set; workers only ever
	// touch their own, and the round folds them into Scheduler.Stats.
	stats SolverStats
}

// crossShardState is the sharded engine's cross-round snapshot: the
// previous round's per-shard base slabs plus the row and column keys
// they were computed from. Kept separate from the serial crossState so
// switching Shards between rounds can never read a foreign buffer.
type crossShardState struct {
	valid  bool
	slabs  [][]float64
	widths []int
	keys   [][]colKey // per slab, per local column
	rows   []rowKey   // previous rows, ascending VM ID
	colOf  []shardRef // node ID -> previous slab/local
}

// shardedState is the engine's working state on the Scheduler.
type shardedState struct {
	k        int // this round's shard count
	shards   []*solverShard
	colShard []int // global column -> owning shard
	colLocal []int // global column -> local index in the owner

	cross crossShardState

	// Round-constant time-dependent halves, precomputed once so every
	// shard composes cells with the exact float grouping of the serial
	// build: stay[vi] is scoreTimeStay, timeMove[vi*C+g] is
	// scoreTimeMove for class g.
	stay     []float64
	timeMove []float64
}

// shardCount resolves Config.Shards for a round over h hosts.
func (c Config) shardCount(h int) int {
	k := c.Shards
	if k < 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > h {
		k = h
	}
	if k < 1 {
		k = 1
	}
	return k
}

// runShards executes fn once per shard, in parallel when there is
// parallelism to be had.
func (st *shardedState) runShards(fn func(sh *solverShard)) {
	shards := st.shards[:st.k]
	if len(shards) == 1 {
		fn(shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, sh := range shards {
		go func(sh *solverShard) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	wg.Wait()
}

// partitionColumns deals the host columns to k shards: hosts are
// grouped by node class (first-appearance order, via sch.classOf) and
// each group is dealt round-robin, with the cursor continuing across
// groups so shard sizes stay within one of each other. Grouping by
// class first keeps every shard's class mix representative, so the
// per-move column refreshes — whose cost follows the column's class
// feasibility profile — stay balanced across workers.
func (sch *Scheduler) partitionColumns(hosts []*cluster.Node, k int) {
	st := &sch.shd
	st.k = k
	for len(st.shards) < k {
		st.shards = append(st.shards, &solverShard{idx: len(st.shards)})
	}
	for i, sh := range st.shards[:k] {
		sh.idx = i
		sh.cols = sh.cols[:0]
	}
	H := len(hosts)
	st.colShard = grow(st.colShard, H)
	st.colLocal = grow(st.colLocal, H)
	cursor := 0
	for g := range sch.classes {
		for ni := 0; ni < H; ni++ {
			if sch.classOf[ni] != g {
				continue
			}
			sh := st.shards[cursor%k]
			cursor++
			sh.cols = append(sh.cols, ni)
		}
	}
	for i, sh := range st.shards[:k] {
		slices.Sort(sh.cols) // ascending global order = serial scan order
		for li, ni := range sh.cols {
			st.colShard[ni] = i
			st.colLocal[ni] = li
		}
	}
}

// cell returns the cached full score of (global column ni, row vi).
func (st *shardedState) cell(vi, ni int) float64 {
	sh := st.shards[st.colShard[ni]]
	return sh.m[vi*len(sh.cols)+st.colLocal[ni]]
}

// solveSharded runs the hill climber against the sharded matrix. It
// applies exactly the same sequence of moves as solveIncremental and
// solveNaive.
func (sch *Scheduler) solveSharded(s *shadow, hosts []*cluster.Node, cands []*vm.VM) {
	V := len(cands)
	st := &sch.shd
	sch.buildSharded(s, hosts, cands)

	limit := sch.iterationLimit(V)
	const eps = 1e-9
	moves := 0
	for iter := 0; iter < limit; iter++ {
		// The arbiter: merge the per-shard candidate moves into the
		// globally best one. Ordering is deterministic — lowest score
		// wins, ties broken by lowest node index within a VM and by
		// earliest VM across VMs (strict < on the scan) — which is
		// exactly the serial solver's full-matrix scan order.
		bestVI, bestNI := -1, -1
		bestDiff := -eps
		for vi := 0; vi < V; vi++ {
			cur := sch.cfg.QueueScore
			if a := s.assign[vi]; a >= 0 {
				cur = st.cell(vi, a)
			}
			var ni int
			var diff float64
			if math.IsInf(cur, 1) {
				// Current host infeasible: any feasible target is an
				// infinite improvement; the naive scan keeps the first.
				ni = -1
				for _, sh := range st.shards[:st.k] {
					if f := sh.firstNi[vi]; f >= 0 && (ni < 0 || f < ni) {
						ni = f
					}
				}
				if ni < 0 {
					continue
				}
				diff = math.Inf(-1)
			} else {
				ni = -1
				sc := math.Inf(1)
				for _, sh := range st.shards[:st.k] {
					if b := sh.bestNi[vi]; b >= 0 && (sh.bestSc[vi] < sc || (sh.bestSc[vi] == sc && b < ni)) {
						sc, ni = sh.bestSc[vi], b
					}
				}
				if ni < 0 {
					continue
				}
				diff = sc - cur
				threshold := -eps
				if cands[vi].State != vm.Queued {
					// Migration hysteresis (queued VMs are exempt).
					threshold = -sch.cfg.MigrationGainMin
				}
				if diff > threshold {
					continue
				}
			}
			if diff < bestDiff {
				bestDiff = diff
				bestVI, bestNI = vi, ni
			}
		}
		if bestVI < 0 {
			break // no negative values left: suboptimal solution found
		}
		if sch.traceVerb >= obs.TraceActions {
			sch.traceMove(s, bestVI, bestNI)
		}
		from := s.assign[bestVI]
		s.move(bestVI, bestNI)
		moves++
		if iter == limit-1 {
			sch.Stats.LimitHits++
		}
		// Fan the dirty region out: each shard refreshes the endpoint
		// columns it owns, then its slice of the moved VM's row, then
		// rescans its record for that VM — all against the already
		// updated (and now read-only) shadow.
		st.runShards(func(sh *solverShard) {
			if from >= 0 && st.colShard[from] == sh.idx {
				sh.refreshColumn(sch, s, bestVI, st.colLocal[from])
			}
			if st.colShard[bestNI] == sh.idx {
				sh.refreshColumn(sch, s, bestVI, st.colLocal[bestNI])
			}
			w := len(sh.cols)
			row := bestVI * w
			for li, ni := range sh.cols {
				if ni == from || ni == bestNI {
					continue // the column refresh already re-scored these
				}
				sh.stats.ScoreEvals++
				sh.m[row+li] = sch.score(s, ni, bestVI)
			}
			sh.rescanRow(s.assign[bestVI], bestVI)
		})
	}
	sch.Stats.Moves += moves
	sch.Stats.ShardRounds++
	sch.Stats.LastShards = st.k
	for _, sh := range st.shards[:st.k] {
		sch.Stats.ScoreEvals += sh.stats.ScoreEvals
		sch.Stats.ReusedCells += sh.stats.ReusedCells
		sch.Stats.StaleCols += sh.stats.StaleCols
		sch.Stats.ColRefreshes += sh.stats.ColRefreshes
		sch.Stats.RowRescans += sh.stats.RowRescans
		sh.stats = SolverStats{}
	}
}

// buildSharded fills every shard's slabs and best-move records for the
// round, carrying the time-independent half of unchanged cells from
// the previous round's snapshot (wherever the column lived then), and
// publishes this round's snapshot.
func (sch *Scheduler) buildSharded(s *shadow, hosts []*cluster.Node, cands []*vm.VM) {
	V, H := len(cands), len(hosts)
	st := &sch.shd
	cr := &st.cross
	carry := cr.valid && !sch.cfg.FreshMatrix

	sch.collectClasses(hosts)
	sch.partitionColumns(hosts, sch.cfg.shardCount(H))

	// Row keys: identical to the serial build (both candidate lists are
	// sorted by VM ID, so one merge scan pairs current rows with the
	// previous snapshot's).
	sch.nextRows = grow(sch.nextRows, V)
	sch.rowSrc = grow(sch.rowSrc, V)
	staleRows := 0
	pi := 0
	for vi, v := range cands {
		initial := -1
		if a := s.assign[vi]; a >= 0 {
			initial = hosts[a].ID
		}
		k := rowKey{
			vm: v, epoch: v.Epoch,
			cpu: v.Req.CPU, mem: v.Req.Mem, arch: v.Req.Arch, hyp: v.Req.Hypervisor,
			ftol: v.FaultTolerance, initial: initial,
		}
		sch.nextRows[vi] = k
		src := -1
		if carry {
			for pi < len(cr.rows) && cr.rows[pi].vm.ID < v.ID {
				pi++
			}
			if pi < len(cr.rows) && cr.rows[pi] == k {
				src = pi
			}
		}
		sch.rowSrc[vi] = src
		if src < 0 {
			staleRows++
		}
	}

	// The time-dependent halves are round-constant (they depend on the
	// node only through its class and the stay/move distinction), so
	// compute them once up front; shards then compose cells with the
	// serial build's exact float grouping (base + time).
	C := len(sch.classes)
	st.stay = grow(st.stay, V)
	st.timeMove = grow(st.timeMove, V*C)
	for vi := range cands {
		st.stay[vi] = 0
		if s.assign[vi] >= 0 {
			st.stay[vi] = sch.scoreTimeStay(s, vi)
		}
		for g, cl := range sch.classes {
			st.timeMove[vi*C+g] = sch.scoreTimeMove(s, vi, cl)
		}
	}

	maxSlab := 0
	for _, sh := range st.shards[:st.k] {
		if cells := V * len(sh.cols); cells > maxSlab {
			maxSlab = cells
		}
	}
	if maxSlab > sch.Stats.MaxSlabCells {
		sch.Stats.MaxSlabCells = maxSlab
	}

	st.runShards(func(sh *solverShard) { sh.build(sch, s, hosts, cands, carry) })

	for _, sh := range st.shards[:st.k] {
		if carry {
			sch.Stats.StaleCols += sh.stats.StaleCols
		}
		sh.stats.StaleCols = 0
		sch.Stats.ScoreEvals += sh.stats.ScoreEvals
		sch.Stats.ReusedCells += sh.stats.ReusedCells
		sh.stats.ScoreEvals, sh.stats.ReusedCells = 0, 0
	}
	if carry {
		sch.Stats.CarryRounds++
		sch.Stats.StaleRows += staleRows
	}

	// Publish this round's snapshot by swapping buffers with the
	// previous one (the hill climb only mutates sh.m; base holds
	// round-start values, exactly like the serial build).
	cr.slabs = grow(cr.slabs, st.k)
	cr.widths = grow(cr.widths, st.k)
	cr.keys = grow(cr.keys, st.k)
	for i, sh := range st.shards[:st.k] {
		cr.slabs[i], sh.base = sh.base, cr.slabs[i]
		cr.keys[i], sh.keys = sh.keys, cr.keys[i]
		cr.widths[i] = len(sh.cols)
	}
	cr.rows, sch.nextRows = sch.nextRows, cr.rows
	maxID := 0
	for _, n := range hosts {
		if n.ID >= maxID {
			maxID = n.ID
		}
	}
	cr.colOf = grow(cr.colOf, maxID+1)
	for i := range cr.colOf {
		cr.colOf[i] = shardRef{-1, -1}
	}
	for i, sh := range st.shards[:st.k] {
		for li, ni := range sh.cols {
			cr.colOf[hosts[ni].ID] = shardRef{i, li}
		}
	}
	cr.valid = true
}

// build fills one shard's slabs and records. Runs on a worker; touches
// only the shard's own buffers plus read-only scheduler/shadow state.
func (sh *solverShard) build(sch *Scheduler, s *shadow, hosts []*cluster.Node, cands []*vm.VM, carry bool) {
	st := &sch.shd
	cr := &st.cross
	V, w, C := len(cands), len(sh.cols), len(sch.classes)
	sh.base = grow(sh.base, V*w)
	sh.m = grow(sh.m, V*w)
	sh.bestNi = grow(sh.bestNi, V)
	sh.bestSc = grow(sh.bestSc, V)
	sh.firstNi = grow(sh.firstNi, V)
	sh.keys = grow(sh.keys, w)
	sh.src = grow(sh.src, w)

	// Column keys: snapshot each owned host's scoreBase inputs and
	// match against wherever that node's column lived last round.
	for li, ni := range sh.cols {
		n := hosts[ni]
		k := colKey{
			node: n, class: n.Class, epoch: n.Epoch, state: n.State,
			cpu: s.cpu[ni], mem: s.mem[ni], count: s.count[ni],
			creating: n.CreatingOps, migrating: n.MigratingOps, rel: n.Reliability,
		}
		sh.keys[li] = k
		src := shardRef{-1, -1}
		if carry && n.ID >= 0 && n.ID < len(cr.colOf) {
			if ref := cr.colOf[n.ID]; ref.slab >= 0 && cr.keys[ref.slab][ref.col] == k {
				src = ref
			}
		}
		sh.src[li] = src
		if src.slab < 0 {
			sh.stats.StaleCols++
		}
	}

	for vi := range cands {
		row := vi * w
		assign := s.assign[vi]
		prow := sch.rowSrc[vi]
		best, bestn, first := math.Inf(1), -1, -1
		for li, ni := range sh.cols {
			var b float64
			if src := sh.src[li]; prow >= 0 && src.slab >= 0 {
				b = cr.slabs[src.slab][prow*cr.widths[src.slab]+src.col]
				sh.stats.ReusedCells++
			} else {
				b = sch.scoreBase(s, ni, vi)
				sh.stats.ScoreEvals++
			}
			sh.base[row+li] = b
			sc := b
			if !math.IsInf(b, 1) {
				t := st.stay[vi]
				if ni != assign {
					t = st.timeMove[vi*C+sch.classOf[ni]]
				}
				if math.IsInf(t, 1) {
					sc = t
				} else {
					sc = b + t
				}
			}
			sh.m[row+li] = sc
			if ni == assign || math.IsInf(sc, 1) {
				continue
			}
			if first < 0 {
				first = ni
			}
			if sc < best {
				best, bestn = sc, ni
			}
		}
		sh.bestSc[vi], sh.bestNi[vi], sh.firstNi[vi] = best, bestn, first
	}
}

// refreshColumn re-scores the shard's local column li for every VM and
// repairs the per-VM records it invalidates — the serial solver's
// refreshColumn restricted to one shard. The maintained invariant is
// identical, so the merged records stay equal to a full-row scan.
func (sh *solverShard) refreshColumn(sch *Scheduler, s *shadow, movedVI, li int) {
	sh.stats.ColRefreshes++
	c := sh.cols[li]
	V, w := len(s.vms), len(sh.cols)
	for vj := 0; vj < V; vj++ {
		idx := vj*w + li
		old := sh.m[idx]
		sh.stats.ScoreEvals++
		sc := sch.score(s, c, vj)
		sh.m[idx] = sc
		if sc == old {
			continue // unchanged (including +Inf staying +Inf)
		}
		if vj == movedVI {
			continue // full row refresh + rescan follows in the caller
		}
		if c == s.assign[vj] {
			continue // the cell is vj's current-host cost, not a target
		}
		if c == sh.bestNi[vj] {
			if sc <= sh.bestSc[vj] {
				sh.bestSc[vj] = sc
				continue
			}
			sh.rescanRow(s.assign[vj], vj)
			continue
		}
		if math.IsInf(sc, 1) {
			if c == sh.firstNi[vj] {
				sh.rescanRow(s.assign[vj], vj)
			}
			continue
		}
		if sh.firstNi[vj] < 0 || c < sh.firstNi[vj] {
			sh.firstNi[vj] = c
		}
		if sh.bestNi[vj] < 0 || sc < sh.bestSc[vj] || (sc == sh.bestSc[vj] && c < sh.bestNi[vj]) {
			sh.bestNi[vj], sh.bestSc[vj] = c, sc
		}
	}
}

// rescanRow rebuilds VM vi's record from the shard's cached row (no
// score evaluations), excluding the current assignment.
func (sh *solverShard) rescanRow(assign, vi int) {
	sh.stats.RowRescans++
	w := len(sh.cols)
	best, bestn, first := math.Inf(1), -1, -1
	row := vi * w
	for li, ni := range sh.cols {
		if ni == assign {
			continue
		}
		sc := sh.m[row+li]
		if math.IsInf(sc, 1) {
			continue
		}
		if first < 0 {
			first = ni
		}
		if sc < best {
			best, bestn = sc, ni
		}
	}
	sh.bestSc[vi], sh.bestNi[vi], sh.firstNi[vi] = best, bestn, first
}
