package core

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"energysched/internal/cluster"
	"energysched/internal/obs"
	"energysched/internal/policy"
	"energysched/internal/vm"
)

// Scheduler is the score-based scheduling policy. It implements
// policy.Policy so the datacenter harness can drive it exactly like
// the baselines.
//
// The solver keeps its working state (candidate slice, shadow loads,
// the cached score matrix and per-VM best-move records) as scratch
// buffers on the Scheduler, so steady-state rounds are allocation-free.
type Scheduler struct {
	cfg Config
	// Stats accumulates solver diagnostics across rounds.
	Stats SolverStats

	// Tracer, when non-nil, receives one structured decision trace per
	// round (see internal/obs). It lives on the struct rather than in
	// Config so Config stays a comparable value type, and it is a pure
	// wall-clock side channel: the solver writes traces but never reads
	// one back, so any verbosity leaves the action stream and Stats
	// byte-identical to a run with tracing off.
	Tracer obs.TraceSink

	// traceVerb caches the sink's verbosity for the round in flight;
	// traceActs is the round's action-trace scratch (see trace.go).
	traceVerb obs.Verbosity
	traceActs []obs.ActionTrace

	// --- scratch buffers reused across rounds ---
	hosts []*cluster.Node
	cands []*vm.VM
	sh    shadow
	inc   incState

	// cross is the previous round's base-matrix snapshot; the next*
	// and *Src slices are the current round's build scratch (swapped
	// into cross when the build publishes). See buildMatrix.
	cross    crossState
	nextBase []float64
	nextRows []rowKey
	nextCols []colKey
	rowSrc   []int
	colSrc   []int
	classes  []*cluster.Class
	classOf  []int
	timeMove []float64

	// shd is the sharded engine's working state (Config.Shards != 0);
	// see sharded.go. It keeps its own cross-round snapshot, so the
	// serial and sharded paths never read each other's buffers.
	shd shardedState
}

// SolverStats counts solver work for the complexity ablation.
type SolverStats struct {
	// Rounds is the number of scheduling rounds executed.
	Rounds int
	// Moves is the number of improving moves applied.
	Moves int
	// ScoreEvals is the number of Score(h,vm) evaluations.
	ScoreEvals int
	// LimitHits counts rounds stopped by the iteration limit.
	LimitHits int
	// ColRefreshes counts dirty-column recomputations performed by the
	// incremental solver: two per applied migration, one per queue
	// placement (a queued VM has no source column to invalidate).
	ColRefreshes int
	// RowRescans counts per-VM best-move rescans triggered because a
	// dirty column invalidated a cached best (no score evaluations are
	// spent on a rescan; it re-reads the cached matrix).
	RowRescans int

	// --- cross-round reuse (see buildMatrix) ---

	// CarryRounds counts rounds that started from a previous round's
	// matrix snapshot (cross-round reuse active).
	CarryRounds int
	// StaleRows counts candidate rows re-scored at the top of a carry
	// round because the VM was new or its real state changed since the
	// snapshot (arrival, migration, demand update, requeue).
	StaleRows int
	// StaleCols counts host columns re-scored at the top of a carry
	// round because the node was new or its real state changed
	// (power transition, VM set change, operation begin/end).
	StaleCols int
	// ReusedCells counts base-matrix cells carried across rounds
	// without re-evaluation.
	ReusedCells int

	// --- sharded rounds (see sharded.go) ---

	// ShardRounds counts rounds solved by the sharded parallel engine.
	ShardRounds int
	// LastShards is the shard count of the most recent sharded round
	// (host-count clamped, GOMAXPROCS resolved).
	LastShards int
	// MaxSlabCells is the largest single score-matrix slab allocated so
	// far: V×H for the serial solvers, V×⌈H/K⌉ per shard for the
	// sharded engine — the per-shard (not monolithic) memory bound.
	MaxSlabCells int
}

// NewScheduler builds a score-based scheduler with the given
// configuration.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg}, nil
}

// MustScheduler is NewScheduler that panics on error.
func MustScheduler(cfg Config) *Scheduler {
	s, err := NewScheduler(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements policy.Policy.
func (sch *Scheduler) Name() string { return sch.cfg.variantName() }

// Migratory implements policy.Policy.
func (sch *Scheduler) Migratory() bool { return sch.cfg.Migration }

// Config returns the scheduler's configuration.
func (sch *Scheduler) Config() Config { return sch.cfg }

// candidates collects the VMs the solver considers this round into
// buf, sorted by ID: every queued VM, plus — when migration is enabled
// — every running VM outside its migration cooldown (creating and
// migrating VMs are pinned by the in-operation rule and only add
// noise, so they are left out of the matrix entirely). Both Schedule
// and Matrix select candidates through here so the explainability
// matrix never shows columns the solver would not consider.
func (sch *Scheduler) candidates(ctx *policy.Context, buf []*vm.VM) []*vm.VM {
	cands := buf[:0]
	cands = append(cands, ctx.Queue...)
	if sch.cfg.Migration {
		cooldown := sch.cfg.MigrationCooldown
		if cooldown == 0 {
			cooldown = 3600
		}
		for _, v := range ctx.Active {
			if v.State != vm.Running {
				continue
			}
			if cooldown > 0 && v.LastMigrate >= 0 && ctx.Now-v.LastMigrate < cooldown {
				continue // anti-thrash: recently migrated VMs stay put
			}
			cands = append(cands, v)
		}
	}
	slices.SortFunc(cands, func(a, b *vm.VM) int { return cmp.Compare(a.ID, b.ID) })
	return cands
}

// iterationLimit bounds the hill-climbing loop for a round over n
// candidates.
func (sch *Scheduler) iterationLimit(n int) int {
	limit := sch.cfg.MaxIterations
	if limit <= 0 {
		limit = 4 * n
		if limit < 32 {
			limit = 32
		}
	}
	return limit
}

// Schedule implements policy.Policy: it builds the score matrix over
// operational hosts × candidate VMs and hill-climbs it (Algorithm 1),
// returning the placements and migrations that realize the improved
// assignment.
//
// The default solver computes the matrix once and then maintains it
// incrementally: a move touches only the loads of its two endpoint
// hosts, so after each move only those two columns and the moved VM's
// row are recomputed, and each iteration picks the global best move
// from per-VM best-move records in O(V) instead of rescoring the full
// V×H matrix. Config.NaiveSolver restores the reference evaluator for
// differential verification; both emit identical actions.
func (sch *Scheduler) Schedule(ctx *policy.Context) []policy.Action {
	sch.Stats.Rounds++

	sch.hosts = ctx.Cluster.AppendOnline(sch.hosts[:0])
	hosts := sch.hosts
	if len(hosts) == 0 {
		return nil
	}

	sch.cands = sch.candidates(ctx, sch.cands)
	cands := sch.cands
	if len(cands) == 0 {
		return nil
	}

	t0 := sch.beginTrace()
	before := sch.Stats

	s := &sch.sh
	s.reset(ctx.Now, hosts, cands)

	solver := "incremental"
	switch {
	case sch.cfg.NaiveSolver:
		solver = "naive"
		sch.solveNaive(s, hosts, cands)
	case sch.cfg.Shards != 0:
		solver = "sharded"
		sch.solveSharded(s, hosts, cands)
	default:
		sch.solveIncremental(s, hosts, cands)
	}

	// Emit the actions that realize the final assignment.
	var out []policy.Action
	for vi, v := range cands {
		from, to := s.initial[vi], s.assign[vi]
		if from == to || to < 0 {
			continue
		}
		node := hosts[to].ID
		if v.State == vm.Queued {
			out = append(out, policy.Place{VM: v, Node: node})
		} else {
			out = append(out, policy.Migrate{VM: v, To: node})
		}
	}
	if sch.traceVerb > obs.TraceOff {
		sch.emitRoundTrace(ctx.Now, solver, t0, before, len(hosts), len(cands))
	}
	return out
}

// solveNaive is the reference hill climber: every iteration rescans
// the entire V×H matrix, recomputing each score against the current
// shadow. O(I·V·H) score evaluations; kept as the differential-test
// oracle for the incremental solver.
func (sch *Scheduler) solveNaive(s *shadow, hosts []*cluster.Node, cands []*vm.VM) {
	// currentScore(vi): the cost of keeping the VM where it is — the
	// virtual-host queue cost for queued VMs, its present host's
	// score for running ones. Recomputed each iteration because moves
	// change host loads and therefore sibling scores.
	currentScore := func(vi int) float64 {
		if s.assign[vi] < 0 {
			return sch.cfg.QueueScore
		}
		sch.Stats.ScoreEvals++
		return sch.score(s, s.assign[vi], vi)
	}

	limit := sch.iterationLimit(len(cands))
	const eps = 1e-9
	moves := 0
	for iter := 0; iter < limit; iter++ {
		// Find the most negative improvement in the whole matrix.
		bestVI, bestNI := -1, -1
		bestDiff := -eps
		for vi := range cands {
			cur := currentScore(vi)
			// Migration hysteresis: moving an already-running VM must
			// beat the configured gain (queued VMs and VMs on
			// infeasible hosts always move).
			threshold := -eps
			if cands[vi].State != vm.Queued && !math.IsInf(cur, 1) {
				threshold = -sch.cfg.MigrationGainMin
			}
			for ni := range hosts {
				if ni == s.assign[vi] {
					continue
				}
				sch.Stats.ScoreEvals++
				sc := sch.score(s, ni, vi)
				if math.IsInf(sc, 1) {
					continue
				}
				var diff float64
				if math.IsInf(cur, 1) {
					diff = math.Inf(-1)
				} else {
					diff = sc - cur
				}
				if diff > threshold {
					continue
				}
				if diff < bestDiff {
					bestDiff = diff
					bestVI, bestNI = vi, ni
				}
			}
		}
		if bestVI < 0 {
			break // no negative values left: suboptimal solution found
		}
		if sch.traceVerb >= obs.TraceActions {
			sch.traceMove(s, bestVI, bestNI)
		}
		s.move(bestVI, bestNI)
		moves++
		if iter == limit-1 {
			sch.Stats.LimitHits++
		}
	}
	sch.Stats.Moves += moves
}

// RankOff orders idle nodes by descending turn-off preference, per
// §III-C: the scheduler selects the machines whose matrix row carries
// the highest aggregate penalty — operationally, the nodes that are
// least attractive for hosting (slow creation/migration, low
// reliability) go first.
func RankOff(idle []*cluster.Node) []*cluster.Node {
	out := append([]*cluster.Node(nil), idle...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		sa := a.Class.CreateCost + a.Class.MigrateCost + 100*(1-a.Reliability)
		sb := b.Class.CreateCost + b.Class.MigrateCost + 100*(1-b.Reliability)
		if sa != sb {
			return sa > sb
		}
		return a.ID > b.ID
	})
	return out
}

// RankOn orders powered-off nodes by descending turn-on preference:
// reliable, fast-booting, fast classes first (§III-C: "the nodes to
// be turned on are selected according to a number of parameters,
// including its reliability, boot time, etc.").
func RankOn(off []*cluster.Node) []*cluster.Node {
	out := append([]*cluster.Node(nil), off...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		sa := a.Class.BootTime + a.Class.CreateCost + 200*(1-a.Reliability)
		sb := b.Class.BootTime + b.Class.CreateCost + 200*(1-b.Reliability)
		if sa != sb {
			return sa < sb
		}
		return a.ID < b.ID
	})
	return out
}
