package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"energysched/internal/obs"
)

// Decision tracing must be a pure observer: a scheduler with a
// TraceScores sink attached must emit exactly the actions and stats of
// a tracerless twin, across all three solver engines. These tests are
// the core-level half of the determinism contract; the chaos 10k
// byte-identity suite enforces the same thing end to end.

// traceVariants are the engine configurations the determinism sweep
// covers.
func traceVariants() []struct {
	name string
	mut  func(*Config)
} {
	return []struct {
		name string
		mut  func(*Config)
	}{
		{"incremental", func(c *Config) {}},
		{"naive", func(c *Config) { c.NaiveSolver = true }},
		{"sharded", func(c *Config) { c.Shards = 4 }},
	}
}

// TestTraceDeterminism runs randomized rounds on twin schedulers — one
// tracerless, one with a TraceScores ring — and requires identical
// actions and identical SolverStats (including ScoreEvals: trace
// recomputation must not show up in the counters).
func TestTraceDeterminism(t *testing.T) {
	for seed := 0; seed < 60; seed++ {
		r := rand.New(rand.NewSource(int64(9000 + seed)))
		ctx, cfg := randomScenario(r)
		for _, variant := range traceVariants() {
			vCfg := cfg
			variant.mut(&vCfg)
			plain := MustScheduler(vCfg)
			traced := MustScheduler(vCfg)
			ring := obs.NewTraceRing(obs.TraceScores, 0)
			traced.Tracer = ring

			want := renderActions(plain.Schedule(ctx))
			got := renderActions(traced.Schedule(ctx))
			if len(want) != len(got) {
				t.Fatalf("seed %d %s: action count diverged with tracing: %v vs %v", seed, variant.name, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seed %d %s: action %d diverged with tracing: %q vs %q", seed, variant.name, i, got[i], want[i])
				}
			}
			if plain.Stats != traced.Stats {
				t.Fatalf("seed %d %s: stats diverged with tracing:\ntraced: %+v\nplain:  %+v", seed, variant.name, traced.Stats, plain.Stats)
			}
			if len(want) > 0 && ring.Seq() == 0 {
				t.Fatalf("seed %d %s: round produced %d actions but no trace was emitted", seed, variant.name, len(want))
			}
		}
	}
}

// TestTraceRoundContents drives each engine until a round applies
// moves, then checks the emitted RoundTrace: solver name, matrix
// dimensions, one "why" record per applied move with a strictly
// negative winning margin, and a populated score breakdown at
// TraceScores.
func TestTraceRoundContents(t *testing.T) {
	for _, variant := range traceVariants() {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			for seed := 0; seed < 200; seed++ {
				r := rand.New(rand.NewSource(int64(4400 + seed)))
				ctx, cfg := randomScenario(r)
				variant.mut(&cfg)
				sch := MustScheduler(cfg)
				ring := obs.NewTraceRing(obs.TraceScores, 0)
				sch.Tracer = ring
				sch.Schedule(ctx)
				if sch.Stats.Moves == 0 {
					continue // need a round that actually moved something
				}

				evs := ring.Snapshot(0)
				if len(evs) != 1 {
					t.Fatalf("seed %d: %d trace events after one round, want 1", seed, len(evs))
				}
				var rt obs.RoundTrace
				if err := json.Unmarshal(evs[0].Data, &rt); err != nil {
					t.Fatalf("seed %d: trace does not decode: %v", seed, err)
				}
				if rt.Seq != 1 || rt.Round != 1 {
					t.Errorf("seed %d: Seq/Round = %d/%d, want 1/1", seed, rt.Seq, rt.Round)
				}
				if rt.Solver != variant.name {
					t.Errorf("seed %d: Solver = %q, want %q", seed, rt.Solver, variant.name)
				}
				if variant.name == "sharded" && rt.Shards < 1 {
					t.Errorf("seed %d: sharded round traced Shards = %d", seed, rt.Shards)
				}
				if rt.Hosts <= 0 || rt.Candidates <= 0 {
					t.Errorf("seed %d: empty matrix dimensions %d×%d in a round with moves", seed, rt.Candidates, rt.Hosts)
				}
				if rt.Moves != sch.Stats.Moves {
					t.Errorf("seed %d: traced Moves = %d, stats say %d", seed, rt.Moves, sch.Stats.Moves)
				}
				if rt.ScoreEvals != sch.Stats.ScoreEvals {
					t.Errorf("seed %d: traced ScoreEvals = %d, stats say %d", seed, rt.ScoreEvals, sch.Stats.ScoreEvals)
				}
				if len(rt.Actions) != rt.Moves {
					t.Errorf("seed %d: %d action records for %d moves", seed, len(rt.Actions), rt.Moves)
				}
				for i, at := range rt.Actions {
					if at.Kind != "place" && at.Kind != "migrate" {
						t.Errorf("seed %d action %d: Kind = %q", seed, i, at.Kind)
					}
					if at.Kind == "place" && at.From != -1 {
						t.Errorf("seed %d action %d: placement with From = %d", seed, i, at.From)
					}
					if at.Kind == "migrate" && at.From < 0 {
						t.Errorf("seed %d action %d: migration without a source node", seed, i)
					}
					if at.To < 0 {
						t.Errorf("seed %d action %d: To = %d", seed, i, at.To)
					}
					if at.Gain >= 0 {
						t.Errorf("seed %d action %d: non-improving Gain %v traced as applied", seed, i, at.Gain)
					}
					if at.Terms == nil {
						t.Errorf("seed %d action %d: no score breakdown at TraceScores", seed, i)
					}
				}
				return // one moving round per engine is enough
			}
			t.Fatal("no seed produced a round with moves")
		})
	}
}

// TestTraceVerbosityLevels pins what each level records: TraceOff
// emits nothing, TraceRounds omits action records, TraceActions omits
// the score breakdown.
func TestTraceVerbosityLevels(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		r := rand.New(rand.NewSource(int64(5100 + seed)))
		ctx, cfg := randomScenario(r)
		sch := MustScheduler(cfg)
		if renderActions(sch.Schedule(ctx)) == nil {
			continue // need a round with actions
		}

		off := MustScheduler(cfg)
		offRing := obs.NewTraceRing(obs.TraceOff, 0)
		off.Tracer = offRing
		off.Schedule(ctx)
		if offRing.Seq() != 0 {
			t.Fatalf("seed %d: TraceOff emitted %d traces", seed, offRing.Seq())
		}

		decode := func(verb obs.Verbosity) obs.RoundTrace {
			t.Helper()
			sch := MustScheduler(cfg)
			ring := obs.NewTraceRing(verb, 0)
			sch.Tracer = ring
			sch.Schedule(ctx)
			evs := ring.Snapshot(0)
			if len(evs) != 1 {
				t.Fatalf("seed %d %v: %d trace events, want 1", seed, verb, len(evs))
			}
			var rt obs.RoundTrace
			if err := json.Unmarshal(evs[0].Data, &rt); err != nil {
				t.Fatalf("seed %d %v: trace does not decode: %v", seed, verb, err)
			}
			return rt
		}

		rounds := decode(obs.TraceRounds)
		if len(rounds.Actions) != 0 {
			t.Fatalf("seed %d: TraceRounds recorded %d action records", seed, len(rounds.Actions))
		}
		actions := decode(obs.TraceActions)
		if len(actions.Actions) == 0 {
			t.Fatalf("seed %d: TraceActions recorded no action records in a moving round", seed)
		}
		for i, at := range actions.Actions {
			if at.Terms != nil {
				t.Fatalf("seed %d: TraceActions action %d carries a score breakdown", seed, i)
			}
		}
		return
	}
	t.Fatal("no seed produced a round with actions")
}
