// Package core implements the paper's primary contribution: the
// score-based, power-aware VM scheduling policy (§III). Every
// tentative ⟨host, VM⟩ allocation is scored as the sum of penalty
// families — hardware/software requirements, resource requirements,
// virtualization overheads, operation concurrency, power efficiency,
// dynamic SLA enforcement, and reliability — and a hill-climbing
// solver repeatedly applies the best improving move until no move
// improves the system or an iteration limit is hit. A companion power
// manager turns nodes off and on under the λmin/λmax working-ratio
// thresholds (§III-C).
package core

import "fmt"

// Config parameterizes the score-based scheduler. Zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// Feature toggles matching the paper's incremental variants:
	// SB0 = power only; SB1 = SB0 + virtualization overheads;
	// SB2 = SB1 + concurrency; SB = SB2 + migration (everything).

	// EnableVirt adds Pvirt (creation and migration cost penalties).
	EnableVirt bool
	// EnableConc adds Pconc (in-flight operation concurrency penalty).
	EnableConc bool
	// EnablePower adds Ppwr (consolidation reward / empty-host cost).
	EnablePower bool
	// EnableSLA adds PSLA (dynamic SLA enforcement).
	EnableSLA bool
	// EnableFault adds Pfault (reliability-aware placement).
	EnableFault bool
	// Migration allows the solver to move running VMs.
	Migration bool

	// Cempty (Ce) is the cost of keeping a host under-used; the paper
	// sets it near the creation time (20 in the evaluation).
	Cempty float64
	// Cfill (Cf) is the reward slope for filling occupied hosts (40).
	Cfill float64
	// THempty: hosts with at most this many VMs are "emptiable" (1).
	THempty int
	// Csla is the cost of breaking a VM's SLA.
	Csla float64
	// THsla is the fulfillment tolerance threshold below which a
	// ⟨host, VM⟩ combination is forbidden.
	THsla float64
	// Cfail is the cost of failing a VM (reliability penalty scale).
	Cfail float64
	// MaxIterations bounds the hill-climbing loop; 0 = 4×VMs, min 32.
	MaxIterations int
	// MigrationGainMin is the hysteresis on migration moves: a
	// running VM only moves when the score improvement exceeds this
	// amount. It realizes the paper's "migration penalties ...
	// prevent the same VM from moving too often" without letting
	// float-level gains thrash long-running VMs (whose Pm penalty
	// decays towards zero). Placements of queued VMs are exempt.
	MigrationGainMin float64
	// MigrationCooldown keeps a VM in place for this many seconds
	// after a completed migration (0 = default 3600; negative
	// disables). The second half of the same anti-thrash requirement.
	MigrationCooldown float64
	// QueueScore is the large finite score of holding a VM in the
	// scheduler's virtual host, making any feasible placement the
	// highest-benefit move (the paper uses ∞; a large finite value
	// avoids ∞−∞ in the improvement arithmetic).
	QueueScore float64
	// FreshMatrix disables the cross-round score-matrix carry: every
	// round rebuilds the full time-independent half of the matrix from
	// scratch instead of reusing cells whose node and VM state is
	// unchanged since the previous round. The within-round incremental
	// solver is unaffected. Exists for ablation benchmarks and as a
	// bisection aid; both settings emit identical actions.
	FreshMatrix bool
	// NaiveSolver disables the incremental score-matrix cache and
	// re-evaluates the full V×H matrix on every hill-climbing
	// iteration, exactly as Algorithm 1 is written. Both solvers emit
	// identical actions; the naive one exists as the reference oracle
	// for differential testing and the complexity ablation.
	// NaiveSolver takes precedence over Shards.
	NaiveSolver bool
	// Shards selects the sharded parallel round engine (sharded.go):
	// host columns are partitioned into K shards (by node class, then
	// round-robin), each with its own scoreBase slab and dirty-column
	// tracking, and the matrix build plus per-move refreshes fan out
	// over a worker per shard. Candidate moves are merged through a
	// deterministic arbiter, so the chosen action sequence is
	// byte-identical to the serial solver at any K.
	//
	//	 0  serial incremental solver (default)
	//	-1  one shard per GOMAXPROCS
	//	 K  exactly K shards (clamped to the host count)
	Shards int
}

// DefaultConfig returns the paper's evaluation parameters (§V):
// THempty = 1, Cempty = 20, Cfill = 40, all penalties of the full SB
// configuration enabled.
func DefaultConfig() Config {
	return Config{
		EnableVirt:        true,
		EnableConc:        true,
		EnablePower:       true,
		EnableSLA:         false, // not exercised in the paper's experiments
		EnableFault:       false, // idem; enable for the fault-tolerance example
		Migration:         true,
		Cempty:            20,
		Cfill:             40,
		THempty:           1,
		Csla:              100,
		THsla:             0.5,
		Cfail:             200,
		QueueScore:        1e7,
		MigrationGainMin:  35,
		MigrationCooldown: 3600,
	}
}

// SB0Config is the basic variant: hardware/software + resource
// requirements + power efficiency, no migration (Table II).
func SB0Config() Config {
	c := DefaultConfig()
	c.EnableVirt = false
	c.EnableConc = false
	c.Migration = false
	return c
}

// SB1Config adds virtualization overheads to SB0 (Table III).
func SB1Config() Config {
	c := SB0Config()
	c.EnableVirt = true
	return c
}

// SB2Config adds operation-concurrency awareness to SB1 (Table III).
func SB2Config() Config {
	c := SB1Config()
	c.EnableConc = true
	return c
}

// SBConfig is the full policy with migration (Table IV).
func SBConfig() Config {
	return DefaultConfig()
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cempty < 0 || c.Cfill < 0 {
		return fmt.Errorf("core: Cempty/Cfill must be non-negative (%.1f, %.1f)", c.Cempty, c.Cfill)
	}
	if c.THempty < 0 {
		return fmt.Errorf("core: THempty must be non-negative, got %d", c.THempty)
	}
	if c.THsla < 0 || c.THsla >= 1 {
		return fmt.Errorf("core: THsla %.2f outside [0,1)", c.THsla)
	}
	if c.QueueScore <= 0 {
		return fmt.Errorf("core: QueueScore must be positive")
	}
	if c.Shards < -1 {
		return fmt.Errorf("core: Shards must be >= -1, got %d", c.Shards)
	}
	return nil
}

// variantName derives the report label from the toggles.
func (c Config) variantName() string {
	switch {
	case c.Migration:
		return "SB"
	case c.EnableConc:
		return "SB2"
	case c.EnableVirt:
		return "SB1"
	default:
		return "SB0"
	}
}
