// Package cli normalizes the ergonomics of the cmd/* binaries: flag
// parsing that fails with a one-line usage error (never a stack trace
// or a full defaults dump), a uniform -version flag fed by the module
// build info plus an optional ldflags git describe, and -h/-help
// printing the full flag reference.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
)

// describe carries `git describe` output when the binary is built with
//
//	go build -ldflags "-X energysched/internal/cli.describe=$(git describe --tags --always --dirty)"
//
// and stays empty on plain `go build`.
var describe string

// exit is swapped out by tests.
var exit = os.Exit

// Version renders the module version (from the embedded build info)
// plus the ldflags git describe, when present.
func Version() string {
	v := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		v = bi.Main.Version
	}
	if describe != "" {
		v += " " + describe
	}
	return v
}

// Parse parses os.Args for a binary named name using the global flag
// set, after registering the uniform -version flag. Unknown flags and
// bad values print a one-line error plus a pointer to -h and exit
// with status 2; -h/-help prints the full flag reference and exits 0;
// -version prints the version and exits 0.
func Parse(name string) {
	ParseArgs(name, os.Args[1:])
}

// ParseArgs is Parse over an explicit argument list (tests).
func ParseArgs(name string, args []string) {
	fs := flag.CommandLine
	version := fs.Bool("version", false, "print version and exit")
	fs.Init(name, flag.ContinueOnError)
	// Silence the flag package's own error+usage dump; errors are
	// reported as a single line below.
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	err := fs.Parse(args)
	switch {
	case errors.Is(err, flag.ErrHelp):
		fs.SetOutput(os.Stderr)
		fmt.Fprintf(os.Stderr, "usage of %s:\n", name)
		fs.PrintDefaults()
		exit(0)
	case err != nil:
		fmt.Fprintf(os.Stderr, "%s: %v (run '%s -h' for usage)\n", name, err, name)
		exit(2)
	}
	if *version {
		fmt.Printf("%s %s\n", name, Version())
		exit(0)
	}
}

// Fatalf prints a one-line error and exits with status 1 (runtime
// errors after successful flag parsing).
func Fatalf(name, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, name+": "+format+"\n", args...)
	exit(1)
}

// Usagef prints a one-line usage error plus a pointer to -h and exits
// with status 2 (missing or inconsistent required flags).
func Usagef(name, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, name+": "+format+" (run '%s -h' for usage)\n", append(args, name)...)
	exit(2)
}
