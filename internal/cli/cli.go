// Package cli normalizes the ergonomics of the cmd/* binaries: flag
// parsing that fails with a one-line usage error (never a stack trace
// or a full defaults dump), uniform -version/-log-level/-log-format
// flags on every binary (version fed by the module build info, the
// embedded VCS revision, plus an optional ldflags git describe), and
// -h/-help printing the full flag reference.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"energysched/internal/obs"
)

// describe carries `git describe` output when the binary is built with
//
//	go build -ldflags "-X energysched/internal/cli.describe=$(git describe --tags --always --dirty)"
//
// and stays empty on plain `go build`.
var describe string

// exit is swapped out by tests.
var exit = os.Exit

// logger is the root structured logger built from -log-level and
// -log-format during ParseArgs; before any parse it logs info-level
// text, so early failures still render.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// Logger returns the root slog.Logger configured by the binary's
// -log-level and -log-format flags. Binaries derive component loggers
// with Logger().With("component", ...).
func Logger() *slog.Logger { return logger }

// Version renders the module version (from the embedded build info),
// the ldflags git describe when present, and the VCS revision Go
// stamped into the binary.
func Version() string {
	v := obs.BuildVersion()
	if describe != "" {
		v += " " + describe
	}
	if rev := obs.BuildRevision(); rev != "" {
		v += " (" + rev + ")"
	}
	return v
}

// Parse parses os.Args for a binary named name using the global flag
// set, after registering the uniform -version flag. Unknown flags and
// bad values print a one-line error plus a pointer to -h and exit
// with status 2; -h/-help prints the full flag reference and exits 0;
// -version prints the version and exits 0.
func Parse(name string) {
	ParseArgs(name, os.Args[1:])
}

// ParseArgs is Parse over an explicit argument list (tests).
func ParseArgs(name string, args []string) {
	fs := flag.CommandLine
	version := fs.Bool("version", false, "print version and exit")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log format: text or json")
	fs.Init(name, flag.ContinueOnError)
	// Silence the flag package's own error+usage dump; errors are
	// reported as a single line below.
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	err := fs.Parse(args)
	switch {
	case errors.Is(err, flag.ErrHelp):
		fs.SetOutput(os.Stderr)
		fmt.Fprintf(os.Stderr, "usage of %s:\n", name)
		fs.PrintDefaults()
		exit(0)
	case err != nil:
		fmt.Fprintf(os.Stderr, "%s: %v (run '%s -h' for usage)\n", name, err, name)
		exit(2)
	}
	if *version {
		fmt.Printf("%s %s\n", name, Version())
		exit(0)
	}
	l, lerr := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v (run '%s -h' for usage)\n", name, lerr, name)
		exit(2)
	}
	logger = l
}

// Fatalf prints a one-line error and exits with status 1 (runtime
// errors after successful flag parsing).
func Fatalf(name, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, name+": "+format+"\n", args...)
	exit(1)
}

// Usagef prints a one-line usage error plus a pointer to -h and exits
// with status 2 (missing or inconsistent required flags).
func Usagef(name, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, name+": "+format+" (run '%s -h' for usage)\n", append(args, name)...)
	exit(2)
}
