package cli

import (
	"context"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

// withExit captures the exit code instead of terminating the test
// binary, and restores the global flag set afterwards (ParseArgs
// mutates flag.CommandLine).
func withExit(t *testing.T, fn func()) (code int, exited bool) {
	t.Helper()
	oldExit := exit
	oldFS := flag.CommandLine
	defer func() {
		exit = oldExit
		flag.CommandLine = oldFS
		recover() // unwind from the panic that stands in for os.Exit
	}()
	exit = func(c int) {
		code, exited = c, true
		panic("cli-test-exit")
	}
	fn()
	return code, exited
}

func TestParseArgsOK(t *testing.T) {
	code, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		n := flag.CommandLine.Int("n", 1, "count")
		ParseArgs("x", []string{"-n", "7"})
		if *n != 7 {
			t.Errorf("n = %d, want 7", *n)
		}
	})
	if exited {
		t.Fatalf("clean parse exited with %d", code)
	}
}

func TestParseArgsUnknownFlagExits2(t *testing.T) {
	code, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		ParseArgs("x", []string{"-definitely-not-a-flag"})
	})
	if !exited || code != 2 {
		t.Fatalf("unknown flag: exited=%v code=%d, want exit 2", exited, code)
	}
}

func TestParseArgsBadValueExits2(t *testing.T) {
	code, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		flag.CommandLine.Float64("days", 7, "days")
		ParseArgs("x", []string{"-days", "not-a-number"})
	})
	if !exited || code != 2 {
		t.Fatalf("bad value: exited=%v code=%d, want exit 2", exited, code)
	}
}

func TestParseArgsVersionExits0(t *testing.T) {
	code, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		ParseArgs("x", []string{"-version"})
	})
	if !exited || code != 0 {
		t.Fatalf("-version: exited=%v code=%d, want exit 0", exited, code)
	}
}

func TestParseArgsHelpExits0(t *testing.T) {
	code, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		ParseArgs("x", []string{"-h"})
	})
	if !exited || code != 0 {
		t.Fatalf("-h: exited=%v code=%d, want exit 0", exited, code)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if v := Version(); v == "" || strings.TrimSpace(v) == "" {
		t.Fatal("empty version string")
	}
}

func TestParseArgsLogFlags(t *testing.T) {
	old := logger
	defer func() { logger = old }()
	_, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		ParseArgs("x", []string{"-log-level", "debug", "-log-format", "json"})
	})
	if exited {
		t.Fatal("valid log flags exited")
	}
	if !Logger().Enabled(context.Background(), slog.LevelDebug) {
		t.Fatal("-log-level debug did not lower the root logger's level")
	}
}

func TestParseArgsBadLogLevelExits2(t *testing.T) {
	old := logger
	defer func() { logger = old }()
	code, exited := withExit(t, func() {
		flag.CommandLine = flag.NewFlagSet("x", flag.ContinueOnError)
		ParseArgs("x", []string{"-log-level", "chatty"})
	})
	if !exited || code != 2 {
		t.Fatalf("bad log level: exited=%v code=%d, want exit 2", exited, code)
	}
}
