package simkit

import (
	"math"
	"math/rand"
)

// Stream is a named, independently-seeded random stream. Experiments
// create one stream per stochastic process (arrivals, creation jitter,
// failures, ...) so that changing one process does not perturb the
// draws of another — the standard variance-reduction discipline for
// simulation studies.
type Stream struct {
	name string
	rng  *rand.Rand
}

// NewStream derives a deterministic stream from a base seed and a
// name. The same (seed, name) pair always yields the same sequence.
func NewStream(seed int64, name string) *Stream {
	h := seed
	for _, c := range name {
		h = h*1000003 + int64(c)
	}
	return &Stream{name: name, rng: rand.New(rand.NewSource(h))}
}

// Name returns the stream's name.
func (s *Stream) Name() string { return s.name }

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Uniform returns a uniform draw in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard
// deviation. The paper models VM creation time as N(40, 2.5).
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// NormalPositive returns a Gaussian draw truncated below at zero
// (resampled), for durations that must be non-negative.
func (s *Stream) NormalPositive(mean, stddev float64) float64 {
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, stddev)
		if v > 0 {
			return v
		}
	}
	return mean // pathological parameters; fall back to the mean
}

// Exp returns an exponential draw with the given rate (events per
// second). Used for failure inter-arrival times.
func (s *Stream) Exp(rate float64) float64 {
	return s.rng.ExpFloat64() / rate
}

// LogNormal returns exp(N(mu, sigma)) — the canonical heavy-tailed
// distribution for HPC job runtimes.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }
