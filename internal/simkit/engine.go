// Package simkit provides a deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by (time, sequence),
// cancellable timers, and seeded random streams.
//
// It plays the role OMNeT++ plays in the paper: the scheduler and the
// datacenter model are written against this kernel and advance in
// virtual time, so a week of datacenter activity simulates in well
// under a second.
package simkit

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is a callback executed when an event fires. It runs at the
// event's virtual time; Engine.Now() inside the handler returns that
// time.
type Handler func()

// Timer is a scheduled event. It can be cancelled before it fires;
// cancellation is O(1) (lazy deletion from the heap).
type Timer struct {
	at        float64
	seq       uint64
	fn        Handler
	cancelled bool
	fired     bool
	// anon marks a fire-and-forget timer (scheduled via At/After): no
	// handle was returned, so nobody can cancel it or observe it after
	// it fires, and the engine recycles it through the free list.
	anon bool
	// front marks an injection-priority timer (scheduled via AtFront):
	// at equal virtual times it fires before every normal timer,
	// regardless of scheduling order. Front timers order among
	// themselves by sequence, so FIFO injection order is preserved.
	front bool
}

// Time returns the virtual time at which the timer is scheduled.
func (t *Timer) Time() float64 { return t.at }

// Cancel prevents the timer from firing. Cancelling an already-fired
// or already-cancelled timer is a no-op. It reports whether the call
// actually cancelled a pending timer.
func (t *Timer) Cancel() bool {
	if t == nil || t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && !t.fired && !t.cancelled }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].front != h[j].front {
		return h[i].front
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
//
// Engines are not safe for concurrent use: the simulation model is
// single-threaded by design (event handlers run sequentially in
// deterministic order), which is what makes runs reproducible.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts events that have fired (for diagnostics).
	processed uint64
	// slab is the current block timers are carved from: one allocation
	// per timerSlabSize timers instead of one each.
	slab []Timer
	// free holds recycled fire-and-forget timers (see Timer.anon).
	free []*Timer
}

// timerSlabSize is how many timers one slab allocation covers.
const timerSlabSize = 256

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{events: make(eventHeap, 0, 256)}
}

// Now returns the current virtual time, in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including
// cancelled ones not yet discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule queues fn to run at absolute virtual time at. Scheduling in
// the past (at < Now) panics: it is always a model bug.
func (e *Engine) Schedule(at float64, fn Handler) *Timer {
	return e.newTimer(at, fn, false, false)
}

// ScheduleAfter queues fn to run delay seconds after Now. Negative
// delays panic.
func (e *Engine) ScheduleAfter(delay float64, fn Handler) *Timer {
	return e.Schedule(e.now+delay, fn)
}

// At queues fn at absolute virtual time at without returning a handle.
// Timers scheduled this way cannot be cancelled, which lets the engine
// recycle them after they fire: the allocation-free variant for the
// overwhelmingly common fire-and-forget case. Ordering relative to
// Schedule is unchanged (one shared sequence counter).
func (e *Engine) At(at float64, fn Handler) {
	e.newTimer(at, fn, true, false)
}

// After queues fn delay seconds after Now without returning a handle;
// see At. Negative delays panic.
func (e *Engine) After(delay float64, fn Handler) {
	e.At(e.now+delay, fn)
}

// AtFront queues fn at absolute virtual time at with injection
// priority: at equal times it fires before every timer scheduled with
// Schedule/At, no matter when either was queued; multiple front timers
// preserve their scheduling (FIFO) order. The datacenter harness uses
// it for workload arrivals so that a job injected online at time t is
// processed exactly as if its arrival had been scheduled before the
// run started — the property that makes live submission byte-identical
// to offline trace replay. Like At, no handle is returned.
func (e *Engine) AtFront(at float64, fn Handler) {
	e.newTimer(at, fn, true, true)
}

func (e *Engine) newTimer(at float64, fn Handler, anon, front bool) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("simkit: scheduling event at %.6f before now %.6f", at, e.now))
	}
	if math.IsNaN(at) {
		panic("simkit: scheduling event at NaN time")
	}
	e.seq++
	var t *Timer
	if n := len(e.free); anon && n > 0 {
		t = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		if len(e.slab) == 0 {
			e.slab = make([]Timer, timerSlabSize)
		}
		t = &e.slab[0]
		e.slab = e.slab[1:]
	}
	*t = Timer{at: at, seq: e.seq, fn: fn, anon: anon, front: front}
	heap.Push(&e.events, t)
	return t
}

// Stop makes Run return after the currently executing handler (if any)
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue empties, the clock
// passes until, or Stop is called. Events scheduled exactly at until
// are executed. It returns the final virtual time.
func (e *Engine) Run(until float64) float64 {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		t := e.events[0]
		if t.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if t.at > until {
			// Do not fire; advance clock to the horizon. The clock
			// never moves backwards, even for a stale horizon.
			if until > e.now {
				e.now = until
			}
			return e.now
		}
		e.fireHead(t)
	}
	if e.now < until && len(e.events) == 0 && !math.IsInf(until, 1) {
		e.now = until
	}
	return e.now
}

// RunBefore executes events in order while they are scheduled strictly
// before t, then advances the clock to t (unless Stop was called, in
// which case the clock stays at the stop point). Events scheduled
// exactly at t remain queued and fire first on a later Run/RunBefore
// past t. This is the advancement primitive for online (live-injected)
// simulations: holding the clock strictly below the admission
// watermark guarantees that every arrival at time t is queued before
// any event at t executes, which keeps live submission byte-identical
// to offline replay.
func (e *Engine) RunBefore(t float64) float64 {
	if math.IsNaN(t) {
		panic("simkit: RunBefore at NaN time")
	}
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		head := e.events[0]
		if head.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if head.at >= t {
			break
		}
		e.fireHead(head)
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	return e.now
}

// fireHead pops and executes the head timer t (which the caller has
// already inspected and decided to fire).
func (e *Engine) fireHead(t *Timer) {
	heap.Pop(&e.events)
	e.now = t.at
	t.fired = true
	e.processed++
	fn := t.fn
	if t.anon {
		// No handle exists, so nothing can observe this timer
		// after it fires: recycle it.
		t.fn = nil
		e.free = append(e.free, t)
	}
	fn()
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() float64 {
	return e.Run(math.Inf(1))
}
