package simkit

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed() = %d, want 5", e.Processed())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		if e.Now() != 10 {
			t.Errorf("Now() inside handler = %v, want 10", e.Now())
		}
		e.ScheduleAfter(5, func() {
			if e.Now() != 15 {
				t.Errorf("chained Now() = %v, want 15", e.Now())
			}
		})
	})
	end := e.RunAll()
	if end != 15 {
		t.Fatalf("RunAll returned %v, want 15", end)
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(5, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	now := e.Run(10)
	if fired != 2 {
		t.Fatalf("fired %d events by t=10, want 2 (inclusive horizon)", fired)
	}
	if now != 10 {
		t.Fatalf("Run returned %v, want 10", now)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEngineRunEmptyAdvancesToHorizon(t *testing.T) {
	e := NewEngine()
	if got := e.Run(42); got != 42 {
		t.Fatalf("Run(42) on empty queue = %v, want 42", got)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.Schedule(5, func() { fired = true })
	if !timer.Pending() {
		t.Fatal("timer should be pending before firing")
	}
	if !timer.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine()
	timer := e.Schedule(1, func() {})
	e.RunAll()
	if timer.Pending() {
		t.Fatal("fired timer still pending")
	}
	if timer.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.RunAll()
}

func TestScheduleNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.Schedule(math.NaN(), func() {})
}

func TestStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d after Stop, want 1", fired)
	}
	// Run can resume afterwards.
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired %d after resume, want 2", fired)
	}
}

// Property: for any batch of random schedule times, execution order is
// exactly the sorted order (stable for duplicates).
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []float64) bool {
		e := NewEngine()
		var want []float64
		var got []float64
		for _, raw := range times {
			at := math.Abs(raw)
			if math.IsNaN(at) || math.IsInf(at, 0) {
				continue
			}
			at = math.Mod(at, 1e6)
			want = append(want, at)
			tt := at
			e.Schedule(tt, func() { got = append(got, tt) })
		}
		e.RunAll()
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "x")
	b := NewStream(42, "x")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, name) produced different sequences")
		}
	}
	c := NewStream(42, "y")
	same := true
	a2 := NewStream(42, "x")
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different names produced identical sequences")
	}
}

func TestStreamNormalPositive(t *testing.T) {
	s := NewStream(1, "np")
	for i := 0; i < 1000; i++ {
		if v := s.NormalPositive(40, 2.5); v <= 0 {
			t.Fatalf("NormalPositive returned %v", v)
		}
	}
	// Pathological parameters fall back to the mean.
	if v := s.NormalPositive(-5, 0.001); v != -5 {
		// All draws negative: the documented fallback is the mean.
		t.Fatalf("fallback = %v, want mean -5", v)
	}
}

func TestStreamUniformBounds(t *testing.T) {
	s := NewStream(3, "u")
	for i := 0; i < 1000; i++ {
		v := s.Uniform(1.2, 2.0)
		if v < 1.2 || v >= 2.0 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestStreamExpMean(t *testing.T) {
	s := NewStream(4, "e")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(0.5) // mean 2
	}
	mean := sum / n
	if mean < 1.9 || mean > 2.1 {
		t.Fatalf("Exp(0.5) mean = %v, want ≈2", mean)
	}
}

func TestStreamLogNormalMedian(t *testing.T) {
	s := NewStream(5, "ln")
	var vals []float64
	for i := 0; i < 10001; i++ {
		vals = append(vals, s.LogNormal(7.6, 1.25))
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	want := math.Exp(7.6)
	if median < want*0.9 || median > want*1.1 {
		t.Fatalf("lognormal median = %v, want ≈%v", median, want)
	}
}

func TestStreamPerm(t *testing.T) {
	s := NewStream(6, "p")
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestStreamIntnRange(t *testing.T) {
	s := NewStream(7, "i")
	r := rand.New(rand.NewSource(1)) // independent source for bound picks
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(50)
		if v := s.Intn(n); v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

// --- fire-and-forget timers (At/After) and timer recycling ---

func TestAtAfterInterleaveWithSchedule(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.After(2, func() { got = append(got, 2) })
	e.Schedule(3, func() { got = append(got, 4) }) // same time as At(3): FIFO by seq
	e.RunAll()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run(20)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

// TestAnonTimerRecycled pins the pooling contract: a fired
// fire-and-forget timer goes back to the free list and is handed out
// again, while Schedule timers (whose handle a caller may retain) are
// never recycled.
func TestAnonTimerRecycled(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.RunAll()
	if len(e.free) != 1 {
		t.Fatalf("free list = %d timers, want 1", len(e.free))
	}
	recycled := e.free[0]
	e.After(1, func() {})
	if len(e.free) != 0 {
		t.Fatalf("free list not drained on reuse")
	}
	if e.events[0] != recycled {
		t.Error("anonymous timer was not recycled")
	}
	held := e.Schedule(3, func() {})
	e.RunAll()
	if held.Pending() {
		t.Error("fired timer still pending")
	}
	for _, f := range e.free {
		if f == held {
			t.Error("cancellable timer was recycled while its handle is live")
		}
	}
}

// TestEngineSteadyStateAllocations verifies the slab + pool economics:
// a long self-rescheduling chain of fire-and-forget timers reuses one
// timer forever.
func TestEngineSteadyStateAllocations(t *testing.T) {
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 10000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.RunAll()
	if n != 10000 {
		t.Fatalf("chain ran %d steps, want 10000", n)
	}
	// One slab allocation covers the whole chain.
	if len(e.free) != 1 {
		t.Fatalf("free list = %d, want 1 (single recycled timer)", len(e.free))
	}
}

func TestAtFrontBeatsEqualTimeTimers(t *testing.T) {
	e := NewEngine()
	var got []string
	// Normal timers queued first, front timers queued last — the front
	// ones must still fire first at the shared instant, in FIFO order.
	e.Schedule(10, func() { got = append(got, "normal-a") })
	e.At(10, func() { got = append(got, "normal-b") })
	e.AtFront(10, func() { got = append(got, "front-1") })
	e.AtFront(10, func() { got = append(got, "front-2") })
	e.RunAll()
	want := []string{"front-1", "front-2", "normal-a", "normal-b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestAtFrontDoesNotReorderAcrossTimes(t *testing.T) {
	e := NewEngine()
	var got []float64
	e.Schedule(5, func() { got = append(got, 5) })
	e.AtFront(7, func() { got = append(got, 7) })
	e.RunAll()
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("order = %v, want [5 7]", got)
	}
}

func TestRunBeforeStopsShortOfBoundary(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{10, 20, 30} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	if now := e.RunBefore(20); now != 20 {
		t.Fatalf("RunBefore(20) = %v, want clock at 20", now)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want only the t=10 event", fired)
	}
	// Scheduling at exactly the current clock is allowed; a front
	// timer queued now must still precede the already-queued t=20
	// event when the boundary is crossed later.
	e.AtFront(20, func() { fired = append(fired, -20) })
	e.RunBefore(25)
	if len(fired) != 3 || fired[1] != -20 || fired[2] != 20 {
		t.Fatalf("fired = %v, want [10 -20 20]", fired)
	}
	e.RunAll()
	if len(fired) != 4 || fired[3] != 30 {
		t.Fatalf("fired = %v, want trailing 30", fired)
	}
}

func TestRunBeforeEmptyAdvancesClock(t *testing.T) {
	e := NewEngine()
	if now := e.RunBefore(42); now != 42 {
		t.Fatalf("RunBefore on empty queue = %v, want 42", now)
	}
	// The clock never moves backwards.
	if now := e.RunBefore(41); now != 42 {
		t.Fatalf("RunBefore(41) after 42 = %v, want 42", now)
	}
}

func TestRunBeforeRespectsStop(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(10, func() { fired = append(fired, 10); e.Stop() })
	e.At(20, func() { fired = append(fired, 20) })
	if now := e.RunBefore(100); now != 10 {
		t.Fatalf("stopped RunBefore clock = %v, want 10", now)
	}
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want only t=10", fired)
	}
}
