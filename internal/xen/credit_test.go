package xen

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestAllocateUndercommitted(t *testing.T) {
	// Everyone fits: each domain gets exactly its demand.
	alloc := Allocate(400, []Demand{
		{Want: 100}, {Want: 150}, {Want: 50},
	})
	for i, want := range []float64{100, 150, 50} {
		if !almostEq(alloc[i], want) {
			t.Fatalf("alloc[%d] = %v, want %v", i, alloc[i], want)
		}
	}
}

func TestAllocateEqualWeightsOvercommitted(t *testing.T) {
	// 8 × 100% on 400%: equal weights → 50% each.
	demands := make([]Demand, 8)
	for i := range demands {
		demands[i] = Demand{Want: 100}
	}
	alloc := Allocate(400, demands)
	for i, a := range alloc {
		if !almostEq(a, 50) {
			t.Fatalf("alloc[%d] = %v, want 50", i, a)
		}
	}
}

func TestAllocateWeightedShares(t *testing.T) {
	// Weight 512 vs 256 on a saturated node: 2:1 split.
	alloc := Allocate(300, []Demand{
		{Weight: 512, Want: 400},
		{Weight: 256, Want: 400},
	})
	if !almostEq(alloc[0], 200) || !almostEq(alloc[1], 100) {
		t.Fatalf("weighted alloc = %v, want [200 100]", alloc)
	}
}

func TestAllocateCapRespected(t *testing.T) {
	alloc := Allocate(400, []Demand{
		{Want: 400, Cap: 150},
		{Want: 400},
	})
	if alloc[0] > 150+1e-9 {
		t.Fatalf("cap violated: %v", alloc[0])
	}
	// Work conserving: the rest goes to the uncapped domain.
	if !almostEq(alloc[1], 250) {
		t.Fatalf("surplus not redistributed: %v", alloc)
	}
}

func TestAllocateSurplusRedistribution(t *testing.T) {
	// A small domain leaves surplus that big domains split by weight.
	alloc := Allocate(400, []Demand{
		{Want: 40},
		{Want: 400},
		{Want: 400},
	})
	if !almostEq(alloc[0], 40) {
		t.Fatalf("small domain should be satisfied, got %v", alloc[0])
	}
	if !almostEq(alloc[1], 180) || !almostEq(alloc[2], 180) {
		t.Fatalf("surplus split = %v, want [40 180 180]", alloc)
	}
}

func TestAllocateZeroCapacity(t *testing.T) {
	alloc := Allocate(0, []Demand{{Want: 100}})
	if alloc[0] != 0 {
		t.Fatalf("zero capacity allocated %v", alloc[0])
	}
}

func TestAllocateEmpty(t *testing.T) {
	if got := Allocate(400, nil); len(got) != 0 {
		t.Fatalf("empty demands returned %v", got)
	}
}

func TestAllocateDefaultWeight(t *testing.T) {
	// Weight 0 and weight 256 (the default) behave identically.
	a := Allocate(100, []Demand{{Want: 100}, {Want: 100}})
	b := Allocate(100, []Demand{{Weight: 256, Want: 100}, {Weight: 256, Want: 100}})
	for i := range a {
		if !almostEq(a[i], b[i]) {
			t.Fatalf("default weight mismatch: %v vs %v", a, b)
		}
	}
}

func TestTotalDemand(t *testing.T) {
	got := TotalDemand([]Demand{
		{Want: 100},
		{Want: 400, Cap: 200},
		{Want: -5},
	})
	if !almostEq(got, 300) {
		t.Fatalf("TotalDemand = %v, want 300", got)
	}
}

func TestUtilization(t *testing.T) {
	got := Utilization(400, []Demand{{Want: 100}, {Want: 500, Cap: 200}})
	if !almostEq(got, 300) {
		t.Fatalf("Utilization = %v, want 300", got)
	}
}

// quick properties: for arbitrary demand sets the allocation is
// feasible, capped, work-conserving, and fair.
type quickDemands struct {
	weights []uint8
	wants   []uint16
	caps    []uint16
}

func demandsFrom(weights []uint8, wants, caps []uint16) []Demand {
	n := len(weights)
	if len(wants) < n {
		n = len(wants)
	}
	if len(caps) < n {
		n = len(caps)
	}
	out := make([]Demand, 0, n)
	for i := 0; i < n; i++ {
		d := Demand{
			Weight: float64(weights[i]),
			Want:   float64(wants[i] % 800),
		}
		if caps[i]%3 == 0 { // only some domains are capped
			d.Cap = float64(caps[i] % 500)
		}
		out = append(out, d)
	}
	return out
}

func TestAllocateFeasibleProperty(t *testing.T) {
	f := func(weights []uint8, wants, caps []uint16, capRaw uint16) bool {
		capacity := float64(capRaw % 1600)
		demands := demandsFrom(weights, wants, caps)
		alloc := Allocate(capacity, demands)
		var sum float64
		for i, a := range alloc {
			if a < -1e-9 {
				return false // no negative allocations
			}
			if a > demands[i].limit()+1e-6 {
				return false // cap/demand respected
			}
			sum += a
		}
		if sum > capacity+1e-6 {
			return false // feasible
		}
		// Work conserving: min(capacity, total limit) is handed out.
		want := math.Min(capacity, TotalDemand(demands))
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateFairnessProperty(t *testing.T) {
	// If two domains have identical weight/want/cap they receive the
	// same allocation.
	f := func(weight uint8, want, capRaw uint16, fillers []uint16) bool {
		d := Demand{Weight: float64(weight), Want: float64(want % 800)}
		demands := []Demand{d, d}
		for _, w := range fillers {
			demands = append(demands, Demand{Want: float64(w % 400)})
		}
		alloc := Allocate(float64(capRaw%1600), demands)
		return math.Abs(alloc[0]-alloc[1]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateMonotoneInWeight(t *testing.T) {
	// On a saturated node, a higher-weight domain never receives less
	// than a lower-weight one with the same demand.
	f := func(w1, w2 uint8, fillers []uint16) bool {
		if w1 == 0 || w2 == 0 {
			return true
		}
		demands := []Demand{
			{Weight: float64(w1), Want: 400},
			{Weight: float64(w2), Want: 400},
		}
		for _, w := range fillers {
			demands = append(demands, Demand{Want: float64(w%400) + 1})
		}
		alloc := Allocate(400, demands)
		if w1 >= w2 {
			return alloc[0] >= alloc[1]-1e-6
		}
		return alloc[1] >= alloc[0]-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
