// Package xen models the CPU-sharing behaviour of the Xen credit
// hyper-scheduler: each virtual machine (domain) has a weight and an
// optional cap, and the physical CPU capacity is distributed among
// runnable domains in proportion to their weights, never exceeding a
// domain's cap or demand, with unused share redistributed
// (work-conserving mode).
//
// The paper builds its simulator on measurements of this scheduler
// ("including characteristics like Virtual Machine Weights and
// Capabilities"); this package reproduces the steady-state allocation
// the credit scheduler converges to via progressive filling
// (water-filling), which is the standard fluid approximation.
package xen

// DefaultWeight is Xen's default domain weight.
const DefaultWeight = 256

// Demand describes one domain competing for CPU.
type Demand struct {
	// Weight is the credit-scheduler weight (relative share). Values
	// <= 0 are treated as DefaultWeight.
	Weight float64
	// Cap is the hard ceiling in CPU percent (0 = uncapped).
	Cap float64
	// Want is how much CPU percent the domain would consume if
	// unconstrained (its runnable demand).
	Want float64
}

// limit returns the effective ceiling for a demand.
func (d Demand) limit() float64 {
	lim := d.Want
	if lim < 0 {
		lim = 0
	}
	if d.Cap > 0 && d.Cap < lim {
		lim = d.Cap
	}
	return lim
}

// weight returns the effective weight for a demand.
func (d Demand) weight() float64 {
	if d.Weight <= 0 {
		return DefaultWeight
	}
	return d.Weight
}

const epsilon = 1e-9

// Allocate distributes capacity (CPU percent, e.g. 400 for a 4-way
// node) among the given demands. It returns one allocation per
// demand, in order. The allocation is:
//
//   - capped: alloc[i] <= min(Want[i], Cap[i]);
//   - feasible: sum(alloc) <= capacity + epsilon;
//   - work-conserving: if sum of limits >= capacity the full capacity
//     is handed out;
//   - proportionally fair: unsatisfied domains receive capacity in
//     proportion to their weights.
func Allocate(capacity float64, demands []Demand) []float64 {
	alloc := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return alloc
	}
	remaining := capacity
	// active marks domains that still want more and are not capped out.
	active := make([]bool, len(demands))
	nActive := 0
	for i, d := range demands {
		if d.limit() > epsilon {
			active[i] = true
			nActive++
		}
	}
	// Progressive filling: hand each active domain its weighted share
	// of the remaining capacity, clip at its limit, and repeat with
	// the surplus until nothing changes.
	for nActive > 0 && remaining > epsilon {
		var totalWeight float64
		for i, d := range demands {
			if active[i] {
				totalWeight += d.weight()
			}
		}
		distributed := 0.0
		saturatedThisRound := false
		for i, d := range demands {
			if !active[i] {
				continue
			}
			share := remaining * d.weight() / totalWeight
			room := d.limit() - alloc[i]
			if share >= room-epsilon {
				share = room
				active[i] = false
				nActive--
				saturatedThisRound = true
			}
			alloc[i] += share
			distributed += share
		}
		remaining -= distributed
		if !saturatedThisRound {
			// Everyone took their full proportional share: done.
			break
		}
	}
	return alloc
}

// TotalDemand returns the sum of effective limits — the CPU the
// domains would consume given infinite capacity.
func TotalDemand(demands []Demand) float64 {
	var sum float64
	for _, d := range demands {
		sum += d.limit()
	}
	return sum
}

// Utilization returns the total CPU actually consumed for the given
// capacity and demands (a convenience for power modelling).
func Utilization(capacity float64, demands []Demand) float64 {
	var sum float64
	for _, a := range Allocate(capacity, demands) {
		sum += a
	}
	return sum
}
