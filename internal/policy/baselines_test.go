package policy

import (
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/vm"
)

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	cls := cluster.PaperClasses()[1]
	cls.Count = n
	c := cluster.MustNew([]cluster.Class{cls})
	for _, node := range c.Nodes {
		node.State = cluster.On
	}
	return c
}

func queuedVM(id int, cpu, mem float64) *vm.VM {
	return vm.New(id, vm.Requirements{CPU: cpu, Mem: mem}, 0, 3600, 5400)
}

func hostVM(c *cluster.Cluster, id, node int, cpu, mem float64) *vm.VM {
	v := queuedVM(id, cpu, mem)
	v.State = vm.Running
	v.Host = node
	c.Nodes[node].AddVM(v)
	return v
}

func ctx(c *cluster.Cluster, queue, active []*vm.VM) *Context {
	return &Context{Now: 0, Cluster: c, Queue: queue, Active: active, LambdaMin: 0.3, LambdaMax: 0.9}
}

func places(actions []Action) []Place {
	var out []Place
	for _, a := range actions {
		if p, ok := a.(Place); ok {
			out = append(out, p)
		}
	}
	return out
}

func migrations(actions []Action) []Migrate {
	var out []Migrate
	for _, a := range actions {
		if m, ok := a.(Migrate); ok {
			out = append(out, m)
		}
	}
	return out
}

// --- Random ---

func TestRandomPlacesEveryVM(t *testing.T) {
	c := testCluster(t, 4)
	queue := []*vm.VM{queuedVM(0, 100, 5), queuedVM(1, 400, 20), queuedVM(2, 100, 5)}
	p := NewRandom(1)
	got := places(p.Schedule(ctx(c, queue, nil)))
	if len(got) != 3 {
		t.Fatalf("placed %d, want all 3 (random never queues)", len(got))
	}
}

func TestRandomIgnoresOccupation(t *testing.T) {
	c := testCluster(t, 1)
	hostVM(c, 10, 0, 400, 50) // node full
	p := NewRandom(1)
	got := places(p.Schedule(ctx(c, []*vm.VM{queuedVM(0, 400, 50)}, nil)))
	if len(got) != 1 || got[0].Node != 0 {
		t.Fatalf("random should overcommit the only node: %+v", got)
	}
}

func TestRandomRespectsHardware(t *testing.T) {
	c := testCluster(t, 2)
	v := queuedVM(0, 100, 5)
	v.Req.Arch = "sparc"
	if got := places(NewRandom(1).Schedule(ctx(c, []*vm.VM{v}, nil))); len(got) != 0 {
		t.Fatalf("random placed on incompatible hardware: %+v", got)
	}
}

func TestRandomSkipsOfflineNodes(t *testing.T) {
	c := testCluster(t, 3)
	c.Nodes[0].State = cluster.Off
	c.Nodes[1].State = cluster.Booting
	p := NewRandom(1)
	for i := 0; i < 20; i++ {
		got := places(p.Schedule(ctx(c, []*vm.VM{queuedVM(i, 100, 5)}, nil)))
		if len(got) != 1 || got[0].Node != 2 {
			t.Fatalf("random used a non-operational node: %+v", got)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int {
		c := testCluster(t, 8)
		p := NewRandom(seed)
		var nodes []int
		for i := 0; i < 10; i++ {
			got := places(p.Schedule(ctx(c, []*vm.VM{queuedVM(i, 100, 5)}, nil)))
			nodes = append(nodes, got[0].Node)
		}
		return nodes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

// --- Round Robin ---

func TestRoundRobinOneVMPerNode(t *testing.T) {
	c := testCluster(t, 3)
	queue := []*vm.VM{queuedVM(0, 100, 5), queuedVM(1, 100, 5), queuedVM(2, 100, 5)}
	got := places(NewRoundRobin().Schedule(ctx(c, queue, nil)))
	if len(got) != 3 {
		t.Fatalf("placed %d, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, p := range got {
		if seen[p.Node] {
			t.Fatalf("round robin doubled up on node %d", p.Node)
		}
		seen[p.Node] = true
	}
}

func TestRoundRobinQueuesWhenNoEmptyNode(t *testing.T) {
	c := testCluster(t, 2)
	hostVM(c, 10, 0, 100, 5)
	hostVM(c, 11, 1, 100, 5)
	got := places(NewRoundRobin().Schedule(ctx(c, []*vm.VM{queuedVM(0, 100, 5)}, nil)))
	if len(got) != 0 {
		t.Fatalf("RR placed on a busy node: %+v", got)
	}
}

func TestRoundRobinCyclesNodes(t *testing.T) {
	c := testCluster(t, 4)
	rr := NewRoundRobin()
	first := places(rr.Schedule(ctx(c, []*vm.VM{queuedVM(0, 100, 5)}, nil)))
	// Simulate the placement taking effect, then ask again.
	hostVM(c, 0, first[0].Node, 100, 5)
	second := places(rr.Schedule(ctx(c, []*vm.VM{queuedVM(1, 100, 5)}, nil)))
	if second[0].Node == first[0].Node {
		t.Fatalf("RR reused node %d immediately", first[0].Node)
	}
}

// --- Backfilling ---

func TestBackfillingPrefersFullestNode(t *testing.T) {
	c := testCluster(t, 3)
	hostVM(c, 10, 1, 200, 10) // node 1 at 50 %
	hostVM(c, 11, 2, 100, 5)  // node 2 at 25 %
	got := places(NewBackfilling().Schedule(ctx(c, []*vm.VM{queuedVM(0, 100, 5)}, nil)))
	if len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("BF chose %+v, want the fullest fitting node 1", got)
	}
}

func TestBackfillingRespectsCapacity(t *testing.T) {
	c := testCluster(t, 2)
	hostVM(c, 10, 0, 400, 20) // full
	hostVM(c, 11, 1, 300, 15) // 75 %
	got := places(NewBackfilling().Schedule(ctx(c, []*vm.VM{queuedVM(0, 200, 10)}, nil)))
	if len(got) != 0 {
		t.Fatalf("BF overcommitted: %+v", got)
	}
}

func TestBackfillingSeesOwnPlacements(t *testing.T) {
	// Two 300 % VMs cannot share one node: the second must go
	// elsewhere even though the round started with both nodes empty.
	c := testCluster(t, 2)
	queue := []*vm.VM{queuedVM(0, 300, 15), queuedVM(1, 300, 15)}
	got := places(NewBackfilling().Schedule(ctx(c, queue, nil)))
	if len(got) != 2 {
		t.Fatalf("placed %d, want 2", len(got))
	}
	if got[0].Node == got[1].Node {
		t.Fatal("BF stacked two 300% VMs on one node within a round")
	}
}

func TestBackfillingQueuesWhenFull(t *testing.T) {
	c := testCluster(t, 1)
	hostVM(c, 10, 0, 400, 20)
	got := places(NewBackfilling().Schedule(ctx(c, []*vm.VM{queuedVM(0, 100, 5)}, nil)))
	if len(got) != 0 {
		t.Fatalf("BF placed on a full cluster: %+v", got)
	}
}

// --- Dynamic Backfilling ---

func TestDBFDrainsLeastOccupiedNode(t *testing.T) {
	c := testCluster(t, 3)
	hostVM(c, 10, 0, 100, 5)  // 25 % — the drain candidate
	hostVM(c, 11, 1, 200, 10) // 50 %
	hostVM(c, 12, 2, 300, 15) // 75 %
	dbf := NewDynamicBackfilling()
	migs := migrations(dbf.Schedule(ctx(c, nil, nil)))
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v, want exactly one (drain node 0)", migs)
	}
	if migs[0].VM.ID != 10 {
		t.Fatalf("drained vm%d, want vm10", migs[0].VM.ID)
	}
	if migs[0].To != 2 {
		t.Fatalf("moved to node %d, want the fullest fitting node 2", migs[0].To)
	}
}

func TestDBFDrainIsAllOrNothing(t *testing.T) {
	c := testCluster(t, 2)
	// Node 0 holds two VMs; only one can fit on node 1: no drain.
	hostVM(c, 10, 0, 100, 5)
	hostVM(c, 11, 0, 100, 5)
	hostVM(c, 12, 1, 300, 15)
	migs := migrations(NewDynamicBackfilling().Schedule(ctx(c, nil, nil)))
	if len(migs) != 0 {
		t.Fatalf("partial drain planned: %+v", migs)
	}
}

func TestDBFDrainRateLimit(t *testing.T) {
	c := testCluster(t, 3)
	hostVM(c, 10, 0, 100, 5)
	hostVM(c, 11, 1, 200, 10)
	hostVM(c, 12, 2, 300, 15)
	dbf := NewDynamicBackfilling()
	cc := ctx(c, nil, nil)
	if migs := migrations(dbf.Schedule(cc)); len(migs) != 1 {
		t.Fatal("first drain denied")
	}
	// Within the drain interval: no further consolidation.
	cc.Now = 100
	if migs := migrations(dbf.Schedule(cc)); len(migs) != 0 {
		t.Fatal("drain rate limit ignored")
	}
	// After the interval it may drain again.
	cc.Now = 4000
	if migs := migrations(dbf.Schedule(cc)); len(migs) != 1 {
		t.Fatal("drain denied after interval")
	}
}

func TestDBFSkipsVMsInOperation(t *testing.T) {
	c := testCluster(t, 2)
	v := hostVM(c, 10, 0, 100, 5)
	v.State = vm.Migrating
	hostVM(c, 11, 1, 300, 15)
	migs := migrations(NewDynamicBackfilling().Schedule(ctx(c, nil, nil)))
	for _, m := range migs {
		if m.VM.ID == 10 {
			t.Fatalf("DBF planned to move an in-operation VM: %+v", migs)
		}
	}
}

func TestDBFStillBackfills(t *testing.T) {
	c := testCluster(t, 2)
	hostVM(c, 10, 0, 200, 10)
	got := places(NewDynamicBackfilling().Schedule(ctx(c, []*vm.VM{queuedVM(0, 100, 5)}, nil)))
	if len(got) != 1 || got[0].Node != 0 {
		t.Fatalf("DBF placement = %+v, want best-fit on node 0", got)
	}
}

func TestPolicyNamesAndMigratory(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
		mig  bool
	}{
		{NewRandom(1), "RD", false},
		{NewRoundRobin(), "RR", false},
		{NewBackfilling(), "BF", false},
		{NewDynamicBackfilling(), "DBF", true},
	}
	for _, c := range cases {
		if c.p.Name() != c.name || c.p.Migratory() != c.mig {
			t.Errorf("%s: name/migratory = %s/%v", c.name, c.p.Name(), c.p.Migratory())
		}
	}
}
