package policy

import (
	"sort"

	"energysched/internal/cluster"
	"energysched/internal/simkit"
	"energysched/internal/vm"
)

// Random assigns each queued VM to a random online node that meets
// its hardware requirements, with no occupation check at all — CPU
// and memory are overcommitted freely, so co-located jobs contend and
// stretch, and hot nodes snowball (stretched VMs linger, attracting
// yet more arrivals). This is the paper's RD baseline, which "assigns
// the tasks randomly" and gives the worst results on both criteria.
type Random struct {
	rng *simkit.Stream
}

// NewRandom builds the RD policy with a deterministic stream.
func NewRandom(seed int64) *Random {
	return &Random{rng: simkit.NewStream(seed, "policy-random")}
}

// Name implements Policy.
func (p *Random) Name() string { return "RD" }

// Migratory implements Policy.
func (p *Random) Migratory() bool { return false }

// Schedule implements Policy.
func (p *Random) Schedule(ctx *Context) []Action {
	var out []Action
	for _, v := range ctx.Queue {
		// Candidates: online and hw/sw-compatible. Occupation is
		// deliberately ignored.
		var candidates []*cluster.Node
		for _, n := range ctx.Cluster.Nodes {
			if satisfiesOnline(n, v) {
				candidates = append(candidates, n)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		n := candidates[p.rng.Intn(len(candidates))]
		out = append(out, Place{VM: v, Node: n.ID})
		// Note: no occupation bookkeeping — the next queued VM may
		// land on the same node. That is the point of the baseline.
	}
	return out
}

// RoundRobin assigns each task to the next available (empty) node,
// maximizing the resources each task receives at the cost of a sparse
// usage of the datacenter (the paper's RR baseline). VMs wait in the
// queue when no empty node is online.
type RoundRobin struct {
	next int
}

// NewRoundRobin builds the RR policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "RR" }

// Migratory implements Policy.
func (p *RoundRobin) Migratory() bool { return false }

// Schedule implements Policy.
func (p *RoundRobin) Schedule(ctx *Context) []Action {
	var out []Action
	n := ctx.Cluster.Size()
	taken := make(map[int]bool)
	for _, v := range ctx.Queue {
		placed := false
		for i := 0; i < n; i++ {
			idx := (p.next + i) % n
			node := ctx.Cluster.Nodes[idx]
			if taken[idx] || !fitsOnline(node, v) {
				continue
			}
			// "A task to each available node": only empty nodes count
			// as available to RR.
			if len(node.VMs) > 0 || node.CreatingOps > 0 || node.MigratingOps > 0 {
				continue
			}
			out = append(out, Place{VM: v, Node: idx})
			taken[idx] = true
			p.next = (idx + 1) % n
			placed = true
			break
		}
		if !placed {
			continue
		}
	}
	return out
}

// Backfilling packs each queued VM into the most occupied online node
// that can still hold it within 100 % occupation — a best-fit
// consolidation policy without migration (the paper's BF baseline).
type Backfilling struct{}

// NewBackfilling builds the BF policy.
func NewBackfilling() *Backfilling { return &Backfilling{} }

// Name implements Policy.
func (p *Backfilling) Name() string { return "BF" }

// Migratory implements Policy.
func (p *Backfilling) Migratory() bool { return false }

// Schedule implements Policy.
func (p *Backfilling) Schedule(ctx *Context) []Action {
	var out []Action
	// Track occupation deltas from placements made this round so
	// successive queued VMs see each other.
	extraCPU := make(map[int]float64)
	extraMem := make(map[int]float64)
	for _, v := range ctx.Queue {
		best := -1
		bestOcc := -1.0
		for _, n := range ctx.Cluster.Nodes {
			if !satisfiesOnline(n, v) {
				continue
			}
			occAfter := occupationWith(n, extraCPU[n.ID]+v.Req.CPU, extraMem[n.ID]+v.Req.Mem)
			if occAfter > 1.0+1e-9 {
				continue
			}
			occNow := occupationWith(n, extraCPU[n.ID], extraMem[n.ID])
			if occNow > bestOcc {
				bestOcc = occNow
				best = n.ID
			}
		}
		if best < 0 {
			continue
		}
		out = append(out, Place{VM: v, Node: best})
		extraCPU[best] += v.Req.CPU
		extraMem[best] += v.Req.Mem
	}
	return out
}

// DynamicBackfilling is Backfilling plus consolidation migrations:
// periodically it sweeps the fleet and empties the least-occupied
// working node by migrating its VMs into more occupied nodes that can
// absorb them, so the power manager can turn the drained node off
// (the paper's DBF baseline). Unlike the score-based policy it does
// not price the migration overhead — it migrates whenever a drain is
// structurally possible, which is why it migrates more and gains less.
type DynamicBackfilling struct {
	bf Backfilling
	// DrainInterval is the consolidation sweep period in seconds
	// (<= 0 selects the default, one hour).
	DrainInterval float64
	lastDrain     float64
	started       bool
}

// NewDynamicBackfilling builds the DBF policy.
func NewDynamicBackfilling() *DynamicBackfilling { return &DynamicBackfilling{} }

// Name implements Policy.
func (p *DynamicBackfilling) Name() string { return "DBF" }

// Migratory implements Policy.
func (p *DynamicBackfilling) Migratory() bool { return true }

// Schedule implements Policy.
func (p *DynamicBackfilling) Schedule(ctx *Context) []Action {
	out := p.bf.Schedule(ctx)
	// Consolidation sweep, rate-limited: drain at most one node per
	// interval. Unthrottled draining would chase every completion
	// (each one leaves some node least-occupied) and churn VMs
	// permanently.
	interval := p.DrainInterval
	if interval <= 0 {
		interval = 3600
	}
	if p.started && ctx.Now-p.lastDrain < interval {
		return out
	}
	// Visit working nodes from least to most occupied; drain the
	// first one whose VMs all fit into fuller nodes.
	var working []nodeOcc
	for _, n := range ctx.Cluster.Nodes {
		if n.State == cluster.On && len(n.VMs) > 0 {
			working = append(working, nodeOcc{n, n.Occupation()})
		}
	}
	sort.Slice(working, func(i, j int) bool { return working[i].occ < working[j].occ })
	extraCPU := make(map[int]float64)
	extraMem := make(map[int]float64)
	for _, a := range out {
		if pl, ok := a.(Place); ok {
			extraCPU[pl.Node] += pl.VM.Req.CPU
			extraMem[pl.Node] += pl.VM.Req.Mem
		}
	}
	for _, src := range working {
		// Only drain a node if every VM on it can move elsewhere —
		// otherwise the node stays working and nothing is saved.
		moves := p.drain(ctx, src.n, working, extraCPU, extraMem)
		if moves == nil {
			continue
		}
		for _, m := range moves {
			out = append(out, m)
		}
		p.lastDrain = ctx.Now
		p.started = true
		break
	}
	return out
}

// nodeOcc pairs a node with its occupation snapshot for the
// consolidation pass.
type nodeOcc struct {
	n   *cluster.Node
	occ float64
}

// drain plans migrations emptying src, or nil if src cannot be fully
// drained into strictly more occupied nodes.
func (p *DynamicBackfilling) drain(ctx *Context, src *cluster.Node, working []nodeOcc, extraCPU, extraMem map[int]float64) []Migrate {
	// Copy the deltas so a failed plan leaves no residue.
	dCPU := make(map[int]float64, len(extraCPU))
	dMem := make(map[int]float64, len(extraMem))
	for k, v := range extraCPU {
		dCPU[k] = v
	}
	for k, v := range extraMem {
		dMem[k] = v
	}
	var moves []Migrate
	vms := sortedVMs(src)
	for _, v := range vms {
		if v.InOperation() || v.State != vm.Running {
			return nil
		}
		placed := false
		// Prefer the fullest destination (best-fit), consistent with
		// the backfilling spirit.
		for i := len(working) - 1; i >= 0; i-- {
			dst := working[i].n
			if dst.ID == src.ID || !satisfiesOnline(dst, v) {
				continue
			}
			if occupationWith(dst, dCPU[dst.ID]+v.Req.CPU, dMem[dst.ID]+v.Req.Mem) > 1.0+1e-9 {
				continue
			}
			moves = append(moves, Migrate{VM: v, To: dst.ID})
			dCPU[dst.ID] += v.Req.CPU
			dMem[dst.ID] += v.Req.Mem
			placed = true
			break
		}
		if !placed {
			return nil
		}
	}
	return moves
}

// sortedVMs returns a node's VMs in deterministic (ID) order.
func sortedVMs(n *cluster.Node) []*vm.VM {
	out := make([]*vm.VM, 0, len(n.VMs))
	for _, v := range n.VMs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// occupationWith mirrors cluster.Node.OccupationWith but with round-
// local deltas folded in.
func occupationWith(n *cluster.Node, extraCPU, extraMem float64) float64 {
	cpu := (n.CPUReserved() + extraCPU) / n.Class.CPU
	mem := 0.0
	if n.Class.Mem > 0 {
		mem = (n.MemReserved() + extraMem) / n.Class.Mem
	}
	if mem > cpu {
		return mem
	}
	return cpu
}
