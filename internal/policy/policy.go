// Package policy defines the scheduling-policy contract the
// datacenter harness drives, plus the baseline policies the paper
// compares against: Random (RD), Round-Robin (RR), Backfilling (BF)
// and Dynamic Backfilling (DBF, backfilling with consolidation
// migrations). The paper's score-based policy lives in internal/core
// and implements the same interface.
package policy

import (
	"energysched/internal/cluster"
	"energysched/internal/vm"
)

// Context is the scheduler's read view of the system at a scheduling
// round.
type Context struct {
	// Now is the current virtual time.
	Now float64
	// Cluster is the set of physical nodes with their current state.
	Cluster *cluster.Cluster
	// Queue holds the VMs waiting in the virtual host for placement
	// (new arrivals and VMs recovered from failed nodes), in FIFO
	// order.
	Queue []*vm.VM
	// Active holds the VMs currently occupying nodes (creating,
	// running or migrating).
	Active []*vm.VM
	// LambdaMin, LambdaMax are the power manager's working-ratio
	// thresholds as fractions; consolidation-migrating policies use
	// them to decide when draining nodes is worthwhile (a drained
	// node is only a win if it can be turned off).
	LambdaMin, LambdaMax float64
}

// Action is a scheduling decision returned to the harness.
type Action interface{ isAction() }

// Place creates a queued VM on a node.
type Place struct {
	VM   *vm.VM
	Node int
}

// Migrate live-migrates a running VM to another node.
type Migrate struct {
	VM *vm.VM
	To int
}

func (Place) isAction()   {}
func (Migrate) isAction() {}

// Policy decides placements (and, if migratory, migrations) at each
// scheduling round. Implementations must be deterministic given the
// context and their own seeded state.
type Policy interface {
	// Name returns the label used in reports (RD, RR, BF, DBF, SB...).
	Name() string
	// Schedule inspects the context and returns actions. Returning no
	// actions leaves queued VMs in the queue.
	Schedule(ctx *Context) []Action
	// Migratory reports whether the policy ever migrates VMs (the
	// paper's static/dynamic split).
	Migratory() bool
}

// fitsOnline reports whether node n can accept v right now.
func fitsOnline(n *cluster.Node, v *vm.VM) bool {
	return n.State == cluster.On && n.Fits(v.Req)
}

// satisfiesOnline reports whether node n meets v's hardware/software
// requirements and is operational, ignoring current occupation.
func satisfiesOnline(n *cluster.Node, v *vm.VM) bool {
	return n.State == cluster.On && n.Satisfies(v.Req)
}
