package testbed

import (
	"math"
	"testing"
)

func quietMachine() Machine {
	m := PaperMachine()
	m.NoiseStddev = 0
	m.BackgroundWatts = 0
	m.BackgroundBaseWatts = 0
	return m
}

func TestSteadyWattsMatchesTableI(t *testing.T) {
	m := quietMachine()
	cases := []struct {
		cpus []float64
		want float64
	}{
		{[]float64{0}, 230},
		{[]float64{100}, 259},
		{[]float64{200}, 273},
		{[]float64{100, 100}, 273}, // VM count does not matter
		{[]float64{100, 200}, 291},
		{[]float64{100, 100, 100, 100}, 304},
		{[]float64{400}, 304},
	}
	for _, c := range cases {
		got := m.SteadyWatts(c.cpus, 60, 1)
		if math.Abs(got-c.want) > 0.5 {
			t.Errorf("SteadyWatts(%v) = %.1f, want %.0f", c.cpus, got, c.want)
		}
	}
}

func TestRunIdleFloor(t *testing.T) {
	m := quietMachine()
	samples := m.Run(nil, 10, 1)
	if len(samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(samples))
	}
	for _, s := range samples {
		if s.Watts != 230 {
			t.Fatalf("idle sample = %v, want 230", s.Watts)
		}
	}
}

func TestRunCreationSpike(t *testing.T) {
	m := quietMachine()
	task := Task{Name: "t", Start: 5, Duration: 30, CPU: 100}
	samples := m.Run([]Task{task}, 120, 1)
	// Before the task: idle.
	if samples[2].Watts != 230 {
		t.Errorf("pre-task watts = %v", samples[2].Watts)
	}
	// During creation (~40 s from t=5): dom0 burns CreationCPU.
	want := m.Power.Power(m.CreationCPU)
	if math.Abs(samples[20].Watts-want) > 1 {
		t.Errorf("creation watts = %v, want ≈%v", samples[20].Watts, want)
	}
	// During execution (after ~45 s): task draw.
	if math.Abs(samples[60].Watts-259) > 1 {
		t.Errorf("execution watts = %v, want ≈259", samples[60].Watts)
	}
	// After completion (~75 s): idle again.
	if samples[110].Watts != 230 {
		t.Errorf("post-task watts = %v, want 230", samples[110].Watts)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := PaperMachine()
	a := m.Run(PaperValidationTasks(), 100, 7)
	b := m.Run(PaperValidationTasks(), 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestBackgroundRaisesConsumption(t *testing.T) {
	quiet := quietMachine()
	noisy := quietMachine()
	noisy.BackgroundBaseWatts = 5
	noisy.BackgroundWatts = 10
	a := TotalWh(quiet.Run(nil, 600, 1))
	b := TotalWh(noisy.Run(nil, 600, 1))
	if b <= a {
		t.Errorf("background draw did not raise energy: %v vs %v", b, a)
	}
}

func TestTotalWh(t *testing.T) {
	samples := []Sample{{0, 3600}, {1, 3600}}
	if got := TotalWh(samples); got != 2 {
		t.Errorf("TotalWh = %v, want 2", got)
	}
}

func TestResampleAt(t *testing.T) {
	times := []float64{0, 10, 20}
	watts := []float64{100, 200, 300}
	cases := []struct{ t, want float64 }{
		{-5, 100}, {0, 100}, {5, 100}, {10, 200}, {15, 200}, {20, 300}, {99, 300},
	}
	for _, c := range cases {
		if got := ResampleAt(times, watts, c.t); got != c.want {
			t.Errorf("ResampleAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := ResampleAt(nil, nil, 5); got != 0 {
		t.Errorf("empty resample = %v", got)
	}
}

func TestPaperValidationTasksShape(t *testing.T) {
	tasks := PaperValidationTasks()
	if len(tasks) != 7 {
		t.Fatalf("validation workload has %d tasks, want 7 (paper)", len(tasks))
	}
	for _, task := range tasks {
		if task.Start < 0 || task.Start+task.Duration > ValidationHorizon {
			t.Errorf("task %s outside the 1300 s horizon", task.Name)
		}
		if task.CPU <= 0 || task.CPU > 400 {
			t.Errorf("task %s CPU %v out of range", task.Name, task.CPU)
		}
	}
}
