// Package testbed models the paper's physical measurement platform: a
// 4-way Xen server instrumented with a digital power meter (0.1 W
// resolution, 1 s latency). The authors validate their coarse
// event-driven simulator against real executions on this machine
// (Fig. 1) and calibrate its power model from it (Table I).
//
// Since the physical machine is not available, this package provides
// a high-resolution *reference model* that stands in for it: a
// time-stepped (1 Hz) simulation with measurement noise, background
// OS activity, and per-second CPU accounting. The validation
// experiment then compares the coarse event-driven simulator against
// this reference — exercising exactly the code paths the paper's
// validation exercises (creation spikes, CPU ramps, idle floors,
// consolidated VM mixes).
package testbed

import (
	"fmt"
	"sort"

	"energysched/internal/power"
	"energysched/internal/simkit"
	"energysched/internal/xen"
)

// Machine describes the reference host: the paper's 4-way Xen server.
type Machine struct {
	// CPU capacity in percent (400 = 4 cores).
	CPU float64
	// Power is the calibrated power curve.
	Power power.Model
	// NoiseStddev is the 1 Hz measurement noise in watts.
	NoiseStddev float64
	// BackgroundWatts is extra draw from dom0 housekeeping (cron,
	// monitoring, disk flushes) that fires in short bursts — real
	// machines consume slightly more than a pure CPU model predicts,
	// which is why the paper's simulator underestimates by ~2.4 %.
	BackgroundWatts float64
	// BackgroundBaseWatts is a constant unmodeled draw (disk spindles
	// ramping with activity, fan-speed steps) present in the real
	// machine but absent from the CPU-only simulator model.
	BackgroundBaseWatts float64
	// BackgroundPeriod is the seconds between background bursts.
	BackgroundPeriod float64
	// BackgroundDuration is how long each burst lasts.
	BackgroundDuration float64
	// CreationMean/CreationSigma parameterize VM creation time
	// (N(40, 2.5) on the paper's testbed).
	CreationMean, CreationSigma float64
	// CreationCPU is the dom0 CPU consumed while creating a VM.
	CreationCPU float64
}

// PaperMachine returns the reference host with the paper's measured
// characteristics.
func PaperMachine() Machine {
	return Machine{
		CPU:                 400,
		Power:               power.PaperTableI(),
		NoiseStddev:         3.0,
		BackgroundWatts:     9,
		BackgroundBaseWatts: 6.8,
		BackgroundPeriod:    47,
		BackgroundDuration:  6,
		CreationMean:        40,
		CreationSigma:       2.5,
		CreationCPU:         200,
	}
}

// Task is one step of a testbed workload: a VM created at Start that
// then consumes CPU percent of CPU for Duration seconds.
type Task struct {
	// Name labels the task in reports.
	Name string
	// Start is seconds from experiment begin (creation starts here).
	Start float64
	// Duration is the busy time after creation completes.
	Duration float64
	// CPU is the task's CPU consumption in percent (100 = 1 core).
	CPU float64
}

// Sample is one 1 Hz meter reading.
type Sample struct {
	Time  float64
	Watts float64
}

// Run executes a workload on the reference machine and returns the
// 1 Hz power trace, exactly as the paper's meter would record it.
// The run lasts `horizon` seconds.
func (m Machine) Run(tasks []Task, horizon float64, seed int64) []Sample {
	noise := simkit.NewStream(seed, "testbed-noise")
	creation := simkit.NewStream(seed, "testbed-creation")

	// Materialize per-task creation windows.
	type phase struct{ createEnd, runEnd float64 }
	phases := make([]phase, len(tasks))
	for i, t := range tasks {
		d := creation.NormalPositive(m.CreationMean, m.CreationSigma)
		phases[i] = phase{createEnd: t.Start + d, runEnd: t.Start + d + t.Duration}
	}

	var out []Sample
	for ts := 0.0; ts < horizon; ts++ {
		// Aggregate demand this second: running VMs + creations.
		var demands []xen.Demand
		for i, t := range tasks {
			switch {
			case ts >= t.Start && ts < phases[i].createEnd:
				demands = append(demands, xen.Demand{Weight: 512, Want: m.CreationCPU, Cap: m.CreationCPU})
			case ts >= phases[i].createEnd && ts < phases[i].runEnd:
				demands = append(demands, xen.Demand{Want: t.CPU, Cap: t.CPU})
			}
		}
		util := xen.Utilization(m.CPU, demands)
		watts := m.Power.Power(util)
		// Background dom0 housekeeping burst.
		if m.BackgroundPeriod > 0 {
			tt := ts
			for tt >= m.BackgroundPeriod {
				tt -= m.BackgroundPeriod
			}
			if tt < m.BackgroundDuration {
				watts += m.BackgroundWatts
			}
		}
		watts += m.BackgroundBaseWatts
		watts += noise.Normal(0, m.NoiseStddev)
		if watts < 0 {
			watts = 0
		}
		out = append(out, Sample{Time: ts, Watts: watts})
	}
	return out
}

// SteadyWatts measures the mean draw of a steady VM configuration
// (Table I): each entry of vmCPUs is the sustained CPU consumption of
// one VM. The measurement averages `window` seconds of samples.
func (m Machine) SteadyWatts(vmCPUs []float64, window float64, seed int64) float64 {
	var tasks []Task
	for i, c := range vmCPUs {
		tasks = append(tasks, Task{
			Name:     fmt.Sprintf("vm%d", i),
			Start:    -3600, // created long ago: steady state
			Duration: 3600 + window + 10,
			CPU:      c,
		})
	}
	samples := m.Run(tasks, window, seed)
	var sum float64
	for _, s := range samples {
		sum += s.Watts
	}
	if len(samples) == 0 {
		return 0
	}
	return sum / float64(len(samples))
}

// TotalWh integrates a 1 Hz sample trace into watt-hours.
func TotalWh(samples []Sample) float64 {
	var joules float64
	for _, s := range samples {
		joules += s.Watts // 1 s per sample
	}
	return joules / 3600
}

// ResampleAt returns the piecewise-constant value of a (time, watts)
// step series at time t. The series must be sorted by time.
func ResampleAt(times, watts []float64, t float64) float64 {
	if len(times) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(times, t)
	// SearchFloat64s returns the first index with times[i] >= t; the
	// level in effect at t is the previous step.
	if i < len(times) && times[i] == t {
		return watts[i]
	}
	if i == 0 {
		return watts[0]
	}
	return watts[i-1]
}

// PaperValidationTasks returns the seven-task, ~1300 s workload the
// paper uses for Fig. 1: it explores "the most typical situations we
// can have in a real cloud execution" — single VM ramps, concurrent
// creations, full-machine consolidation, and idle valleys.
func PaperValidationTasks() []Task {
	return []Task{
		{Name: "warmup-1core", Start: 30, Duration: 170, CPU: 100},
		{Name: "ramp-2core", Start: 160, Duration: 240, CPU: 200},
		{Name: "short-burst", Start: 420, Duration: 80, CPU: 100},
		{Name: "consolidated-a", Start: 560, Duration: 300, CPU: 100},
		{Name: "consolidated-b", Start: 590, Duration: 280, CPU: 200},
		{Name: "late-single", Start: 980, Duration: 160, CPU: 100},
		{Name: "tail-2core", Start: 1050, Duration: 180, CPU: 200},
	}
}

// ValidationHorizon is the length of the Fig. 1 experiment in seconds.
const ValidationHorizon = 1300.0
