package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"energysched"
)

// Manager is the process-wide fleet registry: it creates, looks up,
// lists and deletes fleets, and — when a durable root directory is
// configured — persists a manifest of fleet configurations so a
// restarted daemon recreates and recovers every fleet.
//
// Layout under the durable root (Options.Dir):
//
//	fleets.json        manifest: ids + configurations
//	<fleet-id>/
//	    wal.log        admission WAL (length-prefixed, CRC-checked)
//	    snapshot.json  last compaction snapshot
type Manager struct {
	dir  string
	max  int
	logf func(format string, args ...interface{})

	mu      sync.RWMutex
	fleets  map[string]*Fleet
	pending map[string]struct{} // ids being created (Open runs unlocked)
	closed  bool
}

// Options parameterizes the registry.
type Options struct {
	// Dir is the durable root; empty runs every fleet in-memory only.
	Dir string
	// MaxFleets caps the number of registered fleets (0 = unlimited).
	// Create returns 429 at the cap — every fleet is a full simulation
	// with its own event loop, so an unbounded registry lets any
	// network peer exhaust the process. Fleets recovered from the
	// manifest are never refused (they were admitted under an earlier
	// cap and hold durable state), but no new fleet is admitted while
	// the registry is at or above the cap.
	MaxFleets int
	// Logf receives manager and fleet log lines.
	Logf func(format string, args ...interface{})
}

// manifestFormat identifies the fleet-manifest layout.
const manifestFormat = "energyschedd-fleets/v1"

// manifestName is the registry manifest inside the durable root.
const manifestName = "fleets.json"

type manifestFile struct {
	Format string          `json:"format"`
	Fleets []manifestEntry `json:"fleets"`
}

type manifestEntry struct {
	ID     string         `json:"id"`
	Config manifestConfig `json:"config"`
}

// manifestConfig is the durable form of a fleet Config: the snapshot
// config plus the service-level knobs a snapshot does not carry.
type manifestConfig struct {
	snapshotConfig
	Pace             float64 `json:"pace,omitempty"`
	SnapshotDir      string  `json:"snapshot_dir,omitempty"`
	EventRing        int     `json:"event_ring,omitempty"`
	SnapshotInterval int     `json:"snapshot_interval,omitempty"`
	WALSync          string  `json:"wal_sync,omitempty"`
	TraceVerbosity   string  `json:"trace_verbosity,omitempty"`
	TraceDepth       int     `json:"trace_depth,omitempty"`
	AdmitShards      int     `json:"admit_shards,omitempty"`
	AdmitQueue       int     `json:"admit_queue,omitempty"`
	RateLimit        float64 `json:"rate_limit,omitempty"`
	RateBurst        int     `json:"rate_burst,omitempty"`
}

func toManifestConfig(c Config) manifestConfig {
	mc := manifestConfig{
		snapshotConfig: snapshotConfig{
			Policy:            c.Policy,
			Seed:              c.Seed,
			LambdaMin:         c.LambdaMin,
			LambdaMax:         c.LambdaMax,
			Failures:          c.Failures,
			CheckpointSeconds: c.CheckpointSeconds,
			AdaptiveTarget:    c.AdaptiveTarget,
			Shards:            c.Shards,
			Classes:           c.Classes,
		},
		Pace:             c.Pace,
		SnapshotDir:      c.SnapshotDir,
		EventRing:        c.EventRing,
		SnapshotInterval: c.SnapshotInterval,
		WALSync:          c.WALSync,
		TraceVerbosity:   c.TraceVerbosity,
		TraceDepth:       c.TraceDepth,
		AdmitShards:      c.AdmitShards,
		AdmitQueue:       c.AdmitQueue,
		RateLimit:        c.RateLimit,
		RateBurst:        c.RateBurst,
	}
	if c.Score != nil {
		mc.HasScore = true
		mc.Cempty = c.Score.Cempty
		mc.Cfill = c.Score.Cfill
		mc.THempty = c.Score.THempty
	}
	return mc
}

func (mc manifestConfig) config() Config {
	c := Config{
		Policy:            mc.Policy,
		Seed:              mc.Seed,
		LambdaMin:         mc.LambdaMin,
		LambdaMax:         mc.LambdaMax,
		Failures:          mc.Failures,
		CheckpointSeconds: mc.CheckpointSeconds,
		AdaptiveTarget:    mc.AdaptiveTarget,
		Shards:            mc.Shards,
		Classes:           mc.Classes,
		Pace:              mc.Pace,
		SnapshotDir:       mc.SnapshotDir,
		EventRing:         mc.EventRing,
		SnapshotInterval:  mc.SnapshotInterval,
		WALSync:           mc.WALSync,
		TraceVerbosity:    mc.TraceVerbosity,
		TraceDepth:        mc.TraceDepth,
		AdmitShards:       mc.AdmitShards,
		AdmitQueue:        mc.AdmitQueue,
		RateLimit:         mc.RateLimit,
		RateBurst:         mc.RateBurst,
	}
	if mc.HasScore {
		c.Score = &energysched.ScoreParams{Cempty: mc.Cempty, Cfill: mc.Cfill, THempty: mc.THempty}
	}
	return c
}

// fleetIDRe constrains fleet ids: they appear in URLs and become
// directory names under the durable root.
var fleetIDRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidateID reports whether id is usable as a fleet identifier.
func ValidateID(id string) error {
	if !fleetIDRe.MatchString(id) || id == manifestName {
		return errf(http.StatusBadRequest,
			"bad fleet id %q: want 1-64 chars of [a-zA-Z0-9._-], starting alphanumeric", id)
	}
	return nil
}

// NewManager builds the registry and — with a durable root — recovers
// every fleet recorded in the manifest.
func NewManager(opts Options) (*Manager, error) {
	m := &Manager{
		dir: opts.Dir, max: opts.MaxFleets, logf: opts.Logf,
		fleets:  make(map[string]*Fleet),
		pending: make(map[string]struct{}),
	}
	if m.dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating durable root: %w", err)
	}
	manifest, err := readManifest(filepath.Join(m.dir, manifestName))
	if err != nil {
		return nil, err
	}
	for _, e := range manifest.Fleets {
		cfg := e.Config.config()
		cfg.Dir = filepath.Join(m.dir, e.ID)
		cfg.Logf = m.logf
		f, err := Open(e.ID, cfg)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("fleet: recovering %s: %w", e.ID, err)
		}
		m.fleets[e.ID] = f
	}
	return m, nil
}

// SetMaxFleets installs (or clears, with 0) the registry cap. Exposed
// so the server can exempt its startup seeds: recovery and seeding run
// uncapped, then the cap gates every API-driven Create.
func (m *Manager) SetMaxFleets(n int) {
	m.mu.Lock()
	m.max = n
	m.mu.Unlock()
}

// Has reports whether a fleet with this id exists.
func (m *Manager) Has(id string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.fleets[id]
	return ok
}

// Get looks a fleet up by id.
func (m *Manager) Get(id string) (*Fleet, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.fleets[id]
	if !ok {
		return nil, errf(http.StatusNotFound, "fleet %q not found", id)
	}
	return f, nil
}

// Create registers and starts a new fleet. With a durable root the
// fleet gets its own WAL directory and the manifest is rewritten
// before Create returns. Open — a potentially expensive recovery
// (snapshot load + WAL replay) — runs outside the registry lock, so
// creating a fleet never stalls lookups of the others; the id is
// reserved while it runs.
func (m *Manager) Create(id string, cfg Config) (*Fleet, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := m.fleets[id]; ok {
		m.mu.Unlock()
		return nil, errf(http.StatusConflict, "fleet %q already exists", id)
	}
	if _, ok := m.pending[id]; ok {
		m.mu.Unlock()
		return nil, errf(http.StatusConflict, "fleet %q is being created", id)
	}
	if m.max > 0 && len(m.fleets)+len(m.pending) >= m.max {
		m.mu.Unlock()
		// Carry a retry hint like the other 429 paths: capacity frees
		// when a fleet is drained and deleted, so a client RetryPolicy
		// that honors Retry-After backs off instead of hammering.
		return nil, &Error{
			Status: http.StatusTooManyRequests,
			Msg: fmt.Sprintf("fleet registry is full (%d of %d); delete a fleet or raise -max-fleets",
				len(m.fleets), m.max),
			RetryAfter: 1,
		}
	}
	m.pending[id] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pending, id)
		m.mu.Unlock()
	}()

	if m.dir != "" {
		cfg.Dir = filepath.Join(m.dir, id)
	}
	if cfg.Logf == nil {
		cfg.Logf = m.logf
	}
	f, err := Open(id, cfg)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		f.Close()
		return nil, ErrClosed
	}
	m.fleets[id] = f
	err = m.saveManifestLocked()
	if err != nil {
		delete(m.fleets, id)
	}
	m.mu.Unlock()
	if err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Delete stops a fleet and removes it from the registry, including
// its durable directory — a deleted fleet does not come back on
// restart.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	f, ok := m.fleets[id]
	if !ok {
		m.mu.Unlock()
		return errf(http.StatusNotFound, "fleet %q not found", id)
	}
	delete(m.fleets, id)
	err := m.saveManifestLocked()
	m.mu.Unlock()
	// Close outside the lock: draining the fleet's event loop must not
	// block registry lookups of other fleets.
	f.Close()
	if m.dir != "" {
		if rerr := os.RemoveAll(filepath.Join(m.dir, id)); rerr != nil && err == nil {
			err = fmt.Errorf("fleet: removing durable dir of %s: %w", id, rerr)
		}
	}
	return err
}

// List returns every fleet, sorted by id.
func (m *Manager) List() []*Fleet {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Fleet, 0, len(m.fleets))
	for _, f := range m.fleets {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Len returns the number of registered fleets.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.fleets)
}

// Close stops every fleet.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	fleets := make([]*Fleet, 0, len(m.fleets))
	for _, f := range m.fleets {
		fleets = append(fleets, f)
	}
	m.mu.Unlock()
	for _, f := range fleets {
		f.Close()
	}
}

// saveManifestLocked rewrites the manifest atomically; call with
// m.mu held. A no-op without a durable root.
func (m *Manager) saveManifestLocked() error {
	if m.dir == "" {
		return nil
	}
	manifest := manifestFile{Format: manifestFormat}
	ids := make([]string, 0, len(m.fleets))
	for id := range m.fleets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		manifest.Fleets = append(manifest.Fleets, manifestEntry{
			ID: id, Config: toManifestConfig(m.fleets[id].cfg),
		})
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(m.dir, manifestName)
	tmp, err := os.CreateTemp(m.dir, ".fleets-*.json")
	if err != nil {
		return fmt.Errorf("fleet: manifest temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: publishing manifest: %w", err)
	}
	return nil
}

// readManifest loads the manifest; a missing file is an empty
// registry.
func readManifest(path string) (manifestFile, error) {
	var manifest manifestFile
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		manifest.Format = manifestFormat
		return manifest, nil
	}
	if err != nil {
		return manifest, fmt.Errorf("fleet: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &manifest); err != nil {
		return manifest, fmt.Errorf("fleet: decoding manifest %s: %w", path, err)
	}
	if manifest.Format != manifestFormat {
		return manifest, fmt.Errorf("fleet: %s: unsupported manifest format %q", path, manifest.Format)
	}
	return manifest, nil
}
