package fleet

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"energysched/internal/metrics"
	"energysched/internal/obs"
)

// A live fleet at "scores" verbosity records one decodable round trace
// per solver round, serves them through the snapshot and subscribe
// accessors, and — the determinism contract — produces exactly the
// drained report of a tracerless twin.
func TestFleetTraceRing(t *testing.T) {
	cfg := Config{Policy: "SB", Seed: 1, TraceVerbosity: "scores", TraceDepth: 64}
	f, err := Open("traced", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sub, backlog, _ := f.TraceSubscribe(0)
	defer f.TraceUnsubscribe(sub)
	if len(backlog) != 0 {
		t.Fatalf("fresh fleet has %d backlog traces", len(backlog))
	}

	submitN(t, f, 12, 0)
	rep, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if want := drainedReport(t, 12); rep != want {
		t.Fatalf("traced drain diverged from tracerless twin:\n got %+v\nwant %+v", rep, want)
	}

	evs := f.TraceSnapshot(0)
	if len(evs) == 0 {
		t.Fatal("no round traces recorded for a drained workload")
	}
	if f.TraceSeq() != evs[len(evs)-1].Seq {
		t.Fatalf("TraceSeq %d != last snapshot seq %d", f.TraceSeq(), evs[len(evs)-1].Seq)
	}
	sawAction := false
	for _, ev := range evs {
		var rt obs.RoundTrace
		if err := json.Unmarshal(ev.Data, &rt); err != nil {
			t.Fatalf("trace %d does not decode: %v", ev.Seq, err)
		}
		if rt.Solver == "" || rt.Hosts <= 0 {
			t.Fatalf("trace %d is malformed: %+v", ev.Seq, rt)
		}
		for _, at := range rt.Actions {
			sawAction = true
			if at.Terms == nil {
				t.Fatalf("trace %d: action without score terms at scores verbosity", ev.Seq)
			}
		}
	}
	if !sawAction {
		t.Fatal("12 placed jobs produced no action traces")
	}
	// The tail subscriber saw the same stream.
	tail := 0
	for range sub.Ch {
		tail++
		if tail == len(evs) {
			break
		}
	}
	if tail != len(evs) {
		t.Fatalf("tail subscriber got %d traces, snapshot has %d", tail, len(evs))
	}

	if got := f.TraceVerbosity(); got != obs.TraceScores {
		t.Fatalf("TraceVerbosity = %v, want scores", got)
	}
	f.SetTraceVerbosity(obs.TraceOff)
	if got := f.TraceVerbosity(); got != obs.TraceOff {
		t.Fatalf("SetTraceVerbosity did not take: %v", got)
	}
}

// A bad verbosity spelling is refused at Open, not at first use.
func TestFleetTraceBadVerbosity(t *testing.T) {
	if _, err := Open("bad", Config{TraceVerbosity: "verbose"}); err == nil {
		t.Fatal("Open accepted an unknown trace verbosity")
	}
}

// Crash recovery must not splice replayed rounds into the trace ring:
// after a kill and reopen, the ring starts empty even though the
// recovered fleet re-ran every scheduling round during replay.
func TestFleetTraceSuppressedDuringReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	cfg := testConfig(dir)
	cfg.TraceVerbosity = "actions"
	f, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 10, 0)
	if f.TraceSeq() == 0 {
		t.Fatal("live admissions recorded no traces")
	}
	f.Close()

	f2, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if n := f2.TraceSeq(); n != 0 {
		t.Fatalf("recovery replay leaked %d traces into the ring", n)
	}
	// New live rounds trace again.
	submitN(t, f2, 2, 10)
	if f2.TraceSeq() == 0 {
		t.Fatal("post-recovery admissions recorded no traces")
	}
}

// The fleet's /metrics samples include the latency histogram families
// with observations from a real workload, and they render through
// WriteProm as well-formed histogram expositions.
func TestFleetHistogramMetrics(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	f, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	submitN(t, f, 10, 0)

	samples, err := f.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]float64{}
	for _, s := range samples {
		if s.Kind == metrics.PromHistogram && s.Suffix == "_count" {
			counts[s.Name] = s.Value
		}
	}
	for name, wantObs := range map[string]bool{
		"energysched_admit_batch_seconds":  true,
		"energysched_wal_append_seconds":   true,
		"energysched_solver_round_seconds": true,
		"energysched_sse_fanout_seconds":   true,
		"energysched_repl_apply_seconds":   false, // leader fleet: no replicated records
	} {
		got, ok := counts[name]
		if !ok {
			t.Errorf("metrics missing histogram family %s", name)
			continue
		}
		if wantObs && got == 0 {
			t.Errorf("%s_count = 0, want observations after 10 admissions", name)
		}
	}

	var sb strings.Builder
	if err := metrics.WriteProm(&sb, metrics.MergeByName(samples)); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE energysched_admit_batch_seconds histogram",
		`energysched_admit_batch_seconds_bucket{le="+Inf"}`,
		"energysched_admit_batch_seconds_sum",
		"energysched_admit_batch_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
