package fleet

import (
	"errors"
	"net/http"
	"path/filepath"
	"testing"

	"energysched"
	"energysched/internal/workload"
)

// Live WAL fault injection: the chaos hooks must fail admissions
// cleanly (rollback, 500, fleet stays writable) and, when rollback is
// also taken out, degrade to read-only and recover the acknowledged
// prefix after a restart — never acknowledge what isn't durable.

// TestWALFaultDiskFull fails the sync path for a window, like a full
// disk: admissions inside the window are rejected with a clean
// rollback, and once space frees the fleet admits again.
func TestWALFaultDiskFull(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	full := false
	cfg := testConfig(dir)
	cfg.WALFault = func(op string) error {
		if full && op == "sync" {
			return errors.New("no space left on device")
		}
		return nil
	}
	f, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 4, 0)

	full = true
	at := 4.0 * 30
	_, serr := f.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at})
	var fe *Error
	if !errors.As(serr, &fe) || fe.Status != http.StatusInternalServerError {
		t.Fatalf("disk-full submit error = %v, want a 500", serr)
	}
	full = false

	// The rollback was clean: the fleet still admits, and only the
	// acknowledged jobs survive a kill/reopen.
	submitN(t, f, 4, 4)
	info, err := f.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs != 8 {
		t.Fatalf("jobs after recovery from disk-full = %d, want 8", info.Jobs)
	}
	f.Close()

	f2, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, err := f2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if want := drainedReport(t, 8); got != want {
		t.Fatalf("post-fault recovery diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestWALFaultTornWriteGoesReadOnly injects the worst case: an append
// tears mid-frame AND the rollback fails. The fleet must refuse
// further admissions (read-only beats divergence), and a reopen must
// truncate the torn tail and serve exactly the acknowledged prefix —
// the kill/recover byte-identity oracle under a live fault.
func TestWALFaultTornWriteGoesReadOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	arm := false
	cfg := testConfig(dir)
	cfg.SnapshotInterval = 0 // keep every record in the WAL
	cfg.WALFault = func(op string) error {
		if !arm {
			return nil
		}
		switch op {
		case "append":
			return ErrTornWrite
		case "rewind":
			return errors.New("rollback truncate failed")
		}
		return nil
	}
	f, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 6, 0)

	arm = true
	at := 6.0 * 30
	if _, err := f.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at}); err == nil {
		t.Fatal("torn append acknowledged")
	}
	arm = false

	// Broken log ⇒ read-only, even though the hook is quiet again.
	if _, err := f.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at}); err == nil {
		t.Fatal("read-only fleet accepted an admission")
	}
	f.Close()

	var warned bool
	cfg2 := testConfig(dir)
	cfg2.SnapshotInterval = 0
	cfg2.Logf = func(format string, args ...interface{}) { warned = true }
	f2, err := Open("f", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st, err := f2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail || st.TruncatedBytes == 0 || st.Replayed != 6 {
		t.Fatalf("torn-write recovery stats = %+v, want TornTail with 6 replayed", st)
	}
	if !warned {
		t.Error("torn tail truncated without a log line")
	}
	got, err := f2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if want := drainedReport(t, 6); got != want {
		t.Fatalf("torn-write recovery diverged from the acknowledged prefix:\n got %+v\nwant %+v", got, want)
	}
}

// TestSubmitSourceMatchesBatch: streaming a trace into a fleet in
// small batches is byte-identical to one atomic batch of the
// materialized trace.
func TestSubmitSourceMatchesBatch(t *testing.T) {
	gcfg := workload.DefaultGeneratorConfig()
	gcfg.Horizon = 12 * 3600
	tr := workload.MustGenerate(gcfg)

	stream, err := Open("s", Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	src, err := workload.NewGeneratorSource(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := stream.SubmitSource(src, 32)
	if err != nil {
		t.Fatal(err)
	}
	if n != tr.Len() {
		t.Fatalf("streamed %d jobs, trace has %d", n, tr.Len())
	}
	srep, err := stream.Drain()
	if err != nil {
		t.Fatal(err)
	}

	batch, err := Open("b", Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()
	specs := make([]energysched.JobSpec, 0, tr.Len())
	for _, j := range tr.Jobs {
		submit := j.Submit
		specs = append(specs, energysched.JobSpec{
			Name: j.Name, CPU: j.CPU, Mem: j.Mem, Duration: j.Duration,
			Submit: &submit, DeadlineFactor: j.DeadlineFactor,
		})
	}
	if _, err := batch.SubmitBatch(specs); err != nil {
		t.Fatal(err)
	}
	brep, err := batch.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if srep != brep {
		t.Fatalf("streamed and batched fleets diverged:\n stream %+v\n batch  %+v", srep, brep)
	}
}

// Satellite: the -max-fleets 429 must carry a Retry-After hint like
// every other transient rejection.
func TestManagerCapCarriesRetryAfter(t *testing.T) {
	m, err := NewManager(Options{MaxFleets: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Create("one", Config{}); err != nil {
		t.Fatal(err)
	}
	_, err = m.Create("two", Config{})
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("cap rejection = %v, want a fleet.Error", err)
	}
	if fe.Status != http.StatusTooManyRequests || fe.RetryAfter != 1 {
		t.Fatalf("cap rejection = status %d retry-after %d, want 429 with retry hint", fe.Status, fe.RetryAfter)
	}
}
