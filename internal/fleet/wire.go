package fleet

import (
	"sort"

	"energysched"
	"energysched/internal/cluster"
	"energysched/internal/metrics"
	"energysched/internal/vm"
)

// Conversions between the engine's internal model and the public wire
// types declared in the root package (client.go). The server marshals
// exactly those structs, so daemon and client cannot drift apart.

func jobStatus(v *vm.VM) energysched.JobStatus {
	progress := 0.0
	if v.Work > 0 {
		progress = 100 * v.Progress / v.Work
		if progress > 100 {
			progress = 100
		}
	}
	return energysched.JobStatus{
		ID:             v.ID,
		Name:           v.Name,
		State:          v.State.String(),
		Host:           v.Host,
		Submit:         v.Submit,
		Duration:       v.Duration,
		Deadline:       v.Deadline,
		ProgressPct:    progress,
		Start:          v.Start,
		Finish:         v.Finish,
		Migrations:     v.Migrations,
		Restarts:       v.Restarts,
		CPU:            v.Req.CPU,
		Mem:            v.Req.Mem,
		FaultTolerance: v.FaultTolerance,
	}
}

func nodeStatus(n *cluster.Node, watts float64) energysched.NodeStatus {
	ids := make([]int, 0, len(n.VMs))
	for id := range n.VMs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return energysched.NodeStatus{
		ID:          n.ID,
		Class:       n.Class.Name,
		State:       n.State.String(),
		VMs:         ids,
		CPUReserved: n.CPUReserved(),
		MemReserved: n.MemReserved(),
		Occupation:  n.Occupation(),
		Watts:       watts,
	}
}

// ServiceReportOf renders an engine report as the wire ServiceReport.
// Exported for tests that compare daemon output byte-for-byte against
// offline energysched.Run reports.
func ServiceReportOf(rep metrics.Report, final bool) energysched.ServiceReport {
	return serviceReport(rep, final)
}

func serviceReport(rep metrics.Report, final bool) energysched.ServiceReport {
	return energysched.ServiceReport{
		Policy:        rep.Policy,
		LambdaMin:     rep.LambdaMin,
		LambdaMax:     rep.LambdaMax,
		AvgWorking:    rep.AvgWorking,
		AvgOnline:     rep.AvgOnline,
		CPUHours:      rep.CPUHours,
		EnergyKWh:     rep.EnergyKWh,
		Satisfaction:  rep.Satisfaction,
		Delay:         rep.Delay,
		Migrations:    rep.Migrations,
		JobsCompleted: rep.JobsCompleted,
		JobsTotal:     rep.JobsTotal,
		Failures:      rep.Failures,
		SimEnd:        rep.SimEnd,
		Final:         final,
		Table:         rep.String(),
	}
}
