package fleet

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// walFrame wraps payload in the on-disk record framing (length + CRC).
func walFrame(payload []byte) []byte {
	var h [walHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum(payload, walCRCTable))
	return append(h[:], payload...)
}

// FuzzWALRecovery feeds arbitrary bytes to the WAL recovery path and
// checks the crash-safety contract on whatever comes back:
//
//  1. recovery never panics and never reports more records than it
//     returns;
//  2. recovery is idempotent — a recovered log reopens cleanly
//     (no torn tail the second time) with the identical record
//     sequence, because the first open truncated the damage away;
//  3. a recovered log is writable — an append lands after the intact
//     prefix and survives the next reopen.
//
// The seed corpus in testdata/fuzz covers the crash artifacts the
// format was designed around: a torn final record, a bit-flipped CRC,
// a bogus (oversized and zero) length prefix, and CRC-valid payloads
// that are not our JSON.
func FuzzWALRecovery(f *testing.F) {
	admit := []byte(`{"kind":"admit","job":{"id":0,"submit_s":0,"duration_s":60,"cpu_pct":100,"mem_units":5,"deadline_factor":1.5}}`)
	seal := []byte(`{"kind":"seal"}`)
	valid := append(walFrame(admit), walFrame(seal)...)

	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[walHeaderSize+2] ^= 0x40 // payload bit flip: CRC mismatch
	f.Add(flipped)
	bogus := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bogus[len(walFrame(admit)):], 0xFFFFFFFF) // oversized length prefix
	f.Add(bogus)
	f.Add(walFrame([]byte(`[1,2,3]`)))           // CRC-valid, not a walRecord
	f.Add(append(valid, 0, 0, 0, 0, 0, 0, 0, 0)) // zero length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		w, recs, _, err := openWAL(path, SyncOS, nil)
		if err != nil {
			return // I/O-level refusal is fine; crashing is not
		}
		if w.records != len(recs) {
			t.Fatalf("open: counter %d != %d recovered records", w.records, len(recs))
		}
		w.close()

		w2, recs2, dropped2, err := openWAL(path, SyncOS, nil)
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		if dropped2 != 0 {
			t.Fatal("tail still torn after recovery truncated it")
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("recovery not idempotent:\nfirst:  %+v\nsecond: %+v", recs, recs2)
		}

		if err := w2.append(walRecord{Kind: walKindSeal}, true); err != nil {
			t.Fatalf("append to recovered log: %v", err)
		}
		w2.close()
		w3, recs3, dropped3, err := openWAL(path, SyncOS, nil)
		if err != nil || dropped3 != 0 {
			t.Fatalf("reopen after append: err=%v dropped=%d", err, dropped3)
		}
		if len(recs3) != len(recs2)+1 || recs3[len(recs3)-1].Kind != walKindSeal {
			t.Fatalf("append lost: %d records after appending to %d", len(recs3), len(recs2))
		}
		w3.close()
	})
}
