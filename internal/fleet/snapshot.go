package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"energysched"
	"energysched/internal/workload"
)

// Snapshots are event-sourced: because the simulation is fully
// deterministic given its configuration and the admitted-job log, a
// checkpoint needs only those inputs plus the virtual-time watermark
// — not the event queue, meters or RNG internals. Restore rebuilds a
// fresh simulation and replays the log up to the watermark, landing
// bit-for-bit on the saved state (the same argument that makes online
// admission byte-identical to offline replay; see
// docs/ARCHITECTURE.md, "Service mode"). Restore time linear in
// *snapshotted* history is the price; the WAL (wal.go) bounds the
// tail that has to be replayed beyond the snapshot, and the format
// cannot desynchronize from engine internals across versions.

// snapshotFormat identifies the snapshot file layout. The layout is
// unchanged since PR 3, so pre-fleet snapshots restore into any fleet.
const snapshotFormat = "energyschedd-snapshot/v1"

// checkpointName is the per-fleet compaction snapshot inside the
// fleet's durable directory (Config.Dir).
const checkpointName = "snapshot.json"

// walName is the per-fleet admission log inside Config.Dir.
const walName = "wal.log"

type snapshotFile struct {
	Format       string  `json:"format"`
	SavedVirtual float64 `json:"saved_virtual_s"`
	Sealed       bool    `json:"sealed"`
	// Gen is the timeline generation the snapshot belongs to (0 in
	// pre-PR 6 snapshots, treated as 1). Restores bump it; replication
	// followers adopt the leader's, so a follower never splices records
	// from two different timelines.
	Gen    int64          `json:"gen,omitempty"`
	Config snapshotConfig `json:"config"`
	Jobs   []snapJob      `json:"jobs"`
}

type snapshotConfig struct {
	Policy            string                  `json:"policy"`
	Seed              int64                   `json:"seed"`
	LambdaMin         float64                 `json:"lambda_min"`
	LambdaMax         float64                 `json:"lambda_max"`
	Cempty            float64                 `json:"cempty,omitempty"`
	Cfill             float64                 `json:"cfill,omitempty"`
	THempty           int                     `json:"th_empty,omitempty"`
	HasScore          bool                    `json:"has_score,omitempty"`
	Failures          bool                    `json:"failures,omitempty"`
	CheckpointSeconds float64                 `json:"checkpoint_s,omitempty"`
	AdaptiveTarget    float64                 `json:"adaptive_target,omitempty"`
	Shards            int                     `json:"shards,omitempty"`
	Classes           []energysched.NodeClass `json:"classes,omitempty"`
}

// snapJob mirrors workload.Job with wire tags.
type snapJob struct {
	ID             int     `json:"id"`
	Name           string  `json:"name,omitempty"`
	Submit         float64 `json:"submit_s"`
	Duration       float64 `json:"duration_s"`
	CPU            float64 `json:"cpu_pct"`
	Mem            float64 `json:"mem_units"`
	DeadlineFactor float64 `json:"deadline_factor"`
	FaultTolerance float64 `json:"fault_tolerance,omitempty"`
	Arch           string  `json:"arch,omitempty"`
	Hypervisor     string  `json:"hypervisor,omitempty"`
}

func toSnapJob(j workload.Job) snapJob {
	return snapJob{
		ID: j.ID, Name: j.Name, Submit: j.Submit, Duration: j.Duration,
		CPU: j.CPU, Mem: j.Mem, DeadlineFactor: j.DeadlineFactor,
		FaultTolerance: j.FaultTolerance, Arch: j.Arch, Hypervisor: j.Hypervisor,
	}
}

func (sj snapJob) job() workload.Job {
	return workload.Job{
		ID: sj.ID, Name: sj.Name, Submit: sj.Submit, Duration: sj.Duration,
		CPU: sj.CPU, Mem: sj.Mem, DeadlineFactor: sj.DeadlineFactor,
		FaultTolerance: sj.FaultTolerance, Arch: sj.Arch, Hypervisor: sj.Hypervisor,
	}
}

// snapshotState assembles the snapshot of the current actor state.
// Call only from the event loop.
func (f *Fleet) snapshotState() snapshotFile {
	snap := snapshotFile{
		Format:       snapshotFormat,
		SavedVirtual: f.sim.Now(),
		Sealed:       f.sim.Sealed(),
		Gen:          f.gen,
		Config:       f.snapshotConfig(),
		Jobs:         make([]snapJob, 0, len(f.jobs)),
	}
	for _, j := range f.jobs {
		snap.Jobs = append(snap.Jobs, toSnapJob(j))
	}
	return snap
}

func (f *Fleet) snapshotConfig() snapshotConfig {
	sc := snapshotConfig{
		Policy:            f.cfg.Policy,
		Seed:              f.cfg.Seed,
		LambdaMin:         f.cfg.LambdaMin,
		LambdaMax:         f.cfg.LambdaMax,
		Failures:          f.cfg.Failures,
		CheckpointSeconds: f.cfg.CheckpointSeconds,
		AdaptiveTarget:    f.cfg.AdaptiveTarget,
		Shards:            f.cfg.Shards,
		Classes:           f.cfg.Classes,
	}
	if f.cfg.Score != nil {
		sc.HasScore = true
		sc.Cempty = f.cfg.Score.Cempty
		sc.Cfill = f.cfg.Score.Cfill
		sc.THempty = f.cfg.Score.THempty
	}
	return sc
}

// writeSnapshot persists the snapshot atomically (temp file + rename).
func writeSnapshot(path string, snap snapshotFile) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encoding snapshot: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.json")
	if err != nil {
		return fmt.Errorf("fleet: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: publishing snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads and validates a snapshot file.
func readSnapshot(path string) (snapshotFile, error) {
	var snap snapshotFile
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, fmt.Errorf("fleet: reading snapshot: %w", err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("fleet: decoding snapshot %s: %w", path, err)
	}
	if snap.Format != snapshotFormat {
		return snap, fmt.Errorf("fleet: %s: unsupported snapshot format %q", path, snap.Format)
	}
	return snap, nil
}
