package fleet

import (
	"net/http"
	"path/filepath"
	"testing"

	"energysched"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/obs/slo"
)

// TestFleetAccountingTwin is the side-channel oracle at the fleet
// layer: a fleet with every collector armed — scores-verbosity
// tracing, SLO objectives, and the always-on series/journey stores —
// drains to the exact report of a bare twin, while the collectors
// actually recorded the run.
func TestFleetAccountingTwin(t *testing.T) {
	cfg := Config{
		Policy: "SB", Seed: 1,
		TraceVerbosity: "scores",
		SLOs: []slo.Objective{
			{Name: "power-budget", Metric: "watts", Max: 1, Budget: 0.1},
		},
	}
	f, err := Open("observed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	submitN(t, f, 12, 0)
	rep, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if want := drainedReport(t, 12); rep != want {
		t.Fatalf("observed drain diverged from bare twin:\n got %+v\nwant %+v", rep, want)
	}
	if f.SeriesCount() == 0 {
		t.Fatal("no accounting samples recorded")
	}
	if len(f.JourneySummaries()) != 12 {
		t.Fatalf("journeys tracked = %d, want 12", len(f.JourneySummaries()))
	}
	if len(f.Alerts()) != 1 {
		t.Fatalf("alerts = %+v", f.Alerts())
	}
}

// TestFleetJourneyLifecycle: a drained job's journey tells the whole
// story — submitted, placed with a why-score (journeys force
// action-level tracing even with the ring off), running, completed —
// with attributed energy and SLA satisfaction on the terminal step.
func TestFleetJourneyLifecycle(t *testing.T) {
	f, err := Open("j", Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	submitN(t, f, 4, 0)
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}

	for id := 0; id < 4; id++ {
		j, err := f.Journey(id)
		if err != nil {
			t.Fatalf("journey %d: %v", id, err)
		}
		if j.Outcome != obs.StepCompleted {
			t.Fatalf("job %d outcome = %q", id, j.Outcome)
		}
		if j.EnergyKWh <= 0 {
			t.Fatalf("job %d completed with no attributed energy", id)
		}
		if j.Satisfaction != 100 {
			t.Fatalf("job %d satisfaction = %v, want 100 for a comfortable deadline", id, j.Satisfaction)
		}
		kinds := make([]string, len(j.Steps))
		for i, st := range j.Steps {
			kinds[i] = st.Kind
		}
		if len(kinds) < 4 || kinds[0] != obs.StepSubmitted || kinds[len(kinds)-1] != obs.StepCompleted {
			t.Fatalf("job %d steps = %v", id, kinds)
		}
		placed := false
		for _, st := range j.Steps {
			if st.Kind == obs.StepPlaced {
				placed = true
				if st.Why == nil || st.Why.To != st.Node {
					t.Fatalf("job %d placed step why = %+v (node %d)", id, st.Why, st.Node)
				}
			}
		}
		if !placed {
			t.Fatalf("job %d has no placed step: %v", id, kinds)
		}
		// Steps are stamped with non-decreasing virtual time.
		for i := 1; i < len(j.Steps); i++ {
			if j.Steps[i].T < j.Steps[i-1].T {
				t.Fatalf("job %d step times regress: %v", id, j.Steps)
			}
		}
	}

	if _, err := f.Journey(99); err == nil {
		t.Fatal("unknown job resolved")
	} else if fe, ok := err.(*Error); !ok || fe.Status != http.StatusNotFound {
		t.Fatalf("unknown job error = %v, want 404", err)
	}
}

// TestFleetAccountingReplaySuppression: crash recovery must not
// double-count the side channels. After a kill and reopen the series
// store and the journey firehose start empty (replayed rounds are
// observations already delivered), while the recovered fleet's drained
// report AND its per-job attributed energy match the uninterrupted
// twin exactly — replayed energy re-accumulates from zero, never
// twice.
func TestFleetAccountingReplaySuppression(t *testing.T) {
	const n = 12
	dir := filepath.Join(t.TempDir(), "f")
	f, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, n, 0)
	if f.SeriesCount() == 0 || f.JourneySeq() == 0 {
		t.Fatal("live run recorded nothing")
	}
	f.Close() // kill

	f2, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if c := f2.SeriesCount(); c != 0 {
		t.Fatalf("recovery replay leaked %d samples into the series store", c)
	}
	if s := f2.JourneySeq(); s != 0 {
		t.Fatalf("recovery replay leaked %d steps onto the journey firehose", s)
	}
	got, err := f2.Drain()
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted twin for the per-job energy comparison.
	ref, err := Open("ref", Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	submitN(t, ref, n, 0)
	want, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered drain diverged:\n got %+v\nwant %+v", got, want)
	}
	for id := 0; id < n; id++ {
		jr, err := f2.Journey(id)
		if err != nil {
			t.Fatalf("recovered journey %d: %v", id, err)
		}
		jw, err := ref.Journey(id)
		if err != nil {
			t.Fatalf("ref journey %d: %v", id, err)
		}
		if jr.EnergyKWh != jw.EnergyKWh {
			t.Fatalf("job %d attributed energy diverged after recovery: %v vs %v",
				id, jr.EnergyKWh, jw.EnergyKWh)
		}
		if jr.Outcome != jw.Outcome || jr.Satisfaction != jw.Satisfaction {
			t.Fatalf("job %d outcome diverged: %+v vs %+v", id, jr, jw)
		}
	}
	// Post-recovery samples resume and stay cumulative from the true
	// total, not from a doubled one: the final kWh matches the twin's.
	rs, ws := f2.SeriesSamples(series.Query{}), ref.SeriesSamples(series.Query{})
	if len(rs) == 0 || len(ws) == 0 {
		t.Fatal("post-recovery drain recorded no samples")
	}
	if rk, wk := rs[len(rs)-1].KWh, ws[len(ws)-1].KWh; rk != wk {
		t.Fatalf("final sampled kWh diverged after recovery: %v vs %v", rk, wk)
	}
}

// TestFleetAccountingBoundedDepth: the ring depths from the config
// actually bound retention while lifetime counters keep counting.
func TestFleetAccountingBoundedDepth(t *testing.T) {
	f, err := Open("small", Config{Policy: "SB", Seed: 1, SeriesDepth: 4, JourneyDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	submitN(t, f, 8, 0)
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.SeriesSamples(series.Query{})); got > 4 {
		t.Fatalf("series retained %d samples, depth 4", got)
	}
	if f.SeriesCount() <= 4 {
		t.Fatalf("SeriesCount = %d, want more than the depth (eviction still counts)", f.SeriesCount())
	}
	// 8 jobs against a 3-record cap: retention never exceeds the cap
	// (evicted jobs may re-enter on their terminal step — by design,
	// the outcome of a long-running job survives even if its early
	// steps were evicted).
	if sums := f.JourneySummaries(); len(sums) != 3 {
		t.Fatalf("journeys retained %d, depth 3: %+v", len(sums), sums)
	}
	if f.JourneySeq() < 8 {
		t.Fatalf("firehose carried %d steps, want all of them despite eviction", f.JourneySeq())
	}
}

// TestFleetSLOFireAndClear drives the canonical alert episode through
// a real fleet: a power-budget ceiling burns while the burst runs,
// fires, then a long idle tail (nodes powered down, zero draw) brings
// the short window back under budget and the alert clears — all in
// virtual time, fully deterministic, with the transition counters and
// the Prometheus families as the record.
func TestFleetSLOFireAndClear(t *testing.T) {
	cfg := Config{
		Policy: "SB", Seed: 1,
		SLOs: []slo.Objective{
			// The ceiling sits between the idle floor (one node held
			// on, 725 W) and the busy burst (1297 W): the burst burns
			// budget, the idle tail recovers it.
			{Name: "power-budget", Metric: "watts", Max: 1000,
				ShortWindow: 300, LongWindow: 1200, Budget: 0.1},
			{Name: "admit-p99", Metric: MetricAdmitP99, Max: 100},
		},
	}
	f, err := Open("slo", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A busy half hour: two chunky jobs hold nodes on and draw well
	// over the ceiling at every tick.
	at0, at60 := 0.0, 60.0
	if _, err := f.Submit(energysched.JobSpec{CPU: 300, Mem: 10, Duration: 1800, Submit: &at0}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(energysched.JobSpec{CPU: 300, Mem: 10, Duration: 1800, Submit: &at60}); err != nil {
		t.Fatal(err)
	}
	// A tiny straggler hours later forces the drain through a long
	// idle tail: nodes power down, draw falls to zero, the short
	// window recovers.
	late := 4 * 3600.0
	if _, err := f.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 60, Submit: &late}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}

	alerts := f.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v", alerts)
	}
	power := alerts[0]
	if power.Name != "power-budget" {
		t.Fatalf("alert order changed: %+v", alerts)
	}
	if power.FiredTotal < 1 {
		t.Fatalf("power ceiling never fired: %+v", power)
	}
	if power.ClearedTotal < 1 || power.State != "ok" {
		t.Fatalf("power alert never cleared through the idle tail: %+v", power)
	}
	if f.AlertsFiring() != 0 {
		t.Fatalf("AlertsFiring = %d after the run", f.AlertsFiring())
	}
	p99 := alerts[1]
	if p99.State != "ok" || p99.FiredTotal != 0 {
		t.Fatalf("admit-p99 ceiling of 100s fired: %+v", p99)
	}
	if p99.Value <= 0 {
		t.Fatalf("admit-p99 never resolved from the admission histogram: %+v", p99)
	}

	// The run is deterministic: a twin fleet reports the identical
	// alert structs, transition counters included.
	f2, err := Open("slo2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for _, at := range []float64{0, 60} {
		at := at
		if _, err := f2.Submit(energysched.JobSpec{CPU: 300, Mem: 10, Duration: 1800, Submit: &at}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f2.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 60, Submit: &late}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Drain(); err != nil {
		t.Fatal(err)
	}
	twin := f2.Alerts()[0]
	if twin.State != power.State || twin.FiredTotal != power.FiredTotal ||
		twin.ClearedTotal != power.ClearedTotal || twin.Since != power.Since {
		t.Fatalf("twin fleets' alert verdicts diverged:\n%+v\n%+v", twin, power)
	}

	// The SLO families reach /metrics.
	samples, err := f.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range samples {
		if s.Labels["objective"] == "power-budget" {
			found[s.Name] = true
			if s.Name == "energysched_slo_fired_total" && s.Value < 1 {
				t.Fatalf("fired_total sample = %v", s.Value)
			}
		}
	}
	for _, name := range []string{
		"energysched_slo_burn_rate", "energysched_slo_firing",
		"energysched_slo_fired_total", "energysched_slo_cleared_total",
	} {
		if !found[name] {
			t.Errorf("metrics missing %s for the power-budget objective", name)
		}
	}
}
