package fleet

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Warm-standby replication, fleet side. The admission log IS the
// fleet's state (snapshots are event-sourced), so replicating a fleet
// means shipping its WAL records, in order, to a follower that applies
// them through the same deterministic engine. The leader exposes, per
// fleet:
//
//   - a logical record offset: how many log records (admissions + the
//     seal) exist since the fleet's timeline began. Unlike the WAL
//     file's byte offset it never rewinds on compaction, so a follower
//     resumes by record offset across leader compactions and restarts;
//   - a timeline generation, bumped whenever the log stops describing
//     the fleet (an API restore replaces the timeline). A follower
//     whose generation disagrees re-bootstraps from a snapshot
//     instead of splicing two histories;
//   - a subscription feed (ReplSubscribe): the bootstrap snapshot or
//     record backlog the caller is missing, then live records as the
//     event loop commits them.
//
// Every record carries the leader's virtual clock at admission time
// (Now). A follower may only advance its own clock to times carried
// by frames: the leader validated every admission against its clock,
// so no future record can have a submit time below a Now the follower
// has already seen — which is exactly the invariant that makes
// incremental apply land on the same timeline as the leader's own
// crash recovery.

// ReplRecord is one replicated log record: the record offset after
// applying it (1-based), the leader's virtual clock at admission, and
// the marshaled walRecord payload — the same bytes the leader wrote to
// its own WAL, so follower WALs are byte-identical.
type ReplRecord struct {
	Offset int64
	Now    float64
	Data   []byte
}

// ReplSession is one follower's view of a fleet's log, returned by
// ReplSubscribe. Exactly one of Snapshot / Backlog covers the gap
// between the caller's offset and Head; Ch then streams live records.
// Ch is closed when the subscriber falls too far behind or the fleet
// shuts down — the caller reconnects and resumes at its applied
// offset.
type ReplSession struct {
	// Gen is the fleet's timeline generation.
	Gen int64
	// Head is the fleet's current log offset.
	Head int64
	// Now is the fleet's virtual clock at subscription.
	Now float64
	// Start is the offset this session resumes from: the caller's
	// requested offset, or Head when Snapshot bootstraps the caller.
	Start int64
	// Snapshot, when non-nil, is the marshaled snapshot of the state
	// through Start: sent when the caller's generation disagrees or
	// its offset cannot be served from the log.
	Snapshot []byte
	// Backlog holds the records (Start, Head], re-marshaled from the
	// admission log, when the caller resumes by offset.
	Backlog []ReplRecord
	// Ch streams records committed after Head.
	Ch chan ReplRecord
}

// replSubBuffer is each replication subscriber's channel depth: how
// far it may lag the event loop before being cut loose to reconnect.
const replSubBuffer = 1024

// replFeed fans committed log records out to replication sessions.
// publish is only called from the fleet's event loop; the mutex
// guards the subscriber set against concurrent Unsubscribe.
type replFeed struct {
	mu     sync.Mutex
	closed bool
	subs   map[*ReplSession]struct{}
}

func newReplFeed() *replFeed {
	return &replFeed{subs: make(map[*ReplSession]struct{})}
}

func (rf *replFeed) publish(rec ReplRecord) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.closed {
		return
	}
	for sess := range rf.subs {
		select {
		case sess.Ch <- rec:
		default:
			// Slow follower: cut it loose so replication never
			// backpressures admissions; it reconnects at its offset.
			delete(rf.subs, sess)
			close(sess.Ch)
		}
	}
}

func (rf *replFeed) add(sess *ReplSession) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.closed {
		close(sess.Ch)
		return
	}
	rf.subs[sess] = struct{}{}
}

func (rf *replFeed) remove(sess *ReplSession) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if _, ok := rf.subs[sess]; ok {
		delete(rf.subs, sess)
		close(sess.Ch)
	}
}

// dropAll disconnects every subscriber but keeps the feed usable:
// called when a snapshot replaces the fleet's timeline (API restore),
// so attached followers reconnect, observe the generation bump, and
// re-bootstrap instead of idling on a dead timeline.
func (rf *replFeed) dropAll() {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	for sess := range rf.subs {
		delete(rf.subs, sess)
		close(sess.Ch)
	}
}

func (rf *replFeed) close() {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.closed {
		return
	}
	rf.closed = true
	for sess := range rf.subs {
		delete(rf.subs, sess)
		close(sess.Ch)
	}
}

// logOffset returns the fleet's logical record offset: admissions plus
// the seal. Call only from the event loop.
func (f *Fleet) logOffset() int64 {
	n := int64(len(f.jobs))
	if f.sim.Sealed() {
		n++
	}
	return n
}

// ReplState reports the fleet's timeline generation, log offset and
// virtual clock.
func (f *Fleet) ReplState() (gen, offset int64, now float64, err error) {
	err = f.do(func() { gen, offset, now = f.gen, f.logOffset(), f.sim.Now() })
	return gen, offset, now, err
}

// ReplSubscribe opens a replication session resuming from the caller's
// (generation, offset). A disagreeing generation, a negative offset or
// an offset past the head cannot be served from the log and bootstraps
// the caller with a full snapshot instead. Release the session with
// ReplUnsubscribe.
func (f *Fleet) ReplSubscribe(gen, from int64) (*ReplSession, error) {
	sess := &ReplSession{Ch: make(chan ReplRecord, replSubBuffer)}
	err := f.do(func() {
		sess.Gen = f.gen
		sess.Head = f.logOffset()
		sess.Now = f.sim.Now()
		if gen != f.gen || from < 0 || from > sess.Head {
			data, merr := json.Marshal(f.snapshotState())
			if merr != nil {
				return // cannot happen: plain structs
			}
			sess.Snapshot = data
			sess.Start = sess.Head
		} else {
			sess.Start = from
			for i := from; i < int64(len(f.jobs)); i++ {
				sj := toSnapJob(f.jobs[i])
				payload, merr := json.Marshal(walRecord{Kind: walKindAdmit, Job: &sj})
				if merr != nil {
					return
				}
				// Backlog records carry Now 0: the follower injects them
				// without advancing its clock, then catches up from the
				// ping that follows the backlog on the stream.
				sess.Backlog = append(sess.Backlog, ReplRecord{Offset: i + 1, Data: payload})
			}
			if f.sim.Sealed() {
				payload, merr := json.Marshal(walRecord{Kind: walKindSeal})
				if merr != nil {
					return
				}
				sess.Backlog = append(sess.Backlog, ReplRecord{Offset: int64(len(f.jobs)) + 1, Data: payload})
			}
		}
		// Registering inside the event loop makes the snapshot/backlog
		// and the live feed gapless: no record can be committed between
		// the capture and the registration.
		f.repl.add(sess)
	})
	if err != nil {
		return nil, err
	}
	return sess, nil
}

// ReplUnsubscribe releases a replication session.
func (f *Fleet) ReplUnsubscribe(sess *ReplSession) {
	f.repl.remove(sess)
}

// ApplyReplSnapshot replaces the fleet's state with a leader snapshot
// (follower bootstrap). The snapshot's generation is adopted verbatim
// — the follower mirrors the leader's timeline, it does not start one.
func (f *Fleet) ApplyReplSnapshot(data []byte) error {
	var serr error
	if err := f.do(func() {
		var snap snapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			serr = errf(http.StatusUnprocessableEntity, "decoding replication snapshot: %v", err)
			return
		}
		if snap.Format != snapshotFormat {
			serr = errf(http.StatusUnprocessableEntity, "unsupported replication snapshot format %q", snap.Format)
			return
		}
		oldGen := f.gen
		f.gen = snap.Gen
		if f.gen == 0 {
			f.gen = 1
		}
		if serr = f.applySnapshot(snap, "replication bootstrap"); serr != nil {
			f.gen = oldGen
		}
	}); err != nil {
		return err
	}
	return serr
}

// ApplyReplRecord applies one replicated record at the given offset
// and leader clock. The record must be the immediate successor of the
// fleet's log head; a gap or a replay is refused with 409 so the
// follower re-syncs instead of corrupting its timeline. Durability
// mirrors the leader's admission path exactly: WAL append (the
// leader's own payload bytes) before apply.
func (f *Fleet) ApplyReplRecord(rec ReplRecord) error {
	var serr error
	if err := f.do(func() { serr = f.applyRecord(rec) }); err != nil {
		return err
	}
	return serr
}

// applyRecord is ApplyReplRecord on the event loop.
func (f *Fleet) applyRecord(rec ReplRecord) error {
	defer f.hists.replApply.ObserveSince(time.Now())
	var wrec walRecord
	if err := json.Unmarshal(rec.Data, &wrec); err != nil {
		return errf(http.StatusBadRequest, "decoding replicated record: %v", err)
	}
	cur := f.logOffset()
	if rec.Offset != cur+1 {
		return errf(http.StatusConflict,
			"replication gap: record %d does not follow local offset %d", rec.Offset, cur)
	}
	if f.walBroken {
		return errf(http.StatusInternalServerError, "admission log is broken; fleet is read-only")
	}
	if f.sim.Sealed() {
		return errf(http.StatusConflict, "workload is sealed; no records can follow the seal")
	}
	switch wrec.Kind {
	case walKindAdmit:
		if wrec.Job == nil || wrec.Job.ID != len(f.jobs) {
			return errf(http.StatusUnprocessableEntity, "replicated admit record out of sequence")
		}
		if err := f.logPayloads([][]byte{rec.Data}); err != nil {
			return err
		}
		j := wrec.Job.job()
		if _, err := f.sim.Inject(j); err != nil {
			// The leader applied this record; if we cannot, our WAL now
			// disagrees with memory — stop rather than diverge.
			f.walBroken = f.wal != nil
			return errf(http.StatusInternalServerError, "replicated record does not apply: %v", err)
		}
		f.jobs = append(f.jobs, j)
		if rec.Now > f.watermark {
			f.watermark = rec.Now
		}
		f.sim.StepBefore(f.watermark)
		f.repl.publish(rec)
		f.maybeCompact()
	case walKindSeal:
		if err := f.logPayloads([][]byte{rec.Data}); err != nil {
			return err
		}
		rep := serviceReport(f.sim.Drain(), true)
		f.final = &rep
		f.watermark = f.sim.Now()
		f.repl.publish(rec)
		f.logf("replicated seal applied: %s", rep.Table)
		f.persistCheckpoint()
	default:
		return errf(http.StatusUnprocessableEntity, "unknown replicated record kind %q", wrec.Kind)
	}
	return nil
}

// AdvanceTo moves the fleet's virtual clock to a leader-carried time
// (ping frames). Safe by the replication clock invariant: the leader
// never admits below a clock value it has already published.
func (f *Fleet) AdvanceTo(now float64) error {
	return f.do(func() {
		if now > f.watermark {
			f.watermark = now
			if !f.sim.Done() {
				f.sim.StepBefore(f.watermark)
			}
		}
	})
}

// SealCatchUp finalizes a promotion: the fleet fast-forwards its clock
// to its admission watermark — exactly what crash recovery does — so
// the promoted state is the one the replicated log describes. Returns
// the fleet's log offset.
func (f *Fleet) SealCatchUp() (offset int64, err error) {
	err = f.do(func() {
		wm := maxWatermark(f.watermark, f.jobs)
		if wm > f.watermark {
			f.watermark = wm
		}
		if !f.sim.Done() {
			f.sim.StepBefore(f.watermark)
		}
		offset = f.logOffset()
	})
	return offset, err
}
