package fleet

import (
	"net/http"

	"energysched"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/obs/slo"
	"energysched/internal/sla"
)

// Accounting surface: the per-fleet energy/SLA time-series, the job
// lifecycle journey store, and the SLO burn-rate alerts. All of it is
// the same kind of side channel as the trace ring — written by the
// event loop at tick/event boundaries, read by HTTP handlers, never
// read back by the scheduling path.

// MetricAdmitP99 is the engine-supplied SLO metric resolved from the
// admission-latency histogram rather than the accounting series.
const MetricAdmitP99 = "admit_p99_seconds"

// recordJourney maps one simulation lifecycle event onto a journey
// step. Called from the EventLog callback with replay already
// filtered; node-only events (boots, failures) carry no job and are
// skipped.
func (f *Fleet) recordJourney(sim *datacenter.Simulation, e energysched.Event) {
	if e.VM < 0 {
		return
	}
	st := obs.JourneyStep{T: e.Time, Node: e.Node, Dest: -1}
	switch e.Kind {
	case datacenter.EvArrival:
		st.Kind = obs.StepSubmitted
	case datacenter.EvPlace:
		st.Kind = obs.StepPlaced
	case datacenter.EvCreated:
		st.Kind = obs.StepRunning
	case datacenter.EvMigrateStart:
		st.Kind, st.Dest = obs.StepMigrate, e.Aux
	case datacenter.EvMigrated:
		st.Kind, st.Node = obs.StepMigrated, e.Aux
	case datacenter.EvRequeued:
		st.Kind = obs.StepRequeued
	case datacenter.EvCompleted:
		st.Kind = obs.StepCompleted
		if vms := sim.VMs(); e.VM < len(vms) {
			v := vms[e.VM]
			st.Satisfaction = sla.Satisfaction(v.ExecTime(), v.Deadline-v.Submit)
			st.EnergyKWh = v.EnergyKWh
			if st.Satisfaction < 100 {
				st.Kind = obs.StepViolated
			}
		}
	default:
		return
	}
	f.journeys.Record(e.VM, st)
}

// SeriesSamples evaluates a parsed series query against the fleet's
// accounting store: retained samples since q.Since, downsampled to
// q.Step. The store is internally locked, so this never touches the
// event loop.
func (f *Fleet) SeriesSamples(q series.Query) []series.Sample {
	return series.Downsample(f.series.Samples(q.Since), q.Step)
}

// SeriesCount returns the number of accounting samples ever recorded
// (retained or evicted).
func (f *Fleet) SeriesCount() uint64 { return f.series.Count() }

// Journey returns one job's recorded lifecycle. For a job still in
// flight the attributed energy is overlaid with the engine's live
// value (journeys only store it at the terminal step).
func (f *Fleet) Journey(id int) (obs.Journey, error) {
	j, ok := f.journeys.Get(id)
	if !ok {
		return obs.Journey{}, errf(http.StatusNotFound, "no journey recorded for job %d", id)
	}
	if j.Outcome == "" {
		// Best effort: a closing fleet serves the record as stored.
		_ = f.do(func() {
			if vms := f.sim.VMs(); id >= 0 && id < len(vms) {
				j.EnergyKWh = vms[id].EnergyKWh
			}
		})
	}
	return j, nil
}

// JourneySummaries lists the retained journeys, oldest first, without
// their steps.
func (f *Fleet) JourneySummaries() []obs.JourneySummary { return f.journeys.Summaries() }

// JourneySeq returns the journey firehose's most recent sequence
// number.
func (f *Fleet) JourneySeq() uint64 { return f.journeys.Seq() }

// JourneySnapshot returns retained firehose step events with sequence
// number > since.
func (f *Fleet) JourneySnapshot(since uint64) []obs.RingEvent {
	return f.journeys.Snapshot(since)
}

// JourneySubscribe attaches a firehose tail consumer, gapless with the
// returned backlog; the third result reports whether the resume point
// was evicted (gap). Release it with JourneyUnsubscribe.
func (f *Fleet) JourneySubscribe(since uint64) (*obs.RingSub, []obs.RingEvent, bool) {
	return f.journeys.Subscribe(since)
}

// JourneyUnsubscribe releases a firehose consumer.
func (f *Fleet) JourneyUnsubscribe(sub *obs.RingSub) { f.journeys.Unsubscribe(sub) }

// Alerts returns every configured SLO's current verdict (nil without
// objectives).
func (f *Fleet) Alerts() []slo.Alert {
	if f.sloEng == nil {
		return nil
	}
	return f.sloEng.Alerts()
}

// AlertsFiring returns the number of objectives currently firing.
func (f *Fleet) AlertsFiring() int {
	if f.sloEng == nil {
		return 0
	}
	return f.sloEng.Firing()
}

// sloValue resolves an objective's metric against the sample being
// observed; the admission-latency p99 comes from the wall-clock
// histogram instead.
func (f *Fleet) sloValue(smp series.Sample, metric string) (float64, bool) {
	if metric == MetricAdmitP99 {
		if f.hists.admit.Count() == 0 {
			return 0, false
		}
		return f.hists.admit.Quantile(0.99), true
	}
	return series.Value(smp, metric)
}

// accountingSamples appends the accounting layer's Prometheus samples:
// the latest series gauges (fleet-wide and per node class), the
// journey-store counters and the SLO burn-rate families. Call only
// from the event loop (gatherMetrics).
func (f *Fleet) accountingSamples(in []metrics.PromSample) []metrics.PromSample {
	smp := f.sim.SampleAt(f.sim.Now())
	in = append(in,
		metrics.PromSample{Name: "energysched_utilization_pct", Help: "Reserved CPU as a percentage of online capacity.", Kind: metrics.PromGauge, Value: smp.Utilization},
		metrics.PromSample{Name: "energysched_series_samples_total", Help: "Accounting samples recorded in the time-series store.", Kind: metrics.PromCounter, Value: float64(f.series.Count())},
		metrics.PromSample{Name: "energysched_journeys_tracked", Help: "Job lifecycle journeys currently retained.", Kind: metrics.PromGauge, Value: float64(f.journeys.Len())},
		metrics.PromSample{Name: "energysched_journey_steps_total", Help: "Journey steps emitted on the firehose.", Kind: metrics.PromCounter, Value: float64(f.journeys.Seq())},
	)
	for _, c := range smp.Classes {
		labels := map[string]string{"class": c.Class}
		in = append(in,
			metrics.PromSample{Name: "energysched_class_power_watts", Help: "Power draw by node class.", Kind: metrics.PromGauge, Labels: labels, Value: c.Watts},
			metrics.PromSample{Name: "energysched_class_energy_kwh_total", Help: "Energy consumed by node class since start.", Kind: metrics.PromCounter, Labels: labels, Value: c.KWh},
			metrics.PromSample{Name: "energysched_class_nodes_on", Help: "Nodes powered on (booting included) by class.", Kind: metrics.PromGauge, Labels: labels, Value: float64(c.On)},
			metrics.PromSample{Name: "energysched_class_nodes_working", Help: "Nodes hosting active VMs by class.", Kind: metrics.PromGauge, Labels: labels, Value: float64(c.Working)},
			metrics.PromSample{Name: "energysched_class_nodes_off", Help: "Nodes powered down by class.", Kind: metrics.PromGauge, Labels: labels, Value: float64(c.Off)},
		)
	}
	for _, a := range f.Alerts() {
		firing := 0.0
		if a.State == "firing" {
			firing = 1
		}
		in = append(in,
			metrics.PromSample{Name: "energysched_slo_burn_rate", Help: "SLO burn rate (violated window fraction over budget).", Kind: metrics.PromGauge,
				Labels: map[string]string{"objective": a.Name, "window": "short"}, Value: a.ShortBurn},
			metrics.PromSample{Name: "energysched_slo_burn_rate", Help: "SLO burn rate (violated window fraction over budget).", Kind: metrics.PromGauge,
				Labels: map[string]string{"objective": a.Name, "window": "long"}, Value: a.LongBurn},
			metrics.PromSample{Name: "energysched_slo_firing", Help: "1 while the objective's burn-rate alert is firing.", Kind: metrics.PromGauge,
				Labels: map[string]string{"objective": a.Name}, Value: firing},
			metrics.PromSample{Name: "energysched_slo_fired_total", Help: "Times the objective's alert fired.", Kind: metrics.PromCounter,
				Labels: map[string]string{"objective": a.Name}, Value: float64(a.FiredTotal)},
			metrics.PromSample{Name: "energysched_slo_cleared_total", Help: "Times the objective's alert cleared.", Kind: metrics.PromCounter,
				Labels: map[string]string{"objective": a.Name}, Value: float64(a.ClearedTotal)},
		)
	}
	return in
}
