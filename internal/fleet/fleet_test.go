package fleet

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"energysched"
)

func testConfig(dir string) Config {
	return Config{
		Policy:           "SB",
		Seed:             1,
		Dir:              dir,
		SnapshotInterval: 8,
		WALSync:          SyncOS, // tests survive process kills, not power loss
	}
}

func submitN(t *testing.T, f *Fleet, n, from int) {
	t.Helper()
	for i := 0; i < n; i++ {
		at := float64(from+i) * 30
		_, err := f.Submit(energysched.JobSpec{
			CPU: 100 + float64((from+i)%3)*100, Mem: 5, Duration: 600, Submit: &at,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", from+i, err)
		}
	}
}

// drainedReport runs the same jobs through an in-memory fleet and
// drains it: the uninterrupted reference.
func drainedReport(t *testing.T, n int) energysched.ServiceReport {
	t.Helper()
	ref, err := Open("ref", Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	submitN(t, ref, n, 0)
	rep, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The durability contract: kill (close without any explicit
// checkpoint), reopen, and the fleet recovers exactly — with restore
// cost bounded by the snapshot interval, proven by the
// replayed-record counter.
func TestFleetRecoveryReplaysOnlyWALTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	f, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 20, 0)
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 20 admissions at interval 8: compactions after 8 and 16, 4 in
	// the WAL tail.
	if st.Snapshots != 2 || st.Records != 4 || st.Appended != 20 {
		t.Fatalf("pre-kill stats = %+v", st)
	}
	f.Close() // like a kill: nothing beyond the already-acked WAL is written

	f2, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	st2, err := f2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Replayed != 4 {
		t.Fatalf("recovery replayed %d records, want only the 4 after the last snapshot (stats %+v)", st2.Replayed, st2)
	}
	if st2.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
	info, err := f2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs != 20 || info.Sealed {
		t.Fatalf("recovered info = %+v", info)
	}
	got, err := f2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if want := drainedReport(t, 20); got != want {
		t.Fatalf("recovered drain diverged:\n got %+v\nwant %+v", got, want)
	}
}

// A torn final record (the crash-mid-append artifact) is dropped with
// a warning: the fleet recovers the acknowledged prefix.
func TestFleetRecoveryToleratesTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	cfg := testConfig(dir)
	cfg.SnapshotInterval = 0 // keep everything in the WAL
	f, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 6, 0)
	f.Close()

	// Corrupt the last record's payload byte.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x55
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warned bool
	cfg.Logf = func(format string, args ...interface{}) { warned = true }
	f2, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !warned {
		t.Error("torn tail recovered without a log line")
	}
	st, err := f2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.TornTail || st.Replayed != 5 {
		t.Fatalf("torn recovery stats = %+v, want TornTail with 5 replayed", st)
	}
	got, err := f2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if want := drainedReport(t, 5); got != want {
		t.Fatalf("torn-tail recovery diverged from the 5-job reference:\n got %+v\nwant %+v", got, want)
	}
}

// A drain (workload seal) is durable too: a sealed fleet recovers
// sealed, with the identical final report.
func TestFleetSealSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "f")
	f, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 5, 0)
	want, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, err := f2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sealed recovery diverged:\n got %+v\nwant %+v", got, want)
	}
	if !got.Final {
		t.Fatal("recovered report is not final")
	}
	if _, err := f2.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 60}); err == nil {
		t.Fatal("sealed fleet accepted a job after recovery")
	}
}

// The manager's manifest recreates every fleet (with its own config)
// on restart, and Delete removes a fleet's durable state for good.
func TestManagerManifestRecovery(t *testing.T) {
	root := t.TempDir()
	mgr, err := NewManager(Options{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("alpha", Config{Policy: "SB", Seed: 1, WALSync: SyncOS}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("beta", Config{Policy: "BF", Seed: 7, WALSync: SyncOS}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("alpha", Config{}); err == nil {
		t.Fatal("duplicate fleet id accepted")
	}
	if _, err := mgr.Create("../evil", Config{}); err == nil {
		t.Fatal("path-traversal fleet id accepted")
	}
	a, _ := mgr.Get("alpha")
	submitN(t, a, 3, 0)
	mgr.Close()

	mgr2, err := NewManager(Options{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	if mgr2.Len() != 2 {
		t.Fatalf("recovered %d fleets, want 2", mgr2.Len())
	}
	b, err := mgr2.Get("beta")
	if err != nil {
		t.Fatal(err)
	}
	info, err := b.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != "BF" || info.Seed != 7 {
		t.Fatalf("beta recovered with config %+v", info)
	}
	a2, err := mgr2.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	ainfo, err := a2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if ainfo.Jobs != 3 {
		t.Fatalf("alpha recovered %d jobs, want 3", ainfo.Jobs)
	}

	if err := mgr2.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "beta")); !os.IsNotExist(err) {
		t.Fatalf("beta's durable dir survived delete: %v", err)
	}
	mgr2.Close()

	mgr3, err := NewManager(Options{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if mgr3.Len() != 1 || !mgr3.Has("alpha") || mgr3.Has("beta") {
		t.Fatalf("after delete+restart: %d fleets", mgr3.Len())
	}
}

// An API restore may change the fleet's scheduling config; a crash
// after that must recover under the restored config (carried by the
// compaction snapshot), not the stale one the fleet was created with.
func TestRecoveryAdoptsRestoredConfig(t *testing.T) {
	snapDir := t.TempDir()

	// Author a BF/seed-5 snapshot with one job.
	author, err := Open("a", Config{Policy: "BF", Seed: 5, SnapshotDir: snapDir})
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, author, 1, 0)
	if _, err := author.Snapshot("bf.snapshot.json"); err != nil {
		t.Fatal(err)
	}
	author.Close()

	// A durable SB fleet restores it, then "crashes".
	dir := filepath.Join(t.TempDir(), "f")
	cfg := testConfig(dir)
	cfg.SnapshotDir = snapDir
	f, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Restore("bf.snapshot.json"); err != nil {
		t.Fatal(err)
	}
	submitN(t, f, 2, 1) // acknowledged under the restored BF config
	f.Close()

	f2, err := Open("f", cfg) // manager would pass the stale SB config
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	info, err := f2.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != "BF" || info.Seed != 5 || info.Jobs != 3 {
		t.Fatalf("recovery ignored the restored config: %+v", info)
	}
}

// TestManagerMaxFleets pins the registry cap: Create returns 429 once
// the cap is reached, deleting a fleet frees a slot, SetMaxFleets(0)
// lifts the cap, and fleets present before the cap was installed are
// never evicted by it.
func TestManagerMaxFleets(t *testing.T) {
	mgr, err := NewManager(Options{MaxFleets: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	if _, err := mgr.Create("a", Config{Policy: "BF"}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("b", Config{Policy: "BF"}); err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Create("c", Config{Policy: "BF"})
	if err == nil {
		t.Fatal("third fleet admitted past a cap of 2")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Status != http.StatusTooManyRequests {
		t.Fatalf("cap error = %v, want status 429", err)
	}
	if mgr.Len() != 2 {
		t.Fatalf("registry len = %d after refused create, want 2", mgr.Len())
	}

	// A freed slot is reusable.
	if err := mgr.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("c", Config{Policy: "BF"}); err != nil {
		t.Fatalf("create after delete: %v", err)
	}

	// Lowering the cap below the current population refuses new
	// creates but keeps existing fleets.
	mgr.SetMaxFleets(1)
	if _, err := mgr.Create("d", Config{Policy: "BF"}); err == nil {
		t.Fatal("create admitted with registry above the cap")
	}
	if mgr.Len() != 2 {
		t.Fatalf("cap evicted fleets: len = %d, want 2", mgr.Len())
	}

	// 0 = unlimited.
	mgr.SetMaxFleets(0)
	if _, err := mgr.Create("d", Config{Policy: "BF"}); err != nil {
		t.Fatalf("create after lifting the cap: %v", err)
	}
}
