package fleet

import (
	"sync"
	"testing"

	"energysched"
)

// benchAdmitRouter measures concurrent admission throughput through
// the K-sharded intake path: each iteration pushes a fixed burst of
// jobs from 8 submitters through a fresh fleet's shard queues, merge
// channel and arbiter into the event loop. The K axis isolates the
// intake fan-in; the work per job (WAL off, in-memory sim) is
// constant, so the delta between K values is pure router overhead or
// relief.
func benchAdmitRouter(b *testing.B, k int) {
	const submitters, perSubmitter = 8, 128
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := Open("bench", Config{Policy: "SB", Seed: 1, AdmitShards: k})
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := 0; j < perSubmitter; j++ {
					if _, err := f.Submit(energysched.JobSpec{
						CPU: 100 + float64((g+j)%3)*100, Mem: 5, Duration: 600,
					}); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		f.Close()
	}
	b.ReportMetric(float64(submitters*perSubmitter), "jobs/iter")
}

func BenchmarkAdmitRouterK1(b *testing.B) { benchAdmitRouter(b, 1) }
func BenchmarkAdmitRouterK2(b *testing.B) { benchAdmitRouter(b, 2) }
func BenchmarkAdmitRouterK4(b *testing.B) { benchAdmitRouter(b, 4) }
