package fleet

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func walJob(id int) *snapJob {
	return &snapJob{ID: id, Submit: float64(id) * 30, Duration: 600, CPU: 100, Mem: 5, DeadlineFactor: 1.5}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, dropped, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || dropped != 0 {
		t.Fatalf("fresh wal: recs=%d dropped=%d", len(recs), dropped)
	}
	for i := 0; i < 10; i++ {
		if err := w.append(walRecord{Kind: walKindAdmit, Job: walJob(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.append(walRecord{Kind: walKindSeal}, true); err != nil {
		t.Fatal(err)
	}
	if w.records != 11 {
		t.Fatalf("records = %d, want 11", w.records)
	}
	w.close()

	w2, recs, dropped, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if dropped != 0 {
		t.Fatal("clean log reported torn")
	}
	if len(recs) != 11 || w2.records != 11 {
		t.Fatalf("reopen: %d records, wal count %d", len(recs), w2.records)
	}
	for i := 0; i < 10; i++ {
		if recs[i].Kind != walKindAdmit || recs[i].Job == nil || recs[i].Job.ID != i {
			t.Fatalf("record %d = %+v", i, recs[i])
		}
	}
	if recs[10].Kind != walKindSeal {
		t.Fatalf("last record = %+v", recs[10])
	}
}

// A crash mid-append leaves a torn final record: recovery must keep
// the intact prefix, truncate the garbage, and stay appendable.
func TestWALTornTailTruncatedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.append(walRecord{Kind: walKindAdmit, Job: walJob(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	goodSize, _ := w.tell()
	w.close()

	// Simulate the torn append: half a record's worth of bytes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{42, 0, 0, 0, 99, 99}) // short header+payload fragment
	f.Close()

	w2, recs, dropped, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("torn tail not reported")
	}
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	if off, _ := w2.tell(); off != goodSize {
		t.Fatalf("append offset %d, want truncated to %d", off, goodSize)
	}
	// The log must be appendable again after truncation.
	if err := w2.append(walRecord{Kind: walKindAdmit, Job: walJob(5)}, true); err != nil {
		t.Fatal(err)
	}
	w2.close()
	_, recs, dropped, err = openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(recs) != 6 {
		t.Fatalf("after repair+append: dropped=%d records=%d", dropped, len(recs))
	}
}

// Bit rot in the final record's payload must be caught by the CRC.
func TestWALTornTailCRCMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append(walRecord{Kind: walKindAdmit, Job: walJob(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	w.close()

	// Flip one byte in the last record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, dropped, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || len(recs) != 2 {
		t.Fatalf("corrupt tail: dropped=%d records=%d, want torn with 2 intact", dropped, len(recs))
	}
}

// A record whose length prefix is absurd must be treated as tail
// corruption, not attempted as an allocation.
func TestWALTornTailBogusLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Kind: walKindAdmit, Job: walJob(0)}, true); err != nil {
		t.Fatal(err)
	}
	w.close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30) // 1 GiB "record"
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(nil, walCRCTable))
	f.Write(hdr[:])
	f.Close()
	_, recs, dropped, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || len(recs) != 1 {
		t.Fatalf("bogus length: dropped=%d records=%d", dropped, len(recs))
	}
}

func TestWALRewindAndReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := openWAL(path, SyncOS, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	w.append(walRecord{Kind: walKindAdmit, Job: walJob(0)}, true)
	off, n := w.tell()
	w.append(walRecord{Kind: walKindAdmit, Job: walJob(1)}, false)
	w.append(walRecord{Kind: walKindAdmit, Job: walJob(2)}, false)
	if err := w.rewind(off, n); err != nil {
		t.Fatal(err)
	}
	if w.records != 1 {
		t.Fatalf("after rewind: %d records", w.records)
	}
	// An append after rewind lands where the rolled-back batch was.
	if err := w.append(walRecord{Kind: walKindSeal}, true); err != nil {
		t.Fatal(err)
	}
	w.close()
	_, recs, dropped, err := openWAL(path, SyncOS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(recs) != 2 || recs[1].Kind != walKindSeal {
		t.Fatalf("after rewind+append: dropped=%d recs=%+v", dropped, recs)
	}

	w2, _, _, err := openWAL(path, SyncOS, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if err := w2.reset(); err != nil {
		t.Fatal(err)
	}
	if w2.records != 0 {
		t.Fatalf("after reset: %d records", w2.records)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("after reset: %d bytes on disk", st.Size())
	}
}
