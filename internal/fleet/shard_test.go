package fleet

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"energysched"
)

// The admission router contract: K shards are a pure ingest-throughput
// knob (byte-identical reports at any K), the rate limit and the
// bounded shard queues shed with honest 429 + Retry-After, and no
// accepted job is ever dropped under concurrency.

func TestClusterForPartition(t *testing.T) {
	// k=1 is the identity shard.
	for id := uint64(0); id < 100; id++ {
		if got := clusterFor(id, 1); got != 0 {
			t.Fatalf("clusterFor(%d, 1) = %d, want 0", id, got)
		}
	}
	// The finalizer must be deterministic, in range, and actually
	// spread consecutive sequence numbers over every shard.
	const k = 4
	var hit [k]int
	for id := uint64(1); id <= 1000; id++ {
		s := clusterFor(id, k)
		if s < 0 || s >= k {
			t.Fatalf("clusterFor(%d, %d) = %d out of range", id, k, s)
		}
		if s != clusterFor(id, k) {
			t.Fatalf("clusterFor(%d, %d) is not deterministic", id, k)
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d never hit across 1000 consecutive ids: %v", s, hit)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	if tb := newTokenBucket(0, 10); tb != nil {
		t.Fatal("rate 0 should disable the bucket")
	}
	tb := newTokenBucket(10, 5)
	if ra, ok := tb.take(5); !ok || ra != 0 {
		t.Fatalf("full bucket refused a burst-sized batch (ra=%d ok=%v)", ra, ok)
	}
	ra, ok := tb.take(1)
	if ok {
		t.Fatal("empty bucket admitted a job")
	}
	if ra < 1 {
		t.Fatalf("refusal carried Retry-After %d, want >= 1", ra)
	}
	// Refill: at 10 jobs/sec, 300ms buys ~3 tokens.
	time.Sleep(300 * time.Millisecond)
	if _, ok := tb.take(1); !ok {
		t.Fatal("bucket did not refill")
	}
}

func TestTokenBucketOversizedBatchGoesIntoDebt(t *testing.T) {
	tb := newTokenBucket(10, 5)
	// A batch larger than the burst admits against a full bucket (need
	// capped at burst) instead of being rejected forever...
	if _, ok := tb.take(20); !ok {
		t.Fatal("full bucket rejected an oversized batch")
	}
	// ...and the resulting debt throttles what follows.
	if _, ok := tb.take(1); ok {
		t.Fatal("bucket admitted straight after an oversized batch")
	}
}

// TestRateLimitShedsWith429: a rate-limited fleet sheds over-limit
// submits with a 429 fleet.Error carrying a Retry-After hint, and the
// shed counter surfaces on the metrics samples.
func TestRateLimitShedsWith429(t *testing.T) {
	f, err := Open("rl", Config{Policy: "SB", Seed: 1, RateLimit: 5, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	submitN(t, f, 2, 0) // drains the burst
	at := 2.0 * 30
	_, serr := f.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600, Submit: &at})
	var fe *Error
	if !errors.As(serr, &fe) || fe.Status != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit error = %v, want a 429 fleet.Error", serr)
	}
	if fe.RetryAfter < 1 {
		t.Fatalf("429 carried Retry-After %d, want >= 1", fe.RetryAfter)
	}
	if f.router.shedRate.Load() == 0 {
		t.Fatal("rate shed not counted")
	}
	// The shed job was never admitted: the fleet still holds exactly
	// the acknowledged two.
	info, err := f.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs != 2 {
		t.Fatalf("fleet holds %d jobs after a shed, want 2", info.Jobs)
	}
}

// TestAdmitQueueShedsWith429: with the event loop wedged, a bounded
// shard queue fills and further submits shed with 429 instead of
// queueing without bound.
func TestAdmitQueueShedsWith429(t *testing.T) {
	f, err := Open("bq", Config{Policy: "SB", Seed: 1, AdmitShards: 1, AdmitQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Wedge the event loop so the arbiter cannot drain: queued requests
	// pile up in the (depth-1) shard queue.
	gate := make(chan struct{})
	started := make(chan struct{})
	go f.do(func() { close(started); <-gate })
	<-started

	// Capacity while wedged: 1 in the arbiter's hand, 1 in the merge
	// buffer, 1 in the shard queue. The rest must shed.
	const inflight = 8
	var wg sync.WaitGroup
	var shed atomic.Int64
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.Submit(energysched.JobSpec{CPU: 100, Mem: 5, Duration: 600})
			errs <- err
		}()
	}
	deadline := time.After(10 * time.Second)
	for shed.Load() == 0 {
		select {
		case err := <-errs:
			var fe *Error
			if errors.As(err, &fe) && fe.Status == http.StatusTooManyRequests {
				if fe.RetryAfter != 1 {
					t.Errorf("queue-full 429 carried Retry-After %d, want 1", fe.RetryAfter)
				}
				shed.Add(1)
			}
		case <-deadline:
			t.Fatal("no queue-full 429 within 10s of wedging the event loop")
		}
	}
	close(gate) // unwedge; the remaining submits complete normally
	wg.Wait()
	if f.router.shedQueue.Load() == 0 {
		t.Fatal("queue shed not counted")
	}
}

// TestShardedAdmissionByteIdenticalToK1: the tentpole oracle at the
// fleet level — the same submit sequence through K∈{2,4} admission
// shards drains byte-identical to K=1.
func TestShardedAdmissionByteIdenticalToK1(t *testing.T) {
	run := func(k int) energysched.ServiceReport {
		f, err := Open("k", Config{Policy: "SB", Seed: 1, AdmitShards: k})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		submitN(t, f, 120, 0)
		rep, err := f.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(1)
	for _, k := range []int{2, 4} {
		if got := run(k); got != want {
			t.Fatalf("K=%d drained report diverged from K=1:\n got %+v\nwant %+v", k, got, want)
		}
	}
}

// TestConcurrentShardedSubmitDropsNothing: N goroutines hammering a
// K=4 fleet with nil-Submit jobs — every acknowledged admission must
// land (zero dropped accepted jobs), across every shard.
func TestConcurrentShardedSubmitDropsNothing(t *testing.T) {
	f, err := Open("cc", Config{Policy: "SB", Seed: 1, AdmitShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// nil Submit = "virtual now": always admissible, so every
				// acknowledgment is an accepted job.
				_, err := f.Submit(energysched.JobSpec{
					CPU: 100 + float64((g+i)%3)*100, Mem: 5, Duration: 600,
				})
				if err != nil {
					t.Errorf("worker %d submit %d: %v", g, i, err)
					return
				}
				accepted.Add(1)
			}
		}(g)
	}
	wg.Wait()
	info, err := f.Info()
	if err != nil {
		t.Fatal(err)
	}
	if int64(info.Jobs) != accepted.Load() || accepted.Load() != workers*perWorker {
		t.Fatalf("fleet holds %d jobs, %d acknowledged, %d submitted — accepted jobs were dropped",
			info.Jobs, accepted.Load(), workers*perWorker)
	}
	if f.router.merged.Load() < workers*perWorker {
		t.Fatalf("arbiter merged %d requests, want >= %d", f.router.merged.Load(), workers*perWorker)
	}
}

// TestShardFaultMidBatchStaysAtomicAndByteIdentical is the satellite
// fault-coverage test: with K=4 admission shards, a WAL disk-full
// fault lands on one request's batch while requests on other shards
// succeed. The faulted batch must reject atomically (no partial
// admission), and a kill/reopen must recover byte-identical to a K=1
// fleet fed only the surviving batches.
func TestShardFaultMidBatchStaysAtomicAndByteIdentical(t *testing.T) {
	dir := t.TempDir() + "/f"
	var syncs atomic.Int64
	const faultOn = 3 // fail the 3rd batch's WAL flush (one flush per request)
	cfg := testConfig(dir)
	cfg.AdmitShards = 4
	cfg.WALFault = func(op string) error {
		if op == "sync" && syncs.Add(1) == faultOn {
			return errors.New("no space left on device")
		}
		return nil
	}
	f, err := Open("f", cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Five 3-job batches with increasing submit times; sequential, so
	// the ingest sequence (and the flush order) is deterministic and
	// batch 3 — and only batch 3 — hits the fault whatever shard its
	// hash picks.
	batch := func(from int) []energysched.JobSpec {
		specs := make([]energysched.JobSpec, 3)
		for i := range specs {
			at := float64(from+i) * 30
			specs[i] = energysched.JobSpec{
				CPU: 100 + float64((from+i)%3)*100, Mem: 5, Duration: 600, Submit: &at,
			}
		}
		return specs
	}
	var survived [][]energysched.JobSpec
	for b := 0; b < 5; b++ {
		specs := batch(b * 3)
		_, err := f.SubmitBatch(specs)
		if b == faultOn-1 {
			var fe *Error
			if !errors.As(err, &fe) || fe.Status != http.StatusInternalServerError {
				t.Fatalf("faulted batch error = %v, want a 500", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		survived = append(survived, specs)
	}
	// Atomicity: 4 surviving batches of 3 — none of the faulted batch's
	// jobs leaked in.
	info, err := f.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs != 12 {
		t.Fatalf("fleet holds %d jobs after the mid-batch fault, want 12", info.Jobs)
	}
	f.Close()

	// Kill/reopen recovery must be byte-identical to a K=1 in-memory
	// fleet fed only the surviving batches.
	f2, err := Open("f", testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, err := f2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open("ref", Config{Policy: "SB", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, specs := range survived {
		if _, err := ref.SubmitBatch(specs); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-fault recovery diverged from the surviving batches:\n got %+v\nwant %+v", got, want)
	}
}
