package fleet

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"energysched"
	"energysched/internal/metrics"
)

// Intra-fleet admission sharding and ingest backpressure (PR 10).
//
// A fleet's event loop serializes everything, which is what makes the
// simulation deterministic — but it also means one hot fleet absorbs
// ingest exactly as fast as one goroutine can hand requests through
// do(). The admission router in this file puts K intake loops in
// front of that event loop: incoming requests are hash-partitioned
// across K bounded shard queues (clusterFor), each shard forwards
// independently, and a single merge arbiter applies everything that is
// concurrently in flight in one event-loop turn, in a deterministic
// order (earliest submit time first, ingest sequence as the tie
// break). Sequential submitters therefore see exactly the K=1 order —
// reports, traces, journeys and series stay byte-identical at any
// shard count — while N concurrent submitters amortize their do()
// hand-offs into a single turn.
//
// The same entry point is where ingest hygiene lives: an optional
// token-bucket rate limit (Config.RateLimit/RateBurst) and the bounded
// shard queues both shed with 429 + Retry-After through fleet.Error
// instead of queueing without bound. A shed request was never
// admitted, never logged, and never acknowledged — zero accepted jobs
// are dropped under overload.

// clusterFor returns the admission shard for a request identifier by
// hashing it onto [0, k): the flow-go cluster-assignment idiom, using
// the 64-bit finalizer so consecutive ingest sequence numbers spread
// across shards instead of striping.
func clusterFor(id uint64, k int) int {
	if k <= 1 {
		return 0
	}
	id ^= id >> 33
	id *= 0xff51afd7ed558ccd
	id ^= id >> 33
	id *= 0xc4ceb9fe1a85ec53
	id ^= id >> 33
	return int(id % uint64(k))
}

// tokenBucket is a wall-clock token bucket: take withdraws tokens for
// a batch, refilling at rate tokens/second up to burst.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket returns nil when rate <= 0 (unlimited). A burst <= 0
// defaults to one second's worth of tokens (at least 1), so a full
// bucket always admits at least one job.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Ceil(rate)
	}
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: time.Now()}
}

// take withdraws n tokens. A batch larger than the burst is admitted
// whenever the bucket is full — the bucket goes into debt and later
// requests wait it out — so a single oversized batch cannot be
// rejected forever. On refusal it returns the Retry-After hint in
// whole seconds (>= 1).
func (tb *tokenBucket) take(n int) (retryAfter int, ok bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens = math.Min(tb.burst, tb.tokens+now.Sub(tb.last).Seconds()*tb.rate)
	tb.last = now
	need := float64(n)
	if need > tb.burst {
		need = tb.burst
	}
	if tb.tokens >= need {
		tb.tokens -= float64(n)
		return 0, true
	}
	ra := int(math.Ceil((need - tb.tokens) / tb.rate))
	if ra < 1 {
		ra = 1
	}
	return ra, false
}

// admitRequest is one Submit/SubmitBatch in flight through the router.
type admitRequest struct {
	specs []energysched.JobSpec
	// seq is the monotone ingest sequence: the hash-partition input and
	// the arbiter's tie break.
	seq uint64
	// submit is the arbiter's primary sort key: the batch's first
	// submit time, -Inf for a nil-Submit ("now") request.
	submit float64
	// reply is buffered (capacity 1) so the arbiter never blocks on a
	// submitter that already gave up.
	reply chan admitReply
}

type admitReply struct {
	out []energysched.JobStatus
	err error
}

// arbiterKey derives a request's merge-order sort key. Batch submit
// times are validated non-decreasing, so the first spec carries the
// batch's earliest time; a nil Submit means "the current virtual now",
// which must order before any explicit future submit or applying the
// future batch first would advance the clock past it (max pacing) and
// manufacture a spurious 409.
func arbiterKey(specs []energysched.JobSpec) float64 {
	if len(specs) == 0 || specs[0].Submit == nil {
		return math.Inf(-1)
	}
	return *specs[0].Submit
}

// maxMergeTurn bounds how many requests one arbiter turn applies, so a
// firehose of concurrent submitters cannot starve the event loop's
// other callers (reads, pacing ticks) indefinitely.
const maxMergeTurn = 64

// admitRouter is the sharded admission front end of one fleet.
type admitRouter struct {
	f        *Fleet
	queues   []chan *admitRequest
	merge    chan *admitRequest
	bucket   *tokenBucket // nil = unlimited
	seq      atomic.Uint64
	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	shedRate   atomic.Uint64 // requests rejected by the token bucket
	shedQueue  atomic.Uint64 // requests rejected by a full shard queue
	mergeTurns atomic.Uint64 // event-loop turns the arbiter executed
	merged     atomic.Uint64 // requests applied across those turns
}

func newAdmitRouter(f *Fleet) *admitRouter {
	k := f.cfg.AdmitShards
	r := &admitRouter{
		f:      f,
		queues: make([]chan *admitRequest, k),
		merge:  make(chan *admitRequest, k),
		bucket: newTokenBucket(f.cfg.RateLimit, f.cfg.RateBurst),
		stopc:  make(chan struct{}),
	}
	for i := range r.queues {
		r.queues[i] = make(chan *admitRequest, f.cfg.AdmitQueue)
	}
	r.wg.Add(k + 1)
	for i := 0; i < k; i++ {
		go r.shardLoop(i)
	}
	go r.arbiterLoop()
	return r
}

// submit runs one request through rate limiting, shard queueing and
// the merge arbiter, and waits for the event loop's answer.
func (r *admitRouter) submit(specs []energysched.JobSpec) ([]energysched.JobStatus, error) {
	if r.bucket != nil && len(specs) > 0 {
		if ra, ok := r.bucket.take(len(specs)); !ok {
			r.shedRate.Add(1)
			return nil, &Error{Status: http.StatusTooManyRequests,
				Msg: "admission rate limit exceeded", RetryAfter: ra}
		}
	}
	req := &admitRequest{
		specs:  specs,
		seq:    r.seq.Add(1),
		submit: arbiterKey(specs),
		reply:  make(chan admitReply, 1),
	}
	q := r.queues[clusterFor(req.seq, len(r.queues))]
	select {
	case q <- req:
	default:
		r.shedQueue.Add(1)
		return nil, &Error{Status: http.StatusTooManyRequests,
			Msg: "admission shard queue full", RetryAfter: 1}
	}
	select {
	case rep := <-req.reply:
		return rep.out, rep.err
	case <-r.f.stopc:
		return nil, ErrClosed
	}
}

// shardLoop is one intake shard: it drains its bounded queue into the
// merge channel. The hop looks trivial, but it is what makes the queue
// bound (and so the 429 shed decision) per-shard instead of global.
func (r *admitRouter) shardLoop(i int) {
	defer r.wg.Done()
	for {
		select {
		case req := <-r.queues[i]:
			select {
			case r.merge <- req:
			case <-r.stopc:
				req.reply <- admitReply{err: ErrClosed}
				return
			}
		case <-r.stopc:
			return
		}
	}
}

// arbiterLoop merges the shards back into the event loop: every batch
// of concurrently-ready requests is applied in one do() turn, in
// deterministic order.
func (r *admitRouter) arbiterLoop() {
	defer r.wg.Done()
	for {
		select {
		case first := <-r.merge:
			r.applyTurn(first)
		case <-r.stopc:
			return
		}
	}
}

func (r *admitRouter) applyTurn(first *admitRequest) {
	batch := []*admitRequest{first}
gather:
	for len(batch) < maxMergeTurn {
		select {
		case req := <-r.merge:
			batch = append(batch, req)
		default:
			break gather
		}
	}
	// Deterministic arbitration: earliest submit time first, ingest
	// sequence as the tie break. Under max pacing, applying a
	// later-submit request first would advance virtual time past an
	// earlier-submit one and reject it with a 409 that K=1 sequential
	// submission would never produce.
	sort.Slice(batch, func(a, b int) bool {
		if batch[a].submit != batch[b].submit {
			return batch[a].submit < batch[b].submit
		}
		return batch[a].seq < batch[b].seq
	})
	r.mergeTurns.Add(1)
	r.merged.Add(uint64(len(batch)))
	// Both reply sends below are non-blocking: when the fleet closes
	// mid-turn, do() returns ErrClosed while fn may still be running on
	// the event loop, so the turn and the fallback can race to answer
	// the same request — the buffered channel takes the first, the
	// select/default drops the loser, and the submitter is already gone
	// on ErrClosed anyway.
	err := r.f.do(func() {
		for _, req := range batch {
			out, aerr := r.f.admit(req.specs)
			select {
			case req.reply <- admitReply{out: out, err: aerr}:
			default:
			}
		}
	})
	if err != nil {
		for _, req := range batch {
			select {
			case req.reply <- admitReply{err: err}:
			default:
			}
		}
	}
}

// stop terminates the shard loops and the arbiter; idempotent, like
// every other close path Fleet.Close touches. Callers must have closed
// the fleet's stopc first so in-flight do() turns unblock.
func (r *admitRouter) stop() {
	r.stopOnce.Do(func() { close(r.stopc) })
	r.wg.Wait()
}

// metricsSamples appends the router's Prometheus samples: per-shard
// queue depth, shed counters by reason, and merge-turn amortization.
func (r *admitRouter) metricsSamples(in []metrics.PromSample) []metrics.PromSample {
	for i, q := range r.queues {
		in = append(in, metrics.PromSample{
			Name: "energysched_admit_queue_depth", Help: "Requests waiting in each admission shard's bounded queue.",
			Kind: metrics.PromGauge, Labels: map[string]string{"shard": strconv.Itoa(i)}, Value: float64(len(q)),
		})
	}
	in = append(in,
		metrics.PromSample{Name: "energysched_admit_shards", Help: "Admission intake shards serving this fleet.",
			Kind: metrics.PromGauge, Value: float64(len(r.queues))},
		metrics.PromSample{Name: "energysched_admit_queue_capacity", Help: "Bounded depth of each admission shard queue.",
			Kind: metrics.PromGauge, Value: float64(r.f.cfg.AdmitQueue)},
		metrics.PromSample{Name: "energysched_admit_shed_total", Help: "Admission requests shed with 429 by reason.",
			Kind: metrics.PromCounter, Labels: map[string]string{"reason": "rate"}, Value: float64(r.shedRate.Load())},
		metrics.PromSample{Name: "energysched_admit_shed_total", Help: "Admission requests shed with 429 by reason.",
			Kind: metrics.PromCounter, Labels: map[string]string{"reason": "queue"}, Value: float64(r.shedQueue.Load())},
		metrics.PromSample{Name: "energysched_admit_merge_turns_total", Help: "Event-loop turns executed by the admission merge arbiter.",
			Kind: metrics.PromCounter, Value: float64(r.mergeTurns.Load())},
		metrics.PromSample{Name: "energysched_admit_merged_requests_total", Help: "Admission requests applied across arbiter merge turns.",
			Kind: metrics.PromCounter, Value: float64(r.merged.Load())},
	)
	return in
}
