package fleet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The durable admission log. Every state-changing admission decision
// (an admitted job, a workload seal) is appended to a per-fleet
// write-ahead log before it is applied to the in-memory simulation, so
// a crashed daemon recovers by loading the last compaction snapshot
// and replaying only the WAL tail — restore cost is bounded by the
// snapshot interval instead of growing with the fleet's whole history.
//
// On-disk format: a sequence of length-prefixed records,
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// where the payload is one JSON-encoded walRecord. The CRC (Castagnoli
// polynomial, the checksum used by ext4 metadata and Kafka logs) makes
// a torn final record — the expected artifact of a crash mid-append —
// detectable: recovery keeps the longest valid prefix, truncates the
// rest, and logs a warning instead of refusing to start.
//
// Since PR 6 the same framing is also the replication transport: a
// leader streams WAL records to a warm-standby follower inside
// identical length+CRC frames (internal/replication), so a torn or
// bit-flipped frame on the wire is detected exactly like a torn tail
// on disk. FrameReader is the shared streaming decoder for both.

// walHeaderSize is the fixed per-frame header: length + CRC.
const walHeaderSize = 8

// walMaxRecord bounds a single frame; a longer length prefix is
// treated as corruption rather than attempted as an allocation.
const walMaxRecord = 16 << 20

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTornFrame is returned by FrameReader.Next when the stream ends
// mid-frame or a frame fails its CRC: the bytes from the current
// offset on cannot be trusted. On disk this is a torn tail (recovery
// truncates it); on the replication transport it is a damaged or
// half-delivered frame (the follower reconnects and resumes at its
// last applied record offset).
var ErrTornFrame = errors.New("fleet: torn or corrupt frame")

// EncodeFrame wraps payload in the WAL's length+CRC framing. The same
// encoding is used for on-disk WAL records and replication frames.
func EncodeFrame(payload []byte) []byte {
	buf := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, walCRCTable))
	copy(buf[walHeaderSize:], payload)
	return buf
}

// FrameReader is a streaming iterator over length-prefixed CRC-checked
// frames: the WAL file during recovery, or a replication stream on the
// wire. It consumes the underlying reader frame by frame, tracking the
// byte offset of the end of the last intact frame — which is exactly
// the resume point after a torn tail (truncate there) or a dropped
// connection (reconnect and continue from the last applied record).
type FrameReader struct {
	r      io.Reader
	offset int64 // end of the last intact frame
	frames int   // intact frames returned so far
}

// NewFrameReader returns an iterator reading frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next returns the next frame's payload. It returns io.EOF at a clean
// frame boundary and ErrTornFrame when the stream ends mid-frame, the
// length prefix is absurd, or the payload fails its CRC — in every
// torn case Offset still reports the end of the last intact frame.
func (fr *FrameReader) Next() ([]byte, error) {
	var header [walHeaderSize]byte
	if _, err := io.ReadFull(fr.r, header[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean end
		}
		return nil, ErrTornFrame // short header
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	sum := binary.LittleEndian.Uint32(header[4:8])
	if length == 0 || length > walMaxRecord {
		return nil, ErrTornFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, ErrTornFrame // short payload
	}
	if crc32.Checksum(payload, walCRCTable) != sum {
		return nil, ErrTornFrame // corrupt payload
	}
	fr.offset += int64(walHeaderSize) + int64(length)
	fr.frames++
	return payload, nil
}

// Offset returns the byte offset of the end of the last intact frame.
func (fr *FrameReader) Offset() int64 { return fr.offset }

// Frames returns the number of intact frames returned so far.
func (fr *FrameReader) Frames() int { return fr.frames }

// Sync policies for WAL appends.
const (
	// SyncAlways fsyncs after every append (and every batch): an
	// acknowledged admission survives power loss. The default.
	SyncAlways = "always"
	// SyncOS leaves flushing to the OS page cache: an acknowledged
	// admission survives a process crash (SIGKILL) but not power loss.
	SyncOS = "os"
)

// walRecord is one logical WAL entry.
type walRecord struct {
	// Kind is "admit" (Job set) or "seal" (workload drained).
	Kind string   `json:"kind"`
	Job  *snapJob `json:"job,omitempty"`
}

const (
	walKindAdmit = "admit"
	walKindSeal  = "seal"
)

// ErrTornWrite is the chaos harness's injected append failure: when a
// Config.WALFault hook returns it for an "append" op, the wal writes
// only a prefix of the frame before failing — the on-disk artifact of
// a crash mid-write — so recovery's torn-tail truncation is exercised
// against a live fleet instead of a hand-built file.
var ErrTornWrite = errors.New("fleet: injected torn write")

// wal is an open write-ahead log positioned for appends.
type wal struct {
	f       *os.File
	path    string
	sync    bool
	records int // records currently in the file
	// fault, when set, is consulted before every append ("append"),
	// fsync ("sync") and rollback ("rewind"); a non-nil return aborts
	// the op with that error. Fault injection only — nil in production.
	fault func(op string) error
}

// openWAL opens (creating if needed) the log at path, replays every
// intact record, truncates any torn tail, and returns the log
// positioned for appends plus the recovered records. dropped is the
// number of torn/corrupt tail bytes that had to be discarded (0 for a
// clean log).
func openWAL(path string, syncPolicy string, fault func(op string) error) (w *wal, recs []walRecord, dropped int64, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("fleet: opening wal: %w", err)
	}
	recs, good, dropped, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if dropped > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("fleet: truncating torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("fleet: seeking wal: %w", err)
	}
	return &wal{
		f:       f,
		path:    path,
		sync:    syncPolicy != SyncOS,
		records: len(recs),
		fault:   fault,
	}, recs, dropped, nil
}

// scanWAL streams records from the start of f via a FrameReader,
// returning the decoded records, the byte offset of the end of the
// last intact record, and how many trailing bytes past that offset
// would have to be discarded.
func scanWAL(f *os.File) (recs []walRecord, good int64, dropped int64, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("fleet: sizing wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("fleet: seeking wal: %w", err)
	}
	fr := NewFrameReader(bufio.NewReader(f))
	for {
		payload, err := fr.Next()
		if err != nil {
			// Clean EOF or a torn tail: either way the intact prefix
			// ends at fr.Offset() and everything past it is damage.
			return recs, fr.Offset(), size - fr.Offset(), nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// CRC passed but not our JSON: stop at the intact prefix.
			good := fr.Offset() - int64(walHeaderSize) - int64(len(payload))
			return recs, good, size - good, nil
		}
		recs = append(recs, rec)
	}
}

// append encodes and writes one record. With the always policy the
// record is fsynced before append returns; call flush after a batch
// when appending several records in one event-loop turn.
func (w *wal) append(rec walRecord, flush bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: encoding wal record: %w", err)
	}
	return w.appendPayload(payload, flush)
}

// appendPayload writes one pre-marshaled record payload. The admission
// path marshals each record exactly once and reuses the bytes for the
// WAL append and the replication feed, so leader and follower logs are
// byte-identical.
func (w *wal) appendPayload(payload []byte, flush bool) error {
	frame := EncodeFrame(payload)
	if w.fault != nil {
		if err := w.fault("append"); err != nil {
			if errors.Is(err, ErrTornWrite) {
				// Leave half a frame behind, like a crash mid-write: the
				// record count is NOT bumped, so rollback rewinds over
				// the damage — and if rollback is also failed, recovery
				// must truncate it.
				w.f.Write(frame[:len(frame)/2])
			}
			return fmt.Errorf("fleet: appending wal record: %w", err)
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("fleet: appending wal record: %w", err)
	}
	w.records++
	if flush {
		return w.flush()
	}
	return nil
}

// flush applies the sync policy after one or more appends.
func (w *wal) flush() error {
	if w.fault != nil {
		// Consulted regardless of policy: a disk-full ENOSPC bites the
		// buffered write path too, not just the fsync.
		if err := w.fault("sync"); err != nil {
			return fmt.Errorf("fleet: syncing wal: %w", err)
		}
	}
	if !w.sync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing wal: %w", err)
	}
	return nil
}

// tell returns the current append offset and record count, for
// rollback of a partially-appended batch.
func (w *wal) tell() (int64, int) {
	off, _ := w.f.Seek(0, io.SeekCurrent)
	return off, w.records
}

// rewind truncates the log back to a tell()-saved position, undoing
// appends that could not be completed or acknowledged.
func (w *wal) rewind(off int64, records int) error {
	if w.fault != nil {
		if err := w.fault("rewind"); err != nil {
			return fmt.Errorf("fleet: rolling back wal: %w", err)
		}
	}
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("fleet: rolling back wal: %w", err)
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("fleet: rolling back wal: %w", err)
	}
	w.records = records
	return nil
}

// reset discards every record: called after a compaction snapshot has
// been durably published, at which point the log's records are
// redundant with the snapshot.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("fleet: compacting wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("fleet: compacting wal: %w", err)
	}
	w.records = 0
	return w.flush()
}

// close releases the file handle.
func (w *wal) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
