package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The durable admission log. Every state-changing admission decision
// (an admitted job, a workload seal) is appended to a per-fleet
// write-ahead log before it is applied to the in-memory simulation, so
// a crashed daemon recovers by loading the last compaction snapshot
// and replaying only the WAL tail — restore cost is bounded by the
// snapshot interval instead of growing with the fleet's whole history.
//
// On-disk format: a sequence of length-prefixed records,
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// where the payload is one JSON-encoded walRecord. The CRC (Castagnoli
// polynomial, the checksum used by ext4 metadata and Kafka logs) makes
// a torn final record — the expected artifact of a crash mid-append —
// detectable: recovery keeps the longest valid prefix, truncates the
// rest, and logs a warning instead of refusing to start.

// walHeaderSize is the fixed per-record header: length + CRC.
const walHeaderSize = 8

// walMaxRecord bounds a single record; a longer length prefix is
// treated as tail corruption rather than attempted as an allocation.
const walMaxRecord = 16 << 20

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Sync policies for WAL appends.
const (
	// SyncAlways fsyncs after every append (and every batch): an
	// acknowledged admission survives power loss. The default.
	SyncAlways = "always"
	// SyncOS leaves flushing to the OS page cache: an acknowledged
	// admission survives a process crash (SIGKILL) but not power loss.
	SyncOS = "os"
)

// walRecord is one logical WAL entry.
type walRecord struct {
	// Kind is "admit" (Job set) or "seal" (workload drained).
	Kind string   `json:"kind"`
	Job  *snapJob `json:"job,omitempty"`
}

const (
	walKindAdmit = "admit"
	walKindSeal  = "seal"
)

// wal is an open write-ahead log positioned for appends.
type wal struct {
	f       *os.File
	path    string
	sync    bool
	records int // records currently in the file
}

// openWAL opens (creating if needed) the log at path, replays every
// intact record, truncates any torn tail, and returns the log
// positioned for appends plus the recovered records. torn reports
// whether a corrupt tail was dropped.
func openWAL(path string, syncPolicy string) (w *wal, recs []walRecord, torn bool, err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("fleet: opening wal: %w", err)
	}
	recs, good, torn, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, false, err
	}
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("fleet: truncating torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("fleet: seeking wal: %w", err)
	}
	return &wal{
		f:       f,
		path:    path,
		sync:    syncPolicy != SyncOS,
		records: len(recs),
	}, recs, torn, nil
}

// scanWAL reads records from the start of f, returning the decoded
// records, the byte offset of the end of the last intact record, and
// whether trailing bytes past that offset had to be discarded.
func scanWAL(f *os.File) (recs []walRecord, good int64, torn bool, err error) {
	r := io.Reader(f)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("fleet: seeking wal: %w", err)
	}
	var header [walHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return recs, good, torn, nil // clean end
			}
			return recs, good, true, nil // short header: torn tail
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > walMaxRecord {
			return recs, good, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, good, true, nil // short payload: torn tail
		}
		if crc32.Checksum(payload, walCRCTable) != sum {
			return recs, good, true, nil // corrupt record: stop at the prefix
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, true, nil // CRC passed but not our JSON
		}
		recs = append(recs, rec)
		good += int64(walHeaderSize) + int64(length)
	}
}

// append encodes and writes one record. With the always policy the
// record is fsynced before append returns; call flush after a batch
// when appending several records in one event-loop turn.
func (w *wal) append(rec walRecord, flush bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: encoding wal record: %w", err)
	}
	var header [walHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, walCRCTable))
	if _, err := w.f.Write(header[:]); err != nil {
		return fmt.Errorf("fleet: appending wal record: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("fleet: appending wal record: %w", err)
	}
	w.records++
	if flush {
		return w.flush()
	}
	return nil
}

// flush applies the sync policy after one or more appends.
func (w *wal) flush() error {
	if !w.sync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing wal: %w", err)
	}
	return nil
}

// tell returns the current append offset and record count, for
// rollback of a partially-appended batch.
func (w *wal) tell() (int64, int) {
	off, _ := w.f.Seek(0, io.SeekCurrent)
	return off, w.records
}

// rewind truncates the log back to a tell()-saved position, undoing
// appends that could not be completed or acknowledged.
func (w *wal) rewind(off int64, records int) error {
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("fleet: rolling back wal: %w", err)
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("fleet: rolling back wal: %w", err)
	}
	w.records = records
	return nil
}

// reset discards every record: called after a compaction snapshot has
// been durably published, at which point the log's records are
// redundant with the snapshot.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("fleet: compacting wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("fleet: compacting wal: %w", err)
	}
	w.records = 0
	return w.flush()
}

// close releases the file handle.
func (w *wal) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
