package fleet

import (
	"encoding/json"
	"sync"
	"time"

	"energysched/internal/datacenter"
	"energysched/internal/metrics"
)

// Broker fans one fleet's simulation events out to SSE subscribers.
// The fleet's event loop (the only publisher) marshals each event
// once; subscribers get a bounded buffered channel and a ring-buffer
// backlog for reconnects (Last-Event-ID / ?since=seq). A subscriber
// that falls further behind than its buffer is disconnected rather
// than allowed to stall the fleet — the standard slow-consumer
// contract of event streams.
type Broker struct {
	// hist, when non-nil, observes each publish's latency (marshal,
	// ring store, fan-out). Set once before the first publish; the
	// histogram is internally locked.
	hist *metrics.Histogram

	mu      sync.Mutex
	closed  bool
	nextSeq uint64
	ring    []StreamEvent // circular; oldest entry at head once full
	head    int
	ringCap int
	subs    map[*Subscriber]struct{}
}

// StreamEvent is one published event: its sequence number, kind, and
// the pre-marshaled JSON payload.
type StreamEvent struct {
	Seq  uint64
	Kind datacenter.EventKind
	Data []byte
}

// Subscriber is one SSE consumer's view of the stream. Ch is closed
// when the consumer falls too far behind or the fleet shuts down.
type Subscriber struct {
	Ch chan StreamEvent
}

// subBuffer is each subscriber's channel depth: how far it may lag the
// publisher before being disconnected.
const subBuffer = 256

func newBroker(ringCap int) *Broker {
	if ringCap <= 0 {
		ringCap = 4096
	}
	return &Broker{ringCap: ringCap, subs: make(map[*Subscriber]struct{})}
}

// publish assigns the next sequence number, stores the event in the
// replay ring and forwards it to every live subscriber.
func (b *Broker) publish(e datacenter.Event) {
	if b.hist != nil {
		defer b.hist.ObserveSince(time.Now())
	}
	data, err := json.Marshal(e)
	if err != nil {
		return // Event is a plain struct; cannot happen
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.nextSeq++
	ev := StreamEvent{Seq: b.nextSeq, Kind: e.Kind, Data: data}
	if len(b.ring) < b.ringCap {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[b.head] = ev
		b.head = (b.head + 1) % b.ringCap
	}
	for sub := range b.subs {
		select {
		case sub.Ch <- ev:
		default:
			// Slow consumer: cut it loose so the stream never
			// backpressures the event loop.
			delete(b.subs, sub)
			close(sub.Ch)
		}
	}
}

// Subscribe registers a new subscriber and returns it along with the
// backlog of ring events with sequence number > since, oldest first,
// plus whether resuming from since skips events already evicted from
// the ring — the HTTP layer signals that gap to the consumer instead
// of silently resuming at the tail (also after a restore, which keeps
// nextSeq but clears the ring).
func (b *Broker) Subscribe(since uint64) (*Subscriber, []StreamEvent, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var backlog []StreamEvent
	for i := 0; i < len(b.ring); i++ {
		ev := b.ring[(b.head+i)%len(b.ring)] // oldest first
		if ev.Seq > since {
			backlog = append(backlog, ev)
		}
	}
	gap := false
	if since > 0 && since < b.nextSeq {
		switch {
		case len(b.ring) == 0:
			gap = true
		case len(b.ring) == b.ringCap:
			gap = b.ring[b.head].Seq > since+1
		default:
			gap = b.ring[0].Seq > since+1
		}
	}
	sub := &Subscriber{Ch: make(chan StreamEvent, subBuffer)}
	if b.closed {
		close(sub.Ch)
		return sub, backlog, gap
	}
	b.subs[sub] = struct{}{}
	return sub, backlog, gap
}

// Unsubscribe removes the subscriber; safe to call after a
// slow-consumer disconnect or broker close.
func (b *Broker) Unsubscribe(sub *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub]; ok {
		delete(b.subs, sub)
		close(sub.Ch)
	}
}

// Seq returns the sequence number of the most recently published
// event.
func (b *Broker) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextSeq
}

// reset clears the replay ring while keeping the sequence counter
// monotonic. Called on restore: the pre-restore timeline no longer
// describes the fleet's state, so reconnecting clients must not be
// served a splice of old and new history.
func (b *Broker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring = b.ring[:0]
	b.head = 0
}

// close disconnects every subscriber and rejects future publishes.
// Called when the fleet shuts down (Close or DELETE), so SSE handlers
// unblock instead of waiting on a dead stream.
func (b *Broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.Ch)
	}
}
