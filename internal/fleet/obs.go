package fleet

import (
	"energysched/internal/metrics"
	"energysched/internal/obs"
)

// Fleet-side observability: the per-fleet decision-trace ring behind
// GET /v1/fleets/{id}/trace and the latency histograms the /metrics
// endpoint exports. Everything here is a wall-clock side channel — the
// histograms record durations, the ring records what the solver
// already decided — so none of it can perturb the deterministic
// simulation (see internal/obs).

// fleetHists groups one fleet's latency histograms. Histograms are
// internally locked, so the HTTP goroutines may snapshot them while
// the event loop observes.
type fleetHists struct {
	// admit is the admission batch latency: validate + WAL + inject,
	// one observation per admit() call (Submit, SubmitBatch, batches of
	// SubmitSource).
	admit metrics.Histogram
	// wal is the WAL append+fsync latency, one observation per logged
	// batch (admissions, seals, replicated records).
	wal metrics.Histogram
	// sse is the SSE fan-out latency of the event broker, one
	// observation per published event (marshal + ring store + fan-out).
	sse metrics.Histogram
	// replApply is the replicated-record apply latency on a follower
	// fleet: decode + WAL + inject + clock catch-up.
	replApply metrics.Histogram
	// round is the solver round wall-clock duration, fed by the trace
	// sink from every round's trace.
	round metrics.Histogram
}

// histSamples appends the fleet's histogram families to samples.
func (h *fleetHists) samples(in []metrics.PromSample) []metrics.PromSample {
	for _, fam := range []struct {
		name, help string
		h          *metrics.Histogram
	}{
		{"energysched_admit_batch_seconds", "Admission batch latency: validate + WAL append/fsync + inject.", &h.admit},
		{"energysched_wal_append_seconds", "WAL append+fsync latency per logged batch.", &h.wal},
		{"energysched_sse_fanout_seconds", "Event-broker publish latency: marshal, ring store and subscriber fan-out.", &h.sse},
		{"energysched_repl_apply_seconds", "Replicated-record apply latency on a follower fleet.", &h.replApply},
		{"energysched_solver_round_seconds", "Solver round wall-clock duration.", &h.round},
	} {
		in = append(in, metrics.HistogramSamples(fam.name, fam.help, nil, fam.h)...)
	}
	return in
}

// fleetTraceSink is the obs.TraceSink the fleet installs on its
// scheduler. It feeds two consumers: the fleet's trace ring (at the
// ring's configured verbosity) and the journey store, which stages
// every round's applied actions so placed/migrate journey steps carry
// their why-scores regardless of the ring's level. Replayed rounds
// (crash recovery, restore, replication bootstrap) are suppressed
// entirely — they re-run old decisions, and recording them would
// splice stale history into the ring and duplicate journey whys.
//
// Verbosity and Emit are only called by the solver, which runs on the
// fleet's event loop — the same goroutine that flips f.replaying — so
// reading the flag here is race-free.
type fleetTraceSink struct {
	f    *Fleet
	ring *obs.TraceRing
}

// Verbosity implements obs.TraceSink. The journey store needs the
// per-action records, so the effective level is at least TraceActions
// even when the ring records less; Emit strips what the ring did not
// ask for.
func (s *fleetTraceSink) Verbosity() obs.Verbosity {
	if s.f.replaying {
		return obs.TraceOff
	}
	if v := s.ring.Verbosity(); v > obs.TraceActions {
		return v
	}
	return obs.TraceActions
}

// Emit implements obs.TraceSink: stage the round's actions for the
// journey store, then forward the trace to the ring at the ring's own
// verbosity (dropping it entirely at off, stripping the action records
// at rounds).
func (s *fleetTraceSink) Emit(rt obs.RoundTrace) {
	s.f.journeys.StageActions(rt.Actions)
	switch v := s.ring.Verbosity(); {
	case v == obs.TraceOff:
		return
	case v < obs.TraceActions:
		rt.Actions = nil
	}
	s.ring.Emit(rt)
}

// TraceSeq returns the sequence number of the fleet's most recent
// trace.
func (f *Fleet) TraceSeq() uint64 { return f.ring.Seq() }

// TraceSnapshot returns the retained round traces with sequence number
// > since, oldest first. The ring is internally locked, so this never
// touches the event loop.
func (f *Fleet) TraceSnapshot(since uint64) []obs.TraceEvent {
	return f.ring.Snapshot(since)
}

// TraceSubscribe registers a trace tail consumer and returns it with
// the gapless backlog since the given sequence number, plus whether
// that resume point was evicted (gap). Release it with
// TraceUnsubscribe.
func (f *Fleet) TraceSubscribe(since uint64) (*obs.TraceSub, []obs.TraceEvent, bool) {
	return f.ring.Subscribe(since)
}

// TraceUnsubscribe releases a trace tail consumer.
func (f *Fleet) TraceUnsubscribe(sub *obs.TraceSub) { f.ring.Unsubscribe(sub) }

// TraceVerbosity returns the ring's recording level.
func (f *Fleet) TraceVerbosity() obs.Verbosity { return f.ring.Verbosity() }

// SetTraceVerbosity changes the ring's recording level at runtime.
// Pure observability: any level leaves the fleet's reports and event
// stream byte-identical.
func (f *Fleet) SetTraceVerbosity(v obs.Verbosity) { f.ring.SetVerbosity(v) }
