// Package fleet hosts independent datacenter.Simulation instances —
// fleets — each wrapped in its own single-threaded actor event loop
// with its own clock pace, SSE event ring, and durability layer. A
// Manager (manager.go) registers many fleets per process behind the
// energyschedd HTTP API (internal/server).
//
// Durability is a write-ahead log plus interval-triggered compaction
// snapshots (wal.go): every admission decision is appended to the
// fleet's WAL before it is applied, and every SnapshotInterval
// admissions the event-sourced snapshot is rewritten and the WAL
// reset. Crash recovery therefore loads the last snapshot and replays
// only the WAL tail — and because the engine is deterministic, the
// recovered fleet's reports are byte-identical to an uninterrupted
// run (the PR 3 contract, now enforced across kill-and-restart).
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"energysched"
	"energysched/internal/core"
	"energysched/internal/datacenter"
	"energysched/internal/metrics"
	"energysched/internal/obs"
	"energysched/internal/obs/series"
	"energysched/internal/obs/slo"
	"energysched/internal/workload"
)

// Config parameterizes one fleet.
type Config struct {
	// Policy selects the scheduler (same names as energysched.Run;
	// default "SB").
	Policy string
	// Seed drives all stochastic components (default 1).
	Seed int64
	// LambdaMin, LambdaMax are the power-manager thresholds in percent
	// (defaults 30, 90).
	LambdaMin, LambdaMax float64
	// Score overrides the consolidation costs (nil = paper values).
	Score *energysched.ScoreParams
	// Failures enables reliability-driven node crashes.
	Failures bool
	// CheckpointSeconds > 0 checkpoints running VMs periodically.
	CheckpointSeconds float64
	// AdaptiveTarget > 0 enables dynamic λmin adjustment.
	AdaptiveTarget float64
	// Shards selects the solver's sharded parallel round engine
	// (0 = serial, -1 = GOMAXPROCS, K >= 1 = K shards). Actions and
	// reports are byte-identical at any setting, so this is a pure
	// performance knob — replay determinism does not depend on it.
	Shards int
	// Classes overrides the fleet (nil = the paper's 100 nodes).
	Classes []energysched.NodeClass
	// Pace is the virtual-seconds-per-wall-second acceleration; <= 0
	// selects max pacing (watermark-gated, fully deterministic).
	Pace float64
	// SnapshotDir receives API-named snapshots (default ".").
	SnapshotDir string
	// EventRing is the replay-ring depth for the events stream
	// (default 4096).
	EventRing int
	// Dir is the fleet's durable directory (WAL + compaction
	// snapshot). Empty disables durability: the fleet is in-memory
	// only.
	Dir string
	// SnapshotInterval compacts the WAL into a fresh snapshot every
	// this many appended records (0 = never compact automatically).
	SnapshotInterval int
	// WALSync is the append sync policy: SyncAlways (default) fsyncs
	// every acknowledged admission, SyncOS leaves flushing to the OS.
	WALSync string
	// WALFault, when non-nil, is consulted before every WAL append
	// ("append"), sync ("sync") and rollback ("rewind"); a non-nil
	// return fails the op with that error, and ErrTornWrite on an
	// append additionally leaves half a frame on disk. This is the
	// chaos harness's live fault-injection hook (disk-full, torn
	// writes); leave nil in production.
	WALFault func(op string) error
	// TraceVerbosity selects the decision-trace recording level of the
	// fleet's trace ring: "off" (default), "rounds", "actions" or
	// "scores". Pure observability — any level leaves the simulation
	// byte-identical (see internal/obs).
	TraceVerbosity string
	// TraceDepth is how many round traces the ring retains (default
	// 256).
	TraceDepth int
	// SeriesDepth is how many accounting samples the time-series ring
	// retains (default 4096). Like the trace ring this is pure
	// observability: any depth leaves the simulation byte-identical.
	SeriesDepth int
	// JourneyDepth is how many jobs the lifecycle journey store retains
	// (default 2048); the journey firehose ring holds the same number
	// of recent steps.
	JourneyDepth int
	// SLOs are declarative service-level objectives evaluated against
	// the accounting series at every tick (nil = no SLO engine). Must
	// be pre-validated (slo.Parse does).
	SLOs []slo.Objective
	// AdmitShards is how many admission intake shards front the event
	// loop (default 1). Requests are hash-partitioned across shards by
	// ingest sequence and merged back deterministically, so reports,
	// traces, journeys and series are byte-identical at any K — a pure
	// ingest-throughput knob, like Shards is for the solver.
	AdmitShards int
	// AdmitQueue bounds each admission shard's queue (default 256).
	// A full queue sheds with 429 + Retry-After instead of blocking.
	AdmitQueue int
	// RateLimit throttles admission to this many jobs per second via a
	// token bucket (0 = unlimited). Over-limit requests are shed with
	// 429 + Retry-After before they touch the WAL or the event loop.
	RateLimit float64
	// RateBurst is the token bucket's capacity in jobs (default one
	// second's worth of RateLimit, at least 1).
	RateBurst int
	// Logf, when non-nil, receives fleet log lines.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "SB"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LambdaMin == 0 && c.LambdaMax == 0 {
		c.LambdaMin, c.LambdaMax = 30, 90
	}
	if c.SnapshotDir == "" {
		c.SnapshotDir = "."
	}
	if c.WALSync == "" {
		c.WALSync = SyncAlways
	}
	if c.AdmitShards <= 0 {
		c.AdmitShards = 1
	}
	if c.AdmitQueue <= 0 {
		c.AdmitQueue = 256
	}
	return c
}

// WALStats describes one fleet's durability layer.
type WALStats struct {
	// Enabled reports whether the fleet has a durable directory.
	Enabled bool `json:"enabled"`
	// Records currently in the WAL (i.e. appended since the last
	// compaction snapshot — what a crash right now would replay).
	Records int `json:"records"`
	// Appended counts records written since this process opened the
	// fleet.
	Appended int `json:"appended"`
	// Replayed counts the WAL-tail records applied during recovery
	// when this process opened the fleet: the admissions that happened
	// after the last compaction snapshot.
	Replayed int `json:"replayed"`
	// Snapshots counts compaction snapshots written since open.
	Snapshots int `json:"snapshots"`
	// TornTail reports that recovery found (and dropped) a torn or
	// corrupt final record.
	TornTail bool `json:"torn_tail,omitempty"`
	// TruncatedBytes is how many torn/corrupt tail bytes recovery had
	// to discard (0 for a clean log). Surfaced so operators — and the
	// failover e2e — can see exactly how much of the unacknowledged
	// tail a crash destroyed.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// LastSnapshotUnix is the wall-clock time (Unix seconds) of the
	// newest compaction snapshot, 0 if none exists yet.
	LastSnapshotUnix int64 `json:"last_snapshot_unix,omitempty"`
}

// Error is a status-coded fleet error; the HTTP layer maps Status
// onto the response code.
type Error struct {
	Status int
	Msg    string
	// RetryAfter, in seconds, hints when the client should retry a
	// 429/503; the HTTP layer emits it as a Retry-After header, which
	// the client's RetryPolicy honors.
	RetryAfter int
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Msg }

func errf(status int, format string, args ...interface{}) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// ErrClosed is returned by every operation on a shut-down fleet.
var ErrClosed = errors.New("fleet: shut down")

// Fleet is one hosted scheduler instance: a simulation behind an
// actor event loop, plus its event broker and durability layer.
type Fleet struct {
	id       string
	cfg      Config
	broker   *Broker
	repl     *replFeed
	ring     *obs.TraceRing
	hists    fleetHists
	series   *series.Store
	journeys *obs.JourneyStore
	sloEng   *slo.Engine // nil without objectives
	router   *admitRouter

	cmds     chan func()
	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// --- event-loop state: touch only from inside do()/loop() ---
	sim       *datacenter.Simulation
	jobs      []workload.Job // admission log, in VM-ID order
	watermark float64        // largest admitted submit time (max pacing)
	final     *energysched.ServiceReport
	replaying bool
	wallStart time.Time
	virtStart float64
	wal       *wal
	walBroken bool // an append failed and could not be rolled back
	stats     WALStats
	gen       int64 // timeline generation; bumped when restore replaces the log
}

// Open builds a fleet, recovers its durable state when Config.Dir is
// set (last compaction snapshot + WAL tail), starts its event loop,
// and returns it.
func Open(id string, cfg Config) (*Fleet, error) {
	verb := obs.TraceOff
	if cfg.TraceVerbosity != "" {
		v, err := obs.ParseVerbosity(cfg.TraceVerbosity)
		if err != nil {
			return nil, fmt.Errorf("fleet %s: %w", id, err)
		}
		verb = v
	}
	f := &Fleet{
		id:       id,
		cfg:      cfg.withDefaults(),
		cmds:     make(chan func()),
		stopc:    make(chan struct{}),
		broker:   newBroker(cfg.EventRing),
		repl:     newReplFeed(),
		ring:     obs.NewTraceRing(verb, cfg.TraceDepth),
		series:   series.NewStore(cfg.SeriesDepth),
		journeys: obs.NewJourneyStore(cfg.JourneyDepth, cfg.JourneyDepth),
		gen:      1,
	}
	if len(cfg.SLOs) > 0 {
		f.sloEng = slo.NewEngine(cfg.SLOs)
	}
	f.broker.hist = &f.hists.sse
	jobs, now, sealed, err := f.recover()
	if err != nil {
		f.wal.close()
		return nil, err
	}
	if err := f.rebuild(jobs, now, sealed); err != nil {
		f.wal.close()
		return nil, err
	}
	f.wallStart = time.Now()
	f.wg.Add(1)
	go f.loop()
	f.router = newAdmitRouter(f)
	return f, nil
}

// recover loads the durable state: the compaction snapshot (if any)
// plus the WAL tail. It returns the reconstructed admission log, the
// watermark to fast-forward to, and whether the workload was sealed.
func (f *Fleet) recover() (jobs []workload.Job, now float64, sealed bool, err error) {
	if f.cfg.Dir == "" {
		return nil, 0, false, nil
	}
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return nil, 0, false, fmt.Errorf("fleet %s: creating durable dir: %w", f.id, err)
	}
	f.stats.Enabled = true
	snapPath := filepath.Join(f.cfg.Dir, checkpointName)
	if st, serr := os.Stat(snapPath); serr == nil {
		snap, rerr := readSnapshot(snapPath)
		if rerr != nil {
			return nil, 0, false, fmt.Errorf("fleet %s: %w", f.id, rerr)
		}
		if snap.Gen > 0 {
			// Pre-PR 6 snapshots carry no generation: stay at 1.
			f.gen = snap.Gen
		}
		f.stats.LastSnapshotUnix = st.ModTime().Unix()
		// The compaction snapshot's scheduling config is the one the
		// logged jobs were acknowledged under — an API restore may have
		// changed it after the manifest was written — so it wins over
		// the manager-supplied config, exactly as in restore().
		f.adoptSnapshotConfig(snap.Config)
		for _, sj := range snap.Jobs {
			jobs = append(jobs, sj.job())
		}
		now = snap.SavedVirtual
		sealed = snap.Sealed
	}
	w, recs, dropped, werr := openWAL(filepath.Join(f.cfg.Dir, walName), f.cfg.WALSync, f.cfg.WALFault)
	if werr != nil {
		return nil, 0, false, fmt.Errorf("fleet %s: %w", f.id, werr)
	}
	f.wal = w
	f.stats.TornTail = dropped > 0
	f.stats.TruncatedBytes = dropped
	if dropped > 0 {
		f.logf("wal: torn tail detected and dropped (%d bytes); recovered the intact prefix (%d records)", dropped, len(recs))
	}
	for _, rec := range recs {
		switch rec.Kind {
		case walKindAdmit:
			if rec.Job == nil {
				continue
			}
			switch {
			case rec.Job.ID < len(jobs):
				// Already covered by the snapshot: a crash landed
				// between snapshot publish and WAL reset. Idempotent.
				continue
			case rec.Job.ID > len(jobs):
				// A gap means the log does not describe this timeline
				// (e.g. a restore whose checkpoint could not be
				// persisted). Serve the consistent prefix, but refuse
				// to acknowledge new admissions a future recovery
				// would mis-replay.
				f.walBroken = true
				f.logf("wal: record for job %d but only %d jobs known; ignoring the rest of the log and going read-only", rec.Job.ID, len(jobs))
				return jobs, maxWatermark(now, jobs), sealed, nil
			}
			jobs = append(jobs, rec.Job.job())
			f.stats.Replayed++
		case walKindSeal:
			sealed = true
			f.stats.Replayed++
		default:
			f.logf("wal: unknown record kind %q ignored", rec.Kind)
		}
	}
	if f.stats.Replayed > 0 || len(jobs) > 0 {
		f.logf("recovered %d jobs (%d replayed from the wal tail, sealed=%v)", len(jobs), f.stats.Replayed, sealed)
	}
	return jobs, maxWatermark(now, jobs), sealed, nil
}

// maxWatermark returns the admission watermark implied by a snapshot
// time and a job log: the largest submit time seen.
func maxWatermark(now float64, jobs []workload.Job) float64 {
	for _, j := range jobs {
		if j.Submit > now {
			now = j.Submit
		}
	}
	return now
}

// ID returns the fleet's registry identifier.
func (f *Fleet) ID() string { return f.id }

// Pace returns the configured acceleration (<= 0 = max pacing).
func (f *Fleet) Pace() float64 { return f.cfg.Pace }

// Broker returns the fleet's SSE event broker.
func (f *Fleet) Broker() *Broker { return f.broker }

// Close stops the event loop, closes the WAL and disconnects every
// event subscriber. In-flight requests receive ErrClosed.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stopc) })
	f.wg.Wait()
	if f.router != nil {
		f.router.stop()
	}
	f.broker.close()
	f.repl.close()
	f.ring.Close()
	f.journeys.Close()
	f.wal.close()
}

func (f *Fleet) logf(format string, args ...interface{}) {
	if f.cfg.Logf != nil {
		f.cfg.Logf("fleet %s: "+format, append([]interface{}{f.id}, args...)...)
	}
}

// --- event loop ---

// do runs fn on the event loop and waits for it; every access to the
// simulation goes through here, which is what makes the HTTP surface
// safe under -race with concurrent submitters.
func (f *Fleet) do(fn func()) error {
	done := make(chan struct{})
	select {
	case f.cmds <- func() { defer close(done); fn() }:
	case <-f.stopc:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-f.stopc:
		return ErrClosed
	}
}

// paceTick is the wall-clock granularity of real-time pacing.
const paceTick = 100 * time.Millisecond

func (f *Fleet) loop() {
	defer f.wg.Done()
	var ticker *time.Ticker
	var tick <-chan time.Time
	if f.cfg.Pace > 0 {
		ticker = time.NewTicker(paceTick)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case fn := <-f.cmds:
			fn()
		case <-tick:
			f.advanceRealtime()
		case <-f.stopc:
			return
		}
	}
}

// advanceRealtime moves virtual time to the wall-derived target.
func (f *Fleet) advanceRealtime() {
	if f.sim.Done() {
		return
	}
	target := f.virtStart + time.Since(f.wallStart).Seconds()*f.cfg.Pace
	if target > f.watermark {
		f.watermark = target
	}
	f.sim.StepBefore(f.watermark)
}

// rebuild replaces the simulation with a fresh one replaying the
// given admission log up to virtual time now. With sealed, the replay
// is drained to completion. On error the previous state is kept.
func (f *Fleet) rebuild(jobs []workload.Job, now float64, sealed bool) error {
	// sim is captured by the journey recorder below before it is built:
	// the closure only runs behind !f.replaying, which stays set until
	// after the assignment, so it never sees a nil simulation.
	var sim *datacenter.Simulation
	opts := energysched.Options{
		Policy:            f.cfg.Policy,
		LambdaMin:         f.cfg.LambdaMin,
		LambdaMax:         f.cfg.LambdaMax,
		Seed:              f.cfg.Seed,
		Score:             f.cfg.Score,
		Failures:          f.cfg.Failures,
		CheckpointSeconds: f.cfg.CheckpointSeconds,
		AdaptiveTarget:    f.cfg.AdaptiveTarget,
		Shards:            f.cfg.Shards,
		Classes:           f.cfg.Classes,
		EventLog: func(e energysched.Event) {
			if f.replaying {
				return
			}
			f.broker.publish(e)
			f.recordJourney(sim, e)
		},
		RoundTimer: func(seconds float64) {
			if !f.replaying {
				f.hists.round.Observe(seconds)
			}
		},
	}
	var err error
	sim, err = energysched.NewSimulation(opts)
	if err != nil {
		return err
	}
	// Attach the decision-trace sink directly on the scheduler struct
	// (never via its comparable Config). Replayed rounds are suppressed
	// by the sink itself while f.replaying is set.
	if sch, ok := sim.Policy().(*core.Scheduler); ok {
		sch.Tracer = &fleetTraceSink{f: f, ring: f.ring}
	}
	// Accounting taps. Energy attribution stays on even during replay —
	// it is a pure addition the engine computes identically everywhere,
	// and a rebuilt simulation's fresh VMs must re-accumulate their
	// energy or a recovered fleet would under-report it. Sampling IS
	// suppressed while replaying: samples are cumulative observations
	// the store already holds (or deliberately dropped), and re-adding
	// them would double-count the replayed span in the series and burn
	// the SLO windows twice.
	sim.AttributeEnergy = true
	sim.Sampler = func(smp series.Sample) {
		if f.replaying {
			return
		}
		f.series.Add(smp)
		if f.sloEng != nil {
			f.sloEng.Observe(smp.T, func(metric string) (float64, bool) {
				return f.sloValue(smp, metric)
			})
		}
	}
	f.replaying = true
	defer func() { f.replaying = false }()
	sim.Start()
	for _, j := range jobs {
		if _, err := sim.Inject(j); err != nil {
			return fmt.Errorf("fleet %s: replaying job %d: %w", f.id, j.ID, err)
		}
	}
	sim.StepBefore(now)
	f.sim = sim
	f.jobs = append([]workload.Job(nil), jobs...)
	f.watermark = now
	f.final = nil
	f.wallStart = time.Now()
	f.virtStart = now
	if sealed {
		rep := serviceReport(sim.Drain(), true)
		f.final = &rep
	}
	return nil
}

// --- admission ---

// Submit admits one job through the admission router: rate-limited,
// shard-queued, merge-arbitrated (shard.go). Over-limit and
// full-queue requests come back as 429 fleet.Errors with Retry-After.
func (f *Fleet) Submit(spec energysched.JobSpec) (energysched.JobStatus, error) {
	out, err := f.router.submit([]energysched.JobSpec{spec})
	if err != nil {
		return energysched.JobStatus{}, err
	}
	return out[0], nil
}

// SubmitBatch admits a batch of jobs atomically, in order, in a
// single event-loop turn: either every job is admitted or none is,
// and virtual time does not advance between the batch's admissions —
// which makes a batch at max pacing byte-identical to submitting the
// same jobs sequentially. Batches ride the admission router like
// Submit, so rate limits and queue bounds apply.
func (f *Fleet) SubmitBatch(specs []energysched.JobSpec) ([]energysched.JobStatus, error) {
	return f.router.submit(specs)
}

// submitDirect admits a batch on the event loop, bypassing the
// admission router: no rate limit, no shard queue. Bulk internal
// loads (SubmitSource) use it so replaying a trace into a
// rate-limited fleet is not throttled like external traffic.
func (f *Fleet) submitDirect(specs []energysched.JobSpec) ([]energysched.JobStatus, error) {
	var out []energysched.JobStatus
	var serr error
	if err := f.do(func() { out, serr = f.admit(specs) }); err != nil {
		return nil, err
	}
	return out, serr
}

// SubmitSource streams a workload into the fleet in submit-ordered
// batches of batchSize jobs (<= 0 selects 256). Each batch is
// admitted atomically in one event-loop turn, exactly like
// SubmitBatch, so a week-long trace feeds a fleet with O(batch)
// memory; the stream as a whole is NOT atomic — on error the batches
// already admitted stay admitted, and the returned count reports how
// many jobs made it in. At max pacing virtual time chases the
// watermark between batches, which keeps the run byte-identical to a
// one-shot SubmitBatch of the materialized trace.
func (f *Fleet) SubmitSource(src workload.JobSource, batchSize int) (int, error) {
	if batchSize <= 0 {
		batchSize = 256
	}
	total := 0
	batch := make([]energysched.JobSpec, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := f.submitDirect(batch); err != nil {
			return err
		}
		total += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
		submit := j.Submit
		batch = append(batch, energysched.JobSpec{
			Name: j.Name, CPU: j.CPU, Mem: j.Mem, Duration: j.Duration,
			Submit: &submit, DeadlineFactor: j.DeadlineFactor,
			FaultTolerance: j.FaultTolerance, Arch: j.Arch, Hypervisor: j.Hypervisor,
		})
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// admit validates, logs and injects a batch. Call only from the event
// loop. The order is deliberate: validate everything (so the batch
// either fully applies or fully rejects), append everything to the
// WAL (durability before acknowledgment), then apply to the engine —
// injection cannot fail after validation, so WAL and memory agree.
func (f *Fleet) admit(specs []energysched.JobSpec) ([]energysched.JobStatus, error) {
	defer f.hists.admit.ObserveSince(time.Now())
	if len(specs) == 0 {
		return nil, errf(http.StatusBadRequest, "empty batch")
	}
	if f.sim.Sealed() {
		return nil, errf(http.StatusConflict, "workload is sealed (drained); submit rejected")
	}
	if f.walBroken {
		return nil, errf(http.StatusInternalServerError, "admission log is broken; fleet is read-only")
	}
	now := f.sim.Now()
	jobs := make([]workload.Job, 0, len(specs))
	prev := now
	for i, spec := range specs {
		j := workload.Job{
			ID:             len(f.jobs) + i,
			Name:           spec.Name,
			Duration:       spec.Duration,
			CPU:            spec.CPU,
			Mem:            spec.Mem,
			DeadlineFactor: spec.DeadlineFactor,
			FaultTolerance: spec.FaultTolerance,
			Arch:           spec.Arch,
			Hypervisor:     spec.Hypervisor,
		}
		if j.DeadlineFactor == 0 {
			j.DeadlineFactor = 1.5
		}
		if spec.Submit != nil {
			j.Submit = *spec.Submit
		} else {
			j.Submit = now
		}
		if j.Submit < now {
			return nil, errf(http.StatusConflict,
				"job %d: submit_s %.3f is in the virtual past (now %.3f)", i, j.Submit, now)
		}
		if j.Submit < prev {
			return nil, errf(http.StatusBadRequest,
				"job %d: batch submit times must be non-decreasing (%.3f after %.3f)", i, j.Submit, prev)
		}
		prev = j.Submit
		if err := j.Validate(); err != nil {
			return nil, errf(http.StatusBadRequest, "job %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	// Marshal each record exactly once: the same bytes go to the WAL
	// and to the replication feed, so a follower's WAL is
	// byte-identical to the leader's.
	payloads := make([][]byte, 0, len(jobs))
	for i := range jobs {
		sj := toSnapJob(jobs[i])
		payload, err := json.Marshal(walRecord{Kind: walKindAdmit, Job: &sj})
		if err != nil {
			return nil, errf(http.StatusInternalServerError, "encoding wal record: %v", err)
		}
		payloads = append(payloads, payload)
	}
	if err := f.logPayloads(payloads); err != nil {
		return nil, err
	}
	base := int64(len(f.jobs))
	out := make([]energysched.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		v, err := f.sim.Inject(j)
		if err != nil {
			// Unreachable after validation; if it ever happens the WAL
			// now disagrees with memory, so stop accepting admissions.
			f.walBroken = f.wal != nil
			return nil, errf(http.StatusInternalServerError, "injecting pre-validated job: %v", err)
		}
		f.jobs = append(f.jobs, j)
		out = append(out, jobStatus(v))
	}
	if f.cfg.Pace <= 0 {
		// Max pacing: virtual time chases the admission watermark.
		if prev > f.watermark {
			f.watermark = prev
		}
		f.sim.StepBefore(f.watermark)
	}
	// Publish with the pre-admission clock: every submit in the batch
	// was validated against it, so a follower stepping to it can still
	// inject every record that follows on the stream.
	for i := range payloads {
		f.repl.publish(ReplRecord{Offset: base + int64(i) + 1, Now: now, Data: payloads[i]})
	}
	f.maybeCompact()
	return out, nil
}

// logPayloads appends pre-marshaled WAL record payloads and flushes
// once. On failure the log is rolled back to its pre-batch length so
// disk and memory stay consistent; if even that fails, the fleet goes
// read-only rather than diverging.
func (f *Fleet) logPayloads(payloads [][]byte) error {
	if f.wal == nil {
		return nil
	}
	defer f.hists.wal.ObserveSince(time.Now())
	off, records := f.wal.tell()
	for _, payload := range payloads {
		if err := f.wal.appendPayload(payload, false); err != nil {
			return f.rollbackWAL(off, records, err)
		}
	}
	if err := f.wal.flush(); err != nil {
		return f.rollbackWAL(off, records, err)
	}
	f.stats.Appended += len(payloads)
	return nil
}

func (f *Fleet) rollbackWAL(off int64, records int, cause error) error {
	if rerr := f.wal.rewind(off, records); rerr != nil {
		f.walBroken = true
		f.logf("wal: append failed (%v) and rollback failed (%v); fleet is read-only", cause, rerr)
		return errf(http.StatusInternalServerError, "admission log broken: %v", cause)
	}
	return errf(http.StatusInternalServerError, "admission log append: %v", cause)
}

// maybeCompact rewrites the compaction snapshot and resets the WAL
// once enough records have accumulated. Call only from the event loop.
func (f *Fleet) maybeCompact() {
	if f.wal == nil || f.cfg.SnapshotInterval <= 0 || f.wal.records < f.cfg.SnapshotInterval {
		return
	}
	f.persistCheckpoint()
}

// persistCheckpoint publishes the current event-sourced state as the
// fleet's compaction snapshot and resets the WAL. Snapshot first,
// reset second: a crash between the two leaves WAL records that are
// already covered by the snapshot, which recovery skips by job ID.
// On failure the WAL is untouched (still consistent with memory on
// the admission path); callers for whom that is NOT true — restore,
// which just replaced the timeline — must go read-only.
func (f *Fleet) persistCheckpoint() error {
	if f.wal == nil {
		return nil
	}
	snap := f.snapshotState()
	path := filepath.Join(f.cfg.Dir, checkpointName)
	if err := writeSnapshot(path, snap); err != nil {
		f.logf("compaction snapshot failed (will retry next interval): %v", err)
		return err
	}
	if err := f.wal.reset(); err != nil {
		f.logf("wal reset after compaction failed: %v", err)
		return err
	}
	f.stats.Snapshots++
	f.stats.LastSnapshotUnix = time.Now().Unix()
	f.logf("compacted: snapshot of %d jobs at t=%.1fs, wal reset", len(snap.Jobs), snap.SavedVirtual)
	return nil
}

// --- observation ---

// Jobs returns every admitted job's status, in admission order.
func (f *Fleet) Jobs() ([]energysched.JobStatus, error) {
	var out []energysched.JobStatus
	err := f.do(func() {
		vms := f.sim.VMs()
		out = make([]energysched.JobStatus, 0, len(vms))
		for _, v := range vms {
			out = append(out, jobStatus(v))
		}
	})
	return out, err
}

// Job returns one job's status.
func (f *Fleet) Job(id int) (energysched.JobStatus, error) {
	var st energysched.JobStatus
	found := false
	if err := f.do(func() {
		vms := f.sim.VMs()
		if id >= 0 && id < len(vms) {
			st = jobStatus(vms[id])
			found = true
		}
	}); err != nil {
		return st, err
	}
	if !found {
		return st, errf(http.StatusNotFound, "job %d not found", id)
	}
	return st, nil
}

// Cluster returns the fleet's node-level status.
func (f *Fleet) Cluster() (energysched.ClusterStatus, error) {
	var st energysched.ClusterStatus
	err := f.do(func() {
		cl := f.sim.Cluster()
		working, online := cl.Counts()
		st = energysched.ClusterStatus{
			Now:          f.sim.Now(),
			Sealed:       f.sim.Sealed(),
			Done:         f.sim.Done(),
			NodesOn:      online,
			NodesWorking: working,
			TotalWatts:   f.sim.WattsNow(),
			Nodes:        make([]energysched.NodeStatus, 0, len(cl.Nodes)),
		}
		for _, v := range f.sim.AppendQueue(nil) {
			st.Queue = append(st.Queue, v.ID)
		}
		for _, n := range cl.Nodes {
			st.Nodes = append(st.Nodes, nodeStatus(n, f.sim.NodeWatts(n.ID)))
		}
	})
	return st, err
}

// Report returns the paper metrics accumulated so far (final after a
// drain).
func (f *Fleet) Report() (energysched.ServiceReport, error) {
	var rep energysched.ServiceReport
	err := f.do(func() {
		if f.final != nil {
			rep = *f.final
		} else {
			rep = serviceReport(f.sim.ReportAt(f.sim.Now()), false)
		}
	})
	return rep, err
}

// Health returns liveness basics.
func (f *Fleet) Health() (now float64, done bool, err error) {
	err = f.do(func() { now, done = f.sim.Now(), f.sim.Done() })
	return now, done, err
}

// Stats returns the durability counters.
func (f *Fleet) Stats() (WALStats, error) {
	var st WALStats
	err := f.do(func() {
		st = f.stats
		if f.wal != nil {
			st.Records = f.wal.records
		}
	})
	return st, err
}

// Info summarizes the fleet for the registry listing.
func (f *Fleet) Info() (energysched.FleetInfo, error) {
	var info energysched.FleetInfo
	err := f.do(func() {
		info = energysched.FleetInfo{
			ID:     f.id,
			Policy: f.cfg.Policy,
			Seed:   f.cfg.Seed,
			Pace:   f.cfg.Pace,
			Now:    f.sim.Now(),
			Sealed: f.sim.Sealed(),
			Done:   f.sim.Done(),
			Jobs:   len(f.jobs),
		}
		if f.stats.Enabled {
			st := f.stats
			if f.wal != nil {
				st.Records = f.wal.records
			}
			w := energysched.WALStats{
				Records:          st.Records,
				Appended:         st.Appended,
				Replayed:         st.Replayed,
				Snapshots:        st.Snapshots,
				TornTail:         st.TornTail,
				TruncatedBytes:   st.TruncatedBytes,
				LastSnapshotUnix: st.LastSnapshotUnix,
			}
			info.WAL = &w
		}
	})
	return info, err
}

// Drain seals the workload, runs every admitted job to completion and
// returns the final report. The seal is durable: it is logged to the
// WAL before the drain, and the drained state is compacted after.
func (f *Fleet) Drain() (energysched.ServiceReport, error) {
	var rep energysched.ServiceReport
	var serr error
	if err := f.do(func() {
		if f.final != nil {
			rep = *f.final
			return
		}
		payload, merr := json.Marshal(walRecord{Kind: walKindSeal})
		if merr != nil {
			serr = errf(http.StatusInternalServerError, "encoding seal record: %v", merr)
			return
		}
		sealOffset := int64(len(f.jobs)) + 1
		sealNow := f.sim.Now()
		if !f.walBroken {
			if err := f.logPayloads([][]byte{payload}); err != nil {
				serr = err
				return
			}
		}
		r := serviceReport(f.sim.Drain(), true)
		f.final = &r
		f.watermark = f.sim.Now()
		rep = r
		f.repl.publish(ReplRecord{Offset: sealOffset, Now: sealNow, Data: payload})
		f.logf("drained: %s", r.Table)
		f.persistCheckpoint()
	}); err != nil {
		return rep, err
	}
	return rep, serr
}

// --- snapshot / restore ---

// ResolveSnapshotPath confines API-supplied snapshot paths to the
// fleet's snapshot directory: the request names a file, never a
// location. The HTTP surface is unauthenticated, so honoring client
// paths verbatim would let any network peer overwrite or probe
// arbitrary files as the daemon user. (The operator's -restore flag
// goes through RestoreFile and is not confined.)
func (f *Fleet) ResolveSnapshotPath(path string) (string, error) {
	if path == "" {
		return filepath.Join(f.cfg.SnapshotDir, fmt.Sprintf("energyschedd-%s-%d.snapshot.json", f.id, len(f.jobs))), nil
	}
	name := filepath.Base(filepath.Clean(path))
	if name == "." || name == ".." || name == string(filepath.Separator) {
		return "", errf(http.StatusBadRequest, "bad snapshot name %q", path)
	}
	return filepath.Join(f.cfg.SnapshotDir, name), nil
}

// Snapshot writes an API-named snapshot (confined to SnapshotDir; an
// empty path picks a name).
func (f *Fleet) Snapshot(path string) (energysched.SnapshotInfo, error) {
	var info energysched.SnapshotInfo
	var serr error
	if err := f.do(func() {
		var p string
		if p, serr = f.ResolveSnapshotPath(path); serr != nil {
			return
		}
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			serr = errf(http.StatusInternalServerError, "%v", err)
			return
		}
		snap := f.snapshotState()
		if err := writeSnapshot(p, snap); err != nil {
			serr = errf(http.StatusInternalServerError, "%v", err)
			return
		}
		f.logf("snapshot: %d jobs at t=%.1fs -> %s", len(snap.Jobs), snap.SavedVirtual, p)
		info = energysched.SnapshotInfo{
			Path: p, Jobs: len(snap.Jobs), Now: snap.SavedVirtual, Sealed: snap.Sealed,
		}
	}); err != nil {
		return info, err
	}
	return info, serr
}

// Restore replaces the fleet's state with an API-named snapshot's
// (confined to SnapshotDir).
func (f *Fleet) Restore(path string) (energysched.SnapshotInfo, error) {
	if path == "" {
		return energysched.SnapshotInfo{}, errf(http.StatusBadRequest, "restore needs a snapshot path")
	}
	var info energysched.SnapshotInfo
	var serr error
	if err := f.do(func() {
		var p string
		if p, serr = f.ResolveSnapshotPath(path); serr == nil {
			info, serr = f.restore(p)
		}
	}); err != nil {
		return info, err
	}
	return info, serr
}

// RestoreFile loads a snapshot from an operator-supplied path (the
// -restore flag); unlike Restore it is not confined to SnapshotDir.
func (f *Fleet) RestoreFile(path string) (energysched.SnapshotInfo, error) {
	var info energysched.SnapshotInfo
	var serr error
	if err := f.do(func() { info, serr = f.restore(path) }); err != nil {
		return info, err
	}
	return info, serr
}

// adoptSnapshotConfig applies a snapshot's scheduling configuration:
// the replay's determinism depends on running the logged jobs under
// exactly the config they were acknowledged with. Used by both the
// explicit restore path and crash recovery.
func (f *Fleet) adoptSnapshotConfig(sc snapshotConfig) {
	f.cfg.Policy = sc.Policy
	f.cfg.Seed = sc.Seed
	f.cfg.LambdaMin = sc.LambdaMin
	f.cfg.LambdaMax = sc.LambdaMax
	f.cfg.Failures = sc.Failures
	f.cfg.CheckpointSeconds = sc.CheckpointSeconds
	f.cfg.AdaptiveTarget = sc.AdaptiveTarget
	f.cfg.Shards = sc.Shards
	f.cfg.Classes = sc.Classes
	f.cfg.Score = nil
	if sc.HasScore {
		f.cfg.Score = &energysched.ScoreParams{
			Cempty: sc.Cempty, Cfill: sc.Cfill, THempty: sc.THempty,
		}
	}
}

// restore rebuilds the fleet from a snapshot file. The fleet starts a
// new timeline: the generation is bumped so a replication follower
// re-bootstraps instead of splicing pre- and post-restore history.
// Call only from the event loop.
func (f *Fleet) restore(path string) (energysched.SnapshotInfo, error) {
	snap, err := readSnapshot(path)
	if err != nil {
		return energysched.SnapshotInfo{}, errf(http.StatusUnprocessableEntity, "%v", err)
	}
	oldGen := f.gen
	f.gen++
	if err := f.applySnapshot(snap, path); err != nil {
		f.gen = oldGen
		return energysched.SnapshotInfo{}, err
	}
	return energysched.SnapshotInfo{
		Path: path, Jobs: len(snap.Jobs), Now: snap.SavedVirtual, Sealed: snap.Sealed,
	}, nil
}

// applySnapshot replaces the fleet's state with a snapshot's: the
// restore path and the replication bootstrap share it. The caller is
// responsible for generation handling (restore bumps it; a follower
// adopts the leader's). Call only from the event loop.
func (f *Fleet) applySnapshot(snap snapshotFile, source string) error {
	// The snapshot's scheduling configuration wins: determinism of the
	// replay depends on it. Keep the old config at hand so a failed
	// replay leaves config and simulation consistent.
	oldCfg := f.cfg
	f.adoptSnapshotConfig(snap.Config)
	jobs := make([]workload.Job, 0, len(snap.Jobs))
	for _, sj := range snap.Jobs {
		jobs = append(jobs, sj.job())
	}
	if err := f.rebuild(jobs, snap.SavedVirtual, snap.Sealed); err != nil {
		f.cfg = oldCfg
		return errf(http.StatusUnprocessableEntity, "%v", err)
	}
	// The new timeline supersedes the WAL: republish the state as the
	// compaction snapshot so a crash after this point recovers it, not
	// the pre-restore one. If that fails, the WAL on disk still
	// describes the OLD timeline — stop acknowledging admissions a
	// future recovery would mis-replay.
	if err := f.persistCheckpoint(); err != nil {
		f.walBroken = true
		f.logf("restore succeeded in memory but its checkpoint did not persist; fleet is read-only: %v", err)
	}
	// The pre-restore timeline no longer describes this fleet: clear
	// the replay ring (sequence numbers stay monotonic) and mark the
	// discontinuity for connected stream consumers. Replication
	// sessions are cut for the same reason — reconnecting followers
	// observe the generation change and re-bootstrap; without the cut
	// an idle timeline would never surface the swap.
	f.repl.dropAll()
	f.broker.reset()
	f.broker.publish(energysched.Event{
		Time: snap.SavedVirtual, Kind: "restore", VM: -1, Node: -1, Aux: -1,
	})
	f.logf("restored %d jobs at t=%.1fs from %s", len(jobs), snap.SavedVirtual, source)
	return nil
}

// --- metrics ---

// Metrics gathers the fleet's Prometheus samples (without the fleet
// label; the serving layer attaches it).
func (f *Fleet) Metrics() ([]metrics.PromSample, error) {
	var samples []metrics.PromSample
	err := f.do(func() { samples = f.gatherMetrics() })
	return samples, err
}

func (f *Fleet) gatherMetrics() []metrics.PromSample {
	rep := f.sim.ReportAt(f.sim.Now())
	cl := f.sim.Cluster()
	working, online := cl.Counts()
	stateCount := map[string]int{"off": 0, "booting": 0, "on": 0, "down": 0}
	for _, n := range cl.Nodes {
		stateCount[n.State.String()]++
	}
	jobCount := map[string]int{}
	for _, v := range f.sim.VMs() {
		jobCount[v.State.String()]++
	}
	samples := []metrics.PromSample{
		{Name: "energysched_virtual_time_seconds", Help: "Current virtual time of the simulation.", Kind: metrics.PromGauge, Value: f.sim.Now()},
		{Name: "energysched_queue_length", Help: "VMs waiting in the scheduler's virtual host.", Kind: metrics.PromGauge, Value: float64(f.sim.QueueLen())},
		{Name: "energysched_power_watts", Help: "Instantaneous datacenter power draw.", Kind: metrics.PromGauge, Value: f.sim.WattsNow()},
		{Name: "energysched_energy_kwh_total", Help: "Energy consumed since start of the run.", Kind: metrics.PromCounter, Value: rep.EnergyKWh},
		{Name: "energysched_cpu_hours_total", Help: "CPU work executed.", Kind: metrics.PromCounter, Value: rep.CPUHours},
		{Name: "energysched_nodes_working", Help: "Nodes that are on and hosting work.", Kind: metrics.PromGauge, Value: float64(working)},
		{Name: "energysched_nodes_online", Help: "Nodes powered on.", Kind: metrics.PromGauge, Value: float64(online)},
	}
	for _, state := range []string{"off", "booting", "on", "down"} {
		samples = append(samples, metrics.PromSample{
			Name: "energysched_nodes", Help: "Nodes by power state.", Kind: metrics.PromGauge,
			Labels: map[string]string{"state": state}, Value: float64(stateCount[state]),
		})
	}
	for _, state := range []string{"queued", "creating", "running", "migrating", "completed", "failed"} {
		samples = append(samples, metrics.PromSample{
			Name: "energysched_jobs", Help: "Admitted jobs by lifecycle state.", Kind: metrics.PromGauge,
			Labels: map[string]string{"state": state}, Value: float64(jobCount[state]),
		})
	}
	samples = append(samples,
		metrics.PromSample{Name: "energysched_jobs_admitted_total", Help: "Jobs admitted since start.", Kind: metrics.PromCounter, Value: float64(len(f.jobs))},
		metrics.PromSample{Name: "energysched_migrations_total", Help: "Completed live migrations.", Kind: metrics.PromCounter, Value: float64(rep.Migrations)},
		metrics.PromSample{Name: "energysched_failures_total", Help: "Node failures injected.", Kind: metrics.PromCounter, Value: float64(rep.Failures)},
		metrics.PromSample{Name: "energysched_satisfaction_pct", Help: "Mean client satisfaction of completed jobs.", Kind: metrics.PromGauge, Value: rep.Satisfaction},
		metrics.PromSample{Name: "energysched_delay_pct", Help: "Mean execution delay of completed jobs.", Kind: metrics.PromGauge, Value: rep.Delay},
		metrics.PromSample{Name: "energysched_events_published_total", Help: "Simulation events published to the stream.", Kind: metrics.PromCounter, Value: float64(f.broker.Seq())},
	)
	if f.stats.Enabled {
		walRecords := 0
		if f.wal != nil {
			walRecords = f.wal.records
		}
		samples = append(samples,
			metrics.PromSample{Name: "energysched_wal_records", Help: "Records currently in the admission WAL (replayed on crash).", Kind: metrics.PromGauge, Value: float64(walRecords)},
			metrics.PromSample{Name: "energysched_wal_appended_total", Help: "WAL records appended since open.", Kind: metrics.PromCounter, Value: float64(f.stats.Appended)},
			metrics.PromSample{Name: "energysched_wal_replayed_total", Help: "WAL-tail records replayed during recovery at open.", Kind: metrics.PromCounter, Value: float64(f.stats.Replayed)},
			metrics.PromSample{Name: "energysched_wal_snapshots_total", Help: "Compaction snapshots written since open.", Kind: metrics.PromCounter, Value: float64(f.stats.Snapshots)},
			metrics.PromSample{Name: "energysched_wal_truncated_bytes", Help: "Torn/corrupt tail bytes dropped by WAL recovery at open.", Kind: metrics.PromGauge, Value: float64(f.stats.TruncatedBytes)},
			metrics.PromSample{Name: "energysched_wal_offset", Help: "Logical log offset: admissions plus the seal since the timeline began.", Kind: metrics.PromGauge, Value: float64(f.logOffset())},
		)
		if f.stats.LastSnapshotUnix > 0 {
			samples = append(samples, metrics.PromSample{
				Name: "energysched_wal_snapshot_age_seconds", Help: "Wall-clock age of the newest compaction snapshot.",
				Kind: metrics.PromGauge, Value: time.Since(time.Unix(f.stats.LastSnapshotUnix, 0)).Seconds(),
			})
		}
	}
	if sch, ok := f.sim.Policy().(*core.Scheduler); ok {
		st := sch.Stats
		solver := []struct {
			name, help string
			v          int
		}{
			{"energysched_solver_rounds_total", "Scheduling rounds executed.", st.Rounds},
			{"energysched_solver_moves_total", "Improving moves applied.", st.Moves},
			{"energysched_solver_score_evals_total", "Score(h,vm) evaluations.", st.ScoreEvals},
			{"energysched_solver_limit_hits_total", "Rounds stopped by the iteration limit.", st.LimitHits},
			{"energysched_solver_col_refreshes_total", "Dirty-column recomputations.", st.ColRefreshes},
			{"energysched_solver_row_rescans_total", "Per-VM best-move rescans.", st.RowRescans},
			{"energysched_solver_carry_rounds_total", "Rounds starting from a carried matrix.", st.CarryRounds},
			{"energysched_solver_stale_rows_total", "Candidate rows re-scored on carry.", st.StaleRows},
			{"energysched_solver_stale_cols_total", "Host columns re-scored on carry.", st.StaleCols},
			{"energysched_solver_reused_cells_total", "Base-matrix cells carried across rounds.", st.ReusedCells},
		}
		for _, m := range solver {
			samples = append(samples, metrics.PromSample{Name: m.name, Help: m.help, Kind: metrics.PromCounter, Value: float64(m.v)})
		}
	}
	samples = append(samples, metrics.PromSample{
		Name: "energysched_trace_rounds_total", Help: "Solver round traces recorded in the trace ring.",
		Kind: metrics.PromCounter, Value: float64(f.ring.Seq()),
	})
	samples = f.router.metricsSamples(samples)
	samples = f.accountingSamples(samples)
	samples = f.hists.samples(samples)
	return samples
}
