package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The streaming frame iterator is both the WAL recovery scanner and
// the replication transport decoder, so its contract is tested on raw
// byte streams: resume at every record boundary, survive a disconnect
// at every byte position, and reject every CRC flip.

// streamFrames builds a stream of n distinct frames and returns the
// stream plus each frame's payload and end offset.
func streamFrames(n int) (stream []byte, payloads [][]byte, ends []int64) {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf(`{"kind":"admit","job":{"id":%d,"submit_s":%d}}`, i, i*30))
		payloads = append(payloads, p)
		buf.Write(EncodeFrame(p))
		ends = append(ends, int64(buf.Len()))
	}
	return buf.Bytes(), payloads, ends
}

// readAll drains a FrameReader, returning the payloads and the final
// error (io.EOF or ErrTornFrame).
func readAll(fr *FrameReader) ([][]byte, error) {
	var out [][]byte
	for {
		p, err := fr.Next()
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

func TestFrameReaderRoundTrip(t *testing.T) {
	stream, payloads, ends := streamFrames(7)
	fr := NewFrameReader(bytes.NewReader(stream))
	got, err := readAll(fr)
	if err != io.EOF {
		t.Fatalf("clean stream ended with %v, want io.EOF", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d frames, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("frame %d: got %q want %q", i, got[i], payloads[i])
		}
	}
	if fr.Offset() != ends[len(ends)-1] || fr.Frames() != 7 {
		t.Fatalf("offset=%d frames=%d, want %d and 7", fr.Offset(), fr.Frames(), ends[len(ends)-1])
	}
}

// A replication stream can drop at any frame boundary; a fresh reader
// must resume from exactly there and deliver the remaining frames.
func TestFrameReaderResumeAtEveryBoundary(t *testing.T) {
	stream, payloads, ends := streamFrames(9)
	boundaries := append([]int64{0}, ends...)
	for _, cut := range boundaries {
		fr := NewFrameReader(bytes.NewReader(stream[cut:]))
		got, err := readAll(fr)
		if err != io.EOF {
			t.Fatalf("resume at %d: ended with %v, want io.EOF", cut, err)
		}
		skipped := 0
		for skipped < len(ends) && ends[skipped] <= cut {
			skipped++
		}
		if len(got) != len(payloads)-skipped {
			t.Fatalf("resume at %d: %d frames, want %d", cut, len(got), len(payloads)-skipped)
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[skipped+i]) {
				t.Fatalf("resume at %d: frame %d = %q, want %q", cut, i, p, payloads[skipped+i])
			}
		}
	}
}

// A disconnect can also land mid-frame, at any byte. The reader must
// surface the damage (never a short or garbled payload), report the
// last intact boundary in Offset, and a reconnect from that offset —
// against the full stream — must deliver every remaining frame.
func TestFrameReaderMidFrameDisconnect(t *testing.T) {
	stream, payloads, ends := streamFrames(5)
	for cut := 0; cut <= len(stream); cut++ {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		got, err := readAll(fr)

		intact := 0
		for intact < len(ends) && ends[intact] <= int64(cut) {
			intact++
		}
		if len(got) != intact {
			t.Fatalf("cut at %d: %d intact frames, want %d", cut, len(got), intact)
		}
		wantOff := int64(0)
		if intact > 0 {
			wantOff = ends[intact-1]
		}
		if fr.Offset() != wantOff {
			t.Fatalf("cut at %d: offset %d, want %d", cut, fr.Offset(), wantOff)
		}
		atBoundary := int64(cut) == wantOff
		if atBoundary && err != io.EOF {
			t.Fatalf("cut at boundary %d: %v, want io.EOF", cut, err)
		}
		if !atBoundary && err != ErrTornFrame {
			t.Fatalf("cut mid-frame at %d: %v, want ErrTornFrame", cut, err)
		}

		// Reconnect: resume the full stream at the reported offset.
		resumed, err := readAll(NewFrameReader(bytes.NewReader(stream[fr.Offset():])))
		if err != io.EOF || len(resumed) != len(payloads)-intact {
			t.Fatalf("cut at %d: resume read %d frames (%v), want %d", cut, len(resumed), err, len(payloads)-intact)
		}
	}
}

// Every single-bit flip anywhere in a frame must be rejected, and the
// frames before it must still decode.
func TestFrameReaderCRCFlipRejection(t *testing.T) {
	stream, _, ends := streamFrames(3)
	start := ends[0] // corrupt the middle frame, byte by byte
	for pos := start; pos < ends[1]; pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), stream...)
			mut[pos] ^= 1 << bit
			fr := NewFrameReader(bytes.NewReader(mut))
			got, err := readAll(fr)
			// A flip inside the length prefix can fabricate a longer
			// frame that swallows the rest of the stream; whatever it
			// fabricates must still fail the CRC or run out of bytes.
			if err != ErrTornFrame {
				t.Fatalf("flip at %d bit %d: err=%v, want ErrTornFrame", pos, bit, err)
			}
			if len(got) != 1 || fr.Offset() != ends[0] {
				t.Fatalf("flip at %d bit %d: %d intact frames at offset %d, want 1 at %d",
					pos, bit, len(got), fr.Offset(), ends[0])
			}
		}
	}
}

// The admission path marshals each record once and hands the same
// bytes to the WAL and the replication feed; appendPayload must
// therefore write exactly EncodeFrame(payload).
func TestWALAppendPayloadByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := openWAL(path, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(walRecord{Kind: walKindAdmit, Job: walJob(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.appendPayload(payload, true); err != nil {
		t.Fatal(err)
	}
	w.close()
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, EncodeFrame(payload)) {
		t.Fatalf("on-disk bytes differ from EncodeFrame:\n disk: %x\n enc:  %x", onDisk, EncodeFrame(payload))
	}
}

// FuzzWALStream drives the streaming iterator with arbitrary bytes —
// the same corpus shapes as FuzzWALRecovery, but at the frame layer
// shared by WAL recovery and the replication transport:
//
//  1. iteration never panics; Offset is monotonic and never passes
//     the bytes consumed;
//  2. whatever decoded re-encodes to a stream that round-trips to the
//     identical payloads with a clean EOF;
//  3. the resume contract: a fresh reader over the remainder past
//     Offset reproduces the terminal result (EOF on empty, the same
//     torn-frame rejection otherwise) without yielding new frames.
func FuzzWALStream(f *testing.F) {
	admit := []byte(`{"kind":"admit","job":{"id":0,"submit_s":0,"duration_s":60,"cpu_pct":100,"mem_units":5,"deadline_factor":1.5}}`)
	seal := []byte(`{"kind":"seal"}`)
	valid := append(walFrame(admit), walFrame(seal)...)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[walHeaderSize+2] ^= 0x40
	f.Add(flipped)
	f.Add(walFrame([]byte(`[1,2,3]`)))
	f.Add(append(valid, 0, 0, 0, 0, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var payloads [][]byte
		last := int64(0)
		for {
			p, err := fr.Next()
			if fr.Offset() < last || fr.Offset() > int64(len(data)) {
				t.Fatalf("offset %d regressed below %d or passed input size %d", fr.Offset(), last, len(data))
			}
			last = fr.Offset()
			if err == io.EOF {
				if fr.Offset() != int64(len(data)) {
					t.Fatalf("clean EOF at offset %d with %d bytes", fr.Offset(), len(data))
				}
				break
			}
			if err != nil {
				if err != ErrTornFrame {
					t.Fatalf("unexpected error: %v", err)
				}
				break
			}
			payloads = append(payloads, p)
		}
		if fr.Frames() != len(payloads) {
			t.Fatalf("frame counter %d != %d payloads", fr.Frames(), len(payloads))
		}

		// Re-encode and round-trip.
		var re bytes.Buffer
		for _, p := range payloads {
			re.Write(EncodeFrame(p))
		}
		got, err := readAll(NewFrameReader(bytes.NewReader(re.Bytes())))
		if err != io.EOF || len(got) != len(payloads) {
			t.Fatalf("re-encoded stream: %d frames, %v", len(got), err)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("re-encoded frame %d differs", i)
			}
		}

		// Resume past the intact prefix: deterministic terminal state,
		// no extra frames.
		rest, err := readAll(NewFrameReader(bytes.NewReader(data[last:])))
		if len(rest) != 0 {
			t.Fatalf("resume past intact prefix yielded %d frames", len(rest))
		}
		if last == int64(len(data)) {
			if err != io.EOF {
				t.Fatalf("resume on empty remainder: %v", err)
			}
		} else if err != ErrTornFrame {
			t.Fatalf("resume on damaged remainder: %v, want ErrTornFrame", err)
		}
	})
}
