// Package vm models virtual machines encapsulating HPC jobs: their
// resource requirements, lifecycle state, execution progress, and the
// QoS contract (deadline) attached to them.
//
// A job requires ReqCPU percent of CPU (100 = one core) and ReqMem
// memory units, and carries Work CPU-seconds of computation: a job
// that would run Duration seconds on a dedicated machine at its full
// requested allocation holds Work = ReqCPU × Duration. When the Xen
// scheduler grants it less CPU (contention), execution stretches — the
// mechanism by which careless placement violates deadlines.
package vm

import (
	"fmt"
	"math"
)

// State is a VM's lifecycle state.
type State int

// VM lifecycle states.
const (
	// Queued: waiting in the scheduler's virtual host for placement.
	Queued State = iota
	// Creating: being created on a node (paying the creation cost Cc).
	Creating
	// Running: executing its job.
	Running
	// Migrating: live-migrating between nodes (still running on the
	// source, paying the migration cost Cm on both endpoints).
	Migrating
	// Completed: job finished.
	Completed
	// Failed: the hosting node failed; the VM is lost and must be
	// re-queued (recovered from checkpoint if available).
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Creating:
		return "creating"
	case Running:
		return "running"
	case Migrating:
		return "migrating"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Requirements captures the hardware/software constraints of a VM
// (paper §III-A1): the resources it needs to fulfill its SLA plus
// hard placement constraints.
type Requirements struct {
	// CPU in percent: 100 = one dedicated core.
	CPU float64
	// Mem in abstract memory units, where a node offers 100.
	Mem float64
	// Arch is the required system architecture ("" = any).
	Arch string
	// Hypervisor is the required hypervisor ("" = any).
	Hypervisor string
}

// Validate reports whether the requirements are well-formed.
func (r Requirements) Validate() error {
	if r.CPU <= 0 {
		return fmt.Errorf("vm: requirement CPU must be positive, got %.2f", r.CPU)
	}
	if r.Mem < 0 {
		return fmt.Errorf("vm: requirement Mem must be non-negative, got %.2f", r.Mem)
	}
	return nil
}

// VM is a virtual machine instance wrapping one HPC job.
type VM struct {
	// ID is unique within a simulation.
	ID int
	// Name is an optional human-readable label (trace job id).
	Name string

	Req Requirements

	// Submit is the virtual time the job entered the system.
	Submit float64
	// Duration is the user-estimated execution time Tu on a dedicated
	// machine (paper: "vm execution time according to user").
	Duration float64
	// Deadline is the absolute completion deadline (Submit + factor ×
	// Duration). The SLA satisfaction metric is derived from it.
	Deadline float64
	// Work is the total CPU-seconds the job must accumulate
	// (Req.CPU × Duration).
	Work float64
	// Weight is the Xen credit-scheduler weight (0 = default).
	Weight float64
	// FaultTolerance is Ftol in the paper: the VM's tolerance to node
	// failure probability, in [0, 1].
	FaultTolerance float64

	// --- runtime state, owned by the datacenter harness ---

	State State
	// Host is the node currently hosting the VM (-1 = none).
	Host int
	// MigrateTo is the destination node while Migrating (-1 = none).
	MigrateTo int
	// Progress is accumulated CPU-seconds of work done.
	Progress float64
	// Alloc is the CPU percent currently granted by the host.
	Alloc float64
	// Start is when the VM first started running (-1 = never).
	Start float64
	// Finish is when the job completed (-1 = not yet).
	Finish float64
	// Migrations counts completed live migrations.
	Migrations int
	// LastMigrate is when the last migration completed (-1 = never).
	LastMigrate float64
	// Restarts counts recoveries after node failures.
	Restarts int
	// Checkpoint is the progress value captured by the last
	// checkpoint (0 = none); recovery resumes from here.
	Checkpoint float64
	// EnergyKWh is the host energy attributed to this VM by the
	// datacenter harness (when energy attribution is enabled): each
	// accrual interval's node energy split across the hosted VMs by
	// allocation share. Write-only observability — nothing in the
	// scheduling path reads it, and like Progress it does not bump the
	// epoch.
	EnergyKWh float64

	// Epoch counts placement- and demand-relevant mutations of this VM
	// (lifecycle transitions, host changes, requirement updates). The
	// datacenter harness bumps it via Touch at every actuation; the
	// scheduler's cross-round score cache uses it to recognise VMs
	// whose real state is unchanged since the previous round. Pure
	// execution progress (Progress, Alloc, Checkpoint) does not bump
	// the epoch: the score families that read it are recomputed every
	// round anyway.
	Epoch uint64
}

// Touch records a placement- or demand-relevant mutation (state, host,
// requirements), invalidating cross-round score-cache entries for this
// VM. Call it after mutating the runtime fields directly.
func (v *VM) Touch() { v.Epoch++ }

// New builds a VM in the Queued state.
func New(id int, req Requirements, submit, duration, deadline float64) *VM {
	return &VM{
		ID:          id,
		Req:         req,
		Submit:      submit,
		Duration:    duration,
		Deadline:    deadline,
		Work:        req.CPU * duration,
		State:       Queued,
		Host:        -1,
		MigrateTo:   -1,
		Start:       -1,
		Finish:      -1,
		LastMigrate: -1,
	}
}

// Remaining returns the CPU-seconds of work still to do.
func (v *VM) Remaining() float64 {
	r := v.Work - v.Progress
	if r < 0 {
		return 0
	}
	return r
}

// RemainingTime estimates seconds to completion at the current
// allocation; +Inf if the VM currently receives no CPU.
func (v *VM) RemainingTime() float64 {
	if v.Alloc <= 0 {
		return math.Inf(1)
	}
	return v.Remaining() / v.Alloc
}

// UserRemainingTime is Tr(vm) in the paper: remaining execution time
// according to the user's initial estimate, Tu − (now − submit),
// floored at zero.
func (v *VM) UserRemainingTime(now float64) float64 {
	r := v.Duration - (now - v.Submit)
	if r < 0 {
		return 0
	}
	return r
}

// Active reports whether the VM occupies resources on a node.
func (v *VM) Active() bool {
	switch v.State {
	case Creating, Running, Migrating:
		return true
	}
	return false
}

// InOperation reports whether an actuator operation is in flight on
// this VM (creation or migration): the paper pins such VMs with an
// infinite penalty so no second operation starts concurrently.
func (v *VM) InOperation() bool {
	return v.State == Creating || v.State == Migrating
}

// ExecTime returns the observed wall execution time from submission
// to finish; valid only after completion.
func (v *VM) ExecTime() float64 {
	if v.Finish < 0 {
		return -1
	}
	return v.Finish - v.Submit
}

// String implements fmt.Stringer for diagnostics.
func (v *VM) String() string {
	return fmt.Sprintf("vm%d[%s cpu=%.0f mem=%.0f host=%d prog=%.0f/%.0f]",
		v.ID, v.State, v.Req.CPU, v.Req.Mem, v.Host, v.Progress, v.Work)
}
