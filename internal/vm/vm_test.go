package vm

import (
	"math"
	"strings"
	"testing"
)

func newTestVM() *VM {
	return New(7, Requirements{CPU: 200, Mem: 10}, 100, 3600, 100+1.5*3600)
}

func TestNewInitialState(t *testing.T) {
	v := newTestVM()
	if v.State != Queued {
		t.Errorf("state = %v, want queued", v.State)
	}
	if v.Host != -1 || v.MigrateTo != -1 || v.Start != -1 || v.Finish != -1 || v.LastMigrate != -1 {
		t.Error("sentinel fields not -1")
	}
	if v.Work != 200*3600 {
		t.Errorf("work = %v, want %v", v.Work, 200*3600)
	}
}

func TestRemaining(t *testing.T) {
	v := newTestVM()
	v.Progress = 200 * 3600 / 2
	if got := v.Remaining(); got != 200*3600/2 {
		t.Errorf("remaining = %v", got)
	}
	v.Progress = v.Work + 100 // overshoot clamps to zero
	if got := v.Remaining(); got != 0 {
		t.Errorf("overshot remaining = %v, want 0", got)
	}
}

func TestRemainingTime(t *testing.T) {
	v := newTestVM()
	v.Alloc = 0
	if !math.IsInf(v.RemainingTime(), 1) {
		t.Error("starved VM should have infinite remaining time")
	}
	v.Alloc = 100 // half the requested rate: 2× the nominal time left
	if got := v.RemainingTime(); got != 2*3600 {
		t.Errorf("remaining time = %v, want %v", got, 2*3600)
	}
}

func TestUserRemainingTime(t *testing.T) {
	v := newTestVM()
	if got := v.UserRemainingTime(100); got != 3600 {
		t.Errorf("Tr at submit = %v, want 3600", got)
	}
	if got := v.UserRemainingTime(100 + 1800); got != 1800 {
		t.Errorf("Tr halfway = %v, want 1800", got)
	}
	if got := v.UserRemainingTime(100 + 7200); got != 0 {
		t.Errorf("Tr past estimate = %v, want 0 (floored)", got)
	}
}

func TestStateTransitionsHelpers(t *testing.T) {
	v := newTestVM()
	cases := []struct {
		state      State
		active, op bool
	}{
		{Queued, false, false},
		{Creating, true, true},
		{Running, true, false},
		{Migrating, true, true},
		{Completed, false, false},
		{Failed, false, false},
	}
	for _, c := range cases {
		v.State = c.state
		if v.Active() != c.active {
			t.Errorf("%v: Active = %v, want %v", c.state, v.Active(), c.active)
		}
		if v.InOperation() != c.op {
			t.Errorf("%v: InOperation = %v, want %v", c.state, v.InOperation(), c.op)
		}
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Queued: "queued", Creating: "creating", Running: "running",
		Migrating: "migrating", Completed: "completed", Failed: "failed",
		State(99): "state(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestExecTime(t *testing.T) {
	v := newTestVM()
	if v.ExecTime() != -1 {
		t.Error("unfinished VM should report -1")
	}
	v.Finish = 5000
	if got := v.ExecTime(); got != 4900 {
		t.Errorf("exec time = %v, want 4900", got)
	}
}

func TestRequirementsValidate(t *testing.T) {
	if err := (Requirements{CPU: 100, Mem: 10}).Validate(); err != nil {
		t.Errorf("valid requirements rejected: %v", err)
	}
	if err := (Requirements{CPU: 0, Mem: 10}).Validate(); err == nil {
		t.Error("zero CPU accepted")
	}
	if err := (Requirements{CPU: 100, Mem: -1}).Validate(); err == nil {
		t.Error("negative memory accepted")
	}
}

func TestVMString(t *testing.T) {
	v := newTestVM()
	s := v.String()
	if !strings.Contains(s, "vm7") || !strings.Contains(s, "queued") {
		t.Errorf("String() = %q", s)
	}
}
