package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"energysched/internal/power"
)

func TestOnDemandSteps(t *testing.T) {
	g := OnDemand{}
	cases := []struct{ load, want float64 }{
		{0, 0.6}, {0.3, 0.6}, {0.54, 0.6}, // 0.6 covers up to 0.54 with headroom
		{0.6, 0.8}, {0.72, 0.8},
		{0.8, 1.0}, {1.0, 1.0}, {1.5, 1.0},
	}
	for _, c := range cases {
		if got := g.Frequency(c.load); got != c.want {
			t.Errorf("ondemand f(%v) = %v, want %v", c.load, got, c.want)
		}
	}
}

func TestPinnedGovernors(t *testing.T) {
	if (Performance{}).Frequency(0) != 1 || (Performance{}).Frequency(1) != 1 {
		t.Error("performance governor not pinned to 1")
	}
	if (Powersave{}).Frequency(1) != Levels[0] {
		t.Error("powersave default floor wrong")
	}
	if (Powersave{Floor: 0.8}).Frequency(0) != 0.8 {
		t.Error("powersave custom floor ignored")
	}
}

func TestWrapOnDemandMatchesBase(t *testing.T) {
	// The base curve was measured under ondemand, so wrapping it with
	// OnDemand must be the identity: that curve was measured under
	// the ondemand governor.
	m := Wrap(power.PaperTableI(), OnDemand{})
	for _, cpu := range []float64{0, 50, 100, 200, 300, 400} {
		base := power.PaperTableI().Power(cpu)
		if got := m.Power(cpu); math.Abs(got-base) > 1e-9 {
			t.Errorf("ondemand wrap Power(%v) = %v, want base %v", cpu, got, base)
		}
	}
	// Exactly identical at idle and full load.
	if m.Power(0) != 230 || math.Abs(m.Power(400)-304) > 1e-9 {
		t.Errorf("endpoints drifted: %v / %v", m.Power(0), m.Power(400))
	}
}

func TestPerformanceCostsMoreAtPartialLoad(t *testing.T) {
	ondemand := Wrap(power.PaperTableI(), OnDemand{})
	perf := Wrap(power.PaperTableI(), Performance{})
	for _, cpu := range []float64{50, 100, 200} {
		if perf.Power(cpu) <= ondemand.Power(cpu) {
			t.Errorf("performance governor at %v%% (%v W) should exceed ondemand (%v W)",
				cpu, perf.Power(cpu), ondemand.Power(cpu))
		}
	}
	// At full load both run the top frequency: equal.
	if math.Abs(perf.Power(400)-ondemand.Power(400)) > 1e-9 {
		t.Errorf("full-load power differs: %v vs %v", perf.Power(400), ondemand.Power(400))
	}
}

func TestPowersaveCheapButSlow(t *testing.T) {
	base := power.PaperTableI()
	save := Wrap(base, Powersave{})
	if save.Capacity() >= base.Capacity() {
		t.Errorf("powersave capacity = %v, want below %v", save.Capacity(), base.Capacity())
	}
	// At a load where ondemand would have clocked up, the pinned low
	// frequency draws less than the measured curve.
	if save.Power(300) >= base.Power(300) {
		t.Errorf("powersave Power(300) = %v, want below base %v", save.Power(300), base.Power(300))
	}
}

func TestWrapMonotoneProperty(t *testing.T) {
	for _, gov := range []Governor{OnDemand{}, Performance{}, Powersave{}} {
		m := Wrap(power.PaperTableI(), gov)
		f := func(a, b float64) bool {
			a, b = math.Abs(a), math.Abs(b)
			if math.IsNaN(a+b) || math.IsInf(a+b, 0) {
				return true
			}
			a, b = math.Mod(a, 450), math.Mod(b, 450)
			if a > b {
				a, b = b, a
			}
			return m.Power(a) <= m.Power(b)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%s: %v", gov.Name(), err)
		}
	}
}

func TestIdleAndPeakAccessors(t *testing.T) {
	m := Wrap(power.PaperTableI(), OnDemand{})
	if m.IdlePower() != 230 {
		t.Errorf("idle = %v", m.IdlePower())
	}
	if math.Abs(m.PeakPower()-304) > 1e-9 {
		t.Errorf("peak = %v", m.PeakPower())
	}
}

func TestResidency(t *testing.T) {
	g := OnDemand{}
	r, err := ResidencyOf(g, []float64{10, 20, 30}, []float64{0.1, 0.7, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if r[0.6] != 10 || r[0.8] != 20 || r[1.0] != 30 {
		t.Errorf("residency = %v", r)
	}
	if _, err := ResidencyOf(g, []float64{1}, []float64{0.1, 0.2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := ResidencyOf(g, []float64{-1}, []float64{0.1}); err == nil {
		t.Error("negative duration accepted")
	}
}
