// Package dvfs models Dynamic Voltage/Frequency Scaling, the
// complementary power-saving technique the paper discusses in §II:
// "DVFS is one of the techniques that can be used to reduce the
// consumption of a server … We rely on the node's underlying
// technology which automatically changes the frequency according to
// the load."
//
// The paper's Table I curve was measured on a machine whose kernel
// already ran an energy-efficient (ondemand-style) governor, so the
// calibrated power model *is* the DVFS-enabled behaviour. This
// package makes the governor explicit, so experiments can quantify
// what consolidation would be worth on machines with different
// frequency policies:
//
//   - OnDemand — scale frequency with load (the measured baseline);
//   - Performance — pin the highest frequency: partial loads burn the
//     full-voltage dynamic power, so idle-ish machines are expensive;
//   - Powersave — pin the lowest frequency: cheap watts, but the
//     node's effective CPU capacity shrinks and jobs stretch.
//
// Wrap adapts any base power.Model; Capacity models the capacity loss
// of a pinned low frequency.
package dvfs

import (
	"fmt"
	"sort"
)

// Governor selects a relative frequency for a given CPU load.
type Governor interface {
	// Name labels the governor in reports.
	Name() string
	// Frequency returns the relative frequency in (0, 1] the governor
	// selects when the node's CPU demand is `load` (as a fraction of
	// full-speed capacity, 0..1+).
	Frequency(load float64) float64
}

// Levels is the default P-state ladder (relative frequencies).
var Levels = []float64{0.6, 0.8, 1.0}

// OnDemand scales frequency with load: the lowest P-state whose
// capacity covers the demand plus headroom, like Linux's ondemand.
type OnDemand struct {
	// Steps is the available frequency ladder (nil = Levels).
	Steps []float64
	// Headroom keeps this much spare capacity before stepping up
	// (default 0.1).
	Headroom float64
}

// Name implements Governor.
func (g OnDemand) Name() string { return "ondemand" }

// Frequency implements Governor.
func (g OnDemand) Frequency(load float64) float64 {
	steps := g.Steps
	if len(steps) == 0 {
		steps = Levels
	}
	headroom := g.Headroom
	if headroom == 0 {
		headroom = 0.1
	}
	sorted := append([]float64(nil), steps...)
	sort.Float64s(sorted)
	for _, f := range sorted {
		if load <= f*(1-headroom) {
			return f
		}
	}
	return sorted[len(sorted)-1]
}

// Performance pins the top frequency.
type Performance struct{}

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// Frequency implements Governor.
func (Performance) Frequency(float64) float64 { return 1.0 }

// Powersave pins the bottom frequency.
type Powersave struct {
	// Floor is the pinned relative frequency (0 = Levels' minimum).
	Floor float64
}

// Name implements Governor.
func (Powersave) Name() string { return "powersave" }

// Frequency implements Governor.
func (g Powersave) Frequency(float64) float64 {
	if g.Floor > 0 {
		return g.Floor
	}
	return Levels[0]
}

// PowerModel is the subset of power.Model the wrapper needs;
// satisfied by every model in internal/power.
type PowerModel interface {
	Power(cpu float64) float64
	Capacity() float64
	IdlePower() float64
	PeakPower() float64
}

// Model wraps a base (ondemand-measured) power curve with an explicit
// governor. VoltageShare is the fraction of dynamic power that scales
// with V²·f (the rest scales linearly with f): pinning a high
// frequency at partial load pays the voltage share even though little
// work is done.
//
// Power composes as
//
//	P(u) = base(u) + PenaltyScale · dynRange · (φ(f_gov) − φ(f_ref(u)))
//
// where φ(f) = share·f³ + (1−share)·f is the V²f scaling factor,
// f_ref is a continuous proxy of the ondemand frequency the base
// curve was measured under, and dynRange = peak − idle. Pinning high
// costs extra watts at partial load; pinning low saves them. The
// composition is monotone in utilization for every governor.
type Model struct {
	Base PowerModel
	Gov  Governor
	// VoltageShare in [0, 1]; 0.6 is a typical planar-CMOS figure.
	VoltageShare float64
	// PenaltyScale damps the frequency term (default 0.25): a quarter of
	// the dynamic range tracks frequency, the rest tracks work done.
	// Kept below the base curve's flattest slope so power stays
	// monotone in utilization under every governor.
	PenaltyScale float64
}

// Wrap builds a governor-explicit model over a measured base curve.
func Wrap(base PowerModel, gov Governor) *Model {
	return &Model{Base: base, Gov: gov, VoltageShare: 0.6, PenaltyScale: 0.25}
}

// load converts absolute CPU percent into a 0..1+ load fraction.
func (m *Model) load(cpu float64) float64 {
	if c := m.Base.Capacity(); c > 0 {
		return cpu / c
	}
	return 0
}

// refFrequency is the continuous proxy of the ondemand frequency the
// measured base curve embodies: rises with load, clamped to the
// ladder's range.
func refFrequency(load float64) float64 {
	f := load / 0.9 // ondemand's 10 % headroom
	if f < Levels[0] {
		f = Levels[0]
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Power implements power.Model (see the type comment for the model).
// For the OnDemand governor the continuous reference is used directly,
// so the wrap reproduces the measured base curve exactly — that curve
// *was* measured under ondemand.
func (m *Model) Power(cpu float64) float64 {
	base := m.Base.Power(cpu)
	u := m.load(cpu)
	var f1 float64
	if _, ok := m.Gov.(OnDemand); ok {
		f1 = refFrequency(u)
	} else {
		f1 = m.Gov.Frequency(u)
	}
	if f1 <= 0 {
		f1 = 1
	}
	if f1 > 1 {
		f1 = 1
	}
	dynRange := m.Base.PeakPower() - m.Base.IdlePower()
	p := base + m.penaltyScale()*dynRange*(m.freqFactor(f1)-m.freqFactor(refFrequency(u)))
	if p < 0 {
		return 0
	}
	return p
}

func (m *Model) penaltyScale() float64 {
	if m.PenaltyScale == 0 {
		return 0.25
	}
	return m.PenaltyScale
}

// freqFactor is φ(f) = share·f³ + (1−share)·f.
func (m *Model) freqFactor(f float64) float64 {
	s := m.VoltageShare
	return s*f*f*f + (1-s)*f
}

// Capacity implements power.Model: a pinned low frequency caps the
// node's effective CPU capacity.
func (m *Model) Capacity() float64 {
	// The worst-case (full-load) frequency bounds what the node can
	// deliver.
	f := m.Gov.Frequency(1.0)
	return m.Base.Capacity() * f
}

// IdlePower implements power.Model.
func (m *Model) IdlePower() float64 { return m.Power(0) }

// PeakPower implements power.Model.
func (m *Model) PeakPower() float64 { return m.Power(m.Capacity()) }

// Residency summarizes how long a load trace spends in each P-state —
// the standard way to report governor behaviour.
type Residency map[float64]float64

// ResidencyOf computes P-state residency for a sequence of
// (duration, load) samples under a governor.
func ResidencyOf(gov Governor, durations, loads []float64) (Residency, error) {
	if len(durations) != len(loads) {
		return nil, fmt.Errorf("dvfs: %d durations vs %d loads", len(durations), len(loads))
	}
	r := Residency{}
	for i, d := range durations {
		if d < 0 {
			return nil, fmt.Errorf("dvfs: negative duration at %d", i)
		}
		r[gov.Frequency(loads[i])] += d
	}
	return r, nil
}
