package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestParseVerbosityRoundTrip(t *testing.T) {
	for _, v := range []Verbosity{TraceOff, TraceRounds, TraceActions, TraceScores} {
		got, err := ParseVerbosity(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVerbosity(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVerbosity("loud"); err == nil {
		t.Error("bad verbosity accepted")
	}
	if v, err := ParseVerbosity("max"); err != nil || v != TraceScores {
		t.Errorf(`ParseVerbosity("max") = %v, %v`, v, err)
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(TraceRounds, 4)
	for i := 0; i < 10; i++ {
		r.Emit(RoundTrace{Round: i})
	}
	if r.Seq() != 10 {
		t.Fatalf("Seq = %d", r.Seq())
	}
	evs := r.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d, want ring cap 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i) // oldest retained is seq 7
		if ev.Seq != wantSeq {
			t.Errorf("entry %d seq %d, want %d", i, ev.Seq, wantSeq)
		}
		var rt RoundTrace
		if err := json.Unmarshal(ev.Data, &rt); err != nil {
			t.Fatal(err)
		}
		if rt.Seq != wantSeq || rt.Round != int(wantSeq)-1 {
			t.Errorf("payload %d = %+v", i, rt)
		}
	}
	// since filters the backlog.
	if got := r.Snapshot(9); len(got) != 1 || got[0].Seq != 10 {
		t.Errorf("Snapshot(9) = %+v", got)
	}
	if got := r.Snapshot(10); len(got) != 0 {
		t.Errorf("Snapshot(10) = %+v", got)
	}
}

// TestTraceRingConcurrentReaders hammers one writer (the event-loop
// role) against concurrent snapshot readers and tail subscribers while
// the ring is constantly evicting. Run under -race, this is the
// eviction/readers lockdown: no torn reads, every delivered event is
// intact and strictly ordered per subscriber.
func TestTraceRingConcurrentReaders(t *testing.T) {
	r := NewTraceRing(TraceScores, 8)
	const rounds = 2000
	var wg sync.WaitGroup

	// Snapshot readers: sequences must be ascending and payloads
	// intact while eviction churns underneath them.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				evs := r.Snapshot(0)
				var prev uint64
				for _, ev := range evs {
					if ev.Seq <= prev {
						t.Errorf("snapshot out of order: %d after %d", ev.Seq, prev)
						return
					}
					prev = ev.Seq
					var rt RoundTrace
					if err := json.Unmarshal(ev.Data, &rt); err != nil {
						t.Errorf("torn payload: %v", err)
						return
					}
				}
			}
		}()
	}

	// Tail subscribers: strictly increasing sequences until cut loose
	// (slow-consumer disconnect is expected under load, not an error).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, backlog, _ := r.Subscribe(0)
			defer r.Unsubscribe(sub)
			var prev uint64
			for _, ev := range backlog {
				if ev.Seq <= prev {
					t.Errorf("backlog out of order")
					return
				}
				prev = ev.Seq
			}
			for ev := range sub.Ch {
				if ev.Seq <= prev {
					t.Errorf("tail out of order: %d after %d", ev.Seq, prev)
					return
				}
				prev = ev.Seq
			}
		}()
	}

	// Churning verbosity mirrors a runtime SetVerbosity while rounds
	// are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.SetVerbosity(Verbosity(i % 4))
			_ = r.Verbosity()
		}
	}()

	for i := 0; i < rounds; i++ {
		r.Emit(RoundTrace{Round: i, Actions: []ActionTrace{{Kind: "place", VM: i}}})
	}
	r.Close()
	wg.Wait()
	if got := r.Seq(); got != rounds {
		t.Fatalf("Seq = %d, want %d", got, rounds)
	}
	// Emissions after Close are dropped, subscriptions drain instantly.
	r.Emit(RoundTrace{})
	if got := r.Seq(); got != rounds {
		t.Fatalf("post-close emit advanced seq to %d", got)
	}
	sub, _, _ := r.Subscribe(0)
	if _, ok := <-sub.Ch; ok {
		t.Fatal("subscription on closed ring not closed")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "component", "test")
	var rec map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["component"] != "test" {
		t.Errorf("record = %v", rec)
	}

	buf.Reset()
	l, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filtering: %q", out)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}

	buf.Reset()
	l, err = NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	logf := LogfAdapter(l.With("component", "fleet"))
	logf("x=%d", 7)
	if out := buf.String(); !strings.Contains(out, "x=7") || !strings.Contains(out, "component=fleet") {
		t.Errorf("adapter line: %q", out)
	}
}
