package obs

import (
	"encoding/json"
	"sync"
)

// Job journey audit spans: one bounded, append-only lifecycle record
// per job — submitted → placed@node (with the solver's why-scores) →
// each migration → completed/violated — with simulated timestamps and
// attributed energy. Like the trace ring this is a write-only
// wall-clock side channel: the fleet's event loop records steps as the
// simulation emits lifecycle events, nothing in the scheduling path
// reads a journey back, and replayed rounds (crash recovery, restore,
// replication bootstrap) are suppressed by the caller so a record is
// never duplicated.

// Journey step kinds, in lifecycle order.
const (
	StepSubmitted = "submitted"
	StepPlaced    = "placed"
	StepRunning   = "running"
	StepMigrate   = "migrate"
	StepMigrated  = "migrated"
	StepRequeued  = "requeued"
	StepCompleted = "completed"
	StepViolated  = "violated"
)

// JourneyStep is one lifecycle transition of a job, stamped with the
// simulation's virtual time.
type JourneyStep struct {
	// T is the virtual time of the transition, in seconds.
	T float64 `json:"t"`
	// Kind is one of the Step* constants.
	Kind string `json:"kind"`
	// Node is the node involved (-1 when the step is not node-bound:
	// submitted, requeued after a failure).
	Node int `json:"node"`
	// Dest is the migration destination (-1 otherwise).
	Dest int `json:"dest"`
	// Why is the solver's score comparison that caused a placed or
	// migrate step, when decision tracing supplied one.
	Why *ActionTrace `json:"why,omitempty"`
	// Satisfaction is the SLA satisfaction percentage, terminal steps
	// only.
	Satisfaction float64 `json:"satisfaction_pct,omitempty"`
	// EnergyKWh is the energy attributed to the job so far, terminal
	// steps only.
	EnergyKWh float64 `json:"energy_kwh,omitempty"`
}

// Journey is one job's recorded lifecycle.
type Journey struct {
	Job   int           `json:"job"`
	Steps []JourneyStep `json:"steps"`
	// Truncated reports that the per-job step cap was hit and later
	// steps were dropped from the record (the firehose still carried
	// them live).
	Truncated bool `json:"truncated,omitempty"`
	// Outcome is "" while in flight, then "completed" or "violated".
	Outcome string `json:"outcome,omitempty"`
	// EnergyKWh is the host energy attributed to the job.
	EnergyKWh float64 `json:"energy_kwh"`
	// Satisfaction is the SLA satisfaction percentage after completion.
	Satisfaction float64 `json:"satisfaction_pct,omitempty"`
}

// JourneySummary is the steps-free form served by the journeys index.
type JourneySummary struct {
	Job          int     `json:"job"`
	Steps        int     `json:"steps"`
	Truncated    bool    `json:"truncated,omitempty"`
	Outcome      string  `json:"outcome,omitempty"`
	EnergyKWh    float64 `json:"energy_kwh"`
	Satisfaction float64 `json:"satisfaction_pct,omitempty"`
}

// journeyStepCap bounds one job's record: a job that requeues or
// migrates more often than this keeps its live firehose stream but the
// stored record marks itself Truncated instead of growing without
// bound.
const journeyStepCap = 64

// journeyWire is one firehose event: a step flattened with its ring
// sequence number and job ID.
type journeyWire struct {
	Seq uint64 `json:"seq"`
	Job int    `json:"job"`
	JourneyStep
}

// JourneyStore holds the bounded per-job journey records of one fleet
// plus the SSE firehose ring. Writes come from the fleet's event loop;
// reads from HTTP handlers. Memory is bounded by maxJobs × the step
// cap (FIFO eviction by first-step order) and the firehose ring depth.
type JourneyStore struct {
	mu      sync.Mutex
	maxJobs int
	jobs    map[int]*Journey
	order   []int // first-step order, for FIFO eviction
	pending map[int][]ActionTrace
	fire    *Ring
}

// NewJourneyStore builds a store retaining the last maxJobs job
// records (default 2048 when <= 0); the firehose ring holds fireDepth
// step events (default 256).
func NewJourneyStore(maxJobs, fireDepth int) *JourneyStore {
	if maxJobs <= 0 {
		maxJobs = 2048
	}
	return &JourneyStore{
		maxJobs: maxJobs,
		jobs:    make(map[int]*Journey),
		pending: make(map[int][]ActionTrace),
		fire:    NewRing(fireDepth),
	}
}

// StageActions replaces the staged why-scores with one round's applied
// actions. The solver emits its round trace before the harness applies
// the plan, so the fleet stages the actions here and the subsequent
// placed/migrate steps consume them in order.
func (s *JourneyStore) StageActions(acts []ActionTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.pending)
	for _, a := range acts {
		s.pending[a.VM] = append(s.pending[a.VM], a)
	}
}

// Record appends one step to the job's journey, creating the record on
// first sight (evicting the oldest job once maxJobs is reached) and
// attaching a staged why-score to placed/migrate steps. Every step is
// also emitted on the firehose, even past the per-job step cap.
func (s *JourneyStore) Record(job int, st JourneyStep) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[job]
	if j == nil {
		if len(s.order) >= s.maxJobs {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.jobs, oldest)
		}
		j = &Journey{Job: job}
		s.jobs[job] = j
		s.order = append(s.order, job)
	}
	if st.Kind == StepPlaced || st.Kind == StepMigrate {
		if q := s.pending[job]; len(q) > 0 {
			why := q[0]
			if len(q) == 1 {
				delete(s.pending, job)
			} else {
				s.pending[job] = q[1:]
			}
			st.Why = &why
		}
	}
	if len(j.Steps) >= journeyStepCap {
		j.Truncated = true
	} else {
		j.Steps = append(j.Steps, st)
	}
	if st.Kind == StepCompleted || st.Kind == StepViolated {
		j.Outcome = st.Kind
		j.Satisfaction = st.Satisfaction
		j.EnergyKWh = st.EnergyKWh
	}
	s.fire.Emit(func(seq uint64) []byte {
		data, err := json.Marshal(journeyWire{Seq: seq, Job: job, JourneyStep: st})
		if err != nil {
			return nil // plain structs; cannot happen
		}
		return data
	})
}

// Get returns a deep copy of the job's journey.
func (s *JourneyStore) Get(job int) (Journey, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[job]
	if !ok {
		return Journey{}, false
	}
	out := *j
	out.Steps = append([]JourneyStep(nil), j.Steps...)
	return out, true
}

// Summaries returns the retained journeys, oldest first, without their
// steps.
func (s *JourneyStore) Summaries() []JourneySummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JourneySummary, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		out = append(out, JourneySummary{
			Job: j.Job, Steps: len(j.Steps), Truncated: j.Truncated,
			Outcome: j.Outcome, EnergyKWh: j.EnergyKWh, Satisfaction: j.Satisfaction,
		})
	}
	return out
}

// Len returns the number of retained job records.
func (s *JourneyStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Seq returns the firehose's most recent sequence number.
func (s *JourneyStore) Seq() uint64 { return s.fire.Seq() }

// Snapshot returns retained firehose events with seq > since.
func (s *JourneyStore) Snapshot(since uint64) []RingEvent { return s.fire.Snapshot(since) }

// Subscribe attaches a firehose tail consumer (gapless with the
// returned backlog); the third result reports whether resuming from
// since skips evicted steps (gap).
func (s *JourneyStore) Subscribe(since uint64) (*RingSub, []RingEvent, bool) {
	return s.fire.Subscribe(since)
}

// Unsubscribe detaches a firehose consumer.
func (s *JourneyStore) Unsubscribe(sub *RingSub) { s.fire.Unsubscribe(sub) }

// Close disconnects firehose subscribers.
func (s *JourneyStore) Close() { s.fire.Close() }
