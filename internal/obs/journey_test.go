package obs

import (
	"encoding/json"
	"testing"
)

func TestJourneyRecordAndGet(t *testing.T) {
	s := NewJourneyStore(8, 16)
	defer s.Close()
	s.Record(3, JourneyStep{T: 0, Kind: StepSubmitted, Node: -1, Dest: -1})
	s.Record(3, JourneyStep{T: 15, Kind: StepPlaced, Node: 2, Dest: -1})
	s.Record(3, JourneyStep{T: 3615, Kind: StepCompleted, Node: 2, Dest: -1,
		Satisfaction: 100, EnergyKWh: 0.25})

	j, ok := s.Get(3)
	if !ok {
		t.Fatal("journey not recorded")
	}
	if len(j.Steps) != 3 || j.Steps[0].Kind != StepSubmitted || j.Steps[2].Kind != StepCompleted {
		t.Fatalf("steps = %+v", j.Steps)
	}
	if j.Outcome != StepCompleted || j.EnergyKWh != 0.25 || j.Satisfaction != 100 {
		t.Fatalf("terminal summary = %+v", j)
	}
	if _, ok := s.Get(99); ok {
		t.Fatal("unknown job resolved")
	}

	// Get returns a copy: mutating it must not reach the store.
	j.Steps[0].Kind = "tampered"
	if j2, _ := s.Get(3); j2.Steps[0].Kind != StepSubmitted {
		t.Fatal("Get leaked internal step slice")
	}
}

func TestJourneyFIFOEviction(t *testing.T) {
	s := NewJourneyStore(3, 8)
	defer s.Close()
	for job := 0; job < 5; job++ {
		s.Record(job, JourneyStep{Kind: StepSubmitted, Node: -1, Dest: -1})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want the cap 3", s.Len())
	}
	for _, evicted := range []int{0, 1} {
		if _, ok := s.Get(evicted); ok {
			t.Fatalf("job %d survived past the cap", evicted)
		}
	}
	sums := s.Summaries()
	if len(sums) != 3 || sums[0].Job != 2 || sums[2].Job != 4 {
		t.Fatalf("summaries = %+v, want jobs 2..4 oldest first", sums)
	}
}

func TestJourneyStepCapTruncates(t *testing.T) {
	s := NewJourneyStore(4, 8)
	defer s.Close()
	for i := 0; i < journeyStepCap+10; i++ {
		s.Record(1, JourneyStep{T: float64(i), Kind: StepRequeued, Node: -1, Dest: -1})
	}
	j, _ := s.Get(1)
	if len(j.Steps) != journeyStepCap {
		t.Fatalf("stored %d steps, want the cap %d", len(j.Steps), journeyStepCap)
	}
	if !j.Truncated {
		t.Fatal("over-cap journey not marked truncated")
	}
	// A terminal step past the cap still lands in the summary fields.
	s.Record(1, JourneyStep{T: 9999, Kind: StepViolated, Node: 0, Dest: -1,
		Satisfaction: 40, EnergyKWh: 1.5})
	j, _ = s.Get(1)
	if j.Outcome != StepViolated || j.Satisfaction != 40 || j.EnergyKWh != 1.5 {
		t.Fatalf("terminal step past cap lost: %+v", j)
	}
}

// TestJourneyStagedWhyScores: actions staged from a round trace attach
// to the next placed/migrate steps of the matching jobs, in FIFO order
// per job, and never to other step kinds.
func TestJourneyStagedWhyScores(t *testing.T) {
	s := NewJourneyStore(8, 8)
	defer s.Close()
	s.StageActions([]ActionTrace{
		{Kind: "place", VM: 1, From: -1, To: 4, Gain: -2.5},
		{Kind: "migrate", VM: 1, From: 4, To: 7, Gain: -1.0},
		{Kind: "place", VM: 2, From: -1, To: 5, Gain: -3.0},
	})
	s.Record(1, JourneyStep{Kind: StepSubmitted, Node: -1, Dest: -1})
	s.Record(1, JourneyStep{Kind: StepPlaced, Node: 4, Dest: -1})
	s.Record(1, JourneyStep{Kind: StepMigrate, Node: 4, Dest: 7})
	s.Record(2, JourneyStep{Kind: StepPlaced, Node: 5, Dest: -1})

	j1, _ := s.Get(1)
	if j1.Steps[0].Why != nil {
		t.Fatal("submitted step got a why-score")
	}
	if w := j1.Steps[1].Why; w == nil || w.To != 4 || w.Gain != -2.5 {
		t.Fatalf("placed why = %+v", j1.Steps[1].Why)
	}
	if w := j1.Steps[2].Why; w == nil || w.Kind != "migrate" || w.To != 7 {
		t.Fatalf("migrate why = %+v", j1.Steps[2].Why)
	}
	j2, _ := s.Get(2)
	if w := j2.Steps[0].Why; w == nil || w.To != 5 {
		t.Fatalf("job 2 why = %+v", w)
	}

	// A new round's staging replaces leftovers entirely.
	s.StageActions(nil)
	s.Record(1, JourneyStep{Kind: StepMigrate, Node: 7, Dest: 9})
	j1, _ = s.Get(1)
	if j1.Steps[3].Why != nil {
		t.Fatal("stale staged action survived a new round")
	}
}

// TestJourneyFirehose: every recorded step is emitted on the firehose
// with ascending sequence numbers and the flattened wire shape, and
// Snapshot(since) resumes without gaps or duplicates.
func TestJourneyFirehose(t *testing.T) {
	s := NewJourneyStore(4, 16)
	defer s.Close()
	sub, backlog, _ := s.Subscribe(0)
	defer s.Unsubscribe(sub)
	if len(backlog) != 0 {
		t.Fatalf("fresh store has backlog of %d", len(backlog))
	}
	s.Record(7, JourneyStep{T: 1, Kind: StepSubmitted, Node: -1, Dest: -1})
	s.Record(7, JourneyStep{T: 2, Kind: StepPlaced, Node: 3, Dest: -1})

	for i, wantKind := range []string{StepSubmitted, StepPlaced} {
		ev := <-sub.Ch
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
		var wire struct {
			Seq  uint64 `json:"seq"`
			Job  int    `json:"job"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(ev.Data, &wire); err != nil {
			t.Fatalf("firehose payload: %v", err)
		}
		if wire.Job != 7 || wire.Kind != wantKind || wire.Seq != ev.Seq {
			t.Fatalf("wire = %+v, want job 7 kind %s", wire, wantKind)
		}
	}

	if evs := s.Snapshot(1); len(evs) != 1 || evs[0].Seq != 2 {
		t.Fatalf("Snapshot(1) = %d events", len(evs))
	}
	if s.Seq() != 2 {
		t.Fatalf("Seq = %d", s.Seq())
	}
}
