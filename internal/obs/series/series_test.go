package series

import (
	"strings"
	"testing"
)

func sampleAt(t float64) Sample {
	return Sample{T: t, Watts: 100 + t, KWh: t / 3600, Queue: int(t) % 5}
}

func TestStoreRingEviction(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		s.Add(sampleAt(float64(i * 60)))
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10 (evicted samples still counted)", s.Count())
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want the ring depth 4", s.Len())
	}
	got := s.Samples(0)
	if len(got) != 4 {
		t.Fatalf("Samples returned %d, want 4", len(got))
	}
	for i, smp := range got {
		want := float64((6 + i) * 60) // oldest retained is the 7th sample
		if smp.T != want {
			t.Fatalf("sample %d at t=%v, want %v (oldest-first order)", i, smp.T, want)
		}
	}
	if last, ok := s.Latest(); !ok || last.T != 540 {
		t.Fatalf("Latest = %+v ok=%v, want t=540", last, ok)
	}
}

func TestStoreSamplesSince(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		s.Add(sampleAt(float64(i * 100)))
	}
	got := s.Samples(200)
	if len(got) != 3 || got[0].T != 200 {
		t.Fatalf("Samples(200) = %d samples starting %v, want 3 from t=200", len(got), got[0].T)
	}
}

// TestParseQueryErrors pins the structured-400 contract: every
// malformed parameter is rejected with a message naming the parameter,
// never silently defaulted.
func TestParseQueryErrors(t *testing.T) {
	cases := []struct {
		name                        string
		metric, since, step, format string
		wantErr                     string
	}{
		{"bad metric", "wattz", "", "", "", "unknown metric"},
		{"negative since", "", "-60", "", "", "non-negative"},
		{"nan since", "", "NaN", "", "", "non-negative"},
		{"garbage since", "", "yesterday", "", "", "not a number"},
		{"zero step", "", "", "0", "", "positive"},
		{"negative step", "", "", "-300", "", "positive"},
		{"nan step", "", "", "NaN", "", "positive"},
		{"garbage step", "", "", "hourly", "", "not a number"},
		{"bad format", "", "", "", "xml", "unknown format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseQuery(tc.metric, tc.since, tc.step, tc.format)
			if err == nil {
				t.Fatalf("ParseQuery(%q,%q,%q,%q) accepted", tc.metric, tc.since, tc.step, tc.format)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseQueryDefaults(t *testing.T) {
	q, err := ParseQuery("", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if q.Metric != "" || q.Since != 0 || q.Step != 0 || q.Format != "json" {
		t.Fatalf("defaults = %+v", q)
	}
	q, err = ParseQuery("watts", "120", "600", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if q.Metric != "watts" || q.Since != 120 || q.Step != 600 || q.Format != "csv" {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestValueCoversEveryMetric(t *testing.T) {
	smp := Sample{
		T: 60, Watts: 1, KWh: 2, SLA: 3, Utilization: 4, Queue: 5,
		Running: 6, On: 7, Working: 8, Off: 9, Migrations: 10, Completed: 11,
	}
	want := map[string]float64{
		"watts": 1, "kwh": 2, "sla_pct": 3, "utilization_pct": 4, "queue": 5,
		"running": 6, "nodes_on": 7, "nodes_working": 8, "nodes_off": 9,
		"migrations": 10, "completed": 11,
	}
	names := Metrics()
	if len(names) != len(want) {
		t.Fatalf("Metrics() lists %d names, want %d", len(names), len(want))
	}
	for _, name := range names {
		v, ok := Value(smp, name)
		if !ok || v != want[name] {
			t.Fatalf("Value(%q) = %v ok=%v, want %v", name, v, ok, want[name])
		}
	}
	if _, ok := Value(smp, "nope"); ok {
		t.Fatal("unknown metric resolved")
	}
}

func TestDownsampleKeepsBucketTail(t *testing.T) {
	var in []Sample
	for i := 0; i < 10; i++ {
		in = append(in, sampleAt(float64(i*60))) // 0..540 at minute ticks
	}
	out := Downsample(in, 300)
	// Buckets [0,300) and [300,600): the last sample of each survives.
	if len(out) != 2 || out[0].T != 240 || out[1].T != 540 {
		ts := make([]float64, len(out))
		for i, smp := range out {
			ts[i] = smp.T
		}
		t.Fatalf("Downsample(step=300) kept %v, want [240 540]", ts)
	}
	if got := Downsample(in, 0); len(got) != len(in) {
		t.Fatalf("zero step dropped samples: %d of %d", len(got), len(in))
	}
}

func TestPoints(t *testing.T) {
	in := []Sample{sampleAt(0), sampleAt(60)}
	pts := Points(in, "watts")
	if len(pts) != 2 || pts[0].V != 100 || pts[1].V != 160 {
		t.Fatalf("Points = %+v", pts)
	}
}

// FuzzSeriesQuery: ParseQuery must never panic, and anything it
// accepts must satisfy the query invariants the handlers rely on
// (known metric, non-negative since, positive step, known format).
func FuzzSeriesQuery(f *testing.F) {
	f.Add("watts", "0", "60", "json")
	f.Add("", "", "", "")
	f.Add("kwh", "86400", "3600", "csv")
	f.Add("wattz", "-1", "0", "xml")
	f.Add("sla_pct", "NaN", "Inf", "JSON")
	f.Add("completed", "1e308", "1e-308", "csv")
	f.Fuzz(func(t *testing.T, metric, since, step, format string) {
		q, err := ParseQuery(metric, since, step, format)
		if err != nil {
			return
		}
		if q.Metric != "" {
			if _, ok := metricsByName[q.Metric]; !ok {
				t.Fatalf("accepted unknown metric %q", q.Metric)
			}
		}
		if q.Since < 0 || q.Since != q.Since {
			t.Fatalf("accepted since %v", q.Since)
		}
		if step != "" && q.Step <= 0 {
			t.Fatalf("accepted step %v from %q", q.Step, step)
		}
		if q.Format != "json" && q.Format != "csv" {
			t.Fatalf("accepted format %q", q.Format)
		}
		// The accepted query must execute without panicking.
		in := []Sample{sampleAt(0), sampleAt(600), sampleAt(1200)}
		out := Downsample(in, q.Step)
		if q.Metric != "" {
			Points(out, q.Metric)
		}
	})
}
