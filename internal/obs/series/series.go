// Package series is the in-process accounting time-series store: a
// bounded ring of per-tick samples recording the paper's evaluation
// quantities — power draw, energy accumulated, SLA fulfillment,
// utilization, node counts and migration churn — per fleet and per
// node class. Samples are taken at simulated-interval boundaries (the
// datacenter's housekeeping tick), so two identical runs produce
// identical series: the store is a write-only side channel, stamped
// with virtual time, that nothing in the scheduling path reads back.
//
// The package is a leaf (standard library only) so the datacenter
// harness can build samples and the HTTP layer can parse queries
// without cycles.
package series

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// ClassSample is one node class's slice of a sample.
type ClassSample struct {
	// Class is the node class name.
	Class string `json:"class"`
	// Watts is the class's aggregate power draw at the sample instant.
	Watts float64 `json:"watts"`
	// KWh is the class's cumulative energy since the run started.
	KWh float64 `json:"kwh"`
	// On counts nodes powered on (booting included), Working the
	// subset hosting active VMs, Off the nodes powered down.
	On      int `json:"on"`
	Working int `json:"working"`
	Off     int `json:"off"`
}

// Sample is one accounting observation at a simulated-interval
// boundary.
type Sample struct {
	// T is the virtual time of the sample, in seconds.
	T float64 `json:"t"`
	// Watts is the fleet's total power draw at T.
	Watts float64 `json:"watts"`
	// KWh is the cumulative energy consumed up to T.
	KWh float64 `json:"kwh"`
	// SLA is the mean SLA satisfaction percentage of completed jobs.
	SLA float64 `json:"sla_pct"`
	// Utilization is reserved CPU as a percentage of online capacity.
	Utilization float64 `json:"utilization_pct"`
	// Queue is the number of jobs waiting for placement, Running the
	// VMs currently executing (migrations included).
	Queue   int `json:"queue"`
	Running int `json:"running"`
	// On/Working/Off are fleet-wide node counts (On includes booting).
	On      int `json:"nodes_on"`
	Working int `json:"nodes_working"`
	Off     int `json:"nodes_off"`
	// Migrations and Completed are cumulative counters; their slope is
	// the churn.
	Migrations int `json:"migrations_total"`
	Completed  int `json:"completed_total"`
	// Classes is the per-node-class breakdown, in first-appearance
	// order of the cluster layout.
	Classes []ClassSample `json:"classes,omitempty"`
}

// Point is one (time, value) pair of a single-metric query.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// metricsByName maps query metric names onto sample fields.
var metricsByName = map[string]func(Sample) float64{
	"watts":           func(s Sample) float64 { return s.Watts },
	"kwh":             func(s Sample) float64 { return s.KWh },
	"sla_pct":         func(s Sample) float64 { return s.SLA },
	"utilization_pct": func(s Sample) float64 { return s.Utilization },
	"queue":           func(s Sample) float64 { return float64(s.Queue) },
	"running":         func(s Sample) float64 { return float64(s.Running) },
	"nodes_on":        func(s Sample) float64 { return float64(s.On) },
	"nodes_working":   func(s Sample) float64 { return float64(s.Working) },
	"nodes_off":       func(s Sample) float64 { return float64(s.Off) },
	"migrations":      func(s Sample) float64 { return float64(s.Migrations) },
	"completed":       func(s Sample) float64 { return float64(s.Completed) },
}

// Metrics returns the queryable metric names, sorted.
func Metrics() []string {
	out := make([]string, 0, len(metricsByName))
	for name := range metricsByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Value extracts the named metric from a sample; ok is false for an
// unknown name.
func Value(s Sample, metric string) (float64, bool) {
	fn, ok := metricsByName[metric]
	if !ok {
		return 0, false
	}
	return fn(s), true
}

// Store is the bounded sample ring: one writer (the fleet's event
// loop, at tick boundaries), any number of concurrent readers.
type Store struct {
	mu    sync.Mutex
	depth int
	ring  []Sample // circular; oldest entry at head once full
	head  int
	count uint64 // samples ever recorded
}

// NewStore builds a store retaining the last depth samples (default
// 4096 when depth <= 0).
func NewStore(depth int) *Store {
	if depth <= 0 {
		depth = 4096
	}
	return &Store{depth: depth}
}

// Add records one sample.
func (s *Store) Add(smp Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	if len(s.ring) < s.depth {
		s.ring = append(s.ring, smp)
		return
	}
	s.ring[s.head] = smp
	s.head = (s.head + 1) % s.depth
}

// Count returns the number of samples ever recorded (retained or
// evicted).
func (s *Store) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Len returns the number of retained samples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Latest returns the most recent sample.
func (s *Store) Latest() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return Sample{}, false
	}
	if len(s.ring) < s.depth {
		return s.ring[len(s.ring)-1], true
	}
	return s.ring[(s.head+s.depth-1)%s.depth], true
}

// Samples returns retained samples with T >= since, oldest first.
func (s *Store) Samples(since float64) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	for i := 0; i < len(s.ring); i++ {
		smp := s.ring[(s.head+i)%len(s.ring)] // oldest first
		if smp.T >= since {
			out = append(out, smp)
		}
	}
	return out
}

// Query is a parsed series request.
type Query struct {
	// Metric selects a single metric ("" = full samples).
	Metric string
	// Since drops samples before this virtual time.
	Since float64
	// Step downsamples to one sample per step-second bucket, keeping
	// the last sample of each bucket (0 = raw).
	Step float64
	// Format is "json" or "csv".
	Format string
}

// ParseQuery validates the raw query parameters of a series request.
// Empty strings take the defaults (all metrics, since 0, raw samples,
// JSON); anything malformed is an error the HTTP layer maps onto a
// structured 400.
func ParseQuery(metric, since, step, format string) (Query, error) {
	q := Query{Metric: metric, Format: "json"}
	if metric != "" {
		if _, ok := metricsByName[metric]; !ok {
			return Query{}, fmt.Errorf("series: unknown metric %q (one of %v)", metric, Metrics())
		}
	}
	if since != "" {
		v, err := strconv.ParseFloat(since, 64)
		if err != nil {
			return Query{}, fmt.Errorf("series: bad since %q: not a number", since)
		}
		if v < 0 || v != v { // reject negatives and NaN
			return Query{}, fmt.Errorf("series: bad since %q: must be a non-negative time", since)
		}
		q.Since = v
	}
	if step != "" {
		v, err := strconv.ParseFloat(step, 64)
		if err != nil {
			return Query{}, fmt.Errorf("series: bad step %q: not a number", step)
		}
		if v <= 0 || v != v {
			return Query{}, fmt.Errorf("series: bad step %q: must be a positive interval", step)
		}
		q.Step = v
	}
	switch format {
	case "", "json":
	case "csv":
		q.Format = "csv"
	default:
		return Query{}, fmt.Errorf("series: unknown format %q (json|csv)", format)
	}
	return q, nil
}

// Downsample keeps the last sample of each step-second bucket; a zero
// step returns the input unchanged.
func Downsample(in []Sample, step float64) []Sample {
	if step <= 0 || len(in) == 0 {
		return in
	}
	out := make([]Sample, 0, len(in))
	for i, smp := range in {
		if i+1 < len(in) && int64(in[i+1].T/step) == int64(smp.T/step) {
			continue // a later sample shares this bucket
		}
		out = append(out, smp)
	}
	return out
}

// Points projects samples onto a single metric. The metric name must
// have been validated by ParseQuery.
func Points(in []Sample, metric string) []Point {
	out := make([]Point, 0, len(in))
	for _, smp := range in {
		v, ok := Value(smp, metric)
		if !ok {
			continue
		}
		out = append(out, Point{T: smp.T, V: v})
	}
	return out
}
