// Package obs is the observability layer's leaf: the decision-trace
// schema the solver emits, the bounded per-fleet trace ring the API
// serves, and the structured-logging helpers the binaries share. It
// imports nothing above the standard library so every layer — core
// included — can depend on it without cycles.
//
// Determinism contract: everything here is a wall-clock side channel.
// The solver WRITES traces; nothing in the scheduling path ever READS
// one back, so any verbosity (including TraceScores) leaves the
// simulation byte-for-byte identical to a run with tracing off. The
// chaos byte-identity suite enforces this at 10k nodes.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
)

// ClampJSON maps non-finite scores onto ±MaxFloat64 (and NaN onto 0)
// so trace records survive encoding/json, which has no Inf token. An
// infeasible current host therefore shows up as MaxFloat64 — still
// unmistakably "infinite" next to real scores — instead of failing to
// encode.
func ClampJSON(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsNaN(v):
		return 0
	}
	return v
}

// Verbosity selects how much the solver records per round.
type Verbosity int32

const (
	// TraceOff records nothing.
	TraceOff Verbosity = iota
	// TraceRounds records per-round summaries: timings, candidate and
	// host counts, move counts, carry/dirty statistics.
	TraceRounds
	// TraceActions adds one "why" record per applied action: the
	// scores compared and the winning margin.
	TraceActions
	// TraceScores (maximum) adds the score-term breakdown — the
	// green-energy/power and SLA components — to every action record.
	TraceScores
)

// ParseVerbosity maps the flag spellings to a level.
func ParseVerbosity(s string) (Verbosity, error) {
	switch s {
	case "off", "none", "0":
		return TraceOff, nil
	case "rounds", "1":
		return TraceRounds, nil
	case "actions", "2":
		return TraceActions, nil
	case "scores", "full", "max", "3":
		return TraceScores, nil
	}
	return TraceOff, fmt.Errorf("obs: unknown trace verbosity %q (off|rounds|actions|scores)", s)
}

// String renders the canonical flag spelling.
func (v Verbosity) String() string {
	switch v {
	case TraceRounds:
		return "rounds"
	case TraceActions:
		return "actions"
	case TraceScores:
		return "scores"
	}
	return "off"
}

// ScoreTerms is the per-action score decomposition recorded at
// TraceScores: the components of the paper's placement score for the
// chosen target, so a migration is explainable down to which term won.
type ScoreTerms struct {
	// Base is the time-independent half (resource fits, concurrency,
	// power, fault terms) of the chosen cell.
	Base float64 `json:"base"`
	// Time is the time-dependent half (virtualization overhead + SLA)
	// of the chosen cell.
	Time float64 `json:"time"`
	// Power is the green-energy/consolidation term Ppwr of the chosen
	// cell in isolation.
	Power float64 `json:"power"`
	// SLA is the deadline-satisfaction term PSLA of the chosen cell in
	// isolation.
	SLA float64 `json:"sla"`
}

// ActionTrace is one applied solver action and why it won.
type ActionTrace struct {
	// Kind is "place" (from queue) or "migrate".
	Kind string `json:"kind"`
	// VM is the VM's ID.
	VM int `json:"vm"`
	// From is the source node ID, -1 for a placement from the queue.
	From int `json:"from"`
	// To is the chosen target node ID.
	To int `json:"to"`
	// Current is the score of leaving the VM where it is (the queue
	// score for a queued VM, the current host's cell otherwise).
	Current float64 `json:"current"`
	// Chosen is the winning target's score.
	Chosen float64 `json:"chosen"`
	// Gain is the winning margin Chosen − Current; more negative is
	// better (the solver minimizes), and for a migration it cleared
	// the hysteresis threshold.
	Gain float64 `json:"gain"`
	// Terms is the score breakdown (TraceScores only).
	Terms *ScoreTerms `json:"terms,omitempty"`
}

// RoundTrace is one solver round's structured trace.
type RoundTrace struct {
	// Seq is the ring-assigned sequence number, monotonically
	// increasing per fleet (assigned by TraceRing.Emit; 0 before).
	Seq uint64 `json:"seq"`
	// Round is the scheduler's round counter after this round.
	Round int `json:"round"`
	// Now is the simulation's virtual time at the round, in seconds.
	Now float64 `json:"now"`
	// Solver names the engine: "naive", "incremental" or "sharded".
	Solver string `json:"solver"`
	// Shards is the shard count for a sharded round (0 otherwise).
	Shards int `json:"shards,omitempty"`
	// WallNanos is the wall-clock duration of the whole round.
	WallNanos int64 `json:"wall_ns"`
	// Hosts and Candidates size the round's score matrix.
	Hosts      int `json:"hosts"`
	Candidates int `json:"candidates"`
	// Moves is the number of actions the hill climber applied.
	Moves int `json:"moves"`
	// ScoreEvals counts full score evaluations this round.
	ScoreEvals int `json:"score_evals"`
	// Carry/dirty statistics for this round: matrix cells reused from
	// the previous round, and rows/columns whose carry keys went stale.
	ReusedCells int `json:"reused_cells"`
	StaleRows   int `json:"stale_rows"`
	StaleCols   int `json:"stale_cols"`
	// LimitHit reports that the round stopped on the iteration cap
	// rather than convergence.
	LimitHit bool `json:"limit_hit,omitempty"`
	// Actions holds the per-action why records (TraceActions and up).
	Actions []ActionTrace `json:"actions,omitempty"`
}

// TraceSink receives solver round traces. The solver consults
// Verbosity() once per round (so a sink may flip levels at runtime)
// and calls Emit for every round when the level is above TraceOff.
type TraceSink interface {
	Verbosity() Verbosity
	Emit(rt RoundTrace)
}

// TraceEvent is one ring entry: the sequence number and the
// pre-marshaled RoundTrace JSON, ready for the API to serve without
// re-encoding.
type TraceEvent = RingEvent

// TraceSub is one SSE tail consumer's view of the trace stream. Ch is
// closed when the consumer falls too far behind or the ring closes.
type TraceSub = RingSub

// TraceRing is a bounded ring of round traces with SSE-style tail
// subscriptions: the per-fleet decision log behind GET /trace. It
// implements TraceSink; Emit assigns sequence numbers, marshals once
// and fans out via the generic Ring. Safe for one writer (the fleet's
// event loop) and any number of concurrent readers.
type TraceRing struct {
	mu   sync.Mutex
	verb Verbosity
	ring *Ring
}

// NewTraceRing builds a ring holding the last depth rounds (default
// 256 when depth <= 0) at the given verbosity.
func NewTraceRing(verb Verbosity, depth int) *TraceRing {
	return &TraceRing{verb: verb, ring: NewRing(depth)}
}

// Verbosity returns the ring's recording level.
func (r *TraceRing) Verbosity() Verbosity {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.verb
}

// SetVerbosity changes the recording level at runtime.
func (r *TraceRing) SetVerbosity(v Verbosity) {
	r.mu.Lock()
	r.verb = v
	r.mu.Unlock()
}

// Emit assigns the next sequence number, stores the trace in the ring
// and forwards it to every live subscriber.
func (r *TraceRing) Emit(rt RoundTrace) {
	r.ring.Emit(func(seq uint64) []byte {
		rt.Seq = seq
		data, err := json.Marshal(rt)
		if err != nil {
			return nil // plain structs; cannot happen
		}
		return data
	})
}

// Seq returns the sequence number of the most recent trace.
func (r *TraceRing) Seq() uint64 { return r.ring.Seq() }

// Snapshot returns the retained traces with sequence number > since,
// oldest first.
func (r *TraceRing) Snapshot(since uint64) []TraceEvent { return r.ring.Snapshot(since) }

// Subscribe registers a tail consumer and returns it along with the
// backlog of retained traces with sequence number > since, and whether
// resuming from since skips evicted traces (gap). Registering and
// snapshotting under one lock makes the hand-off gapless.
func (r *TraceRing) Subscribe(since uint64) (*TraceSub, []TraceEvent, bool) {
	return r.ring.Subscribe(since)
}

// Unsubscribe removes the subscriber; safe after a slow-consumer
// disconnect or ring close.
func (r *TraceRing) Unsubscribe(sub *TraceSub) { r.ring.Unsubscribe(sub) }

// Close disconnects every subscriber and drops future emissions.
func (r *TraceRing) Close() { r.ring.Close() }
