package obs

import "sync"

// RingEvent is one ring entry: the sequence number and a pre-marshaled
// JSON payload, ready for the API to serve without re-encoding.
type RingEvent struct {
	Seq  uint64
	Data []byte
}

// ringSubBuffer is each tail subscriber's channel depth; a consumer
// lagging further is disconnected, mirroring the event broker's
// slow-consumer contract.
const ringSubBuffer = 64

// RingSub is one SSE tail consumer's view of a ring's stream. Ch is
// closed when the consumer falls too far behind or the ring closes.
type RingSub struct {
	Ch chan RingEvent
}

// Ring is a bounded ring of pre-marshaled events with SSE-style tail
// subscriptions: the generic mechanics behind the per-fleet decision
// log (TraceRing) and the job-journey firehose. Emit assigns monotone
// sequence numbers, stores the payload and fans out; tail consumers
// that cannot keep up are cut loose so a slow reader never
// backpressures the event loop. Safe for one writer and any number of
// concurrent readers.
type Ring struct {
	mu      sync.Mutex
	closed  bool
	nextSeq uint64
	ring    []RingEvent // circular; oldest entry at head once full
	head    int
	ringCap int
	subs    map[*RingSub]struct{}
}

// NewRing builds a ring holding the last depth events (default 256
// when depth <= 0).
func NewRing(depth int) *Ring {
	if depth <= 0 {
		depth = 256
	}
	return &Ring{ringCap: depth, subs: make(map[*RingSub]struct{})}
}

// Emit assigns the next sequence number, calls build with it to
// produce the payload (so the payload can embed its own seq), stores
// the event and forwards it to every live subscriber. A nil payload
// aborts the emission and returns the sequence counter to its prior
// value. Returns the assigned sequence number, 0 when nothing was
// emitted.
func (r *Ring) Emit(build func(seq uint64) []byte) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0
	}
	r.nextSeq++
	data := build(r.nextSeq)
	if data == nil {
		r.nextSeq--
		return 0
	}
	ev := RingEvent{Seq: r.nextSeq, Data: data}
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.head] = ev
		r.head = (r.head + 1) % r.ringCap
	}
	for sub := range r.subs {
		select {
		case sub.Ch <- ev:
		default:
			// Slow tail consumer: cut it loose so observability never
			// backpressures the writer.
			delete(r.subs, sub)
			close(sub.Ch)
		}
	}
	return ev.Seq
}

// Seq returns the sequence number of the most recent event.
func (r *Ring) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextSeq
}

// Snapshot returns the retained events with sequence number > since,
// oldest first.
func (r *Ring) Snapshot(since uint64) []RingEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backlogLocked(since)
}

func (r *Ring) backlogLocked(since uint64) []RingEvent {
	var out []RingEvent
	for i := 0; i < len(r.ring); i++ {
		ev := r.ring[(r.head+i)%len(r.ring)] // oldest first
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	return out
}

// gapLocked reports whether a resume from since would skip evicted
// events: since names a past sequence number whose successor is no
// longer retained. A fresh tail (since 0) or a future/current since is
// never a gap.
func (r *Ring) gapLocked(since uint64) bool {
	if since == 0 || since >= r.nextSeq {
		return false
	}
	if len(r.ring) == 0 {
		return true
	}
	oldest := r.ring[0].Seq
	if len(r.ring) == r.ringCap {
		oldest = r.ring[r.head].Seq
	}
	return oldest > since+1
}

// Subscribe registers a tail consumer and returns it along with the
// backlog of retained events with sequence number > since, and whether
// resuming from since skips evicted events (gap) — callers surface
// that to the consumer instead of silently resuming at the tail.
// Registering and snapshotting under one lock makes the hand-off
// gapless.
func (r *Ring) Subscribe(since uint64) (*RingSub, []RingEvent, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	backlog := r.backlogLocked(since)
	gap := r.gapLocked(since)
	sub := &RingSub{Ch: make(chan RingEvent, ringSubBuffer)}
	if r.closed {
		close(sub.Ch)
		return sub, backlog, gap
	}
	r.subs[sub] = struct{}{}
	return sub, backlog, gap
}

// Unsubscribe removes the subscriber; safe after a slow-consumer
// disconnect or ring close.
func (r *Ring) Unsubscribe(sub *RingSub) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.subs[sub]; ok {
		delete(r.subs, sub)
		close(sub.Ch)
	}
}

// Close disconnects every subscriber and drops future emissions.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for sub := range r.subs {
		delete(r.subs, sub)
		close(sub.Ch)
	}
}
