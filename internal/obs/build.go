package obs

import (
	"runtime/debug"
	"sync"
)

// Build identity, read once from the build info Go embeds in every
// binary. The VCS fields are stamped by `go build` inside a git
// checkout; `go test` binaries and builds outside a checkout carry
// none, so both accessors degrade to stable placeholders.

var buildInfo = sync.OnceValues(func() (version, revision string) {
	version = "(devel)"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, ""
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty && rev != "" {
		rev += "+dirty"
	}
	return version, rev
})

// BuildVersion returns the module version from the embedded build
// info ("(devel)" for plain builds).
func BuildVersion() string {
	v, _ := buildInfo()
	return v
}

// BuildRevision returns the VCS revision the binary was built from
// (truncated to 12 hex digits, "+dirty" when the checkout had local
// modifications), or "" when the build embedded no VCS info.
func BuildRevision() string {
	_, r := buildInfo()
	return r
}
