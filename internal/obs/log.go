package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Structured logging for the binaries: every cmd/* main builds one
// root slog.Logger from its -log-level/-log-format flags (registered
// by internal/cli) and derives component loggers with
// logger.With("component", ...). Libraries keep taking plain
// Logf(format, args...) funcs — LogfAdapter bridges the two so no
// internal package grows a slog dependency in its config surface.

// NewLogger builds a slog.Logger writing to w. level is one of
// debug|info|warn|error; format is text|json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text|json)", format)
	}
	return slog.New(h), nil
}

// LogfAdapter wraps a component logger as the Logf(format, args...)
// func the internal packages take in their configs. Each line becomes
// one Info record whose msg is the formatted string.
func LogfAdapter(l *slog.Logger) func(format string, args ...interface{}) {
	return func(format string, args ...interface{}) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
