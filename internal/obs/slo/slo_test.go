package slo

import (
	"strings"
	"testing"
)

func TestParseValidation(t *testing.T) {
	good := `[
		{"name": "sla-floor", "metric": "sla_pct", "min": 95},
		{"name": "power-budget", "metric": "watts", "max": 5000,
		 "short_window_s": 600, "long_window_s": 7200, "budget": 0.05}
	]`
	objs, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Name != "sla-floor" || objs[1].Budget != 0.05 {
		t.Fatalf("parsed = %+v", objs)
	}

	bad := []struct {
		name, doc, wantErr string
	}{
		{"not json", `{`, "parsing"},
		{"missing name", `[{"metric": "watts", "max": 1}]`, "needs a name"},
		{"missing metric", `[{"name": "x", "max": 1}]`, "needs a metric"},
		{"no bound", `[{"name": "x", "metric": "watts"}]`, "min floor or a max ceiling"},
		{"max below min", `[{"name": "x", "metric": "watts", "min": 10, "max": 5}]`, "below min"},
		{"negative window", `[{"name": "x", "metric": "watts", "max": 1, "short_window_s": -60}]`, "negative window"},
		{"short over long", `[{"name": "x", "metric": "watts", "max": 1, "short_window_s": 7200, "long_window_s": 600}]`, "exceeds long window"},
		{"budget over 1", `[{"name": "x", "metric": "watts", "max": 1, "budget": 2}]`, "outside [0, 1]"},
		{"duplicate", `[{"name": "x", "metric": "watts", "max": 1}, {"name": "x", "metric": "kwh", "max": 2}]`, "duplicate"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.doc)); err == nil {
				t.Fatalf("accepted %s", tc.doc)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// drive feeds the engine one observation per tick second from t0.
func drive(e *Engine, t0 float64, ticks int, step float64, value float64) float64 {
	t := t0
	for i := 0; i < ticks; i++ {
		t = t0 + float64(i)*step
		e.Observe(t, func(string) (float64, bool) { return value, true })
	}
	return t
}

// TestBurnRateFiresAndClears drives the canonical power-budget episode
// deterministically: good ticks keep the alert ok, a sustained
// violation fires it once both windows burn over budget, and a
// recovered short window clears it while the transition counters
// remember the episode.
func TestBurnRateFiresAndClears(t *testing.T) {
	obj := Objective{
		Name: "power-budget", Metric: "watts", Max: 100,
		ShortWindow: 300, LongWindow: 1200, Budget: 0.1,
	}
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine([]Objective{obj})

	// Within budget: never fires.
	last := drive(e, 0, 20, 60, 50)
	a := e.Alerts()[0]
	if a.State != "ok" || a.ShortBurn != 0 || a.FiredTotal != 0 {
		t.Fatalf("healthy run alert = %+v", a)
	}

	// Sustained violation: short AND long burn exceed 1 → fires once.
	last = drive(e, last+60, 20, 60, 500)
	a = e.Alerts()[0]
	if a.State != "firing" || a.FiredTotal != 1 {
		t.Fatalf("sustained violation alert = %+v", a)
	}
	if a.ShortBurn <= 1 || a.LongBurn <= 1 {
		t.Fatalf("firing with burns %.2f/%.2f, want both > 1", a.ShortBurn, a.LongBurn)
	}
	if a.Since == 0 {
		t.Fatal("firing alert has no since timestamp")
	}
	if e.Firing() != 1 {
		t.Fatalf("Firing = %d", e.Firing())
	}

	// Staying violated keeps one episode: no re-fire while firing.
	last = drive(e, last+60, 5, 60, 500)
	if a = e.Alerts()[0]; a.FiredTotal != 1 {
		t.Fatalf("re-fired mid-episode: %+v", a)
	}

	// Recovery: once the short window's violated fraction falls under
	// budget the alert clears, even while the long window still burns.
	drive(e, last+60, 10, 60, 50)
	a = e.Alerts()[0]
	if a.State != "firing" && a.ClearedTotal != 1 {
		t.Fatalf("expected a clear transition, got %+v", a)
	}
	if a.State == "firing" {
		t.Fatalf("short window recovered but alert still firing: %+v", a)
	}
	if a.FiredTotal != 1 || a.ClearedTotal != 1 || a.Since != 0 {
		t.Fatalf("post-episode counters = %+v", a)
	}
	if e.Firing() != 0 {
		t.Fatalf("Firing = %d after clear", e.Firing())
	}
}

// TestBurnRateShortSpikeDoesNotFire: one bad tick inside an otherwise
// healthy hour trips the short window but not the long one, so the
// two-window rule holds the alert ok.
func TestBurnRateShortSpikeDoesNotFire(t *testing.T) {
	obj := Objective{
		Name: "sla-floor", Metric: "sla_pct", Min: 95,
		ShortWindow: 120, LongWindow: 3600, Budget: 0.05,
	}
	e := NewEngine([]Objective{obj})
	last := drive(e, 0, 50, 60, 100)
	e.Observe(last+60, func(string) (float64, bool) { return 40, true }) // one bad tick
	a := e.Alerts()[0]
	if a.State != "ok" || a.FiredTotal != 0 {
		t.Fatalf("single spike fired the alert: %+v", a)
	}
	if a.ShortBurn <= 1 {
		t.Fatalf("short burn %.2f, want > 1 (spike fills the short window)", a.ShortBurn)
	}
	if a.LongBurn > 1 {
		t.Fatalf("long burn %.2f, want <= 1", a.LongBurn)
	}
}

// TestEngineSkipsUnresolvedMetrics: a metric the resolver cannot
// supply (admit_p99_seconds before any admissions) leaves the
// objective untouched instead of feeding it zeros.
func TestEngineSkipsUnresolvedMetrics(t *testing.T) {
	e := NewEngine([]Objective{{Name: "p99", Metric: "admit_p99_seconds", Max: 0.5}})
	for i := 0; i < 10; i++ {
		e.Observe(float64(i*60), func(string) (float64, bool) { return 0, false })
	}
	a := e.Alerts()[0]
	if a.State != "ok" || a.ShortBurn != 0 || a.LongBurn != 0 {
		t.Fatalf("unresolved metric moved the alert: %+v", a)
	}
}

// TestEngineDeterminism: two engines fed the identical observation
// stream report identical alert structs — the property the fleet twin
// tests lean on.
func TestEngineDeterminism(t *testing.T) {
	objs := []Objective{{Name: "w", Metric: "watts", Max: 100, ShortWindow: 300, LongWindow: 900, Budget: 0.1}}
	e1, e2 := NewEngine(objs), NewEngine(objs)
	vals := []float64{50, 150, 150, 150, 150, 150, 40, 40, 40, 40, 40, 40}
	for i, v := range vals {
		t1 := float64(i * 60)
		e1.Observe(t1, func(string) (float64, bool) { return v, true })
		e2.Observe(t1, func(string) (float64, bool) { return v, true })
	}
	a1, a2 := e1.Alerts(), e2.Alerts()
	if len(a1) != 1 || a1[0] != a2[0] {
		t.Fatalf("twin engines diverged:\n%+v\n%+v", a1, a2)
	}
}
