// Package slo evaluates declarative service-level objectives against
// the accounting time-series: an SLA fulfillment floor, a power-budget
// ceiling, or a p99 admission-latency ceiling, each watched through
// classic multi-window burn-rate alerting. An objective grants an
// error budget — the fraction of observations inside a window allowed
// to violate the threshold — and the burn rate is the observed
// violated fraction divided by that budget. An alert fires when both
// the short window (fast signal) and the long window (sustained
// signal) burn faster than budget, and clears when the short window
// recovers; the two-window rule keeps one bad tick from paging and one
// good tick from flapping the alert closed.
//
// Observations are stamped with virtual time and evaluated on the
// fleet's event loop at tick boundaries, so the engine's verdicts are
// deterministic for a deterministic run. The engine is a read-only
// consumer of samples — a side channel like the series store itself.
package slo

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Defaults for objectives that leave windows or budget unset.
const (
	DefaultShortWindow = 300.0  // 5 virtual minutes
	DefaultLongWindow  = 3600.0 // 1 virtual hour
	DefaultBudget      = 0.1    // 10% of observations may violate
)

// Objective is one declarative service-level objective.
type Objective struct {
	// Name identifies the objective in alerts and metrics.
	Name string `json:"name"`
	// Metric is a series metric name (e.g. "sla_pct", "watts") or the
	// engine-supplied "admit_p99_seconds".
	Metric string `json:"metric"`
	// Min is the floor: values below it violate (0 = no floor). Used
	// for SLA fulfillment objectives.
	Min float64 `json:"min,omitempty"`
	// Max is the ceiling: values above it violate (0 = no ceiling).
	// Used for power-budget and latency objectives.
	Max float64 `json:"max,omitempty"`
	// ShortWindow and LongWindow are the burn-rate windows in virtual
	// seconds (defaults 300 and 3600).
	ShortWindow float64 `json:"short_window_s,omitempty"`
	LongWindow  float64 `json:"long_window_s,omitempty"`
	// Budget is the violated fraction of a window the objective
	// tolerates (default 0.1).
	Budget float64 `json:"budget,omitempty"`
}

// Validate reports whether the objective is well-formed.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective needs a name")
	}
	if o.Metric == "" {
		return fmt.Errorf("slo: objective %q needs a metric", o.Name)
	}
	if o.Min == 0 && o.Max == 0 {
		return fmt.Errorf("slo: objective %q needs a min floor or a max ceiling", o.Name)
	}
	if o.Min != 0 && o.Max != 0 && o.Max < o.Min {
		return fmt.Errorf("slo: objective %q has max %.3g below min %.3g", o.Name, o.Max, o.Min)
	}
	if o.ShortWindow < 0 || o.LongWindow < 0 {
		return fmt.Errorf("slo: objective %q has a negative window", o.Name)
	}
	if o.shortWindow() > o.longWindow() {
		return fmt.Errorf("slo: objective %q short window %.0fs exceeds long window %.0fs",
			o.Name, o.shortWindow(), o.longWindow())
	}
	if o.Budget < 0 || o.Budget > 1 {
		return fmt.Errorf("slo: objective %q budget %.3g outside [0, 1]", o.Name, o.Budget)
	}
	return nil
}

func (o Objective) shortWindow() float64 {
	if o.ShortWindow > 0 {
		return o.ShortWindow
	}
	return DefaultShortWindow
}

func (o Objective) longWindow() float64 {
	if o.LongWindow > 0 {
		return o.LongWindow
	}
	return DefaultLongWindow
}

func (o Objective) budget() float64 {
	if o.Budget > 0 {
		return o.Budget
	}
	return DefaultBudget
}

func (o Objective) violated(v float64) bool {
	if o.Min != 0 && v < o.Min {
		return true
	}
	if o.Max != 0 && v > o.Max {
		return true
	}
	return false
}

// Parse decodes an objectives file: a JSON array of Objective, each
// validated.
func Parse(data []byte) ([]Objective, error) {
	var objs []Objective
	if err := json.Unmarshal(data, &objs); err != nil {
		return nil, fmt.Errorf("slo: parsing objectives: %w", err)
	}
	seen := make(map[string]bool, len(objs))
	for _, o := range objs {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
	}
	return objs, nil
}

// Alert is one objective's current verdict.
type Alert struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// State is "ok" or "firing".
	State string `json:"state"`
	// Since is the virtual time the current firing episode started
	// (only while firing).
	Since float64 `json:"since_s,omitempty"`
	// Value is the last observed metric value.
	Value float64 `json:"value"`
	// ShortBurn and LongBurn are the windows' burn rates (violated
	// fraction / budget; > 1 means the budget is burning too fast).
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Budget    float64 `json:"budget"`
	// FiredTotal and ClearedTotal count state transitions, so a
	// post-run reader can see an alert that fired and cleared during
	// the run.
	FiredTotal   int `json:"fired_total"`
	ClearedTotal int `json:"cleared_total"`
}

type obsPoint struct {
	t        float64
	violated bool
}

type objState struct {
	firing       bool
	since        float64
	lastValue    float64
	shortBurn    float64
	longBurn     float64
	fired        int
	cleared      int
	window       []obsPoint // ascending t, pruned to the long window
	hasObserved  bool
	lastObserved float64
}

// Engine evaluates a fixed set of objectives against a stream of
// virtual-time observations.
type Engine struct {
	mu     sync.Mutex
	objs   []Objective
	states []objState
}

// NewEngine builds an engine for the given objectives (assumed
// validated).
func NewEngine(objs []Objective) *Engine {
	return &Engine{objs: objs, states: make([]objState, len(objs))}
}

// Observe evaluates every objective at virtual time t. values resolves
// a metric name to its current value; metrics it cannot resolve are
// skipped this round.
func (e *Engine) Observe(t float64, values func(metric string) (float64, bool)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.objs {
		o := &e.objs[i]
		st := &e.states[i]
		v, ok := values(o.Metric)
		if !ok {
			continue
		}
		st.hasObserved = true
		st.lastObserved = t
		st.lastValue = v
		st.window = append(st.window, obsPoint{t: t, violated: o.violated(v)})
		cutoff := t - o.longWindow()
		drop := 0
		for drop < len(st.window) && st.window[drop].t <= cutoff {
			drop++
		}
		if drop > 0 {
			st.window = append(st.window[:0], st.window[drop:]...)
		}
		st.shortBurn = burnRate(st.window, t-o.shortWindow(), o.budget())
		st.longBurn = burnRate(st.window, cutoff, o.budget())
		switch {
		case !st.firing && st.shortBurn > 1 && st.longBurn > 1:
			st.firing = true
			st.since = t
			st.fired++
		case st.firing && st.shortBurn < 1:
			st.firing = false
			st.since = 0
			st.cleared++
		}
	}
}

// burnRate is the violated fraction of observations after cutoff,
// divided by the budget.
func burnRate(window []obsPoint, cutoff float64, budget float64) float64 {
	total, bad := 0, 0
	for _, p := range window {
		if p.t <= cutoff {
			continue
		}
		total++
		if p.violated {
			bad++
		}
	}
	if total == 0 || budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

// Alerts returns every objective's current verdict, in declaration
// order.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.objs))
	for i, o := range e.objs {
		st := e.states[i]
		a := Alert{
			Name: o.Name, Metric: o.Metric, State: "ok",
			Value: st.lastValue, ShortBurn: st.shortBurn, LongBurn: st.longBurn,
			Budget: o.budget(), FiredTotal: st.fired, ClearedTotal: st.cleared,
		}
		if st.firing {
			a.State = "firing"
			a.Since = st.since
		}
		out = append(out, a)
	}
	return out
}

// Firing returns the number of objectives currently firing.
func (e *Engine) Firing() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for i := range e.states {
		if e.states[i].firing {
			n++
		}
	}
	return n
}
