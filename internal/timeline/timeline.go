// Package timeline reconstructs a datacenter run from its event log
// and renders it as an ASCII chart: one lane per node, one character
// per time bucket, showing power state and VM occupancy at a glance.
// It is the analysis companion of the harness's EventLog hook (use
// cmd/replay on a JSONL event file, or feed events directly).
//
// Legend: '.' off · '%' booting · '_' idle (on, empty) · digits =
// hosted VM count ('+' above 9) · 'X' failed.
package timeline

import (
	"fmt"
	"sort"
	"strings"

	"energysched/internal/datacenter"
)

// nodeState is a node's reconstructed condition.
type nodeState int

const (
	stOff nodeState = iota
	stBoot
	stOn
	stDown
)

// Timeline is the reconstructed run.
type Timeline struct {
	// End is the time of the last event.
	End float64
	// Nodes is the number of node lanes.
	Nodes int
	// changes per node: time-ordered (time, state, vms) checkpoints.
	changes [][]change
	// completions, migrations, failures summarize the run.
	Completions, Migrations, Failures int
}

type change struct {
	t     float64
	state nodeState
	vms   int
}

// FromEvents reconstructs a timeline. Events must be time-ordered (as
// the harness emits them). The node count is inferred from the
// highest node id seen.
func FromEvents(events []datacenter.Event) (*Timeline, error) {
	maxNode := -1
	for _, e := range events {
		if e.Node > maxNode {
			maxNode = e.Node
		}
		if e.Aux > maxNode {
			maxNode = e.Aux
		}
	}
	tl := &Timeline{Nodes: maxNode + 1}
	if tl.Nodes == 0 {
		return nil, fmt.Errorf("timeline: no node events")
	}
	tl.changes = make([][]change, tl.Nodes)

	state := make([]nodeState, tl.Nodes)
	vms := make([]int, tl.Nodes)
	vmHost := map[int]int{}
	lastT := -1.0

	record := func(n int, t float64) {
		tl.changes[n] = append(tl.changes[n], change{t: t, state: state[n], vms: vms[n]})
	}
	for _, e := range events {
		if e.Time < lastT {
			return nil, fmt.Errorf("timeline: events out of order at t=%v", e.Time)
		}
		lastT = e.Time
		tl.End = e.Time
		switch e.Kind {
		case datacenter.EvBoot:
			state[e.Node] = stBoot
			record(e.Node, e.Time)
		case datacenter.EvBooted:
			state[e.Node] = stOn
			record(e.Node, e.Time)
		case datacenter.EvOff:
			state[e.Node] = stOff
			record(e.Node, e.Time)
		case datacenter.EvFailed:
			tl.Failures++
			state[e.Node] = stDown
			vms[e.Node] = 0
			record(e.Node, e.Time)
		case datacenter.EvRepaired:
			state[e.Node] = stOff
			record(e.Node, e.Time)
		case datacenter.EvPlace:
			vms[e.Node]++
			vmHost[e.VM] = e.Node
			record(e.Node, e.Time)
		case datacenter.EvMigrateStart:
			// Reservation appears on the destination.
			vms[e.Aux]++
			record(e.Aux, e.Time)
		case datacenter.EvMigrated:
			tl.Migrations++
			vms[e.Node]-- // source releases
			vmHost[e.VM] = e.Aux
			record(e.Node, e.Time)
		case datacenter.EvCompleted:
			tl.Completions++
			if h, ok := vmHost[e.VM]; ok {
				vms[h]--
				delete(vmHost, e.VM)
				record(h, e.Time)
			}
		case datacenter.EvRequeued:
			if h, ok := vmHost[e.VM]; ok {
				if state[h] != stDown {
					vms[h]--
					record(h, e.Time)
				}
				delete(vmHost, e.VM)
			}
		}
	}
	return tl, nil
}

// Render draws the chart with the given width (time buckets). Lanes
// are ordered by node id; nodes that never left the Off state are
// compressed into a single summary line.
func (tl *Timeline) Render(width int) string {
	if width < 10 {
		width = 10
	}
	if tl.End <= 0 {
		return "(empty timeline)\n"
	}
	bucket := tl.End / float64(width)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.1f h across %d nodes (each column ≈ %.0f s)\n",
		tl.End/3600, tl.Nodes, bucket)
	idle := 0
	for n := 0; n < tl.Nodes; n++ {
		lane := tl.lane(n, width, bucket)
		if strings.Count(lane, ".") == len(lane) {
			idle++
			continue
		}
		fmt.Fprintf(&b, "node%-3d %s\n", n, lane)
	}
	if idle > 0 {
		fmt.Fprintf(&b, "(%d nodes stayed off the whole run)\n", idle)
	}
	fmt.Fprintf(&b, "jobs completed %d · migrations %d · failures %d\n",
		tl.Completions, tl.Migrations, tl.Failures)
	return b.String()
}

// lane renders one node's row.
func (tl *Timeline) lane(n, width int, bucket float64) string {
	chs := tl.changes[n]
	out := make([]byte, width)
	cur := change{state: stOff}
	ci := 0
	for w := 0; w < width; w++ {
		t := float64(w) * bucket
		for ci < len(chs) && chs[ci].t <= t {
			cur = chs[ci]
			ci++
		}
		out[w] = glyph(cur)
	}
	return string(out)
}

func glyph(c change) byte {
	switch c.state {
	case stOff:
		return '.'
	case stBoot:
		return '%'
	case stDown:
		return 'X'
	default:
		switch {
		case c.vms <= 0:
			return '_'
		case c.vms > 9:
			return '+'
		default:
			return byte('0' + c.vms)
		}
	}
}

// Utilization returns the fraction of node-buckets spent on (booting,
// idle or working) — a quick consolidation indicator.
func (tl *Timeline) Utilization(width int) float64 {
	if tl.End <= 0 || tl.Nodes == 0 {
		return 0
	}
	bucket := tl.End / float64(width)
	on := 0
	for n := 0; n < tl.Nodes; n++ {
		lane := tl.lane(n, width, bucket)
		on += len(lane) - strings.Count(lane, ".")
	}
	return float64(on) / float64(width*tl.Nodes)
}

// SortedKinds lists the event kinds the reconstructor understands, for
// diagnostics.
func SortedKinds() []string {
	ks := []string{
		string(datacenter.EvArrival), string(datacenter.EvPlace),
		string(datacenter.EvCreated), string(datacenter.EvMigrateStart),
		string(datacenter.EvMigrated), string(datacenter.EvCompleted),
		string(datacenter.EvBoot), string(datacenter.EvBooted),
		string(datacenter.EvOff), string(datacenter.EvFailed),
		string(datacenter.EvRepaired), string(datacenter.EvRequeued),
	}
	sort.Strings(ks)
	return ks
}
