package timeline

import (
	"strings"
	"testing"

	"energysched/internal/datacenter"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

func ev(t float64, kind datacenter.EventKind, vm, node, aux int) datacenter.Event {
	return datacenter.Event{Time: t, Kind: kind, VM: vm, Node: node, Aux: aux}
}

func TestFromEventsBasicLifecycle(t *testing.T) {
	events := []datacenter.Event{
		ev(0, datacenter.EvBoot, -1, 0, -1),
		ev(100, datacenter.EvBooted, -1, 0, -1),
		ev(110, datacenter.EvPlace, 7, 0, -1),
		ev(150, datacenter.EvCreated, 7, 0, -1),
		ev(500, datacenter.EvCompleted, 7, 0, -1),
		ev(600, datacenter.EvOff, -1, 0, -1),
		ev(1000, datacenter.EvArrival, 8, -1, -1),
	}
	tl, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Nodes != 1 || tl.Completions != 1 {
		t.Fatalf("nodes=%d completions=%d", tl.Nodes, tl.Completions)
	}
	lane := tl.lane(0, 100, tl.End/100)
	// Expect booting, then 1 VM, then idle/off tail.
	if !strings.Contains(lane, "%") || !strings.Contains(lane, "1") || !strings.Contains(lane, ".") {
		t.Errorf("lane = %q", lane)
	}
}

func TestFromEventsMigrationMovesOccupancy(t *testing.T) {
	events := []datacenter.Event{
		ev(0, datacenter.EvBooted, -1, 0, -1),
		ev(0, datacenter.EvBooted, -1, 1, -1),
		ev(10, datacenter.EvPlace, 1, 0, -1),
		ev(50, datacenter.EvCreated, 1, 0, -1),
		ev(100, datacenter.EvMigrateStart, 1, 0, 1),
		ev(160, datacenter.EvMigrated, 1, 0, 1),
		ev(400, datacenter.EvCompleted, 1, 1, -1),
	}
	tl, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Migrations != 1 || tl.Completions != 1 {
		t.Fatalf("migrations=%d completions=%d", tl.Migrations, tl.Completions)
	}
	// After the cut-over, node 0 is empty and node 1 hosts the VM.
	l0 := tl.lane(0, 40, tl.End/40)
	l1 := tl.lane(1, 40, tl.End/40)
	if !strings.Contains(l0[20:], "_") {
		t.Errorf("source lane after migration = %q", l0)
	}
	if !strings.Contains(l1[20:], "1") {
		t.Errorf("destination lane after migration = %q", l1)
	}
}

func TestFromEventsFailure(t *testing.T) {
	events := []datacenter.Event{
		ev(0, datacenter.EvBooted, -1, 0, -1),
		ev(10, datacenter.EvPlace, 1, 0, -1),
		ev(100, datacenter.EvFailed, -1, 0, -1),
		ev(100, datacenter.EvRequeued, 1, -1, -1),
		ev(700, datacenter.EvRepaired, -1, 0, -1),
	}
	tl, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Failures != 1 {
		t.Fatalf("failures = %d", tl.Failures)
	}
	lane := tl.lane(0, 70, tl.End/70)
	if !strings.Contains(lane, "X") {
		t.Errorf("lane lacks failure glyph: %q", lane)
	}
}

func TestFromEventsValidation(t *testing.T) {
	if _, err := FromEvents(nil); err == nil {
		t.Error("empty event list accepted")
	}
	bad := []datacenter.Event{
		ev(100, datacenter.EvBooted, -1, 0, -1),
		ev(50, datacenter.EvOff, -1, 0, -1),
	}
	if _, err := FromEvents(bad); err == nil {
		t.Error("out-of-order events accepted")
	}
}

func TestEndToEndWithHarness(t *testing.T) {
	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = 6 * 3600
	trace := workload.MustGenerate(gen)
	var events []datacenter.Event
	sim, err := datacenter.New(datacenter.Config{
		Trace:    trace,
		Policy:   policy.NewBackfilling(),
		Seed:     1,
		EventLog: func(e datacenter.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	tl, err := FromEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Completions != rep.JobsCompleted {
		t.Errorf("timeline completions %d vs report %d", tl.Completions, rep.JobsCompleted)
	}
	out := tl.Render(80)
	if !strings.Contains(out, "jobs completed") {
		t.Errorf("render output truncated:\n%s", out)
	}
	if u := tl.Utilization(80); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestRenderEmptyAndNarrow(t *testing.T) {
	tl := &Timeline{Nodes: 1, changes: make([][]change, 1)}
	if got := tl.Render(5); !strings.Contains(got, "empty") {
		t.Errorf("empty render = %q", got)
	}
	if len(SortedKinds()) != 12 {
		t.Errorf("kinds = %v", SortedKinds())
	}
}
