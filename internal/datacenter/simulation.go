package datacenter

import (
	"fmt"
	"io"
	"sort"
	"time"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/metrics"
	"energysched/internal/obs/series"
	"energysched/internal/policy"
	"energysched/internal/power"
	"energysched/internal/simkit"
	"energysched/internal/sla"
	"energysched/internal/vm"
	"energysched/internal/workload"
	"energysched/internal/xen"
)

// nodeRT is the per-node runtime bookkeeping the harness keeps on top
// of the cluster model: power metering and the time of the last
// progress advance.
type nodeRT struct {
	node        *cluster.Node
	meter       *power.Meter
	lastAdvance float64
	failTimer   *simkit.Timer
	// eff is the current thrash efficiency: the useful fraction of
	// each granted CPU cycle (1 unless the node is overcommitted).
	eff float64

	// Allocator memo: the power state, owner set and demand vector the
	// Xen allocator last ran for on this node. When an actuation
	// recomputes the node and nothing in this signature changed, the
	// allocations, efficiency, draw and completion ETAs are all
	// unchanged too, and recomputeNode only accrues progress (see the
	// ROADMAP PR 2 note on per-round recomputeNode cost).
	memoValid   bool
	memoState   cluster.PowerState
	memoOwners  []int // owner VM IDs, in demand order
	memoDemands []xen.Demand
}

// Simulation is one run in progress. Build with New, execute with
// Run, then read the Report.
type Simulation struct {
	cfg      Config
	eng      *simkit.Engine
	cluster  *cluster.Cluster
	pm       *core.PowerManager
	adaptive *core.Adaptive
	rt       []*nodeRT

	queue []*vm.VM // FIFO virtual-host queue
	vms   []*vm.VM // all VMs ever created, by ID

	// completionTimer tracks the pending completion event per VM ID.
	completionTimer map[int]*simkit.Timer

	creation  *simkit.Stream
	migration *simkit.Stream
	failures  *simkit.Stream

	workAvg  *metrics.TimeAvg
	onAvg    *metrics.TimeAvg
	satAgg   metrics.Welford
	delayAgg metrics.Welford

	cpuSeconds  float64 // job CPU·s actually executed
	migrations  int
	failCount   int
	completed   int
	active      int // VMs currently Running or Migrating, maintained on state transitions
	roundActive bool
	started     bool
	sealed      bool
	done        bool

	// ctxQueue and ctxActive are scratch buffers for the per-round
	// policy context, reused so steady-state rounds don't allocate.
	ctxQueue  []*vm.VM
	ctxActive []*vm.VM

	// ownScratch and demScratch are recomputeNode's demand-build
	// buffers, and accScratch is accrue's owner buffer, reused so
	// actuations don't allocate.
	ownScratch []*vm.VM
	demScratch []xen.Demand
	accScratch []*vm.VM

	// PowerTrace, when non-nil, receives (time, totalWatts) samples
	// at every power change (used by the validation experiment).
	PowerTrace func(t, watts float64)

	// Sampler, when non-nil, receives one accounting sample at every
	// housekeeping tick (see SampleAt). Samples are pure reads of the
	// simulation's virtual-time state, so attaching a sampler never
	// alters the trajectory — the same observer contract PowerTrace
	// keeps.
	Sampler func(smp series.Sample)

	// AttributeEnergy, when set, splits each node's energy across its
	// hosted VMs in proportion to their allocations as progress
	// accrues, into the write-only vm.VM.EnergyKWh field. Nothing in
	// the scheduling path reads it back, and no existing accumulator's
	// float operations change, so enabling it leaves reports
	// byte-identical.
	AttributeEnergy bool
}

// New builds a simulation from the configuration.
func New(cfg Config) (*Simulation, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg.Classes)
	if err != nil {
		return nil, err
	}
	pm, err := core.NewPowerManager(cfg.LambdaMin, cfg.LambdaMax, cfg.MinExec)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:             cfg,
		eng:             simkit.NewEngine(),
		cluster:         cl,
		pm:              pm,
		completionTimer: make(map[int]*simkit.Timer),
		creation:        simkit.NewStream(cfg.Seed, "creation"),
		migration:       simkit.NewStream(cfg.Seed, "migration"),
		failures:        simkit.NewStream(cfg.Seed, "failures"),
	}
	if cfg.AdaptiveTarget > 0 {
		ad, err := core.NewAdaptive(pm)
		if err != nil {
			return nil, err
		}
		ad.TargetS = cfg.AdaptiveTarget
		s.adaptive = ad
	}
	for _, n := range cl.Nodes {
		if cfg.StartOnline {
			n.SetState(cluster.On)
		}
		s.rt = append(s.rt, &nodeRT{
			node:  n,
			meter: power.NewMeter(0, n.Watts(0)),
			eff:   1,
		})
	}
	s.workAvg = metrics.NewTimeAvg(0, 0)
	s.onAvg = metrics.NewTimeAvg(0, 0)
	return s, nil
}

// Engine exposes the simulation engine (tests drive partial runs).
func (s *Simulation) Engine() *simkit.Engine { return s.eng }

// Cluster exposes the cluster model.
func (s *Simulation) Cluster() *cluster.Cluster { return s.cluster }

// Policy exposes the scheduling policy driving this simulation (the
// server harness reads solver statistics off it).
func (s *Simulation) Policy() policy.Policy { return s.cfg.Policy }

// QueueLen returns the number of VMs waiting in the virtual host.
func (s *Simulation) QueueLen() int { return len(s.queue) }

// AppendQueue appends the queued VMs in FIFO order to buf and returns
// it (an observability snapshot for the server harness).
func (s *Simulation) AppendQueue(buf []*vm.VM) []*vm.VM {
	return append(buf, s.queue...)
}

// VMs returns all VMs materialized so far (indexed by ID).
func (s *Simulation) VMs() []*vm.VM { return s.vms }

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.eng.Now() }

// WattsNow returns the datacenter's instantaneous power draw.
func (s *Simulation) WattsNow() float64 { return s.currentWatts() }

// NodeWatts returns node id's most recently observed draw.
func (s *Simulation) NodeWatts(id int) float64 { return s.rt[id].meter.CurrentWatts() }

// Run executes the trace to completion (or cfg.MaxTime) and returns
// the report. It is a convenience composition of the step-wise
// primitives below: Inject every trace job, Start the background
// machinery, then Drain.
func (s *Simulation) Run() (metrics.Report, error) {
	if s.cfg.Trace == nil || len(s.cfg.Trace.Jobs) == 0 {
		return metrics.Report{}, fmt.Errorf("datacenter: config needs a non-empty trace")
	}
	for _, j := range s.cfg.Trace.Jobs {
		if _, err := s.Inject(j); err != nil {
			return metrics.Report{}, err
		}
	}
	s.Start()
	return s.Drain(), nil
}

// RunSource executes a streaming workload to completion: jobs are
// pulled from src one at a time and injected at the admission
// watermark, so a week-long trace drives the simulation without ever
// being materialized. Because Inject gives admissions injection
// priority and the watermark trails the submit times, the run is
// byte-identical to Run on the materialized equivalent of src — the
// same online-equals-offline contract the fleet admission path rests
// on. The config's Trace is ignored.
func (s *Simulation) RunSource(src workload.JobSource) (metrics.Report, error) {
	s.Start()
	count := 0
	var watermark float64
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return metrics.Report{}, err
		}
		if _, err := s.Inject(j); err != nil {
			return metrics.Report{}, err
		}
		count++
		if j.Submit > watermark {
			watermark = j.Submit
			s.StepBefore(watermark)
		}
	}
	if count == 0 {
		return metrics.Report{}, fmt.Errorf("datacenter: streaming workload yielded no jobs")
	}
	return s.Drain(), nil
}

// Inject admits one job into the simulation: it validates the job,
// materializes its VM (IDs are assigned in admission order) and
// schedules the arrival with injection priority (simkit.AtFront), so
// a job admitted online before the clock reaches its submit time is
// processed exactly as if it had been part of a pre-loaded trace.
// Submit times in the engine's past and admissions after Seal are
// rejected.
func (s *Simulation) Inject(j workload.Job) (*vm.VM, error) {
	if s.sealed {
		return nil, fmt.Errorf("datacenter: workload is sealed, job %d rejected", j.ID)
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if j.Submit < s.eng.Now() {
		return nil, fmt.Errorf("datacenter: job %d submits at %.3f, before virtual now %.3f",
			j.ID, j.Submit, s.eng.Now())
	}
	v := vm.New(len(s.vms), vm.Requirements{
		CPU: j.CPU, Mem: j.Mem, Arch: j.Arch, Hypervisor: j.Hypervisor,
	}, j.Submit, j.Duration, j.Deadline())
	v.Name = j.Name
	v.FaultTolerance = j.FaultTolerance
	s.vms = append(s.vms, v)
	s.eng.AtFront(j.Submit, func() { s.onArrival(v) })
	return v, nil
}

// Start arms the background machinery: failure processes for nodes
// that are already online, the housekeeping tick and the checkpoint
// tick. Run calls it internally after injecting the trace; an online
// harness calls it once before driving the engine stepwise. Start is
// idempotent.
func (s *Simulation) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, n := range s.cluster.Nodes {
		if n.State == cluster.On {
			s.armFailure(n)
		}
	}
	s.eng.At(s.eng.Now(), s.tick)
	if s.cfg.CheckpointInterval > 0 {
		s.eng.At(s.eng.Now()+s.cfg.CheckpointInterval, s.checkpointTick)
	}
}

// Seal declares the workload complete: no further Inject is accepted,
// and once every admitted VM completes, the engine stops and the
// simulation is done. Sealing with every admitted job already
// completed (including the zero-job case) marks it done immediately.
func (s *Simulation) Seal() {
	if s.sealed {
		return
	}
	s.sealed = true
	if s.completed == len(s.vms) {
		s.done = true
	}
}

// Sealed reports whether the workload has been sealed.
func (s *Simulation) Sealed() bool { return s.sealed }

// Done reports whether a sealed simulation has completed every
// admitted job.
func (s *Simulation) Done() bool { return s.done }

// StepBefore fires every event scheduled strictly before virtual time
// t and advances the clock to t (see simkit.Engine.RunBefore). An
// online harness keeps t at its admission watermark — the largest
// submit time admitted so far — so jobs can still be injected at the
// boundary instant with full determinism.
func (s *Simulation) StepBefore(t float64) float64 {
	return s.eng.RunBefore(t)
}

// Drain seals the workload and runs the remaining events until every
// admitted job completes (or the safety horizon passes), then returns
// the final report — the tail of Run, callable from an online harness.
func (s *Simulation) Drain() metrics.Report {
	s.Seal()
	if !s.done {
		s.eng.Run(s.horizon())
	}
	// Close the books: commit progress and energy through the final
	// instant (this also materializes Progress on any VM cut off by a
	// MaxTime horizon, for the per-job CSV). ReportAt then reads the
	// same values with zero-width extensions.
	end := s.eng.Now()
	for _, rt := range s.rt {
		s.advanceNode(rt, end)
		rt.meter.Close(end)
	}
	return s.ReportAt(end)
}

func (s *Simulation) horizon() float64 {
	h := s.cfg.MaxTime
	if h <= 0 {
		// Safety net relative to the current clock (an online harness
		// may already sit at a large watermark); Stop() fires first.
		h = s.eng.Now() + 400*24*3600
	}
	if now := s.eng.Now(); h < now {
		// Never hand the engine a horizon behind the clock: jobs
		// admitted past MaxTime would otherwise rewind virtual time
		// and panic the progress/energy accounting.
		h = now
	}
	return h
}

// ReportAt returns the paper metrics as of virtual time t (extending
// every node's progress and energy integral to t) WITHOUT mutating
// any simulation state. The purity matters beyond hygiene: interim
// reports and metric scrapes must not split the float integration
// intervals of the progress/energy accumulators, or a served report
// would perturb the final report's last ulps and break the
// online-equals-offline byte-identity contract.
func (s *Simulation) ReportAt(t float64) metrics.Report {
	return metrics.Report{
		Policy:        s.cfg.Policy.Name(),
		LambdaMin:     s.cfg.LambdaMin * unitPercent(s.cfg.LambdaMin),
		LambdaMax:     s.cfg.LambdaMax * unitPercent(s.cfg.LambdaMax),
		AvgWorking:    s.workAvg.Mean(t),
		AvgOnline:     s.onAvg.Mean(t),
		CPUHours:      s.cpuSecondsAt(t) / 100 / 3600,
		EnergyKWh:     s.totalKWhAt(t),
		Satisfaction:  s.satAgg.Mean(),
		Delay:         s.delayAgg.Mean(),
		Migrations:    s.migrations,
		JobsCompleted: s.completed,
		JobsTotal:     len(s.vms),
		Failures:      s.failCount,
		SimEnd:        t,
	}
}

func unitPercent(v float64) float64 {
	if v <= 1 {
		return 100
	}
	return 1
}

// totalKWhAt extends every meter's integral to t without mutation.
func (s *Simulation) totalKWhAt(t float64) float64 {
	var kwh float64
	for _, rt := range s.rt {
		kwh += rt.meter.KWhAt(t)
	}
	return kwh
}

// cpuSecondsAt extends the executed-work accumulator to t without
// mutation, mirroring advanceNode's accrual exactly (same terms, same
// order) so the result is bit-identical to committing the advance.
func (s *Simulation) cpuSecondsAt(t float64) float64 {
	acc := s.cpuSeconds
	for _, rt := range s.rt {
		acc = s.accrue(rt, t, false, acc)
	}
	return acc
}

// --- progress and power accounting ---

// advanceNode accrues job progress and leaves the meter positioned at
// time t with its previous draw (the caller recomputes the new draw).
func (s *Simulation) advanceNode(rt *nodeRT, t float64) {
	s.cpuSeconds = s.accrue(rt, t, true, s.cpuSeconds)
	rt.lastAdvance = t
}

// accrue adds the CPU-seconds each hosted VM executes on rt between
// rt.lastAdvance and t to acc, committing them to the VMs' Progress
// when commit is set, and returns the new acc. Terms are accumulated
// in ascending VM-ID order — NOT map order — so the float sum is
// identical across runs and across simulation instances; the
// online/offline/restore byte-identity contract rests on this.
func (s *Simulation) accrue(rt *nodeRT, t float64, commit bool, acc float64) float64 {
	dt := t - rt.lastAdvance
	if dt < 0 {
		panic(fmt.Sprintf("datacenter: node %d time going backwards", rt.node.ID))
	}
	if dt == 0 {
		return acc
	}
	// The accruing set is exactly the allocator's owner set (a
	// migrating-in VM runs on the source for now); share the one
	// definition so the two can never drift apart.
	buf := s.appendOwners(rt, s.accScratch[:0])
	// Energy attribution: the meter still holds the draw that applied
	// over [lastAdvance, t] (recomputeNode observes the new level only
	// after advancing), so the interval's energy splits across the
	// owners by allocation share. This is a pure addition on top of
	// the existing terms — Progress and acc see the same operations in
	// the same order whether attribution is on or off.
	var share float64
	if commit && s.AttributeEnergy && len(buf) > 0 {
		var sumAlloc float64
		for _, v := range buf {
			sumAlloc += v.Alloc
		}
		if sumAlloc > 0 {
			share = rt.meter.CurrentWatts() * dt / 3.6e6 / sumAlloc
		}
	}
	for _, v := range buf {
		term := v.Alloc * rt.eff * dt
		if commit {
			v.Progress += term
			if share > 0 {
				v.EnergyKWh += share * v.Alloc
			}
		}
		acc += term
	}
	s.accScratch = buf[:0]
	return acc
}

// recomputeNode re-runs the Xen allocator on a node after any change
// in its hosted set or operations, refreshes the power draw, and
// reschedules completion events for its running VMs. When the node's
// power state, owner set and demand vector are unchanged since the
// previous recompute, the allocation, efficiency, draw and completion
// ETAs are unchanged too and everything past the progress accrual is
// skipped. A PowerTrace subscriber still receives its sample on the
// skip path (same cadence, same values as a full recompute), so
// attaching an observer never alters the simulation's trajectory.
func (s *Simulation) recomputeNode(rt *nodeRT) {
	now := s.eng.Now()
	s.advanceNode(rt, now)
	n := rt.node

	// Build the demand set: guest domains hosted here plus dom0
	// service work for in-flight operations.
	owners := s.appendOwners(rt, s.ownScratch[:0])
	demands := s.demScratch[:0]
	for _, v := range owners {
		demands = append(demands, xen.Demand{Weight: v.Weight, Cap: v.Req.CPU, Want: v.Req.CPU})
	}
	ops := n.CreatingOps + n.MigratingOps
	for i := 0; i < ops; i++ {
		demands = append(demands, xen.Demand{Weight: s.cfg.OpWeight, Cap: s.cfg.OpOverheadCPU, Want: s.cfg.OpOverheadCPU})
	}
	s.ownScratch, s.demScratch = owners[:0], demands[:0]

	if rt.memoValid && rt.memoMatches(n.State, owners, demands) {
		// The draw is unchanged; the meter extrapolates the current
		// level, so no observation is needed.
		if s.PowerTrace != nil {
			s.PowerTrace(now, s.currentWatts())
		}
		return
	}

	var util float64
	rt.eff = 1
	if n.State == cluster.On {
		alloc := xen.Allocate(n.Class.CPU, demands)
		for i, v := range owners {
			v.Alloc = alloc[i]
		}
		for _, a := range alloc {
			util += a
		}
		// Thrash: overcommit wastes a fraction of every cycle.
		if demand := xen.TotalDemand(demands); demand > n.Class.CPU && s.cfg.ThrashFactor > 0 {
			rt.eff = 1 / (1 + s.cfg.ThrashFactor*(demand/n.Class.CPU-1))
		}
	} else {
		for _, v := range owners {
			v.Alloc = 0
		}
	}
	rt.memoize(n.State, owners, demands)

	watts := n.Watts(util)
	rt.meter.Observe(now, watts)
	if s.PowerTrace != nil {
		s.PowerTrace(now, s.currentWatts())
	}

	// Refresh completion events.
	for _, v := range owners {
		s.rescheduleCompletion(v)
	}
}

// appendOwners collects the node's demand-set owners — guest domains
// hosted here in Running or Migrating state — into buf, in ID order.
func (s *Simulation) appendOwners(rt *nodeRT, buf []*vm.VM) []*vm.VM {
	n := rt.node
	for _, v := range n.VMs {
		if v.Host != n.ID {
			continue
		}
		if v.State != vm.Running && v.State != vm.Migrating {
			continue
		}
		buf = append(buf, v)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].ID < buf[j].ID })
	return buf
}

// memoMatches reports whether the node's allocator inputs are
// unchanged since the last full recompute.
func (rt *nodeRT) memoMatches(state cluster.PowerState, owners []*vm.VM, demands []xen.Demand) bool {
	if state != rt.memoState || len(owners) != len(rt.memoOwners) || len(demands) != len(rt.memoDemands) {
		return false
	}
	for i, v := range owners {
		if v.ID != rt.memoOwners[i] {
			return false
		}
	}
	for i, d := range demands {
		if d != rt.memoDemands[i] {
			return false
		}
	}
	return true
}

// memoize records the allocator inputs the node was last computed for.
func (rt *nodeRT) memoize(state cluster.PowerState, owners []*vm.VM, demands []xen.Demand) {
	rt.memoValid = true
	rt.memoState = state
	rt.memoOwners = rt.memoOwners[:0]
	for _, v := range owners {
		rt.memoOwners = append(rt.memoOwners, v.ID)
	}
	rt.memoDemands = append(rt.memoDemands[:0], demands...)
}

func (s *Simulation) currentWatts() float64 {
	var w float64
	for _, rt := range s.rt {
		w += rt.meter.CurrentWatts()
	}
	return w
}

func (s *Simulation) rescheduleCompletion(v *vm.VM) {
	old := s.completionTimer[v.ID]
	cancel := func() {
		if old != nil {
			old.Cancel()
			delete(s.completionTimer, v.ID)
		}
	}
	if v.State != vm.Running && v.State != vm.Migrating {
		cancel()
		return
	}
	if v.Alloc <= 0 || v.Host < 0 {
		cancel()
		return // starved; a later recompute will revisit
	}
	rate := v.Alloc * s.rt[v.Host].eff
	if rate <= 0 {
		cancel()
		return
	}
	eta := s.eng.Now() + v.Remaining()/rate
	if old != nil && old.Pending() && old.Time() == eta {
		return // allocation unchanged: the scheduled completion is still exact
	}
	cancel()
	vv := v
	s.completionTimer[v.ID] = s.eng.Schedule(eta, func() { s.onCompletion(vv) })
}

// touchCounts refreshes the time-weighted node-count averages.
func (s *Simulation) touchCounts() {
	working, online := s.cluster.Counts()
	now := s.eng.Now()
	s.workAvg.Observe(now, float64(working))
	s.onAvg.Observe(now, float64(online))
}

func sortedByID(m map[int]*vm.VM) []*vm.VM {
	out := make([]*vm.VM, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- event handlers ---

func (s *Simulation) onArrival(v *vm.VM) {
	s.queue = append(s.queue, v)
	s.emit(EvArrival, v.ID, -1, -1)
	s.round()
}

func (s *Simulation) onCompletion(v *vm.VM) {
	delete(s.completionTimer, v.ID)
	rt := s.rt[v.Host]
	s.advanceNode(rt, s.eng.Now())
	if v.Remaining() > 1e-6 {
		// Stale event (allocation changed after scheduling); the
		// recompute that changed it also rescheduled us, so this
		// handler only fires at a true completion — defensive guard.
		s.rescheduleCompletion(v)
		return
	}
	if v.State == vm.Migrating {
		// Completing mid-migration: the job is done; tear down the
		// reservation on the destination too.
		if v.MigrateTo >= 0 {
			dst := s.cluster.Node(v.MigrateTo)
			dst.RemoveVM(v)
			dst.EndMigrate()
			rt.node.EndMigrate()
			v.MigrateTo = -1
			s.recomputeNode(s.rt[dst.ID])
		}
	}
	rt.node.RemoveVM(v)
	s.active--
	v.State = vm.Completed
	v.Finish = s.eng.Now()
	v.Alloc = 0
	v.Touch()
	s.completed++
	s.emit(EvCompleted, v.ID, rt.node.ID, -1)

	exec := v.ExecTime()
	sat := sla.Satisfaction(exec, v.Deadline-v.Submit)
	s.satAgg.Add(sat)
	s.delayAgg.Add(sla.Delay(exec, v.Duration))
	if s.adaptive != nil {
		s.adaptive.Add(sat)
	}

	s.recomputeNode(rt)
	s.round()

	if s.sealed && s.completed == len(s.vms) {
		s.done = true
		s.eng.Stop()
	}
}

// tick is the periodic housekeeping round.
func (s *Simulation) tick() {
	if s.adaptive != nil {
		s.adaptive.Tick(s.eng.Now())
	}
	s.round()
	if s.Sampler != nil {
		// Sample after the round so the observation reflects the
		// tick's power-management and placement decisions. SampleAt is
		// pure, so the sampler sees — never steers — the trajectory.
		s.Sampler(s.SampleAt(s.eng.Now()))
	}
	if !s.done {
		s.eng.After(s.cfg.TickInterval, s.tick)
	}
}

func (s *Simulation) checkpointTick() {
	// Progress is materialized lazily at node events; bring every
	// node current so the checkpoint captures real progress.
	now := s.eng.Now()
	for _, rt := range s.rt {
		s.advanceNode(rt, now)
	}
	for _, v := range s.vms {
		if v.State == vm.Running {
			v.Checkpoint = v.Progress
		}
	}
	if !s.done {
		s.eng.After(s.cfg.CheckpointInterval, s.checkpointTick)
	}
}

// round runs one scheduling round: power management first, then the
// policy, then action application.
func (s *Simulation) round() {
	if s.roundActive {
		// Rounds are not reentrant; state changes inside a round
		// trigger follow-up work in the same pass.
		return
	}
	s.roundActive = true
	defer func() { s.roundActive = false }()

	// Power manager.
	on, off := s.pm.Plan(s.eng.Now(), s.cluster, s.queue)
	for _, n := range off {
		s.turnOff(n)
	}
	for _, n := range on {
		s.turnOn(n)
	}

	// Policy. The queue is copied because applying a Place mutates
	// s.queue while actions are still being iterated.
	s.ctxQueue = append(s.ctxQueue[:0], s.queue...)
	s.ctxActive = s.appendActiveVMs(s.ctxActive[:0])
	ctx := &policy.Context{
		Now:       s.eng.Now(),
		Cluster:   s.cluster,
		Queue:     s.ctxQueue,
		Active:    s.ctxActive,
		LambdaMin: s.pm.LambdaMin,
		LambdaMax: s.pm.LambdaMax,
	}
	var roundStart time.Time
	if s.cfg.RoundTimer != nil {
		roundStart = time.Now()
	}
	actions := s.cfg.Policy.Schedule(ctx)
	if s.cfg.RoundTimer != nil {
		s.cfg.RoundTimer(time.Since(roundStart).Seconds())
	}
	for _, a := range actions {
		switch act := a.(type) {
		case policy.Place:
			s.applyPlace(act)
		case policy.Migrate:
			s.applyMigrate(act)
		}
	}
	s.touchCounts()
}

func (s *Simulation) activeVMs() []*vm.VM {
	return s.appendActiveVMs(nil)
}

// appendActiveVMs appends the VMs occupying node resources to buf in
// ID order and returns it.
func (s *Simulation) appendActiveVMs(buf []*vm.VM) []*vm.VM {
	for _, v := range s.vms {
		if v.Active() {
			buf = append(buf, v)
		}
	}
	return buf
}
