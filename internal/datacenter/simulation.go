package datacenter

import (
	"fmt"
	"sort"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/power"
	"energysched/internal/simkit"
	"energysched/internal/sla"
	"energysched/internal/vm"
	"energysched/internal/xen"
)

// nodeRT is the per-node runtime bookkeeping the harness keeps on top
// of the cluster model: power metering and the time of the last
// progress advance.
type nodeRT struct {
	node        *cluster.Node
	meter       *power.Meter
	lastAdvance float64
	failTimer   *simkit.Timer
	// eff is the current thrash efficiency: the useful fraction of
	// each granted CPU cycle (1 unless the node is overcommitted).
	eff float64
}

// Simulation is one run in progress. Build with New, execute with
// Run, then read the Report.
type Simulation struct {
	cfg      Config
	eng      *simkit.Engine
	cluster  *cluster.Cluster
	pm       *core.PowerManager
	adaptive *core.Adaptive
	rt       []*nodeRT

	queue []*vm.VM // FIFO virtual-host queue
	vms   []*vm.VM // all VMs ever created, by ID

	// completionTimer tracks the pending completion event per VM ID.
	completionTimer map[int]*simkit.Timer

	creation  *simkit.Stream
	migration *simkit.Stream
	failures  *simkit.Stream

	workAvg  *metrics.TimeAvg
	onAvg    *metrics.TimeAvg
	satAgg   metrics.Welford
	delayAgg metrics.Welford

	cpuSeconds  float64 // job CPU·s actually executed
	migrations  int
	failCount   int
	completed   int
	roundActive bool
	done        bool

	// ctxQueue and ctxActive are scratch buffers for the per-round
	// policy context, reused so steady-state rounds don't allocate.
	ctxQueue  []*vm.VM
	ctxActive []*vm.VM

	// PowerTrace, when non-nil, receives (time, totalWatts) samples
	// at every power change (used by the validation experiment).
	PowerTrace func(t, watts float64)
}

// New builds a simulation from the configuration.
func New(cfg Config) (*Simulation, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg.Classes)
	if err != nil {
		return nil, err
	}
	pm, err := core.NewPowerManager(cfg.LambdaMin, cfg.LambdaMax, cfg.MinExec)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:             cfg,
		eng:             simkit.NewEngine(),
		cluster:         cl,
		pm:              pm,
		completionTimer: make(map[int]*simkit.Timer),
		creation:        simkit.NewStream(cfg.Seed, "creation"),
		migration:       simkit.NewStream(cfg.Seed, "migration"),
		failures:        simkit.NewStream(cfg.Seed, "failures"),
	}
	if cfg.AdaptiveTarget > 0 {
		ad, err := core.NewAdaptive(pm)
		if err != nil {
			return nil, err
		}
		ad.TargetS = cfg.AdaptiveTarget
		s.adaptive = ad
	}
	for _, n := range cl.Nodes {
		if cfg.StartOnline {
			n.SetState(cluster.On)
		}
		s.rt = append(s.rt, &nodeRT{
			node:  n,
			meter: power.NewMeter(0, n.Watts(0)),
			eff:   1,
		})
	}
	s.workAvg = metrics.NewTimeAvg(0, 0)
	s.onAvg = metrics.NewTimeAvg(0, 0)
	return s, nil
}

// Engine exposes the simulation engine (tests drive partial runs).
func (s *Simulation) Engine() *simkit.Engine { return s.eng }

// Cluster exposes the cluster model.
func (s *Simulation) Cluster() *cluster.Cluster { return s.cluster }

// QueueLen returns the number of VMs waiting in the virtual host.
func (s *Simulation) QueueLen() int { return len(s.queue) }

// VMs returns all VMs materialized so far (indexed by ID).
func (s *Simulation) VMs() []*vm.VM { return s.vms }

// Run executes the trace to completion (or cfg.MaxTime) and returns
// the report.
func (s *Simulation) Run() (metrics.Report, error) {
	// Materialize VMs and schedule arrivals.
	for _, j := range s.cfg.Trace.Jobs {
		j := j
		if err := j.Validate(); err != nil {
			return metrics.Report{}, err
		}
		v := vm.New(len(s.vms), vm.Requirements{
			CPU: j.CPU, Mem: j.Mem, Arch: j.Arch, Hypervisor: j.Hypervisor,
		}, j.Submit, j.Duration, j.Deadline())
		v.Name = j.Name
		v.FaultTolerance = j.FaultTolerance
		s.vms = append(s.vms, v)
		s.eng.At(j.Submit, func() { s.onArrival(v) })
	}
	// Arm failure processes for nodes that start online.
	for _, n := range s.cluster.Nodes {
		if n.State == cluster.On {
			s.armFailure(n)
		}
	}
	// Housekeeping tick.
	s.eng.At(0, s.tick)
	if s.cfg.CheckpointInterval > 0 {
		s.eng.At(s.cfg.CheckpointInterval, s.checkpointTick)
	}

	horizon := s.cfg.MaxTime
	if horizon <= 0 {
		horizon = 400 * 24 * 3600 // safety net; Stop() fires first
	}
	s.eng.Run(horizon)
	end := s.eng.Now()

	// Close the books.
	for _, rt := range s.rt {
		s.advanceNode(rt, end)
		rt.meter.Close(end)
	}
	report := metrics.Report{
		Policy:        s.cfg.Policy.Name(),
		LambdaMin:     s.cfg.LambdaMin * unitPercent(s.cfg.LambdaMin),
		LambdaMax:     s.cfg.LambdaMax * unitPercent(s.cfg.LambdaMax),
		AvgWorking:    s.workAvg.Mean(end),
		AvgOnline:     s.onAvg.Mean(end),
		CPUHours:      s.cpuSeconds / 100 / 3600,
		EnergyKWh:     s.totalKWh(),
		Satisfaction:  s.satAgg.Mean(),
		Delay:         s.delayAgg.Mean(),
		Migrations:    s.migrations,
		JobsCompleted: s.completed,
		JobsTotal:     len(s.vms),
		Failures:      s.failCount,
		SimEnd:        end,
	}
	return report, nil
}

func unitPercent(v float64) float64 {
	if v <= 1 {
		return 100
	}
	return 1
}

func (s *Simulation) totalKWh() float64 {
	var kwh float64
	for _, rt := range s.rt {
		kwh += rt.meter.KWh()
	}
	return kwh
}

// --- progress and power accounting ---

// advanceNode accrues job progress and leaves the meter positioned at
// time t with its previous draw (the caller recomputes the new draw).
func (s *Simulation) advanceNode(rt *nodeRT, t float64) {
	dt := t - rt.lastAdvance
	if dt < 0 {
		panic(fmt.Sprintf("datacenter: node %d time going backwards", rt.node.ID))
	}
	if dt == 0 {
		return
	}
	for _, v := range rt.node.VMs {
		if v.Host != rt.node.ID {
			continue // migrating in: runs on the source for now
		}
		if v.State == vm.Running || v.State == vm.Migrating {
			v.Progress += v.Alloc * rt.eff * dt
			s.cpuSeconds += v.Alloc * rt.eff * dt
		}
	}
	rt.lastAdvance = t
}

// recomputeNode re-runs the Xen allocator on a node after any change
// in its hosted set or operations, refreshes the power draw, and
// reschedules completion events for its running VMs.
func (s *Simulation) recomputeNode(rt *nodeRT) {
	now := s.eng.Now()
	s.advanceNode(rt, now)
	n := rt.node

	// Build the demand set: guest domains hosted here plus dom0
	// service work for in-flight operations.
	var owners []*vm.VM
	var demands []xen.Demand
	for _, v := range sortedByID(n.VMs) {
		if v.Host != n.ID {
			continue
		}
		if v.State != vm.Running && v.State != vm.Migrating {
			continue
		}
		owners = append(owners, v)
		demands = append(demands, xen.Demand{Weight: v.Weight, Cap: v.Req.CPU, Want: v.Req.CPU})
	}
	ops := n.CreatingOps + n.MigratingOps
	for i := 0; i < ops; i++ {
		demands = append(demands, xen.Demand{Weight: s.cfg.OpWeight, Cap: s.cfg.OpOverheadCPU, Want: s.cfg.OpOverheadCPU})
	}

	var util float64
	rt.eff = 1
	if n.State == cluster.On {
		alloc := xen.Allocate(n.Class.CPU, demands)
		for i, v := range owners {
			v.Alloc = alloc[i]
		}
		for _, a := range alloc {
			util += a
		}
		// Thrash: overcommit wastes a fraction of every cycle.
		if demand := xen.TotalDemand(demands); demand > n.Class.CPU && s.cfg.ThrashFactor > 0 {
			rt.eff = 1 / (1 + s.cfg.ThrashFactor*(demand/n.Class.CPU-1))
		}
	} else {
		for _, v := range owners {
			v.Alloc = 0
		}
	}

	watts := n.Watts(util)
	rt.meter.Observe(now, watts)
	if s.PowerTrace != nil {
		s.PowerTrace(now, s.currentWatts())
	}

	// Refresh completion events.
	for _, v := range owners {
		s.rescheduleCompletion(v)
	}
}

func (s *Simulation) currentWatts() float64 {
	var w float64
	for _, rt := range s.rt {
		w += rt.meter.CurrentWatts()
	}
	return w
}

func (s *Simulation) rescheduleCompletion(v *vm.VM) {
	if t := s.completionTimer[v.ID]; t != nil {
		t.Cancel()
		delete(s.completionTimer, v.ID)
	}
	if v.State != vm.Running && v.State != vm.Migrating {
		return
	}
	if v.Alloc <= 0 || v.Host < 0 {
		return // starved; a later recompute will revisit
	}
	rate := v.Alloc * s.rt[v.Host].eff
	if rate <= 0 {
		return
	}
	eta := s.eng.Now() + v.Remaining()/rate
	vv := v
	s.completionTimer[v.ID] = s.eng.Schedule(eta, func() { s.onCompletion(vv) })
}

// touchCounts refreshes the time-weighted node-count averages.
func (s *Simulation) touchCounts() {
	working, online := s.cluster.Counts()
	now := s.eng.Now()
	s.workAvg.Observe(now, float64(working))
	s.onAvg.Observe(now, float64(online))
}

func sortedByID(m map[int]*vm.VM) []*vm.VM {
	out := make([]*vm.VM, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- event handlers ---

func (s *Simulation) onArrival(v *vm.VM) {
	s.queue = append(s.queue, v)
	s.emit(EvArrival, v.ID, -1, -1)
	s.round()
}

func (s *Simulation) onCompletion(v *vm.VM) {
	delete(s.completionTimer, v.ID)
	rt := s.rt[v.Host]
	s.advanceNode(rt, s.eng.Now())
	if v.Remaining() > 1e-6 {
		// Stale event (allocation changed after scheduling); the
		// recompute that changed it also rescheduled us, so this
		// handler only fires at a true completion — defensive guard.
		s.rescheduleCompletion(v)
		return
	}
	if v.State == vm.Migrating {
		// Completing mid-migration: the job is done; tear down the
		// reservation on the destination too.
		if v.MigrateTo >= 0 {
			dst := s.cluster.Node(v.MigrateTo)
			dst.RemoveVM(v)
			dst.EndMigrate()
			rt.node.EndMigrate()
			v.MigrateTo = -1
			s.recomputeNode(s.rt[dst.ID])
		}
	}
	rt.node.RemoveVM(v)
	v.State = vm.Completed
	v.Finish = s.eng.Now()
	v.Alloc = 0
	v.Touch()
	s.completed++
	s.emit(EvCompleted, v.ID, rt.node.ID, -1)

	exec := v.ExecTime()
	sat := sla.Satisfaction(exec, v.Deadline-v.Submit)
	s.satAgg.Add(sat)
	s.delayAgg.Add(sla.Delay(exec, v.Duration))
	if s.adaptive != nil {
		s.adaptive.Add(sat)
	}

	s.recomputeNode(rt)
	s.round()

	if s.completed == len(s.vms) {
		s.done = true
		s.eng.Stop()
	}
}

// tick is the periodic housekeeping round.
func (s *Simulation) tick() {
	if s.adaptive != nil {
		s.adaptive.Tick(s.eng.Now())
	}
	s.round()
	if !s.done {
		s.eng.After(s.cfg.TickInterval, s.tick)
	}
}

func (s *Simulation) checkpointTick() {
	// Progress is materialized lazily at node events; bring every
	// node current so the checkpoint captures real progress.
	now := s.eng.Now()
	for _, rt := range s.rt {
		s.advanceNode(rt, now)
	}
	for _, v := range s.vms {
		if v.State == vm.Running {
			v.Checkpoint = v.Progress
		}
	}
	if !s.done {
		s.eng.After(s.cfg.CheckpointInterval, s.checkpointTick)
	}
}

// round runs one scheduling round: power management first, then the
// policy, then action application.
func (s *Simulation) round() {
	if s.roundActive {
		// Rounds are not reentrant; state changes inside a round
		// trigger follow-up work in the same pass.
		return
	}
	s.roundActive = true
	defer func() { s.roundActive = false }()

	// Power manager.
	on, off := s.pm.Plan(s.eng.Now(), s.cluster, s.queue)
	for _, n := range off {
		s.turnOff(n)
	}
	for _, n := range on {
		s.turnOn(n)
	}

	// Policy. The queue is copied because applying a Place mutates
	// s.queue while actions are still being iterated.
	s.ctxQueue = append(s.ctxQueue[:0], s.queue...)
	s.ctxActive = s.appendActiveVMs(s.ctxActive[:0])
	ctx := &policy.Context{
		Now:       s.eng.Now(),
		Cluster:   s.cluster,
		Queue:     s.ctxQueue,
		Active:    s.ctxActive,
		LambdaMin: s.pm.LambdaMin,
		LambdaMax: s.pm.LambdaMax,
	}
	actions := s.cfg.Policy.Schedule(ctx)
	for _, a := range actions {
		switch act := a.(type) {
		case policy.Place:
			s.applyPlace(act)
		case policy.Migrate:
			s.applyMigrate(act)
		}
	}
	s.touchCounts()
}

func (s *Simulation) activeVMs() []*vm.VM {
	return s.appendActiveVMs(nil)
}

// appendActiveVMs appends the VMs occupying node resources to buf in
// ID order and returns it.
func (s *Simulation) appendActiveVMs(buf []*vm.VM) []*vm.VM {
	for _, v := range s.vms {
		if v.Active() {
			buf = append(buf, v)
		}
	}
	return buf
}
