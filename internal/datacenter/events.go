package datacenter

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"energysched/internal/sla"
	"energysched/internal/vm"
)

// EventKind enumerates the observable simulation events.
type EventKind string

// Simulation event kinds.
const (
	EvArrival      EventKind = "arrival"       // job entered the queue
	EvPlace        EventKind = "place"         // creation started on a node
	EvCreated      EventKind = "created"       // VM running
	EvMigrateStart EventKind = "migrate_start" // live migration began
	EvMigrated     EventKind = "migrated"      // cut-over complete
	EvCompleted    EventKind = "completed"     // job finished
	EvBoot         EventKind = "boot"          // node power-on initiated
	EvBooted       EventKind = "booted"        // node operational
	EvOff          EventKind = "off"           // node powered down
	EvFailed       EventKind = "failed"        // node crashed
	EvRepaired     EventKind = "repaired"      // node back from repair
	EvRequeued     EventKind = "requeued"      // VM lost to a failure, queued again
)

// Event is one structured entry of the simulation's event log,
// suitable for JSONL serialization and timeline tooling.
type Event struct {
	// Time is the virtual time in seconds.
	Time float64 `json:"t"`
	// Kind is the event type.
	Kind EventKind `json:"kind"`
	// VM is the VM involved (-1 for node-only events).
	VM int `json:"vm"`
	// Node is the node involved (-1 for queue-only events).
	Node int `json:"node"`
	// Aux carries the second node of a migration (destination) or -1.
	Aux int `json:"aux"`
}

// emit publishes an event to the configured log, if any.
func (s *Simulation) emit(kind EventKind, vmID, node, aux int) {
	if s.cfg.EventLog == nil {
		return
	}
	s.cfg.EventLog(Event{Time: s.eng.Now(), Kind: kind, VM: vmID, Node: node, Aux: aux})
}

// jobsCSVHeader is the per-job results column set.
var jobsCSVHeader = []string{
	"id", "name", "cpu_pct", "mem_units", "submit_s", "start_s", "finish_s",
	"exec_s", "deadline_s", "satisfaction_pct", "delay_pct", "migrations", "restarts", "final_host",
}

// WriteJobsCSV dumps per-job outcomes (one row per VM, completed or
// not) for offline analysis.
func WriteJobsCSV(w io.Writer, vms []*vm.VM) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jobsCSVHeader); err != nil {
		return fmt.Errorf("datacenter: jobs csv header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }
	for _, v := range vms {
		exec, sat, delay := -1.0, -1.0, -1.0
		if v.State == vm.Completed {
			exec = v.ExecTime()
			sat = sla.Satisfaction(exec, v.Deadline-v.Submit)
			delay = sla.Delay(exec, v.Duration)
		}
		rec := []string{
			strconv.Itoa(v.ID), v.Name,
			f(v.Req.CPU), f(v.Req.Mem),
			f(v.Submit), f(v.Start), f(v.Finish),
			f(exec), f(v.Deadline),
			f(sat), f(delay),
			strconv.Itoa(v.Migrations), strconv.Itoa(v.Restarts),
			strconv.Itoa(v.Host),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("datacenter: jobs csv row %d: %w", v.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
