package datacenter

import (
	"testing"

	"energysched/internal/obs/series"
	"energysched/internal/policy"
	"energysched/internal/vm"
	"energysched/internal/workload"
)

func samplingTrace() *workload.Trace {
	return miniTrace(
		job(0, 10, 3600, 100, 5, 1.5),
		job(1, 100, 1800, 200, 10, 1.5),
		job(2, 7200, 600, 100, 5, 1.5),
	)
}

// TestSamplerIsPureObserver is the twin oracle at the simulation
// layer: a run with the accounting sampler attached, energy
// attribution on, and SampleAt hammered mid-tick must produce a report
// byte-identical to the bare run — while actually having recorded one
// sample per housekeeping tick.
func TestSamplerIsPureObserver(t *testing.T) {
	build := func() *Simulation {
		sim, err := New(Config{
			Classes: smallClasses(3),
			Trace:   samplingTrace(),
			Policy:  policy.NewBackfilling(),
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}

	bare := build()
	bareRep, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}

	observed := build()
	store := series.NewStore(0)
	observed.AttributeEnergy = true
	observed.Sampler = func(smp series.Sample) {
		store.Add(smp)
		// Re-sampling mid-tick must read the same state, not advance it.
		again := observed.SampleAt(smp.T)
		if again.KWh != smp.KWh || again.Watts != smp.Watts || again.Running != smp.Running {
			t.Errorf("SampleAt not stable at t=%v: %+v vs %+v", smp.T, again, smp)
		}
		// The transition-maintained Running counter must agree with a
		// brute-force sweep of every VM ever created.
		var running int
		for _, v := range observed.VMs() {
			if v.State == vm.Running || v.State == vm.Migrating {
				running++
			}
		}
		if running != smp.Running {
			t.Errorf("running counter %d != swept count %d at t=%v", smp.Running, running, smp.T)
		}
	}
	obsRep, err := observed.Run()
	if err != nil {
		t.Fatal(err)
	}

	if obsRep != bareRep {
		t.Fatalf("sampled run diverged from bare run:\n got %+v\nwant %+v", obsRep, bareRep)
	}
	if store.Count() == 0 {
		t.Fatal("no samples recorded")
	}

	// The series itself is coherent: virtual time and cumulative
	// counters are non-decreasing, and the final sample agrees with
	// the report's totals.
	samples := store.Samples(0)
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if cur.T <= prev.T {
			t.Fatalf("sample %d time went backwards: %v after %v", i, cur.T, prev.T)
		}
		if cur.KWh < prev.KWh || cur.Completed < prev.Completed || cur.Migrations < prev.Migrations {
			t.Fatalf("cumulative counter regressed at %d: %+v after %+v", i, cur, prev)
		}
	}
	// The run ends at the last completion, which lands between ticks —
	// the final sample may trail the report by the jobs that finished
	// after it, but can never lead it.
	last := samples[len(samples)-1]
	if last.Completed > bareRep.JobsCompleted || last.Completed == 0 {
		t.Fatalf("final sample completed = %d, report = %d", last.Completed, bareRep.JobsCompleted)
	}
	if last.KWh <= 0 || last.KWh > bareRep.EnergyKWh {
		t.Fatalf("final sample kwh = %v, report total = %v", last.KWh, bareRep.EnergyKWh)
	}
	// Per-class slices partition the fleet totals.
	var classKWh float64
	var classOn, classOff int
	for _, c := range last.Classes {
		classKWh += c.KWh
		classOn += c.On
		classOff += c.Off
	}
	if classOn != last.On || classOff != last.Off {
		t.Fatalf("class node counts %d/%d do not partition fleet %d/%d",
			classOn, classOff, last.On, last.Off)
	}
	if diff := classKWh - last.KWh; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("class kwh sum %v != fleet kwh %v", classKWh, last.KWh)
	}
}

// TestEnergyAttributionSplitsNodeEnergy: with AttributeEnergy set each
// completed VM carries a positive attributed energy, the attributed
// total never exceeds the fleet's metered energy (idle draw and boots
// stay unattributed), and the report is byte-identical to the
// unattributed run.
func TestEnergyAttributionSplitsNodeEnergy(t *testing.T) {
	build := func(attr bool) (*Simulation, func() error) {
		sim, err := New(Config{
			Classes: smallClasses(3),
			Trace:   samplingTrace(),
			Policy:  policy.NewBackfilling(),
			Seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.AttributeEnergy = attr
		return sim, nil
	}

	plain, _ := build(false)
	plainRep, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range plain.VMs() {
		if v.EnergyKWh != 0 {
			t.Fatalf("attribution off but vm %d has %v kWh", v.ID, v.EnergyKWh)
		}
	}

	attr, _ := build(true)
	attrRep, err := attr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if attrRep != plainRep {
		t.Fatalf("attribution changed the report:\n got %+v\nwant %+v", attrRep, plainRep)
	}
	var sum float64
	for _, v := range attr.VMs() {
		if v.EnergyKWh <= 0 {
			t.Fatalf("vm %d completed with no attributed energy", v.ID)
		}
		sum += v.EnergyKWh
	}
	if sum <= 0 || sum > attrRep.EnergyKWh {
		t.Fatalf("attributed %v kWh of %v total", sum, attrRep.EnergyKWh)
	}
}
