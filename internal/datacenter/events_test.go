package datacenter

import (
	"bytes"
	"strings"
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/policy"
)

func TestEventLogLifecycle(t *testing.T) {
	var events []Event
	trace := miniTrace(job(0, 10, 300, 100, 5, 3))
	sim, err := New(Config{
		Classes:  smallClasses(2),
		Trace:    trace,
		Policy:   policy.NewBackfilling(),
		Seed:     1,
		EventLog: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[EventKind]int{}
	lastT := -1.0
	for _, e := range events {
		counts[e.Kind]++
		if e.Time < lastT {
			t.Fatalf("events out of order: %v after %v", e.Time, lastT)
		}
		lastT = e.Time
	}
	for _, want := range []EventKind{EvArrival, EvPlace, EvCreated, EvCompleted, EvBoot, EvBooted} {
		if counts[want] == 0 {
			t.Errorf("no %s event recorded (counts: %v)", want, counts)
		}
	}
	if counts[EvArrival] != 1 || counts[EvCompleted] != 1 {
		t.Errorf("arrival/completed counts: %v", counts)
	}
}

func TestEventLogMigration(t *testing.T) {
	var starts, done int
	jobs := []struct{ id int }{}
	_ = jobs
	trace := miniTrace(
		job(0, 0, 900, 300, 15, 5),
		job(1, 1, 14400, 300, 15, 5),
		job(2, 2, 14400, 100, 5, 5),
	)
	cfg := core.SBConfig()
	cfg.MigrationGainMin = 1
	sim, err := New(Config{
		Classes:     smallClasses(2),
		Trace:       trace,
		Policy:      core.MustScheduler(cfg),
		Seed:        1,
		StartOnline: true,
		EventLog: func(e Event) {
			switch e.Kind {
			case EvMigrateStart:
				starts++
				if e.Aux < 0 || e.Node < 0 {
					t.Errorf("migration event missing endpoints: %+v", e)
				}
			case EvMigrated:
				done++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if starts == 0 || starts != done {
		t.Errorf("migration events: %d starts, %d completions", starts, done)
	}
}

func TestEventLogFailures(t *testing.T) {
	cls := cluster.PaperClasses()[1]
	cls.Count = 3
	cls.Reliability = 0.7
	var failed, requeued, repaired int
	sim, err := New(Config{
		Classes:         []cluster.Class{cls},
		Trace:           miniTrace(job(0, 0, 4000, 100, 5, 20)),
		Policy:          policy.NewBackfilling(),
		Seed:            5,
		FailuresEnabled: true,
		MTTR:            600,
		StartOnline:     true,
		EventLog: func(e Event) {
			switch e.Kind {
			case EvFailed:
				failed++
			case EvRequeued:
				requeued++
			case EvRepaired:
				repaired++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if failed == 0 || repaired == 0 {
		t.Errorf("failure events: %d failed, %d repaired", failed, repaired)
	}
	if requeued == 0 {
		t.Error("no requeue events despite failures on the hosting fleet")
	}
}

func TestWriteJobsCSV(t *testing.T) {
	trace := miniTrace(job(0, 10, 300, 100, 5, 3), job(1, 20, 300, 200, 10, 3))
	sim, err := New(Config{
		Classes:     smallClasses(2),
		Trace:       trace,
		Policy:      policy.NewBackfilling(),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, sim.VMs()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,name,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "100.000") {
		t.Errorf("row 1 = %q", lines[1])
	}
}
