package datacenter

import (
	"fmt"
	"runtime"
	"testing"

	"energysched/internal/core"
	"energysched/internal/metrics"
	"energysched/internal/policy"
	"energysched/internal/workload"
)

// TestSolverFullSimDifferential is the end-to-end counterpart of the
// solver's per-round differential tests: a full generated-trace
// simulation must produce a bit-identical report whether the score
// matrix is carried across rounds (default), rebuilt from scratch
// every round (FreshMatrix), evaluated by the naive reference solver,
// or solved by the sharded parallel engine at any shard count. Any
// stale cross-round cache entry — or any nondeterminism in the sharded
// arbiter — would change a placement, fork the trajectory, and show up
// in the paper metrics.
func TestSolverFullSimDifferential(t *testing.T) {
	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = 24 * 3600
	trace := workload.MustGenerate(gen)

	run := func(mod func(*core.Config)) metrics.Report {
		t.Helper()
		cfg := core.SBConfig()
		mod(&cfg)
		sim, err := New(Config{
			Trace:     trace,
			Policy:    core.MustScheduler(cfg),
			LambdaMin: 30,
			LambdaMax: 90,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	carry := run(func(*core.Config) {})
	fresh := run(func(c *core.Config) { c.FreshMatrix = true })
	naive := run(func(c *core.Config) { c.NaiveSolver = true })

	if carry != fresh {
		t.Errorf("cross-round carry changed the trajectory:\ncarry: %+v\nfresh: %+v", carry, fresh)
	}
	if carry != naive {
		t.Errorf("incremental solver diverged from the naive oracle:\ncarry: %+v\nnaive: %+v", carry, naive)
	}

	for _, k := range []int{1, 2, 4, 7, -1} {
		k := k
		label := fmt.Sprintf("K=%d", k)
		if k == -1 {
			label = fmt.Sprintf("K=GOMAXPROCS(%d)", runtime.GOMAXPROCS(0))
		}
		sharded := run(func(c *core.Config) { c.Shards = k })
		if carry != sharded {
			t.Errorf("sharded engine at %s diverged from the serial solver:\nserial:  %+v\nsharded: %+v",
				label, carry, sharded)
		}
	}
}

// Property: driving the simulation online — injecting jobs one at a
// time while holding the clock strictly below the admission watermark
// — produces the exact report of the offline Run over the same trace.
// This is the determinism contract the server harness is built on.
func TestOnlineInjectionMatchesOfflineRun(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = 12 * 3600
	cfg.Seed = 11
	trace := workload.MustGenerate(cfg)

	mk := func() Config {
		return Config{
			Classes: smallClasses(12),
			Policy:  core.MustScheduler(core.SBConfig()),
			Seed:    3,
		}
	}

	offCfg := mk()
	offCfg.Trace = trace
	off, err := New(offCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.Run()
	if err != nil {
		t.Fatal(err)
	}

	on, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	on.Start()
	for _, j := range trace.Jobs {
		if _, err := on.Inject(j); err != nil {
			t.Fatalf("inject job %d: %v", j.ID, err)
		}
		on.StepBefore(j.Submit) // advance to the admission watermark
	}
	got := on.Drain()
	if got != want {
		t.Fatalf("online report diverged:\n got %+v\nwant %+v", got, want)
	}
	if !on.Done() || !on.Sealed() {
		t.Fatal("drained simulation not done/sealed")
	}
}

// Sealing rejects further injection; injecting into the past is
// rejected; sealing an empty simulation is immediately done.
func TestInjectGuards(t *testing.T) {
	sim, err := New(Config{Classes: smallClasses(2), Policy: policy.NewBackfilling()})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	if _, err := sim.Inject(job(0, 100, 60, 100, 5, 1.5)); err != nil {
		t.Fatal(err)
	}
	sim.StepBefore(200)
	if _, err := sim.Inject(job(1, 150, 60, 100, 5, 1.5)); err == nil {
		t.Error("past-submit injection accepted")
	}
	sim.Seal()
	if _, err := sim.Inject(job(2, 300, 60, 100, 5, 1.5)); err == nil {
		t.Error("post-seal injection accepted")
	}

	empty, err := New(Config{Classes: smallClasses(1), Policy: policy.NewBackfilling()})
	if err != nil {
		t.Fatal(err)
	}
	empty.Seal()
	if !empty.Done() {
		t.Error("empty sealed simulation not done")
	}
	if rep := empty.Drain(); rep.JobsTotal != 0 {
		t.Errorf("empty drain report = %+v", rep)
	}
}

// Run with no trace errors instead of hanging.
func TestRunRequiresTrace(t *testing.T) {
	sim, err := New(Config{Classes: smallClasses(1), Policy: policy.NewBackfilling()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("trace-less Run accepted")
	}
}
