package datacenter

import (
	"testing"

	"energysched/internal/core"
	"energysched/internal/metrics"
	"energysched/internal/workload"
)

// TestSolverFullSimDifferential is the end-to-end counterpart of the
// solver's per-round differential tests: a full generated-trace
// simulation must produce a bit-identical report whether the score
// matrix is carried across rounds (default), rebuilt from scratch
// every round (FreshMatrix), or evaluated by the naive reference
// solver. Any stale cross-round cache entry would change a placement,
// fork the trajectory, and show up in the paper metrics.
func TestSolverFullSimDifferential(t *testing.T) {
	gen := workload.DefaultGeneratorConfig()
	gen.Horizon = 24 * 3600
	trace := workload.MustGenerate(gen)

	run := func(mod func(*core.Config)) metrics.Report {
		t.Helper()
		cfg := core.SBConfig()
		mod(&cfg)
		sim, err := New(Config{
			Trace:     trace,
			Policy:    core.MustScheduler(cfg),
			LambdaMin: 30,
			LambdaMax: 90,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	carry := run(func(*core.Config) {})
	fresh := run(func(c *core.Config) { c.FreshMatrix = true })
	naive := run(func(c *core.Config) { c.NaiveSolver = true })

	if carry != fresh {
		t.Errorf("cross-round carry changed the trajectory:\ncarry: %+v\nfresh: %+v", carry, fresh)
	}
	if carry != naive {
		t.Errorf("incremental solver diverged from the naive oracle:\ncarry: %+v\nnaive: %+v", carry, naive)
	}
}
