package datacenter

import (
	"math"
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/policy"
	"energysched/internal/vm"
	"energysched/internal/workload"
)

// miniTrace builds a small deterministic trace.
func miniTrace(jobs ...workload.Job) *workload.Trace {
	tr := &workload.Trace{Jobs: jobs}
	tr.Sort()
	return tr
}

func job(id int, submit, dur, cpu, mem, factor float64) workload.Job {
	return workload.Job{
		ID: id, Name: "j", Submit: submit, Duration: dur,
		CPU: cpu, Mem: mem, DeadlineFactor: factor,
	}
}

func smallClasses(n int) []cluster.Class {
	cls := cluster.PaperClasses()[1]
	cls.Count = n
	return []cluster.Class{cls}
}

func runSim(t *testing.T, cfg Config) (*Simulation, func() interface{}) {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, nil
}

func TestSingleJobLifecycle(t *testing.T) {
	trace := miniTrace(job(0, 10, 600, 100, 5, 1.5))
	sim, err := New(Config{
		Classes: smallClasses(2),
		Trace:   trace,
		Policy:  policy.NewBackfilling(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 1 {
		t.Fatalf("completed = %d, want 1", rep.JobsCompleted)
	}
	v := sim.VMs()[0]
	if v.State != vm.Completed {
		t.Fatalf("vm state = %v", v.State)
	}
	// Timeline: the minexec node boots at t=0 (~100 s), creation
	// ~40 s after the queue drains, then 600 s of execution.
	wantMin, wantMax := 100+30+600, 10.0+100+50+600+120
	if v.Finish < float64(wantMin) || v.Finish > wantMax {
		t.Errorf("finish = %v, want within [%v, %v]", v.Finish, wantMin, wantMax)
	}
	// Work conservation: CPU hours equal the trace total.
	if got, want := rep.CPUHours, trace.TotalCPUHours(); math.Abs(got-want) > 1e-6 {
		t.Errorf("CPU hours = %v, want %v", got, want)
	}
	if rep.EnergyKWh <= 0 {
		t.Error("no energy recorded")
	}
	if rep.Satisfaction != 100 {
		t.Errorf("satisfaction = %v, want 100 (deadline easily met)", rep.Satisfaction)
	}
}

func TestStartOnlineSkipsBoot(t *testing.T) {
	trace := miniTrace(job(0, 0, 300, 100, 5, 2))
	sim, err := New(Config{
		Classes:     smallClasses(1),
		Trace:       trace,
		Policy:      policy.NewBackfilling(),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	v := sim.VMs()[0]
	// No boot wait: finish ≈ creation (~40) + 300.
	if v.Finish > 400 {
		t.Errorf("finish = %v, want < 400 with a warm node", v.Finish)
	}
}

func TestWorkConservationUnderContention(t *testing.T) {
	// Random policy piles VMs on one node; total CPU-hours must still
	// equal the trace's (thrash does not destroy work accounting).
	var jobs []workload.Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, job(i, float64(i), 900, 200, 5, 2))
	}
	trace := miniTrace(jobs...)
	sim, err := New(Config{
		Classes:     smallClasses(2),
		Trace:       trace,
		Policy:      policy.NewRandom(3),
		Seed:        3,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d/%d", rep.JobsCompleted, len(jobs))
	}
	if math.Abs(rep.CPUHours-trace.TotalCPUHours()) > 1e-6 {
		t.Errorf("CPU hours = %v, want %v", rep.CPUHours, trace.TotalCPUHours())
	}
}

func TestContentionStretchesExecution(t *testing.T) {
	// Two nodes' worth of demand on one node: execution must stretch
	// by at least the overcommit factor.
	jobs := []workload.Job{
		job(0, 0, 600, 400, 5, 2),
		job(1, 1, 600, 400, 5, 2),
	}
	sim, err := New(Config{
		Classes:     smallClasses(1),
		Trace:       miniTrace(jobs...),
		Policy:      policy.NewRandom(1),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	v := sim.VMs()[1]
	if v.Finish-v.Submit < 1200 {
		t.Errorf("exec time = %v, want >= 1200 (2× overcommit)", v.Finish-v.Submit)
	}
	if rep.Delay <= 0 {
		t.Error("no delay recorded under contention")
	}
}

func TestMigrationMovesVM(t *testing.T) {
	// j0 (short, 300 %) and j2 (long, 100 %) share node A; j1 (long,
	// 300 %) is forced to node B. When j0 completes, j2 sits alone on
	// A and the SB policy migrates it next to j1.
	jobs := []workload.Job{
		job(0, 0, 900, 300, 15, 5),
		job(1, 1, 14400, 300, 15, 5),
		job(2, 2, 14400, 100, 5, 5),
	}
	cfg := core.SBConfig()
	cfg.MigrationGainMin = 1
	sim, err := New(Config{
		Classes:     smallClasses(2),
		Trace:       miniTrace(jobs...),
		Policy:      core.MustScheduler(cfg),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations == 0 {
		t.Fatal("no migration happened")
	}
	if rep.JobsCompleted != 3 {
		t.Fatalf("completed %d/3", rep.JobsCompleted)
	}
	// After consolidation the two long jobs end on the same node.
	if sim.VMs()[1].Host != sim.VMs()[2].Host {
		t.Errorf("long jobs finished on different nodes: %d vs %d",
			sim.VMs()[1].Host, sim.VMs()[2].Host)
	}
}

func TestNodePowersOffWhenIdle(t *testing.T) {
	trace := miniTrace(job(0, 0, 300, 100, 5, 2))
	sim, err := New(Config{
		Classes:   smallClasses(5),
		Trace:     trace,
		Policy:    policy.NewBackfilling(),
		Seed:      1,
		LambdaMin: 30, LambdaMax: 90,
		MinExec: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, online := sim.Cluster().Counts()
	if online > 1 {
		t.Errorf("online after drain = %d, want minexec 1", online)
	}
	if rep.AvgOnline >= 5 {
		t.Errorf("avg online = %v, want < 5 (nodes were turned off)", rep.AvgOnline)
	}
}

func TestEnergyAccounting(t *testing.T) {
	// A known scenario: one node, always on, one job of 3600 s at
	// 100 % CPU. Energy ≈ boot(idle) + creation + 259 W × 1 h + tail.
	trace := miniTrace(job(0, 0, 3600, 100, 5, 3))
	sim, err := New(Config{
		Classes:     smallClasses(1),
		Trace:       trace,
		Policy:      policy.NewBackfilling(),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: 259 W for the hour the job runs.
	if rep.EnergyKWh < 0.255 {
		t.Errorf("energy = %v kWh, want >= 0.255", rep.EnergyKWh)
	}
	// Upper bound: the node never exceeds 304 W plus overheads.
	if rep.EnergyKWh > 0.35 {
		t.Errorf("energy = %v kWh, want <= 0.35", rep.EnergyKWh)
	}
}

func TestFailureRequeuesAndRecovers(t *testing.T) {
	cls := cluster.PaperClasses()[1]
	cls.Count = 3
	cls.Reliability = 0.7 // fails often
	trace := miniTrace(job(0, 0, 4000, 100, 5, 20))
	sim, err := New(Config{
		Classes:         []cluster.Class{cls},
		Trace:           trace,
		Policy:          policy.NewBackfilling(),
		Seed:            5,
		FailuresEnabled: true,
		MTTR:            600,
		StartOnline:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("no failures injected at reliability 0.7")
	}
	if rep.JobsCompleted != 1 {
		t.Fatalf("job never finished despite retries: %+v", rep)
	}
	if sim.VMs()[0].Restarts == 0 {
		t.Error("job completed without restarts despite failures — suspicious")
	}
}

func TestCheckpointingPreservesProgress(t *testing.T) {
	cls := cluster.PaperClasses()[1]
	cls.Count = 2
	cls.Reliability = 0.8
	trace := miniTrace(job(0, 0, 6000, 100, 5, 20))
	run := func(checkpoint float64) float64 {
		sim, err := New(Config{
			Classes:            []cluster.Class{cls},
			Trace:              trace,
			Policy:             policy.NewBackfilling(),
			Seed:               7,
			FailuresEnabled:    true,
			MTTR:               300,
			CheckpointInterval: checkpoint,
			StartOnline:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.JobsCompleted != 1 {
			t.Fatalf("job incomplete (checkpoint=%v)", checkpoint)
		}
		return sim.VMs()[0].Finish
	}
	with := run(300)
	without := run(0)
	if with >= without {
		t.Errorf("checkpointing did not help: finish %v (with) vs %v (without)", with, without)
	}
}

func TestQueuedVMWaitsWhenNothingFits(t *testing.T) {
	// A 4-core job while the only node runs another 4-core job: must
	// wait, then run.
	jobs := []workload.Job{
		job(0, 0, 600, 400, 5, 10),
		job(1, 10, 600, 400, 5, 10),
	}
	sim, err := New(Config{
		Classes:     smallClasses(1),
		Trace:       miniTrace(jobs...),
		Policy:      policy.NewBackfilling(),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 2 {
		t.Fatalf("completed %d/2", rep.JobsCompleted)
	}
	second := sim.VMs()[1]
	if second.Start < 600 {
		t.Errorf("second job started at %v, want after the first finishes", second.Start)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = 12 * 3600
	trace := workload.MustGenerate(cfg)
	run := func() float64 {
		sim, err := New(Config{
			Trace:  trace,
			Policy: core.MustScheduler(core.SBConfig()),
			Seed:   42,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.EnergyKWh
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic energy: %v vs %v", a, b)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Trace: miniTrace(job(0, 0, 1, 100, 5, 2))}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := New(Config{
		Trace:     miniTrace(job(0, 0, 1, 100, 5, 2)),
		Policy:    policy.NewBackfilling(),
		LambdaMin: 90, LambdaMax: 30,
	}); err == nil {
		t.Error("inverted lambdas accepted")
	}
	bad := miniTrace(workload.Job{ID: 0, Submit: 0, Duration: -1, CPU: 100, DeadlineFactor: 2})
	sim, err := New(Config{Trace: bad, Policy: policy.NewBackfilling()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("invalid job accepted at run time")
	}
}

func TestMaxTimeCutsRun(t *testing.T) {
	trace := miniTrace(job(0, 0, 10000, 100, 5, 2))
	sim, err := New(Config{
		Classes:     smallClasses(1),
		Trace:       trace,
		Policy:      policy.NewBackfilling(),
		StartOnline: true,
		MaxTime:     500,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimEnd > 500 {
		t.Errorf("sim end = %v, want <= 500", rep.SimEnd)
	}
	if rep.JobsCompleted != 0 {
		t.Errorf("job completed despite the horizon cut")
	}
}

func TestOverheadCPUAffectsPower(t *testing.T) {
	// Two identical runs; the one with heavier op overhead must draw
	// at least as much energy during the creation phase.
	trace := miniTrace(job(0, 0, 1200, 100, 5, 3))
	run := func(overhead float64) float64 {
		sim, err := New(Config{
			Classes:       smallClasses(1),
			Trace:         trace,
			Policy:        policy.NewBackfilling(),
			Seed:          1,
			StartOnline:   true,
			OpOverheadCPU: overhead,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.EnergyKWh
	}
	if light, heavy := run(50), run(300); heavy <= light {
		t.Errorf("heavier dom0 overhead did not cost energy: %v vs %v", heavy, light)
	}
}

func TestAdaptiveLambdaReacts(t *testing.T) {
	// A comfortable workload: the adaptive controller should tighten
	// λmin over time and save energy vs the static baseline.
	cfg := workload.DefaultGeneratorConfig()
	cfg.Horizon = 2 * 24 * 3600
	trace := workload.MustGenerate(cfg)
	run := func(target float64) float64 {
		sim, err := New(Config{
			Trace:          trace,
			Policy:         core.MustScheduler(core.SBConfig()),
			LambdaMin:      30,
			LambdaMax:      90,
			Seed:           1,
			AdaptiveTarget: target,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.JobsCompleted != rep.JobsTotal {
			t.Fatalf("completed %d/%d", rep.JobsCompleted, rep.JobsTotal)
		}
		return rep.EnergyKWh
	}
	static := run(0)
	adaptive := run(98)
	if adaptive >= static {
		t.Errorf("adaptive λ (%v kWh) should save energy vs static (%v kWh) on a comfortable load",
			adaptive, static)
	}
}

func TestHeterogeneousHardwareConstraints(t *testing.T) {
	// A mixed fleet: x86 Xen nodes and ARM KVM nodes. Jobs pinned to
	// an architecture must only ever run on matching nodes, across
	// placement, migration and recovery.
	x86 := cluster.PaperClasses()[1]
	x86.Count = 2
	arm := cluster.PaperClasses()[1]
	arm.Name = "arm"
	arm.Count = 2
	arm.Arch = "arm64"
	arm.Hypervisor = "kvm"

	trace := &workload.Trace{}
	for i := 0; i < 8; i++ {
		j := job(i, float64(i), 1200, 100, 5, 5)
		if i%2 == 0 {
			j.Arch = "x86_64"
			j.Hypervisor = "xen"
		} else {
			j.Arch = "arm64"
			j.Hypervisor = "kvm"
		}
		trace.Jobs = append(trace.Jobs, j)
	}
	cfg := core.SBConfig()
	cfg.MigrationGainMin = 1
	sim, err := New(Config{
		Classes:     []cluster.Class{x86, arm},
		Trace:       trace,
		Policy:      core.MustScheduler(cfg),
		Seed:        1,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 8 {
		t.Fatalf("completed %d/8", rep.JobsCompleted)
	}
	// Pinned jobs only ever ended on matching nodes: x86 nodes have
	// IDs 0–1, ARM nodes 2–3 (declaration order).
	for i, v := range sim.VMs() {
		if i%2 == 0 && v.Host >= 2 {
			t.Errorf("x86 job %d finished on ARM node %d", i, v.Host)
		}
		if i%2 == 1 && v.Host < 2 {
			t.Errorf("ARM job %d finished on x86 node %d", i, v.Host)
		}
	}
}

// forceMigration builds a two-node scenario with a migration in
// flight at a predictable time: j0 short on node A with j2 (long,
// 100%), j1 long 300% on node B; after j0 completes (~940 s) the SB
// policy migrates j2 from A to B, taking ~60 s.
func forceMigration(t *testing.T, classes []cluster.Class, failuresSeed int64) *Simulation {
	t.Helper()
	jobs := []workload.Job{
		job(0, 0, 900, 300, 15, 8),
		job(1, 1, 14400, 300, 15, 8),
		job(2, 2, 14400, 100, 5, 8),
	}
	cfg := core.SBConfig()
	cfg.MigrationGainMin = 1
	sim, err := New(Config{
		Classes:     classes,
		Trace:       miniTrace(jobs...),
		Policy:      core.MustScheduler(cfg),
		Seed:        failuresSeed,
		StartOnline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestMigrationSourceFailure(t *testing.T) {
	// Crash the migration source mid-flight: the VM is lost, the
	// destination reservation is released, and the job still finishes
	// after re-queueing.
	sim := forceMigration(t, smallClasses(2), 1)
	var failAt float64 = -1
	sim.cfg.EventLog = func(e Event) {
		if e.Kind == EvMigrateStart && failAt < 0 {
			failAt = sim.eng.Now() + 20 // mid-migration (takes ~60 s)
			src := sim.cluster.Node(e.Node)
			sim.eng.ScheduleAfter(20, func() { sim.onFailure(src) })
		}
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if failAt < 0 {
		t.Fatal("no migration started — scenario broken")
	}
	if rep.JobsCompleted != 3 {
		t.Fatalf("completed %d/3 after source failure", rep.JobsCompleted)
	}
	// Consistency: no node still thinks it has migration ops pending.
	for _, n := range sim.cluster.Nodes {
		if n.MigratingOps != 0 || n.CreatingOps != 0 {
			t.Errorf("node %d left with dangling ops: %d/%d", n.ID, n.CreatingOps, n.MigratingOps)
		}
		if len(n.VMs) != 0 {
			t.Errorf("node %d still hosts %d VMs after the run", n.ID, len(n.VMs))
		}
	}
}

func TestMigrationDestinationFailure(t *testing.T) {
	// Crash the destination mid-flight: the VM keeps running on the
	// source and completes without restarting.
	sim := forceMigration(t, smallClasses(2), 1)
	fired := false
	sim.cfg.EventLog = func(e Event) {
		if e.Kind == EvMigrateStart && !fired {
			fired = true
			dst := sim.cluster.Node(e.Aux)
			sim.eng.ScheduleAfter(20, func() { sim.onFailure(dst) })
		}
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("no migration started — scenario broken")
	}
	if rep.JobsCompleted != 3 {
		t.Fatalf("completed %d/3 after destination failure", rep.JobsCompleted)
	}
	// The migrating VM must not have restarted (it survived on the
	// source).
	if v := sim.VMs()[2]; v.Restarts > 1 {
		t.Errorf("vm2 restarted %d times; destination failure should not reset it", v.Restarts)
	}
}
