package datacenter

import (
	"testing"

	"energysched/internal/cluster"
	"energysched/internal/core"
	"energysched/internal/workload"
)

func sbConfig(t *testing.T, trace *workload.Trace, nodes int, seed int64) Config {
	t.Helper()
	pol, err := core.NewScheduler(core.SBConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Classes: smallClasses(nodes),
		Trace:   trace,
		Policy:  pol,
		Seed:    seed,
	}
}

// RunSource must be byte-identical to Run on the materialized trace:
// streaming ingestion is the online-admission contract (inject at the
// watermark, injection priority), which the offline path already
// proves equivalent to.
func TestRunSourceMatchesRun(t *testing.T) {
	gcfg := workload.DefaultGeneratorConfig()
	gcfg.Horizon = 24 * 3600
	tr := workload.MustGenerate(gcfg)

	off, err := New(sbConfig(t, tr, 20, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Stream the very same jobs from the generator source (no
	// materialized trace in the config at all).
	cfg := sbConfig(t, nil, 20, 1)
	on, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGeneratorSource(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := on.RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed run diverged from materialized run:\n got %+v\nwant %+v", got, want)
	}
}

func TestRunSourceRejectsEmpty(t *testing.T) {
	sim, err := New(sbConfig(t, nil, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunSource(workload.NewTraceSource(&workload.Trace{})); err == nil {
		t.Fatal("empty source accepted")
	}
}

// CrashNode is the deterministic injection point: a crash from an
// engine timer behaves exactly like an organic failure (VMs requeued,
// node repairs after MTTR) and the run completes every job.
func TestCrashNodeInjectsFailure(t *testing.T) {
	var jobs []workload.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, job(i, float64(i*10), 3000, 100, 5, 2))
	}
	cfg := sbConfig(t, miniTrace(jobs...), 4, 1)
	cfg.StartOnline = true
	cfg.MTTR = 600
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	for _, j := range jobs {
		if _, err := sim.Inject(j); err != nil {
			t.Fatal(err)
		}
	}
	sim.Start()
	// Crash whichever node hosts VMs once execution is under way.
	sim.Engine().At(500, func() {
		for _, n := range sim.Cluster().Nodes {
			if n.State == cluster.On && len(n.VMs) > 0 {
				if !sim.CrashNode(n.ID) {
					t.Errorf("CrashNode(%d) refused an On node", n.ID)
				}
				crashed = true
				return
			}
		}
	})
	rep := sim.Drain()
	if !crashed {
		t.Fatal("no loaded node found to crash")
	}
	if rep.Failures != 1 {
		t.Fatalf("node failures = %d, want 1 (the injected crash)", rep.Failures)
	}
	if rep.JobsCompleted != len(jobs) {
		t.Fatalf("completed %d of %d jobs after the crash", rep.JobsCompleted, len(jobs))
	}
	restarted := 0
	for _, v := range sim.VMs() {
		restarted += v.Restarts
	}
	if restarted == 0 {
		t.Fatal("crash requeued no VMs")
	}
	// Out-of-range and not-On nodes are no-ops.
	if sim.CrashNode(-1) || sim.CrashNode(10_000) {
		t.Fatal("CrashNode accepted a nonexistent node")
	}
}

// Two identical runs with the same crash schedule are byte-identical;
// the crash itself does not perturb determinism.
func TestCrashNodeDeterministic(t *testing.T) {
	run := func() interface{} {
		var jobs []workload.Job
		for i := 0; i < 10; i++ {
			jobs = append(jobs, job(i, float64(i*20), 2000, 100, 5, 2))
		}
		cfg := sbConfig(t, miniTrace(jobs...), 4, 3)
		cfg.StartOnline = true
		cfg.MTTR = 900
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if _, err := sim.Inject(j); err != nil {
				t.Fatal(err)
			}
		}
		sim.Start()
		sim.Engine().At(400, func() { sim.CrashNode(0) })
		sim.Engine().At(1300, func() { sim.CrashNode(0) }) // flap: after MTTR repair
		return sim.Drain()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("crash-injected runs diverged:\n a %+v\n b %+v", a, b)
	}
}
